package disagg_test

import (
	"fmt"
	"testing"

	"github.com/disagglab/disagg/internal/cxl"
	"github.com/disagglab/disagg/internal/index/bptree"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// Ablation benchmarks: each sub-benchmark reports simulated nanoseconds
// per operation (ns/op here is wall time of the simulator; the interesting
// number is sim-ns/op, reported as a custom metric) for one design choice
// the experiments rely on.

// reportSim attaches the simulated per-op latency as a benchmark metric.
func reportSim(b *testing.B, c *sim.Clock, ops int) {
	if ops > 0 {
		b.ReportMetric(float64(c.Now().Nanoseconds())/float64(ops), "sim-ns/op")
	}
}

// BenchmarkAblationShermanOptions sweeps the Sherman optimization matrix
// (the E11b ablation): each flag should reduce simulated latency.
func BenchmarkAblationShermanOptions(b *testing.B) {
	cases := []struct {
		name string
		opt  bptree.Options
	}{
		{"naive", bptree.Naive()},
		{"optimistic-reads", bptree.Options{OptimisticReads: true}},
		{"batched-writes", bptree.Options{BatchedWrites: true}},
		{"onchip-locks", bptree.Options{OnChipLocks: true}},
		{"sherman-full", bptree.Sherman()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := sim.DefaultConfig()
			pool := memnode.New(cfg, "m0", 1<<30)
			tr, err := bptree.New(cfg, pool, tc.opt)
			if err != nil {
				b.Fatal(err)
			}
			cl := tr.Attach(1, nil)
			c := sim.NewClock()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					cl.Put(c, uint64(i)+1, uint64(i))
				} else {
					cl.Get(c, uint64(i))
				}
			}
			reportSim(b, c, b.N)
		})
	}
}

// BenchmarkAblationDoorbellBatch compares N individual RDMA writes with
// one doorbell batch of N.
func BenchmarkAblationDoorbellBatch(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		cfg := sim.DefaultConfig()
		node := rdma.NewNode(cfg, "m0", 1<<20)
		data := make([]byte, 64)
		b.Run(fmt.Sprintf("individual-%d", n), func(b *testing.B) {
			qp := rdma.Connect(cfg, node, nil)
			c := sim.NewClock()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					qp.Write(c, uint64(j*64), data)
				}
			}
			reportSim(b, c, b.N)
		})
		b.Run(fmt.Sprintf("batched-%d", n), func(b *testing.B) {
			qp := rdma.Connect(cfg, node, nil)
			ops := make([]rdma.WriteOp, n)
			for j := range ops {
				ops[j] = rdma.WriteOp{Addr: uint64(j * 64), Data: data}
			}
			c := sim.NewClock()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qp.WriteBatch(c, ops)
			}
			reportSim(b, c, b.N)
		})
	}
}

// BenchmarkAblationSpillTarget sweeps the E12b spill-target choice on a
// budgeted hash join.
func BenchmarkAblationSpillTarget(b *testing.B) {
	cfg := sim.DefaultConfig()
	build := query.NewTable("bk", "bv")
	for k := 0; k < 10_000; k++ {
		build.AppendRow(int64(k), int64(k))
	}
	probe := query.NewTable("pk")
	for k := 0; k < 20_000; k++ {
		probe.AppendRow(int64(k % 10_000))
	}
	for _, target := range []query.SpillTarget{query.SpillNone, query.SpillRemote, query.SpillSSD} {
		b.Run(target.String(), func(b *testing.B) {
			c := sim.NewClock()
			for i := 0; i < b.N; i++ {
				bScan, _ := query.NewScan(cfg, query.NewLocalSource(cfg, build), []string{"bk", "bv"}, nil, false)
				pScan, _ := query.NewScan(cfg, query.NewLocalSource(cfg, probe), []string{"pk"}, nil, false)
				budget := query.NewMemoryBudget(cfg, 32<<10, target)
				join := query.NewHashJoin(cfg, bScan, pScan, "bk", "pk", budget)
				if _, err := query.Collect(c, join); err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, c, b.N)
		})
	}
}

// BenchmarkAblationCXLAccessPattern shows why prefetch-friendliness is the
// E17 pivot: the same bytes cost ~10x more when touched line by line.
func BenchmarkAblationCXLAccessPattern(b *testing.B) {
	cfg := sim.DefaultConfig()
	dev := cxl.NewDevice(cfg, 1<<20)
	buf := make([]byte, 64<<10)
	b.Run("sequential-prefetched", func(b *testing.B) {
		c := sim.NewClock()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dev.LoadSeq(c, 0, buf)
		}
		reportSim(b, c, b.N)
	})
	b.Run("random-per-line", func(b *testing.B) {
		c := sim.NewClock()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dev.Load(c, 0, buf)
		}
		reportSim(b, c, b.N)
	})
}

// BenchmarkAblationZoneMapPruning isolates the E5 design choice.
func BenchmarkAblationZoneMapPruning(b *testing.B) {
	cfg := sim.DefaultConfig()
	tbl := query.NewTable("k", "v")
	for i := 0; i < 20*query.BlockRows; i++ {
		tbl.AppendRow(int64(i), int64(i*2))
	}
	src := query.NewLocalSource(cfg, tbl)
	pred := []query.Predicate{{Col: "k", Lo: 100, Hi: 200}}
	for _, prune := range []bool{true, false} {
		b.Run(fmt.Sprintf("prune=%v", prune), func(b *testing.B) {
			c := sim.NewClock()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scan, _ := query.NewScan(cfg, src, []string{"v"}, pred, prune)
				if _, err := query.Collect(c, scan); err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, c, b.N)
		})
	}
}
