// Package disagg_test holds the top-level benchmark harness: one testing.B
// benchmark per experiment (regenerating every table/figure of
// EXPERIMENTS.md; reported wall time is the cost of simulating the
// experiment), plus micro-benchmarks of the hot substrate operations so
// per-op simulation overheads are visible.
//
// Run with:
//
//	go test -bench=. -benchmem
package disagg_test

import (
	"io"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/harness"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/index/bptree"
	"github.com/disagglab/disagg/internal/index/lsm"
	"github.com/disagglab/disagg/internal/index/race"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/workload"
)

// benchExperiment runs one registered experiment end to end per iteration
// and fails the benchmark if any shape check regresses.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := sim.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := e.Run(cfg.Clone(), harness.Quick)
		if r.Failed() {
			harness.Render(io.Discard, r)
			b.Fatalf("%s checks failed", id)
		}
	}
}

func BenchmarkE01LogVsPageShipping(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE02QuorumAvailability(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE03TierSeparation(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE04Elasticity(b *testing.B)         { benchExperiment(b, "E4") }
func BenchmarkE05ZoneMapPruning(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE06PMPersistence(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE07RemoteVsLocalPM(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE08PilotDB(b *testing.B)            { benchExperiment(b, "E8") }
func BenchmarkE09LegoBase(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10SharedMemoryPool(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11DisaggIndexes(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12TPCHMemoryDisagg(b *testing.B)   { benchExperiment(b, "E12") }
func BenchmarkE13Teleport(b *testing.B)           { benchExperiment(b, "E13") }
func BenchmarkE14Farview(b *testing.B)            { benchExperiment(b, "E14") }
func BenchmarkE15RemoteCache(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16DisaggShuffle(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE17CXLTiering(b *testing.B)         { benchExperiment(b, "E17") }
func BenchmarkE18DirectCXL(b *testing.B)          { benchExperiment(b, "E18") }
func BenchmarkE19Pond(b *testing.B)               { benchExperiment(b, "E19") }
func BenchmarkE20MultiWriter(b *testing.B)        { benchExperiment(b, "E20") }
func BenchmarkE21Autoscaling(b *testing.B)        { benchExperiment(b, "E21") }
func BenchmarkE22HTAP(b *testing.B)               { benchExperiment(b, "E22") }
func BenchmarkE23FlexChain(b *testing.B)          { benchExperiment(b, "E23") }
func BenchmarkE24GroupCommit(b *testing.B)        { benchExperiment(b, "E24") }

// ---- Micro-benchmarks: substrate hot paths ----

func BenchmarkRDMAOneSidedRead(b *testing.B) {
	cfg := sim.DefaultConfig()
	node := rdma.NewNode(cfg, "m0", 1<<20)
	qp := rdma.Connect(cfg, node, nil)
	c := sim.NewClock()
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := qp.Read(c, uint64(i%1024)*256, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRDMACAS(b *testing.B) {
	cfg := sim.DefaultConfig()
	node := rdma.NewNode(cfg, "m0", 1<<20)
	qp := rdma.Connect(cfg, node, nil)
	c := sim.NewClock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qp.CAS(c, uint64(i%128)*8, 0, 0)
	}
}

func BenchmarkRDMARPC(b *testing.B) {
	cfg := sim.DefaultConfig()
	node := rdma.NewNode(cfg, "m0", 1<<20)
	node.Handle("noop", func(c *sim.Clock, req []byte) []byte { return req })
	qp := rdma.Connect(cfg, node, nil)
	c := sim.NewClock()
	req := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qp.Call(c, "noop", req)
	}
}

func benchEngineCommit(b *testing.B, e engine.Engine, layout heap.Layout) {
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint64(i % 10_000)
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(key, val) }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuroraCommit(b *testing.B) {
	layout, _ := heap.NewLayout(8192, 96)
	benchEngineCommit(b, aurora.New(sim.DefaultConfig(), layout, 2048, 0), layout)
}

func BenchmarkMonolithicCommit(b *testing.B) {
	layout, _ := heap.NewLayout(8192, 96)
	benchEngineCommit(b, monolithic.New(sim.DefaultConfig(), layout, 2048), layout)
}

func BenchmarkRACEHashGet(b *testing.B) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 256<<20)
	h, err := race.New(cfg, pool, 4, 256)
	if err != nil {
		b.Fatal(err)
	}
	cl := h.Attach(1, nil)
	c := sim.NewClock()
	for i := uint64(0); i < 10_000; i++ {
		cl.Put(c, i, []byte("benchmark-value!"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := cl.Get(c, uint64(i%10_000)); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkShermanBTreePut(b *testing.B) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 1<<30)
	tr, err := bptree.New(cfg, pool, bptree.Sherman())
	if err != nil {
		b.Fatal(err)
	}
	cl := tr.Attach(1, nil)
	c := sim.NewClock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Put(c, uint64(i)+1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDLSMPut(b *testing.B) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 1<<30)
	tr := lsm.New(cfg, pool, lsm.DefaultOptions())
	cl := tr.Attach(nil)
	c := sim.NewClock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Put(c, uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPCCGen(b *testing.B) {
	g := workload.DefaultTPCC().NewGenerator(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
