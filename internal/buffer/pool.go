// Package buffer implements the buffer pools used across the engines: a
// local in-DRAM LRU pool, an RDMA-backed remote pool hosted on a memory
// node, and the LegoBase two-tier combination (local LRU in front of a
// remote-memory LRU, §3.1). All tiers can subscribe to a per-engine
// coherence.Directory: frames then carry the commit stamp of their bytes
// and every hit is validated against the directory version, so a copy
// cached before a remote commit is never served after the commit's
// durability point.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// Fetcher loads a page's bytes on a miss (e.g. from a storage node),
// charging the caller's clock.
type Fetcher func(c *sim.Clock, id page.ID) ([]byte, error)

// Writeback persists a dirty page on eviction.
type Writeback func(c *sim.Clock, id page.ID, data []byte) error

// StampFunc extracts the commit stamp carried by page bytes (page-header
// LSN for heap pages). Coherence validation compares it against the
// directory version.
type StampFunc func(data []byte) uint64

// ErrNoFetcher is returned when a miss occurs and no fetcher is set.
var ErrNoFetcher = errors.New("buffer: miss with no fetcher")

type frame struct {
	id    page.ID
	data  []byte
	dirty bool
	// stamp is the commit stamp of the cached bytes; a frame whose stamp
	// trails the directory version is stale and never served.
	stamp uint64
}

// Pool is a local LRU page cache. All access goes through Get/Mutate under
// the pool lock; DRAM access cost is charged per touch.
type Pool struct {
	cfg       *sim.Config
	capacity  int
	fetch     Fetcher
	writeback Writeback

	coh     *coherence.Handle
	stampOf StampFunc

	mu     sync.Mutex
	lru    *list.List // front = most recent
	frames map[page.ID]*list.Element

	hits        atomic.Int64
	misses      atomic.Int64
	probeMisses atomic.Int64
	staleHits   atomic.Int64
}

// NewPool creates a pool holding up to capacity pages.
func NewPool(cfg *sim.Config, capacity int, fetch Fetcher, writeback Writeback) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		cfg:       cfg,
		capacity:  capacity,
		fetch:     fetch,
		writeback: writeback,
		lru:       list.New(),
		frames:    make(map[page.ID]*list.Element),
	}
}

// SetCoherence subscribes the pool to a coherence directory: frames are
// stamped (via stampOf when the data carries its own stamp, else the
// directory version at fill time) and every hit is validated. Any frames
// already resident are noted with the directory.
func (p *Pool) SetCoherence(h *coherence.Handle, stampOf StampFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.coh = h
	p.stampOf = stampOf
	for id := range p.frames {
		h.Note(id)
	}
}

// Capacity reports the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len reports the number of cached pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// HitRatio reports hits/(hits+misses) over demand accesses; probe misses
// (Peek/Contains-style lookups that never intended to load) are excluded
// so policies fed by the ratio are not skewed by probing.
func (p *Pool) HitRatio() float64 {
	h, m := p.hits.Load(), p.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// ProbeMisses reports lookups that missed without requesting a load.
func (p *Pool) ProbeMisses() int64 { return p.probeMisses.Load() }

// StaleHits reports cached frames rejected by coherence validation.
func (p *Pool) StaleHits() int64 { return p.staleHits.Load() }

// ResetStats clears the hit/miss/probe/stale counters.
func (p *Pool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.probeMisses.Store(0)
	p.staleHits.Store(0)
}

// removeLocked drops a frame and tells the directory.
func (p *Pool) removeLocked(e *list.Element) {
	f := e.Value.(*frame)
	p.lru.Remove(e)
	delete(p.frames, f.id)
	if p.coh != nil {
		p.coh.Forget(f.id)
	}
}

func (p *Pool) locked(c *sim.Clock, id page.ID, load bool) (*frame, error) {
	if e, ok := p.frames[id]; ok {
		f := e.Value.(*frame)
		if p.coh == nil || p.coh.Validate(id, f.stamp) {
			p.lru.MoveToFront(e)
			p.hits.Add(1)
			return f, nil
		}
		// The directory published a newer stamp: the cached copy is
		// stale. Drop it and fall through to the miss path.
		p.staleHits.Add(1)
		p.removeLocked(e)
	}
	if !load {
		// A probe, not a demand access: counted separately so HitRatio
		// (and any policy fed by it) reflects only loads.
		p.probeMisses.Add(1)
		return nil, nil
	}
	p.misses.Add(1)
	if p.fetch == nil {
		return nil, ErrNoFetcher
	}
	var floor uint64
	if p.coh != nil && p.stampOf == nil {
		floor = p.coh.Version(id)
	}
	data, err := p.fetch(c, id)
	if err != nil {
		return nil, err
	}
	f := &frame{id: id, data: data, stamp: floor}
	if p.stampOf != nil {
		f.stamp = p.stampOf(data)
	}
	if err := p.evictIfFullLocked(c); err != nil {
		return nil, err
	}
	p.frames[id] = p.lru.PushFront(f)
	if p.coh != nil {
		p.coh.Note(id)
	}
	return f, nil
}

func (p *Pool) evictIfFullLocked(c *sim.Clock) error {
	for p.lru.Len() >= p.capacity {
		e := p.lru.Back()
		if e == nil {
			return nil
		}
		f := e.Value.(*frame)
		if f.dirty && p.writeback != nil {
			if err := p.writeback(c, f.id, f.data); err != nil {
				// Requeue the failed victim at the MRU end: leaving it at
				// the back makes every subsequent miss retry the same
				// writeback, livelocking callers inside a storage fault
				// window. Rotating lets the next eviction pick a
				// different (possibly clean) victim.
				p.lru.MoveToFront(e)
				return err
			}
		}
		p.removeLocked(e)
	}
	return nil
}

// Get returns a copy of the page bytes, fetching on miss.
func (p *Pool) Get(c *sim.Clock, id page.ID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.locked(c, id, true)
	if err != nil {
		return nil, err
	}
	c.Advance(p.cfg.DRAM.Cost(len(f.data)))
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Peek returns a copy of the page bytes if a fresh copy is cached. A miss
// (absent, or stale under the coherence directory) has no fetch side
// effects and is counted as a probe, not a demand miss.
func (p *Pool) Peek(c *sim.Clock, id page.ID) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, _ := p.locked(c, id, false)
	if f == nil {
		return nil, false
	}
	c.Advance(p.cfg.DRAM.Cost(len(f.data)))
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, true
}

// Contains reports whether the page is cached (no fetch, no LRU effect on
// miss, no counter effect).
func (p *Pool) Contains(id page.ID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}

// Mutate applies fn to the cached page under the pool lock, fetching on
// miss, and marks the page dirty. When the pool is coherent and the data
// carries its own stamp, the frame is re-stamped from the mutated bytes so
// a commit-applying writer keeps its own frame fresh across the publish.
func (p *Pool) Mutate(c *sim.Clock, id page.ID, fn func(data []byte) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.locked(c, id, true)
	if err != nil {
		return err
	}
	c.Advance(p.cfg.DRAM.Cost(len(f.data)))
	if err := fn(f.data); err != nil {
		return err
	}
	f.dirty = true
	if p.stampOf != nil {
		if s := p.stampOf(f.data); s > f.stamp {
			f.stamp = s
		}
	}
	return nil
}

// Install inserts page bytes directly (e.g. a freshly created page),
// marking it dirty if requested.
func (p *Pool) Install(c *sim.Clock, id page.ID, data []byte, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.frames[id]; ok {
		f := e.Value.(*frame)
		f.data = data
		f.dirty = f.dirty || dirty
		f.stamp = p.installStamp(id, data)
		p.lru.MoveToFront(e)
		return nil
	}
	if err := p.evictIfFullLocked(c); err != nil {
		return err
	}
	f := &frame{id: id, data: data, dirty: dirty, stamp: p.installStamp(id, data)}
	p.frames[id] = p.lru.PushFront(f)
	if p.coh != nil {
		p.coh.Note(id)
	}
	return nil
}

func (p *Pool) installStamp(id page.ID, data []byte) uint64 {
	if p.stampOf != nil {
		return p.stampOf(data)
	}
	if p.coh != nil {
		return p.coh.Version(id)
	}
	return 0
}

// Invalidate drops a page without writeback (coherence message from a
// remote writer).
func (p *Pool) Invalidate(id page.ID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.frames[id]; ok {
		p.removeLocked(e)
	}
}

// InvalidateAll empties the pool without writeback (crash simulation).
func (p *Pool) InvalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.coh != nil {
		for id := range p.frames {
			p.coh.Forget(id)
		}
	}
	p.lru.Init()
	p.frames = make(map[page.ID]*list.Element)
}

// FlushAll writes back every dirty page. A failed writeback keeps that
// page dirty (so the next checkpoint retries it) and flushing continues
// with the remaining pages; all failures are aggregated into the returned
// error so a checkpointer can tell exactly what remains unflushed.
func (p *Pool) FlushAll(c *sim.Clock) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var errs []error
	for e := p.lru.Front(); e != nil; e = e.Next() {
		f := e.Value.(*frame)
		if !f.dirty {
			continue
		}
		if p.writeback != nil {
			if err := p.writeback(c, f.id, f.data); err != nil {
				errs = append(errs, fmt.Errorf("page %d: %w", f.id, err))
				continue
			}
		}
		f.dirty = false
	}
	return errors.Join(errs...)
}

// DirtyIDs returns the IDs of dirty pages (checkpointing support).
func (p *Pool) DirtyIDs() []page.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []page.ID
	for e := p.lru.Front(); e != nil; e = e.Next() {
		if f := e.Value.(*frame); f.dirty {
			out = append(out, f.id)
		}
	}
	return out
}

// RemotePool is a page cache hosted in a disaggregated memory node and
// accessed with one-sided RDMA. It is the "remote memory pool" tier of
// LegoBase and the elastic shared buffer of PolarDB Serverless.
type RemotePool struct {
	cfg      *sim.Config
	qp       *rdma.QP
	pageSize int
	capacity int

	coh     *coherence.Handle
	stampOf StampFunc

	mu    sync.Mutex
	lru   *list.List // of page.ID; front = most recent
	index map[page.ID]*remoteEntry
	free  []uint64 // free region addresses

	staleHits atomic.Int64
}

type remoteEntry struct {
	addr uint64
	// stamp is the commit stamp of the bytes last written to the frame.
	stamp uint64
	elem  *list.Element
}

// NewRemotePool carves capacity page frames out of the node's registered
// memory starting at base.
func NewRemotePool(cfg *sim.Config, node *rdma.Node, stats *rdma.Stats, base uint64, capacity, pageSize int) *RemotePool {
	rp := &RemotePool{
		cfg:      cfg,
		qp:       rdma.Connect(cfg, node, stats),
		pageSize: pageSize,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[page.ID]*remoteEntry),
	}
	for i := capacity - 1; i >= 0; i-- {
		rp.free = append(rp.free, base+uint64(i*pageSize))
	}
	return rp
}

// SetCoherence subscribes the remote pool to a coherence directory;
// entries are stamped from the page bytes on Put and validated on Get.
func (r *RemotePool) SetCoherence(h *coherence.Handle, stampOf StampFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.coh = h
	r.stampOf = stampOf
	for id := range r.index {
		h.Note(id)
	}
}

// Capacity reports the frame count.
func (r *RemotePool) Capacity() int { return r.capacity }

// Len reports resident pages.
func (r *RemotePool) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}

// StaleHits reports resident entries rejected by coherence validation.
func (r *RemotePool) StaleHits() int64 { return r.staleHits.Load() }

// Contains reports residency without RDMA traffic (the compute node keeps
// the directory locally; PolarDB Serverless keeps it on the memory node's
// control plane, which we fold into the directory lookup).
func (r *RemotePool) Contains(id page.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.index[id]
	return ok
}

// dropLocked unmaps an entry and returns its frame to the free list.
func (r *RemotePool) dropLocked(id page.ID, e *remoteEntry) {
	r.lru.Remove(e.elem)
	delete(r.index, id)
	r.free = append(r.free, e.addr)
	if r.coh != nil {
		r.coh.Forget(id)
	}
}

// Get reads the page into buf via one-sided RDMA. Returns false on miss —
// including a coherence miss, where the resident copy's stamp trails the
// directory version and the entry is dropped instead of served.
func (r *RemotePool) Get(c *sim.Clock, id page.ID, buf []byte) (bool, error) {
	r.mu.Lock()
	e, ok := r.index[id]
	var addr uint64
	if ok {
		if r.coh != nil && !r.coh.Validate(id, e.stamp) {
			r.staleHits.Add(1)
			r.dropLocked(id, e)
			ok = false
		} else {
			r.lru.MoveToFront(e.elem)
			addr = e.addr
		}
	}
	r.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := r.qp.Read(c, addr, buf[:r.pageSize]); err != nil {
		return false, err
	}
	return true, nil
}

// Put writes the page to remote memory, evicting the LRU page if needed.
// Evicted pages are simply dropped: the remote pool caches pages that are
// durable elsewhere (storage tier), like LegoBase's remote memory. The
// entry is stamped from the page bytes, so demoting an old copy after a
// newer commit published leaves the entry stale (caught on Get) rather
// than masking the newer version.
func (r *RemotePool) Put(c *sim.Clock, id page.ID, data []byte) error {
	var stamp uint64
	if r.stampOf != nil {
		stamp = r.stampOf(data)
	}
	r.mu.Lock()
	if e, ok := r.index[id]; ok {
		r.lru.MoveToFront(e.elem)
		if stamp > e.stamp {
			e.stamp = stamp
		}
		addr := e.addr
		r.mu.Unlock()
		if err := r.qp.Write(c, addr, data[:r.pageSize]); err != nil {
			// The frame now holds an old (or torn) version; drop the
			// mapping so readers miss to the authoritative tier instead
			// of reading stale bytes.
			r.Drop(id)
			return err
		}
		return nil
	}
	var addr uint64
	if len(r.free) > 0 {
		addr = r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
	} else {
		// Evict LRU.
		back := r.lru.Back()
		victim := back.Value.(page.ID)
		ve := r.index[victim]
		r.lru.Remove(back)
		delete(r.index, victim)
		if r.coh != nil {
			r.coh.Forget(victim)
		}
		addr = ve.addr
	}
	e := &remoteEntry{addr: addr, stamp: stamp}
	e.elem = r.lru.PushFront(id)
	r.index[id] = e
	if r.coh != nil {
		r.coh.Note(id)
	}
	r.mu.Unlock()
	if err := r.qp.Write(c, addr, data[:r.pageSize]); err != nil {
		// The frame was never written: it still holds the evicted
		// victim's bytes. Unmap it or reads would return the wrong page.
		r.Drop(id)
		return err
	}
	return nil
}

// Drop removes a page from the remote pool (invalidation).
func (r *RemotePool) Drop(id page.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[id]; ok {
		r.dropLocked(id, e)
	}
}

// Invalidate implements coherence.Tier.
func (r *RemotePool) Invalidate(id page.ID) { r.Drop(id) }

// IDs returns the resident page IDs (used by recovery: a rebooted compute
// node can repopulate from remote memory instead of storage).
func (r *RemotePool) IDs() []page.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]page.ID, 0, len(r.index))
	for id := range r.index {
		out = append(out, id)
	}
	return out
}

// TwoTier is LegoBase's two-level cache: a small compute-local LRU backed
// by a large remote-memory LRU, backed by the storage fetcher. Pages
// evicted from the local tier are demoted to the remote tier.
type TwoTier struct {
	Local  *Pool
	Remote *RemotePool
	fetch  Fetcher

	localHits  atomic.Int64
	remoteHits atomic.Int64
	storage    atomic.Int64
}

// NewTwoTier wires the two tiers. Dirty local evictions are demoted into
// the remote pool via the pool's writeback hook.
func NewTwoTier(cfg *sim.Config, localCap int, remote *RemotePool, fetch Fetcher) *TwoTier {
	t := &TwoTier{Remote: remote, fetch: fetch}
	t.Local = NewPool(cfg, localCap, nil, func(c *sim.Clock, id page.ID, data []byte) error {
		return remote.Put(c, id, data)
	})
	return t
}

// SetCoherence registers both tiers with the directory (as name.local and
// name.remote) and wires stamp validation into each.
func (t *TwoTier) SetCoherence(d *coherence.Directory, name string, stampOf StampFunc) {
	t.Local.SetCoherence(d.Register(name+".local", t.Local), stampOf)
	t.Remote.SetCoherence(d.Register(name+".remote", t.Remote), stampOf)
}

// Get returns the page bytes, trying local, then remote, then storage.
// The local probe goes through Peek so a hit is atomic with validation
// (the old Contains-then-Get pair raced invalidations between the two
// lock acquisitions).
func (t *TwoTier) Get(c *sim.Clock, id page.ID) ([]byte, error) {
	if data, ok := t.Local.Peek(c, id); ok {
		t.localHits.Add(1)
		return data, nil
	}
	buf := make([]byte, t.Remote.pageSize)
	ok, err := t.Remote.Get(c, id, buf)
	if err != nil {
		return nil, err
	}
	if ok {
		t.remoteHits.Add(1)
		if err := t.Local.Install(c, id, buf, false); err != nil {
			return nil, err
		}
		out := make([]byte, len(buf))
		copy(out, buf)
		return out, nil
	}
	t.storage.Add(1)
	data, err := t.fetch(c, id)
	if err != nil {
		return nil, err
	}
	if err := t.Remote.Put(c, id, data); err != nil {
		return nil, err
	}
	if err := t.Local.Install(c, id, data, false); err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Mutate updates the page in the local tier (write path; demotion to the
// remote tier happens on eviction, and durability is the engine's log).
func (t *TwoTier) Mutate(c *sim.Clock, id page.ID, fn func(data []byte) error) error {
	if _, ok := t.Local.Peek(c, id); !ok {
		// Pull a fresh copy into the local tier first (a stale local
		// frame was just dropped by the peek's validation).
		if _, err := t.Get(c, id); err != nil {
			return err
		}
	}
	return t.Local.Mutate(c, id, fn)
}

// TierStats reports (local hits, remote hits, storage fetches).
func (t *TwoTier) TierStats() (local, remote, storage int64) {
	return t.localHits.Load(), t.remoteHits.Load(), t.storage.Load()
}

// CombinedHitRatio reports the fraction of accesses served without
// touching storage.
func (t *TwoTier) CombinedHitRatio() float64 {
	l, r, s := t.TierStats()
	total := l + r + s
	if total == 0 {
		return 0
	}
	return float64(l+r) / float64(total)
}
