// Package buffer implements the buffer pools used across the engines: a
// local in-DRAM LRU pool, an RDMA-backed remote pool hosted on a memory
// node, and the LegoBase two-tier combination (local LRU in front of a
// remote-memory LRU, §3.1).
package buffer

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// Fetcher loads a page's bytes on a miss (e.g. from a storage node),
// charging the caller's clock.
type Fetcher func(c *sim.Clock, id page.ID) ([]byte, error)

// Writeback persists a dirty page on eviction.
type Writeback func(c *sim.Clock, id page.ID, data []byte) error

// ErrNoFetcher is returned when a miss occurs and no fetcher is set.
var ErrNoFetcher = errors.New("buffer: miss with no fetcher")

type frame struct {
	id    page.ID
	data  []byte
	dirty bool
}

// Pool is a local LRU page cache. All access goes through Get/Mutate under
// the pool lock; DRAM access cost is charged per touch.
type Pool struct {
	cfg       *sim.Config
	capacity  int
	fetch     Fetcher
	writeback Writeback

	mu     sync.Mutex
	lru    *list.List // front = most recent
	frames map[page.ID]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

// NewPool creates a pool holding up to capacity pages.
func NewPool(cfg *sim.Config, capacity int, fetch Fetcher, writeback Writeback) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		cfg:       cfg,
		capacity:  capacity,
		fetch:     fetch,
		writeback: writeback,
		lru:       list.New(),
		frames:    make(map[page.ID]*list.Element),
	}
}

// Capacity reports the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len reports the number of cached pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// HitRatio reports hits/(hits+misses).
func (p *Pool) HitRatio() float64 {
	h, m := p.hits.Load(), p.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// ResetStats clears the hit/miss counters.
func (p *Pool) ResetStats() { p.hits.Store(0); p.misses.Store(0) }

func (p *Pool) locked(c *sim.Clock, id page.ID, load bool) (*frame, error) {
	if e, ok := p.frames[id]; ok {
		p.lru.MoveToFront(e)
		p.hits.Add(1)
		return e.Value.(*frame), nil
	}
	p.misses.Add(1)
	if !load {
		return nil, nil
	}
	if p.fetch == nil {
		return nil, ErrNoFetcher
	}
	data, err := p.fetch(c, id)
	if err != nil {
		return nil, err
	}
	f := &frame{id: id, data: data}
	if err := p.evictIfFullLocked(c); err != nil {
		return nil, err
	}
	p.frames[id] = p.lru.PushFront(f)
	return f, nil
}

func (p *Pool) evictIfFullLocked(c *sim.Clock) error {
	for p.lru.Len() >= p.capacity {
		e := p.lru.Back()
		if e == nil {
			return nil
		}
		f := e.Value.(*frame)
		if f.dirty && p.writeback != nil {
			if err := p.writeback(c, f.id, f.data); err != nil {
				return err
			}
		}
		p.lru.Remove(e)
		delete(p.frames, f.id)
	}
	return nil
}

// Get returns a copy of the page bytes, fetching on miss.
func (p *Pool) Get(c *sim.Clock, id page.ID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.locked(c, id, true)
	if err != nil {
		return nil, err
	}
	c.Advance(p.cfg.DRAM.Cost(len(f.data)))
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Contains reports whether the page is cached (no fetch, no LRU effect on
// miss).
func (p *Pool) Contains(id page.ID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}

// Mutate applies fn to the cached page under the pool lock, fetching on
// miss, and marks the page dirty.
func (p *Pool) Mutate(c *sim.Clock, id page.ID, fn func(data []byte) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.locked(c, id, true)
	if err != nil {
		return err
	}
	c.Advance(p.cfg.DRAM.Cost(len(f.data)))
	if err := fn(f.data); err != nil {
		return err
	}
	f.dirty = true
	return nil
}

// Install inserts page bytes directly (e.g. a freshly created page),
// marking it dirty if requested.
func (p *Pool) Install(c *sim.Clock, id page.ID, data []byte, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.frames[id]; ok {
		f := e.Value.(*frame)
		f.data = data
		f.dirty = f.dirty || dirty
		p.lru.MoveToFront(e)
		return nil
	}
	if err := p.evictIfFullLocked(c); err != nil {
		return err
	}
	p.frames[id] = p.lru.PushFront(&frame{id: id, data: data, dirty: dirty})
	return nil
}

// Invalidate drops a page without writeback (coherence message from a
// remote writer).
func (p *Pool) Invalidate(id page.ID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.frames[id]; ok {
		p.lru.Remove(e)
		delete(p.frames, id)
	}
}

// InvalidateAll empties the pool without writeback (crash simulation).
func (p *Pool) InvalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.frames = make(map[page.ID]*list.Element)
}

// FlushAll writes back every dirty page.
func (p *Pool) FlushAll(c *sim.Clock) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e := p.lru.Front(); e != nil; e = e.Next() {
		f := e.Value.(*frame)
		if f.dirty {
			if p.writeback != nil {
				if err := p.writeback(c, f.id, f.data); err != nil {
					return err
				}
			}
			f.dirty = false
		}
	}
	return nil
}

// DirtyIDs returns the IDs of dirty pages (checkpointing support).
func (p *Pool) DirtyIDs() []page.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []page.ID
	for e := p.lru.Front(); e != nil; e = e.Next() {
		if f := e.Value.(*frame); f.dirty {
			out = append(out, f.id)
		}
	}
	return out
}

// RemotePool is a page cache hosted in a disaggregated memory node and
// accessed with one-sided RDMA. It is the "remote memory pool" tier of
// LegoBase and the elastic shared buffer of PolarDB Serverless.
type RemotePool struct {
	cfg      *sim.Config
	qp       *rdma.QP
	pageSize int
	capacity int

	mu    sync.Mutex
	lru   *list.List // of page.ID; front = most recent
	index map[page.ID]*remoteEntry
	free  []uint64 // free region addresses
}

type remoteEntry struct {
	addr uint64
	elem *list.Element
}

// NewRemotePool carves capacity page frames out of the node's registered
// memory starting at base.
func NewRemotePool(cfg *sim.Config, node *rdma.Node, stats *rdma.Stats, base uint64, capacity, pageSize int) *RemotePool {
	rp := &RemotePool{
		cfg:      cfg,
		qp:       rdma.Connect(cfg, node, stats),
		pageSize: pageSize,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[page.ID]*remoteEntry),
	}
	for i := capacity - 1; i >= 0; i-- {
		rp.free = append(rp.free, base+uint64(i*pageSize))
	}
	return rp
}

// Capacity reports the frame count.
func (r *RemotePool) Capacity() int { return r.capacity }

// Len reports resident pages.
func (r *RemotePool) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}

// Contains reports residency without RDMA traffic (the compute node keeps
// the directory locally; PolarDB Serverless keeps it on the memory node's
// control plane, which we fold into the directory lookup).
func (r *RemotePool) Contains(id page.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.index[id]
	return ok
}

// Get reads the page into buf via one-sided RDMA. Returns false on miss.
func (r *RemotePool) Get(c *sim.Clock, id page.ID, buf []byte) (bool, error) {
	r.mu.Lock()
	e, ok := r.index[id]
	if ok {
		r.lru.MoveToFront(e.elem)
	}
	r.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := r.qp.Read(c, e.addr, buf[:r.pageSize]); err != nil {
		return false, err
	}
	return true, nil
}

// Put writes the page to remote memory, evicting the LRU page if needed.
// Evicted pages are simply dropped: the remote pool caches pages that are
// durable elsewhere (storage tier), like LegoBase's remote memory.
func (r *RemotePool) Put(c *sim.Clock, id page.ID, data []byte) error {
	r.mu.Lock()
	if e, ok := r.index[id]; ok {
		r.lru.MoveToFront(e.elem)
		addr := e.addr
		r.mu.Unlock()
		if err := r.qp.Write(c, addr, data[:r.pageSize]); err != nil {
			// The frame now holds an old (or torn) version; drop the
			// mapping so readers miss to the authoritative tier instead
			// of reading stale bytes.
			r.Drop(id)
			return err
		}
		return nil
	}
	var addr uint64
	if len(r.free) > 0 {
		addr = r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
	} else {
		// Evict LRU.
		back := r.lru.Back()
		victim := back.Value.(page.ID)
		ve := r.index[victim]
		r.lru.Remove(back)
		delete(r.index, victim)
		addr = ve.addr
	}
	e := &remoteEntry{addr: addr}
	e.elem = r.lru.PushFront(id)
	r.index[id] = e
	r.mu.Unlock()
	if err := r.qp.Write(c, addr, data[:r.pageSize]); err != nil {
		// The frame was never written: it still holds the evicted
		// victim's bytes. Unmap it or reads would return the wrong page.
		r.Drop(id)
		return err
	}
	return nil
}

// Drop removes a page from the remote pool (invalidation).
func (r *RemotePool) Drop(id page.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[id]; ok {
		r.lru.Remove(e.elem)
		delete(r.index, id)
		r.free = append(r.free, e.addr)
	}
}

// IDs returns the resident page IDs (used by recovery: a rebooted compute
// node can repopulate from remote memory instead of storage).
func (r *RemotePool) IDs() []page.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]page.ID, 0, len(r.index))
	for id := range r.index {
		out = append(out, id)
	}
	return out
}

// TwoTier is LegoBase's two-level cache: a small compute-local LRU backed
// by a large remote-memory LRU, backed by the storage fetcher. Pages
// evicted from the local tier are demoted to the remote tier.
type TwoTier struct {
	Local  *Pool
	Remote *RemotePool
	fetch  Fetcher

	localHits  atomic.Int64
	remoteHits atomic.Int64
	storage    atomic.Int64
}

// NewTwoTier wires the two tiers. Dirty local evictions are demoted into
// the remote pool via the pool's writeback hook.
func NewTwoTier(cfg *sim.Config, localCap int, remote *RemotePool, fetch Fetcher) *TwoTier {
	t := &TwoTier{Remote: remote, fetch: fetch}
	t.Local = NewPool(cfg, localCap, nil, func(c *sim.Clock, id page.ID, data []byte) error {
		return remote.Put(c, id, data)
	})
	return t
}

// Get returns the page bytes, trying local, then remote, then storage.
func (t *TwoTier) Get(c *sim.Clock, id page.ID) ([]byte, error) {
	if t.Local.Contains(id) {
		t.localHits.Add(1)
		return t.Local.Get(c, id)
	}
	buf := make([]byte, t.Remote.pageSize)
	ok, err := t.Remote.Get(c, id, buf)
	if err != nil {
		return nil, err
	}
	if ok {
		t.remoteHits.Add(1)
		if err := t.Local.Install(c, id, buf, false); err != nil {
			return nil, err
		}
		out := make([]byte, len(buf))
		copy(out, buf)
		return out, nil
	}
	t.storage.Add(1)
	data, err := t.fetch(c, id)
	if err != nil {
		return nil, err
	}
	if err := t.Remote.Put(c, id, data); err != nil {
		return nil, err
	}
	if err := t.Local.Install(c, id, data, false); err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Mutate updates the page in the local tier (write path; demotion to the
// remote tier happens on eviction, and durability is the engine's log).
func (t *TwoTier) Mutate(c *sim.Clock, id page.ID, fn func(data []byte) error) error {
	if !t.Local.Contains(id) {
		// Pull into local tier first.
		if _, err := t.Get(c, id); err != nil {
			return err
		}
	}
	return t.Local.Mutate(c, id, fn)
}

// TierStats reports (local hits, remote hits, storage fetches).
func (t *TwoTier) TierStats() (local, remote, storage int64) {
	return t.localHits.Load(), t.remoteHits.Load(), t.storage.Load()
}

// CombinedHitRatio reports the fraction of accesses served without
// touching storage.
func (t *TwoTier) CombinedHitRatio() float64 {
	l, r, s := t.TierStats()
	total := l + r + s
	if total == 0 {
		return 0
	}
	return float64(l+r) / float64(total)
}
