// Package coherence implements the versioned-page cache-coherence layer
// shared by every cache tier (local buffer pools, remote memory pools,
// two-tier hierarchies, engine reader caches). Each engine owns one
// Directory: a per-page version map (the page's highest durable
// update-record stamp — the LSN/commitSeq the engine already produces at
// its durability point via StagedTx.StampCommit) plus a registry of which
// tiers currently hold which pages.
//
// At commit, the writer publishes the written pages' new stamps. In
// ModeInvalidate the directory fans an invalidation to every holder tier
// (Aurora-style: notices ride the log stream); in ModeBump it only bumps
// the version and holders detect staleness lazily on their next access
// (PolarDB-Serverless-style: one validation read instead of an
// invalidation broadcast). Either way a cached copy whose stamp trails the
// directory version is never served: tiers call Handle.Validate on every
// hit, so the two modes trade invalidation traffic against stale-hit
// refetches without ever trading correctness.
//
// Publications can piggyback on group commit: EnableBatching routes them
// through a sim.Batcher with the same size/window policy as the engine's
// group-commit batcher, so one durable flush = one coherence round for the
// whole group.
//
// Locking: the directory lock is ordered AFTER tier locks (a tier
// validates or notes holdings while holding its own lock) and fan-out
// happens with no directory lock held, so tiers are free to take their
// own locks in Invalidate. Callers must not hold a tier lock when calling
// Publish.
package coherence

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
)

// Mode selects how a publication reaches holder tiers.
type Mode int

const (
	// ModeInvalidate eagerly drops every holder tier's copy at the
	// durability point (invalidation notices ride the commit fan-out).
	ModeInvalidate Mode = iota
	// ModeBump only advances the directory version; holders detect the
	// stale copy on their next access via stamp validation.
	ModeBump
)

func (m Mode) String() string {
	if m == ModeBump {
		return "bump"
	}
	return "invalidate"
}

// Tier is a cache tier that can drop a page on a coherence invalidation.
// buffer.Pool and buffer.RemotePool implement it.
type Tier interface {
	Invalidate(id page.ID)
}

// PageStamp pairs a page with the commit stamp its newly durable bytes
// carry (the page's highest update-record LSN for log-structured engines).
type PageStamp struct {
	ID    page.ID
	Stamp uint64
}

// pub is one commit's publication: the written pages' new stamps plus the
// writer's own tier (excluded from fan-out — the writer applies its update
// in place and re-stamps its frame).
type pub struct {
	stamps  []PageStamp
	exclude *tierEntry
}

// tierEntry tracks one registered tier and the set of pages it holds.
type tierEntry struct {
	name string
	tier Tier

	mu    sync.Mutex
	holds map[page.ID]struct{}
}

func (e *tierEntry) note(id page.ID) {
	e.mu.Lock()
	e.holds[id] = struct{}{}
	e.mu.Unlock()
}

func (e *tierEntry) forget(id page.ID) {
	e.mu.Lock()
	delete(e.holds, id)
	e.mu.Unlock()
}

func (e *tierEntry) holding(id page.ID) bool {
	e.mu.Lock()
	_, ok := e.holds[id]
	e.mu.Unlock()
	return ok
}

// Directory is one engine's coherence directory.
type Directory struct {
	cfg  *sim.Config
	site string

	// OnInvalidate, when non-nil, is called once per fan-out round with
	// the number of invalidations delivered; engines feed
	// engine.Stats.Invalidations. Set before first use.
	OnInvalidate func(n int)
	// OnStale, when non-nil, is called once per cached copy rejected by
	// validation; engines feed engine.Stats.StaleHits. Set before first
	// use.
	OnStale func()

	mu       sync.Mutex
	mode     Mode
	tiers    []*tierEntry
	versions map[page.ID]uint64

	bat *sim.Batcher[pub, struct{}]

	publishes     atomic.Int64
	rounds        atomic.Int64
	invalidations atomic.Int64
	bumps         atomic.Int64
	staleHits     atomic.Int64
}

// NewDirectory creates a directory and registers its counters with the
// config's stats registry under site.
func NewDirectory(cfg *sim.Config, site string, mode Mode) *Directory {
	d := &Directory{
		cfg:      cfg,
		site:     site,
		mode:     mode,
		versions: make(map[page.ID]uint64),
	}
	cfg.RegisterCoherence(site, d.Stats)
	return d
}

// Site reports the registry site name.
func (d *Directory) Site() string { return d.site }

// Mode reports the current propagation mode.
func (d *Directory) Mode() Mode {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mode
}

// SetMode switches the propagation mode (experiments ablate the two).
func (d *Directory) SetMode(m Mode) {
	d.mu.Lock()
	d.mode = m
	d.mu.Unlock()
}

// Stats snapshots the directory counters.
func (d *Directory) Stats() sim.CoherenceStats {
	return sim.CoherenceStats{
		Publishes:     d.publishes.Load(),
		Rounds:        d.rounds.Load(),
		Invalidations: d.invalidations.Load(),
		Bumps:         d.bumps.Load(),
		StaleHits:     d.staleHits.Load(),
	}
}

// Register subscribes a tier under name and returns its handle. Tiers may
// register at any time (e.g. a scaled-out compute node's cache).
func (d *Directory) Register(name string, t Tier) *Handle {
	e := &tierEntry{name: name, tier: t, holds: make(map[page.ID]struct{})}
	d.mu.Lock()
	d.tiers = append(d.tiers, e)
	d.mu.Unlock()
	return &Handle{d: d, e: e}
}

// Deregister removes a tier's subscription (a retired compute node's
// cache leaving the fleet): it stops receiving invalidation fan-out and
// its holdings no longer draw notices. A nil or already-removed handle is
// a no-op.
func (d *Directory) Deregister(h *Handle) {
	if h == nil {
		return
	}
	d.mu.Lock()
	for i, e := range d.tiers {
		if e == h.e {
			d.tiers = append(d.tiers[:i], d.tiers[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
}

// EnableBatching routes publications through a leader-combining batcher
// with the given size/window policy so concurrent committers share one
// coherence round — engines call this alongside EnableGroupCommit so one
// group-commit flush is one coherence round. maxItems <= 1 disables
// grouping.
func (d *Directory) EnableBatching(maxItems int, window time.Duration) {
	if maxItems <= 1 {
		d.mu.Lock()
		d.bat = nil
		d.mu.Unlock()
		return
	}
	b := sim.NewBatcher(d.cfg, d.site,
		sim.BatchPolicy{MaxItems: maxItems, Window: window},
		func(c *sim.Clock, pubs []pub, out []struct{}) error {
			d.round(c, pubs)
			return nil
		})
	d.mu.Lock()
	d.bat = b
	d.mu.Unlock()
}

// Version reports the page's current directory version (0 if never
// published). Safe to call while holding a tier lock.
func (d *Directory) Version(id page.ID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.versions[id]
}

// Publish makes the written pages' new stamps visible at the durability
// point: versions are bumped and, in ModeInvalidate, every holder tier
// except the writer's own is told to drop its copy. Must not be called
// with a tier lock held.
func (d *Directory) Publish(c *sim.Clock, stamps []PageStamp, exclude *Handle) {
	if len(stamps) == 0 {
		return
	}
	d.publishes.Add(1)
	p := pub{stamps: stamps}
	if exclude != nil {
		p.exclude = exclude.e
	}
	d.mu.Lock()
	bat := d.bat
	d.mu.Unlock()
	if bat != nil {
		// Ride a shared coherence round (piggybacked on the group-commit
		// cadence); the flush error path is unreachable — rounds are
		// metadata, not a faultable substrate op.
		bat.Submit(c, p) //nolint:errcheck
		return
	}
	d.round(c, []pub{p})
}

// round applies a sealed group of publications: one version-map update and
// one invalidation fan-out for the whole group.
func (d *Directory) round(c *sim.Clock, pubs []pub) {
	d.rounds.Add(1)
	type target struct {
		e  *tierEntry
		id page.ID
	}
	var targets []target
	var bumped, bytes int
	d.mu.Lock()
	mode := d.mode
	for _, p := range pubs {
		for _, ps := range p.stamps {
			if ps.Stamp > d.versions[ps.ID] {
				d.versions[ps.ID] = ps.Stamp
				bumped++
			}
		}
	}
	if mode == ModeInvalidate {
		for _, p := range pubs {
			for _, ps := range p.stamps {
				for _, e := range d.tiers {
					if e == p.exclude {
						continue
					}
					if e.holding(ps.ID) {
						targets = append(targets, target{e: e, id: ps.ID})
					}
				}
			}
		}
	}
	d.mu.Unlock()
	d.bumps.Add(int64(bumped))
	if len(targets) > 0 {
		// Deliver the invalidations (the tier's Invalidate takes the
		// tier's own lock; no directory lock is held here). The round is
		// charged as one control-plane message burst: it is part of the
		// commit protocol, so it is observed for latency accounting but
		// never fault-injected — a dropped invalidation would be a
		// permanent stale read, which no real protocol tolerates
		// unacknowledged.
		op := d.cfg.Begin(c, d.site+".round")
		for _, t := range targets {
			t.e.tier.Invalidate(t.id)
			bytes += 16 // page id + stamp per notice
		}
		c.Advance(d.cfg.RDMARPC.Cost(bytes))
		op.End(int64(bytes))
		d.invalidations.Add(int64(len(targets)))
		if d.OnInvalidate != nil {
			d.OnInvalidate(len(targets))
		}
	}
}

// Handle is a tier's subscription to a directory.
type Handle struct {
	d *Directory
	e *tierEntry
}

// Note records that the tier now holds the page. Safe under the tier lock.
func (h *Handle) Note(id page.ID) {
	if h == nil {
		return
	}
	h.e.note(id)
}

// Forget records that the tier dropped the page. Safe under the tier lock.
func (h *Handle) Forget(id page.ID) {
	if h == nil {
		return
	}
	h.e.forget(id)
}

// Version reports the page's directory version. Safe under the tier lock.
func (h *Handle) Version(id page.ID) uint64 {
	if h == nil {
		return 0
	}
	return h.d.Version(id)
}

// Validate reports whether a cached copy carrying stamp may be served: it
// must be at least as new as the directory version. A rejection is
// counted as a stale hit. Safe under the tier lock.
func (h *Handle) Validate(id page.ID, stamp uint64) bool {
	if h == nil {
		return true
	}
	if stamp >= h.d.Version(id) {
		return true
	}
	h.d.staleHits.Add(1)
	if h.d.OnStale != nil {
		h.d.OnStale()
	}
	return false
}
