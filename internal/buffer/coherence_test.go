package buffer

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// --- Satellite: FlushAll partial-flush error semantics ---

// Regression: a mid-loop writeback failure used to return immediately,
// silently skipping every dirty page after the failed one. FlushAll must
// flush everything it can, keep failed pages dirty, and aggregate the
// errors.
func TestFlushAllFlushesPastFailuresAndAggregates(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 8, 256)
	failing := map[page.ID]bool{2: true, 4: true}
	wb := func(c *sim.Clock, id page.ID, data []byte) error {
		if failing[id] {
			return fmt.Errorf("device fault on page %d", id)
		}
		return fs.writeback(c, id, data)
	}
	p := NewPool(cfg, 8, fs.fetch, wb)
	c := sim.NewClock()
	for i := 0; i < 6; i++ {
		if err := p.Mutate(c, page.ID(i), func(d []byte) error {
			copy(d, fmt.Sprintf("dirty-%d", i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	err := p.FlushAll(c)
	if err == nil {
		t.Fatal("FlushAll with failing pages returned nil error")
	}
	// Both failures must be visible to the checkpointer.
	if !strings.Contains(err.Error(), "page 2") || !strings.Contains(err.Error(), "page 4") {
		t.Fatalf("aggregated error missing a failed page: %v", err)
	}
	if dirty := p.DirtyIDs(); len(dirty) != 2 {
		t.Fatalf("dirty after partial flush = %v, want exactly the 2 failed pages", dirty)
	}
	// Every non-failing page was flushed — including pages the old code
	// skipped because they followed a failure in LRU order.
	for i := 0; i < 6; i++ {
		id := page.ID(i)
		if failing[id] {
			continue
		}
		if !bytes.HasPrefix(fs.pages[id], []byte(fmt.Sprintf("dirty-%d", i))) {
			t.Fatalf("page %d not flushed past the failure", i)
		}
	}
	// Heal the device: the retried flush drains the remainder.
	failing = map[page.ID]bool{}
	if err := p.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtyIDs(); len(got) != 0 {
		t.Fatalf("dirty after retry = %v", got)
	}
}

// The same semantics under the seeded fault injector: after a faulty
// checkpoint every page is either persisted or still dirty — none are lost
// in between.
func TestFlushAllUnderInjectedDeviceFault(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 16, 256)
	inj := fault.New(99, fault.Profile{Name: "flush-io", Drop: 0.5, Sites: []string{"buffer."}})
	wb := func(c *sim.Clock, id page.ID, data []byte) error {
		if out := inj.Inject(c, "buffer.writeback"); out.Drop {
			return out.Err
		}
		return fs.writeback(c, id, data)
	}
	p := NewPool(cfg, 16, fs.fetch, wb)
	c := sim.NewClock()
	for i := 0; i < 12; i++ {
		if err := p.Mutate(c, page.ID(i), func(d []byte) error {
			copy(d, fmt.Sprintf("v-%d", i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	err := p.FlushAll(c)
	dirty := map[page.ID]bool{}
	for _, id := range p.DirtyIDs() {
		dirty[id] = true
	}
	if err == nil && len(dirty) != 0 {
		t.Fatalf("nil error but %d pages still dirty", len(dirty))
	}
	for i := 0; i < 12; i++ {
		id := page.ID(i)
		persisted := bytes.HasPrefix(fs.pages[id], []byte(fmt.Sprintf("v-%d", i)))
		if !persisted && !dirty[id] {
			t.Fatalf("page %d neither persisted nor dirty (lost by partial flush)", i)
		}
	}
	inj.Heal()
	if err := p.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtyIDs(); len(got) != 0 {
		t.Fatalf("dirty after healed flush = %v", got)
	}
}

// --- Satellite: dirty-victim eviction retry storm ---

// Regression: a failed writeback used to leave the victim at the LRU back,
// so every subsequent miss re-attempted the same writeback (livelock under
// a storage fault window). The victim must rotate to the front so the next
// eviction picks a different victim.
func TestEvictionRotatesFailedVictim(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 10, 256)
	victimAttempts := 0
	wb := func(c *sim.Clock, id page.ID, data []byte) error {
		if id == 0 {
			victimAttempts++
			return errors.New("storage node down")
		}
		return fs.writeback(c, id, data)
	}
	p := NewPool(cfg, 2, fs.fetch, wb)
	c := sim.NewClock()
	// Page 0 dirty and LRU (accessed first), page 1 clean and MRU.
	if err := p.Mutate(c, 0, func(d []byte) error { copy(d, "dirty-0"); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(c, 1); err != nil {
		t.Fatal(err)
	}
	// First miss: evicts page 0, writeback fails, the caller sees the
	// error once.
	if _, err := p.Get(c, 2); err == nil {
		t.Fatal("expected the first eviction attempt to surface the writeback failure")
	}
	if victimAttempts != 1 {
		t.Fatalf("victim writeback attempts = %d, want 1", victimAttempts)
	}
	// Retry: the failed victim rotated to the front, so the eviction
	// picks the clean page 1 and succeeds. The old code livelocked here,
	// re-attempting page 0 on every call.
	if _, err := p.Get(c, 2); err != nil {
		t.Fatalf("retry after rotation failed: %v", err)
	}
	if victimAttempts != 1 {
		t.Fatalf("victim re-attempted %d times after rotation, want no retries", victimAttempts-1)
	}
	// The dirty victim survived both evictions — its update is not lost.
	if !p.Contains(0) {
		t.Fatal("dirty victim was dropped despite failed writeback")
	}
	d, err := p.Get(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(d, []byte("dirty-0")) {
		t.Fatalf("dirty victim lost its update: %q", d[:8])
	}
}

// Under the seeded injector, a fault window must not pin the pool on one
// victim: progress resumes within a bounded number of retries even with
// every frame dirty.
func TestEvictionProgressUnderFaultWindow(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 64, 256)
	inj := fault.New(7, fault.Profile{Name: "evict-io", Drop: 0.7, Sites: []string{"buffer."}})
	wb := func(c *sim.Clock, id page.ID, data []byte) error {
		if out := inj.Inject(c, "buffer.writeback"); out.Drop {
			return out.Err
		}
		return fs.writeback(c, id, data)
	}
	p := NewPool(cfg, 4, fs.fetch, wb)
	c := sim.NewClock()
	for i := 0; i < 4; i++ {
		if err := p.Mutate(c, page.ID(i), func(d []byte) error { copy(d, "x"); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	got := false
	for attempt := 0; attempt < 64; attempt++ {
		if _, err := p.Get(c, 50); err == nil {
			got = true
			break
		}
	}
	if !got {
		t.Fatal("eviction never made progress under the fault window (victim not rotating?)")
	}
}

// --- Satellite: probe misses must not skew HitRatio ---

func TestPeekProbesDoNotInflateMisses(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 10, 256)
	p := NewPool(cfg, 4, fs.fetch, nil)
	c := sim.NewClock()
	if _, err := p.Get(c, 0); err != nil { // 1 demand miss
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ { // 5 probe misses
		if _, ok := p.Peek(c, page.ID(i)); ok {
			t.Fatalf("page %d unexpectedly cached", i)
		}
	}
	if _, ok := p.Peek(c, 0); !ok { // 1 hit (probe hits are real hits)
		t.Fatal("cached page not served by Peek")
	}
	if got := p.ProbeMisses(); got != 5 {
		t.Fatalf("probe misses = %d, want 5", got)
	}
	// hits=1, demand misses=1: ratio 0.5. The pre-fix counter folded the
	// 5 probes into misses (ratio 1/7), skewing any policy fed by it.
	if got := p.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5 (probe misses must not count)", got)
	}
	if fs.fetches != 1 {
		t.Fatalf("probes fetched: fetches = %d, want 1", fs.fetches)
	}
}

// --- Coherence: directory + tiers ---

func pageStampOf(data []byte) uint64 { return page.Wrap(data).LSN() }

func stampPage(data []byte, lsn uint64) { page.Wrap(data).SetLSN(lsn) }

// zeroHeaders clears the fake pages' leading bytes: newFakeStore fills
// pages with a text label whose first 8 bytes would otherwise read as a
// garbage page LSN.
func zeroHeaders(fs *fakeStore) {
	for _, d := range fs.pages {
		for i := 0; i < 16 && i < len(d); i++ {
			d[i] = 0
		}
	}
}

func TestDirectoryInvalidateFansOutToHolders(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 8, 256)
	zeroHeaders(fs)
	dir := coherence.NewDirectory(cfg, "test.coherence", coherence.ModeInvalidate)
	writer := NewPool(cfg, 4, fs.fetch, nil)
	reader := NewPool(cfg, 4, fs.fetch, nil)
	wh := dir.Register("writer", writer)
	writer.SetCoherence(wh, pageStampOf)
	reader.SetCoherence(dir.Register("reader", reader), pageStampOf)
	c := sim.NewClock()

	if _, err := writer.Get(c, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Get(c, 1); err != nil {
		t.Fatal(err)
	}
	// Writer commits: re-stamps its own frame, publishes, holders drop.
	if err := writer.Mutate(c, 1, func(d []byte) error {
		copy(d[8:], "new")
		stampPage(d, 10)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	dir.Publish(c, []coherence.PageStamp{{ID: 1, Stamp: 10}}, wh)

	if reader.Contains(1) {
		t.Fatal("holder tier still caches the page after an invalidate publish")
	}
	if !writer.Contains(1) {
		t.Fatal("the excluded writer tier lost its own frame")
	}
	// The writer's re-stamped frame is served without a refetch.
	before := fs.fetches
	d, err := writer.Get(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fs.fetches != before {
		t.Fatal("fresh writer frame was refetched")
	}
	if !bytes.HasPrefix(d[8:], []byte("new")) {
		t.Fatalf("writer frame lost its update: %q", d[8:12])
	}
	s := dir.Stats()
	if s.Publishes != 1 || s.Rounds != 1 || s.Invalidations != 1 || s.Bumps != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if dir.Version(1) != 10 {
		t.Fatalf("version = %d, want 10", dir.Version(1))
	}
}

func TestModeBumpConvertsInvalidationsToStaleHits(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 8, 256)
	dir := coherence.NewDirectory(cfg, "test.coherence", coherence.ModeBump)
	a := NewPool(cfg, 4, fs.fetch, nil)
	b := NewPool(cfg, 4, fs.fetch, nil)
	// stampOf nil: frames are stamped with the directory version at fill
	// time (the conservative floor for tiers whose data carries no stamp).
	a.SetCoherence(dir.Register("a", a), nil)
	b.SetCoherence(dir.Register("b", b), nil)
	c := sim.NewClock()

	if _, err := a.Get(c, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(c, 3); err != nil {
		t.Fatal(err)
	}
	dir.Publish(c, []coherence.PageStamp{{ID: 3, Stamp: 7}}, nil)

	// No fan-out in bump mode: both copies still resident...
	if !a.Contains(3) || !b.Contains(3) {
		t.Fatal("bump mode must not drop holder copies eagerly")
	}
	if s := dir.Stats(); s.Invalidations != 0 {
		t.Fatalf("bump mode sent %d invalidations", s.Invalidations)
	}
	// ...but the stale copy is caught lazily on the next access.
	before := fs.fetches
	if _, err := b.Get(c, 3); err != nil {
		t.Fatal(err)
	}
	if fs.fetches != before+1 {
		t.Fatal("stale copy served without revalidation refetch")
	}
	if b.StaleHits() != 1 {
		t.Fatalf("pool stale hits = %d, want 1", b.StaleHits())
	}
	if s := dir.Stats(); s.StaleHits < 1 {
		t.Fatalf("directory stale hits = %d", s.StaleHits)
	}
	// The refetched frame carries the floor stamp and is now served.
	before = fs.fetches
	if _, err := b.Get(c, 3); err != nil {
		t.Fatal(err)
	}
	if fs.fetches != before {
		t.Fatal("revalidated frame refetched again (refetch livelock)")
	}
}

func TestPublishBatchingCoalescesRounds(t *testing.T) {
	cfg := sim.DefaultConfig()
	dir := coherence.NewDirectory(cfg, "test.coherence", coherence.ModeInvalidate)
	dir.EnableBatching(4, 10*time.Microsecond)
	sim.RunGroup(4, func(id int, c *sim.Clock) int {
		for i := 0; i < 8; i++ {
			dir.Publish(c, []coherence.PageStamp{{ID: page.ID(id*8 + i), Stamp: uint64(i + 1)}}, nil)
		}
		return 8
	})
	s := dir.Stats()
	if s.Publishes != 32 {
		t.Fatalf("publishes = %d, want 32", s.Publishes)
	}
	if s.Rounds >= s.Publishes {
		t.Fatalf("batched publishes did not coalesce: %d rounds for %d publishes", s.Rounds, s.Publishes)
	}
	// Every publication took effect regardless of which round carried it.
	for w := 0; w < 4; w++ {
		for i := 0; i < 8; i++ {
			if got := dir.Version(page.ID(w*8 + i)); got != uint64(i+1) {
				t.Fatalf("version[%d] = %d, want %d", w*8+i, got, i+1)
			}
		}
	}
}

// --- Satellite: TwoTier demotion/invalidation interleavings ---

// A dirty local frame holding pre-publish bytes is evicted AFTER a newer
// stamp was published: the demotion writes old bytes into the remote tier,
// and the remote entry's stamp must keep them from ever being served.
func TestTwoTierStaleDemotionNotServed(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 16, 256)
	zeroHeaders(fs)
	dir := coherence.NewDirectory(cfg, "lego.coherence", coherence.ModeBump)
	remote, _ := newRemote(cfg, 8, 256)
	tt := NewTwoTier(cfg, 2, remote, fs.fetch)
	tt.SetCoherence(dir, "lego", pageStampOf)
	c := sim.NewClock()

	// Local tier caches page 5 stamped 3 (dirty: demotes on eviction).
	if err := tt.Mutate(c, 5, func(d []byte) error {
		copy(d[8:], "old")
		stampPage(d, 3)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A remote writer commits stamp 9 for page 5; the authoritative store
	// now has the new bytes.
	newImg := make([]byte, 256)
	stampPage(newImg, 9)
	copy(newImg[8:], "fresh")
	fs.pages[5] = newImg
	dir.Publish(c, []coherence.PageStamp{{ID: 5, Stamp: 9}}, nil)

	// Now the local tier (capacity 2) evicts page 5: the demotion puts
	// the STALE bytes (stamp 3) into the remote pool.
	if _, err := tt.Get(c, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := tt.Get(c, 7); err != nil {
		t.Fatal(err)
	}
	if !remote.Contains(5) {
		t.Fatal("demotion race not constructed: page 5 was not evicted to remote")
	}
	// The stale demoted copy must NOT satisfy the read: validation sends
	// the access to storage for the fresh bytes.
	_, _, storageBefore := tt.TierStats()
	d, err := tt.Get(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(d[8:], []byte("fresh")) {
		t.Fatalf("served stale demoted bytes: %q", d[8:13])
	}
	if _, _, storageAfter := tt.TierStats(); storageAfter != storageBefore+1 {
		t.Fatal("fresh bytes did not come from storage (stale remote copy served?)")
	}
	if remote.StaleHits() != 1 {
		t.Fatalf("remote stale hits = %d, want 1", remote.StaleHits())
	}
}

// syncStore is a thread-safe backing store for the concurrent tests. Its
// store is stamp-monotone per page, like a real storage tier ordered by
// the durability point.
type syncStore struct {
	cfg *sim.Config

	mu    sync.Mutex
	pages map[page.ID][]byte
}

func newSyncStore(cfg *sim.Config, n, pageSize int) *syncStore {
	s := &syncStore{cfg: cfg, pages: make(map[page.ID][]byte)}
	for i := 0; i < n; i++ {
		s.pages[page.ID(i)] = make([]byte, pageSize)
	}
	return s
}

func (s *syncStore) fetch(c *sim.Clock, id page.ID) ([]byte, error) {
	s.mu.Lock()
	d, ok := s.pages[id]
	var out []byte
	if ok {
		out = append([]byte(nil), d...)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no page %d", id)
	}
	c.Advance(s.cfg.SSDRead.Cost(len(out)))
	return out, nil
}

func (s *syncStore) store(id page.ID, data []byte) {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	if cur, ok := s.pages[id]; !ok || page.Wrap(cp).LSN() >= page.Wrap(cur).LSN() {
		s.pages[id] = cp
	}
	s.mu.Unlock()
}

// Concurrent demotions racing invalidation publishes, with the seeded
// chaos profiles injected into the RDMA fabric: a read must never surface
// bytes older than the version published before the read was issued. Run
// with -race.
func TestTwoTierDemotionInvalidationInterleavings(t *testing.T) {
	profiles := append([]fault.Profile{{Name: "clean"}}, fault.Profiles()...)
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cfg := sim.DefaultConfig()
			inj := fault.New(20260808, p)
			if p.Name != "clean" {
				cfg.Fault = inj
			}
			st := newSyncStore(cfg, 8, 256)
			dir := coherence.NewDirectory(cfg, "lego.coherence", coherence.ModeInvalidate)
			remote, _ := newRemote(cfg, 4, 256)
			tt := NewTwoTier(cfg, 2, remote, st.fetch)
			tt.SetCoherence(dir, "lego", pageStampOf)

			const pages = 4
			res := sim.RunGroup(4, func(id int, c *sim.Clock) int {
				ops := 0
				for i := 0; i < 40; i++ {
					pg := page.ID((id + i) % pages)
					if (id+i)%3 == 0 {
						// Writer: stamp past the frame's current LSN, make
						// the bytes durable, then publish — the same
						// apply-store-publish order the engines use.
						var stamp uint64
						err := tt.Mutate(c, pg, func(d []byte) error {
							stamp = pageStampOf(d) + 1
							stampPage(d, stamp)
							st.store(pg, d)
							return nil
						})
						if err == nil {
							dir.Publish(c, []coherence.PageStamp{{ID: pg, Stamp: stamp}}, nil)
							ops++
						}
					} else {
						floor := dir.Version(pg)
						d, err := tt.Get(c, pg)
						if err != nil {
							continue // injected fault
						}
						if got := pageStampOf(d); got < floor {
							t.Errorf("stale read: page %d stamp %d < published floor %d", pg, got, floor)
						}
						ops++
					}
				}
				return ops
			})
			if res.TotalOps == 0 {
				t.Fatal("no operations completed")
			}
			inj.Heal()
			c := sim.NewClock()
			for pg := page.ID(0); pg < pages; pg++ {
				floor := dir.Version(pg)
				d, err := tt.Get(c, pg)
				if err != nil {
					t.Fatalf("post-heal read of page %d: %v", pg, err)
				}
				if got := pageStampOf(d); got < floor {
					t.Errorf("post-heal stale read: page %d stamp %d < floor %d", pg, got, floor)
				}
			}
		})
	}
}
