package buffer

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// fakeStore is a trivial backing store charging SSD costs.
type fakeStore struct {
	cfg     *sim.Config
	pages   map[page.ID][]byte
	fetches int
	writes  int
}

func newFakeStore(cfg *sim.Config, n int, pageSize int) *fakeStore {
	fs := &fakeStore{cfg: cfg, pages: make(map[page.ID][]byte)}
	for i := 0; i < n; i++ {
		d := make([]byte, pageSize)
		copy(d, fmt.Sprintf("page-%d", i))
		fs.pages[page.ID(i)] = d
	}
	return fs
}

func (fs *fakeStore) fetch(c *sim.Clock, id page.ID) ([]byte, error) {
	fs.fetches++
	d, ok := fs.pages[id]
	if !ok {
		return nil, fmt.Errorf("no page %d", id)
	}
	c.Advance(fs.cfg.SSDRead.Cost(len(d)))
	out := make([]byte, len(d))
	copy(out, d)
	return out, nil
}

func (fs *fakeStore) writeback(c *sim.Clock, id page.ID, data []byte) error {
	fs.writes++
	d := make([]byte, len(data))
	copy(d, data)
	fs.pages[id] = d
	c.Advance(fs.cfg.SSDWrite.Cost(len(data)))
	return nil
}

func TestPoolHitAndMiss(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 10, 512)
	p := NewPool(cfg, 4, fs.fetch, fs.writeback)
	c := sim.NewClock()

	d, err := p.Get(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(d, []byte("page-3")) {
		t.Fatalf("got %q", d[:8])
	}
	missCost := c.Now()

	c2 := sim.NewClock()
	if _, err := p.Get(c2, 3); err != nil {
		t.Fatal(err)
	}
	if !(c2.Now() < missCost/10) {
		t.Fatalf("hit (%v) should be ≫ cheaper than miss (%v)", c2.Now(), missCost)
	}
	if p.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %v", p.HitRatio())
	}
	if fs.fetches != 1 {
		t.Fatalf("fetches = %d", fs.fetches)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 10, 512)
	p := NewPool(cfg, 2, fs.fetch, fs.writeback)
	c := sim.NewClock()

	if err := p.Mutate(c, 0, func(d []byte) error { d[100] = 0xAB; return nil }); err != nil {
		t.Fatal(err)
	}
	p.Get(c, 1)
	p.Get(c, 2) // evicts page 0 (dirty)
	if fs.writes != 1 {
		t.Fatalf("writebacks = %d, want 1", fs.writes)
	}
	if fs.pages[0][100] != 0xAB {
		t.Fatal("dirty eviction lost the mutation")
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestPoolGetReturnsCopy(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 2, 128)
	p := NewPool(cfg, 2, fs.fetch, nil)
	c := sim.NewClock()
	d, _ := p.Get(c, 0)
	d[0] = 0xFF
	d2, _ := p.Get(c, 0)
	if d2[0] == 0xFF {
		t.Fatal("Get leaked the cached frame")
	}
}

func TestPoolMissWithoutFetcher(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := NewPool(cfg, 2, nil, nil)
	if _, err := p.Get(sim.NewClock(), 1); err != ErrNoFetcher {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolInvalidate(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 4, 128)
	p := NewPool(cfg, 4, fs.fetch, fs.writeback)
	c := sim.NewClock()
	p.Get(c, 0)
	p.Invalidate(0)
	if p.Contains(0) {
		t.Fatal("page survived invalidation")
	}
	p.Get(c, 1)
	p.Get(c, 2)
	p.InvalidateAll()
	if p.Len() != 0 {
		t.Fatal("InvalidateAll left pages")
	}
}

func TestPoolFlushAllAndDirtyIDs(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 4, 128)
	p := NewPool(cfg, 4, fs.fetch, fs.writeback)
	c := sim.NewClock()
	p.Mutate(c, 0, func(d []byte) error { d[0] = 1; return nil })
	p.Mutate(c, 1, func(d []byte) error { d[0] = 2; return nil })
	p.Get(c, 2)
	ids := p.DirtyIDs()
	if len(ids) != 2 {
		t.Fatalf("dirty = %v", ids)
	}
	if err := p.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if fs.writes != 2 {
		t.Fatalf("writes = %d", fs.writes)
	}
	if len(p.DirtyIDs()) != 0 {
		t.Fatal("pages still dirty after flush")
	}
}

func TestPoolInstall(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := NewPool(cfg, 2, nil, nil)
	c := sim.NewClock()
	data := make([]byte, 64)
	data[0] = 7
	if err := p.Install(c, 9, data, true); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(c, 9)
	if err != nil || got[0] != 7 {
		t.Fatalf("installed page: %v %v", got[:1], err)
	}
	if len(p.DirtyIDs()) != 1 {
		t.Fatal("install-dirty not tracked")
	}
	// Install over existing updates in place.
	data2 := make([]byte, 64)
	data2[0] = 8
	p.Install(c, 9, data2, false)
	got, _ = p.Get(c, 9)
	if got[0] != 8 {
		t.Fatal("reinstall did not update")
	}
}

const rpBase = 0

func newRemote(cfg *sim.Config, capacity, pageSize int) (*RemotePool, *rdma.Node) {
	node := rdma.NewNode(cfg, "mem0", capacity*pageSize)
	return NewRemotePool(cfg, node, nil, rpBase, capacity, pageSize), node
}

func TestRemotePoolPutGet(t *testing.T) {
	cfg := sim.DefaultConfig()
	rp, _ := newRemote(cfg, 4, 256)
	c := sim.NewClock()
	data := make([]byte, 256)
	copy(data, "remote page")
	if err := rp.Put(c, 5, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	ok, err := rp.Get(c, 5, buf)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if !bytes.HasPrefix(buf, []byte("remote page")) {
		t.Fatalf("got %q", buf[:12])
	}
	ok, _ = rp.Get(c, 99, buf)
	if ok {
		t.Fatal("phantom page")
	}
}

func TestRemotePoolEvictsLRU(t *testing.T) {
	cfg := sim.DefaultConfig()
	rp, _ := newRemote(cfg, 2, 128)
	c := sim.NewClock()
	d := make([]byte, 128)
	rp.Put(c, 1, d)
	rp.Put(c, 2, d)
	// Touch 1 so 2 becomes LRU.
	buf := make([]byte, 128)
	rp.Get(c, 1, buf)
	rp.Put(c, 3, d) // evicts 2
	if rp.Contains(2) {
		t.Fatal("LRU victim still resident")
	}
	if !rp.Contains(1) || !rp.Contains(3) {
		t.Fatal("wrong eviction victim")
	}
	if rp.Len() != 2 {
		t.Fatalf("len = %d", rp.Len())
	}
}

func TestRemotePoolDrop(t *testing.T) {
	cfg := sim.DefaultConfig()
	rp, _ := newRemote(cfg, 2, 128)
	c := sim.NewClock()
	rp.Put(c, 1, make([]byte, 128))
	rp.Drop(1)
	if rp.Contains(1) {
		t.Fatal("drop failed")
	}
	// Frame is reusable.
	rp.Put(c, 2, make([]byte, 128))
	rp.Put(c, 3, make([]byte, 128))
	if rp.Len() != 2 {
		t.Fatalf("len = %d after reuse", rp.Len())
	}
}

func TestRemotePoolSurvivesComputeRestartIDs(t *testing.T) {
	cfg := sim.DefaultConfig()
	rp, _ := newRemote(cfg, 4, 128)
	c := sim.NewClock()
	rp.Put(c, 7, make([]byte, 128))
	rp.Put(c, 8, make([]byte, 128))
	ids := rp.IDs()
	if len(ids) != 2 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestTwoTierPromotionAndDemotion(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 20, 256)
	rp, _ := newRemote(cfg, 10, 256)
	tt := NewTwoTier(cfg, 2, rp, fs.fetch)
	c := sim.NewClock()

	// First access: storage fetch, installed in both tiers.
	if _, err := tt.Get(c, 0); err != nil {
		t.Fatal(err)
	}
	l, r, s := tt.TierStats()
	if l != 0 || r != 0 || s != 1 {
		t.Fatalf("stats after cold read: %d/%d/%d", l, r, s)
	}
	// Second access: local hit.
	tt.Get(c, 0)
	l, _, _ = tt.TierStats()
	if l != 1 {
		t.Fatalf("local hits = %d", l)
	}
	// Fill local tier (cap 2) to evict page 0 to remote, then re-read:
	// must be a remote hit, not a storage fetch.
	tt.Get(c, 1)
	tt.Get(c, 2)
	tt.Get(c, 0)
	_, r, s = tt.TierStats()
	if r == 0 {
		t.Fatal("expected a remote-tier hit after local eviction")
	}
	if s != 3 { // pages 0,1,2 each fetched from storage exactly once
		t.Fatalf("storage fetches = %d, want 3", s)
	}
}

func TestTwoTierMutateThenReadBack(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 4, 256)
	rp, _ := newRemote(cfg, 4, 256)
	tt := NewTwoTier(cfg, 1, rp, fs.fetch)
	c := sim.NewClock()
	if err := tt.Mutate(c, 0, func(d []byte) error { d[9] = 0x55; return nil }); err != nil {
		t.Fatal(err)
	}
	// Force local eviction (cap 1) so the dirty page demotes to remote.
	tt.Get(c, 1)
	d, err := tt.Get(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d[9] != 0x55 {
		t.Fatal("mutation lost through demotion")
	}
}

func TestTwoTierCombinedHitRatio(t *testing.T) {
	cfg := sim.DefaultConfig()
	fs := newFakeStore(cfg, 8, 256)
	rp, _ := newRemote(cfg, 8, 256)
	tt := NewTwoTier(cfg, 2, rp, fs.fetch)
	c := sim.NewClock()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 8; i++ {
			tt.Get(c, page.ID(i))
		}
	}
	// After the first cold pass everything fits in remote memory.
	if hr := tt.CombinedHitRatio(); hr < 0.6 {
		t.Fatalf("combined hit ratio = %.2f", hr)
	}
	_, _, s := tt.TierStats()
	if s != 8 {
		t.Fatalf("storage fetches = %d, want 8 (cold only)", s)
	}
}
