package raft

import (
	"fmt"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

// TestRandomizedFailoverSafety drives a 3-peer group through random
// sequences of appends, peer failures, restarts+catch-up, and elections,
// checking the core Raft safety property after every step: an entry index
// acknowledged as committed is never lost or changed by later leadership
// changes.
func TestRandomizedFailoverSafety(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := sim.NewRand(int64(trial), 0)
		cfg := sim.DefaultConfig()
		g := NewGroup(cfg, 3)
		c := sim.NewClock()
		committed := map[int]string{} // index -> payload
		next := 0
		for step := 0; step < 120; step++ {
			switch r.Intn(10) {
			case 0, 1: // fail a random non-majority-breaking peer
				i := r.Intn(3)
				g.FailPeer(i)
				if g.alive() < 2 {
					g.RestartPeer(i)
					g.CatchUp(c, i)
				}
			case 2: // restart + catch up everyone
				for i := 0; i < 3; i++ {
					g.RestartPeer(i)
					g.CatchUp(c, i)
				}
			case 3: // election (only if current leader failed)
				if g.Peers()[g.Leader()].Failed() {
					if _, err := g.Elect(c); err != nil {
						t.Fatalf("trial %d step %d elect: %v", trial, step, err)
					}
				}
			default: // append
				if g.Peers()[g.Leader()].Failed() {
					if _, err := g.Elect(c); err != nil {
						t.Fatalf("trial %d step %d elect: %v", trial, step, err)
					}
				}
				payload := fmt.Sprintf("t%d-s%d-n%d", trial, step, next)
				idx, err := g.Append(c, []byte(payload))
				if err != nil {
					// Acceptable only if quorum is genuinely gone.
					if g.alive() >= 2 {
						t.Fatalf("trial %d step %d append with quorum: %v", trial, step, err)
					}
					continue
				}
				committed[idx] = payload
				next++
			}
			// Safety check: every committed entry readable and intact
			// from the current leader (when it is alive).
			if g.Peers()[g.Leader()].Failed() {
				continue
			}
			for idx, want := range committed {
				if idx > g.CommitIndex() {
					t.Fatalf("trial %d step %d: committed index %d above leader commit %d",
						trial, step, idx, g.CommitIndex())
				}
				e, err := g.Entry(c, idx)
				if err != nil {
					t.Fatalf("trial %d step %d entry %d: %v", trial, step, idx, err)
				}
				if string(e.Data) != want {
					t.Fatalf("trial %d step %d entry %d = %q, want %q",
						trial, step, idx, e.Data, want)
				}
			}
		}
	}
}
