// Package raft implements the leader-based replicated log that PolarFS
// uses for durability (a ParallelRaft-flavored Raft, §2.1): a leader
// appends entries, replicates them to followers in parallel over RDMA,
// and commits at majority; followers persist entries before acking.
// Leadership changes elect the longest-log survivor. The election and
// replication rules follow Raft's safety argument (term checks, majority
// intersection); ParallelRaft's out-of-order acknowledgement is modeled by
// acking each append independently rather than serializing on a single
// in-flight window.
package raft

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Package errors.
var (
	ErrNoQuorum  = errors.New("raft: majority unavailable")
	ErrNotLeader = errors.New("raft: not leader")
	ErrNoEntry   = errors.New("raft: no such entry")
)

// Entry is one replicated log entry.
type Entry struct {
	Term uint64
	Data []byte
}

// Peer is one replica of the group.
type Peer struct {
	ID int

	mu       sync.Mutex
	term     uint64
	log      []Entry
	commit   int // highest committed index (1-based; 0 = none)
	failed   bool
	netScale float64
}

// Term reports the peer's current term.
func (p *Peer) Term() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.term
}

// LogLen reports the number of persisted entries.
func (p *Peer) LogLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.log)
}

// Failed reports crash state.
func (p *Peer) Failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// Group is a Raft group with a distinguished leader.
type Group struct {
	cfg   *sim.Config
	meter *sim.Meter

	mu     sync.Mutex
	peers  []*Peer
	leader int
}

// NewGroup creates n peers; peer 0 starts as leader in term 1. PolarFS
// uses 3-way replication.
func NewGroup(cfg *sim.Config, n int) *Group {
	g := &Group{cfg: cfg, meter: sim.NewMeter(cfg.NICSlots)}
	for i := 0; i < n; i++ {
		g.peers = append(g.peers, &Peer{ID: i, term: 1, netScale: 1 + 0.15*float64(i)})
	}
	return g
}

// Leader reports the current leader's ID.
func (g *Group) Leader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader
}

// Peers exposes the replicas (failure injection in tests/experiments).
func (g *Group) Peers() []*Peer { return g.peers }

// alive counts healthy peers.
func (g *Group) alive() int {
	n := 0
	for _, p := range g.peers {
		if !p.Failed() {
			n++
		}
	}
	return n
}

// Append replicates data and returns its (1-based) index once a majority
// has persisted it. The caller's clock advances by the majority-th fastest
// follower acknowledgement: replication is parallel, and each entry is
// acked independently (ParallelRaft). Fault injection can drop the append
// before any peer persists it, or tear it: the leader persists the entry
// but the caller sees an error before replication completes — an
// unacknowledged write a later quorum commit may still surface.
func (g *Group) Append(c *sim.Clock, data []byte) (int, error) {
	d := [1][]byte{data}
	return g.AppendBatch(c, d[:])
}

// AppendBatch replicates datas as one group flush: the entries occupy
// consecutive indices (the returned index is the first) and the whole
// group costs a single replication round on the combined payload — one
// leader persist, one parallel follower fan-out, one fault decision. A
// torn batch persists only a prefix of the entries on the leader before
// the caller errors, so every rider of the flush must treat its commit as
// unacknowledged.
func (g *Group) AppendBatch(c *sim.Clock, datas [][]byte) (int, error) {
	if len(datas) == 0 {
		return 0, nil
	}
	// Admission gate on the replication meter: shed the append under
	// overload before the fault decision and the replication round.
	if err := g.cfg.Admit(c, "raft.append", g.meter); err != nil {
		return 0, err
	}
	op := g.cfg.Begin(c, "raft.append")
	f := g.cfg.Inject(c, "raft.append")
	if f.Drop {
		op.End(0)
		return 0, f.FaultErr()
	}
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()

	total := 0
	entries := make([]Entry, len(datas))
	persisted := len(datas)
	if f.Torn {
		// Crash-point mid-flush: only a prefix of the group reaches the
		// leader's log (at least one entry, matching the single-append
		// tear), and no caller learns an index.
		persisted = (len(datas) + 1) / 2
	}

	leader.mu.Lock()
	if leader.failed {
		leader.mu.Unlock()
		op.End(0)
		return 0, ErrNotLeader
	}
	term := leader.term
	for i, data := range datas {
		entries[i] = Entry{Term: term, Data: append([]byte(nil), data...)}
		total += len(data)
	}
	leader.log = append(leader.log, entries[:persisted]...)
	index := len(leader.log) - persisted + 1 // first index of the group
	last := len(leader.log)
	leader.mu.Unlock()

	if f.Torn {
		// The persisted prefix may still surface: a later successful
		// append at a higher index commits it too (Raft prefix commit) —
		// exactly the ambiguous-outcome case.
		op.End(0)
		return 0, f.FaultErr()
	}

	// Leader persist (NVMe) + parallel follower replication, both on the
	// combined payload — this amortization is the whole point of group
	// commit.
	persist := g.cfg.SSDWrite.Cost(total)
	acks := []time.Duration{persist} // leader's own ack
	for _, p := range g.peers {
		if p == leader {
			continue
		}
		p.mu.Lock()
		if p.failed {
			p.mu.Unlock()
			continue
		}
		if p.term <= term {
			p.term = term
			// Place each entry at its exact index. Concurrent appends
			// may arrive out of order (ParallelRaft acks entries
			// independently); holes are extended with placeholders
			// that the straggler overwrites when it arrives.
			for len(p.log) < last {
				p.log = append(p.log, Entry{})
			}
			copy(p.log[index-1:], entries)
			ack := time.Duration(float64(g.cfg.RDMA.Cost(total))*p.netScale) + g.cfg.SSDWrite.Cost(total)
			acks = append(acks, ack)
		} else {
			p.mu.Unlock()
			op.End(0)
			return 0, ErrNotLeader // stale leader
		}
		p.mu.Unlock()
	}
	majority := len(g.peers)/2 + 1
	if len(acks) < majority {
		op.End(0)
		return 0, ErrNoQuorum
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	g.meter.Charge(c, acks[majority-1])

	// Advance commit on leader and (lazily) followers.
	leader.mu.Lock()
	if last > leader.commit {
		leader.commit = last
	}
	leader.mu.Unlock()
	for _, p := range g.peers {
		p.mu.Lock()
		if !p.failed && len(p.log) >= last && last > p.commit {
			p.commit = last
		}
		p.mu.Unlock()
	}
	op.End(int64(total))
	return index, nil
}

// CommitIndex reports the leader's commit index.
func (g *Group) CommitIndex() int {
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()
	leader.mu.Lock()
	defer leader.mu.Unlock()
	return leader.commit
}

// Entry returns the committed entry at index (1-based), charging a local
// SSD read on the leader.
func (g *Group) Entry(c *sim.Clock, index int) (Entry, error) {
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()
	leader.mu.Lock()
	defer leader.mu.Unlock()
	if index < 1 || index > leader.commit {
		return Entry{}, ErrNoEntry
	}
	e := leader.log[index-1]
	c.Advance(g.cfg.SSDRead.Cost(len(e.Data)))
	return e, nil
}

// FailPeer crashes a peer (its persisted log survives).
func (g *Group) FailPeer(i int) {
	p := g.peers[i]
	p.mu.Lock()
	p.failed = true
	p.mu.Unlock()
}

// RestartPeer revives a peer with its persisted log.
func (g *Group) RestartPeer(i int) {
	p := g.peers[i]
	p.mu.Lock()
	p.failed = false
	p.mu.Unlock()
}

// Elect runs a leader election among the healthy peers: the longest-log,
// highest-term candidate wins (Raft's up-to-date rule), the term is
// bumped, and the caller pays one voting round trip to a majority.
func (g *Group) Elect(c *sim.Clock) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.alive() < len(g.peers)/2+1 {
		return 0, ErrNoQuorum
	}
	best := -1
	var bestLen int
	var maxTerm uint64
	for _, p := range g.peers {
		p.mu.Lock()
		if p.term > maxTerm {
			maxTerm = p.term
		}
		if !p.failed && (best == -1 || len(p.log) > bestLen) {
			best = p.ID
			bestLen = len(p.log)
		}
		p.mu.Unlock()
	}
	// One vote round trip to the majority-th fastest peer.
	var acks []time.Duration
	for _, p := range g.peers {
		if p.Failed() {
			continue
		}
		p.mu.Lock()
		acks = append(acks, time.Duration(float64(g.cfg.RDMA.Cost(64))*p.netScale))
		p.term = maxTerm + 1
		p.mu.Unlock()
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	g.meter.Charge(c, acks[len(g.peers)/2])
	g.leader = best
	// The new leader's committed prefix is authoritative; followers
	// truncate divergent suffixes on their next append (handled in
	// Append via length adjustment).
	return best, nil
}

// CatchUp copies missing entries from the leader to a restarted peer,
// charging transfer for the delta. Returns entries shipped.
func (g *Group) CatchUp(c *sim.Clock, i int) int {
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()
	p := g.peers[i]
	leader.mu.Lock()
	entries := append([]Entry(nil), leader.log...)
	commit := leader.commit
	leader.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failed {
		return 0
	}
	from := len(p.log)
	bytes := 0
	for _, e := range entries[from:] {
		p.log = append(p.log, e)
		bytes += len(e.Data)
	}
	if commit > p.commit {
		p.commit = commit
	}
	c.Advance(g.cfg.RDMA.Cost(bytes))
	return len(entries) - from
}
