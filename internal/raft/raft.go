// Package raft implements the leader-based replicated log that PolarFS
// uses for durability (a ParallelRaft-flavored Raft, §2.1): a leader
// appends entries, replicates them to followers in parallel over RDMA,
// and commits at majority; followers persist entries before acking.
// Leadership changes elect the longest-log survivor. The election and
// replication rules follow Raft's safety argument (term checks, majority
// intersection); ParallelRaft's out-of-order acknowledgement is modeled by
// acking each append independently rather than serializing on a single
// in-flight window.
package raft

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Package errors.
var (
	ErrNoQuorum  = errors.New("raft: majority unavailable")
	ErrNotLeader = errors.New("raft: not leader")
	ErrNoEntry   = errors.New("raft: no such entry")
	// ErrCompacted is returned by Entry for indices below the compaction
	// point: the entry was discarded by a checkpoint and readers must
	// start from checkpointed state instead.
	ErrCompacted = errors.New("raft: entry compacted away")
)

// Entry is one replicated log entry.
type Entry struct {
	Term uint64
	Data []byte
}

// Peer is one replica of the group.
type Peer struct {
	ID int

	mu   sync.Mutex
	term uint64
	// log holds entries (snap+1 .. snap+len(log)): snap entries below
	// were compacted away by a checkpoint (their effects live in
	// checkpointed state), so log[i] is the entry at index snap+i+1.
	log      []Entry
	snap     int // number of compacted entries (all committed)
	commit   int // highest committed index (1-based; 0 = none)
	failed   bool
	netScale float64
}

// logicalLenLocked is the index of the peer's last entry, counting
// compacted ones. Callers hold p.mu.
func (p *Peer) logicalLenLocked() int { return p.snap + len(p.log) }

// Term reports the peer's current term.
func (p *Peer) Term() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.term
}

// LogLen reports the index of the last persisted entry (compacted
// entries count: they were persisted before being checkpointed away).
func (p *Peer) LogLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.logicalLenLocked()
}

// Retained reports the number of entries still physically held (the
// replay tail a recovery must read).
func (p *Peer) Retained() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.log)
}

// Compacted reports the compaction point: entries at or below it have
// been discarded.
func (p *Peer) Compacted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

// Failed reports crash state.
func (p *Peer) Failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// Group is a Raft group with a distinguished leader.
type Group struct {
	cfg   *sim.Config
	meter *sim.Meter

	mu     sync.Mutex
	peers  []*Peer
	leader int
}

// NewGroup creates n peers; peer 0 starts as leader in term 1. PolarFS
// uses 3-way replication.
func NewGroup(cfg *sim.Config, n int) *Group {
	g := &Group{cfg: cfg, meter: sim.NewMeter(cfg.NICSlots)}
	for i := 0; i < n; i++ {
		g.peers = append(g.peers, &Peer{ID: i, term: 1, netScale: 1 + 0.15*float64(i)})
	}
	return g
}

// Leader reports the current leader's ID.
func (g *Group) Leader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader
}

// Peers exposes the replicas (failure injection in tests/experiments).
func (g *Group) Peers() []*Peer { return g.peers }

// alive counts healthy peers.
func (g *Group) alive() int {
	n := 0
	for _, p := range g.peers {
		if !p.Failed() {
			n++
		}
	}
	return n
}

// Append replicates data and returns its (1-based) index once a majority
// has persisted it. The caller's clock advances by the majority-th fastest
// follower acknowledgement: replication is parallel, and each entry is
// acked independently (ParallelRaft). Fault injection can drop the append
// before any peer persists it, or tear it: the leader persists the entry
// but the caller sees an error before replication completes — an
// unacknowledged write a later quorum commit may still surface.
func (g *Group) Append(c *sim.Clock, data []byte) (int, error) {
	d := [1][]byte{data}
	return g.AppendBatch(c, d[:])
}

// AppendBatch replicates datas as one group flush: the entries occupy
// consecutive indices (the returned index is the first) and the whole
// group costs a single replication round on the combined payload — one
// leader persist, one parallel follower fan-out, one fault decision. A
// torn batch persists only a prefix of the entries on the leader before
// the caller errors, so every rider of the flush must treat its commit as
// unacknowledged.
func (g *Group) AppendBatch(c *sim.Clock, datas [][]byte) (int, error) {
	if len(datas) == 0 {
		return 0, nil
	}
	// Admission gate on the replication meter: shed the append under
	// overload before the fault decision and the replication round.
	if err := g.cfg.Admit(c, "raft.append", g.meter); err != nil {
		return 0, err
	}
	op := g.cfg.Begin(c, "raft.append")
	f := g.cfg.Inject(c, "raft.append")
	if f.Drop {
		op.End(0)
		return 0, f.FaultErr()
	}
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()

	total := 0
	entries := make([]Entry, len(datas))
	persisted := len(datas)
	if f.Torn {
		// Crash-point mid-flush: only a prefix of the group reaches the
		// leader's log (at least one entry, matching the single-append
		// tear), and no caller learns an index.
		persisted = (len(datas) + 1) / 2
	}

	leader.mu.Lock()
	if leader.failed {
		leader.mu.Unlock()
		op.End(0)
		return 0, ErrNotLeader
	}
	term := leader.term
	for i, data := range datas {
		entries[i] = Entry{Term: term, Data: append([]byte(nil), data...)}
		total += len(data)
	}
	leader.log = append(leader.log, entries[:persisted]...)
	index := leader.logicalLenLocked() - persisted + 1 // first index of the group
	last := leader.logicalLenLocked()
	leader.mu.Unlock()

	if f.Torn {
		// The persisted prefix may still surface: a later successful
		// append at a higher index commits it too (Raft prefix commit) —
		// exactly the ambiguous-outcome case.
		op.End(0)
		return 0, f.FaultErr()
	}

	// Leader persist (NVMe) + parallel follower replication, both on the
	// combined payload — this amortization is the whole point of group
	// commit.
	persist := g.cfg.SSDWrite.Cost(total)
	acks := []time.Duration{persist} // leader's own ack
	for _, p := range g.peers {
		if p == leader {
			continue
		}
		p.mu.Lock()
		if p.failed {
			p.mu.Unlock()
			continue
		}
		if p.term <= term {
			p.term = term
			// Place each entry at its exact index. Concurrent appends
			// may arrive out of order (ParallelRaft acks entries
			// independently); holes are extended with placeholders
			// that the straggler overwrites when it arrives. Indices are
			// logical: each peer subtracts its own compaction offset.
			for p.logicalLenLocked() < last {
				p.log = append(p.log, Entry{})
			}
			copy(p.log[index-1-p.snap:], entries)
			ack := time.Duration(float64(g.cfg.RDMA.Cost(total))*p.netScale) + g.cfg.SSDWrite.Cost(total)
			acks = append(acks, ack)
		} else {
			p.mu.Unlock()
			op.End(0)
			return 0, ErrNotLeader // stale leader
		}
		p.mu.Unlock()
	}
	majority := len(g.peers)/2 + 1
	if len(acks) < majority {
		op.End(0)
		return 0, ErrNoQuorum
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	g.meter.Charge(c, acks[majority-1])

	// Advance commit on leader and (lazily) followers.
	leader.mu.Lock()
	if last > leader.commit {
		leader.commit = last
	}
	leader.mu.Unlock()
	for _, p := range g.peers {
		p.mu.Lock()
		if !p.failed && p.logicalLenLocked() >= last && last > p.commit {
			p.commit = last
		}
		p.mu.Unlock()
	}
	op.End(int64(total))
	return index, nil
}

// CommitIndex reports the leader's commit index.
func (g *Group) CommitIndex() int {
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()
	leader.mu.Lock()
	defer leader.mu.Unlock()
	return leader.commit
}

// Entry returns the committed entry at index (1-based), charging a local
// SSD read on the leader.
func (g *Group) Entry(c *sim.Clock, index int) (Entry, error) {
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()
	leader.mu.Lock()
	defer leader.mu.Unlock()
	if index < 1 || index > leader.commit {
		return Entry{}, ErrNoEntry
	}
	if index <= leader.snap {
		return Entry{}, ErrCompacted
	}
	e := leader.log[index-1-leader.snap]
	c.Advance(g.cfg.SSDRead.Cost(len(e.Data)))
	return e, nil
}

// CompactTo discards entries at or below index on every alive peer whose
// commit covers them — the raft leg of a checkpoint truncation. The
// caller asserts checkpointed state covers the compacted entries. The
// clock is charged one metadata persist per peer (parallel fan-out, so
// the slowest peer's cost); fault injection at "raft.compact" can drop
// the round (no peer compacts) — compaction retries idempotently on the
// next checkpoint.
func (g *Group) CompactTo(c *sim.Clock, index int) error {
	op := g.cfg.Begin(c, "raft.compact")
	if f := g.cfg.Inject(c, "raft.compact"); f.Drop || f.Torn {
		op.End(0)
		return f.FaultErr()
	}
	dropped := 0
	for _, p := range g.peers {
		p.mu.Lock()
		to := index
		if to > p.commit {
			to = p.commit
		}
		if !p.failed && to > p.snap {
			keep := to - p.snap
			if keep > len(p.log) {
				keep = len(p.log)
			}
			p.log = append([]Entry(nil), p.log[keep:]...)
			dropped += keep
			p.snap += keep
		}
		p.mu.Unlock()
	}
	g.meter.Charge(c, g.cfg.SSDWrite.Cost(64))
	op.End(int64(dropped))
	return nil
}

// FailPeer crashes a peer (its persisted log survives).
func (g *Group) FailPeer(i int) {
	p := g.peers[i]
	p.mu.Lock()
	p.failed = true
	p.mu.Unlock()
}

// RestartPeer revives a peer with its persisted log.
func (g *Group) RestartPeer(i int) {
	p := g.peers[i]
	p.mu.Lock()
	p.failed = false
	p.mu.Unlock()
}

// Elect runs a leader election among the healthy peers: the longest-log,
// highest-term candidate wins (Raft's up-to-date rule), the term is
// bumped, and the caller pays one voting round trip to a majority.
func (g *Group) Elect(c *sim.Clock) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.alive() < len(g.peers)/2+1 {
		return 0, ErrNoQuorum
	}
	best := -1
	var bestLen int
	var maxTerm uint64
	for _, p := range g.peers {
		p.mu.Lock()
		if p.term > maxTerm {
			maxTerm = p.term
		}
		// Up-to-date comparison uses logical length: compacted entries
		// still count (they are committed by construction).
		if !p.failed && (best == -1 || p.logicalLenLocked() > bestLen) {
			best = p.ID
			bestLen = p.logicalLenLocked()
		}
		p.mu.Unlock()
	}
	// One vote round trip to the majority-th fastest peer.
	var acks []time.Duration
	for _, p := range g.peers {
		if p.Failed() {
			continue
		}
		p.mu.Lock()
		acks = append(acks, time.Duration(float64(g.cfg.RDMA.Cost(64))*p.netScale))
		p.term = maxTerm + 1
		p.mu.Unlock()
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	g.meter.Charge(c, acks[len(g.peers)/2])
	g.leader = best
	// The new leader's committed prefix is authoritative; followers
	// truncate divergent suffixes on their next append (handled in
	// Append via length adjustment).
	return best, nil
}

// CatchUp copies missing entries from the leader to a restarted peer,
// charging transfer for the delta. A peer whose log ends below the
// leader's compaction point cannot be caught up entry-by-entry (the gap
// is compacted away): it installs the leader's snapshot offset and
// retained tail wholesale instead. Returns entries shipped.
func (g *Group) CatchUp(c *sim.Clock, i int) int {
	g.mu.Lock()
	leader := g.peers[g.leader]
	g.mu.Unlock()
	p := g.peers[i]
	leader.mu.Lock()
	entries := append([]Entry(nil), leader.log...)
	snap := leader.snap
	commit := leader.commit
	leader.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failed {
		return 0
	}
	from := p.logicalLenLocked()
	bytes := 0
	shipped := 0
	if from < snap {
		// Snapshot install: adopt the leader's compaction point and its
		// whole retained tail (checkpointed state covers the rest).
		p.snap = snap
		p.log = append([]Entry(nil), entries...)
		for _, e := range entries {
			bytes += len(e.Data)
		}
		shipped = len(entries)
	} else {
		for _, e := range entries[from-snap:] {
			p.log = append(p.log, e)
			bytes += len(e.Data)
			shipped++
		}
	}
	if commit > p.commit {
		p.commit = commit
	}
	c.Advance(g.cfg.RDMA.Cost(bytes))
	return shipped
}
