package raft

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

func TestAppendCommitsAtMajority(t *testing.T) {
	cfg := sim.DefaultConfig()
	g := NewGroup(cfg, 3)
	c := sim.NewClock()
	idx, err := g.Append(c, []byte("entry-1"))
	if err != nil || idx != 1 {
		t.Fatalf("append: %d %v", idx, err)
	}
	if g.CommitIndex() != 1 {
		t.Fatalf("commit = %d", g.CommitIndex())
	}
	if c.Now() == 0 {
		t.Fatal("append charged nothing")
	}
	e, err := g.Entry(c, 1)
	if err != nil || !bytes.Equal(e.Data, []byte("entry-1")) {
		t.Fatalf("entry: %q %v", e.Data, err)
	}
}

func TestAppendSurvivesOneFollowerDown(t *testing.T) {
	cfg := sim.DefaultConfig()
	g := NewGroup(cfg, 3)
	g.FailPeer(2)
	c := sim.NewClock()
	if _, err := g.Append(c, []byte("x")); err != nil {
		t.Fatalf("append with 2/3: %v", err)
	}
	g.FailPeer(1)
	if _, err := g.Append(c, []byte("y")); err != ErrNoQuorum {
		t.Fatalf("append with 1/3: %v", err)
	}
}

func TestLeaderFailureElection(t *testing.T) {
	cfg := sim.DefaultConfig()
	g := NewGroup(cfg, 3)
	c := sim.NewClock()
	for i := 0; i < 5; i++ {
		g.Append(c, []byte(fmt.Sprintf("e%d", i)))
	}
	oldTerm := g.Peers()[1].Term()
	g.FailPeer(0)
	leader, err := g.Elect(c)
	if err != nil {
		t.Fatal(err)
	}
	if leader == 0 {
		t.Fatal("dead peer elected")
	}
	if g.Peers()[leader].Term() <= oldTerm {
		t.Fatal("term not bumped")
	}
	// The new leader has the committed entries and can keep appending.
	if _, err := g.Append(c, []byte("post-failover")); err != nil {
		t.Fatal(err)
	}
	if g.CommitIndex() != 6 {
		t.Fatalf("commit after failover = %d", g.CommitIndex())
	}
}

func TestElectionNeedsMajority(t *testing.T) {
	cfg := sim.DefaultConfig()
	g := NewGroup(cfg, 3)
	g.FailPeer(0)
	g.FailPeer(1)
	if _, err := g.Elect(sim.NewClock()); err != ErrNoQuorum {
		t.Fatalf("elect with 1/3: %v", err)
	}
}

func TestCatchUpRestartedPeer(t *testing.T) {
	cfg := sim.DefaultConfig()
	g := NewGroup(cfg, 3)
	c := sim.NewClock()
	g.FailPeer(2)
	for i := 0; i < 10; i++ {
		g.Append(c, make([]byte, 100))
	}
	g.RestartPeer(2)
	if got := g.Peers()[2].LogLen(); got != 0 {
		t.Fatalf("restarted peer log = %d", got)
	}
	n := g.CatchUp(c, 2)
	if n != 10 {
		t.Fatalf("caught up %d entries", n)
	}
	if g.Peers()[2].LogLen() != 10 {
		t.Fatalf("log len = %d", g.Peers()[2].LogLen())
	}
	if g.CatchUp(c, 2) != 0 {
		t.Fatal("second catch-up shipped entries")
	}
}

func TestConcurrentAppendsUniqueIndices(t *testing.T) {
	cfg := sim.DefaultConfig()
	g := NewGroup(cfg, 3)
	res := sim.RunGroup(8, func(id int, c *sim.Clock) int {
		for i := 0; i < 50; i++ {
			if _, err := g.Append(c, []byte{byte(id), byte(i)}); err != nil {
				t.Errorf("append: %v", err)
				return i
			}
		}
		return 50
	})
	if res.TotalOps != 400 {
		t.Fatalf("appends = %d", res.TotalOps)
	}
	if g.CommitIndex() != 400 {
		t.Fatalf("commit = %d", g.CommitIndex())
	}
	// Followers converge to the same log as the leader.
	lead := g.Peers()[g.Leader()]
	for _, p := range g.Peers() {
		if p.LogLen() != lead.LogLen() {
			t.Fatalf("peer %d log %d vs leader %d", p.ID, p.LogLen(), lead.LogLen())
		}
	}
	c := sim.NewClock()
	for i := 1; i <= 400; i++ {
		if _, err := g.Entry(c, i); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
}

func TestEntryOutOfRange(t *testing.T) {
	g := NewGroup(sim.DefaultConfig(), 3)
	if _, err := g.Entry(sim.NewClock(), 1); err != ErrNoEntry {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendBatchConsecutiveIndicesOneRound(t *testing.T) {
	cfg := sim.DefaultConfig()
	g := NewGroup(cfg, 3)
	c := sim.NewClock()
	if _, err := g.Append(c, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	datas := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	before := c.Now()
	first, err := g.AppendBatch(c, datas)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("first index = %d, want 2", first)
	}
	batchCost := c.Now() - before
	if g.CommitIndex() != 4 {
		t.Fatalf("commit = %d, want 4", g.CommitIndex())
	}
	for i, want := range datas {
		e, err := g.Entry(c, first+i)
		if err != nil || !bytes.Equal(e.Data, want) {
			t.Fatalf("entry %d: %q %v", first+i, e.Data, err)
		}
	}

	// The batch must be cheaper than replicating each entry alone: one
	// replication round on the combined payload amortizes the bases.
	g2 := NewGroup(cfg, 3)
	c2 := sim.NewClock()
	for _, d := range datas {
		if _, err := g2.Append(c2, d); err != nil {
			t.Fatal(err)
		}
	}
	if !(batchCost < c2.Now()) {
		t.Fatalf("batch (%v) should be cheaper than %d singles (%v)", batchCost, len(datas), c2.Now())
	}
}

func TestAppendBatchEmptyIsNoOp(t *testing.T) {
	g := NewGroup(sim.DefaultConfig(), 3)
	c := sim.NewClock()
	if idx, err := g.AppendBatch(c, nil); err != nil || idx != 0 {
		t.Fatalf("empty batch: %d %v", idx, err)
	}
	if c.Now() != 0 {
		t.Fatal("empty batch charged time")
	}
}
