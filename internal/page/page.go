// Package page implements the slotted database page used by every storage
// engine in the repository: a fixed-size byte buffer with a header (page
// LSN, slot count, free-space pointer), a slot directory growing from the
// front, and cells growing from the back.
//
// Layout:
//
//	[0:8)   pageLSN
//	[8:10)  slot count
//	[10:12) free-space offset (start of the cell area)
//	[12:..) slot directory, 4 bytes per slot: offset(2) | length(2)
//	[..:N)  cells
//
// Deleted slots keep their directory entry with length 0xFFFF so slot
// numbers remain stable; Compact reclaims their cell space.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultSize is the page size used by the engines unless configured.
const DefaultSize = 8192

// ID identifies a page within a table or database.
type ID uint64

const (
	headerSize  = 12
	slotSize    = 4
	deletedMark = 0xFFFF
)

// Common page errors.
var (
	ErrPageFull    = errors.New("page: full")
	ErrBadSlot     = errors.New("page: bad slot")
	ErrCellTooBig  = errors.New("page: cell larger than page")
	ErrCorruptPage = errors.New("page: corrupt")
)

// Page wraps a byte buffer with slotted-page accessors. The zero value is
// not usable; call New or Wrap.
type Page struct {
	buf []byte
}

// New allocates and formats an empty page of the given size.
func New(size int) *Page {
	if size < headerSize+slotSize {
		size = DefaultSize
	}
	p := &Page{buf: make([]byte, size)}
	p.setFreeOff(uint16(size))
	return p
}

// Wrap interprets an existing buffer as a page without validation. Use
// Validate when the buffer came from an untrusted medium.
func Wrap(buf []byte) *Page { return &Page{buf: buf} }

// Bytes returns the underlying buffer (the page's serialized form).
func (p *Page) Bytes() []byte { return p.buf }

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.buf) }

// LSN returns the page LSN (the LSN of the last log record applied).
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[0:8]) }

// SetLSN records the LSN of the last applied log record.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[0:8], lsn) }

// NumSlots returns the size of the slot directory (including deleted slots).
func (p *Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p.buf[8:10])) }

func (p *Page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.buf[8:10], uint16(n)) }

func (p *Page) freeOff() uint16 { return binary.LittleEndian.Uint16(p.buf[10:12]) }

func (p *Page) setFreeOff(off uint16) { binary.LittleEndian.PutUint16(p.buf[10:12], off) }

func (p *Page) slotAt(i int) (off, length uint16) {
	base := headerSize + i*slotSize
	return binary.LittleEndian.Uint16(p.buf[base:]), binary.LittleEndian.Uint16(p.buf[base+2:])
}

func (p *Page) setSlot(i int, off, length uint16) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:], length)
}

// FreeSpace reports the bytes available for one new cell (accounting for
// its slot directory entry).
func (p *Page) FreeSpace() int {
	free := int(p.freeOff()) - (headerSize + p.NumSlots()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert appends a cell and returns its slot number. Deleted slots are
// reused. Returns ErrPageFull when the cell does not fit even after the
// directory entry is accounted for.
func (p *Page) Insert(cell []byte) (int, error) {
	if len(cell) >= deletedMark {
		return 0, ErrCellTooBig
	}
	slot := -1
	for i := 0; i < p.NumSlots(); i++ {
		if _, l := p.slotAt(i); l == deletedMark {
			slot = i
			break
		}
	}
	need := len(cell)
	if slot == -1 {
		need += slotSize
	}
	if int(p.freeOff())-(headerSize+p.NumSlots()*slotSize) < need {
		return 0, ErrPageFull
	}
	newOff := p.freeOff() - uint16(len(cell))
	copy(p.buf[newOff:], cell)
	p.setFreeOff(newOff)
	if slot == -1 {
		slot = p.NumSlots()
		p.setNumSlots(slot + 1)
	}
	p.setSlot(slot, newOff, uint16(len(cell)))
	return slot, nil
}

// Cell returns the cell stored in the given slot. The returned slice
// aliases the page buffer; callers must copy before retaining it.
func (p *Page) Cell(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, ErrBadSlot
	}
	off, l := p.slotAt(slot)
	if l == deletedMark {
		return nil, ErrBadSlot
	}
	if int(off)+int(l) > len(p.buf) {
		return nil, ErrCorruptPage
	}
	return p.buf[off : off+l], nil
}

// Update replaces the cell in slot. Same-size updates are done in place;
// growing updates append a new copy (leaving a hole that Compact reclaims).
func (p *Page) Update(slot int, cell []byte) error {
	if slot < 0 || slot >= p.NumSlots() {
		return ErrBadSlot
	}
	off, l := p.slotAt(slot)
	if l == deletedMark {
		return ErrBadSlot
	}
	if len(cell) <= int(l) {
		copy(p.buf[off:], cell)
		p.setSlot(slot, off, uint16(len(cell)))
		return nil
	}
	if len(cell) >= deletedMark {
		return ErrCellTooBig
	}
	if int(p.freeOff())-(headerSize+p.NumSlots()*slotSize) < len(cell) {
		if p.Compact()-len(cell) < 0 {
			return ErrPageFull
		}
		off, _ = p.slotAt(slot)
	}
	newOff := p.freeOff() - uint16(len(cell))
	copy(p.buf[newOff:], cell)
	p.setFreeOff(newOff)
	p.setSlot(slot, newOff, uint16(len(cell)))
	return nil
}

// Delete marks the slot deleted (slot numbers remain stable).
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.NumSlots() {
		return ErrBadSlot
	}
	if _, l := p.slotAt(slot); l == deletedMark {
		return ErrBadSlot
	}
	p.setSlot(slot, 0, deletedMark)
	return nil
}

// Compact rewrites live cells to eliminate holes and returns the resulting
// free space.
func (p *Page) Compact() int {
	type live struct {
		slot int
		data []byte
	}
	var cells []live
	for i := 0; i < p.NumSlots(); i++ {
		off, l := p.slotAt(i)
		if l == deletedMark {
			continue
		}
		d := make([]byte, l)
		copy(d, p.buf[off:off+l])
		cells = append(cells, live{i, d})
	}
	off := uint16(len(p.buf))
	for _, cl := range cells {
		off -= uint16(len(cl.data))
		copy(p.buf[off:], cl.data)
		p.setSlot(cl.slot, off, uint16(len(cl.data)))
	}
	p.setFreeOff(off)
	return p.FreeSpace()
}

// Validate performs structural checks on a page read from an untrusted
// medium (torn RDMA reads, crash-recovered storage).
func (p *Page) Validate() error {
	if len(p.buf) < headerSize {
		return ErrCorruptPage
	}
	n := p.NumSlots()
	if headerSize+n*slotSize > len(p.buf) {
		return fmt.Errorf("%w: %d slots exceed page", ErrCorruptPage, n)
	}
	if int(p.freeOff()) > len(p.buf) || int(p.freeOff()) < headerSize+n*slotSize {
		return fmt.Errorf("%w: free offset %d", ErrCorruptPage, p.freeOff())
	}
	for i := 0; i < n; i++ {
		off, l := p.slotAt(i)
		if l == deletedMark {
			continue
		}
		if int(off) < int(p.freeOff()) || int(off)+int(l) > len(p.buf) {
			return fmt.Errorf("%w: slot %d [%d,%d)", ErrCorruptPage, i, off, off+l)
		}
	}
	return nil
}

// LiveCells returns the number of non-deleted cells.
func (p *Page) LiveCells() int {
	n := 0
	for i := 0; i < p.NumSlots(); i++ {
		if _, l := p.slotAt(i); l != deletedMark {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the page.
func (p *Page) Clone() *Page {
	cp := make([]byte, len(p.buf))
	copy(cp, p.buf)
	return &Page{buf: cp}
}
