package page

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/disagglab/disagg/internal/sim"
)

func TestInsertAndCell(t *testing.T) {
	p := New(256)
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("duplicate slot numbers")
	}
	c1, _ := p.Cell(s1)
	c2, _ := p.Cell(s2)
	if string(c1) != "hello" || string(c2) != "world!" {
		t.Fatalf("cells = %q, %q", c1, c2)
	}
	if p.LiveCells() != 2 {
		t.Fatalf("live = %d", p.LiveCells())
	}
}

func TestLSNRoundTrip(t *testing.T) {
	p := New(128)
	p.SetLSN(0xDEADBEEF12345678)
	if p.LSN() != 0xDEADBEEF12345678 {
		t.Fatalf("LSN = %x", p.LSN())
	}
}

func TestPageFull(t *testing.T) {
	p := New(64)
	var err error
	inserted := 0
	for {
		_, err = p.Insert([]byte("0123456789"))
		if err != nil {
			break
		}
		inserted++
	}
	if err != ErrPageFull {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
	if inserted == 0 {
		t.Fatal("nothing fit in page")
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	p := New(256)
	s0, _ := p.Insert([]byte("aaa"))
	s1, _ := p.Insert([]byte("bbb"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Cell(s0); err != ErrBadSlot {
		t.Fatalf("deleted cell readable: %v", err)
	}
	if err := p.Delete(s0); err != ErrBadSlot {
		t.Fatal("double delete should fail")
	}
	// Slot numbers stay stable for survivors.
	c, _ := p.Cell(s1)
	if string(c) != "bbb" {
		t.Fatalf("survivor = %q", c)
	}
	// New insert reuses the deleted slot.
	s2, _ := p.Insert([]byte("ccc"))
	if s2 != s0 {
		t.Fatalf("slot not reused: got %d, want %d", s2, s0)
	}
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	p := New(256)
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(s, []byte("xyz")); err != nil { // shrink in place
		t.Fatal(err)
	}
	c, _ := p.Cell(s)
	if string(c) != "xyz" {
		t.Fatalf("after shrink = %q", c)
	}
	if err := p.Update(s, []byte("a much longer cell value")); err != nil {
		t.Fatal(err)
	}
	c, _ = p.Cell(s)
	if string(c) != "a much longer cell value" {
		t.Fatalf("after grow = %q", c)
	}
}

func TestUpdateBadSlot(t *testing.T) {
	p := New(128)
	if err := p.Update(0, []byte("x")); err != ErrBadSlot {
		t.Fatal("update of missing slot should fail")
	}
	if err := p.Update(-1, nil); err != ErrBadSlot {
		t.Fatal("negative slot should fail")
	}
}

func TestCompactReclaimsHoles(t *testing.T) {
	p := New(256)
	var slots []int
	for i := 0; i < 8; i++ {
		s, err := p.Insert(bytes.Repeat([]byte{byte('a' + i)}, 16))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	freeBefore := p.FreeSpace()
	for i := 0; i < 8; i += 2 {
		p.Delete(slots[i])
	}
	p.Compact()
	if p.FreeSpace() <= freeBefore {
		t.Fatalf("compact did not reclaim: before %d after %d", freeBefore, p.FreeSpace())
	}
	// Survivors intact.
	for i := 1; i < 8; i += 2 {
		c, err := p.Cell(slots[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c, bytes.Repeat([]byte{byte('a' + i)}, 16)) {
			t.Fatalf("slot %d corrupted after compact: %q", slots[i], c)
		}
	}
}

func TestValidate(t *testing.T) {
	p := New(128)
	p.Insert([]byte("ok"))
	if err := p.Validate(); err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
	// Corrupt the slot count.
	bad := p.Clone()
	bad.Bytes()[8] = 0xFF
	bad.Bytes()[9] = 0xFF
	if err := bad.Validate(); err == nil {
		t.Fatal("corrupt slot count accepted")
	}
	if err := Wrap([]byte{1, 2}).Validate(); err == nil {
		t.Fatal("tiny buffer accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(128)
	s, _ := p.Insert([]byte("orig"))
	q := p.Clone()
	p.Update(s, []byte("mut!"))
	c, _ := q.Cell(s)
	if string(c) != "orig" {
		t.Fatal("clone aliases original")
	}
}

func TestPropertyInsertedCellsReadable(t *testing.T) {
	f := func(cells [][]byte) bool {
		p := New(4096)
		var want [][]byte
		var slots []int
		for _, c := range cells {
			if len(c) > 512 {
				c = c[:512]
			}
			s, err := p.Insert(c)
			if err != nil {
				break
			}
			slots = append(slots, s)
			want = append(want, c)
		}
		if p.Validate() != nil {
			return false
		}
		for i, s := range slots {
			got, err := p.Cell(s)
			if err != nil || !bytes.Equal(got, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRandomOpsStayValid(t *testing.T) {
	// Random interleavings of insert/update/delete/compact keep the page
	// structurally valid and the model map consistent.
	const seed = 11
	t.Logf("seed=%d", seed)
	r := sim.NewRand(seed, 0)
	p := New(1024)
	model := make(map[int][]byte)
	for step := 0; step < 5000; step++ {
		switch r.Intn(4) {
		case 0: // insert
			c := make([]byte, 1+r.Intn(40))
			r.Read(c)
			if s, err := p.Insert(c); err == nil {
				model[s] = append([]byte(nil), c...)
			}
		case 1: // update
			for s := range model {
				c := make([]byte, 1+r.Intn(40))
				r.Read(c)
				if err := p.Update(s, c); err == nil {
					model[s] = append([]byte(nil), c...)
				}
				break
			}
		case 2: // delete
			for s := range model {
				if err := p.Delete(s); err != nil {
					t.Fatalf("step %d: delete live slot: %v", step, err)
				}
				delete(model, s)
				break
			}
		case 3:
			p.Compact()
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for s, want := range model {
		got, err := p.Cell(s)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("slot %d diverged from model: %q vs %q (%v)", s, got, want, err)
		}
	}
	if p.LiveCells() != len(model) {
		t.Fatalf("live cells %d, model %d", p.LiveCells(), len(model))
	}
}

func TestTinyPageDefaultsToStandardSize(t *testing.T) {
	p := New(4)
	if p.Size() != DefaultSize {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestCellTooBig(t *testing.T) {
	p := New(8192)
	if _, err := p.Insert(make([]byte, 0xFFFF)); err != ErrCellTooBig {
		t.Fatalf("err = %v, want ErrCellTooBig", err)
	}
}
