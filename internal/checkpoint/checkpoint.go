// Package checkpoint implements the log-lifecycle subsystem that bounds
// crash recovery across every engine: a checkpoint coordinator that
// captures a durable recovery horizon, flushes page state to cover it,
// publishes the horizon, and only then truncates log state below it —
// Socrates makes the log a first-class tiered service precisely so its
// tail stays bounded (§2.2), and the disaggregation surveys name bounded
// recovery as a core requirement.
//
// The ordering the coordinator enforces is the whole correctness
// argument:
//
//  1. Capture the horizon BEFORE flushing. A commit acked while the
//     flush runs lands above the captured horizon, so truncation never
//     discards records whose page updates the flush may have missed —
//     the flush→truncate race the monolithic engine originally lost
//     acked commits to.
//  2. Flush page state covering every LSN <= horizon. After this step
//     recovery can start from checkpointed pages instead of LSN 0.
//  3. Publish the horizon (the ARIES master record: it survives compute
//     crashes alongside the checkpointed pages).
//  4. Truncate log state below horizon+1, everywhere the engine keeps
//     log: wal.Log, log stores, replicas, raft.
//
// A crash between any two steps is safe: before publish the old horizon
// and the full log are intact; after publish but before (or during a
// torn) truncation the log merely retains extra records — recovery
// replays from the horizon either way and truncation retries
// idempotently on the next round.
package checkpoint

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

// Round describes one engine-specific checkpoint round. The coordinator
// supplies the ordering and horizon bookkeeping; the engine supplies
// what "durable", "flush", and "truncate" mean on its substrate.
type Round struct {
	// Durable returns the engine's current durable LSN: every commit at
	// or below it has been acknowledged durable. Captured once, before
	// Flush runs.
	Durable func() wal.LSN
	// Clamp, when non-nil, lowers the captured horizon (e.g. to the
	// coherence directory's published floor, or a replica fleet's
	// converged prefix). A clamp may only lower the target, never raise
	// it.
	Clamp func(target wal.LSN) wal.LSN
	// Flush makes durable page state cover every LSN <= horizon,
	// charging the I/O to the clock. After a successful Flush, recovery
	// starting from checkpointed pages needs no record at or below
	// horizon.
	Flush func(c *sim.Clock, horizon wal.LSN) error
	// Truncate discards log state below horizon+1 on every log-bearing
	// component, charging the truncation RPCs to the clock. Truncation
	// failures are non-fatal to the checkpoint (the horizon is already
	// published; retained extra log is waste, not corruption) but are
	// surfaced so callers can count them.
	Truncate func(c *sim.Clock, horizon wal.LSN) error
}

// Coordinator runs checkpoint rounds for one engine and owns the
// published recovery horizon. Telemetry is charged per site:
// "<site>.flush" and "<site>.truncate" land in the config's sim.Registry
// alongside the engine's other substrate operations.
type Coordinator struct {
	cfg  *sim.Config
	site string

	// runMu serializes rounds: two concurrent checkpoints would race
	// their flush→truncate windows against each other.
	runMu sync.Mutex

	mu      sync.Mutex
	horizon wal.LSN

	// Rounds counts completed checkpoint rounds; TruncateErrs counts
	// rounds whose truncation step failed after the horizon published
	// (retried by the next round).
	Rounds       atomic.Int64
	TruncateErrs atomic.Int64
}

// New creates a coordinator charging telemetry under site (e.g.
// "ckpt.aurora").
func New(cfg *sim.Config, site string) *Coordinator {
	return &Coordinator{cfg: cfg, site: site}
}

// Horizon reports the published recovery horizon (0 before the first
// checkpoint). Every commit at or below it is covered by checkpointed
// page state.
func (co *Coordinator) Horizon() wal.LSN {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.horizon
}

// publish raises the horizon (monotonic).
func (co *Coordinator) publish(h wal.LSN) {
	co.mu.Lock()
	if h > co.horizon {
		co.horizon = h
	}
	co.mu.Unlock()
}

// Checkpoint runs one round: capture, clamp, flush, publish, truncate.
// A round whose target does not advance past the published horizon is a
// no-op. Flush errors abort the round with the horizon unchanged;
// truncate errors are returned after the horizon has published (the
// round still counts — recovery is already bounded, only log space is
// still owed).
func (co *Coordinator) Checkpoint(c *sim.Clock, r Round) error {
	co.runMu.Lock()
	defer co.runMu.Unlock()
	target := r.Durable()
	if r.Clamp != nil {
		if clamped := r.Clamp(target); clamped < target {
			target = clamped
		}
	}
	if target <= co.Horizon() {
		return nil
	}
	op := co.cfg.Begin(c, co.site+".flush")
	if err := r.Flush(c, target); err != nil {
		op.End(0)
		return err
	}
	op.End(int64(target - co.Horizon()))
	co.publish(target)
	co.Rounds.Add(1)
	if c.Events() != nil {
		c.Emit(sim.Event{T: c.Now(), Kind: sim.EvCheckpoint, Site: co.site,
			Note: fmt.Sprintf("horizon=%d", target)})
	}
	top := co.cfg.Begin(c, co.site+".truncate")
	err := r.Truncate(c, target)
	top.End(int64(target))
	if err != nil {
		co.TruncateErrs.Add(1)
	}
	return err
}
