package checkpoint

import (
	"errors"
	"sync"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

func TestRoundOrderingCaptureBeforeFlush(t *testing.T) {
	co := New(sim.DefaultConfig(), "ckpt.test")
	durable := wal.LSN(10)
	var flushedAt wal.LSN
	var truncatedAt wal.LSN
	err := co.Checkpoint(sim.NewClock(), Round{
		Durable: func() wal.LSN { return durable },
		Flush: func(c *sim.Clock, h wal.LSN) error {
			// A commit acked mid-flush: the captured horizon must not
			// chase it, or truncation would discard its records.
			durable = 14
			flushedAt = h
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			truncatedAt = h
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if flushedAt != 10 || truncatedAt != 10 {
		t.Fatalf("flush/truncate saw horizons %d/%d, want the pre-flush capture 10", flushedAt, truncatedAt)
	}
	if h := co.Horizon(); h != 10 {
		t.Fatalf("published horizon %d chased the mid-flush commit, want 10", h)
	}
}

func TestFlushErrorAbortsWithHorizonUnchanged(t *testing.T) {
	co := New(sim.DefaultConfig(), "ckpt.test")
	boom := errors.New("quorum lost")
	truncated := false
	err := co.Checkpoint(sim.NewClock(), Round{
		Durable:  func() wal.LSN { return 7 },
		Flush:    func(c *sim.Clock, h wal.LSN) error { return boom },
		Truncate: func(c *sim.Clock, h wal.LSN) error { truncated = true; return nil },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the flush error", err)
	}
	if truncated {
		t.Fatal("truncation ran after a failed flush: unflushed commits would be discarded")
	}
	if h := co.Horizon(); h != 0 {
		t.Fatalf("horizon %d published despite failed flush", h)
	}
	if n := co.Rounds.Load(); n != 0 {
		t.Fatalf("failed round counted as complete (%d)", n)
	}
}

func TestTruncateErrorSurfacesAfterPublish(t *testing.T) {
	co := New(sim.DefaultConfig(), "ckpt.test")
	boom := errors.New("truncate RPC dropped")
	durable := wal.LSN(5)
	round := func(terr error) Round {
		return Round{
			Durable:  func() wal.LSN { return durable },
			Flush:    func(c *sim.Clock, h wal.LSN) error { return nil },
			Truncate: func(c *sim.Clock, h wal.LSN) error { return terr },
		}
	}
	if err := co.Checkpoint(sim.NewClock(), round(boom)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the truncate error", err)
	}
	// The horizon published anyway: recovery is bounded, only log space
	// is still owed.
	if h := co.Horizon(); h != 5 {
		t.Fatalf("horizon = %d after torn truncation, want 5", h)
	}
	if n := co.TruncateErrs.Load(); n != 1 {
		t.Fatalf("TruncateErrs = %d, want 1", n)
	}
	// The next round retires the debt.
	durable = 9
	if err := co.Checkpoint(sim.NewClock(), round(nil)); err != nil {
		t.Fatal(err)
	}
	if h := co.Horizon(); h != 9 {
		t.Fatalf("horizon = %d after healed round, want 9", h)
	}
}

func TestClampLowersNeverRaises(t *testing.T) {
	co := New(sim.DefaultConfig(), "ckpt.test")
	var flushedAt wal.LSN
	r := Round{
		Durable:  func() wal.LSN { return 20 },
		Clamp:    func(target wal.LSN) wal.LSN { return 12 },
		Flush:    func(c *sim.Clock, h wal.LSN) error { flushedAt = h; return nil },
		Truncate: func(c *sim.Clock, h wal.LSN) error { return nil },
	}
	if err := co.Checkpoint(sim.NewClock(), r); err != nil {
		t.Fatal(err)
	}
	if flushedAt != 12 || co.Horizon() != 12 {
		t.Fatalf("clamped round flushed/published %d/%d, want 12", flushedAt, co.Horizon())
	}
	// A clamp that tries to raise the target is ignored.
	r.Clamp = func(target wal.LSN) wal.LSN { return 99 }
	if err := co.Checkpoint(sim.NewClock(), r); err != nil {
		t.Fatal(err)
	}
	if h := co.Horizon(); h != 20 {
		t.Fatalf("horizon = %d, want the durable LSN 20, not the raising clamp", h)
	}
}

func TestStaleTargetIsNoOp(t *testing.T) {
	co := New(sim.DefaultConfig(), "ckpt.test")
	durable := wal.LSN(8)
	flushes := 0
	r := Round{
		Durable:  func() wal.LSN { return durable },
		Flush:    func(c *sim.Clock, h wal.LSN) error { flushes++; return nil },
		Truncate: func(c *sim.Clock, h wal.LSN) error { return nil },
	}
	if err := co.Checkpoint(sim.NewClock(), r); err != nil {
		t.Fatal(err)
	}
	// No new commits: the second round must not flush again.
	if err := co.Checkpoint(sim.NewClock(), r); err != nil {
		t.Fatal(err)
	}
	if flushes != 1 {
		t.Fatalf("stale round flushed (%d flushes)", flushes)
	}
	if n := co.Rounds.Load(); n != 1 {
		t.Fatalf("Rounds = %d, want 1", n)
	}
}

func TestConcurrentRoundsSerializeAndStayMonotonic(t *testing.T) {
	co := New(sim.DefaultConfig(), "ckpt.test")
	var mu sync.Mutex
	durable := wal.LSN(0)
	inFlush := false
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			durable += 3
			mu.Unlock()
			_ = co.Checkpoint(sim.NewClock(), Round{
				Durable: func() wal.LSN { mu.Lock(); defer mu.Unlock(); return durable },
				Flush: func(c *sim.Clock, h wal.LSN) error {
					mu.Lock()
					if inFlush {
						t.Error("two flush→truncate windows overlapped")
					}
					inFlush = true
					mu.Unlock()
					return nil
				},
				Truncate: func(c *sim.Clock, h wal.LSN) error {
					mu.Lock()
					inFlush = false
					mu.Unlock()
					return nil
				},
			})
		}()
	}
	wg.Wait()
	if h := co.Horizon(); h != 24 {
		t.Fatalf("horizon = %d after 8 rounds of +3, want 24", h)
	}
}
