// Package remotecache implements Redy and CompuCache (§3.2): a remote
// cache built from *stranded* memory — DRAM fragments on machines whose
// cores are rented out — offering a lower-latency alternative to SSD
// caches. Redy's two challenges are modeled directly:
//
//   - Performance: an SLO-driven configurator picks the access mode
//     (one-sided reads vs batched two-sided RPC) based on the observed
//     congestion signal, trading latency against remote-CPU cost.
//
//   - Dynamics: stranded memory can be reclaimed by the VM allocator on
//     minutes notice; the cache migrates its contents to another node and
//     stays correct.
//
// CompuCache's near-data processing is included as a stored-procedure
// pointer chase: k dependent hops execute on the cache node in ONE round
// trip instead of k.
package remotecache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// Package errors.
var (
	ErrNotFound = errors.New("remotecache: key not found")
	ErrNoNodes  = errors.New("remotecache: no stranded nodes available")
)

// AccessMode selects the RDMA configuration Redy tunes.
type AccessMode int

// Access modes.
const (
	// ModeOneSided reads values with one-sided verbs (lowest latency,
	// no remote CPU).
	ModeOneSided AccessMode = iota
	// ModeRPC batches gets through the node CPU (higher base latency,
	// but cheaper under NIC congestion).
	ModeRPC
)

// SLO is the latency target driving configuration.
type SLO struct {
	// TargetP99 is the latency objective for Get.
	TargetP99 time.Duration
	// CongestionSwitch is the queued fraction above which the
	// configurator flips to RPC mode.
	CongestionSwitch float64
}

// DefaultSLO returns a 10µs target.
func DefaultSLO() SLO { return SLO{TargetP99: 10 * time.Microsecond, CongestionSwitch: 0.3} }

// Cache is a Redy-style remote cache over one active stranded node with
// standbys for migration.
type Cache struct {
	cfg       *sim.Config
	slo       SLO
	ValueSize int

	mu      sync.Mutex
	nodes   []*memnode.Pool // nodes[active] holds the data
	active  int
	index   map[uint64]uint64 // key -> remote addr (client-cached index)
	mode    AccessMode
	getHist int64
	// Migrations counts reclamation-driven moves.
	Migrations int
}

// New builds a cache with n stranded-memory nodes of size bytes each.
func New(cfg *sim.Config, slo SLO, n, size, valueSize int) (*Cache, error) {
	if n < 1 {
		return nil, ErrNoNodes
	}
	c := &Cache{cfg: cfg, slo: slo, ValueSize: valueSize, index: make(map[uint64]uint64)}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, memnode.New(cfg, fmt.Sprintf("stranded-%d", i), size))
	}
	c.registerHandlers(c.nodes[0])
	return c, nil
}

func (c *Cache) registerHandlers(p *memnode.Pool) {
	p.Node().Handle("cache.get", func(clk *sim.Clock, req []byte) []byte {
		if len(req) != 8 {
			return nil
		}
		addr := binary.LittleEndian.Uint64(req)
		out := make([]byte, c.ValueSize)
		if p.Node().Mem.Read(addr, out) != nil {
			return nil
		}
		clk.Advance(c.cfg.DRAM.Cost(c.ValueSize))
		return out
	})
	p.Node().Handle("cache.chase", func(clk *sim.Clock, req []byte) []byte {
		// Pointer chase: follow k hops starting at addr; each hop
		// reads a value whose first 8 bytes are the next address.
		if len(req) != 16 {
			return nil
		}
		addr := binary.LittleEndian.Uint64(req)
		hops := binary.LittleEndian.Uint64(req[8:])
		buf := make([]byte, c.ValueSize)
		for i := uint64(0); i < hops; i++ {
			if p.Node().Mem.Read(addr, buf) != nil {
				return nil
			}
			clk.Advance(c.cfg.DRAM.Cost(c.ValueSize))
			addr = binary.LittleEndian.Uint64(buf)
		}
		return buf
	})
}

// Connect returns a QP to the active node.
func (c *Cache) Connect(stats *rdma.Stats) *rdma.QP {
	c.mu.Lock()
	p := c.nodes[c.active]
	c.mu.Unlock()
	return p.Connect(stats)
}

func (c *Cache) activePool() *memnode.Pool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[c.active]
}

// Mode reports the currently configured access mode.
func (c *Cache) Mode() AccessMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// Set stores a value (one-sided write; the index is client-cached).
func (c *Cache) Set(clk *sim.Clock, qp *rdma.QP, key uint64, val []byte) error {
	if len(val) != c.ValueSize {
		return fmt.Errorf("remotecache: value size %d, want %d", len(val), c.ValueSize)
	}
	c.mu.Lock()
	addr, ok := c.index[key]
	pool := c.nodes[c.active]
	c.mu.Unlock()
	if !ok {
		var err error
		addr, err = pool.Alloc(uint64(c.ValueSize))
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.index[key] = addr
		c.mu.Unlock()
	}
	return qp.Write(clk, addr, val)
}

// Get fetches a value using the configured mode, adapting the mode from
// the NIC congestion signal (Redy's SLO-driven configuration). A Get that
// races a Reclaim is redirected to the node the cache migrated to instead
// of surfacing the reclaimed node's failure as a miss.
func (c *Cache) Get(clk *sim.Clock, qp *rdma.QP, key uint64) ([]byte, error) {
	c.mu.Lock()
	addr, ok := c.index[key]
	mode := c.mode
	epoch := c.active
	pool := c.nodes[c.active]
	c.getHist++
	adapt := c.getHist%256 == 0
	c.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if adapt {
		c.adaptMode(qp)
	}
	if qp.Node() != pool.Node() {
		// The caller's QP predates a migration: addr came from the
		// post-migration index, so reading it through the old node would
		// return the wrong bytes (or ErrNodeFailed once the reclaim
		// completes). Chase the placement to the current node up front.
		clk.Advance(c.cfg.RDMARPC.Cost(16))
		qp = pool.Connect(nil)
	}
	out, err := c.getAt(clk, qp, addr, mode)
	if err != nil {
		return c.redirect(clk, key, epoch, err)
	}
	return out, nil
}

// getAt performs one read of addr through qp in the given mode.
func (c *Cache) getAt(clk *sim.Clock, qp *rdma.QP, addr uint64, mode AccessMode) ([]byte, error) {
	if mode == ModeOneSided {
		out := make([]byte, c.ValueSize)
		if err := qp.Read(clk, addr, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	var req [8]byte
	binary.LittleEndian.PutUint64(req[:], addr)
	out, err := qp.Call(clk, "cache.get", req[:])
	if err != nil {
		return nil, err
	}
	if len(out) != c.ValueSize {
		return nil, ErrNotFound
	}
	return out, nil
}

// redirect retries a failed Get against the node the cache migrated to.
// Regression: a Get racing Reclaim used to return the reclaimed node's
// error (surfacing as a spurious miss/failure) even though the value had
// been migrated intact. The loop is bounded: it only retries while the
// migration epoch advanced since the failed attempt, which happens at most
// len(nodes)-1 times.
func (c *Cache) redirect(clk *sim.Clock, key uint64, epoch int, orig error) ([]byte, error) {
	for {
		c.mu.Lock()
		if c.active == epoch {
			c.mu.Unlock()
			return nil, orig
		}
		epoch = c.active
		addr, ok := c.index[key]
		mode := c.mode
		pool := c.nodes[c.active]
		c.mu.Unlock()
		if !ok {
			return nil, ErrNotFound
		}
		// Chasing the migration costs one control round trip to learn the
		// new placement, then the retried read on the new node.
		clk.Advance(c.cfg.RDMARPC.Cost(16))
		out, err := c.getAt(clk, pool.Connect(nil), addr, mode)
		if err == nil {
			return out, nil
		}
		orig = err
	}
}

// adaptMode flips between one-sided and RPC based on NIC queueing.
func (c *Cache) adaptMode(qp *rdma.QP) {
	frac := qp.Node().NIC.QueuedFraction()
	c.mu.Lock()
	if frac > c.slo.CongestionSwitch {
		c.mode = ModeRPC
	} else {
		c.mode = ModeOneSided
	}
	c.mu.Unlock()
}

// Chase performs a k-hop pointer chase.
// Offloaded (CompuCache): ONE RPC; the node follows the pointers locally.
// Client-driven: k dependent one-sided reads.
func (c *Cache) Chase(clk *sim.Clock, qp *rdma.QP, startKey uint64, hops int, offloaded bool) ([]byte, error) {
	c.mu.Lock()
	addr, ok := c.index[startKey]
	c.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if offloaded {
		var req [16]byte
		binary.LittleEndian.PutUint64(req[:], addr)
		binary.LittleEndian.PutUint64(req[8:], uint64(hops))
		out, err := qp.Call(clk, "cache.chase", req[:])
		if err != nil {
			return nil, err
		}
		if len(out) != c.ValueSize {
			return nil, ErrNotFound
		}
		return out, nil
	}
	buf := make([]byte, c.ValueSize)
	for i := 0; i < hops; i++ {
		if err := qp.Read(clk, addr, buf); err != nil {
			return nil, err
		}
		addr = binary.LittleEndian.Uint64(buf)
	}
	return buf, nil
}

// Reclaim simulates the VM allocator revoking the active node's memory:
// the cache migrates every value to the next standby, charging the bulk
// copy, and the old node is failed. Returns bytes moved.
func (c *Cache) Reclaim(clk *sim.Clock) (int64, error) {
	c.mu.Lock()
	if c.active+1 >= len(c.nodes) {
		c.mu.Unlock()
		return 0, ErrNoNodes
	}
	old := c.nodes[c.active]
	next := c.nodes[c.active+1]
	index := c.index
	c.mu.Unlock()

	newIndex := make(map[uint64]uint64, len(index))
	var moved int64
	buf := make([]byte, c.ValueSize)
	for key, addr := range index {
		if err := old.Node().Mem.Read(addr, buf); err != nil {
			return moved, err
		}
		na, err := next.Alloc(uint64(c.ValueSize))
		if err != nil {
			return moved, err
		}
		if err := next.Node().Mem.Write(na, buf); err != nil {
			return moved, err
		}
		newIndex[key] = na
		moved += int64(c.ValueSize)
	}
	// Bulk node-to-node transfer over the fabric.
	clk.Advance(c.cfg.RDMA.Cost(int(moved)))
	c.registerHandlers(next)
	c.mu.Lock()
	c.index = newIndex
	c.active++
	c.Migrations++
	c.mu.Unlock()
	old.Node().Fail()
	return moved, nil
}

// Link builds a pointer chain over keys 0..hops: key i's value begins with
// the remote address of key i+1's block, so Chase(0, hops) walks the whole
// chain. All keys must already be Set.
func (c *Cache) Link(clk *sim.Clock, qp *rdma.QP, hops int) error {
	for i := 0; i < hops; i++ {
		c.mu.Lock()
		next, ok := c.index[uint64(i+1)]
		c.mu.Unlock()
		if !ok {
			return ErrNotFound
		}
		v := make([]byte, c.ValueSize)
		binary.LittleEndian.PutUint64(v, next)
		if err := c.Set(clk, qp, uint64(i), v); err != nil {
			return err
		}
	}
	return nil
}

// SSDGetCost reports the comparator cost of serving the same value from a
// local SSD cache (E15's baseline).
func (c *Cache) SSDGetCost() time.Duration {
	return c.cfg.SSDRead.Cost(c.ValueSize)
}
