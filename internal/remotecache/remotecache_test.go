package remotecache

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

func newCache(t *testing.T, nodes int) *Cache {
	t.Helper()
	c, err := New(sim.DefaultConfig(), DefaultSLO(), nodes, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetGetRoundTrip(t *testing.T) {
	c := newCache(t, 1)
	qp := c.Connect(nil)
	clk := sim.NewClock()
	val := make([]byte, 64)
	copy(val, "remote cache value")
	if err := c.Set(clk, qp, 42, val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(clk, qp, 42)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("get: %q %v", got[:18], err)
	}
	if _, err := c.Get(clk, qp, 43); err != ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}
}

func TestWrongValueSizeRejected(t *testing.T) {
	c := newCache(t, 1)
	qp := c.Connect(nil)
	if err := c.Set(sim.NewClock(), qp, 1, make([]byte, 3)); err == nil {
		t.Fatal("wrong size accepted")
	}
}

func TestRemoteCacheBeatsSSD(t *testing.T) {
	// E15 headline: stranded-memory cache ≪ SSD latency.
	c := newCache(t, 1)
	qp := c.Connect(nil)
	clk := sim.NewClock()
	c.Set(clk, qp, 1, make([]byte, 64))
	g := sim.NewClock()
	if _, err := c.Get(g, qp, 1); err != nil {
		t.Fatal(err)
	}
	if ssd := c.SSDGetCost(); !(g.Now() < ssd/10) {
		t.Fatalf("remote get %v should be ≫10x faster than SSD %v", g.Now(), ssd)
	}
}

func TestReclaimMigratesAndStaysCorrect(t *testing.T) {
	c := newCache(t, 2)
	qp := c.Connect(nil)
	clk := sim.NewClock()
	vals := map[uint64][]byte{}
	for k := uint64(0); k < 100; k++ {
		v := make([]byte, 64)
		binary.LittleEndian.PutUint64(v, k*7)
		vals[k] = v
		if err := c.Set(clk, qp, k, v); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := c.Reclaim(clk)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 100*64 {
		t.Fatalf("moved %d bytes", moved)
	}
	if c.Migrations != 1 {
		t.Fatalf("migrations = %d", c.Migrations)
	}
	// Old QP points at the failed node; reconnect to the new one.
	qp2 := c.Connect(nil)
	for k, want := range vals {
		got, err := c.Get(clk, qp2, k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %d after migration: %v %v", k, got[:8], err)
		}
	}
	// Second reclaim has no standby left.
	if _, err := c.Reclaim(clk); err != ErrNoNodes {
		t.Fatalf("reclaim without standby: %v", err)
	}
}

func TestPointerChaseOffloadOneRoundTrip(t *testing.T) {
	// E15/CompuCache: k-hop chase = 1 RPC offloaded vs k reads direct.
	cfg := sim.DefaultConfig()
	c, err := New(cfg, DefaultSLO(), 1, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	qp := c.Connect(nil)
	clk := sim.NewClock()
	// Build a chain: key i's value points at key i+1's address.
	const hops = 8
	keys := make([]uint64, hops+1)
	for i := range keys {
		keys[i] = uint64(100 + i)
		c.Set(clk, qp, keys[i], make([]byte, 64))
	}
	for i := 0; i < hops; i++ {
		v := make([]byte, 64)
		binary.LittleEndian.PutUint64(v, c.index[keys[i+1]])
		copy(v[8:], []byte{byte(i)})
		c.Set(clk, qp, keys[i], v)
	}
	direct := sim.NewClock()
	dv, err := c.Chase(direct, qp, keys[0], hops, false)
	if err != nil {
		t.Fatal(err)
	}
	off := sim.NewClock()
	ov, err := c.Chase(off, qp, keys[0], hops, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dv, ov) {
		t.Fatal("offloaded and direct chase disagree")
	}
	if !(off.Now() < direct.Now()/3) {
		t.Fatalf("offloaded chase %v should be ≫ faster than %d direct reads (%v)", off.Now(), hops, direct.Now())
	}
	if direct.Now() < time.Duration(hops)*cfg.RDMA.Base {
		t.Fatalf("direct chase cheaper than %d round trips", hops)
	}
}

func TestSLOAdaptsModeUnderCongestion(t *testing.T) {
	c := newCache(t, 1)
	clk := sim.NewClock()
	qp := c.Connect(nil)
	c.Set(clk, qp, 1, make([]byte, 64))
	if c.Mode() != ModeOneSided {
		t.Fatal("should start one-sided")
	}
	// Saturate the node NIC so the congestion signal rises, then issue
	// enough gets to trigger adaptation.
	res := sim.RunGroup(32, func(id int, wc *sim.Clock) int {
		w := c.Connect(nil)
		for i := 0; i < 64; i++ {
			c.Get(wc, w, 1)
		}
		return 64
	})
	if res.TotalOps != 32*64 {
		t.Fatalf("gets = %d", res.TotalOps)
	}
	if c.Mode() != ModeRPC {
		t.Fatalf("mode did not adapt under congestion (queued frac %.2f)",
			c.activePool().Node().NIC.QueuedFraction())
	}
}
