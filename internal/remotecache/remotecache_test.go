package remotecache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

func newCache(t *testing.T, nodes int) *Cache {
	t.Helper()
	c, err := New(sim.DefaultConfig(), DefaultSLO(), nodes, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetGetRoundTrip(t *testing.T) {
	c := newCache(t, 1)
	qp := c.Connect(nil)
	clk := sim.NewClock()
	val := make([]byte, 64)
	copy(val, "remote cache value")
	if err := c.Set(clk, qp, 42, val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(clk, qp, 42)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("get: %q %v", got[:18], err)
	}
	if _, err := c.Get(clk, qp, 43); err != ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}
}

func TestWrongValueSizeRejected(t *testing.T) {
	c := newCache(t, 1)
	qp := c.Connect(nil)
	if err := c.Set(sim.NewClock(), qp, 1, make([]byte, 3)); err == nil {
		t.Fatal("wrong size accepted")
	}
}

func TestRemoteCacheBeatsSSD(t *testing.T) {
	// E15 headline: stranded-memory cache ≪ SSD latency.
	c := newCache(t, 1)
	qp := c.Connect(nil)
	clk := sim.NewClock()
	c.Set(clk, qp, 1, make([]byte, 64))
	g := sim.NewClock()
	if _, err := c.Get(g, qp, 1); err != nil {
		t.Fatal(err)
	}
	if ssd := c.SSDGetCost(); !(g.Now() < ssd/10) {
		t.Fatalf("remote get %v should be ≫10x faster than SSD %v", g.Now(), ssd)
	}
}

func TestReclaimMigratesAndStaysCorrect(t *testing.T) {
	c := newCache(t, 2)
	qp := c.Connect(nil)
	clk := sim.NewClock()
	vals := map[uint64][]byte{}
	for k := uint64(0); k < 100; k++ {
		v := make([]byte, 64)
		binary.LittleEndian.PutUint64(v, k*7)
		vals[k] = v
		if err := c.Set(clk, qp, k, v); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := c.Reclaim(clk)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 100*64 {
		t.Fatalf("moved %d bytes", moved)
	}
	if c.Migrations != 1 {
		t.Fatalf("migrations = %d", c.Migrations)
	}
	// Old QP points at the failed node; reconnect to the new one.
	qp2 := c.Connect(nil)
	for k, want := range vals {
		got, err := c.Get(clk, qp2, k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %d after migration: %v %v", k, got[:8], err)
		}
	}
	// Second reclaim has no standby left.
	if _, err := c.Reclaim(clk); err != ErrNoNodes {
		t.Fatalf("reclaim without standby: %v", err)
	}
}

func TestPointerChaseOffloadOneRoundTrip(t *testing.T) {
	// E15/CompuCache: k-hop chase = 1 RPC offloaded vs k reads direct.
	cfg := sim.DefaultConfig()
	c, err := New(cfg, DefaultSLO(), 1, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	qp := c.Connect(nil)
	clk := sim.NewClock()
	// Build a chain: key i's value points at key i+1's address.
	const hops = 8
	keys := make([]uint64, hops+1)
	for i := range keys {
		keys[i] = uint64(100 + i)
		c.Set(clk, qp, keys[i], make([]byte, 64))
	}
	for i := 0; i < hops; i++ {
		v := make([]byte, 64)
		binary.LittleEndian.PutUint64(v, c.index[keys[i+1]])
		copy(v[8:], []byte{byte(i)})
		c.Set(clk, qp, keys[i], v)
	}
	direct := sim.NewClock()
	dv, err := c.Chase(direct, qp, keys[0], hops, false)
	if err != nil {
		t.Fatal(err)
	}
	off := sim.NewClock()
	ov, err := c.Chase(off, qp, keys[0], hops, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dv, ov) {
		t.Fatal("offloaded and direct chase disagree")
	}
	if !(off.Now() < direct.Now()/3) {
		t.Fatalf("offloaded chase %v should be ≫ faster than %d direct reads (%v)", off.Now(), hops, direct.Now())
	}
	if direct.Now() < time.Duration(hops)*cfg.RDMA.Base {
		t.Fatalf("direct chase cheaper than %d round trips", hops)
	}
}

// Regression: a Get racing Reclaim used to read the post-migration address
// through the reclaimed node's QP and surface ErrNodeFailed (or wrong
// bytes in the pre-Fail window) even though the value had been migrated
// intact. The client must be redirected to the node the cache moved to.
func TestGetRedirectsAcrossReclaim(t *testing.T) {
	c := newCache(t, 2)
	oldQP := c.Connect(nil)
	clk := sim.NewClock()
	want := make([]byte, 64)
	copy(want, "survives reclamation")
	if err := c.Set(clk, oldQP, 7, want); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reclaim(clk); err != nil {
		t.Fatal(err)
	}
	// The client still holds the pre-migration QP (it has not observed
	// the reclamation). Its Get must chase the migration, not fail.
	rclk := sim.NewClock()
	got, err := c.Get(rclk, oldQP, 7)
	if err != nil {
		t.Fatalf("get through reclaimed node's QP: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("redirected get returned %q", got[:20])
	}
	// The redirect is not free: it pays a placement-chase round trip on
	// top of what a direct get through a fresh QP costs.
	dclk := sim.NewClock()
	if _, err := c.Get(dclk, c.Connect(nil), 7); err != nil {
		t.Fatal(err)
	}
	if !(rclk.Now() > dclk.Now()) {
		t.Fatalf("redirected get (%v) did not pay the chase round trip over a direct get (%v)",
			rclk.Now(), dclk.Now())
	}
}

// The same window in RPC mode: the two-sided path must redirect too.
func TestGetRedirectsAcrossReclaimRPCMode(t *testing.T) {
	c := newCache(t, 2)
	oldQP := c.Connect(nil)
	clk := sim.NewClock()
	want := make([]byte, 64)
	copy(want, "rpc mode value")
	if err := c.Set(clk, oldQP, 9, want); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.mode = ModeRPC
	c.mu.Unlock()
	if _, err := c.Reclaim(clk); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(clk, oldQP, 9)
	if err != nil {
		t.Fatalf("RPC get through reclaimed node's QP: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("redirected RPC get returned %q", got[:14])
	}
}

// Drive the redirect path itself: a Get whose read already failed against
// the old epoch must retry on the new node once the epoch advanced, and
// must return the original error when no migration happened.
func TestRedirectChasesMigrationEpoch(t *testing.T) {
	c := newCache(t, 2)
	qp := c.Connect(nil)
	clk := sim.NewClock()
	want := make([]byte, 64)
	copy(want, "epoch chase")
	if err := c.Set(clk, qp, 3, want); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("read raced the reclaim")
	// No migration: the original error stands.
	if _, err := c.redirect(clk, 3, 0, sentinel); err != sentinel {
		t.Fatalf("redirect without migration: %v", err)
	}
	// Migration advanced the epoch after our (simulated) failed read at
	// epoch 0: the retry lands on the new node.
	if _, err := c.Reclaim(clk); err != nil {
		t.Fatal(err)
	}
	got, err := c.redirect(clk, 3, 0, sentinel)
	if err != nil {
		t.Fatalf("redirect after migration: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("redirect returned %q", got[:11])
	}
}

// Concurrent readers crossing a live Reclaim: every Get must return the
// correct bytes — the migration may cost a chase, never an error or stale
// data. Run with -race.
func TestConcurrentGetsSurviveReclaim(t *testing.T) {
	c := newCache(t, 2)
	setup := sim.NewClock()
	setQP := c.Connect(nil)
	const keys = 16
	vals := make(map[uint64][]byte, keys)
	for k := uint64(0); k < keys; k++ {
		v := make([]byte, 64)
		binary.LittleEndian.PutUint64(v, k*31+1)
		vals[k] = v
		if err := c.Set(setup, setQP, k, v); err != nil {
			t.Fatal(err)
		}
	}
	res := sim.RunGroup(8, func(id int, wc *sim.Clock) int {
		if id == 0 {
			if _, err := c.Reclaim(wc); err != nil {
				t.Errorf("reclaim: %v", err)
			}
			return 1
		}
		qp := c.Connect(nil) // may bind to the soon-reclaimed node
		ops := 0
		for i := 0; i < 200; i++ {
			k := uint64(i % keys)
			got, err := c.Get(wc, qp, k)
			if err != nil {
				t.Errorf("get key %d during reclaim: %v", k, err)
				continue
			}
			if !bytes.Equal(got, vals[k]) {
				t.Errorf("get key %d returned wrong bytes during reclaim", k)
			}
			ops++
		}
		return ops
	})
	if res.TotalOps < 7*200 {
		t.Fatalf("ops = %d", res.TotalOps)
	}
	if c.Migrations != 1 {
		t.Fatalf("migrations = %d", c.Migrations)
	}
}

func TestSLOAdaptsModeUnderCongestion(t *testing.T) {
	c := newCache(t, 1)
	clk := sim.NewClock()
	qp := c.Connect(nil)
	c.Set(clk, qp, 1, make([]byte, 64))
	if c.Mode() != ModeOneSided {
		t.Fatal("should start one-sided")
	}
	// Saturate the node NIC so the congestion signal rises, then issue
	// enough gets to trigger adaptation.
	res := sim.RunGroup(32, func(id int, wc *sim.Clock) int {
		w := c.Connect(nil)
		for i := 0; i < 64; i++ {
			c.Get(wc, w, 1)
		}
		return 64
	})
	if res.TotalOps != 32*64 {
		t.Fatalf("gets = %d", res.TotalOps)
	}
	if c.Mode() != ModeRPC {
		t.Fatalf("mode did not adapt under congestion (queued frac %.2f)",
			c.activePool().Node().NIC.QueuedFraction())
	}
}
