// Package pond implements the Pond-style CXL memory pooling framework of
// §3.3: DRAM is pooled across small groups of sockets through a CXL
// switch, and a prediction model decides, at VM allocation time, how much
// of the VM's memory can live in the (slower) pool without violating a
// performance target. Pond's two insights are modeled directly: pooling
// across small socket groups already recovers most stranded DRAM, and the
// predictor keeps slowdowns bounded by giving latency-sensitive VMs local
// memory only.
package pond

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/disagglab/disagg/internal/sim"
)

// ErrNoCapacity is returned when a VM cannot be placed.
var ErrNoCapacity = errors.New("pond: no capacity")

// VM is one virtual machine request with the telemetry features Pond's
// models consume.
type VM struct {
	ID    int
	MemGB int
	// Workload features (telemetry available at allocation time).
	MemIntensity  float64 // fraction of cycles stalled on memory, 0..1
	UntouchedFrac float64 // fraction of its memory the VM never touches
	// latencySensitive is the ground truth used for evaluation.
	latencySensitive bool
}

// Socket is one host socket with local DRAM.
type Socket struct {
	TotalGB int
	UsedGB  int
}

// Pool is a group of sockets sharing a CXL memory pool.
type Pool struct {
	cfg     *sim.Config
	Sockets []*Socket
	// CXLTotalGB / CXLUsedGB track the shared pool.
	CXLTotalGB int
	CXLUsedGB  int
	// MaxPoolFrac caps the fraction of a VM's memory placed in the pool.
	MaxPoolFrac float64

	placements []Placement
}

// Placement records where a VM's memory landed.
type Placement struct {
	VM       VM
	Socket   int
	LocalGB  int
	PooledGB int
	// Slowdown is the modeled performance loss vs all-local.
	Slowdown float64
}

// NewPool builds a socket group: `sockets` sockets of perSocketGB each and
// a shared CXL pool of cxlGB.
func NewPool(cfg *sim.Config, sockets, perSocketGB, cxlGB int) *Pool {
	p := &Pool{cfg: cfg, CXLTotalGB: cxlGB, MaxPoolFrac: 0.5}
	for i := 0; i < sockets; i++ {
		p.Sockets = append(p.Sockets, &Socket{TotalGB: perSocketGB})
	}
	return p
}

// Predictor decides whether a VM tolerates pooled memory, and how much.
type Predictor interface {
	// PoolFraction returns the fraction of the VM's memory to place in
	// the CXL pool (0 = all local).
	PoolFraction(vm VM) float64
}

// StaticPredictor always pools the same fraction (the no-ML baseline).
type StaticPredictor struct{ Frac float64 }

// PoolFraction implements Predictor.
func (s StaticPredictor) PoolFraction(VM) float64 { return s.Frac }

// ModelPredictor is Pond's supervised model distilled to its two features:
// memory intensity (latency sensitivity proxy) and untouched memory (free
// to pool — the VM will never notice).
type ModelPredictor struct {
	// IntensityCutoff above which a VM is treated as latency-sensitive.
	IntensityCutoff float64
	// MaxFrac bounds pooling for insensitive VMs.
	MaxFrac float64
}

// DefaultModel returns the calibrated predictor.
func DefaultModel() ModelPredictor { return ModelPredictor{IntensityCutoff: 0.35, MaxFrac: 0.5} }

// PoolFraction implements Predictor.
func (m ModelPredictor) PoolFraction(vm VM) float64 {
	frac := vm.UntouchedFrac // untouched memory pools for free
	if vm.MemIntensity < m.IntensityCutoff {
		frac += (m.MaxFrac - frac) * (1 - vm.MemIntensity/m.IntensityCutoff)
	}
	if frac > m.MaxFrac {
		frac = m.MaxFrac
	}
	if frac < 0 {
		frac = 0
	}
	return frac
}

// slowdown models the performance loss of placing pooledFrac of a VM's
// *touched* memory on CXL: proportional to memory intensity and the
// CXL:DRAM latency gap.
func (p *Pool) slowdown(vm VM, pooledGB int) float64 {
	if vm.MemGB == 0 || pooledGB == 0 {
		return 0
	}
	touched := float64(vm.MemGB) * (1 - vm.UntouchedFrac)
	pooledTouched := float64(pooledGB) - float64(vm.MemGB)*vm.UntouchedFrac
	if pooledTouched <= 0 {
		return 0
	}
	gap := float64(p.cfg.CXL.Base)/float64(p.cfg.DRAM.Base) - 1
	return vm.MemIntensity * gap * (pooledTouched / touched)
}

// Place allocates a VM using the predictor, preferring the least-loaded
// socket. Returns the placement.
func (p *Pool) Place(vm VM, pred Predictor) (Placement, error) {
	frac := pred.PoolFraction(vm)
	if frac > p.MaxPoolFrac {
		frac = p.MaxPoolFrac
	}
	pooled := int(float64(vm.MemGB) * frac)
	if p.CXLUsedGB+pooled > p.CXLTotalGB {
		pooled = p.CXLTotalGB - p.CXLUsedGB
		if pooled < 0 {
			pooled = 0
		}
	}
	local := vm.MemGB - pooled
	// Least-loaded socket with room.
	best := -1
	for i, s := range p.Sockets {
		if s.TotalGB-s.UsedGB >= local {
			if best == -1 || s.UsedGB < p.Sockets[best].UsedGB {
				best = i
			}
		}
	}
	if best == -1 {
		// Try shifting more to the pool.
		for i, s := range p.Sockets {
			free := s.TotalGB - s.UsedGB
			need := vm.MemGB - free
			if free > 0 && p.CXLUsedGB+need <= p.CXLTotalGB && float64(need)/float64(vm.MemGB) <= p.MaxPoolFrac {
				best = i
				pooled = need
				local = free
				break
			}
		}
	}
	if best == -1 {
		return Placement{}, ErrNoCapacity
	}
	p.Sockets[best].UsedGB += local
	p.CXLUsedGB += pooled
	pl := Placement{VM: vm, Socket: best, LocalGB: local, PooledGB: pooled, Slowdown: p.slowdown(vm, pooled)}
	p.placements = append(p.placements, pl)
	return pl, nil
}

// Placements returns all successful placements.
func (p *Pool) Placements() []Placement { return p.placements }

// DRAMUtilization reports used/total across sockets (stranding shows up as
// low utilization).
func (p *Pool) DRAMUtilization() float64 {
	var used, total int
	for _, s := range p.Sockets {
		used += s.UsedGB
		total += s.TotalGB
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// PlacedGB reports total VM memory successfully placed.
func (p *Pool) PlacedGB() int {
	n := 0
	for _, pl := range p.placements {
		n += pl.VM.MemGB
	}
	return n
}

// MaxSlowdown reports the worst per-VM slowdown (the SLO Pond guards).
func (p *Pool) MaxSlowdown() float64 {
	var m float64
	for _, pl := range p.placements {
		if pl.Slowdown > m {
			m = pl.Slowdown
		}
	}
	return m
}

// GenerateVMs produces a synthetic arrival trace with a realistic mix:
// ~30% memory-intensive (latency-sensitive) VMs and a long tail of small,
// mostly idle VMs with untouched memory (the stranding source).
func GenerateVMs(seed int64, n int) []VM {
	r := rand.New(rand.NewSource(seed))
	vms := make([]VM, n)
	for i := range vms {
		sensitive := r.Float64() < 0.3
		vm := VM{ID: i, latencySensitive: sensitive}
		if sensitive {
			vm.MemGB = 8 + r.Intn(56)
			vm.MemIntensity = 0.4 + 0.5*r.Float64()
			vm.UntouchedFrac = 0.05 * r.Float64()
		} else {
			vm.MemGB = 2 + r.Intn(30)
			vm.MemIntensity = 0.3 * r.Float64()
			vm.UntouchedFrac = 0.2 + 0.4*r.Float64()
		}
		vms[i] = vm
	}
	return vms
}

// String renders a placement.
func (pl Placement) String() string {
	return fmt.Sprintf("vm%d: %dGB local + %dGB pooled (slowdown %.1f%%)", pl.VM.ID, pl.LocalGB, pl.PooledGB, 100*pl.Slowdown)
}
