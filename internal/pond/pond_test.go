package pond

import (
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

func TestPlaceAllLocalWithStaticZero(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := NewPool(cfg, 2, 100, 100)
	pl, err := p.Place(VM{ID: 1, MemGB: 40, MemIntensity: 0.9}, StaticPredictor{Frac: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pl.PooledGB != 0 || pl.LocalGB != 40 || pl.Slowdown != 0 {
		t.Fatalf("placement %+v", pl)
	}
	if p.DRAMUtilization() != 0.2 {
		t.Fatalf("utilization = %v", p.DRAMUtilization())
	}
}

func TestModelPoolsInsensitiveVMs(t *testing.T) {
	m := DefaultModel()
	idle := VM{MemIntensity: 0.05, UntouchedFrac: 0.4}
	busy := VM{MemIntensity: 0.9, UntouchedFrac: 0.0}
	if m.PoolFraction(idle) <= m.PoolFraction(busy) {
		t.Fatalf("idle VM should pool more: %.2f vs %.2f", m.PoolFraction(idle), m.PoolFraction(busy))
	}
	if f := m.PoolFraction(idle); f > m.MaxFrac {
		t.Fatalf("fraction %f exceeds cap", f)
	}
}

func TestSlowdownModel(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := NewPool(cfg, 1, 1000, 1000)
	// Fully untouched pooled memory: zero slowdown.
	vm := VM{MemGB: 10, MemIntensity: 0.8, UntouchedFrac: 0.5}
	if s := p.slowdown(vm, 5); s != 0 {
		t.Fatalf("untouched pooling slowed down: %v", s)
	}
	// Touched pooled memory: slowdown grows with intensity.
	low := p.slowdown(VM{MemGB: 10, MemIntensity: 0.1}, 5)
	high := p.slowdown(VM{MemGB: 10, MemIntensity: 0.9}, 5)
	if !(low < high) || high == 0 {
		t.Fatalf("slowdowns: low %v high %v", low, high)
	}
}

func TestPoolingImprovesPackingOverNoPool(t *testing.T) {
	// E19 headline: with the same socket DRAM, adding a small CXL pool
	// lets the group admit more VM memory.
	cfg := sim.DefaultConfig()
	vms := GenerateVMs(7, 200)
	run := func(cxlGB int, pred Predictor) (placedGB int, util float64, maxSlow float64) {
		p := NewPool(cfg, 4, 256, cxlGB)
		for _, vm := range vms {
			p.Place(vm, pred)
		}
		return p.PlacedGB(), p.DRAMUtilization(), p.MaxSlowdown()
	}
	noPool, _, _ := run(0, StaticPredictor{Frac: 0})
	pooled, _, _ := run(512, DefaultModel())
	if !(pooled > noPool) {
		t.Fatalf("pooling did not improve packing: %d vs %d GB", pooled, noPool)
	}
}

func TestPredictorBoundsSlowdownVsStatic(t *testing.T) {
	// E19 second claim: a naive static policy pools everyone and hurts
	// sensitive VMs; the model keeps the worst slowdown lower while
	// pooling a comparable amount.
	// Capacity is sized so placement policy, not forced spilling,
	// determines where memory lands.
	cfg := sim.DefaultConfig()
	vms := GenerateVMs(11, 150)
	run := func(pred Predictor) (pooledGB int, maxSlow float64) {
		p := NewPool(cfg, 4, 1024, 2048)
		for _, vm := range vms {
			p.Place(vm, pred)
		}
		for _, pl := range p.Placements() {
			pooledGB += pl.PooledGB
		}
		return pooledGB, p.MaxSlowdown()
	}
	staticPooled, staticSlow := run(StaticPredictor{Frac: 0.5})
	modelPooled, modelSlow := run(DefaultModel())
	if modelPooled == 0 {
		t.Fatal("model pooled nothing")
	}
	if !(modelSlow < staticSlow/2) {
		t.Fatalf("model max slowdown %.2f should be ≪ static %.2f (pooled %d vs %d GB)",
			modelSlow, staticSlow, modelPooled, staticPooled)
	}
}

func TestPlaceSpillsWhenLocalFull(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := NewPool(cfg, 1, 20, 100)
	// First VM takes most local memory.
	if _, err := p.Place(VM{ID: 1, MemGB: 15}, StaticPredictor{Frac: 0}); err != nil {
		t.Fatal(err)
	}
	// Second needs 10GB: only 5 local left, so 5 must pool.
	pl, err := p.Place(VM{ID: 2, MemGB: 10, MemIntensity: 0.2}, StaticPredictor{Frac: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pl.LocalGB != 5 || pl.PooledGB != 5 {
		t.Fatalf("spill placement %+v", pl)
	}
	// Third is too large even with max pooling.
	if _, err := p.Place(VM{ID: 3, MemGB: 200}, DefaultModel()); err != ErrNoCapacity {
		t.Fatalf("oversize placement: %v", err)
	}
}

func TestGenerateVMsMix(t *testing.T) {
	vms := GenerateVMs(3, 1000)
	sensitive := 0
	for _, vm := range vms {
		if vm.latencySensitive {
			sensitive++
			if vm.MemIntensity < 0.4 {
				t.Fatal("sensitive VM with low intensity")
			}
		}
	}
	if sensitive < 230 || sensitive > 370 {
		t.Fatalf("sensitive fraction = %d/1000", sensitive)
	}
	if (Placement{VM: vms[0]}).String() == "" {
		t.Fatal("empty placement string")
	}
}
