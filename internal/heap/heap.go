// Package heap provides the fixed-record heap-table layout shared by the
// OLTP engines: a deterministic key -> (page, slot) mapping over slotted
// pages, plus the record codec. Engines differ in *where* pages live and
// how writes are made durable; they share this layout so that workloads,
// recovery, and experiments are comparable across engines.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/disagglab/disagg/internal/page"
)

// Layout describes a table of fixed-size records packed into slotted pages.
type Layout struct {
	PageSize int
	ValSize  int
	PerPage  int
}

// recordOverhead is the cell header: 8-byte key.
const recordOverhead = 8

// NewLayout computes how many records of valSize fit in a page of pageSize.
func NewLayout(pageSize, valSize int) (Layout, error) {
	if pageSize < 64 || valSize < 1 {
		return Layout{}, fmt.Errorf("heap: bad layout %d/%d", pageSize, valSize)
	}
	cell := recordOverhead + valSize
	// Page header (12) + 4 bytes of slot directory per cell.
	per := (pageSize - 12) / (cell + 4)
	if per < 1 {
		return Layout{}, errors.New("heap: value too large for page")
	}
	return Layout{PageSize: pageSize, ValSize: valSize, PerPage: per}, nil
}

// PageOf maps a key to its page.
func (l Layout) PageOf(key uint64) page.ID { return page.ID(key / uint64(l.PerPage)) }

// SlotOf maps a key to its slot within the page.
func (l Layout) SlotOf(key uint64) int { return int(key % uint64(l.PerPage)) }

// NumPages reports the number of pages needed for n keys.
func (l Layout) NumPages(n uint64) uint64 {
	return (n + uint64(l.PerPage) - 1) / uint64(l.PerPage)
}

// EncodeRecord builds a cell: key followed by the fixed-size value
// (padded/truncated to ValSize).
func (l Layout) EncodeRecord(key uint64, val []byte) []byte {
	cell := make([]byte, recordOverhead+l.ValSize)
	binary.LittleEndian.PutUint64(cell, key)
	copy(cell[recordOverhead:], val)
	return cell
}

// DecodeRecord splits a cell into key and value.
func (l Layout) DecodeRecord(cell []byte) (uint64, []byte, error) {
	if len(cell) != recordOverhead+l.ValSize {
		return 0, nil, fmt.Errorf("heap: cell size %d, want %d", len(cell), recordOverhead+l.ValSize)
	}
	return binary.LittleEndian.Uint64(cell), cell[recordOverhead:], nil
}

// FormatPage builds a fully populated page for the given page ID: every
// slot holds a zero-value record for its key. Engines use this to
// pre-materialize tables.
func (l Layout) FormatPage(id page.ID) *page.Page {
	p := page.New(l.PageSize)
	base := uint64(id) * uint64(l.PerPage)
	zero := make([]byte, l.ValSize)
	for s := 0; s < l.PerPage; s++ {
		if _, err := p.Insert(l.EncodeRecord(base+uint64(s), zero)); err != nil {
			// Layout guarantees fit; a failure here is a bug.
			panic(fmt.Sprintf("heap: FormatPage overflow: %v", err))
		}
	}
	return p
}

// ReadValue extracts the value for key from the page bytes.
func (l Layout) ReadValue(data []byte, key uint64) ([]byte, error) {
	p := page.Wrap(data)
	cell, err := p.Cell(l.SlotOf(key))
	if err != nil {
		return nil, err
	}
	k, v, err := l.DecodeRecord(cell)
	if err != nil {
		return nil, err
	}
	if k != key {
		return nil, fmt.Errorf("heap: page holds key %d at slot for key %d", k, key)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// WriteValue updates the value for key in the page bytes in place and
// stamps the page LSN.
func (l Layout) WriteValue(data []byte, key uint64, val []byte, lsn uint64) error {
	p := page.Wrap(data)
	if err := p.Update(l.SlotOf(key), l.EncodeRecord(key, val)); err != nil {
		return err
	}
	if lsn > 0 {
		p.SetLSN(lsn)
	}
	return nil
}
