package heap

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewLayout(t *testing.T) {
	l, err := NewLayout(8192, 100)
	if err != nil {
		t.Fatal(err)
	}
	// cell = 108, +4 slot dir => 112 per record; (8192-12)/112 = 73.
	if l.PerPage != 73 {
		t.Fatalf("PerPage = %d, want 73", l.PerPage)
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(10, 100); err == nil {
		t.Fatal("tiny page accepted")
	}
	if _, err := NewLayout(8192, 0); err == nil {
		t.Fatal("zero value size accepted")
	}
	if _, err := NewLayout(128, 4000); err == nil {
		t.Fatal("value larger than page accepted")
	}
}

func TestKeyMapping(t *testing.T) {
	l, _ := NewLayout(8192, 100)
	per := uint64(l.PerPage)
	if l.PageOf(0) != 0 || l.SlotOf(0) != 0 {
		t.Fatal("key 0 mapping")
	}
	if l.PageOf(per-1) != 0 || l.PageOf(per) != 1 {
		t.Fatal("page boundary mapping")
	}
	if l.SlotOf(per+3) != 3 {
		t.Fatal("slot mapping")
	}
	if l.NumPages(0) != 0 || l.NumPages(1) != 1 || l.NumPages(per) != 1 || l.NumPages(per+1) != 2 {
		t.Fatal("NumPages rounding")
	}
}

func TestRecordCodec(t *testing.T) {
	l, _ := NewLayout(4096, 16)
	cell := l.EncodeRecord(77, []byte("value"))
	k, v, err := l.DecodeRecord(cell)
	if err != nil {
		t.Fatal(err)
	}
	if k != 77 {
		t.Fatalf("key = %d", k)
	}
	if !bytes.Equal(v[:5], []byte("value")) {
		t.Fatalf("value = %q", v)
	}
	if len(v) != 16 {
		t.Fatalf("value padded to %d, want 16", len(v))
	}
	if _, _, err := l.DecodeRecord(cell[:3]); err == nil {
		t.Fatal("short cell accepted")
	}
}

func TestFormatPageAndReadWrite(t *testing.T) {
	l, _ := NewLayout(4096, 32)
	p := l.FormatPage(2)
	base := uint64(2) * uint64(l.PerPage)
	// All keys of page 2 readable with zero values.
	v, err := l.ReadValue(p.Bytes(), base+5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, make([]byte, 32)) {
		t.Fatalf("initial value not zero: %v", v)
	}
	// Write and read back, checking the LSN stamp.
	if err := l.WriteValue(p.Bytes(), base+5, []byte("hello"), 88); err != nil {
		t.Fatal(err)
	}
	if p.LSN() != 88 {
		t.Fatalf("page LSN = %d", p.LSN())
	}
	v, _ = l.ReadValue(p.Bytes(), base+5)
	if !bytes.Equal(v[:5], []byte("hello")) {
		t.Fatalf("read back %q", v)
	}
	// Neighboring keys untouched.
	v, _ = l.ReadValue(p.Bytes(), base+6)
	if !bytes.Equal(v, make([]byte, 32)) {
		t.Fatal("neighbor clobbered")
	}
}

func TestReadValueWrongPage(t *testing.T) {
	l, _ := NewLayout(4096, 32)
	p := l.FormatPage(0)
	// Key from page 3 looked up in page 0's bytes: the key check fires.
	if _, err := l.ReadValue(p.Bytes(), uint64(3*l.PerPage)); err == nil {
		t.Fatal("cross-page read accepted")
	}
}

func TestPropertyWriteReadAnyKey(t *testing.T) {
	l, _ := NewLayout(2048, 24)
	f := func(keyRaw uint64, val []byte) bool {
		key := keyRaw % 100_000
		if len(val) > 24 {
			val = val[:24]
		}
		p := l.FormatPage(l.PageOf(key))
		if err := l.WriteValue(p.Bytes(), key, val, 1); err != nil {
			return false
		}
		got, err := l.ReadValue(p.Bytes(), key)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:len(val)], val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
