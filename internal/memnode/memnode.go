// Package memnode implements the disaggregated memory pool of §3: one or
// more RDMA-attached memory nodes with a registered region, a first-fit
// allocator with an RPC allocation interface (control-plane operations go
// through two-sided RPC; data-plane accesses are one-sided), and a
// multi-node pool abstraction for capacity aggregation.
package memnode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("memnode: out of memory")

// Pool is one memory node: an rdma.Node plus an allocator over its region.
type Pool struct {
	cfg  *sim.Config
	node *rdma.Node

	mu   sync.Mutex
	free []span // sorted by addr, coalesced
	used map[uint64]uint64
}

type span struct{ addr, size uint64 }

// New creates a memory node with the given capacity. Allocation RPC
// handlers ("alloc", "free") are registered so remote compute nodes can
// manage memory with two-sided calls.
func New(cfg *sim.Config, name string, size int) *Pool {
	p := &Pool{
		cfg:  cfg,
		node: rdma.NewNode(cfg, name, size),
		free: []span{{0, uint64(size)}},
		used: make(map[uint64]uint64),
	}
	p.node.Handle("alloc", func(c *sim.Clock, req []byte) []byte {
		var out [16]byte
		if len(req) != 8 {
			binary.LittleEndian.PutUint64(out[8:], 1)
			return out[:]
		}
		addr, err := p.Alloc(binary.LittleEndian.Uint64(req))
		if err != nil {
			binary.LittleEndian.PutUint64(out[8:], 1)
			return out[:]
		}
		binary.LittleEndian.PutUint64(out[:8], addr)
		return out[:]
	})
	p.node.Handle("free", func(c *sim.Clock, req []byte) []byte {
		if len(req) == 8 {
			p.Free(binary.LittleEndian.Uint64(req))
		}
		return nil
	})
	// Coalesced allocation: k sizes in, k (addr, status) pairs out, one
	// RPC round trip for the lot. Per-item failures (fragmentation, OOM)
	// are reported per item, not for the whole batch.
	p.node.Handle("allocn", func(c *sim.Clock, req []byte) []byte {
		k := len(req) / 8
		out := make([]byte, 16*k)
		for i := 0; i < k; i++ {
			addr, err := p.Alloc(binary.LittleEndian.Uint64(req[8*i:]))
			if err != nil {
				binary.LittleEndian.PutUint64(out[16*i+8:], 1)
				continue
			}
			binary.LittleEndian.PutUint64(out[16*i:], addr)
		}
		return out
	})
	return p
}

// Node exposes the underlying RDMA node.
func (p *Pool) Node() *rdma.Node { return p.node }

// Connect returns a queue pair to this node.
func (p *Pool) Connect(stats *rdma.Stats) *rdma.QP {
	return rdma.Connect(p.cfg, p.node, stats)
}

// Alloc reserves size bytes (8-byte aligned) and returns the address.
// This is the node-local operation; remote callers use AllocRemote.
func (p *Pool) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 8
	}
	size = (size + 7) &^ 7
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, s := range p.free {
		if s.size >= size {
			addr := s.addr
			if s.size == size {
				p.free = append(p.free[:i], p.free[i+1:]...)
			} else {
				p.free[i] = span{s.addr + size, s.size - size}
			}
			p.used[addr] = size
			return addr, nil
		}
	}
	return 0, ErrOutOfMemory
}

// Free releases an allocation, coalescing adjacent free spans.
func (p *Pool) Free(addr uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	size, ok := p.used[addr]
	if !ok {
		return
	}
	delete(p.used, addr)
	p.free = append(p.free, span{addr, size})
	sort.Slice(p.free, func(i, j int) bool { return p.free[i].addr < p.free[j].addr })
	out := p.free[:0]
	for _, s := range p.free {
		if n := len(out); n > 0 && out[n-1].addr+out[n-1].size == s.addr {
			out[n-1].size += s.size
		} else {
			out = append(out, s)
		}
	}
	p.free = out
}

// FreeBytes reports unallocated capacity.
func (p *Pool) FreeBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, s := range p.free {
		n += s.size
	}
	return n
}

// UsedBytes reports allocated capacity.
func (p *Pool) UsedBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, s := range p.used {
		n += s
	}
	return n
}

// AllocRemote performs an allocation from a compute node over the fabric
// (control-plane RPC).
func AllocRemote(c *sim.Clock, qp *rdma.QP, size uint64) (uint64, error) {
	op := qp.Config().Begin(c, "memnode.alloc")
	var req [8]byte
	binary.LittleEndian.PutUint64(req[:], size)
	resp, err := qp.Call(c, "alloc", req[:])
	op.End(int64(size))
	if err != nil {
		return 0, err
	}
	if len(resp) != 16 {
		return 0, fmt.Errorf("memnode: bad alloc response (%d bytes)", len(resp))
	}
	if binary.LittleEndian.Uint64(resp[8:]) != 0 {
		return 0, ErrOutOfMemory
	}
	return binary.LittleEndian.Uint64(resp[:8]), nil
}

// FreeRemote releases an allocation over the fabric.
func FreeRemote(c *sim.Clock, qp *rdma.QP, addr uint64) error {
	op := qp.Config().Begin(c, "memnode.free")
	var req [8]byte
	binary.LittleEndian.PutUint64(req[:], addr)
	_, err := qp.Call(c, "free", req[:])
	op.End(0)
	return err
}

type allocResult struct {
	addr uint64
	ok   bool
}

// Coalescer batches control-plane allocation RPCs from many workers into
// shared "allocn" calls: one round trip and one remote dispatch per flush
// instead of per allocation. Data-plane accesses stay one-sided.
type Coalescer struct {
	qp *rdma.QP
	b  *sim.Batcher[uint64, allocResult]
}

// NewCoalescer builds a coalescer over qp. maxItems <= 1 keeps the
// direct one-RPC-per-alloc path (through the same choke point).
func NewCoalescer(qp *rdma.QP, maxItems int, window time.Duration) *Coalescer {
	co := &Coalescer{qp: qp}
	co.b = sim.NewBatcher(qp.Config(), "memnode.allocn",
		sim.BatchPolicy{MaxItems: maxItems, Window: window}, co.flush)
	return co
}

func (co *Coalescer) flush(c *sim.Clock, sizes []uint64, out []allocResult) error {
	op := co.qp.Config().Begin(c, "memnode.alloc")
	req := make([]byte, 8*len(sizes))
	for i, s := range sizes {
		binary.LittleEndian.PutUint64(req[8*i:], s)
	}
	resp, err := co.qp.Call(c, "allocn", req)
	if err != nil {
		op.End(0)
		return err
	}
	if len(resp) != 16*len(sizes) {
		op.End(0)
		return fmt.Errorf("memnode: bad allocn response (%d bytes for %d sizes)", len(resp), len(sizes))
	}
	for i := range out {
		if binary.LittleEndian.Uint64(resp[16*i+8:]) == 0 {
			out[i] = allocResult{addr: binary.LittleEndian.Uint64(resp[16*i:]), ok: true}
		} else {
			out[i] = allocResult{}
		}
	}
	op.End(int64(len(req) + len(resp)))
	return nil
}

// Alloc reserves size bytes through the coalesced RPC path. The caller's
// clock lands at its batch's completion time.
func (co *Coalescer) Alloc(c *sim.Clock, size uint64) (uint64, error) {
	r, err := co.b.Submit(c, size)
	if err != nil {
		return 0, err
	}
	if !r.ok {
		return 0, ErrOutOfMemory
	}
	return r.addr, nil
}

// Stats snapshots the coalescer's flush counters.
func (co *Coalescer) Stats() sim.BatcherStats { return co.b.Stats() }

// Cluster aggregates several memory nodes into one logical pool with
// capacity-based placement (the "near-infinite memory illusion" of §1).
type Cluster struct {
	cfg   *sim.Config
	Pools []*Pool
}

// NewCluster builds n nodes of size bytes each.
func NewCluster(cfg *sim.Config, n, size int) *Cluster {
	cl := &Cluster{cfg: cfg}
	for i := 0; i < n; i++ {
		cl.Pools = append(cl.Pools, New(cfg, fmt.Sprintf("mem-%d", i), size))
	}
	return cl
}

// Alloc places the allocation on the node with the most free capacity.
func (cl *Cluster) Alloc(size uint64) (*Pool, uint64, error) {
	var best *Pool
	var bestFree uint64
	for _, p := range cl.Pools {
		if f := p.FreeBytes(); best == nil || f > bestFree {
			best, bestFree = p, f
		}
	}
	if best == nil {
		return nil, 0, ErrOutOfMemory
	}
	addr, err := best.Alloc(size)
	return best, addr, err
}

// TotalFree reports aggregate free capacity.
func (cl *Cluster) TotalFree() uint64 {
	var n uint64
	for _, p := range cl.Pools {
		n += p.FreeBytes()
	}
	return n
}
