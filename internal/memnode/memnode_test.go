package memnode

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

func TestAllocFreeCoalesce(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "m0", 1024)
	a, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if p.UsedBytes() != 208 { // 100 -> 104 aligned, x2
		t.Fatalf("used = %d", p.UsedBytes())
	}
	p.Free(a)
	p.Free(b)
	if p.FreeBytes() != 1024 {
		t.Fatalf("free = %d after coalescing", p.FreeBytes())
	}
	// After full coalescing one max-size alloc must succeed.
	if _, err := p.Alloc(1024); err != nil {
		t.Fatalf("full-region alloc after coalesce: %v", err)
	}
}

func TestAllocAlignment(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "m0", 256)
	a, _ := p.Alloc(1)
	b, _ := p.Alloc(1)
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("unaligned: %d %d", a, b)
	}
	if b-a < 8 {
		t.Fatal("allocations overlap")
	}
}

func TestAllocExhaustion(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "m0", 64)
	if _, err := p.Alloc(128); err != ErrOutOfMemory {
		t.Fatalf("oversize alloc: %v", err)
	}
	p.Alloc(64)
	if _, err := p.Alloc(8); err != ErrOutOfMemory {
		t.Fatalf("alloc after exhaustion: %v", err)
	}
}

func TestFreeUnknownAddrIsNoop(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "m0", 128)
	p.Free(999)
	if p.FreeBytes() != 128 {
		t.Fatal("bogus free changed accounting")
	}
}

func TestAllocFreeProperty(t *testing.T) {
	cfg := sim.DefaultConfig()
	f := func(sizes []uint16) bool {
		p := New(cfg, "m0", 1<<20)
		var addrs []uint64
		seen := make(map[uint64]bool)
		for _, s := range sizes {
			a, err := p.Alloc(uint64(s))
			if err != nil {
				continue
			}
			if seen[a] {
				return false // double allocation
			}
			seen[a] = true
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			p.Free(a)
		}
		return p.FreeBytes() == 1<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteAllocFree(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "m0", 4096)
	qp := p.Connect(nil)
	c := sim.NewClock()
	addr, err := AllocRemote(c, qp, 256)
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() < cfg.RDMARPC.Base {
		t.Fatal("remote alloc did not charge an RPC")
	}
	// Data-plane: one-sided write/read to the allocation.
	if err := qp.Write(c, addr, []byte("payload!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	qp.Read(c, addr, buf)
	if string(buf) != "payload!" {
		t.Fatalf("read back %q", buf)
	}
	if err := FreeRemote(c, qp, addr); err != nil {
		t.Fatal(err)
	}
	if p.FreeBytes() != 4096 {
		t.Fatalf("free bytes = %d", p.FreeBytes())
	}
	// Exhausted remote alloc surfaces ErrOutOfMemory.
	if _, err := AllocRemote(c, qp, 1<<20); err != ErrOutOfMemory {
		t.Fatalf("oversize remote alloc: %v", err)
	}
}

func TestClusterPlacement(t *testing.T) {
	cfg := sim.DefaultConfig()
	cl := NewCluster(cfg, 3, 1024)
	if cl.TotalFree() != 3072 {
		t.Fatalf("total = %d", cl.TotalFree())
	}
	// Placements should spread by free capacity.
	used := make(map[*Pool]int)
	for i := 0; i < 6; i++ {
		p, _, err := cl.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		used[p]++
	}
	if len(used) != 3 {
		t.Fatalf("allocations landed on %d/3 nodes", len(used))
	}
	if cl.TotalFree() != 0 {
		t.Fatalf("total free = %d", cl.TotalFree())
	}
	if _, _, err := cl.Alloc(8); err != ErrOutOfMemory {
		t.Fatalf("alloc beyond cluster: %v", err)
	}
}

func TestCoalescerAllocatesAndAmortizes(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "mem0", 1<<20)
	co := NewCoalescer(p.Connect(nil), 8, 50*time.Microsecond)

	const workers = 8
	var wg sync.WaitGroup
	addrs := make([]uint64, workers)
	errs := make([]error, workers)
	ends := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sim.NewClock()
			addrs[w], errs[w] = co.Alloc(c, 64)
			ends[w] = c.Now()
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if seen[addrs[w]] {
			t.Fatalf("duplicate address %#x", addrs[w])
		}
		seen[addrs[w]] = true
	}
	s := co.Stats()
	if s.Items != workers {
		t.Fatalf("items = %d, want %d", s.Items, workers)
	}
	if s.Flushes == workers {
		t.Skip("no coalescing happened under this scheduler interleaving")
	}
	if s.Flushes >= workers {
		t.Fatalf("flushes = %d, want < %d (coalescing)", s.Flushes, workers)
	}
}

func TestCoalescerReportsPerItemOOM(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "mem0", 128)
	co := NewCoalescer(p.Connect(nil), 1, 0)
	c := sim.NewClock()
	if _, err := co.Alloc(c, 128); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Alloc(c, 64); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestAllocNHandlerMixedOutcomes(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := New(cfg, "mem0", 256)
	qp := p.Connect(nil)
	c := sim.NewClock()
	req := make([]byte, 16)
	binary.LittleEndian.PutUint64(req[:8], 192)
	binary.LittleEndian.PutUint64(req[8:], 128) // cannot fit after the first
	resp, err := qp.Call(c, "allocn", req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 32 {
		t.Fatalf("resp = %d bytes", len(resp))
	}
	if binary.LittleEndian.Uint64(resp[8:16]) != 0 {
		t.Fatal("first alloc should succeed")
	}
	if binary.LittleEndian.Uint64(resp[24:32]) == 0 {
		t.Fatal("second alloc should fail per-item")
	}
}
