package metrics

import (
	"math/bits"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistCountMeanMax(t *testing.T) {
	h := NewHist()
	h.Record(1 * time.Microsecond)
	h.Record(3 * time.Microsecond)
	h.Record(2 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 3*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistQuantileUpperBound(t *testing.T) {
	h := NewHist()
	for i := 0; i < 99; i++ {
		h.Record(time.Microsecond)
	}
	h.Record(time.Second)
	p50 := h.Quantile(0.5)
	if p50 < time.Microsecond || p50 > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1-2µs bucket edge", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < time.Second/2 {
		t.Fatalf("p99.9 = %v, should reflect the 1s outlier", p999)
	}
}

func TestHistQuantileEmptyAndClamped(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Record(time.Millisecond)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("clamped quantiles should see the observation")
	}
}

func TestHistQuantileTopBucketNoOverflow(t *testing.T) {
	// Regression: observations in the top buckets used to compute the
	// bucket upper edge as 1<<63 / 1<<64, overflowing int64 and reporting
	// a nonsensical (zero or negative) quantile for multi-year durations.
	h := NewHist()
	d := time.Duration(int64(1) << 62)
	h.Record(d)
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != d {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, d)
		}
	}
	h.Record(time.Microsecond)
	if got := h.Quantile(0.99); got != d {
		t.Fatalf("Quantile(0.99) with outlier = %v, want %v", got, d)
	}
}

func TestHistQuantileClampedToObservedMax(t *testing.T) {
	// A bucket's upper edge can overshoot everything actually observed;
	// the reported bound must clamp to Max().
	h := NewHist()
	h.Record(5 * time.Microsecond) // bucket edge would be 8.192µs
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 5*time.Microsecond {
			t.Fatalf("Quantile(%v) = %v, want the observed max 5µs", q, got)
		}
	}
}

func TestHistNegativeRecord(t *testing.T) {
	h := NewHist()
	h.Record(-time.Second)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative record mishandled: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Duration(j) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestLeadingZerosMatchesBits(t *testing.T) {
	f := func(x uint64) bool {
		return leadingZeros(x) == bits.LeadingZeros64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if leadingZeros(0) != 64 {
		t.Fatal("leadingZeros(0) != 64")
	}
}

func TestQuantileBoundsObservation(t *testing.T) {
	// Property: for a single observation d, any quantile's upper bound is
	// >= d and <= 2d (bucket edge).
	f := func(v uint32) bool {
		d := time.Duration(v) + 1
		h := NewHist()
		h.Record(d)
		q := h.Quantile(0.5)
		return q >= d && q <= 2*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if c.Load() != 3 {
		t.Fatalf("counter = %d", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "engine", "tput", "p99")
	tb.Row("aurora", 1234.0, 250*time.Microsecond)
	tb.Row("mono", 9.5, 2*time.Second)
	s := tb.String()
	for _, want := range []string{"T1: demo", "engine", "aurora", "1.2k", "250.00µs", "2.00s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.50µs",
		2500 * time.Microsecond: "2.50ms",
		3 * time.Second:         "3.00s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.00KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3}
	s := Summarize(ds)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	// Input must not be mutated.
	if ds[0] != 5 {
		t.Fatal("Summarize mutated its input")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("nil input should give zero summary")
	}
}

func TestSummarizeQuantileRanks(t *testing.T) {
	// Regression: truncating the fractional rank made P50 of two samples
	// return the minimum and P99 of 100 samples return the 98th-ranked
	// value, hiding the tail. Ceiling nearest-rank pins these.
	seq := func(n int) []time.Duration {
		ds := make([]time.Duration, n)
		for i := range ds {
			ds[i] = time.Duration(i + 1)
		}
		return ds
	}
	cases := []struct {
		name     string
		in       []time.Duration
		p50, p99 time.Duration
	}{
		{"n=1", seq(1), 1, 1},
		{"n=2", seq(2), 2, 2}, // trunc gave P50 = 1 (the min)
		{"n=3", seq(3), 2, 3},
		{"n=100", seq(100), 51, 100}, // trunc gave P99 = 99 (98th-ranked)
	}
	for _, tc := range cases {
		s := Summarize(tc.in)
		if s.P50 != tc.p50 || s.P99 != tc.p99 {
			t.Errorf("%s: P50=%v P99=%v, want P50=%v P99=%v",
				tc.name, s.P50, s.P99, tc.p50, tc.p99)
		}
	}
}
