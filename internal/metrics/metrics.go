// Package metrics provides the small measurement toolkit used by the
// experiment harness: log-bucketed latency histograms, atomic counters, and
// plain-text table rendering for paper-style result output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Hist is a log2-bucketed latency histogram. It is safe for concurrent
// recording; quantile reads take a snapshot.
type Hist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

func bucketOf(d time.Duration) int {
	n := int64(d)
	if n <= 0 {
		return 0
	}
	return 63 - int(leadingZeros(uint64(n)))
}

func leadingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	if x <= 0x00000000FFFFFFFF {
		n += 32
		x <<= 32
	}
	if x <= 0x0000FFFFFFFFFFFF {
		n += 16
		x <<= 16
	}
	if x <= 0x00FFFFFFFFFFFFFF {
		n += 8
		x <<= 8
	}
	if x <= 0x0FFFFFFFFFFFFFFF {
		n += 4
		x <<= 4
	}
	if x <= 0x3FFFFFFFFFFFFFFF {
		n += 2
		x <<= 2
	}
	if x <= 0x7FFFFFFFFFFFFFFF {
		n++
	}
	return n
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Merge folds all of o's observations into h. o may be nil or empty. Like
// Quantile, Merge reads o bucket-by-bucket without a global snapshot, so
// merging a histogram that is being recorded into concurrently yields some
// consistent interleaving, not a point-in-time copy.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean reports the mean observation.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max reports the largest observation.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile reports an upper bound for quantile q in [0,1] using bucket
// upper edges (log2 resolution, adequate for order-of-magnitude tables).
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			// Clamp the bucket's upper edge to the observed maximum:
			// besides tightening the bound, this avoids the shift
			// overflowing for the top buckets (1<<63, 1<<64).
			max := h.max.Load()
			if i >= 62 {
				return time.Duration(max)
			}
			edge := int64(1) << uint(i+1)
			if edge > max {
				return time.Duration(max)
			}
			return time.Duration(edge)
		}
	}
	return h.Max()
}

// Counter is an atomic int64 with a name-friendly API.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Table renders aligned plain-text tables in the style of the tables the
// experiments print (one header row, any number of data rows).
type Table struct {
	Title  string
	Header []string
	rows   [][]string
	mu     sync.Mutex
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Row appends a data row; values are formatted with %v, durations and
// floats get compact human formatting.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.mu.Lock()
	t.rows = append(t.rows, row)
	t.mu.Unlock()
}

func formatCell(c any) string {
	switch v := c.(type) {
	case time.Duration:
		return FormatDuration(v)
	case float64:
		return formatFloat(v)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatDuration renders a duration with three significant digits and an
// appropriate unit, keeping tables narrow.
func FormatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// String renders the table.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b []byte
	if t.Title != "" {
		b = append(b, t.Title...)
		b = append(b, '\n')
	}
	appendRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b = append(b, ' ', ' ')
			}
			b = append(b, c...)
			if i < len(cells)-1 {
				for p := utf8.RuneCountInString(c); p < widths[i]; p++ {
					b = append(b, ' ')
				}
			}
		}
		b = append(b, '\n')
	}
	appendRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = repeat('-', widths[i])
	}
	appendRow(sep)
	for _, r := range t.rows {
		appendRow(r)
	}
	return string(b)
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}

// Summary computes basic order statistics over a slice of durations,
// convenient for one-shot experiment reporting.
type Summary struct {
	N              int
	Mean, P50, P99 time.Duration
	Min, Max       time.Duration
}

// Summarize computes a Summary (sorting a copy of the input).
func Summarize(ds []time.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	cp := make([]time.Duration, len(ds))
	copy(cp, ds)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	var sum time.Duration
	for _, d := range cp {
		sum += d
	}
	// Nearest-rank with ceiling: truncation would make P99 of 100
	// samples miss the tail (index 98) and P50 of 2 samples return the
	// minimum. Rounding the fractional index up keeps small-N quantiles
	// an upper bound.
	idx := func(q float64) time.Duration {
		i := int(math.Ceil(q * float64(len(cp)-1)))
		if i < 0 {
			i = 0
		}
		if i > len(cp)-1 {
			i = len(cp) - 1
		}
		return cp[i]
	}
	return Summary{
		N:    len(cp),
		Mean: sum / time.Duration(len(cp)),
		P50:  idx(0.50),
		P99:  idx(0.99),
		Min:  cp[0],
		Max:  cp[len(cp)-1],
	}
}
