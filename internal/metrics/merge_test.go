package metrics

import (
	"testing"
	"time"
)

func TestHistMergeEmptyIntoEmpty(t *testing.T) {
	h := NewHist()
	h.Merge(NewHist())
	h.Merge(nil)
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("merging empties changed state: count %d max %v", h.Count(), h.Max())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty merged hist quantile = %v, want 0", q)
	}
}

func TestHistMergeIntoEmpty(t *testing.T) {
	o := NewHist()
	o.Record(3 * time.Microsecond)
	h := NewHist()
	h.Merge(o)
	if h.Count() != 1 || h.Max() != 3*time.Microsecond || h.Mean() != 3*time.Microsecond {
		t.Fatalf("count %d max %v mean %v", h.Count(), h.Max(), h.Mean())
	}
	// Single sample: every quantile bounds it and clamps to the max.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3*time.Microsecond {
			t.Fatalf("Quantile(%v) = %v, want the single sample", q, got)
		}
	}
	// The source is unchanged.
	if o.Count() != 1 {
		t.Fatalf("merge mutated the source")
	}
}

func TestHistMergeDisjointRanges(t *testing.T) {
	lo := NewHist()
	for i := 0; i < 90; i++ {
		lo.Record(time.Microsecond)
	}
	hi := NewHist()
	for i := 0; i < 10; i++ {
		hi.Record(time.Millisecond)
	}
	m := NewHist()
	m.Merge(lo)
	m.Merge(hi)
	if m.Count() != 100 {
		t.Fatalf("count %d, want 100", m.Count())
	}
	if m.Max() != time.Millisecond {
		t.Fatalf("max %v, want 1ms", m.Max())
	}
	wantMean := (90*time.Microsecond + 10*time.Millisecond) / 100
	if m.Mean() != wantMean {
		t.Fatalf("mean %v, want %v", m.Mean(), wantMean)
	}
	// p50 lands in the low range, p99 in the high range.
	if q := m.Quantile(0.5); q < time.Microsecond || q >= time.Millisecond {
		t.Fatalf("p50 = %v, want in the low range", q)
	}
	if q := m.Quantile(0.99); q < time.Millisecond {
		t.Fatalf("p99 = %v, want >= 1ms", q)
	}
}

func TestHistMergeKeepsLargerMax(t *testing.T) {
	h := NewHist()
	h.Record(10 * time.Millisecond)
	o := NewHist()
	o.Record(time.Microsecond)
	h.Merge(o)
	if h.Max() != 10*time.Millisecond {
		t.Fatalf("merge of a smaller max clobbered %v", h.Max())
	}
	o.Merge(h)
	if o.Max() != 10*time.Millisecond {
		t.Fatalf("merge did not raise max: %v", o.Max())
	}
}

func TestHistMergeSelfDoubles(t *testing.T) {
	// Degenerate but well-defined: self-merge doubles every counter.
	h := NewHist()
	h.Record(2 * time.Microsecond)
	h.Merge(h)
	if h.Count() != 2 || h.Mean() != 2*time.Microsecond {
		t.Fatalf("self-merge: count %d mean %v", h.Count(), h.Mean())
	}
}
