// Package query is the vectorized relational mini-engine used by the OLAP
// experiments: columnar tables with block-level zone maps (min-max
// pruning, §2.2), column sources backed by local DRAM, disaggregated
// memory, CXL, or object storage, and pull-based vectorized operators
// (scan, filter, project, hash join with spilling, hash aggregation).
package query

import (
	"errors"
	"fmt"
)

// BlockRows is the number of rows per storage block (micro-partition
// granule for zone maps and I/O).
const BlockRows = 4096

// Schema names the columns of a table. All values are int64 (dates,
// cents-scaled decimals and dictionary-coded strings all fit).
type Schema struct {
	Cols []string
}

// ColIndex resolves a column name.
func (s Schema) ColIndex(name string) (int, error) {
	for i, c := range s.Cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("query: no column %q", name)
}

// Table is an in-memory columnar table: the ground-truth data from which
// column sources are built.
type Table struct {
	Schema Schema
	Cols   [][]int64
}

// NewTable creates an empty table with the given columns.
func NewTable(cols ...string) *Table {
	t := &Table{Schema: Schema{Cols: cols}}
	t.Cols = make([][]int64, len(cols))
	return t
}

// AppendRow adds one row.
func (t *Table) AppendRow(vals ...int64) error {
	if len(vals) != len(t.Cols) {
		return errors.New("query: row arity mismatch")
	}
	for i, v := range vals {
		t.Cols[i] = append(t.Cols[i], v)
	}
	return nil
}

// NumRows reports the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.Cols[0])
}

// NumBlocks reports the number of BlockRows-sized blocks.
func (t *Table) NumBlocks() int {
	return (t.NumRows() + BlockRows - 1) / BlockRows
}

// ZoneMap holds per-block min/max for one column (Snowflake's small
// materialized aggregates / min-max index).
type ZoneMap struct {
	Min []int64
	Max []int64
}

// BuildZoneMap computes the zone map of column col.
func (t *Table) BuildZoneMap(col int) ZoneMap {
	var zm ZoneMap
	rows := t.NumRows()
	for b := 0; b*BlockRows < rows; b++ {
		lo := b * BlockRows
		hi := lo + BlockRows
		if hi > rows {
			hi = rows
		}
		mn, mx := t.Cols[col][lo], t.Cols[col][lo]
		for _, v := range t.Cols[col][lo:hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		zm.Min = append(zm.Min, mn)
		zm.Max = append(zm.Max, mx)
	}
	return zm
}

// Batch is a vectorized slice of rows in column-major form. Cols is
// indexed by the operator's output schema.
type Batch struct {
	Cols [][]int64
}

// Len reports rows in the batch.
func (b *Batch) Len() int {
	if b == nil || len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// Predicate is a block-prunable range predicate on one column:
// Lo <= value < Hi.
type Predicate struct {
	Col string
	Lo  int64
	Hi  int64
}

// Matches reports whether v satisfies the predicate.
func (p Predicate) Matches(v int64) bool { return v >= p.Lo && v < p.Hi }

// PrunesBlock reports whether the zone map entry for a block proves that
// no row can match.
func (p Predicate) PrunesBlock(mn, mx int64) bool { return mx < p.Lo || mn >= p.Hi }
