package query

import (
	"container/list"

	"github.com/disagglab/disagg/internal/sim"
)

// CachedSource wraps any Source with a compute-local block cache (e.g. the
// SSD/ephemeral-disk file cache of a Snowflake virtual warehouse, or a
// compute-node DRAM cache over remote memory). Cached blocks cost a DRAM
// touch; misses go to the inner source.
type CachedSource struct {
	cfg   *sim.Config
	inner Source
	cap   int

	lru   *list.List // of cacheKey, front = hottest
	index map[cacheKey]*cacheEntry
	hits  int64
	miss  int64
}

type cacheKey struct{ col, block int }

type cacheEntry struct {
	vals []int64
	elem *list.Element
}

// NewCachedSource wraps inner with a cache of capBlocks column-blocks.
func NewCachedSource(cfg *sim.Config, inner Source, capBlocks int) *CachedSource {
	return &CachedSource{cfg: cfg, inner: inner, cap: capBlocks, lru: list.New(), index: make(map[cacheKey]*cacheEntry)}
}

// Schema implements Source.
func (s *CachedSource) Schema() Schema { return s.inner.Schema() }

// NumRows implements Source.
func (s *CachedSource) NumRows() int { return s.inner.NumRows() }

// Zones implements Source.
func (s *CachedSource) Zones(col int) *ZoneMap { return s.inner.Zones(col) }

// HitRatio reports the cache hit ratio.
func (s *CachedSource) HitRatio() float64 {
	if s.hits+s.miss == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.hits+s.miss)
}

// ReadBlock implements Source.
func (s *CachedSource) ReadBlock(c *sim.Clock, block int, cols []int) ([][]int64, error) {
	out := make([][]int64, len(cols))
	var missing []int
	var missingIdx []int
	for i, col := range cols {
		k := cacheKey{col, block}
		if e, ok := s.index[k]; ok {
			s.hits++
			s.lru.MoveToFront(e.elem)
			c.Advance(s.cfg.DRAM.Cost(len(e.vals) * 8))
			out[i] = e.vals
			continue
		}
		s.miss++
		missing = append(missing, col)
		missingIdx = append(missingIdx, i)
	}
	if len(missing) > 0 {
		data, err := s.inner.ReadBlock(c, block, missing)
		if err != nil {
			return nil, err
		}
		for j, col := range missing {
			out[missingIdx[j]] = data[j]
			if s.cap > 0 {
				for s.lru.Len() >= s.cap {
					back := s.lru.Back()
					delete(s.index, back.Value.(cacheKey))
					s.lru.Remove(back)
				}
				k := cacheKey{col, block}
				e := &cacheEntry{vals: data[j]}
				e.elem = s.lru.PushFront(k)
				s.index[k] = e
			}
		}
	}
	return out, nil
}
