package query

import (
	"fmt"

	"github.com/disagglab/disagg/internal/sim"
)

// Operator is a pull-based vectorized operator. Next returns nil at end of
// stream. Operators are single-use and not safe for concurrent use.
type Operator interface {
	Schema() Schema
	Next(c *sim.Clock) (*Batch, error)
}

// Scan reads a source block by block, applying range predicates with
// optional zone-map pruning and projecting the requested columns.
type Scan struct {
	cfg     *sim.Config
	src     Source
	cols    []string
	colIdx  []int
	preds   []Predicate
	predIdx []int
	prune   bool

	block         int
	BlocksRead    int
	BlocksSkipped int
}

// NewScan builds a scan of cols with the given predicates. prune enables
// min-max block skipping.
func NewScan(cfg *sim.Config, src Source, cols []string, preds []Predicate, prune bool) (*Scan, error) {
	s := &Scan{cfg: cfg, src: src, cols: cols, preds: preds, prune: prune}
	for _, c := range cols {
		i, err := src.Schema().ColIndex(c)
		if err != nil {
			return nil, err
		}
		s.colIdx = append(s.colIdx, i)
	}
	for _, p := range preds {
		i, err := src.Schema().ColIndex(p.Col)
		if err != nil {
			return nil, err
		}
		s.predIdx = append(s.predIdx, i)
	}
	return s, nil
}

// Schema implements Operator.
func (s *Scan) Schema() Schema { return Schema{Cols: s.cols} }

// Next implements Operator.
func (s *Scan) Next(c *sim.Clock) (*Batch, error) {
	nBlocks := (s.src.NumRows() + BlockRows - 1) / BlockRows
	for s.block < nBlocks {
		b := s.block
		s.block++
		if s.prune && s.pruned(b) {
			s.BlocksSkipped++
			continue
		}
		s.BlocksRead++
		// Fetch predicate columns and projected columns (dedup).
		need := make([]int, 0, len(s.colIdx)+len(s.predIdx))
		seen := make(map[int]int)
		for _, ci := range append(append([]int{}, s.colIdx...), s.predIdx...) {
			if _, ok := seen[ci]; !ok {
				seen[ci] = len(need)
				need = append(need, ci)
			}
		}
		data, err := s.src.ReadBlock(c, b, need)
		if err != nil {
			return nil, err
		}
		rows := len(data[0])
		c.Advance(s.cfg.CPU.Cost(rows * 8 * len(need)))
		// Filter.
		var sel []int
		if len(s.preds) == 0 {
			sel = nil // all rows
		} else {
			sel = make([]int, 0, rows)
			for r := 0; r < rows; r++ {
				ok := true
				for pi, p := range s.preds {
					if !p.Matches(data[seen[s.predIdx[pi]]][r]) {
						ok = false
						break
					}
				}
				if ok {
					sel = append(sel, r)
				}
			}
			if len(sel) == 0 {
				continue
			}
		}
		out := &Batch{Cols: make([][]int64, len(s.colIdx))}
		for i, ci := range s.colIdx {
			src := data[seen[ci]]
			if sel == nil {
				vals := make([]int64, rows)
				copy(vals, src)
				out.Cols[i] = vals
			} else {
				vals := make([]int64, len(sel))
				for j, r := range sel {
					vals[j] = src[r]
				}
				out.Cols[i] = vals
			}
		}
		return out, nil
	}
	return nil, nil
}

func (s *Scan) pruned(b int) bool {
	for pi, p := range s.preds {
		zm := s.src.Zones(s.predIdx[pi])
		if zm == nil || b >= len(zm.Min) {
			continue
		}
		if p.PrunesBlock(zm.Min[b], zm.Max[b]) {
			return true
		}
	}
	return false
}

// Project reorders/subsets columns of its input.
type Project struct {
	in   Operator
	cols []string
	idx  []int
}

// NewProject builds a projection.
func NewProject(in Operator, cols ...string) (*Project, error) {
	p := &Project{in: in, cols: cols}
	for _, c := range cols {
		i, err := in.Schema().ColIndex(c)
		if err != nil {
			return nil, err
		}
		p.idx = append(p.idx, i)
	}
	return p, nil
}

// Schema implements Operator.
func (p *Project) Schema() Schema { return Schema{Cols: p.cols} }

// Next implements Operator.
func (p *Project) Next(c *sim.Clock) (*Batch, error) {
	b, err := p.in.Next(c)
	if err != nil || b == nil {
		return nil, err
	}
	out := &Batch{Cols: make([][]int64, len(p.idx))}
	for i, ci := range p.idx {
		out.Cols[i] = b.Cols[ci]
	}
	return out, nil
}

// Filter applies a predicate to an operator's output (post-scan residual
// filtering).
type Filter struct {
	cfg  *sim.Config
	in   Operator
	pred Predicate
	idx  int
}

// NewFilter builds a filter.
func NewFilter(cfg *sim.Config, in Operator, pred Predicate) (*Filter, error) {
	i, err := in.Schema().ColIndex(pred.Col)
	if err != nil {
		return nil, err
	}
	return &Filter{cfg: cfg, in: in, pred: pred, idx: i}, nil
}

// Schema implements Operator.
func (f *Filter) Schema() Schema { return f.in.Schema() }

// Next implements Operator.
func (f *Filter) Next(c *sim.Clock) (*Batch, error) {
	for {
		b, err := f.in.Next(c)
		if err != nil || b == nil {
			return nil, err
		}
		c.Advance(f.cfg.CPU.Cost(b.Len() * 8))
		var sel []int
		for r := 0; r < b.Len(); r++ {
			if f.pred.Matches(b.Cols[f.idx][r]) {
				sel = append(sel, r)
			}
		}
		if len(sel) == 0 {
			continue
		}
		out := &Batch{Cols: make([][]int64, len(b.Cols))}
		for i := range b.Cols {
			vals := make([]int64, len(sel))
			for j, r := range sel {
				vals[j] = b.Cols[i][r]
			}
			out.Cols[i] = vals
		}
		return out, nil
	}
}

// AggSpec is one aggregate: SUM(col) or COUNT(*) (Col == "").
type AggSpec struct {
	Col string
}

// HashAgg groups by one column and computes sums/counts.
type HashAgg struct {
	cfg      *sim.Config
	in       Operator
	groupCol string
	aggs     []AggSpec

	done bool
}

// NewHashAgg builds an aggregation. groupCol == "" means a single global
// group.
func NewHashAgg(cfg *sim.Config, in Operator, groupCol string, aggs ...AggSpec) *HashAgg {
	return &HashAgg{cfg: cfg, in: in, groupCol: groupCol, aggs: aggs}
}

// Schema implements Operator: [group] agg0 agg1 ...
func (h *HashAgg) Schema() Schema {
	cols := []string{}
	if h.groupCol != "" {
		cols = append(cols, h.groupCol)
	}
	for i, a := range h.aggs {
		if a.Col == "" {
			cols = append(cols, fmt.Sprintf("count_%d", i))
		} else {
			cols = append(cols, "sum_"+a.Col)
		}
	}
	return Schema{Cols: cols}
}

// Next implements Operator (drains the input on first call).
func (h *HashAgg) Next(c *sim.Clock) (*Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	inSchema := h.in.Schema()
	gIdx := -1
	if h.groupCol != "" {
		i, err := inSchema.ColIndex(h.groupCol)
		if err != nil {
			return nil, err
		}
		gIdx = i
	}
	aggIdx := make([]int, len(h.aggs))
	for i, a := range h.aggs {
		if a.Col == "" {
			aggIdx[i] = -1
			continue
		}
		j, err := inSchema.ColIndex(a.Col)
		if err != nil {
			return nil, err
		}
		aggIdx[i] = j
	}
	groups := make(map[int64][]int64)
	var order []int64
	for {
		b, err := h.in.Next(c)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		c.Advance(h.cfg.CPU.Cost(b.Len() * 8 * (len(h.aggs) + 1)))
		for r := 0; r < b.Len(); r++ {
			g := int64(0)
			if gIdx >= 0 {
				g = b.Cols[gIdx][r]
			}
			acc, ok := groups[g]
			if !ok {
				acc = make([]int64, len(h.aggs))
				groups[g] = acc
				order = append(order, g)
			}
			for i, ai := range aggIdx {
				if ai < 0 {
					acc[i]++
				} else {
					acc[i] += b.Cols[ai][r]
				}
			}
		}
	}
	nCols := len(h.aggs)
	if gIdx >= 0 {
		nCols++
	}
	out := &Batch{Cols: make([][]int64, nCols)}
	for _, g := range order {
		ci := 0
		if gIdx >= 0 {
			out.Cols[0] = append(out.Cols[0], g)
			ci = 1
		}
		for i := range h.aggs {
			out.Cols[ci+i] = append(out.Cols[ci+i], groups[g][i])
		}
	}
	if out.Len() == 0 && gIdx < 0 {
		// Global aggregate over empty input: one zero row.
		for i := range out.Cols {
			out.Cols[i] = []int64{0}
		}
	}
	return out, nil
}

// Collect drains an operator into one batch (test/driver helper).
func Collect(c *sim.Clock, op Operator) (*Batch, error) {
	var out *Batch
	for {
		b, err := op.Next(c)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if out == nil {
			out = &Batch{Cols: make([][]int64, len(b.Cols))}
		}
		for i := range b.Cols {
			out.Cols[i] = append(out.Cols[i], b.Cols[i]...)
		}
	}
	if out == nil {
		out = &Batch{}
	}
	return out, nil
}
