package query

import (
	"github.com/disagglab/disagg/internal/sim"
)

// SpillTarget selects where a memory-constrained operator spills state
// that exceeds its budget — the E12 experimental variable: a disaggregated
// memory pool turns disk spills into (much cheaper) remote-memory spills.
type SpillTarget int

// Spill targets.
const (
	SpillNone   SpillTarget = iota // assume unlimited local memory
	SpillSSD                       // grace-hash partitions on local SSD
	SpillRemote                    // partitions in the remote memory pool
)

func (t SpillTarget) String() string {
	switch t {
	case SpillSSD:
		return "ssd"
	case SpillRemote:
		return "remote-mem"
	default:
		return "none"
	}
}

// MemoryBudget bounds operator state for a query and accounts spill
// traffic costs. The join keeps results exact regardless of budget; only
// the charged I/O differs (grace-hash re-partitioning is modeled as write
// + read of the spilled fraction on the spill medium).
type MemoryBudget struct {
	cfg *sim.Config
	// Bytes of operator state allowed in local memory (0 = unlimited).
	Bytes int
	// Target is where overflow goes.
	Target SpillTarget
	// SpilledBytes accumulates total bytes spilled (metrics).
	SpilledBytes int64
}

// NewMemoryBudget builds a budget.
func NewMemoryBudget(cfg *sim.Config, bytes int, target SpillTarget) *MemoryBudget {
	return &MemoryBudget{cfg: cfg, Bytes: bytes, Target: target}
}

// chargeSpillWrite charges writing n bytes of overflow to the medium.
func (m *MemoryBudget) chargeSpillWrite(c *sim.Clock, n int) {
	if n <= 0 {
		return
	}
	m.SpilledBytes += int64(n)
	switch m.Target {
	case SpillSSD:
		c.Advance(m.cfg.SSDWrite.Cost(n))
	case SpillRemote:
		c.Advance(m.cfg.RDMA.Cost(n))
	}
}

// chargeSpillRead charges reading n bytes back.
func (m *MemoryBudget) chargeSpillRead(c *sim.Clock, n int) {
	if n <= 0 {
		return
	}
	switch m.Target {
	case SpillSSD:
		c.Advance(m.cfg.SSDRead.Cost(n))
	case SpillRemote:
		c.Advance(m.cfg.RDMA.Cost(n))
	}
}

// HashJoin is an equi-join: build side is drained into a hash table on
// first Next, then probe batches stream through. When the build side
// exceeds the memory budget the overflow is spilled grace-hash style: the
// spilled fraction of both inputs is written to and re-read from the spill
// medium.
type HashJoin struct {
	cfg      *sim.Config
	build    Operator
	probe    Operator
	buildCol string
	probeCol string
	budget   *MemoryBudget

	built      bool
	table      map[int64][][]int64 // key -> build rows (column values)
	buildWidth int
	spillFrac  float64
}

// NewHashJoin constructs the join. budget may be nil (unlimited).
func NewHashJoin(cfg *sim.Config, build, probe Operator, buildCol, probeCol string, budget *MemoryBudget) *HashJoin {
	if budget == nil {
		budget = NewMemoryBudget(cfg, 0, SpillNone)
	}
	return &HashJoin{cfg: cfg, build: build, probe: probe, buildCol: buildCol, probeCol: probeCol, budget: budget}
}

// Schema implements Operator: probe columns followed by build columns.
func (j *HashJoin) Schema() Schema {
	cols := append([]string{}, j.probe.Schema().Cols...)
	for _, c := range j.build.Schema().Cols {
		cols = append(cols, "b_"+c)
	}
	return Schema{Cols: cols}
}

func (j *HashJoin) runBuild(c *sim.Clock) error {
	bIdx, err := j.build.Schema().ColIndex(j.buildCol)
	if err != nil {
		return err
	}
	j.table = make(map[int64][][]int64)
	j.buildWidth = len(j.build.Schema().Cols)
	bytesHeld := 0
	spilled := 0
	for {
		b, err := j.build.Next(c)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		rowBytes := j.buildWidth * 8
		c.Advance(j.cfg.CPU.Cost(b.Len() * rowBytes))
		for r := 0; r < b.Len(); r++ {
			key := b.Cols[bIdx][r]
			row := make([]int64, j.buildWidth)
			for i := range b.Cols {
				row[i] = b.Cols[i][r]
			}
			j.table[key] = append(j.table[key], row)
			if j.budget.Bytes > 0 && bytesHeld+rowBytes > j.budget.Bytes && j.budget.Target != SpillNone {
				spilled += rowBytes
			} else {
				bytesHeld += rowBytes
			}
		}
		// Overflow written out as it accrues.
		if spilled > 0 {
			j.budget.chargeSpillWrite(c, spilled)
			spilled = 0
		}
	}
	total := bytesHeld + int(j.budget.SpilledBytes)
	if total > 0 {
		j.spillFrac = float64(j.budget.SpilledBytes) / float64(total)
	}
	// Grace hash re-reads the spilled build partitions once during probe.
	j.budget.chargeSpillRead(c, int(j.budget.SpilledBytes))
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next(c *sim.Clock) (*Batch, error) {
	if !j.built {
		if err := j.runBuild(c); err != nil {
			return nil, err
		}
		j.built = true
	}
	pIdx, err := j.probe.Schema().ColIndex(j.probeCol)
	if err != nil {
		return nil, err
	}
	for {
		b, err := j.probe.Next(c)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		probeBytes := b.Len() * len(b.Cols) * 8
		c.Advance(j.cfg.CPU.Cost(probeBytes))
		// The spilled fraction of probe tuples must round-trip the
		// spill medium (partitioned to match spilled build partitions).
		if j.spillFrac > 0 {
			n := int(float64(probeBytes) * j.spillFrac)
			j.budget.chargeSpillWrite(c, n)
			j.budget.chargeSpillRead(c, n)
		}
		out := &Batch{Cols: make([][]int64, len(b.Cols)+j.buildWidth)}
		matched := 0
		for r := 0; r < b.Len(); r++ {
			rows, ok := j.table[b.Cols[pIdx][r]]
			if !ok {
				continue
			}
			for _, row := range rows {
				for i := range b.Cols {
					out.Cols[i] = append(out.Cols[i], b.Cols[i][r])
				}
				for i, v := range row {
					out.Cols[len(b.Cols)+i] = append(out.Cols[len(b.Cols)+i], v)
				}
				matched++
			}
		}
		if matched > 0 {
			return out, nil
		}
	}
}
