package query

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/disagglab/disagg/internal/sim"
)

func topkInput(cfg *sim.Config, vals []int64) Operator {
	t := NewTable("id", "score")
	for i, v := range vals {
		t.AppendRow(int64(i), v)
	}
	s, _ := NewScan(cfg, NewLocalSource(cfg, t), []string{"id", "score"}, nil, false)
	return s
}

func TestTopKLargest(t *testing.T) {
	cfg := sim.DefaultConfig()
	vals := []int64{5, 1, 9, 3, 7, 2, 8}
	op := NewTopK(cfg, topkInput(cfg, vals), "score", 3, false)
	out, err := Collect(sim.NewClock(), op)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d", out.Len())
	}
	got := out.Cols[1]
	want := []int64{9, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("top3 = %v, want %v", got, want)
		}
	}
}

func TestTopKSmallestAscending(t *testing.T) {
	cfg := sim.DefaultConfig()
	op := NewTopK(cfg, topkInput(cfg, []int64{5, 1, 9, 3, 7}), "score", 2, true)
	out, _ := Collect(sim.NewClock(), op)
	if out.Cols[1][0] != 1 || out.Cols[1][1] != 3 {
		t.Fatalf("bottom2 = %v", out.Cols[1])
	}
}

func TestTopKFewerRowsThanK(t *testing.T) {
	cfg := sim.DefaultConfig()
	op := NewTopK(cfg, topkInput(cfg, []int64{4, 2}), "score", 10, false)
	out, _ := Collect(sim.NewClock(), op)
	if out.Len() != 2 || out.Cols[1][0] != 4 {
		t.Fatalf("out = %+v", out)
	}
}

func TestTopKUnknownColumn(t *testing.T) {
	cfg := sim.DefaultConfig()
	op := NewTopK(cfg, topkInput(cfg, []int64{1}), "nope", 1, false)
	if _, err := Collect(sim.NewClock(), op); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestTopKRowsStayAligned(t *testing.T) {
	// The id column must travel with its score.
	cfg := sim.DefaultConfig()
	vals := []int64{50, 10, 90, 30}
	op := NewTopK(cfg, topkInput(cfg, vals), "score", 2, false)
	out, _ := Collect(sim.NewClock(), op)
	if out.Cols[0][0] != 2 || out.Cols[1][0] != 90 {
		t.Fatalf("row alignment broken: ids %v scores %v", out.Cols[0], out.Cols[1])
	}
	if out.Cols[0][1] != 0 || out.Cols[1][1] != 50 {
		t.Fatalf("second row wrong: ids %v scores %v", out.Cols[0], out.Cols[1])
	}
}

func TestTopKMatchesSortProperty(t *testing.T) {
	cfg := sim.DefaultConfig()
	f := func(raw []int16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		k := int(kRaw)%len(vals) + 1
		op := NewTopK(cfg, topkInput(cfg, vals), "score", k, false)
		out, err := Collect(sim.NewClock(), op)
		if err != nil {
			return false
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		if out.Len() != k {
			return false
		}
		for i := 0; i < k; i++ {
			if out.Cols[1][i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
