package query

import (
	"container/heap"

	"github.com/disagglab/disagg/internal/sim"
)

// TopK keeps the K rows with the largest (or smallest) values of one
// column — the ORDER BY ... LIMIT K tail of plans like TPC-H Q3. It drains
// its input on first Next and emits a single sorted batch.
type TopK struct {
	cfg       *sim.Config
	in        Operator
	col       string
	k         int
	ascending bool

	done bool
}

// NewTopK builds the operator. ascending=false gives largest-first.
func NewTopK(cfg *sim.Config, in Operator, col string, k int, ascending bool) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{cfg: cfg, in: in, col: col, k: k, ascending: ascending}
}

// Schema implements Operator.
func (t *TopK) Schema() Schema { return t.in.Schema() }

// rowHeap is a bounded heap of rows ordered by the sort column; the heap
// root is the current WORST retained row, so better rows displace it.
type rowHeap struct {
	rows      [][]int64
	sortIdx   int
	ascending bool
}

func (h *rowHeap) Len() int { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool {
	if h.ascending {
		// Keep smallest K: the root is the largest retained.
		return h.rows[i][h.sortIdx] > h.rows[j][h.sortIdx]
	}
	// Keep largest K: the root is the smallest retained.
	return h.rows[i][h.sortIdx] < h.rows[j][h.sortIdx]
}
func (h *rowHeap) Swap(i, j int) { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)    { h.rows = append(h.rows, x.([]int64)) }
func (h *rowHeap) Pop() any      { r := h.rows[len(h.rows)-1]; h.rows = h.rows[:len(h.rows)-1]; return r }

// Next implements Operator.
func (t *TopK) Next(c *sim.Clock) (*Batch, error) {
	if t.done {
		return nil, nil
	}
	t.done = true
	idx, err := t.in.Schema().ColIndex(t.col)
	if err != nil {
		return nil, err
	}
	h := &rowHeap{sortIdx: idx, ascending: t.ascending}
	width := len(t.in.Schema().Cols)
	for {
		b, err := t.in.Next(c)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		c.Advance(t.cfg.CPU.Cost(b.Len() * width * 8))
		for r := 0; r < b.Len(); r++ {
			row := make([]int64, width)
			for i := range b.Cols {
				row[i] = b.Cols[i][r]
			}
			if h.Len() < t.k {
				heap.Push(h, row)
				continue
			}
			// Replace the worst retained row if this one is better.
			worst := h.rows[0][idx]
			better := row[idx] > worst
			if t.ascending {
				better = row[idx] < worst
			}
			if better {
				h.rows[0] = row
				heap.Fix(h, 0)
			}
		}
	}
	// Drain the heap into sorted order (worst pops first).
	n := h.Len()
	sorted := make([][]int64, n)
	for i := n - 1; i >= 0; i-- {
		sorted[i] = heap.Pop(h).([]int64)
	}
	out := &Batch{Cols: make([][]int64, width)}
	for _, row := range sorted {
		for i, v := range row {
			out.Cols[i] = append(out.Cols[i], v)
		}
	}
	return out, nil
}
