package query

import (
	"encoding/binary"
	"fmt"

	"github.com/disagglab/disagg/internal/cxl"
	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// Source serves column blocks with medium-appropriate costs. Scan
// operators read through a Source; where the bytes live (local DRAM,
// remote memory, CXL, object storage) is the experimental variable.
type Source interface {
	Schema() Schema
	NumRows() int
	// ReadBlock fetches rows [block*BlockRows, end) of the given columns
	// into dst (one slice per requested column), charging the medium.
	ReadBlock(c *sim.Clock, block int, cols []int) ([][]int64, error)
	// Zones returns the zone map for a column, or nil if unavailable.
	Zones(col int) *ZoneMap
}

// zoneSet is a lazily built zone-map cache.
type zoneSet struct {
	t     *Table
	zones map[int]*ZoneMap
}

func newZoneSet(t *Table) *zoneSet { return &zoneSet{t: t, zones: make(map[int]*ZoneMap)} }

func (z *zoneSet) get(col int) *ZoneMap {
	if zm, ok := z.zones[col]; ok {
		return zm
	}
	zm := z.t.BuildZoneMap(col)
	z.zones[col] = &zm
	return &zm
}

func blockBounds(rows, block int) (lo, hi int) {
	lo = block * BlockRows
	hi = lo + BlockRows
	if hi > rows {
		hi = rows
	}
	return
}

// LocalSource serves a table from compute-local DRAM.
type LocalSource struct {
	cfg   *sim.Config
	table *Table
	zs    *zoneSet
	dram  *device.DRAM
}

// NewLocalSource wraps a table in local memory.
func NewLocalSource(cfg *sim.Config, t *Table) *LocalSource {
	return &LocalSource{cfg: cfg, table: t, zs: newZoneSet(t), dram: device.NewDRAM(cfg, 4)}
}

// Schema implements Source.
func (s *LocalSource) Schema() Schema { return s.table.Schema }

// NumRows implements Source.
func (s *LocalSource) NumRows() int { return s.table.NumRows() }

// Zones implements Source.
func (s *LocalSource) Zones(col int) *ZoneMap { return s.zs.get(col) }

// ReadBlock implements Source.
func (s *LocalSource) ReadBlock(c *sim.Clock, block int, cols []int) ([][]int64, error) {
	lo, hi := blockBounds(s.table.NumRows(), block)
	if lo >= hi {
		return nil, fmt.Errorf("query: block %d out of range", block)
	}
	out := make([][]int64, len(cols))
	for i, col := range cols {
		s.dram.Access(c, (hi-lo)*8)
		out[i] = s.table.Cols[col][lo:hi]
	}
	return out, nil
}

// RemoteSource serves a table resident in a disaggregated memory pool,
// fetched with one-sided RDMA, with an optional compute-local block cache
// holding a fraction of the table (the E12 "local memory fraction" knob).
type RemoteSource struct {
	cfg    *sim.Config
	schema Schema
	rows   int
	zs     *zoneSet
	qp     *rdma.QP
	// colAddrs[i] is the remote base address of column i.
	colAddrs []uint64
	// cache: (col,block) -> cached values; capacity in blocks. The
	// cache PINS the first cacheCap blocks it sees (application-managed
	// placement a la MonetDB: the engine decides which fraction of the
	// data stays local, instead of letting scans flood an LRU).
	cacheCap int
	cache    map[[2]int][]int64
	hits     int64
	misses   int64
}

// NewRemoteSource uploads the table into the pool and returns a source
// reading it over the fabric. cacheBlocks bounds the local block cache
// (0 disables caching).
func NewRemoteSource(cfg *sim.Config, pool *memnode.Pool, t *Table, stats *rdma.Stats, cacheBlocks int) (*RemoteSource, error) {
	s := &RemoteSource{
		cfg:      cfg,
		schema:   t.Schema,
		rows:     t.NumRows(),
		zs:       newZoneSet(t),
		qp:       pool.Connect(stats),
		cacheCap: cacheBlocks,
		cache:    make(map[[2]int][]int64),
	}
	setup := sim.NewClock()
	for _, col := range t.Cols {
		addr, err := pool.Alloc(uint64(len(col) * 8))
		if err != nil {
			return nil, err
		}
		buf := make([]byte, len(col)*8)
		for i, v := range col {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		if err := s.qp.Write(setup, addr, buf); err != nil {
			return nil, err
		}
		s.colAddrs = append(s.colAddrs, addr)
	}
	return s, nil
}

// Schema implements Source.
func (s *RemoteSource) Schema() Schema { return s.schema }

// NumRows implements Source.
func (s *RemoteSource) NumRows() int { return s.rows }

// Zones implements Source (zone maps are tiny and cached client-side).
func (s *RemoteSource) Zones(col int) *ZoneMap { return s.zs.get(col) }

// CacheStats reports (hits, misses).
func (s *RemoteSource) CacheStats() (int64, int64) { return s.hits, s.misses }

// ReadBlock implements Source.
func (s *RemoteSource) ReadBlock(c *sim.Clock, block int, cols []int) ([][]int64, error) {
	lo, hi := blockBounds(s.rows, block)
	if lo >= hi {
		return nil, fmt.Errorf("query: block %d out of range", block)
	}
	out := make([][]int64, len(cols))
	for i, col := range cols {
		key := [2]int{col, block}
		if vals, ok := s.cache[key]; ok {
			s.hits++
			c.Advance(s.cfg.DRAM.Cost((hi - lo) * 8))
			out[i] = vals
			continue
		}
		s.misses++
		buf := make([]byte, (hi-lo)*8)
		if err := s.qp.Read(c, s.colAddrs[col]+uint64(lo*8), buf); err != nil {
			return nil, err
		}
		vals := make([]int64, hi-lo)
		for j := range vals {
			vals[j] = int64(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		if s.cacheCap > 0 && len(s.cache) < s.cacheCap {
			s.cache[key] = vals
		}
		out[i] = vals
	}
	return out, nil
}

// CXLSource serves a table resident on a CXL memory expander with
// sequential (prefetched) block reads.
type CXLSource struct {
	cfg      *sim.Config
	schema   Schema
	rows     int
	zs       *zoneSet
	dev      *cxl.Device
	colAddrs []uint64
	// Sequential marks scans as prefetch-friendly; false models
	// random-heavy access (per-line base latency).
	Sequential bool
}

// NewCXLSource uploads the table onto the expander.
func NewCXLSource(cfg *sim.Config, dev *cxl.Device, t *Table) (*CXLSource, error) {
	s := &CXLSource{cfg: cfg, schema: t.Schema, rows: t.NumRows(), zs: newZoneSet(t), dev: dev, Sequential: true}
	setup := sim.NewClock()
	var next uint64
	for _, col := range t.Cols {
		buf := make([]byte, len(col)*8)
		for i, v := range col {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		if next+uint64(len(buf)) > dev.Size() {
			return nil, fmt.Errorf("query: CXL device full")
		}
		if err := dev.StoreSeq(setup, next, buf); err != nil {
			return nil, err
		}
		s.colAddrs = append(s.colAddrs, next)
		next += uint64(len(buf))
	}
	return s, nil
}

// Schema implements Source.
func (s *CXLSource) Schema() Schema { return s.schema }

// NumRows implements Source.
func (s *CXLSource) NumRows() int { return s.rows }

// Zones implements Source.
func (s *CXLSource) Zones(col int) *ZoneMap { return s.zs.get(col) }

// ReadBlock implements Source.
func (s *CXLSource) ReadBlock(c *sim.Clock, block int, cols []int) ([][]int64, error) {
	lo, hi := blockBounds(s.rows, block)
	if lo >= hi {
		return nil, fmt.Errorf("query: block %d out of range", block)
	}
	out := make([][]int64, len(cols))
	for i, col := range cols {
		buf := make([]byte, (hi-lo)*8)
		var err error
		if s.Sequential {
			err = s.dev.LoadSeq(c, s.colAddrs[col]+uint64(lo*8), buf)
		} else {
			err = s.dev.Load(c, s.colAddrs[col]+uint64(lo*8), buf)
		}
		if err != nil {
			return nil, err
		}
		vals := make([]int64, hi-lo)
		for j := range vals {
			vals[j] = int64(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		out[i] = vals
	}
	return out, nil
}

// ObjectSource serves a table stored as per-column block objects in cloud
// object storage (Snowflake's immutable micro-partitions). Zone maps are
// kept in the (free) metadata service.
type ObjectSource struct {
	cfg    *sim.Config
	schema Schema
	rows   int
	zs     *zoneSet
	store  *device.ObjectStore
	prefix string
}

// NewObjectSource uploads the table as block objects under prefix.
func NewObjectSource(cfg *sim.Config, store *device.ObjectStore, t *Table, prefix string) *ObjectSource {
	s := &ObjectSource{cfg: cfg, schema: t.Schema, rows: t.NumRows(), zs: newZoneSet(t), store: store, prefix: prefix}
	setup := sim.NewClock()
	for col := range t.Cols {
		for b := 0; b < t.NumBlocks(); b++ {
			lo, hi := blockBounds(t.NumRows(), b)
			buf := make([]byte, (hi-lo)*8)
			for i, v := range t.Cols[col][lo:hi] {
				binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
			}
			store.Put(setup, s.objKey(col, b), buf)
		}
	}
	return s
}

func (s *ObjectSource) objKey(col, block int) string {
	return fmt.Sprintf("%s/c%d/b%d", s.prefix, col, block)
}

// Schema implements Source.
func (s *ObjectSource) Schema() Schema { return s.schema }

// NumRows implements Source.
func (s *ObjectSource) NumRows() int { return s.rows }

// Zones implements Source.
func (s *ObjectSource) Zones(col int) *ZoneMap { return s.zs.get(col) }

// ReadBlock implements Source.
func (s *ObjectSource) ReadBlock(c *sim.Clock, block int, cols []int) ([][]int64, error) {
	lo, hi := blockBounds(s.rows, block)
	if lo >= hi {
		return nil, fmt.Errorf("query: block %d out of range", block)
	}
	out := make([][]int64, len(cols))
	for i, col := range cols {
		buf, err := s.store.Get(c, s.objKey(col, block))
		if err != nil {
			return nil, err
		}
		vals := make([]int64, hi-lo)
		for j := range vals {
			vals[j] = int64(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		out[i] = vals
	}
	return out, nil
}
