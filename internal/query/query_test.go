package query

import (
	"testing"
	"testing/quick"

	"github.com/disagglab/disagg/internal/cxl"
	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/sim"
)

// testTable builds rows (i, i%10, i*2) for i in [0, n).
func testTable(n int) *Table {
	t := NewTable("id", "mod", "dbl")
	for i := 0; i < n; i++ {
		t.AppendRow(int64(i), int64(i%10), int64(i*2))
	}
	return t
}

func TestTableBasics(t *testing.T) {
	tb := testTable(10)
	if tb.NumRows() != 10 || tb.NumBlocks() != 1 {
		t.Fatalf("rows=%d blocks=%d", tb.NumRows(), tb.NumBlocks())
	}
	if err := tb.AppendRow(1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := tb.Schema.ColIndex("nope"); err == nil {
		t.Fatal("unknown column resolved")
	}
}

func TestZoneMapSoundness(t *testing.T) {
	tb := testTable(3 * BlockRows)
	zm := tb.BuildZoneMap(0)
	if len(zm.Min) != 3 {
		t.Fatalf("zones = %d", len(zm.Min))
	}
	// Property: every value in a block is within [min, max].
	f := func(rawBlock, rawRow uint16) bool {
		b := int(rawBlock) % 3
		r := int(rawRow) % BlockRows
		v := tb.Cols[0][b*BlockRows+r]
		return v >= zm.Min[b] && v <= zm.Max[b]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicate(t *testing.T) {
	p := Predicate{Col: "x", Lo: 10, Hi: 20}
	if p.Matches(9) || !p.Matches(10) || !p.Matches(19) || p.Matches(20) {
		t.Fatal("predicate range wrong")
	}
	if !p.PrunesBlock(0, 9) || !p.PrunesBlock(20, 30) || p.PrunesBlock(5, 15) {
		t.Fatal("prune logic wrong")
	}
}

func TestScanFilterLocal(t *testing.T) {
	cfg := sim.DefaultConfig()
	src := NewLocalSource(cfg, testTable(10_000))
	scan, err := NewScan(cfg, src, []string{"id"}, []Predicate{{Col: "mod", Lo: 3, Hi: 4}}, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(sim.NewClock(), scan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1000 {
		t.Fatalf("selected %d rows, want 1000", out.Len())
	}
	for _, v := range out.Cols[0] {
		if v%10 != 3 {
			t.Fatalf("row %d fails predicate", v)
		}
	}
}

func TestScanPruningSkipsBlocks(t *testing.T) {
	// id column is sorted, so a narrow range prunes most blocks.
	cfg := sim.DefaultConfig()
	tb := testTable(10 * BlockRows)
	src := NewLocalSource(cfg, tb)
	pred := []Predicate{{Col: "id", Lo: 0, Hi: 100}}

	pruned, _ := NewScan(cfg, src, []string{"id"}, pred, true)
	outP, err := Collect(sim.NewClock(), pruned)
	if err != nil {
		t.Fatal(err)
	}
	unpruned, _ := NewScan(cfg, src, []string{"id"}, pred, false)
	outU, _ := Collect(sim.NewClock(), unpruned)

	if outP.Len() != 100 || outU.Len() != 100 {
		t.Fatalf("result rows %d/%d", outP.Len(), outU.Len())
	}
	if pruned.BlocksSkipped != 9 || pruned.BlocksRead != 1 {
		t.Fatalf("pruned scan read %d skipped %d", pruned.BlocksRead, pruned.BlocksSkipped)
	}
	if unpruned.BlocksSkipped != 0 {
		t.Fatal("unpruned scan skipped blocks")
	}
}

func TestProjectAndFilter(t *testing.T) {
	cfg := sim.DefaultConfig()
	src := NewLocalSource(cfg, testTable(100))
	scan, _ := NewScan(cfg, src, []string{"id", "dbl"}, nil, false)
	proj, err := NewProject(scan, "dbl")
	if err != nil {
		t.Fatal(err)
	}
	filt, err := NewFilter(cfg, proj, Predicate{Col: "dbl", Lo: 0, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Collect(sim.NewClock(), filt)
	if out.Len() != 5 || len(out.Cols) != 1 {
		t.Fatalf("got %d rows x %d cols", out.Len(), len(out.Cols))
	}
}

func TestHashAggGrouped(t *testing.T) {
	cfg := sim.DefaultConfig()
	src := NewLocalSource(cfg, testTable(1000))
	scan, _ := NewScan(cfg, src, []string{"mod", "id"}, nil, false)
	agg := NewHashAgg(cfg, scan, "mod", AggSpec{Col: "id"}, AggSpec{})
	out, err := Collect(sim.NewClock(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("groups = %d", out.Len())
	}
	// Each group has 100 rows.
	for i := 0; i < out.Len(); i++ {
		if out.Cols[2][i] != 100 {
			t.Fatalf("group %d count = %d", out.Cols[0][i], out.Cols[2][i])
		}
	}
}

func TestHashAggGlobalEmptyInput(t *testing.T) {
	cfg := sim.DefaultConfig()
	src := NewLocalSource(cfg, testTable(100))
	scan, _ := NewScan(cfg, src, []string{"id"}, []Predicate{{Col: "id", Lo: -5, Hi: -1}}, false)
	agg := NewHashAgg(cfg, scan, "", AggSpec{Col: "id"}, AggSpec{})
	out, _ := Collect(sim.NewClock(), agg)
	if out.Len() != 1 || out.Cols[0][0] != 0 || out.Cols[1][0] != 0 {
		t.Fatalf("empty-input global agg = %+v", out)
	}
}

func TestHashJoinCorrectness(t *testing.T) {
	cfg := sim.DefaultConfig()
	// build: (k, k*10) for k<100; probe: (k%100, k) for k<1000.
	build := NewTable("bk", "bv")
	for k := 0; k < 100; k++ {
		build.AppendRow(int64(k), int64(k*10))
	}
	probe := NewTable("pk", "pv")
	for k := 0; k < 1000; k++ {
		probe.AppendRow(int64(k%100), int64(k))
	}
	bScan, _ := NewScan(cfg, NewLocalSource(cfg, build), []string{"bk", "bv"}, nil, false)
	pScan, _ := NewScan(cfg, NewLocalSource(cfg, probe), []string{"pk", "pv"}, nil, false)
	join := NewHashJoin(cfg, bScan, pScan, "bk", "pk", nil)
	out, err := Collect(sim.NewClock(), join)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1000 {
		t.Fatalf("join rows = %d, want 1000", out.Len())
	}
	// Schema: pk pv b_bk b_bv; check b_bv == pk*10 on every row.
	kIdx, _ := join.Schema().ColIndex("pk")
	vIdx, _ := join.Schema().ColIndex("b_bv")
	for r := 0; r < out.Len(); r++ {
		if out.Cols[vIdx][r] != out.Cols[kIdx][r]*10 {
			t.Fatalf("row %d: joined value mismatch", r)
		}
	}
}

func TestHashJoinSpillCostOrdering(t *testing.T) {
	// E12 shape: none < remote-spill < ssd-spill in time; results equal.
	cfg := sim.DefaultConfig()
	build := NewTable("bk", "bv")
	for k := 0; k < 20_000; k++ {
		build.AppendRow(int64(k), int64(k))
	}
	probe := NewTable("pk")
	for k := 0; k < 40_000; k++ {
		probe.AppendRow(int64(k % 20_000))
	}
	run := func(target SpillTarget, budgetBytes int) (int, sim.Clock, int64) {
		bScan, _ := NewScan(cfg, NewLocalSource(cfg, build), []string{"bk", "bv"}, nil, false)
		pScan, _ := NewScan(cfg, NewLocalSource(cfg, probe), []string{"pk"}, nil, false)
		budget := NewMemoryBudget(cfg, budgetBytes, target)
		join := NewHashJoin(cfg, bScan, pScan, "bk", "pk", budget)
		clk := sim.NewClock()
		out, err := Collect(clk, join)
		if err != nil {
			t.Fatal(err)
		}
		return out.Len(), *clk, budget.SpilledBytes
	}
	rowsNone, cNone, spillNone := run(SpillNone, 0)
	rowsRemote, cRemote, spillRemote := run(SpillRemote, 64<<10)
	rowsSSD, cSSD, spillSSD := run(SpillSSD, 64<<10)
	if rowsNone != 40_000 || rowsRemote != rowsNone || rowsSSD != rowsNone {
		t.Fatalf("row counts diverge: %d/%d/%d", rowsNone, rowsRemote, rowsSSD)
	}
	if spillNone != 0 || spillRemote == 0 || spillSSD == 0 {
		t.Fatalf("spill bytes: %d/%d/%d", spillNone, spillRemote, spillSSD)
	}
	if !(cNone.Now() < cRemote.Now() && cRemote.Now() < cSSD.Now()) {
		t.Fatalf("cost ordering violated: none %v remote %v ssd %v", cNone.Now(), cRemote.Now(), cSSD.Now())
	}
}

func TestRemoteSourceCostsMoreThanLocal(t *testing.T) {
	cfg := sim.DefaultConfig()
	tb := testTable(4 * BlockRows)
	local := NewLocalSource(cfg, tb)
	pool := memnode.New(cfg, "m0", 64<<20)
	remote, err := NewRemoteSource(cfg, pool, tb, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	runScan := func(src Source) sim.Clock {
		scan, _ := NewScan(cfg, src, []string{"id"}, nil, false)
		clk := sim.NewClock()
		if _, err := Collect(clk, scan); err != nil {
			t.Fatal(err)
		}
		return *clk
	}
	lc := runScan(local)
	rc := runScan(remote)
	if !(lc.Now() < rc.Now()) {
		t.Fatalf("local scan %v should beat remote %v", lc.Now(), rc.Now())
	}
}

func TestRemoteSourceCacheReducesTraffic(t *testing.T) {
	cfg := sim.DefaultConfig()
	tb := testTable(4 * BlockRows)
	pool := memnode.New(cfg, "m0", 64<<20)
	src, err := NewRemoteSource(cfg, pool, tb, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	scan := func() {
		s, _ := NewScan(cfg, src, []string{"id"}, nil, false)
		Collect(sim.NewClock(), s)
	}
	scan()
	h1, m1 := src.CacheStats()
	scan()
	h2, m2 := src.CacheStats()
	if h1 != 0 || m1 != 4 {
		t.Fatalf("cold pass: %d/%d", h1, m1)
	}
	if h2 != 4 || m2 != 4 {
		t.Fatalf("warm pass: %d hits, %d misses", h2, m2)
	}
}

func TestCXLSourceScan(t *testing.T) {
	cfg := sim.DefaultConfig()
	tb := testTable(2 * BlockRows)
	dev := cxl.NewDevice(cfg, 1<<22)
	src, err := NewCXLSource(cfg, dev, tb)
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := NewScan(cfg, src, []string{"id", "dbl"}, nil, false)
	out, err := Collect(sim.NewClock(), scan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2*BlockRows {
		t.Fatalf("rows = %d", out.Len())
	}
	if out.Cols[1][5] != 10 {
		t.Fatalf("dbl[5] = %d", out.Cols[1][5])
	}
	// Sequential scan cheaper than random access mode.
	seqClk := sim.NewClock()
	s1, _ := NewScan(cfg, src, []string{"id"}, nil, false)
	Collect(seqClk, s1)
	src.Sequential = false
	randClk := sim.NewClock()
	s2, _ := NewScan(cfg, src, []string{"id"}, nil, false)
	Collect(randClk, s2)
	if !(seqClk.Now() < randClk.Now()) {
		t.Fatalf("seq %v should beat random %v", seqClk.Now(), randClk.Now())
	}
}

func TestObjectSourceScanAndPruning(t *testing.T) {
	cfg := sim.DefaultConfig()
	tb := testTable(8 * BlockRows)
	store := device.NewObjectStore(cfg)
	src := NewObjectSource(cfg, store, tb, "t1")
	// Pruned scan reads far fewer objects (charged less time).
	pred := []Predicate{{Col: "id", Lo: 0, Hi: 10}}
	p, _ := NewScan(cfg, src, []string{"id"}, pred, true)
	pc := sim.NewClock()
	outP, err := Collect(pc, p)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := NewScan(cfg, src, []string{"id"}, pred, false)
	uc := sim.NewClock()
	Collect(uc, u)
	if outP.Len() != 10 {
		t.Fatalf("rows = %d", outP.Len())
	}
	if !(pc.Now() < uc.Now()/4) {
		t.Fatalf("pruned %v should be ≫ cheaper than unpruned %v", pc.Now(), uc.Now())
	}
}
