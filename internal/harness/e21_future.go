package harness

import (
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/autoscale"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/serverless"
	"github.com/disagglab/disagg/internal/flexchain"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Title: "Automatic resource provisioning (future direction)",
		Claim: `§4: "it is critical to investigate automatic resource provisioning to decide the right amount of resources … Recent advances in machine learning techniques can be leveraged."`,
		Run:   runE21,
	})
	register(Experiment{
		ID:    "E22",
		Title: "HTAP on the evaluation platform (future direction)",
		Claim: `§4: the platform should span "different workloads (e.g., OLTP, OLAP, and HTAP)" — here an OLTP stream and analytical scans share one disaggregated engine.`,
		Run:   runE22,
	})
	register(Experiment{
		ID:    "E23",
		Title: "FlexChain: blockchain world state on disaggregated memory",
		Claim: `§3.1: FlexChain separates the world state with a tiered KV store on disaggregated memory; "to optimize the validation phase … that becomes the new bottleneck", it "adopts a dependency-graph-based approach that parallelizes validations".`,
		Run:   runE23,
	})
}

func runE21(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E21", Title: "Autoscaling policies"}
	steps := pick(s, 30, 120)
	perNode := 250.0
	demands := autoscale.RampTrace(40_000, steps)

	t := r.table("E21: diurnal ramp to 40k txn/s, 250 txn/s per node, 1-interval provisioning lag",
		"policy", "SLO violations", "avg slack (nodes)")
	vioR, overR, err := autoscale.Trace(autoscale.NewReactive(), perNode, demands, time.Second)
	if err != nil {
		panic(err)
	}
	vioP, overP, err := autoscale.Trace(autoscale.NewPredictive(2*time.Second), perNode, demands, time.Second)
	if err != nil {
		panic(err)
	}
	t.Row("reactive threshold", fmt.Sprintf("%.0f%%", 100*vioR), overR)
	t.Row("predictive (least-squares forecast)", fmt.Sprintf("%.0f%%", 100*vioP), overP)
	r.check("the predictor violates the SLO less on ramps", vioP < vioR,
		"%.0f%% vs %.0f%% of intervals underprovisioned", 100*vioP, 100*vioR)
	r.check("prediction is not just overprovisioning", overP < 0.5*40_000/perNode,
		"average slack %.1f nodes", overP)

	// The actuation side: scaling the serverless engine really is a
	// metadata operation, so acting on a decision is cheap.
	layout := oltpLayout()
	sv := serverless.New(cfg, layout, 1, 16, 512)
	ac := sim.NewClock()
	for i := 0; i < 7; i++ {
		sv.AddNode(ac, 16)
	}
	r.check("acting on a scale-out decision is cheap on disaggregation",
		ac.Now() < time.Millisecond,
		"8 nodes provisioned in %v of simulated time", ac.Now())
	r.traceOp(cfg, "scaleout.addnode", func(c *sim.Clock) {
		sv.AddNode(c, 16)
	})
	return r
}

func runE22(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E22", Title: "HTAP interference"}
	layout := oltpLayout()
	txns := pick(s, 150, 1200)

	// One serverless engine; the OLTP stream runs on the primary while
	// an analytical scan runs against a replica fed by the same shared
	// memory pool — the HTAP configuration memory disaggregation makes
	// natural (§3.1/§4).
	build := func() *serverless.Engine {
		return serverless.New(cfg, layout, 2, 64, 4096)
	}

	runOLTPOnly := func() (float64, time.Duration) {
		e := build()
		res, sum := runOLTP(e, 2, txns/2)
		return res.Throughput(), sum.P99
	}
	runHTAP := func() (float64, time.Duration, time.Duration) {
		e := build()
		var scanTime time.Duration
		done := make(chan struct{})
		go func() {
			defer close(done)
			// The analytical reader sweeps the whole keyspace on a
			// secondary (fresh via the shared pool, no log replay).
			c := sim.NewClock()
			w := workload.DefaultTPCC()
			for k := uint64(0); k < w.TotalKeys(); k += uint64(layout.PerPage) {
				key := k
				e.ReadReplica(c, 1, func(tx engine.Tx) error {
					_, err := tx.Read(key)
					return err
				})
			}
			scanTime = c.Now()
		}()
		res, sum := runOLTP(e, 2, txns/2)
		<-done
		return res.Throughput(), sum.P99, scanTime
	}
	baseTput, baseP99 := runOLTPOnly()
	htapTput, htapP99, scanTime := runHTAP()

	t := r.table("E22: TPC-C-lite primary + full analytical sweep on a secondary",
		"configuration", "OLTP tput", "OLTP p99", "scan time")
	t.Row("OLTP alone", baseTput, baseP99, "-")
	t.Row("OLTP + analytics (HTAP)", htapTput, htapP99, scanTime)
	drop := 100 * (1 - htapTput/baseTput)
	r.check("analytics do not collapse OLTP throughput", htapTput > baseTput/2,
		"HTAP tput drop %.0f%% (scan shares only the memory pool NIC, not the writer)", drop)
	r.check("the analytical sweep completes", scanTime > 0, "swept in %v", scanTime)

	// Same HTAP question on storage disaggregation with zone maps: the
	// analytical half uses the columnar engine (E5/E12 machinery).
	d := workload.TPCH{ScaleRows: pick(s, 30_000, 300_000), Clustered: true, Seed: 13}.Generate()
	src := query.NewLocalSource(cfg, d.Lineitem)
	q6, _ := workload.Q6(cfg, src, 100, 200, 0, 11, true)
	qc := sim.NewClock()
	query.Collect(qc, q6)
	r.note("columnar Q6 beside the OLTP stream: %v (zone maps keep the scan off the hot pages)", qc.Now())
	r.traceOp(cfg, "olap.q6-htap", func(c *sim.Clock) {
		q, err := workload.Q6(cfg, src, 100, 200, 0, 11, true)
		if err != nil {
			panic(err)
		}
		if _, err := query.Collect(c, q); err != nil {
			panic(err)
		}
	})
	return r
}

func runE23(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E23", Title: "FlexChain validation"}
	blockSize := pick(s, 64, 256)
	blocks := pick(s, 10, 40)

	mkBlock := func(seed int64, conflictFrac float64) []*flexchain.Tx {
		rng := sim.NewRand(seed, 0)
		var out []*flexchain.Tx
		for i := 0; i < blockSize; i++ {
			key := uint64(rng.Int63n(int64(blockSize) * 4))
			if rng.Float64() < conflictFrac {
				key = uint64(rng.Int63n(4)) // hot keys force dependency chains
			}
			out = append(out, &flexchain.Tx{
				ID:     i,
				Reads:  map[uint64]flexchain.Version{key: 0},
				Writes: map[uint64]uint64{key + 100_000: uint64(i)},
			})
		}
		return out
	}
	run := func(parallel bool, conflictFrac float64) (time.Duration, int) {
		pool := memnode.New(cfg, "world-state", 64<<20)
		st := flexchain.NewState(cfg, pool, 16)
		v := flexchain.NewValidator(cfg, st, 8)
		c := sim.NewClock()
		valid := 0
		for b := 0; b < blocks; b++ {
			ids, err := v.CommitBlock(c, mkBlock(int64(b), conflictFrac), parallel)
			if err != nil {
				panic(err)
			}
			valid += len(ids)
		}
		return c.Now(), valid
	}
	serialT, serialValid := run(false, 0)
	parT, parValid := run(true, 0)
	conflictLevels := flexchain.Levels(mkBlock(1, 0.9))
	t := r.table("E23: committing "+fmt.Sprint(blocks)+" blocks of "+fmt.Sprint(blockSize)+" txns",
		"validation", "time", "txns committed")
	t.Row("serial (classic XOV)", serialT, serialValid)
	t.Row("dependency-graph parallel", parT, parValid)
	r.check("parallel validation beats serial", parT < serialT,
		"%v vs %v (%.1fx)", parT, serialT, ratio(serialT, parT))
	r.check("results agree", serialValid == parValid, "%d vs %d txns", serialValid, parValid)
	r.check("hot-key blocks form dependency chains", conflictLevels > 3,
		"90%%-conflict block layers into %d levels (independent blocks: 1)", conflictLevels)
	r.traceOp(cfg, "chain.commitblock", func(c *sim.Clock) {
		pool := memnode.New(cfg, "world-trace", 64<<20)
		v := flexchain.NewValidator(cfg, flexchain.NewState(cfg, pool, 16), 8)
		if _, err := v.CommitBlock(c, mkBlock(99, 0), true); err != nil {
			panic(err)
		}
	})
	return r
}
