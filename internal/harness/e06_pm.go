package harness

import (
	"time"

	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/pilotdb"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Remote PM persistence: one-sided write, write+flush read, RPC",
		Claim: `§2.3 (Kalia et al.): a one-sided RDMA write does not guarantee persistence (data may sit in NIC/PCIe buffers); it needs a trailing read — and "the two-sided approach is even faster".`,
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Remote PM over RDMA vs local PM through the legacy I/O stack",
		Claim: `§2.3 (Exadata): "accessing PM remotely via RDMA can be even faster than accessing PM locally due to the heavy-weight software overhead involved".`,
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "PilotDB: compute-driven logging and optimistic page reads",
		Claim: `§2.3: PilotDB logs via one-sided RDMA from the compute node and reads pages optimistically, validating by LSN and replaying the PM log locally when stale.`,
		Run:   runE8,
	})
}

func runE6(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E6", Title: "Remote PM persistence paths"}
	node := rdma.NewPMNode(cfg, "pm0", 1<<20)
	t := r.table("E6: latency to persist one record on remote PM",
		"size", "1-sided write (UNSAFE)", "write + flush read", "2-sided RPC persist")
	sizes := []int{64, 256, 1024, 4096}
	ok := true
	okRPC := true
	for _, size := range sizes {
		payload := make([]byte, size)
		unsafeC := sim.NewClock()
		rdma.Connect(cfg, node, nil).Write(unsafeC, 0, payload)
		persisted := node.PendingPersist() == 0
		flushC := sim.NewClock()
		rdma.Connect(cfg, node, nil).WritePersist(flushC, 0, payload)
		rpcC := sim.NewClock()
		rdma.Connect(cfg, node, nil).CallPersist(rpcC, 0, payload)
		t.Row(size, unsafeC.Now(), flushC.Now(), rpcC.Now())
		if persisted {
			ok = false
		}
		if !(rpcC.Now() < flushC.Now()) {
			okRPC = false
		}
	}
	r.check("one-sided write alone is NOT persistent", ok,
		"posted bytes remain pending until flushed")
	r.check("RPC persist beats write+flush-read", okRPC,
		"one round trip + server flush vs two dependent round trips")
	r.traceOp(cfg, "pm.persist256", func(c *sim.Clock) {
		rdma.Connect(cfg, node, nil).WritePersist(c, 0, make([]byte, 256))
	})
	return r
}

func runE7(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E7", Title: "Local vs remote PM access"}
	reads := pick(s, 200, 2000)
	legacy := device.NewPM(cfg, 4, true)
	direct := device.NewPM(cfg, 4, false)
	pmNode := rdma.NewPMNode(cfg, "pm0", 1<<20)
	qp := rdma.Connect(cfg, pmNode, nil)

	run := func(f func(c *sim.Clock)) time.Duration {
		c := sim.NewClock()
		for i := 0; i < reads; i++ {
			f(c)
		}
		return c.Now() / time.Duration(reads)
	}
	buf := make([]byte, 4096)
	lLegacy := run(func(c *sim.Clock) { legacy.Read(c, 4096) })
	lDirect := run(func(c *sim.Clock) { direct.Read(c, 4096) })
	lRemote := run(func(c *sim.Clock) { qp.Read(c, 0, buf) })

	t := r.table("E7: 4KB PM reads", "path", "latency")
	t.Row("local PM, legacy I/O stack (syscall)", lLegacy)
	t.Row("local PM, direct mapped", lDirect)
	t.Row("remote PM via one-sided RDMA", lRemote)
	r.check("remote RDMA beats local legacy stack", lRemote < lLegacy,
		"%v vs %v — the counter-intuitive Exadata result", lRemote, lLegacy)
	r.check("direct mapping is still fastest", lDirect < lRemote,
		"%v vs %v", lDirect, lRemote)
	r.traceOp(cfg, "pm.read4k-remote", func(c *sim.Clock) {
		qp.Read(c, 0, buf)
	})
	return r
}

func runE8(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E8", Title: "PilotDB ablation"}
	layout := oltpLayout()
	// PilotDB (like the other cloud-native engines of §2) runs a single
	// read-write node; the ablation isolates per-transaction path costs.
	workers := 1
	txns := pick(s, 250, 2500)

	type row struct {
		name string
		tput float64
		p50  time.Duration
		rep  int64
	}
	var rows []row
	run := func(name string, opt pilotdb.Options) *pilotdb.Engine {
		e := pilotdb.New(cfg, layout, 256, opt)
		res, sum := runOLTP(e, workers, txns)
		rows = append(rows, row{name, res.Throughput(), sum.P50, e.Repairs.Load()})
		return e
	}
	run("pilotdb (1-sided log + optimistic reads)", pilotdb.Pilot())
	run("server-driven logging only", pilotdb.Options{ComputeDrivenLogging: false, OptimisticReads: true})
	run("coordinated reads only", pilotdb.Options{ComputeDrivenLogging: true, OptimisticReads: false})
	run("naive (server log + coordinated reads)", pilotdb.Naive())

	t := r.table("E8: TPC-C-lite on the PM log layer", "variant", "tput(txn/s)", "p50", "repairs")
	for _, rw := range rows {
		t.Row(rw.name, rw.tput, rw.p50, rw.rep)
	}
	r.check("pilotdb beats naive", rows[0].tput > rows[3].tput,
		"%.0f vs %.0f txn/s", rows[0].tput, rows[3].tput)
	r.check("compute-driven logging helps", rows[0].tput > rows[1].tput,
		"%.0f vs %.0f txn/s", rows[0].tput, rows[1].tput)

	// Correctness of the optimistic path under staleness: handled by
	// validation + local replay.
	e := pilotdb.New(cfg, layout, 2, pilotdb.Pilot())
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	val[0] = 0x77
	for i := uint64(0); i < 30; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i*uint64(layout.PerPage), val) })
	}
	e.Pool().InvalidateAll()
	stale := false
	for i := uint64(0); i < 30; i++ {
		key := i * uint64(layout.PerPage)
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(key)
			if err != nil {
				return err
			}
			if v[0] != 0x77 {
				stale = true
			}
			return nil
		})
	}
	r.check("optimistic reads never return stale data", !stale && e.Repairs.Load() > 0,
		"%d validations, %d repairs, zero stale results", e.Validations.Load(), e.Repairs.Load())
	r.traceOp(cfg, "txn.write-pilotdb", func(c *sim.Clock) {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(7, val)
		})
	})
	return r
}
