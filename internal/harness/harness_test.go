package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 30 {
		t.Fatalf("registry has %d experiments, want 30 (E1-E20 claims + E21-E30 extensions)", len(all))
	}
	for i, e := range all {
		want := i + 1
		if expNum(e.ID) != want {
			t.Fatalf("position %d holds %s", i, e.ID)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("E6"); !ok {
		t.Fatal("Lookup(E6) failed")
	}
	if e, ok := Lookup("E-batch"); !ok || e.ID != "E24" {
		t.Fatalf("Lookup(E-batch) = (%q, %v), want E24 via alias", e.ID, ok)
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("Lookup(E99) succeeded")
	}
}

// TestAllExperimentsPassAtQuickScale is the integration suite: every
// experiment must reproduce its claimed shape. It runs with tracing on,
// so each experiment must also record a representative span tree whose
// root equals the op's end-to-end virtual latency (traceOp pins that
// equality as a check).
func TestAllExperimentsPassAtQuickScale(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Trace = true
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			r := e.Run(cfg.Clone(), Quick)
			if len(r.Checks) == 0 {
				t.Fatalf("%s made no checks", e.ID)
			}
			if r.Trace == nil {
				t.Fatalf("%s recorded no trace with cfg.Trace set", e.ID)
			}
			found := false
			for _, c := range r.Checks {
				if c.Name == "trace root equals end-to-end latency" {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s did not pin the trace-root invariant", e.ID)
			}
			var buf bytes.Buffer
			Render(&buf, r)
			if r.Failed() {
				t.Fatalf("%s failed:\n%s", e.ID, buf.String())
			}
			if !strings.Contains(buf.String(), "PASS") {
				t.Fatalf("render missing check output:\n%s", buf.String())
			}
		})
	}
}

func TestRenderIncludesTables(t *testing.T) {
	r := &Result{ID: "EX", Title: "demo"}
	tb := r.table("demo table", "a", "b")
	tb.Row(1, 2)
	r.note("a note")
	r.check("always", true, "fine")
	var buf bytes.Buffer
	Render(&buf, r)
	out := buf.String()
	for _, want := range []string{"==== EX", "demo table", "note: a note", "[PASS] always"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPick(t *testing.T) {
	if pick(Quick, 1, 2) != 1 || pick(Full, 1, 2) != 2 {
		t.Fatal("pick broken")
	}
}

func TestExpNum(t *testing.T) {
	if expNum("E2") != 2 || expNum("E17") != 17 {
		t.Fatal("expNum broken")
	}
}
