package harness

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/polardb"
	"github.com/disagglab/disagg/internal/engine/socrates"
	"github.com/disagglab/disagg/internal/engine/taurus"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/sim"
)

func init() {
	register(Experiment{
		ID:      "E24",
		Aliases: []string{"E-batch"},
		Title:   "Group commit: commit throughput and latency vs batch size",
		Claim: `§2.1/§3: every disaggregated architecture pays a fabric round trip per durable commit (log shipping, quorum appends, raft replication). Group commit amortizes that per-message cost across concurrent transactions — throughput rises with batch size under load, while at low load the batching window surfaces as a commit-latency knee.`,
		Run: runE24,
	})
}

// e24Window is the group-commit window for every batched cell: long
// enough that a straggler rider always makes the next flush, short enough
// that the low-load knee is visible against single-commit latency.
const e24Window = 50 * time.Microsecond

// e24Engines are the group-commit-capable engines under test. Builders
// return fresh engines with background page work disabled, so cells
// measure the commit path alone.
func e24Engines() []struct {
	name  string
	build func(cfg *sim.Config) engine.Engine
} {
	layout := oltpLayout()
	return []struct {
		name  string
		build func(cfg *sim.Config) engine.Engine
	}{
		{"aurora", func(cfg *sim.Config) engine.Engine {
			return aurora.New(cfg, layout, 1024, 1)
		}},
		{"socrates", func(cfg *sim.Config) engine.Engine {
			e := socrates.New(cfg, layout, 1024, 2)
			e.SnapshotEvery = 0
			return e
		}},
		{"taurus", func(cfg *sim.Config) engine.Engine {
			e := taurus.New(cfg, layout, 1024, 2)
			e.GossipEvery = 0
			return e
		}},
		{"polardb", func(cfg *sim.Config) engine.Engine {
			e := polardb.New(cfg, layout, 1024)
			e.CheckpointEvery = 0
			return e
		}},
	}
}

// e24Cell drives one (engine, batch size, worker count) cell: disjoint
// single-key write transactions, batch <= 1 meaning group commit stays
// disabled. It reports the group result, the per-commit latency summary,
// and the engine's flush telemetry.
func e24Cell(cfg *sim.Config, build func(*sim.Config) engine.Engine, workers, txns, batch int) (sim.GroupResult, metrics.Summary, *engine.Stats) {
	layout := oltpLayout()
	e := build(cfg)
	if batch > 1 {
		engine.Caps(e).GroupCommitter.EnableGroupCommit(batch, e24Window)
	}
	lat := make(chan time.Duration, workers*txns)
	res := sim.RunGroup(workers, func(id int, c *sim.Clock) int {
		key := uint64(1<<20 + id)
		done := 0
		for i := 0; i < txns; i++ {
			before := c.Now()
			v := make([]byte, layout.ValSize)
			binary.LittleEndian.PutUint64(v, uint64(i+1))
			if err := engine.Run(e, c, engine.RunOpts{Retries: 5}, func(tx engine.Tx) error {
				return tx.Write(key, v)
			}); err == nil {
				done++
				lat <- c.Now() - before
			}
		}
		return done
	})
	close(lat)
	var hist []time.Duration
	for d := range lat {
		hist = append(hist, d)
	}
	return res, metrics.Summarize(hist), e.Stats()
}

// occupancy is commits per grouped flush (0 when no flush grouped).
func occupancy(st *engine.Stats) float64 {
	if f := st.GroupFlushes.Load(); f > 0 {
		return float64(st.GroupCommits.Load()) / float64(f)
	}
	return 0
}

func runE24(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E24", Title: "Group commit batching sweep"}
	batches := pick(s, []int{1, 4, 16, 64}, []int{1, 2, 4, 8, 16, 32, 64})
	workers := 64
	txns := pick(s, 24, 96)

	// High load: 64 writers saturate each engine's durability path, so
	// at batch 1 the shared log/volume/raft meters run oversubscribed.
	// Grouping k commits into one flush cuts the flush rate k-fold:
	// contention collapses and the shared flush cost is amortized.
	thr := make(map[string]map[int]float64)
	for _, eng := range e24Engines() {
		eng := eng
		t := r.table(fmt.Sprintf("E24: %s — %d writers, commit throughput vs batch size", eng.name, workers),
			"batch", "tput (txn/s)", "p50 commit", "p99 commit", "flushes", "occupancy", "size/timeout")
		thr[eng.name] = make(map[int]float64)
		for _, b := range batches {
			res, sum, st := e24Cell(cfg, eng.build, workers, txns, b)
			thr[eng.name][b] = res.Throughput()
			flushes := st.GroupFlushes.Load()
			occ := "-"
			ratio := "-"
			if b > 1 {
				occ = fmt.Sprintf("%.1f", occupancy(st))
				ratio = fmt.Sprintf("%d/%d", st.FlushOnSize.Load(), st.FlushOnTimeout.Load())
			}
			t.Row(b, fmt.Sprintf("%.0f", res.Throughput()), sum.P50, sum.P99,
				flushes, occ, ratio)
			if res.TotalOps != workers*txns {
				r.check(fmt.Sprintf("%s batch=%d commits all transactions", eng.name, b),
					false, "%d/%d committed", res.TotalOps, workers*txns)
			}
		}
	}

	// The CI gate: batching must pay on every engine, and substantially
	// on at least two (the tutorial's fabric-cost argument).
	twofold := 0
	for _, eng := range e24Engines() {
		t1, t16 := thr[eng.name][1], thr[eng.name][16]
		r.check(fmt.Sprintf("%s: batch=16 beats batch=1", eng.name), t16 > t1,
			"%.0f vs %.0f txn/s (%.2fx)", t16, t1, t16/t1)
		if t16 >= 2*t1 {
			twofold++
		}
	}
	r.check("batch=16 at least doubles commit throughput on >=2 engines", twofold >= 2,
		"%d engine(s) at >=2x", twofold)

	// Low load: 4 writers can never fill a 16-slot group, so every flush
	// is released by the window — the commit-latency knee batching buys
	// its throughput with.
	knee := r.table("E24: aurora — 4 writers (underfilled groups): the tail-latency knee",
		"batch", "p50 commit", "p99 commit", "size/timeout flushes")
	au := e24Engines()[0]
	var p50 [2]time.Duration
	for i, b := range []int{1, 16} {
		_, sum, st := e24Cell(cfg, au.build, 4, txns, b)
		ratio := "-"
		if b > 1 {
			ratio = fmt.Sprintf("%d/%d", st.FlushOnSize.Load(), st.FlushOnTimeout.Load())
		}
		knee.Row(b, sum.P50, sum.P99, ratio)
		p50[i] = sum.P50
	}
	r.check("underfilled groups pay the window: low-load p50 rises with batching",
		p50[1] > p50[0], "p50 %v (batch=16) vs %v (batch=1)", p50[1], p50[0])

	// Control-plane coalescing on the memory pool: the same Batcher
	// merges concurrent Alloc RPCs into shared "allocn" round trips.
	pool := memnode.New(cfg, "e24-mem", 1<<20)
	co := memnode.NewCoalescer(pool.Connect(nil), 8, 20*time.Microsecond)
	const allocWorkers, allocsEach = 16, 8
	ares := sim.RunGroup(allocWorkers, func(id int, c *sim.Clock) int {
		done := 0
		for i := 0; i < allocsEach; i++ {
			if _, err := co.Alloc(c, 64); err == nil {
				done++
			}
		}
		return done
	})
	cs := co.Stats()
	mt := r.table("E24: memnode control-plane coalescing (16 workers x 8 allocs)",
		"allocs", "RPC flushes", "mean allocs/RPC")
	mt.Row(cs.Items, cs.Flushes, fmt.Sprintf("%.1f", cs.MeanOccupancy()))
	r.check("every coalesced allocation succeeds",
		ares.TotalOps == allocWorkers*allocsEach && cs.Items == allocWorkers*allocsEach,
		"%d/%d allocs, %d items batched", ares.TotalOps, allocWorkers*allocsEach, cs.Items)
	r.note("batch telemetry comes from engine.Stats (GroupCommits/GroupFlushes/FlushOnSize/FlushOnTimeout) and sim.Registry batcher rows")
	r.traceOp(cfg, "mem.coalesced-alloc", func(c *sim.Clock) {
		if _, err := co.Alloc(c, 64); err != nil {
			panic(err)
		}
	})
	return r
}
