// Package harness is the experimental platform the tutorial's Future
// Directions section calls for (§4): a registry of experiments spanning
// hardware platforms (RDMA, CXL, PM), workloads (OLTP, OLAP), and
// disaggregation forms (storage, memory), each regenerating one of the
// quantitative claims made or cited by the paper. Every experiment prints
// paper-style tables and records shape checks (who wins, by roughly what
// factor) so the suite is self-validating.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/sim"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// Quick is CI-sized: seconds, shape-preserving.
	Quick Scale = iota
	// Full is the paper-style run.
	Full
)

// pick returns q at Quick scale and f at Full scale.
func pick[T any](s Scale, q, f T) T {
	if s == Full {
		return f
	}
	return q
}

// Check is one shape assertion an experiment makes about its own results.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Checks []Check
	Notes  []string
	// Trace, when non-nil, is the span tree of one representative
	// operation (recorded when cfg.Trace is set; see Result.traceOp).
	Trace *sim.Trace
}

// table creates and registers a table.
func (r *Result) table(title string, header ...string) *metrics.Table {
	t := metrics.NewTable(title, header...)
	r.Tables = append(r.Tables, t)
	return t
}

// check records a shape assertion.
func (r *Result) check(name string, ok bool, detail string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(detail, args...)})
}

// note records free-form commentary printed under the tables.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// traceOp records the span tree of one representative operation when
// cfg.Trace is set: fn runs on a fresh clock with a trace attached, the
// whole operation wrapped in a root span named site, so the root's
// duration is exactly the operation's end-to-end virtual latency. A check
// pins that equality so the trace cannot silently lose charged time.
func (r *Result) traceOp(cfg *sim.Config, site string, fn func(c *sim.Clock)) {
	if !cfg.Trace {
		return
	}
	tr := sim.NewTrace(site)
	c := sim.NewClock()
	c.SetTrace(tr)
	op := cfg.Begin(c, site)
	fn(c)
	op.End(0)
	r.Trace = tr
	r.note("traced representative op %s: end-to-end %v", site, c.Now())
	r.check("trace root equals end-to-end latency",
		tr.Root() != nil && tr.Root().Duration() == c.Now(),
		"root %v vs clock %v", tr.Root().Duration(), c.Now())
}

// Failed reports whether any check failed.
func (r *Result) Failed() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return true
		}
	}
	return false
}

// Experiment is one registry entry.
type Experiment struct {
	ID    string
	Title string
	Claim string // the paper statement being reproduced
	// Aliases are alternate -run names (e.g. "E-batch" for E24), for
	// callers that address an experiment by topic rather than number.
	Aliases []string
	Run     func(cfg *sim.Config, s Scale) *Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 < E10.
		return expNum(out[i].ID) < expNum(out[j].ID)
	})
	return out
}

func expNum(id string) int {
	n := 0
	for _, ch := range id {
		if ch >= '0' && ch <= '9' {
			n = n*10 + int(ch-'0')
		}
	}
	return n
}

// Lookup finds an experiment by ID or alias (case-sensitive, e.g. "E6"
// or "E-batch").
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
		for _, a := range e.Aliases {
			if a == id {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// Render writes a result as text.
func Render(w io.Writer, r *Result) {
	fmt.Fprintf(w, "==== %s: %s ====\n", r.ID, r.Title)
	for _, t := range r.Tables {
		fmt.Fprintln(w, t.String())
	}
	if r.Trace != nil {
		fmt.Fprintln(w, "span tree (virtual time):")
		fmt.Fprint(w, r.Trace.String())
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %s — %s\n", status, c.Name, c.Detail)
	}
	fmt.Fprintln(w)
}

// ratio formats a speedup factor.
func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
