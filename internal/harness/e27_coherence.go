package harness

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/legobase"
	"github.com/disagglab/disagg/internal/engine/serverless"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
)

func init() {
	register(Experiment{
		ID:      "E27",
		Aliases: []string{"E-coherence"},
		Title:   "Page-cache coherence: invalidation traffic vs hit ratio",
		Claim:   `§2.1/§3.1: multi-node disaggregated engines keep compute-local caches coherent either by eager invalidation fan-out at the durability point (Aurora-style reader invalidation) or by lazy version validation against a page directory (PolarDB Serverless-style LSN checks). Either way coherence is paid for out of the cache hit ratio: as the write fraction rises, invalidation (or stale-validation) traffic rises and locality falls — while acknowledged commits stay readable at every tier (no stale reads).`,
		Run:     runE27,
	})
}

// E27 workload shape: one mixed writer plus three readers over a small set
// of keys spread across distinct pages, so every cache tier holds every hot
// page and each commit's coherence traffic is observable per page.
const (
	e27Keys      = 8
	e27KeyBase   = 1 << 21
	e27KeyStride = 64 // distinct page per key (64 values fit one 4 KiB page)
	e27Readers   = 3
	e27Seed      = 20260808
)

// e27Engine is one engine under test: build returns a fresh engine, site
// names its coherence directory in the registry, replicaIDs are the
// RunOpts.Replica values that address its replica read paths (empty when
// reads go to the primary only), and hitRatio reports cache locality.
type e27Engine struct {
	name       string
	site       string
	replicaIDs []int
	build      func(cfg *sim.Config) engine.Engine
	hitRatio   func(e engine.Engine) float64
}

func statsHitRatio(e engine.Engine) float64 {
	h, m := e.Stats().CacheHits.Load(), e.Stats().CacheMisses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func e27Engines() []e27Engine {
	layout := oltpLayout()
	return []e27Engine{
		{
			name: "aurora (invalidate)", site: "aurora.coherence",
			replicaIDs: []int{1, 2},
			build: func(cfg *sim.Config) engine.Engine {
				return aurora.New(cfg, layout, 256, 2)
			},
			hitRatio: statsHitRatio,
		},
		{
			name: "aurora (bump)", site: "aurora.coherence",
			replicaIDs: []int{1, 2},
			build: func(cfg *sim.Config) engine.Engine {
				e := aurora.New(cfg, layout, 256, 2)
				e.SetCoherenceMode(coherence.ModeBump)
				return e
			},
			hitRatio: statsHitRatio,
		},
		{
			name: "serverless", site: "serverless.coherence",
			// Nodes 1 and 2 are the secondaries (node 0 is the primary).
			replicaIDs: []int{2, 3},
			build: func(cfg *sim.Config) engine.Engine {
				return serverless.New(cfg, layout, 3, 16, 512)
			},
			hitRatio: statsHitRatio,
		},
		{
			name: "legobase", site: "legobase.coherence",
			build: func(cfg *sim.Config) engine.Engine {
				return legobase.New(cfg, layout, 16, 512)
			},
			hitRatio: func(e engine.Engine) float64 {
				return e.(*legobase.Engine).Tiers.CombinedHitRatio()
			},
		},
	}
}

// e27CellResult is one (engine, write fraction) measurement.
type e27CellResult struct {
	coh        sim.CoherenceStats
	hitRatio   float64
	commits    int64
	staleReads int64 // reads that decoded below the acked floor
}

func e27Val(layout heap.Layout, seq uint64) []byte {
	v := make([]byte, layout.ValSize)
	for b := 0; b < 8; b++ {
		v[b] = byte(seq >> (8 * b))
	}
	return v
}

func e27Seq(v []byte) uint64 {
	var s uint64
	for b := 0; b < 8 && b < len(v); b++ {
		s |= uint64(v[b]) << (8 * b)
	}
	return s
}

// e27Cell measures one (engine, write fraction) cell with a DETERMINISTIC
// interleaving: each step mixes one writer op (a write with probability
// writeFrac%) with one read per reader through the engine's replica read
// paths. The lockstep matters — it guarantees reader caches refetch between
// writes, so invalidation (and stale-validation) traffic genuinely tracks
// the write rate instead of racing the goroutine scheduler. Concurrency is
// exercised separately: by e27BatchedCell here (round coalescing needs
// concurrent committers) and by the enginetest coherence probe (stale reads
// under real interleavings and faults).
func e27Cell(eng e27Engine, writeFrac, ops int) e27CellResult {
	layout := oltpLayout()
	cfg := sim.DefaultConfig()
	cfg.Stats = sim.NewRegistry()
	e := eng.build(cfg)
	var commits, staleReads int64
	var issued, acked [e27Keys]uint64
	key := func(i int) uint64 { return uint64(e27KeyBase + i*e27KeyStride) }
	c := sim.NewClock()
	rng := sim.NewRand(e27Seed, writeFrac)
	for op := 0; op < ops; op++ {
		if i := rng.Intn(e27Keys); rng.Intn(100) < writeFrac {
			issued[i]++
			seq := issued[i]
			err := engine.Run(e, c, engine.RunOpts{Retries: 5}, func(tx engine.Tx) error {
				return tx.Write(key(i), e27Val(layout, seq))
			})
			if err == nil {
				acked[i] = seq
				commits++
			}
		}
		for rd := 0; rd < e27Readers; rd++ {
			j := rng.Intn(e27Keys)
			opts := engine.RunOpts{Retries: 5}
			if n := len(eng.replicaIDs); n > 0 {
				opts.Replica = eng.replicaIDs[rd%n]
			}
			floor := acked[j]
			var got []byte
			err := engine.Run(e, c, opts, func(tx engine.Tx) error {
				v, rerr := tx.Read(key(j))
				if rerr != nil {
					return rerr
				}
				got = v
				return nil
			})
			if err != nil {
				continue
			}
			if e27Seq(got) < floor {
				staleReads++
			}
		}
	}
	return e27CellResult{
		coh:        cfg.Stats.Coherence(eng.site),
		hitRatio:   eng.hitRatio(e),
		commits:    commits,
		staleReads: staleReads,
	}
}

// e27BatchedCell exercises the group-commit piggyback: concurrent writers
// on disjoint key partitions commit into the same flush window, so their
// publications coalesce into shared coherence rounds, while concurrent
// readers hold the engine to each key's acked floor.
func e27BatchedCell(eng e27Engine, ops, writers int) e27CellResult {
	layout := oltpLayout()
	cfg := sim.DefaultConfig()
	cfg.Stats = sim.NewRegistry()
	e := eng.build(cfg)
	engine.Caps(e).GroupCommitter.EnableGroupCommit(8, 50*time.Microsecond)
	acked := make([]atomic.Uint64, e27Keys)
	var commits, staleReads atomic.Int64
	key := func(i int) uint64 { return uint64(e27KeyBase + i*e27KeyStride) }
	sim.RunGroup(writers+e27Readers, func(id int, c *sim.Clock) int {
		rng := sim.NewRand(e27Seed, id)
		done := 0
		var issued [e27Keys]uint64
		for op := 0; op < ops; op++ {
			i := rng.Intn(e27Keys)
			if id < writers {
				// Remap onto this writer's key partition so every key
				// keeps a single writer and a monotone sequence.
				i = id + writers*(i/writers)
				issued[i]++
				seq := issued[i]
				err := engine.Run(e, c, engine.RunOpts{Retries: 5}, func(tx engine.Tx) error {
					return tx.Write(key(i), e27Val(layout, seq))
				})
				if err == nil {
					acked[i].Store(seq)
					commits.Add(1)
					done++
				}
				continue
			}
			opts := engine.RunOpts{Retries: 5}
			if n := len(eng.replicaIDs); n > 0 {
				opts.Replica = eng.replicaIDs[op%n]
			}
			floor := acked[i].Load()
			var got []byte
			err := engine.Run(e, c, opts, func(tx engine.Tx) error {
				v, rerr := tx.Read(key(i))
				if rerr != nil {
					return rerr
				}
				got = v
				return nil
			})
			if err != nil {
				continue
			}
			if e27Seq(got) < floor {
				staleReads.Add(1)
			}
			done++
		}
		return done
	})
	return e27CellResult{
		coh:        cfg.Stats.Coherence(eng.site),
		hitRatio:   eng.hitRatio(e),
		commits:    commits.Load(),
		staleReads: staleReads.Load(),
	}
}

func runE27(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E27", Title: "Page-cache coherence sweep"}
	writeFracs := []int{10, 40, 70}
	ops := pick(s, 96, 384)

	results := make(map[string]map[int]e27CellResult)
	var totalStale, totalCommits int64
	for _, eng := range e27Engines() {
		eng := eng
		t := r.table(fmt.Sprintf("E27: %s — coherence traffic vs write fraction (%d readers)", eng.name, e27Readers),
			"write %", "publishes", "rounds", "invalidations", "bumps", "stale validations", "hit ratio", "stale reads")
		results[eng.name] = make(map[int]e27CellResult)
		for _, wf := range writeFracs {
			res := e27Cell(eng, wf, ops)
			results[eng.name][wf] = res
			totalStale += res.staleReads
			totalCommits += res.commits
			t.Row(wf, res.coh.Publishes, res.coh.Rounds, res.coh.Invalidations,
				res.coh.Bumps, res.coh.StaleHits,
				fmt.Sprintf("%.2f", res.hitRatio), res.staleReads)
			if res.commits == 0 {
				r.check(fmt.Sprintf("%s wf=%d acks commits", eng.name, wf), false,
					"0 commits — the cell is vacuous")
			}
		}
	}

	// The safety gate: coherence is only worth measuring if it is correct.
	r.check("no stale read in any cell (acked floor held at every tier)",
		totalStale == 0, "%d stale read(s) across %d commits", totalStale, totalCommits)

	// Eager invalidation traffic must track the write rate.
	inv := results["aurora (invalidate)"]
	r.check("aurora invalidations rise with write fraction",
		inv[70].coh.Invalidations > inv[10].coh.Invalidations,
		"%d (wf=70) vs %d (wf=10)", inv[70].coh.Invalidations, inv[10].coh.Invalidations)
	r.check("aurora hit ratio falls as writes rise (coherence is paid from locality)",
		inv[10].hitRatio > inv[70].hitRatio,
		"%.2f (wf=10) vs %.2f (wf=70)", inv[10].hitRatio, inv[70].hitRatio)

	// Bump mode sends no invalidation messages; staleness is caught lazily
	// at validation time instead.
	var bumpInv, bumpStale int64
	for _, wf := range writeFracs {
		bumpInv += results["aurora (bump)"][wf].coh.Invalidations
		bumpStale += results["aurora (bump)"][wf].coh.StaleHits
	}
	r.check("bump mode: zero invalidation messages, staleness caught at validation",
		bumpInv == 0 && bumpStale > 0, "invalidations=%d staleValidations=%d", bumpInv, bumpStale)

	// Group commit piggyback: coherence rounds ride the shared flush, so
	// concurrent publishes coalesce into fewer fan-out rounds. Coalescing
	// needs concurrency — four writers on disjoint key partitions commit
	// into the same flush window.
	au := e27Engines()[0]
	batched := e27BatchedCell(au, ops, 4)
	r.check("group commit coalesces coherence rounds (rounds < publishes)",
		batched.coh.Rounds < batched.coh.Publishes && batched.staleReads == 0,
		"%d rounds for %d publishes (stale reads %d)",
		batched.coh.Rounds, batched.coh.Publishes, batched.staleReads)

	r.note("invalidations are charged one RDMA-RPC burst per round at site <engine>.coherence.round; bump-mode staleness costs a refetch instead")
	r.traceOp(cfg, "txn.write-coherent", func(c *sim.Clock) {
		e := au.build(cfg)
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(1, make([]byte, oltpLayout().ValSize))
		})
	})
	return r
}
