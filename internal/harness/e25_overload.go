package harness

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/admission"
	"github.com/disagglab/disagg/internal/sim/fault"
)

func init() {
	register(Experiment{
		ID:      "E25",
		Aliases: []string{"E-overload"},
		Title:   "Overload control: admission gates, retry budgets, and breakers vs the retry storm",
		Claim: `§3/§4: disaggregation multiplies the fan-in on shared substrate services (log stores, quorum volumes, raft groups), so a saturated fabric meter stretches every commit. Clients that retry slow or failed requests with zero delay amplify offered load exactly when capacity is scarcest — goodput (SLO-met commits) collapses, and a virtual-time partition becomes a livelock because failed attempts charge no time. Admission gates at the substrate, retry budgets, clock-charged backoff, and a circuit breaker convert the collapse into a flat graceful-degradation knee.`,
		Run: runE25,
	})
}

const (
	e25KeyBase = 1 << 21
	e25HotKeys = 8
	// e25SLOMult sets the client deadline as a multiple of the engine's
	// calibrated uncontended per-op latency: past saturation the meter
	// penalty stretches attempts beyond the deadline.
	e25SLOMult = 4
	// e25Attempts is the client-side retry cap (attempts = 1 + retries).
	e25Attempts = 12
	e25Seed     = 73
)

// e25Gate is the substrate admission policy for the controlled arm: shed
// once a choke-point meter is 4x oversubscribed and queueing is endemic.
// The watermark matches the SLO multiple — the meter penalty applies only
// to the substrate leg of an op, so work admitted at ρ <= MaxUtil still
// meets a deadline of e25SLOMult x the whole-op nominal latency.
var e25Gate = admission.GateOpts{MaxUtil: 4, MinQueued: 0.5, Warmup: 200 * time.Microsecond}

// e25Controls bundles the shared overload-control state for one admitted
// cell: one budget/breaker/shedder per client fleet, as a service would
// deploy them.
type e25Controls struct {
	backoff *admission.Backoff
	budget  *admission.Budget
	breaker *admission.Breaker
	shed    *admission.Shedder
	gate    *admission.Gate
}

func e25NewControls(cfg *sim.Config) *e25Controls {
	return &e25Controls{
		backoff: admission.Default(),
		// 10% retry ratio: a storm cannot more than ~1.1x the offered load.
		budget:  admission.NewBudget(0.1, 8),
		breaker: admission.NewBreaker(8, 2*time.Millisecond),
		shed:    admission.NewShedder(2 * cfg.NICSlots),
		gate:    admission.NewGate(cfg, e25Gate),
	}
}

// e25Cell is one (engine, worker-count, policy) measurement.
type e25Cell struct {
	offered  int           // ops issued by clients
	good     int           // ops committed within SLO
	commits  int64         // engine-acknowledged commits (incl. late)
	attempts int64         // engine-side attempts (storm amplification)
	shed     int64         // engine-side shed (breaker/shedder refusals)
	meanLat  time.Duration // mean engine attempt latency
	makespan time.Duration
	goodput  float64 // SLO-met commits per virtual second
}

// amplification is engine attempts per offered client op.
func (c e25Cell) amplification() float64 {
	if c.offered == 0 {
		return 0
	}
	return float64(c.attempts) / float64(c.offered)
}

// e25Run drives workers x txns hot-key writes through one engine.
//
// The raw arm is the pre-admission client: any attempt that errors or
// overruns the SLO is retried immediately with zero virtual delay, up to
// the attempt cap. The admitted arm routes the same offered load through
// the overload-control layer: a substrate admission gate (cfg.Admission),
// the Run-level breaker and shedder, a shared retry budget, and jittered
// exponential backoff charged to the clock — including a full backoff
// pause when an op is abandoned, so a failing client stops offering load.
func e25Run(cfg *sim.Config, build func(*sim.Config) engine.Engine, workers, txns int, slo time.Duration, admit bool) (e25Cell, *e25Controls) {
	layout := oltpLayout()
	opts := engine.RunOpts{Backoff: admission.NoBackoff}
	var ctl *e25Controls
	if admit {
		acfg := cfg.Clone()
		ctl = e25NewControls(acfg)
		acfg.Admission = ctl.gate
		cfg = acfg
		opts = engine.RunOpts{
			Retries: 2,
			Backoff: ctl.backoff,
			Budget:  ctl.budget,
			Breaker: ctl.breaker,
			Shed:    ctl.shed,
		}
	}
	e := build(cfg)
	var latSum, latN atomic.Int64
	res := sim.RunGroup(workers, func(id int, c *sim.Clock) int {
		rng := sim.NewRand(e25Seed, id)
		good, consecFails := 0, 0
		for i := 0; i < txns; i++ {
			key := e25KeyBase + uint64(rng.Intn(e25HotKeys))
			v := make([]byte, layout.ValSize)
			binary.LittleEndian.PutUint64(v, uint64(id)<<32|uint64(i+1))
			fn := func(tx engine.Tx) error {
				if _, err := tx.Read(key); err != nil {
					return err
				}
				return tx.Write(key, v)
			}
			if admit {
				ctl.budget.Earn()
			}
			failed := true
			for try := 0; ; try++ {
				before := c.Now()
				err := engine.Run(e, c, opts, fn)
				d := c.Now() - before
				latSum.Add(int64(d))
				latN.Add(1)
				if err == nil && d <= slo {
					good++
					failed = false
					break
				}
				if !admit {
					// Zero-delay retry: the client re-offers the failed or
					// late request instantly, amplifying load at saturation.
					if try >= e25Attempts {
						break
					}
					continue
				}
				if err == nil {
					// Late commit: the server already did the work — take
					// the SLO miss, don't re-offer it.
					failed = false
					break
				}
				if try >= e25Attempts || !ctl.budget.TrySpend() {
					break
				}
				ctl.backoff.Wait(c, try)
			}
			if !admit {
				continue
			}
			if !failed {
				consecFails = 0
				continue
			}
			// Escalating client pacing: consecutive failed ops back off
			// exponentially, so a client that keeps being refused stops
			// offering load — and its clock rides out virtual-time fault
			// windows instead of burning the budget inside them. The
			// exponent clamp caps the per-op pace near half a millisecond:
			// enough to traverse a fault window in a handful of ops,
			// without a sustained-shed worker dominating the makespan.
			consecFails++
			esc := consecFails + 1
			if esc > 7 {
				esc = 7
			}
			ctl.backoff.Wait(c, esc)
		}
		return good
	})
	st := e.Stats()
	cell := e25Cell{
		offered:  workers * txns,
		good:     res.TotalOps,
		commits:  st.Commits.Load(),
		attempts: st.Attempts.Load(),
		shed:     st.Shed.Load(),
		makespan: res.MakeSpan,
		goodput:  res.Throughput(),
	}
	if n := latN.Load(); n > 0 {
		cell.meanLat = time.Duration(latSum.Load() / n)
	}
	return cell, ctl
}

// e25Calibrate measures an engine's uncontended steady-state per-op
// latency: one worker, long enough that warmup-cheap early ops (cold
// meters) stop skewing the mean, measured over the second half.
func e25Calibrate(cfg *sim.Config, build func(*sim.Config) engine.Engine, txns int) time.Duration {
	layout := oltpLayout()
	e := build(cfg.Clone())
	c := sim.NewClock()
	rng := sim.NewRand(e25Seed, 0)
	var half time.Duration
	for i := 0; i < txns; i++ {
		if i == txns/2 {
			half = c.Now()
		}
		key := e25KeyBase + uint64(rng.Intn(e25HotKeys))
		v := make([]byte, layout.ValSize)
		binary.LittleEndian.PutUint64(v, uint64(i+1))
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			if _, err := tx.Read(key); err != nil {
				return err
			}
			return tx.Write(key, v)
		})
	}
	return (c.Now() - half) / time.Duration(txns-txns/2)
}

func runE25(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E25", Title: "Overload sweep: goodput collapse without admission control, knee with it"}
	sweep := pick(s, []int{16, 64, 256}, []int{8, 16, 32, 64, 128, 256})
	txns := pick(s, 8, 16)
	calibTxns := pick(s, 64, 128)
	wMax := sweep[len(sweep)-1]

	for _, eng := range e24Engines() {
		nominal := e25Calibrate(cfg, eng.build, calibTxns)
		slo := time.Duration(e25SLOMult) * nominal
		t := r.table(fmt.Sprintf("E25: %s — offered-load sweep, SLO = %d x %v steady-state = %v", eng.name, e25SLOMult, nominal, slo),
			"workers", "raw goodput", "raw lat", "raw att/op", "adm goodput", "adm lat", "adm att/op", "gate shed", "fast-fail")
		var raw, adm []e25Cell
		for _, w := range sweep {
			rc, _ := e25Run(cfg, eng.build, w, txns, slo, false)
			ac, ctl := e25Run(cfg, eng.build, w, txns, slo, true)
			raw = append(raw, rc)
			adm = append(adm, ac)
			t.Row(w,
				fmt.Sprintf("%.0f", rc.goodput), rc.meanLat, fmt.Sprintf("%.1f", rc.amplification()),
				fmt.Sprintf("%.0f", ac.goodput), ac.meanLat, fmt.Sprintf("%.1f", ac.amplification()),
				ctl.gate.Stats().Shed, ac.shed)
		}
		last := len(sweep) - 1
		rawPeak, peakW := 0.0, sweep[0]
		for i, c := range raw {
			if c.goodput > rawPeak {
				rawPeak, peakW = c.goodput, sweep[i]
			}
		}
		r.check(fmt.Sprintf("%s: goodput collapses without admission control", eng.name),
			raw[last].goodput <= 0.5*rawPeak,
			"%.0f at %d workers vs peak %.0f at %d workers", raw[last].goodput, wMax, rawPeak, peakW)
		// The CI gate: past saturation (wMax is >=2x every engine's knee)
		// the admitted arm must hold at least 3x the raw arm's goodput.
		rawAtMax := raw[last].goodput
		if rawAtMax < 1 {
			rawAtMax = 1 // collapse to zero: any admitted goodput passes
		}
		r.check(fmt.Sprintf("%s: admission control holds >=3x goodput at 2x saturation", eng.name),
			adm[last].goodput >= 3*rawAtMax,
			"admitted %.0f vs raw %.0f at %d workers (%.1fx)",
			adm[last].goodput, raw[last].goodput, wMax, adm[last].goodput/rawAtMax)
		r.check(fmt.Sprintf("%s: retry budget caps storm amplification", eng.name),
			raw[last].amplification() >= 2*adm[last].amplification(),
			"raw %.1f vs admitted %.1f attempts/op at %d workers",
			raw[last].amplification(), adm[last].amplification(), wMax)
	}

	// Chaos arm: the fault profiles from the conformance suite. Under the
	// virtual-time partition window the raw client is livelocked — failed
	// zero-delay retries charge (almost) no virtual time, so its clock
	// never reaches the healed epoch and the retry budget burns out inside
	// the window. Backoff charges the clock, so the admitted client rides
	// the window out, and the breaker converts the sustained
	// ErrUnavailable burst into fast-fails.
	// Chaos arm: seeded fault profiles on the conformance suite's injector.
	// drop-storm loses half of all durable-append deliveries, so quorums
	// fail often and the raw client's zero-delay retries amplify offered
	// load; the partition profile blacks the fabric out for a virtual-time
	// window [2ms, 6ms), which livelocks the raw client — its failed
	// retries charge almost no virtual time, so its clock never reaches
	// the heal epoch and the retry budget burns out inside the window.
	// Backoff charges the clock, so the admitted client rides the window
	// out, and the breaker converts the unavailability burst into
	// fast-fails.
	chaosW := 16
	chaosTxns := pick(s, 96, 160)
	au := e24Engines()[0]
	nominal := e25Calibrate(cfg, au.build, calibTxns)
	slo := time.Duration(e25SLOMult) * nominal
	dropStorm := fault.Profile{Name: "drop-storm", Drop: 0.5, Sites: fault.AppendSites}
	partition := fault.Profiles()[5]
	for _, p := range []fault.Profile{dropStorm, partition} {
		t := r.table(fmt.Sprintf("E25: aurora under chaos profile %q (%d workers x %d ops)", p.Name, chaosW, chaosTxns),
			"policy", "SLO-met", "goodput", "commits", "att/op", "makespan", "trips", "fast-fails")

		fcfg := cfg.Clone()
		fcfg.Fault = fault.New(e25Seed, p)
		rc, _ := e25Run(fcfg, au.build, chaosW, chaosTxns, slo, false)

		fcfg = cfg.Clone()
		fcfg.Fault = fault.New(e25Seed, p)
		ac, ctl := e25Run(fcfg, au.build, chaosW, chaosTxns, slo, true)
		bs := ctl.breaker.Stats()

		offered := chaosW * chaosTxns
		t.Row("raw", fmt.Sprintf("%d/%d", rc.good, offered), fmt.Sprintf("%.0f", rc.goodput),
			rc.commits, fmt.Sprintf("%.1f", rc.amplification()), rc.makespan, "-", "-")
		t.Row("admitted", fmt.Sprintf("%d/%d", ac.good, offered), fmt.Sprintf("%.0f", ac.goodput),
			ac.commits, fmt.Sprintf("%.1f", ac.amplification()), ac.makespan, bs.Trips, bs.FastFails)

		switch p.Name {
		case "drop-storm":
			r.check("drop-storm: retry budget caps fault-driven amplification",
				rc.amplification() >= 2*ac.amplification(),
				"raw %.1f vs admitted %.1f attempts/op", rc.amplification(), ac.amplification())
		case "partition":
			rawGood := rc.good
			if rawGood < 1 {
				rawGood = 1
			}
			r.check("partition: backoff rides the window out — admitted completes >=2x the ops",
				ac.good >= 2*rawGood,
				"admitted %d/%d vs raw %d/%d SLO-met", ac.good, offered, rc.good, offered)
			r.check("partition: breaker trips and fast-fails during the window",
				bs.Trips >= 1 && bs.FastFails > 0, "trips=%d fastFails=%d", bs.Trips, bs.FastFails)
			r.check("partition: raw client is livelocked inside the window",
				rc.makespan < 6*time.Millisecond && ac.makespan >= 6*time.Millisecond,
				"raw makespan %v never reaches the heal epoch at 6ms; admitted %v does",
				rc.makespan, ac.makespan)
		}
	}

	r.note("admission gate: shed when a substrate meter reaches rho > %.0f with >= %.0f%% of ops queued; retry budget %.0f%%; breaker %d consecutive unavailables, %v cooldown",
		e25Gate.MaxUtil, 100*e25Gate.MinQueued, 10.0, 8, 2*time.Millisecond)
	r.note("goodput = commits meeting a %dx steady-state SLO per virtual second; late commits count as work, not goodput", e25SLOMult)
	r.traceOp(cfg, "txn.write-aurora", func(c *sim.Clock) {
		e := au.build(cfg)
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(1, make([]byte, oltpLayout().ValSize))
		})
	})
	return r
}
