package harness

import (
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/engine/pilotdb"
	"github.com/disagglab/disagg/internal/engine/polardb"
	"github.com/disagglab/disagg/internal/engine/sharednothing"
	"github.com/disagglab/disagg/internal/engine/snowflake"
	"github.com/disagglab/disagg/internal/engine/socrates"
	"github.com/disagglab/disagg/internal/engine/taurus"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/workload"
)

func oltpLayout() heap.Layout {
	l, err := heap.NewLayout(8192, 96)
	if err != nil {
		panic(err)
	}
	return l
}

// runOLTP drives a TPC-C-lite workload with `workers` clients and reports
// the group result plus per-transaction latency stats.
func runOLTP(e engine.Engine, workers, txns int) (sim.GroupResult, metrics.Summary) {
	var hist []time.Duration
	histCh := make(chan time.Duration, workers*txns)
	w := workload.DefaultTPCC()
	res := sim.RunGroup(workers, func(id int, c *sim.Clock) int {
		g := w.NewGenerator(42, id)
		done := 0
		for i := 0; i < txns; i++ {
			before := c.Now()
			if g.RunOn(e, c, 1) == 1 {
				done++
				histCh <- c.Now() - before
			}
		}
		return done
	})
	close(histCh)
	for d := range histCh {
		hist = append(hist, d)
	}
	return res, metrics.Summarize(hist)
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Log-as-the-database vs page shipping (network cost per transaction)",
		Claim: `§2.1: "To reduce the expensive network I/O cost, Aurora only sends logs rather than the actual data pages over the network"; PolarDB "sends both data pages and logs".`,
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Aurora 6-replica/3-AZ quorum: availability and recovery",
		Claim: `§2.1: "each data segment is six-way replicated over three AZs" with a 4/6 write and 3/6 read quorum; compute recovery does not replay log.`,
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Durability/availability separation: Aurora vs Socrates vs Taurus",
		Claim: `§2.1: Socrates separates durability (XLOG) from availability (page servers); Taurus sends pages to one store and gossips, staying frugal at bounded staleness.`,
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Elasticity: shared-storage scale-out vs shared-nothing rebalancing",
		Claim: `§2.2/§1: shared-storage compute is stateless, so scaling moves no data; shared-nothing must repartition.`,
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Min-max (zone map) pruning on clustered vs shuffled data",
		Claim: `§2.2: Snowflake keeps light-weight min-max indexes over immutable files; pruning works when data is clustered on the predicate column.`,
		Run:   runE5,
	})
}

func runE1(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E1", Title: "Log shipping vs page shipping"}
	workers := pick(s, 4, 8)
	txns := pick(s, 60, 400)
	layout := oltpLayout()

	type row struct {
		name      string
		res       sim.GroupResult
		sum       metrics.Summary
		st        *engine.Stats
		pageBytes int64
	}
	var rows []row
	run := func(name string, e engine.Engine) {
		res, sum := runOLTP(e, workers, txns)
		rows = append(rows, row{name, res, sum, e.Stats(), e.Stats().PageBytes.Load()})
	}
	run("monolithic", monolithic.New(cfg, layout, 1024))
	auE := aurora.New(cfg, layout, 1024, 0)
	run("aurora", auE)
	pol := polardb.New(cfg, layout, 1024)
	run("polardb", pol)
	run("socrates", socrates.New(cfg, layout, 1024, 2))
	// PilotDB ships its log over one-sided RDMA, so its row also exercises
	// the fabric substrate (rdma.* telemetry sites) under this workload.
	run("pilotdb", pilotdb.New(cfg, layout, 1024, pilotdb.Pilot()))

	t := r.table("E1: TPC-C-lite, "+fmt.Sprint(workers)+" clients",
		"engine", "tput(txn/s)", "p50", "p99", "net B/txn", "log B/txn", "page B/txn")
	byName := map[string]row{}
	for _, rw := range rows {
		byName[rw.name] = rw
		commits := rw.st.Commits.Load()
		if commits == 0 {
			commits = 1
		}
		t.Row(rw.name, rw.res.Throughput(), rw.sum.P50, rw.sum.P99,
			rw.st.BytesPerCommit(),
			float64(rw.st.LogBytes.Load())/float64(commits),
			float64(rw.st.PageBytes.Load())/float64(commits))
	}
	au, po, mo := byName["aurora"], byName["polardb"], byName["monolithic"]
	r.check("aurora ships no pages", au.pageBytes == 0, "aurora page bytes = %d", au.pageBytes)
	// Write-path network volume (the claim is specifically about what the
	// writer ships): 6 log copies for aurora vs 3 log copies + 3 page
	// copies for polardb.
	auWrite := 6 * float64(au.st.LogBytes.Load()) / float64(au.st.Commits.Load())
	poWrite := 3 * float64(po.st.LogBytes.Load()+po.st.PageBytes.Load()) / float64(po.st.Commits.Load())
	r.check("aurora write-path bytes/txn ≪ polardb",
		auWrite < poWrite/3,
		"aurora %.0f B/txn vs polardb %.0f B/txn (%.1fx)", auWrite, poWrite, poWrite/auWrite)
	r.check("monolithic uses no network", mo.st.NetBytes.Load() == 0,
		"monolithic net bytes = %d", mo.st.NetBytes.Load())
	r.check("polardb ships pages too", po.pageBytes > 0, "polardb page bytes = %d", po.pageBytes)
	// Fabric reference point: what one transaction's log batch costs to
	// persist on remote PM with the one-sided recipe (§2.3) — the floor
	// that log-as-the-database engines are chasing.
	pm := rdma.NewPMNode(cfg, "logpm", 1<<20)
	fc := sim.NewClock()
	rdma.Connect(cfg, pm, nil).WritePersist(fc, 0, make([]byte, 768))
	r.note("fabric floor: one-sided persist of a 768B log batch on remote PM costs %v", fc.Now())
	r.traceOp(cfg, "txn.write", func(c *sim.Clock) {
		engine.Run(auE, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(1, make([]byte, layout.ValSize))
		})
	})
	return r
}

func runE2(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E2", Title: "Quorum availability and recovery"}
	layout := oltpLayout()
	e := aurora.New(cfg, layout, 1024, 0)
	txns := pick(s, 150, 1000)
	res, _ := runOLTP(e, 2, txns/2)
	r.note("baseline: %d commits at %.0f txn/s", res.TotalOps, res.Throughput())

	t := r.table("E2: failure drill (6 replicas / 3 AZs, W=4 R=3)",
		"scenario", "alive", "writes", "reads")
	probe := func(scenario string) {
		c := sim.NewClock()
		werr := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(1, make([]byte, layout.ValSize)) })
		e.Pool().InvalidateAll()
		rerr := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { _, err := tx.Read(1); return err })
		status := func(err error) string {
			if err == nil {
				return "ok"
			}
			return "UNAVAILABLE"
		}
		t.Row(scenario, e.Volume.Alive(), status(werr), status(rerr))
	}
	probe("healthy")
	e.Volume.FailAZ(0)
	probe("one AZ down")
	wOK := e.Volume.WriteAvailable()
	e.Volume.Replicas[2].Fail()
	probe("AZ + 1 node down")
	r.check("writes survive AZ loss", wOK, "write quorum with 4/6 alive")
	r.check("reads survive AZ+1", e.Volume.ReadAvailable() && !e.Volume.WriteAvailable(),
		"3/6 alive: reads ok, writes blocked")

	// Crash recovery: aurora (quorum poll) vs monolithic (ARIES redo).
	mono := monolithic.New(cfg, layout, 1024)
	runOLTP(mono, 2, txns/2)
	mono.Crash()
	mc := sim.NewClock()
	monoTime, err := mono.Recover(mc)
	if err != nil {
		r.check("monolithic recovers", false, "%v", err)
		return r
	}
	e.Crash()
	ac := sim.NewClock()
	auroraTime, err := e.Recover(ac)
	if err != nil {
		r.check("aurora recovers", false, "%v", err)
		return r
	}
	t2 := r.table("E2b: compute crash recovery", "engine", "recovery time")
	t2.Row("monolithic (ARIES redo)", monoTime)
	t2.Row("aurora (quorum LSN poll)", auroraTime)
	r.check("aurora recovery ≪ monolithic", auroraTime < monoTime/10,
		"aurora %v vs monolithic %v (%.0fx)", auroraTime, monoTime, ratio(monoTime, auroraTime))

	// Replica repair: fail a replica, commit past it, bring it back.
	e2 := aurora.New(cfg, layout, 1024, 0)
	e2.Volume.Replicas[5].Fail()
	c3 := sim.NewClock()
	for i := uint64(0); i < 20; i++ {
		engine.Run(e2, c3, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, make([]byte, layout.ValSize)) })
	}
	rc := sim.NewClock()
	n, err := e2.Volume.RepairReplica(rc, 5, e2.Log())
	r.check("failed replica repairs from peers", err == nil && n > 0 &&
		e2.Volume.Replicas[5].PrefixLSN() == e2.DurableLSN(),
		"shipped %d records in %v", n, rc.Now())
	r.traceOp(cfg, "txn.write-quorum", func(c *sim.Clock) {
		engine.Run(e2, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(99, make([]byte, layout.ValSize))
		})
	})
	return r
}

func runE3(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E3", Title: "Aurora vs Socrates vs Taurus tiering"}
	layout := oltpLayout()
	workers := pick(s, 4, 8)
	txns := pick(s, 60, 400)

	au := aurora.New(cfg, layout, 1024, 0)
	so := socrates.New(cfg, layout, 1024, 2)
	ta := taurus.New(cfg, layout, 1024, 3)

	type row struct {
		name   string
		sum    metrics.Summary
		st     *engine.Stats
		copies string
	}
	var rows []row
	run := func(name string, e engine.Engine, copies string) {
		_, sum := runOLTP(e, workers, txns)
		rows = append(rows, row{name, sum, e.Stats(), copies})
	}
	run("aurora", au, "6x log+pages")
	run("socrates", so, "1x XLOG + 2 page servers + XStore")
	run("taurus", ta, "3x log stores + 3 page stores (async)")

	t := r.table("E3: commit path and replication cost",
		"engine", "commit p50", "commit p99", "net B/txn", "durable copies")
	for _, rw := range rows {
		t.Row(rw.name, rw.sum.P50, rw.sum.P99, rw.st.BytesPerCommit(), rw.copies)
	}
	// Taurus staleness is bounded and converges by gossip.
	lagBefore := ta.MaxPageLag()
	bg := sim.NewClock()
	for i := 0; i < 6 && ta.MaxPageLag() > 0; i++ {
		ta.PageStores.GossipRound(bg)
	}
	r.check("taurus page stores converge via gossip", ta.MaxPageLag() == 0,
		"lag %d -> %d LSNs after gossip", lagBefore, ta.MaxPageLag())
	// Taurus's frugal write fan-out: 3 log copies + 1 page-store copy
	// per batch vs Aurora's 6 full copies.
	auRep := 6 * float64(au.Stats().LogBytes.Load()) / float64(au.Stats().Commits.Load())
	taRep := 4 * float64(ta.Stats().LogBytes.Load()) / float64(ta.Stats().Commits.Load())
	r.check("taurus writer fan-out cheaper than aurora 6-way", taRep < auRep,
		"taurus replicates %.0f B/txn vs aurora %.0f B/txn", taRep, auRep)
	// Socrates: commit latency tracks the XLOG tier only (it does not
	// grow with page-server count). Measured single-worker so scheduling
	// noise cannot skew the comparison.
	_, sum2 := runOLTP(socrates.New(cfg, layout, 1024, 2), 1, txns)
	_, sum6 := runOLTP(socrates.New(cfg, layout, 1024, 6), 1, txns)
	r.check("socrates commit independent of page-server count",
		sum6.P50 < sum2.P50*3/2,
		"p50 with 2 page servers %v vs 6 page servers %v", sum2.P50, sum6.P50)
	r.traceOp(cfg, "txn.write-taurus", func(c *sim.Clock) {
		engine.Run(ta, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(1, make([]byte, layout.ValSize))
		})
	})
	return r
}

func runE4(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E4", Title: "Elastic scale-out: shared-storage vs shared-nothing"}
	layout := oltpLayout()

	// Shared-nothing: load data, then rebalance 4 -> 8.
	sn := sharednothing.New(cfg, layout, 4)
	keys := pick(s, 50_000, 500_000)
	c := sim.NewClock()
	for i := 0; i < keys; i++ {
		key := uint64(i)
		engine.Run(sn, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(key, make([]byte, layout.ValSize)) })
	}
	rc := sim.NewClock()
	moved := sn.Rebalance(rc, 8)
	snTime := rc.Now()

	// Shared-storage OLAP: provision 7 new warehouses (pure control
	// plane), then check each is immediately useful.
	svc := snowflake.NewService(cfg)
	d := workload.TPCH{ScaleRows: pick(s, 20_000, 200_000), Clustered: true, Seed: 1}.Generate()
	svc.LoadTable("lineitem", d.Lineitem)
	wc := sim.NewClock()
	var whs []*snowflake.Warehouse
	for i := 0; i < 7; i++ {
		whs = append(whs, svc.AddWarehouse(wc, 1024))
	}
	whTime := wc.Now()
	qc := sim.NewClock()
	for _, wh := range whs {
		if _, err := wh.Run(qc, func(src func(string) (query.Source, error)) (query.Operator, error) {
			li, err := src("lineitem")
			if err != nil {
				return nil, err
			}
			return workload.Q6(cfg, li, 0, 100, 0, 11, true)
		}); err != nil {
			r.check("warehouse usable", false, "%v", err)
			return r
		}
	}

	t := r.table("E4: doubling compute", "architecture", "data moved", "rescale cost")
	t.Row("shared-nothing 4->8", metrics.FormatBytes(moved), snTime)
	t.Row("shared-storage +7 warehouses", metrics.FormatBytes(0), whTime)
	r.note("time to first query across all 7 new warehouses: %v (reads shared storage, no transfer of ownership)", qc.Now())
	r.check("shared-nothing moves data", moved > 0, "moved %s", metrics.FormatBytes(moved))
	r.check("shared-storage provisioning ≪ rebalancing", whTime < snTime/5,
		"%v vs %v", whTime, snTime)
	r.traceOp(cfg, "olap.q6-warehouse", func(c *sim.Clock) {
		if _, err := whs[0].Run(c, func(src func(string) (query.Source, error)) (query.Operator, error) {
			li, err := src("lineitem")
			if err != nil {
				return nil, err
			}
			return workload.Q6(cfg, li, 0, 100, 0, 11, true)
		}); err != nil {
			panic(err)
		}
	})
	return r
}

func runE5(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E5", Title: "Zone-map pruning"}
	rows := pick(s, 60_000, 600_000)
	t := r.table("E5: TPC-H-lite Q6, selectivity sweep",
		"layout", "sel date range", "pruned", "unpruned", "blocks read/skipped")

	type outcome struct{ pruned, unpruned time.Duration }
	results := map[string]outcome{}
	for _, clustered := range []bool{true, false} {
		d := workload.TPCH{ScaleRows: rows, Clustered: clustered, Seed: 3}.Generate()
		src := query.NewLocalSource(cfg, d.Lineitem)
		layoutName := "clustered"
		if !clustered {
			layoutName = "shuffled"
		}
		for _, window := range []int64{50, 500} {
			runQ := func(prune bool) (time.Duration, string) {
				op, err := workload.Q6(cfg, src, 1000, 1000+window, 0, 11, prune)
				if err != nil {
					panic(err)
				}
				c := sim.NewClock()
				if _, err := query.Collect(c, op); err != nil {
					panic(err)
				}
				// The scan is the first op in the chain; dig stats
				// out via a fresh scan run for block accounting.
				scan, _ := query.NewScan(cfg, src, []string{workload.LPrice},
					[]query.Predicate{{Col: workload.LShipDate, Lo: 1000, Hi: 1000 + window}}, prune)
				query.Collect(sim.NewClock(), scan)
				return c.Now(), fmt.Sprintf("%d/%d", scan.BlocksRead, scan.BlocksSkipped)
			}
			pt, blocks := runQ(true)
			ut, _ := runQ(false)
			t.Row(layoutName, window, pt, ut, blocks)
			if window == 50 {
				results[layoutName] = outcome{pt, ut}
			}
		}
	}
	cl, sh := results["clustered"], results["shuffled"]
	r.check("pruning wins on clustered data", cl.pruned < cl.unpruned/3,
		"%v vs %v (%.1fx)", cl.pruned, cl.unpruned, ratio(cl.unpruned, cl.pruned))
	r.check("pruning is a no-op on shuffled data", sh.pruned > sh.unpruned/2,
		"%v vs %v", sh.pruned, sh.unpruned)
	r.traceOp(cfg, "olap.q6-pruned", func(c *sim.Clock) {
		d := workload.TPCH{ScaleRows: 10_000, Clustered: true, Seed: 3}.Generate()
		op, err := workload.Q6(cfg, query.NewLocalSource(cfg, d.Lineitem), 1000, 1050, 0, 11, true)
		if err != nil {
			panic(err)
		}
		if _, err := query.Collect(c, op); err != nil {
			panic(err)
		}
	})
	return r
}
