package harness

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
	"github.com/disagglab/disagg/internal/sim/profile"
)

func init() {
	register(Experiment{
		ID:      "E30",
		Title:   "Critical-path attribution, tail exemplars, and SLO burn",
		Claim:   `§1/§2.3: disaggregation trades local access latency for fabric round-trips; per-request attribution (DRackSim, arXiv:2305.09977) makes the trade legible, and tail behavior under contention (arXiv:2207.03027) decides viability. Which substrate dominates each engine's commit path, and how does the breakdown shift under faults?`,
		Aliases: []string{"E-profile"},
		Run:     runE30,
	})
}

const (
	e30Workers  = 4
	e30KeysEach = 8
	e30KeyBase  = 40_000
	e30Seed     = 77
)

// e30Run drives a read-modify-write workload with every transaction
// profiled: workers own disjoint key ranges (uncontended) unless hotKeys
// > 0, in which case all workers hammer that many shared keys.
func e30Run(e engine.Engine, p *profile.Profiler, workers, ops, hotKeys int) sim.GroupResult {
	layout := oltpLayout()
	return sim.RunGroup(workers, func(id int, c *sim.Clock) int {
		rng := sim.NewRand(e30Seed, id)
		opts := engine.RunOpts{Retries: 25, Profile: p}
		done := 0
		for i := 0; i < ops; i++ {
			var key uint64
			if hotKeys > 0 {
				key = e30KeyBase + uint64(rng.Intn(hotKeys))
			} else {
				key = e30KeyBase + uint64(id)*e30KeysEach + uint64(rng.Intn(e30KeysEach))
			}
			v := make([]byte, layout.ValSize)
			binary.LittleEndian.PutUint64(v, key<<16|uint64(id)<<8|uint64(i%251)+1)
			err := engine.Run(e, c, opts, func(tx engine.Tx) error {
				if _, err := tx.Read(key); err != nil {
					return err
				}
				return tx.Write(key, v)
			})
			if err == nil {
				done++
			}
		}
		return done
	})
}

// e30Share formats a share as a percentage cell.
func e30Share(a profile.Attribution, comp string) string {
	return fmt.Sprintf("%.1f%%", 100*a.Share(comp))
}

func runE30(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E30", Title: "Critical-path attribution, tail exemplars, SLO burn"}
	ops := pick(s, 120, 600)

	// Arm 1 — clean attribution across the full roster. Every engine runs
	// the same uncontended profiled workload; the analyzer's exclusive
	// self-time attribution must conserve end-to-end latency exactly
	// (checked within 1% to tolerate nothing more than rounding).
	t := r.table("E30: critical-path attribution, clean fabric ("+fmt.Sprint(e30Workers)+" workers)",
		"engine", "txns", "e2e total", "dominant", "rdma", "tcp", "device", "storage", "coherence", "backoff", "residual")
	for _, eng := range e26Engines() {
		ecfg := cfg.Clone()
		e := eng.build(ecfg)
		p := profile.NewProfiler(eng.name, 5)
		e30Run(e, p, e30Workers, ops, 0)
		a := p.Attribution()
		t.Row(eng.name, p.Txns(), a.Total, a.Dominant(),
			e30Share(a, "rdma"), e30Share(a, "tcp"), e30Share(a, "device"), e30Share(a, "storage"),
			e30Share(a, "coherence"), e30Share(a, "backoff"), e30Share(a, profile.Residual))
		gap := a.Sum() - a.Total
		if gap < 0 {
			gap = -gap
		}
		r.check(fmt.Sprintf("%s: components sum to e2e within 1%%", eng.name),
			a.Total > 0 && float64(gap) <= 0.01*float64(a.Total),
			"sum %v vs e2e %v (gap %v over %d txns)", a.Sum(), a.Total, gap, p.Txns())
		r.check(fmt.Sprintf("%s: dominant component is attributable", eng.name),
			a.Dominant() != "" && a.Dominant() != profile.Residual,
			"dominant %q — end-to-end latency must trace to an instrumented substrate, not unbracketed residue", a.Dominant())
	}

	// Arm 2 — attribution shift under fault profiles: the same engine
	// (aurora) and a contended hot-key workload, clean vs delay spikes vs
	// a fabric partition. Injected delays land inside the op brackets, so
	// the fabric components absorb them; conflict retries surface as
	// backoff share.
	t2 := r.table("E30b: aurora attribution shift under faults (hot-key contention)",
		"profile", "txns", "dominant", "rdma", "storage", "backoff", "residual")
	shift := map[string]profile.Attribution{}
	txns := map[string]int64{}
	var tailProf *profile.Profiler
	for _, arm := range []struct {
		name string
		prof string // fault profile name, "" for clean
	}{{"clean", ""}, {"delays", "delays"}, {"partition", "partition"}} {
		ecfg := cfg.Clone()
		if arm.prof != "" {
			for _, fp := range fault.Profiles() {
				if fp.Name == arm.prof {
					ecfg.Fault = fault.New(e30Seed, fp)
				}
			}
		}
		e := aurora.New(ecfg, oltpLayout(), 1024, 1)
		p := profile.NewProfiler("aurora/"+arm.name, 5)
		e30Run(e, p, e30Workers, ops, 4)
		a := p.Attribution()
		shift[arm.name] = a
		txns[arm.name] = p.Txns()
		t2.Row(arm.name, p.Txns(), a.Dominant(),
			e30Share(a, "rdma"), e30Share(a, "storage"), e30Share(a, "backoff"), e30Share(a, profile.Residual))
		if arm.name == "delays" {
			tailProf = p
		}
	}
	// The delays profile injects its spikes inside the op brackets, so they
	// are charged to the faulted component, not smeared into residual: the
	// absolute fabric time per committed transaction must inflate hard.
	perTxn := func(arm, comp string) time.Duration {
		if txns[arm] == 0 {
			return 0
		}
		return shift[arm].Comp[comp] / time.Duration(txns[arm])
	}
	fabricPer := func(arm string) time.Duration { return perTxn(arm, "rdma") + perTxn(arm, "storage") }
	r.check("delay spikes inflate fabric time on the critical path",
		fabricPer("delays") > 2*fabricPer("clean"),
		"fabric time per txn %v clean -> %v under delays (spikes land inside op brackets)",
		fabricPer("clean"), fabricPer("delays"))

	// Deterministic conflict arm: every transaction aborts with ErrConflict
	// twice before committing, so the retry loop's backoff waits are a
	// fixed, scheduler-independent slice of every commit path.
	confP := profile.NewProfiler("aurora/conflict", 1)
	confE := aurora.New(cfg.Clone(), oltpLayout(), 1024, 1)
	sim.RunGroup(1, func(id int, c *sim.Clock) int {
		v := make([]byte, oltpLayout().ValSize)
		for i := 0; i < ops; i++ {
			attempt := 0
			_ = engine.Run(confE, c, engine.RunOpts{Retries: 25, Profile: confP}, func(tx engine.Tx) error {
				attempt++
				if attempt <= 2 {
					return engine.ErrConflict
				}
				return tx.Write(e30KeyBase, v)
			})
		}
		return ops
	})
	confA := confP.Attribution()
	r.check("conflict retries surface as backoff share",
		confA.Share("backoff") > 0.01,
		"backoff %.1f%% of e2e with two forced conflicts per txn", 100*confA.Share("backoff"))

	// Arm 3 — tail exemplars: the delay-spiked run's top-k slowest
	// transactions, each a full replayable span tree.
	xs := tailProf.Exemplars()
	t3 := r.table("E30c: tail exemplars (aurora under delay spikes, top-"+fmt.Sprint(len(xs))+")",
		"rank", "duration", "start", "outcome", "dominant")
	sorted := true
	for i, x := range xs {
		if i > 0 && x.Dur > xs[i-1].Dur {
			sorted = false
		}
		outcome := x.Err
		if outcome == "" {
			outcome = "commit"
		}
		t3.Row(i+1, x.Dur, x.Start, outcome, profile.Analyze(x.Root).Dominant())
	}
	r.check("reservoir is bounded and sorted",
		len(xs) > 0 && len(xs) <= 5 && sorted,
		"%d exemplars retained, slowest first", len(xs))
	r.check("slowest exemplar matches the histogram tail",
		len(xs) > 0 && xs[0].Dur == tailProf.Hist().Max(),
		"exemplar %v vs hist max %v — every p99.9 bucket links to a concrete trace", xs[0].Dur, tailProf.Hist().Max())

	// Arm 4 — SLO burn over virtual time: calibrate a latency target from
	// a clean run's p99, then hold aurora to it clean vs through a fabric
	// partition. The burn rate is the window's violating fraction divided
	// by the error budget (1 - objective): sustainable at <= 1, burning
	// above it.
	calP := profile.NewProfiler("aurora/cal", 1)
	calE := aurora.New(cfg.Clone(), oltpLayout(), 1024, 1)
	e30Run(calE, calP, e30Workers, ops, 0)
	target := 2 * calP.Hist().Quantile(0.99)
	slo := profile.SLO{Target: target, Objective: 0.9, Window: time.Millisecond}

	burn := func(withPartition bool) (profile.Status, time.Duration) {
		ecfg := cfg.Clone()
		if withPartition {
			for _, fp := range fault.Profiles() {
				if fp.Name == "partition" {
					ecfg.Fault = fault.New(e30Seed, fp)
				}
			}
		}
		e := aurora.New(ecfg, oltpLayout(), 1024, 1)
		p := profile.NewProfiler("aurora/slo", 1)
		p.SetSLO(slo)
		res := e30Run(e, p, e30Workers, pick(s, 400, 2000), 0)
		return p.SLO().Snapshot(res.MakeSpan), res.MakeSpan
	}
	cleanSt, cleanEnd := burn(false)
	partSt, partEnd := burn(true)
	t4 := r.table("E30d: SLO burn (target "+target.String()+", objective 90%, 1ms window)",
		"arm", "eval at", "good", "bad", "err frac", "burn")
	t4.Row("clean", cleanEnd, cleanSt.Good, cleanSt.Bad, fmt.Sprintf("%.3f", cleanSt.ErrFrac), fmt.Sprintf("%.2fx", cleanSt.Burn))
	t4.Row("partition", partEnd, partSt.Good, partSt.Bad, fmt.Sprintf("%.3f", partSt.ErrFrac), fmt.Sprintf("%.2fx", partSt.Burn))
	r.check("clean run holds the SLO", cleanSt.Good > 0 && cleanSt.Burn <= 1,
		"burn %.2fx at %v", cleanSt.Burn, cleanEnd)
	r.check("partition burns the SLO budget", partSt.Burn > 1,
		"burn %.2fx at %v (window straddles the [2ms,6ms) partition)", partSt.Burn, partEnd)

	r.traceOp(cfg, "txn.profiled", func(c *sim.Clock) {
		e := aurora.New(cfg, oltpLayout(), 1024, 1)
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(e30KeyBase, make([]byte, oltpLayout().ValSize))
		})
	})
	return r
}
