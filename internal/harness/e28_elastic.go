package harness

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/autoscale"
	"github.com/disagglab/disagg/internal/cluster"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/polardb"
	"github.com/disagglab/disagg/internal/engine/sharednothing"
	"github.com/disagglab/disagg/internal/engine/socrates"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/sim"
)

func init() {
	register(Experiment{
		ID:      "E28",
		Aliases: []string{"E-elastic"},
		Title:   "Elastic compute fleet: scale-out holds the diurnal peak, failover loses nothing",
		Claim: `§4: disaggregation makes compute stateless — a new node attaches to the shared log/volume, warms its cache through the coherence directory, and serves traffic, so a fleet can follow a diurnal demand ramp by provisioning nodes instead of over-provisioning for the peak. A fixed single node saturates at the plateau (latency stretches past any SLO and goodput collapses) while the autoscaled fleet holds p99; and because state lives in shared storage, killing a member mid-peak re-routes its keyspace to survivors without losing one acknowledged commit. The shared-nothing baseline scales through the same API but must physically move data — the elasticity tax of §1.`,
		Run: runE28,
	})
}

const (
	e28KeyBase = 1 << 22
	// e28Peak is the diurnal peak demand in concurrent clients.
	e28Peak = 8
	// e28MaxNodes caps the autoscaled fleet.
	e28MaxNodes = 4
	// e28SLOMult sets the client deadline as a multiple of the calibrated
	// unloaded per-op fleet latency (compute charge included).
	e28SLOMult = 2
)

// e28Names are the shared-storage architectures under test.
var e28Names = []string{"aurora", "socrates", "polardb"}

// e28Spec builds one architecture's fleet spec: a root engine owning the
// substrate, peers attaching to the SAME log/volume and coherence
// directory, and a per-member compute charge so members are finite (the
// saturation a scale-out relieves).
func e28Spec(name string, cfg *sim.Config, compute time.Duration) cluster.Spec {
	layout := oltpLayout()
	switch name {
	case "aurora":
		var root *aurora.Engine
		return cluster.Spec{Name: name, ComputeCost: compute, New: func(id int) engine.Engine {
			if id == 0 {
				root = aurora.New(cfg, layout, 1024, 1)
				return root
			}
			return aurora.Peer(root, id, 1024)
		}}
	case "socrates":
		var root *socrates.Engine
		return cluster.Spec{Name: name, ComputeCost: compute, New: func(id int) engine.Engine {
			if id == 0 {
				root = socrates.New(cfg, layout, 1024, 2)
				root.SnapshotEvery = 0
				return root
			}
			return socrates.Peer(root, id, 1024)
		}}
	case "polardb":
		var root *polardb.Engine
		return cluster.Spec{Name: name, ComputeCost: compute, New: func(id int) engine.Engine {
			if id == 0 {
				root = polardb.New(cfg, layout, 1024)
				root.CheckpointEvery = 0
				return root
			}
			return polardb.Peer(root, id, 1024)
		}}
	}
	panic("unknown architecture " + name)
}

// e28Phase is one demand interval's measurement on one arm.
type e28Phase struct {
	demand   int
	nodes    int           // fleet size serving the phase
	good     int           // ops committed within SLO
	offered  int           // ops issued
	p99      time.Duration // per-op latency p99 within the phase
	dur      time.Duration // phase virtual duration (slowest worker)
	warmTime time.Duration // controller warm/attach work after the phase
}

func (p e28Phase) goodput() float64 {
	if p.dur <= 0 {
		return 0
	}
	return float64(p.good) / p.dur.Seconds()
}

// e28Key maps (client, op) to one of the client's 8 page-aligned hot keys.
// Keys are phase-independent, so caches stay warm across demand intervals
// and each key keeps a single logical writer for the whole trace.
func e28Key(id, i int) uint64 {
	return e28KeyBase + uint64(id*8+i%8)*128
}

// e28Ack records one acknowledged write for the failover audit.
type e28Ack struct {
	key uint64
	seq uint64
}

// e28RunArm drives the diurnal ramp through one fleet. When ctl is non-nil
// the controller ticks between phases (the autoscaled arm); otherwise the
// fleet stays at its initial size (the fixed arm). crashAt >= 0 fires the
// failover drill from worker 0 at that phase's midpoint. All worker clocks
// share one virtual epoch: each phase's workers pre-advance to the wall
// time where the previous phase ended, so the fleet's meters see one
// continuous timeline.
func e28RunArm(f *cluster.Fleet, ctl *cluster.Controller, demands []int, txns, valSize int, slo time.Duration, crashAt int) ([]e28Phase, []e28Ack, error) {
	wall := sim.NewClock()
	phases := make([]e28Phase, 0, len(demands))
	var acks []e28Ack
	var ackMu sync.Mutex
	var crashErr error
	for pi, workers := range demands {
		if workers < 1 {
			workers = 1
		}
		start := wall.Now()
		hist := metrics.NewHist()
		res := sim.RunGroup(workers, func(id int, c *sim.Clock) int {
			c.AdvanceTo(start)
			good := 0
			for i := 0; i < txns; i++ {
				if pi == crashAt && id == 0 && i == txns/2 {
					if err := f.Crash(c, 1); err != nil {
						crashErr = err
					}
				}
				// Page-aligned hot keys, 8 per client: the 128-value stride
				// puts every key on its own 8 KiB page, so two members never
				// share a page and the measurement isolates compute
				// saturation from cross-member page invalidation (which E27
				// measures on purpose).
				key := e28Key(id, i)
				v := make([]byte, valSize)
				seq := uint64(pi)<<32 | uint64(id)<<16 | uint64(i+1)
				binary.LittleEndian.PutUint64(v, seq)
				before := c.Now()
				err := f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 8}}, func(tx engine.Tx) error {
					return tx.Write(key, v)
				})
				d := c.Now() - before
				hist.Record(d)
				if err != nil {
					continue
				}
				ackMu.Lock()
				acks = append(acks, e28Ack{key, seq})
				ackMu.Unlock()
				if d <= slo {
					good++
				}
			}
			return good
		})
		wall.AdvanceTo(res.MakeSpan)
		ph := e28Phase{
			demand:  workers,
			nodes:   f.Size(),
			good:    res.TotalOps,
			offered: workers * txns,
			p99:     hist.Quantile(0.99),
			dur:     wall.Now() - start,
		}
		if ctl != nil {
			ph.warmTime = ctl.Tick(wall).WarmTime
		}
		phases = append(phases, ph)
	}
	return phases, acks, crashErr
}

// e28Calibrate measures the unloaded per-op latency through a one-member
// fleet (no compute charge): the steady-state mean (second half of the
// run, after cold caches stop skewing it) and the warmed-up tail p99 the
// SLO is anchored to.
func e28Calibrate(name string, cfg *sim.Config, txns int) (mean, p99 time.Duration) {
	layout := oltpLayout()
	f := cluster.New(e28Spec(name, cfg, 0), sim.NewClock(), 1)
	c := sim.NewClock()
	hist := metrics.NewHist()
	var half time.Duration
	for i := 0; i < txns; i++ {
		if i == txns/2 {
			half = c.Now()
		}
		key := e28Key(0, i)
		v := make([]byte, layout.ValSize)
		binary.LittleEndian.PutUint64(v, uint64(i+1))
		before := c.Now()
		f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 8}}, func(tx engine.Tx) error {
			return tx.Write(key, v)
		})
		if i >= txns/2 {
			hist.Record(c.Now() - before)
		}
	}
	return (c.Now() - half) / time.Duration(txns-txns/2), hist.Quantile(0.99)
}

// e28Verify re-reads every acknowledged write through the fleet and
// reports how many are lost (unreadable or carrying an older sequence).
func e28Verify(f *cluster.Fleet, acks []e28Ack) (lost int) {
	c := sim.NewClock()
	// Later acks overwrite earlier ones per key; audit the newest only.
	latest := make(map[uint64]uint64, len(acks))
	for _, a := range acks {
		if a.seq > latest[a.key] {
			latest[a.key] = a.seq
		}
	}
	for key, seq := range latest {
		var got []byte
		err := f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 8}}, func(tx engine.Tx) error {
			v, rerr := tx.Read(key)
			if rerr != nil {
				return rerr
			}
			got = v
			return nil
		})
		if err != nil || len(got) < 8 || binary.LittleEndian.Uint64(got) < seq {
			lost++
		}
	}
	return lost
}

func runE28(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E28", Title: "Elastic fleet vs fixed node on the diurnal ramp; mid-peak failover audit"}
	layout := oltpLayout()
	steps := pick(s, 10, 20)
	txns := pick(s, 24, 48)
	calibTxns := pick(s, 64, 128)

	// The demand trace: ramp to the peak, plateau, fall (client counts).
	trace := autoscale.RampTrace(e28Peak, steps)
	demands := make([]int, len(trace))
	for i, d := range trace {
		demands[i] = int(d + 0.5)
		if demands[i] < 1 {
			demands[i] = 1
		}
	}
	// peakAt indexes a plateau phase where the controller (which reacts a
	// phase late) has already provisioned for the full demand.
	peakAt := int(0.55 * float64(steps))

	for _, name := range e28Names {
		// Compute charge = 2x the calibrated substrate latency, making the
		// transaction compute-dominated: the processor-sharing stretch on a
		// saturated member then clears the SLO decisively, while a member
		// serving its fair share stays well inside it. The SLO anchors to
		// the unloaded p99 (not the mean): architectures with a heavy
		// substrate tail — raft appends, snapshot fetches — should not fail
		// the deadline on tail shape alone.
		nominal, tail := e28Calibrate(name, cfg, calibTxns)
		compute := 2 * nominal
		slo := time.Duration(e28SLOMult) * (tail + compute)

		// Fixed arm: one node for the whole trace.
		fixed := cluster.New(e28Spec(name, cfg, compute), sim.NewClock(), 1)
		fixedPh, _, _ := e28RunArm(fixed, nil, demands, txns, layout.ValSize, slo, -1)

		// Autoscaled arm: reactive policy over live meters, fresh substrate.
		scaledF := cluster.New(e28Spec(name, cfg, compute), sim.NewClock(), 1)
		ctl := cluster.NewController(scaledF, autoscale.NewReactive())
		ctl.Max = e28MaxNodes
		scaledPh, _, _ := e28RunArm(scaledF, ctl, demands, txns, layout.ValSize, slo, -1)

		t := r.table(fmt.Sprintf("E28: %s — diurnal ramp, SLO = %d x unloaded p99 %v, compute %v/op, max %d nodes",
			name, e28SLOMult, tail+compute, compute, e28MaxNodes),
			"phase", "demand", "fix nodes", "fix goodput", "fix p99", "elastic nodes", "elastic goodput", "elastic p99", "warm")
		for i := range fixedPh {
			fp, sp := fixedPh[i], scaledPh[i]
			t.Row(i, fp.demand,
				fp.nodes, fmt.Sprintf("%.0f", fp.goodput()), fp.p99,
				sp.nodes, fmt.Sprintf("%.0f", sp.goodput()), sp.p99, sp.warmTime)
		}

		fixPeak, scalePeak := fixedPh[peakAt], scaledPh[peakAt]
		fixGood := fixPeak.goodput()
		if fixGood < 1 {
			fixGood = 1 // total collapse: any elastic goodput passes
		}
		r.check(fmt.Sprintf("%s: elastic fleet holds >=2x fixed-node goodput at the peak", name),
			scalePeak.goodput() >= 2*fixGood,
			"elastic %.0f vs fixed %.0f SLO-met/s at demand %d (%.1fx)",
			scalePeak.goodput(), fixPeak.goodput(), fixPeak.demand, scalePeak.goodput()/fixGood)
		r.check(fmt.Sprintf("%s: elastic p99 stays within SLO at the peak; fixed node blows it", name),
			scalePeak.p99 <= slo && fixPeak.p99 > slo,
			"elastic p99 %v vs fixed p99 %v vs SLO %v", scalePeak.p99, fixPeak.p99, slo)
		// Size() after the final tick: phase rows record the size that
		// served each phase, so the post-trace scale-in shows up here.
		finalSize := scaledF.Size()
		r.check(fmt.Sprintf("%s: the fleet scales out for the peak and back in after it", name),
			scalePeak.nodes > 1 && finalSize < scalePeak.nodes,
			"peak %d nodes, %d after the final controller tick", scalePeak.nodes, finalSize)

		// Failover arm: same ramp, crash member 1 mid-peak. Every
		// acknowledged commit must remain readable through the healed
		// router, and fleet accounting must conserve.
		crashF := cluster.New(e28Spec(name, cfg, compute), sim.NewClock(), 1)
		cctl := cluster.NewController(crashF, autoscale.NewReactive())
		cctl.Max = e28MaxNodes
		crashPh, acks, crashErr := e28RunArm(crashF, cctl, demands, txns, layout.ValSize, slo, peakAt)
		lost := e28Verify(crashF, acks)
		tot := crashF.Totals()
		r.check(fmt.Sprintf("%s: mid-peak crash loses zero acked commits", name),
			crashErr == nil && lost == 0,
			"crash=%v, %d/%d acked writes lost; crash-phase p99 %v; survivors ended at %d nodes",
			crashErr, lost, len(acks), crashPh[peakAt].p99, crashF.Size())
		r.check(fmt.Sprintf("%s: fleet accounting conserves through failover", name),
			tot.Conserved(),
			"attempts %d = commits %d + aborts %d + shed %d", tot.Attempts, tot.Commits, tot.Aborts, tot.Shed)
	}

	// The shared-nothing contrast: same Fleet API, but elasticity must
	// physically re-partition — data moves, where shared storage moves none.
	var sn *sharednothing.Engine
	snSpec := cluster.Spec{
		Name: "shared-nothing",
		New: func(id int) engine.Engine {
			sn = sharednothing.New(cfg, layout, 1)
			return sn
		},
		Rescale: func(c *sim.Clock, n int) int64 { return sn.Rebalance(c, n) },
	}
	c := sim.NewClock()
	snF := cluster.New(snSpec, c, 1)
	for key := uint64(0); key < 256; key++ {
		v := make([]byte, layout.ValSize)
		snF.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 8}}, func(tx engine.Tx) error {
			return tx.Write(key, v)
		})
	}
	before := c.Now()
	snF.ScaleTo(c, e28MaxNodes)
	outCost := c.Now() - before
	movedOut := sn.MovedBytes.Load()
	before = c.Now()
	snF.ScaleTo(c, 1)
	inCost := c.Now() - before
	t := r.table("E28: the elasticity tax — scaling 1 -> 4 -> 1 after 256 writes",
		"architecture", "data moved out", "scale-out cost", "data moved back", "scale-in cost")
	t.Row("shared-storage (aurora/socrates/polardb)", 0, "attach+warm only", 0, "detach only")
	t.Row("shared-nothing", movedOut, outCost, sn.MovedBytes.Load()-movedOut, inCost)
	r.check("shared-nothing pays the data-movement tax; shared storage moves nothing",
		movedOut > 0, "%d bytes moved scaling out", movedOut)

	r.note("demand trace: autoscale.RampTrace over %d phases, peak %d concurrent clients; %d single-key writes per client per phase", steps, e28Peak, txns)
	r.note("each member charges its calibrated-nominal compute per txn through its meter (processor sharing) — the finite resource a scale-out relieves; substrate legs bill their own meters as usual")
	r.note("the reactive controller samples live fleet meters (autoscale.MeterSource) between phases; member attach/warm recovery time is charged to the virtual clock and shown per phase")
	r.traceOp(cfg, "fleet.routed-write", func(c *sim.Clock) {
		v := make([]byte, layout.ValSize)
		if err := snF.Run(c, 7, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 8}}, func(tx engine.Tx) error {
			return tx.Write(7, v)
		}); err != nil {
			panic(err)
		}
	})
	return r
}
