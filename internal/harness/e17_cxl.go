package harness

import (
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/cxl"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/pond"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "CXL memory tiering in an in-memory DBMS (SAP HANA study)",
		Claim: `§3.3 (Ahn et al.): with DB-managed tiering (local delta, CXL main store), "there is virtually no performance drop on TPC-C due to prefetching, but there is 7% to 27% performance drop on TPC-DS".`,
		Run:   runE17,
	})
	register(Experiment{
		ID:    "E18",
		Title: "DirectCXL: CXL vs RDMA disaggregated memory",
		Claim: `§3.3: "Compared to RDMA, it improves the raw latency by 6.2x and the performance of real applications by 3x".`,
		Run:   runE18,
	})
	register(Experiment{
		ID:    "E19",
		Title: "Pond: CXL pooling with ML placement",
		Claim: `§3.3: "pooling memory across a small number of sockets suffices to improve memory utilization" and models "predict how to allocate local and remote memory to VMs to minimize performance disruption".`,
		Run:   runE19,
	})
	register(Experiment{
		ID:    "E20",
		Title: "Multi-writer scalability on shared disaggregated memory",
		Claim: `§4: "Existing cloud databases usually have a single compute node that processes write workloads … It is interesting to support multiple writers, which would be more feasible with memory disaggregation".`,
		Run:   runE20,
	})
}

func runE17(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E17", Title: "CXL tiering"}

	// OLTP: TPC-C-lite transactions. Each transaction is dominated by
	// transaction logic (parsing, locking, logging ~ tens of µs); row
	// accesses ride the prefetcher on sequential rows.
	txns := pick(s, 2000, 20_000)
	rowSize := 256
	nRows := 100_000
	runOLTPTier := func(onCXL bool) time.Duration {
		space := cxl.NewTieredSpace(cfg, nRows*rowSize+1024, nRows*rowSize+1024)
		tier := cxl.TierLocal
		if onCXL {
			tier = cxl.TierCXL
		}
		region, ok := space.Alloc(tier, nRows*rowSize)
		if !ok || region.Tier != tier {
			panic("E17: alloc failed")
		}
		c := sim.NewClock()
		rng := sim.NewRand(31, 0)
		buf := make([]byte, rowSize)
		for i := 0; i < txns; i++ {
			// Transaction logic (parse/plan/lock/log) dominates OLTP.
			c.Advance(60 * time.Microsecond)
			// ~10 row touches; HANA's main-store rows are accessed
			// through prefetch-friendly scans of row groups.
			for j := 0; j < 10; j++ {
				off := uint64(rng.Intn(nRows)) * uint64(rowSize)
				region.Read(c, off, buf, true)
			}
		}
		return c.Now()
	}
	oltpLocal := runOLTPTier(false)
	oltpCXL := runOLTPTier(true)
	oltpDrop := 100 * (float64(oltpCXL)/float64(oltpLocal) - 1)

	// OLAP: scan-heavy analytics (Q1 + Q6 mix) over the main store.
	// HANA's scan kernels are vectorized and close to memory-bandwidth-
	// bound, so the analytic runs use a faster per-core processing rate
	// than the general-purpose default.
	cfgOLAP := cfg.Clone()
	cfgOLAP.CPU.BytesPerSec = 16 * sim.GB
	d := workload.TPCH{ScaleRows: pick(s, 60_000, 600_000), Clustered: true, Seed: 7}.Generate()
	runOLAP := func(onCXL bool) time.Duration {
		var src query.Source
		if onCXL {
			dev := cxl.NewDevice(cfgOLAP, 8*d.Lineitem.NumRows()*8*len(d.Lineitem.Schema.Cols))
			cs, err := query.NewCXLSource(cfgOLAP, dev, d.Lineitem)
			if err != nil {
				panic(err)
			}
			src = cs
		} else {
			src = query.NewLocalSource(cfgOLAP, d.Lineitem)
		}
		c := sim.NewClock()
		q1, _ := workload.Q1(cfgOLAP, src, 2556)
		query.Collect(c, q1)
		q6, _ := workload.Q6(cfgOLAP, src, 0, 2556, 0, 11, false)
		query.Collect(c, q6)
		return c.Now()
	}
	olapLocal := runOLAP(false)
	olapCXL := runOLAP(true)
	olapDrop := 100 * (float64(olapCXL)/float64(olapLocal) - 1)

	t := r.table("E17: local DRAM vs DB-managed CXL main store",
		"workload", "all-local", "CXL-tiered", "drop")
	t.Row("TPC-C-lite (OLTP)", oltpLocal, oltpCXL, fmt.Sprintf("%.1f%%", oltpDrop))
	t.Row("TPC-H-lite Q1+Q6 (OLAP)", olapLocal, olapCXL, fmt.Sprintf("%.1f%%", olapDrop))
	r.check("TPC-C: virtually no drop", oltpDrop < 5,
		"%.1f%% (prefetching hides CXL latency behind txn logic)", oltpDrop)
	r.check("analytics drop lands in the 7-27% band", olapDrop >= 7 && olapDrop <= 27,
		"%.1f%%", olapDrop)
	r.traceOp(cfg, "cxl.row-read", func(c *sim.Clock) {
		space := cxl.NewTieredSpace(cfg, 1<<20, 1<<20)
		region, ok := space.Alloc(cxl.TierCXL, 4096)
		if !ok {
			panic("E17: trace alloc failed")
		}
		region.Read(c, 0, make([]byte, 256), true)
	})
	return r
}

func runE18(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E18", Title: "CXL vs RDMA"}
	// Raw 64B load latency.
	dev := cxl.NewDevice(cfg, 1<<20)
	node := rdma.NewNode(cfg, "swap0", 1<<20)
	qp := rdma.Connect(cfg, node, nil)
	buf := make([]byte, 64)
	cc := sim.NewClock()
	dev.Load(cc, 0, buf)
	rc := sim.NewClock()
	qp.Read(rc, 0, buf)
	dc := sim.NewClock()
	dc.Advance(cfg.DRAM.Cost(64))
	rawRatio := ratio(rc.Now(), cc.Now())

	t := r.table("E18a: raw 64B load", "medium", "latency", "vs DRAM")
	t.Row("local DRAM", dc.Now(), 1.0)
	t.Row("CXL.mem", cc.Now(), ratio(cc.Now(), dc.Now()))
	t.Row("RDMA (swap-style remote memory)", rc.Now(), ratio(rc.Now(), dc.Now()))
	r.check("CXL ~6x lower latency than RDMA", rawRatio > 4 && rawRatio < 9,
		"%.1fx (DirectCXL reports 6.2x)", rawRatio)

	// Application level: pointer-heavy workload (graph-ish chase).
	hops := pick(s, 20_000, 200_000)
	runApp := func(remote func(c *sim.Clock)) time.Duration {
		c := sim.NewClock()
		for i := 0; i < hops; i++ {
			remote(c)
			c.Advance(cfg.CPU.Cost(64)) // per-hop compute
		}
		return c.Now()
	}
	appCXL := runApp(func(c *sim.Clock) { dev.Load(c, 0, buf) })
	appRDMA := runApp(func(c *sim.Clock) { qp.Read(c, 0, buf) })
	appRatio := ratio(appRDMA, appCXL)
	t2 := r.table("E18b: pointer-chase application", "memory", "runtime")
	t2.Row("CXL", appCXL)
	t2.Row("RDMA", appRDMA)
	r.check("application speedup ~3x", appRatio > 2 && appRatio < 7,
		"%.1fx (DirectCXL reports ~3x; compute dilutes the raw gap)", appRatio)
	r.traceOp(cfg, "hop.rdma+cxl", func(c *sim.Clock) {
		qp.Read(c, 0, buf)
		dev.Load(c, 0, buf)
		c.Advance(cfg.CPU.Cost(64))
	})
	return r
}

func runE19(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E19", Title: "CXL pooling"}
	vms := pond.GenerateVMs(17, pick(s, 200, 1000))

	run := func(cxlGB int, pred pond.Predictor) (placed int, util, maxSlow float64) {
		p := pond.NewPool(cfg, 4, 512, cxlGB)
		for _, vm := range vms {
			p.Place(vm, pred)
		}
		return p.PlacedGB(), p.DRAMUtilization(), p.MaxSlowdown()
	}
	noPool, utilNo, _ := run(0, pond.StaticPredictor{Frac: 0})
	pooledStatic, utilStatic, slowStatic := run(1024, pond.StaticPredictor{Frac: 0.5})
	pooledModel, utilModel, slowModel := run(1024, pond.DefaultModel())

	t := r.table("E19: packing VMs onto 4x512GB sockets (+1TB CXL pool)",
		"policy", "VM GB placed", "DRAM util", "max slowdown")
	t.Row("no pooling", noPool, utilNo, fmt.Sprintf("%.0f%%", 0.0))
	t.Row("pool, static 50%", pooledStatic, utilStatic, fmt.Sprintf("%.0f%%", 100*slowStatic))
	t.Row("pool, Pond model", pooledModel, utilModel, fmt.Sprintf("%.0f%%", 100*slowModel))
	r.check("pooling admits more VM memory", pooledModel > noPool,
		"%d vs %d GB placed", pooledModel, noPool)
	r.check("the model bounds disruption vs static pooling", slowModel < slowStatic,
		"max slowdown %.0f%% vs %.0f%%", 100*slowModel, 100*slowStatic)
	r.traceOp(cfg, "cxl.load64", func(c *sim.Clock) {
		dev := cxl.NewDevice(cfg, 1<<20)
		dev.Load(c, 0, make([]byte, 64))
	})
	return r
}

func runE20(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E20", Title: "Multi-writer scalability"}
	txnsPer := pick(s, 200, 1500)
	keys := uint64(pick(s, 20_000, 200_000))

	// Shared substrate: a memory pool holding the data and a remote lock
	// table, as a distributed shared-memory database would use (§3.1).
	runWriters := func(writers int, multiWriter bool) float64 {
		pool := memnode.New(cfg, "dsm0", 1<<30)
		dataBase, err := pool.Alloc(keys * 8)
		if err != nil {
			panic(err)
		}
		lockBase, err := pool.Alloc(1 << 20)
		if err != nil {
			panic(err)
		}
		locks := txn.NewRemoteLockTable(lockBase, 1<<16)
		// The single-writer bottleneck: every transaction funnels
		// through the one writer node's commit pipeline (log append
		// order enforces near-serial commit processing).
		writerNode := sim.NewMeter(2)
		res := sim.RunGroup(writers, func(id int, c *sim.Clock) int {
			qp := pool.Connect(nil)
			rng := sim.NewRand(41, id)
			tx := uint64(id + 1)
			done := 0
			for i := 0; i < txnsPer; i++ {
				k := uint64(rng.Int63n(int64(keys)))
				if multiWriter {
					// Lock via remote CAS, write, unlock.
					if err := locks.Acquire(c, qp, tx, k, txn.AcquireOpts{Retries: 100, Backoff: time.Microsecond}); err != nil {
						continue
					}
					var val [8]byte
					qp.Write(c, dataBase+k*8, val[:])
					locks.Unlock(c, qp, tx, k)
				} else {
					// Funnel through the single writer node: its
					// commit pipeline (logging + apply ≈ 20µs) is
					// the shared resource.
					writerNode.Charge(c, 20*time.Microsecond)
					var val [8]byte
					qp.Write(c, dataBase+k*8, val[:])
				}
				done++
			}
			return done
		})
		return res.Throughput()
	}
	t := r.table("E20: write throughput vs writer nodes", "writers", "single-writer", "multi-writer (shared memory + RDMA locks)")
	var single, multi []float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		sw := runWriters(n, false)
		mw := runWriters(n, true)
		single = append(single, sw)
		multi = append(multi, mw)
		t.Row(n, sw, mw)
	}
	r.check("single-writer plateaus", single[len(single)-1] < single[0]*3,
		"%.0f -> %.0f txn/s from 1 to 16 writers", single[0], single[len(single)-1])
	r.check("multi-writer scales", multi[len(multi)-1] > multi[0]*4,
		"%.0f -> %.0f txn/s from 1 to 16 writers", multi[0], multi[len(multi)-1])
	r.check("multi-writer wins at scale", multi[len(multi)-1] > single[len(single)-1]*2,
		"%.0f vs %.0f txn/s at 16 writers", multi[len(multi)-1], single[len(single)-1])
	r.traceOp(cfg, "txn.locked-write", func(c *sim.Clock) {
		pool := memnode.New(cfg, "dsm-trace", 1<<20)
		dataBase, err := pool.Alloc(64)
		if err != nil {
			panic(err)
		}
		lockBase, err := pool.Alloc(1 << 10)
		if err != nil {
			panic(err)
		}
		locks := txn.NewRemoteLockTable(lockBase, 64)
		qp := pool.Connect(nil)
		if err := locks.Acquire(c, qp, 1, 0, txn.DefaultAcquire); err != nil {
			panic(err)
		}
		var val [8]byte
		qp.Write(c, dataBase, val[:])
		locks.Unlock(c, qp, 1, 0)
	})
	return r
}
