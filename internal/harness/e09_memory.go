package harness

import (
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/legobase"
	"github.com/disagglab/disagg/internal/engine/serverless"
	"github.com/disagglab/disagg/internal/index/bptree"
	"github.com/disagglab/disagg/internal/index/lsm"
	"github.com/disagglab/disagg/internal/index/race"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "LegoBase: two-tier LRU caching and two-tier ARIES recovery",
		Claim: `§3.1: LegoBase "adopts two LRU lists … to maximize the cache hit ratios" and "allow[s] compute nodes to recover from remote memory for fast recovery".`,
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "PolarDB Serverless: shared memory pool benefits",
		Claim: `§3.1: with a shared remote buffer pool, "secondary nodes have the up-to-date view of the data without replaying logs, (re)sizing becomes easy, and pause/resume and failure recovery are made faster".`,
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Disaggregated indexes: RACE hashing, Sherman B+tree, dLSM",
		Claim: `§3.1: RACE is lock-free via one-sided CAS; Sherman batches writes and exploits cheap locks; dLSM shards and offloads compaction.`,
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "TPC-H under memory disaggregation (VLDB'20 study)",
		Claim: `§3.2: remote memory accesses are expensive for large queries, but "a large disaggregated memory pool can prevent the processing of memory-intensive queries from being spilled to secondary storage"; application-managed memory (MonetDB) beats OS-paged (PostgreSQL).`,
		Run:   runE12,
	})
}

func runE9(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E9", Title: "LegoBase two-tier designs"}
	layout := oltpLayout()
	ops := pick(s, 2000, 20_000)

	// (a) Hit ratios: local-only small cache vs two-tier.
	build := func(localPages, remotePages int) *legobase.Engine {
		return legobase.New(cfg, layout, localPages, remotePages)
	}
	drive := func(e *legobase.Engine) {
		c := sim.NewClock()
		// Uniform access over a working set far beyond the local tier:
		// only a second cache level can absorb it.
		w := workload.YCSB{Keys: uint64(200 * layout.PerPage), ReadFrac: 0.95, Theta: 0, ValueSize: layout.ValSize}
		g := w.NewGenerator(7, 0)
		g.RunOn(e, c, ops)
	}
	twoTier := build(16, 512)
	drive(twoTier)
	smallOnly := build(16, 1) // remote tier effectively disabled
	drive(smallOnly)

	l1, r1, s1 := twoTier.Tiers.TierStats()
	l2, r2, s2 := smallOnly.Tiers.TierStats()
	t := r.table("E9a: YCSB-B over a 200-page working set, 16-page local cache",
		"variant", "local hits", "remote hits", "storage fetches", "hit ratio")
	t.Row("two-tier (16 local + 512 remote)", l1, r1, s1, twoTier.Tiers.CombinedHitRatio())
	t.Row("local only (16 local + 1 remote)", l2, r2, s2, smallOnly.Tiers.CombinedHitRatio())
	r.check("two-tier absorbs the working set",
		twoTier.Tiers.CombinedHitRatio() > smallOnly.Tiers.CombinedHitRatio()+0.2,
		"hit ratio %.2f vs %.2f", twoTier.Tiers.CombinedHitRatio(), smallOnly.Tiers.CombinedHitRatio())

	// (b) Recovery: remote-memory checkpoints vs storage ARIES.
	crashAndMeasure := func() (time.Duration, time.Duration) {
		e := build(16, 512)
		e.CheckpointRemoteEvery = 32
		e.CheckpointStorageEvery = 100_000 // storage checkpoint far behind
		c := sim.NewClock()
		g := workload.TPCCLite{Warehouses: 8, Customers: 5000, ValueSize: layout.ValSize}.NewGenerator(1, 0)
		g.RunOn(e, c, pick(s, 300, 2000))
		e.Crash()
		fast, err := e.Recover(sim.NewClock())
		if err != nil {
			panic(err)
		}
		e2 := build(16, 512)
		e2.CheckpointRemoteEvery = 32
		e2.CheckpointStorageEvery = 100_000
		g2 := workload.TPCCLite{Warehouses: 8, Customers: 5000, ValueSize: layout.ValSize}.NewGenerator(1, 0)
		g2.RunOn(e2, sim.NewClock(), pick(s, 300, 2000))
		e2.Crash()
		slow, err := e2.RecoverFromStorageOnly(sim.NewClock())
		if err != nil {
			panic(err)
		}
		return fast, slow
	}
	fast, slow := crashAndMeasure()
	t2 := r.table("E9b: crash recovery", "path", "time")
	t2.Row("two-tier ARIES (from remote memory)", fast)
	t2.Row("classic ARIES (from storage)", slow)
	r.check("remote-memory recovery ≫ faster", fast < slow/2,
		"%v vs %v (%.0fx)", fast, slow, ratio(slow, fast))
	r.traceOp(cfg, "txn.read-twotier", func(c *sim.Clock) {
		engine.Run(twoTier, c, engine.RunOpts{}, func(tx engine.Tx) error {
			_, err := tx.Read(1)
			return err
		})
	})
	return r
}

func runE10(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E10", Title: "Shared remote buffer pool"}
	layout := oltpLayout()
	txns := pick(s, 200, 1500)

	sv := serverless.New(cfg, layout, 2, 32, 2048)
	au := aurora.New(cfg, layout, 2048, 1)
	g := workload.DefaultTPCC()
	gen := g.NewGenerator(5, 0)
	c := sim.NewClock()
	gen.RunOn(sv, c, txns)
	gen2 := g.NewGenerator(5, 0)
	c2 := sim.NewClock()
	gen2.RunOn(au, c2, txns)

	// Secondary freshness: write on primary, read on secondary.
	val := make([]byte, layout.ValSize)
	val[0] = 0xAB
	engine.Run(sv, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(77, val) })
	fresh := false
	sv.ReadReplica(c, 1, func(tx engine.Tx) error {
		v, err := tx.Read(77)
		if err != nil {
			return err
		}
		fresh = v[0] == 0xAB
		return nil
	})
	r.check("secondary reads are fresh without log replay", fresh, "read-after-write on node 1")

	// Failover: serverless promotes into a warm shared pool; aurora's
	// new writer starts cold (recovery itself is fast for both; the
	// difference is the post-failover warm-up).
	measureFailover := func(e engine.Engine, rec engine.Recoverer) (time.Duration, time.Duration) {
		rec.Crash()
		rc := sim.NewClock()
		d, err := rec.Recover(rc)
		if err != nil {
			panic(err)
		}
		// First 50 transactions after failover (cache warm-up cost).
		wc := sim.NewClock()
		gw := g.NewGenerator(9, 1)
		gw.RunOn(e, wc, 50)
		return d, wc.Now()
	}
	svFail, svWarm := measureFailover(sv, sv)
	auFail, auWarm := measureFailover(au, au)
	t := r.table("E10: failover and warm-up", "engine", "failover", "first-50-txn time")
	t.Row("polardb-serverless", svFail, svWarm)
	t.Row("aurora (cold writer cache)", auFail, auWarm)
	r.check("serverless warm-up ≪ cold-cache engine", svWarm < auWarm,
		"%v vs %v", svWarm, auWarm)

	// Resize: adding a compute node is metadata-only.
	rc := sim.NewClock()
	sv.AddNode(rc, 32)
	r.check("scale-out is metadata-only", rc.Now() < time.Millisecond,
		"AddNode took %v, no pages moved", rc.Now())
	r.traceOp(cfg, "txn.write-serverless", func(c *sim.Clock) {
		engine.Run(sv, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(78, val)
		})
	})
	return r
}

func runE11(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E11", Title: "Index structures on disaggregated memory"}
	clients := []int{1, 2, 4, 8}
	opsPer := pick(s, 300, 2000)
	prefill := pick(s, 2000, 20_000)

	// (a) RACE lock-free hash vs lock-based remote hash.
	t := r.table("E11a: hash index, YCSB-B ops/s vs clients", "clients", "race (lock-free)", "lock-based")
	var raceTput, lockTput []float64
	for _, n := range clients {
		pool := memnode.New(cfg, "m0", 512<<20)
		h, err := race.New(cfg, pool, 4, 256)
		if err != nil {
			panic(err)
		}
		seedCl := h.Attach(1000, nil)
		sc := sim.NewClock()
		for i := uint64(0); i < uint64(prefill); i++ {
			seedCl.Put(sc, i, []byte("seed-value-abcdef"))
		}
		lt := txn.NewRemoteLockTable(0, 1<<16)
		lockNode := memnode.New(cfg, "locks", 1<<20)

		run := func(locked bool) float64 {
			res := sim.RunGroup(n, func(id int, c *sim.Clock) int {
				cl := h.Attach(uint64(id+1), nil)
				lqp := lockNode.Connect(nil)
				g := workload.YCSBB(uint64(prefill)).NewGenerator(11, id)
				for i := 0; i < opsPer; i++ {
					op := g.Next()
					if locked {
						if err := lt.Acquire(c, lqp, uint64(id+1), op.Key, txn.AcquireOpts{Retries: 1000, Backoff: time.Microsecond}); err != nil {
							continue
						}
					}
					if op.Read {
						cl.Get(c, op.Key)
					} else {
						cl.Put(c, op.Key, []byte("updated-value-xyz"))
					}
					if locked {
						lt.Unlock(c, lqp, uint64(id+1), op.Key)
					}
				}
				return opsPer
			})
			return res.Throughput()
		}
		rf := run(false)
		lf := run(true)
		raceTput = append(raceTput, rf)
		lockTput = append(lockTput, lf)
		t.Row(n, rf, lf)
	}
	r.check("race beats lock-based at every client count",
		allGreater(raceTput, lockTput),
		"lock-free saves 2 extra fabric ops per access")
	r.check("race read throughput scales with clients",
		raceTput[len(raceTput)-1] > raceTput[0]*2,
		"%.0f -> %.0f ops/s from 1 to %d clients", raceTput[0], raceTput[len(raceTput)-1], clients[len(clients)-1])

	// (b) Sherman vs naive B+tree.
	t2 := r.table("E11b: B+tree, 50/50 read-write ops/s vs clients", "clients", "sherman", "naive (lock-coupled)")
	var shermanTput, naiveTput []float64
	for _, n := range clients {
		run := func(opt bptree.Options) float64 {
			pool := memnode.New(cfg, "m0", 512<<20)
			tr, err := bptree.New(cfg, pool, opt)
			if err != nil {
				panic(err)
			}
			seed := tr.Attach(999, nil)
			sc := sim.NewClock()
			for i := uint64(1); i <= uint64(prefill); i++ {
				seed.Put(sc, i, i)
			}
			res := sim.RunGroup(n, func(id int, c *sim.Clock) int {
				cl := tr.Attach(uint64(id+1), nil)
				g := sim.NewRand(13, id)
				for i := 0; i < opsPer; i++ {
					k := uint64(g.Int63n(int64(prefill))) + 1
					if g.Intn(2) == 0 {
						cl.Get(c, k)
					} else {
						cl.Put(c, k, k)
					}
				}
				return opsPer
			})
			return res.Throughput()
		}
		sh := run(bptree.Sherman())
		na := run(bptree.Naive())
		shermanTput = append(shermanTput, sh)
		naiveTput = append(naiveTput, na)
		t2.Row(n, sh, na)
	}
	r.check("sherman beats the lock-coupled baseline",
		allGreater(shermanTput, naiveTput), "optimistic reads + doorbell batching + cheap locks")

	// (c) dLSM: write throughput, remote vs client compaction, sharding.
	t3 := r.table("E11c: LSM writes", "variant", "put ops/s")
	lsmPuts := opsPer * 32
	runLSM := func(shards int, remote bool) float64 {
		pool := memnode.New(cfg, "m0", 512<<20)
		tr := lsm.New(cfg, pool, lsm.Options{Shards: shards, MemtableEntries: 128, CompactAt: 3, RemoteCompaction: remote})
		// One writer: the comparison isolates flush/compaction path
		// costs from goroutine scheduling noise.
		res := sim.RunGroup(1, func(id int, c *sim.Clock) int {
			cl := tr.Attach(nil)
			for i := 0; i < lsmPuts; i++ {
				cl.Put(c, uint64(i)*2654435761%1_000_000_007, uint64(i))
			}
			return lsmPuts
		})
		if tr.Compactions() == 0 {
			panic("E11: no compactions triggered")
		}
		return res.Throughput()
	}
	dlsm := runLSM(4, true)
	clientComp := runLSM(4, false)
	oneShard := runLSM(1, true)
	t3.Row("dLSM (4 shards, remote compaction)", dlsm)
	t3.Row("client-driven compaction", clientComp)
	t3.Row("single shard", oneShard)
	r.check("remote compaction beats client-driven", dlsm > clientComp,
		"%.0f vs %.0f ops/s", dlsm, clientComp)
	r.check("sharding helps concurrent writers", dlsm > oneShard,
		"%.0f vs %.0f ops/s", dlsm, oneShard)

	// (d) LSM writes vs B+tree writes (write-optimized claim).
	bt := func() float64 {
		pool := memnode.New(cfg, "m0", 512<<20)
		tr, _ := bptree.New(cfg, pool, bptree.Sherman())
		res := sim.RunGroup(1, func(id int, c *sim.Clock) int {
			cl := tr.Attach(uint64(id+1), nil)
			for i := 0; i < lsmPuts; i++ {
				cl.Put(c, uint64(i)*2654435761%1_000_000_007+1, uint64(i))
			}
			return lsmPuts
		})
		return res.Throughput()
	}()
	r.check("LSM sustains higher write throughput than the B+tree", dlsm > bt,
		"dLSM %.0f vs sherman %.0f puts/s", dlsm, bt)
	r.traceOp(cfg, "index.put-sherman", func(c *sim.Clock) {
		pool := memnode.New(cfg, "trace0", 1<<26)
		tr, err := bptree.New(cfg, pool, bptree.Sherman())
		if err != nil {
			panic(err)
		}
		tr.Attach(1, nil).Put(c, 42, 42)
	})
	return r
}

func allGreater(a, b []float64) bool {
	for i := range a {
		if a[i] <= b[i] {
			return false
		}
	}
	return true
}

func runE12(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E12", Title: "TPC-H under memory disaggregation"}
	rows := pick(s, 40_000, 400_000)
	d := workload.TPCH{ScaleRows: rows, Clustered: false, Seed: 5}.Generate()
	totalBlocks := d.Lineitem.NumBlocks() * len(d.Lineitem.Schema.Cols)

	// (a) Local-memory fraction sweep for a scan-heavy query (Q1):
	// application-managed caching keeps hot blocks local; OS-paged
	// caching (tiny effective cache) pays the fabric every time.
	t := r.table("E12a: Q1 runtime vs compute-local memory fraction",
		"local fraction", "app-managed", "OS-paged")
	var appTimes []time.Duration
	fracs := []float64{1.0, 0.5, 0.25, 0.125}
	for _, f := range fracs {
		cacheBlocks := int(f * float64(totalBlocks))
		runQ1 := func(cache int) time.Duration {
			pool := memnode.New(cfg, "m0", 1<<30)
			src, err := query.NewRemoteSource(cfg, pool, d.Lineitem, nil, cache)
			if err != nil {
				panic(err)
			}
			// Warm pass (populate cache), then measured pass.
			op, _ := workload.Q1(cfg, src, 2556)
			query.Collect(sim.NewClock(), op)
			op2, _ := workload.Q1(cfg, src, 2556)
			c := sim.NewClock()
			query.Collect(c, op2)
			return c.Now()
		}
		app := runQ1(cacheBlocks)
		osPaged := runQ1(cacheBlocks / 8) // the OS keeps most of the "cache" remote
		appTimes = append(appTimes, app)
		t.Row(fmt.Sprintf("%.3f", f), app, osPaged)
		if app > osPaged {
			r.check("app-managed beats OS-paged", false, "at fraction %.3f: %v vs %v", f, app, osPaged)
		}
	}
	r.check("penalty grows as memory moves remote",
		appTimes[len(appTimes)-1] > appTimes[0],
		"Q1: %v at 100%% local -> %v at 12.5%% local", appTimes[0], appTimes[len(appTimes)-1])

	// (b) Spill behavior for a memory-hungry join (Q3): the remote
	// memory pool rescues queries that would spill to SSD.
	li := query.NewLocalSource(cfg, d.Lineitem)
	ord := query.NewLocalSource(cfg, d.Orders)
	runQ3 := func(target query.SpillTarget, budget int) (time.Duration, int64) {
		b := query.NewMemoryBudget(cfg, budget, target)
		op, err := workload.Q3(cfg, li, ord, 2000, b)
		if err != nil {
			panic(err)
		}
		c := sim.NewClock()
		if _, err := query.Collect(c, op); err != nil {
			panic(err)
		}
		return c.Now(), b.SpilledBytes
	}
	budget := rows / 4 * 4 // bytes; forces a large spill fraction
	tNone, _ := runQ3(query.SpillNone, 0)
	tRemote, spillR := runQ3(query.SpillRemote, budget)
	tSSD, spillS := runQ3(query.SpillSSD, budget)
	t2 := r.table("E12b: Q3 join under memory pressure", "memory", "runtime", "spilled")
	t2.Row("unlimited local", tNone, metrics.FormatBytes(0))
	t2.Row("budget + remote-memory pool", tRemote, metrics.FormatBytes(spillR))
	t2.Row("budget + SSD spill", tSSD, metrics.FormatBytes(spillS))
	r.check("remote memory pool prevents the SSD spill penalty",
		tRemote < tSSD && tNone < tRemote,
		"none %v < remote %v < ssd %v", tNone, tRemote, tSSD)
	r.traceOp(cfg, "olap.q1-local", func(c *sim.Clock) {
		op, err := workload.Q1(cfg, li, 2556)
		if err != nil {
			panic(err)
		}
		if _, err := query.Collect(c, op); err != nil {
			panic(err)
		}
	})
	return r
}
