package harness

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/legobase"
	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/engine/pilotdb"
	"github.com/disagglab/disagg/internal/engine/polardb"
	"github.com/disagglab/disagg/internal/engine/serverless"
	"github.com/disagglab/disagg/internal/engine/snowflake"
	"github.com/disagglab/disagg/internal/engine/socrates"
	"github.com/disagglab/disagg/internal/engine/taurus"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/storagenode"
	"github.com/disagglab/disagg/internal/wal"
)

func init() {
	register(Experiment{
		ID:      "E29",
		Aliases: []string{"E-recovery"},
		Title:   "Bounded crash recovery: checkpointing keeps recovery flat while the unchecked log grows it linearly",
		Claim:   `§2/§4: disaggregation's promise that a crashed compute node is cheap to replace holds only if recovery stays bounded — Socrates makes the log a first-class tiered service precisely so its tail stays small, and the disaggregation surveys name bounded recovery as a core requirement. Without checkpointing, every engine whose Recover redoes the log replays an ever-longer tail, so recovery time grows linearly with uptime; with the checkpoint coordinator (flush durable pages, publish a recovery horizon, truncate below it) recovery replays only the post-horizon tail and stays flat across a 10x log-length sweep. The same lifecycle bounds the storage tier: a replacement storage node adopts checkpointed page images plus the retained tail instead of replaying the full history. Every crash drill must lose zero acknowledged commits.`,
		Run:     runE29,
	})
}

// e29Keys is the hot-key working set. Keeping it small (one heap page) and
// fixed makes the page-fetch component of recovery constant across the
// sweep, so the measured growth isolates log replay.
const e29Keys = 4

// e29Layout uses wide values so the retained log's byte volume — the
// quantity checkpointing bounds — dominates fixed device base latencies in
// the recovery measurement.
func e29Layout() heap.Layout {
	l, err := heap.NewLayout(8192, 1536)
	if err != nil {
		panic(err)
	}
	return l
}

// e29Key maps a sweep index onto the hot set, aligned so all keys share
// one page.
func e29Key(layout heap.Layout, i int) uint64 {
	base := uint64(layout.PerPage) * 100_000
	return base + uint64(i%e29Keys)
}

// e29Arm is one (engine, log length, checkpointing on/off) measurement.
type e29Arm struct {
	txns    int
	recover time.Duration
	lost    int
	horizon wal.LSN
}

// e29Sweep drives txns single-writer transactions over the hot keys,
// checkpointing every ckptEvery commits when ckptEvery > 0, then crashes
// and recovers the engine and audits every acknowledged write. The
// returned arm carries the recovery time and the loss count.
func e29Sweep(e engine.Engine, layout heap.Layout, txns, ckptEvery int) (e29Arm, error) {
	arm := e29Arm{txns: txns}
	r := engine.Caps(e).Recoverer
	cp := engine.Caps(e).Checkpointer
	c := sim.NewClock()
	acked := make(map[uint64]uint64, e29Keys)
	for i := 0; i < txns; i++ {
		key := e29Key(layout, i)
		seq := uint64(i + 1)
		v := make([]byte, layout.ValSize)
		binary.LittleEndian.PutUint64(v, seq)
		if err := engine.Run(e, c, engine.RunOpts{Retries: 8}, func(tx engine.Tx) error {
			return tx.Write(key, v)
		}); err != nil {
			return arm, fmt.Errorf("txn %d: %w", i, err)
		}
		acked[key] = seq
		if ckptEvery > 0 && cp != nil && (i+1)%ckptEvery == 0 {
			if err := cp.Checkpoint(c); err != nil {
				return arm, fmt.Errorf("checkpoint at txn %d: %w", i, err)
			}
		}
	}
	r.Crash()
	// The replacement node starts a fresh meter epoch: recovery time must
	// measure replay work, not the dead node's accumulated queue backlog.
	rc := sim.NewClock()
	rc.Reset()
	d, err := r.Recover(rc)
	if err != nil {
		return arm, fmt.Errorf("recover: %w", err)
	}
	arm.recover = d
	if cp != nil {
		arm.horizon = cp.RecoveryHorizon()
	}
	for key, seq := range acked {
		var got []byte
		err := engine.Run(e, c, engine.RunOpts{Retries: 8}, func(tx engine.Tx) error {
			v, rerr := tx.Read(key)
			if rerr != nil {
				return rerr
			}
			got = v
			return nil
		})
		if err != nil || len(got) < 8 || binary.LittleEndian.Uint64(got) != seq {
			arm.lost++
		}
	}
	st := e.Stats()
	if st.Attempts.Load() != st.Commits.Load()+st.Aborts.Load()+st.Shed.Load() {
		return arm, fmt.Errorf("attempts accounting violated: %d != %d+%d+%d",
			st.Attempts.Load(), st.Commits.Load(), st.Aborts.Load(), st.Shed.Load())
	}
	return arm, nil
}

// e29RebuildArm measures the storage-tier rebuild the log-as-database
// engines (Aurora, Taurus) depend on: a replacement storage node catching
// up from a healthy peer and the authoritative log. Without the lifecycle
// the full history re-ships; with it the node adopts checkpointed page
// images and tail-replays only above the horizon.
func e29RebuildArm(cfg *sim.Config, txns, ckptEvery int) (time.Duration, error) {
	layout := e29Layout()
	log := wal.NewLog()
	survivor := storagenode.NewReplica(cfg, "survivor", 0, layout, 1)
	c := sim.NewClock()
	for i := 0; i < txns; i++ {
		key := e29Key(layout, i)
		v := make([]byte, layout.ValSize)
		binary.LittleEndian.PutUint64(v, uint64(i+1))
		rec := wal.Record{Type: wal.TypeUpdate, TxID: uint64(i + 1), PageID: uint64(layout.PageOf(key)), Key: key, After: v}
		rec.LSN = log.Append(rec)
		if err := survivor.Ingest(c, []wal.Record{rec}); err != nil {
			return 0, err
		}
		if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
			h := log.Head() - 1
			survivor.AdvanceHorizon(c, h)
			log.TruncateBefore(h + 1)
		}
	}
	fresh := storagenode.NewReplica(cfg, "replacement", 1, layout, 1)
	rc := sim.NewClock()
	rc.Reset() // fresh epoch: rebuild time, not the survivor's queue backlog
	if _, err := fresh.CatchUpFrom(rc, survivor, log); err != nil {
		return 0, err
	}
	// The replacement must actually serve the newest value, whichever
	// source (adopted image or tail replay) carried it.
	lastKey := e29Key(layout, txns-1)
	data, err := fresh.ReadPage(rc, layout.PageOf(lastKey), 0)
	if err != nil {
		return 0, err
	}
	v, err := layout.ReadValue(data, lastKey)
	if err != nil {
		return 0, err
	}
	want := uint64(txns) // the final transaction wrote lastKey
	if got := binary.LittleEndian.Uint64(v); got != want {
		return 0, fmt.Errorf("replacement replica serves seq %d, want %d", got, want)
	}
	return rc.Now(), nil
}

func runE29(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E29", Title: "Recovery time vs log length: checkpoint + truncate vs unbounded log"}
	layout := e29Layout()

	base := pick(s, 480, 960)
	mults := pick(s, []int{1, 4, 10}, []int{1, 2, 4, 7, 10})
	ckptEvery := base / 2

	// The sweep engines are the redo class: their Recover replays the
	// retained log, so an unbounded log is directly an unbounded restart.
	// (The log-as-database engines recover compute in O(1) by design —
	// their unbounded cost is the storage-rebuild arm below.)
	sweep := []struct {
		name  string
		build func() engine.Engine
	}{
		{"monolithic", func() engine.Engine { return monolithic.New(cfg, layout, 1024) }},
		{"snowflake-kv", func() engine.Engine { return snowflake.NewKV(cfg, layout) }},
		{"legobase", func() engine.Engine {
			e := legobase.New(cfg, layout, 64, 4096)
			e.CheckpointRemoteEvery = 0 // lifecycle driven explicitly by the sweep
			e.CheckpointStorageEvery = 0
			return e
		}},
	}

	for _, eng := range sweep {
		t := r.table(fmt.Sprintf("E29: %s — recovery time across a %dx log-length sweep (checkpoint every %d commits vs never)",
			eng.name, mults[len(mults)-1], ckptEvery),
			"txns", "unchecked recovery", "checkpointed recovery", "horizon", "acked lost")
		var plain, ckpt []e29Arm
		for _, m := range mults {
			txns := base * m
			pa, err := e29Sweep(eng.build(), layout, txns, 0)
			if err != nil {
				r.check(fmt.Sprintf("%s: unchecked arm at %d txns runs clean", eng.name, txns), false, "%v", err)
				continue
			}
			ca, err := e29Sweep(eng.build(), layout, txns, ckptEvery)
			if err != nil {
				r.check(fmt.Sprintf("%s: checkpointed arm at %d txns runs clean", eng.name, txns), false, "%v", err)
				continue
			}
			plain = append(plain, pa)
			ckpt = append(ckpt, ca)
			t.Row(txns, pa.recover, ca.recover, ca.horizon, pa.lost+ca.lost)
		}
		if len(plain) < 2 {
			continue
		}
		first, last := 0, len(plain)-1
		r.check(fmt.Sprintf("%s: checkpointed recovery stays flat (within 1.5x) across the sweep", eng.name),
			ckpt[last].recover <= ckpt[first].recover*3/2,
			"%v at %d txns vs %v at %d txns (%.2fx)",
			ckpt[last].recover, ckpt[last].txns, ckpt[first].recover, ckpt[first].txns,
			ratio(ckpt[last].recover, ckpt[first].recover))
		r.check(fmt.Sprintf("%s: unchecked recovery grows >=5x with the log", eng.name),
			plain[last].recover >= plain[first].recover*5,
			"%v at %d txns vs %v at %d txns (%.2fx)",
			plain[last].recover, plain[last].txns, plain[first].recover, plain[first].txns,
			ratio(plain[last].recover, plain[first].recover))
		lost := 0
		for i := range plain {
			lost += plain[i].lost + ckpt[i].lost
		}
		r.check(fmt.Sprintf("%s: zero acked commits lost across every arm", eng.name),
			lost == 0, "%d lost", lost)
		r.check(fmt.Sprintf("%s: every checkpointed arm published a recovery horizon", eng.name),
			ckpt[last].horizon > 0, "horizon %d after %d txns", ckpt[last].horizon, ckpt[last].txns)
	}

	// Storage-node rebuild: the log-as-database analogue of the sweep.
	{
		t := r.table(fmt.Sprintf("E29: storage-node rebuild (aurora/taurus substrate) — replacement catch-up across a %dx sweep", mults[len(mults)-1]),
			"records", "unchecked rebuild", "checkpointed rebuild")
		var plain, ckpt []time.Duration
		ok := true
		for _, m := range mults {
			txns := base * m
			pd, err := e29RebuildArm(cfg, txns, 0)
			if err == nil {
				var cd time.Duration
				cd, err = e29RebuildArm(cfg, txns, ckptEvery)
				if err == nil {
					plain = append(plain, pd)
					ckpt = append(ckpt, cd)
					t.Row(txns, pd, cd)
					continue
				}
			}
			ok = false
			r.check(fmt.Sprintf("rebuild arm at %d records runs clean", txns), false, "%v", err)
		}
		if ok && len(plain) >= 2 {
			first, last := 0, len(plain)-1
			r.check("storage rebuild: checkpointed catch-up stays flat (within 1.5x)",
				ckpt[last] <= ckpt[first]*3/2,
				"%v vs %v (%.2fx)", ckpt[last], ckpt[first], ratio(ckpt[last], ckpt[first]))
			r.check("storage rebuild: unchecked catch-up grows >=5x with the log",
				plain[last] >= plain[first]*5,
				"%v vs %v (%.2fx)", plain[last], plain[first], ratio(plain[last], plain[first]))
		}
	}

	// Crash drill across the full recoverable roster: every engine runs
	// with periodic checkpoints, crashes, recovers, and must lose nothing.
	roster := []struct {
		name  string
		build func() engine.Engine
	}{
		{"monolithic", func() engine.Engine { return monolithic.New(cfg, layout, 1024) }},
		{"aurora", func() engine.Engine { return aurora.New(cfg, layout, 1024, 1) }},
		{"socrates", func() engine.Engine {
			e := socrates.New(cfg, layout, 1024, 2)
			e.SnapshotEvery = 0
			return e
		}},
		{"taurus", func() engine.Engine { return taurus.New(cfg, layout, 1024, 3) }},
		{"polardb", func() engine.Engine {
			e := polardb.New(cfg, layout, 1024)
			e.CheckpointEvery = 0
			return e
		}},
		{"legobase", func() engine.Engine {
			e := legobase.New(cfg, layout, 64, 4096)
			e.CheckpointRemoteEvery = 0
			e.CheckpointStorageEvery = 0
			return e
		}},
		{"pilotdb", func() engine.Engine { return pilotdb.New(cfg, layout, 1024, pilotdb.Pilot()) }},
		{"snowflake-kv", func() engine.Engine { return snowflake.NewKV(cfg, layout) }},
		{"serverless", func() engine.Engine { return serverless.New(cfg, layout, 2, 64, 4096) }},
	}
	t := r.table(fmt.Sprintf("E29: crash drill, all recoverable engines — %d txns, checkpoint every %d commits", base, ckptEvery),
		"engine", "recovery", "horizon", "acked lost")
	for _, eng := range roster {
		arm, err := e29Sweep(eng.build(), layout, base, ckptEvery)
		if err != nil {
			r.check(fmt.Sprintf("%s: crash drill runs clean", eng.name), false, "%v", err)
			continue
		}
		t.Row(eng.name, arm.recover, arm.horizon, arm.lost)
		r.check(fmt.Sprintf("%s: crash drill loses zero acked commits and publishes a horizon", eng.name),
			arm.lost == 0 && arm.horizon > 0,
			"recovery %v, horizon %d, %d lost", arm.recover, arm.horizon, arm.lost)
	}

	r.note("sweep: %d hot keys, single writer, %d..%d txns; checkpointed arms run one coordinator round every %d commits (capture horizon -> flush pages -> publish -> truncate)", e29Keys, base*mults[0], base*mults[len(mults)-1], ckptEvery)
	r.note("the redo-class engines (monolithic, snowflake-kv, legobase) replay their retained log on Recover; log-as-database engines recover compute in O(1) and pay the unbounded cost in storage-node rebuild instead — measured by the substrate arm")
	r.note("shared-nothing checkpoints per partition (its shard image is the recovery source) but does not implement Recoverer; its lifecycle is covered by the enginetest Recovery drills")
	r.traceOp(cfg, "txn.write+ckpt", func(c *sim.Clock) {
		e := roster[0].build()
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(1, make([]byte, layout.ValSize))
		})
		if caps := engine.Caps(e); caps.Checkpointer != nil {
			if err := caps.Checkpointer.Checkpoint(c); err != nil {
				panic(err)
			}
		}
	})
	return r
}
