package harness

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/history"
	"github.com/disagglab/disagg/internal/engine/legobase"
	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/engine/pilotdb"
	"github.com/disagglab/disagg/internal/engine/polardb"
	"github.com/disagglab/disagg/internal/engine/serverless"
	"github.com/disagglab/disagg/internal/engine/sharednothing"
	"github.com/disagglab/disagg/internal/engine/snowflake"
	"github.com/disagglab/disagg/internal/engine/socrates"
	"github.com/disagglab/disagg/internal/engine/taurus"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
)

func init() {
	register(Experiment{
		ID:      "E26",
		Aliases: []string{"E-isolation"},
		Title:   "History-based isolation checking: dependency-graph verdicts across all engines",
		Claim: `§3: every disaggregated architecture re-implements the transaction pipeline over a different substrate (quorum logs, page servers, object storage, PM buffers, 2PC), and each re-implementation is a fresh chance to break isolation in a way ordinary value assertions never see. Recording every transaction — reads, writes, retry lineage, commit stamps — and checking the ww/wr/rw dependency graph for cycles gives a per-engine serializability verdict with a minimal witness cycle when it fails, at a checking cost that is linear in the history. Weakened engines (dirty reads, unvalidated snapshots) prove the checker actually detects G1c and write skew.`,
		Run: runE26,
	})
}

const (
	e26Seed     = 811
	e26Workers  = 4
	e26KeysEach = 4
	e26KeyBase  = 1 << 22
)

// e26Engines is the full engine roster (all ten architectures), each on
// its conformance-suite configuration.
func e26Engines() []struct {
	name  string
	build func(cfg *sim.Config) engine.Engine
} {
	layout := oltpLayout()
	return []struct {
		name  string
		build func(cfg *sim.Config) engine.Engine
	}{
		{"monolithic", func(cfg *sim.Config) engine.Engine { return monolithic.New(cfg, layout, 1024) }},
		{"shared-nothing", func(cfg *sim.Config) engine.Engine { return sharednothing.New(cfg, layout, 4) }},
		{"aurora", func(cfg *sim.Config) engine.Engine { return aurora.New(cfg, layout, 1024, 1) }},
		{"socrates", func(cfg *sim.Config) engine.Engine { return socrates.New(cfg, layout, 1024, 2) }},
		{"taurus", func(cfg *sim.Config) engine.Engine { return taurus.New(cfg, layout, 1024, 3) }},
		{"polardb", func(cfg *sim.Config) engine.Engine { return polardb.New(cfg, layout, 1024) }},
		{"legobase", func(cfg *sim.Config) engine.Engine { return legobase.New(cfg, layout, 64, 4096) }},
		{"pilotdb", func(cfg *sim.Config) engine.Engine { return pilotdb.New(cfg, layout, 1024, pilotdb.Pilot()) }},
		{"snowflake-kv", func(cfg *sim.Config) engine.Engine { return snowflake.NewKV(cfg, layout) }},
		{"serverless", func(cfg *sim.Config) engine.Engine { return serverless.New(cfg, layout, 2, 64, 4096) }},
	}
}

// e26Val encodes a globally unique non-zero value: the register-history
// checker requires every write to be distinguishable so each read maps to
// exactly one recorded write.
func e26Val(valSize int, key uint64, id, seq int) []byte {
	v := make([]byte, valSize)
	binary.LittleEndian.PutUint64(v[0:], key)
	binary.LittleEndian.PutUint64(v[8:], uint64(id)<<32|uint64(seq))
	v[16] = 1 // never all-zero
	return v
}

// e26Run drives the recorded workload: each worker read-modify-writes its
// own disjoint keys and reads foreign keys one at a time, every operation
// recorded through engine.Run.
func e26Run(e engine.Engine, ops int) *history.Recorder {
	layout := oltpLayout()
	rec := history.NewRecorder()
	sim.RunGroup(e26Workers, func(id int, c *sim.Clock) int {
		rng := sim.NewRand(e26Seed, id)
		opts := engine.RunOpts{Retries: 25, Record: rec, Session: id}
		for i := 0; i < ops; i++ {
			if rng.Intn(100) < 70 {
				key := e26KeyBase + uint64(id)*e26KeysEach + uint64(rng.Intn(e26KeysEach))
				v := e26Val(layout.ValSize, key, id, i+1)
				engine.Run(e, c, opts, func(tx engine.Tx) error {
					if _, err := tx.Read(key); err != nil {
						return err
					}
					return tx.Write(key, v)
				})
				continue
			}
			other := (id + 1 + rng.Intn(e26Workers-1)) % e26Workers
			key := e26KeyBase + uint64(other)*e26KeysEach + uint64(rng.Intn(e26KeysEach))
			engine.Run(e, c, opts, func(tx engine.Tx) error {
				_, err := tx.Read(key)
				return err
			})
		}
		return ops
	})
	return rec
}

// e26Check checks a recorded history at Serializable in both version-order
// modes and returns the stricter (more anomalies) report for the table.
func e26Check(rec *history.Recorder) (*history.Report, error) {
	ops := rec.Ops()
	exact, err := history.Check(ops, history.Opts{Level: history.Serializable, SessionOrder: true, SingleWriter: true})
	if err != nil {
		return nil, err
	}
	stamp, err := history.Check(ops, history.Opts{Level: history.Serializable, SessionOrder: true})
	if err != nil {
		return nil, err
	}
	if len(stamp.Anomalies) > len(exact.Anomalies) {
		return stamp, nil
	}
	exact.Elapsed += stamp.Elapsed
	return exact, nil
}

// e26Dirty is the deliberately weakened dirty-read engine: writes land in
// the shared map the instant tx.Write runs, so concurrent transactions
// observe each other's uncommitted state (see the enginetest twin that
// guards the checker's teeth in CI).
type e26Dirty struct {
	mu    sync.Mutex
	vals  map[uint64][]byte
	stats engine.Stats
}

type e26DirtyTx struct{ e *e26Dirty }

func (tx e26DirtyTx) Read(key uint64) ([]byte, error) {
	tx.e.mu.Lock()
	defer tx.e.mu.Unlock()
	if v, ok := tx.e.vals[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	return make([]byte, 8), nil
}

func (tx e26DirtyTx) Write(key uint64, val []byte) error {
	tx.e.mu.Lock()
	defer tx.e.mu.Unlock()
	cp := make([]byte, len(val))
	copy(cp, val)
	tx.e.vals[key] = cp
	return nil
}

func (e *e26Dirty) Name() string         { return "weak-dirty" }
func (e *e26Dirty) Stats() *engine.Stats { return &e.stats }
func (e *e26Dirty) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if err := fn(e26DirtyTx{e}); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	e.stats.Commits.Add(1)
	return nil
}

// e26DirtySchedule choreographs the wr-wr cycle: T1 writes k1, T2 writes
// k2 and reads T1's in-flight k1, then T1 reads T2's in-flight k2. Both
// commit — G1c at Read Committed.
func e26DirtySchedule() *history.Recorder {
	e := &e26Dirty{vals: make(map[uint64][]byte)}
	rec := history.NewRecorder()
	t1Wrote, t2Read := make(chan struct{}), make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		engine.Run(e, sim.NewClock(), engine.RunOpts{Record: rec, Session: 0}, func(tx engine.Tx) error {
			if err := tx.Write(1, []byte("dirty-v1")); err != nil {
				return err
			}
			close(t1Wrote)
			<-t2Read
			_, err := tx.Read(2)
			return err
		})
	}()
	go func() {
		defer wg.Done()
		engine.Run(e, sim.NewClock(), engine.RunOpts{Record: rec, Session: 1}, func(tx engine.Tx) error {
			<-t1Wrote
			if err := tx.Write(2, []byte("dirty-v2")); err != nil {
				return err
			}
			if _, err := tx.Read(1); err != nil {
				return err
			}
			close(t2Read)
			return nil
		})
	}()
	wg.Wait()
	return rec
}

// e26Snapshot is the unvalidated-snapshot engine: reads come from a
// snapshot taken at begin, staged writes apply at commit with no conflict
// validation — the write-skew machine.
type e26Snapshot struct {
	mu    sync.Mutex
	vals  map[uint64][]byte
	stats engine.Stats
}

func (e *e26Snapshot) Name() string         { return "weak-snapshot" }
func (e *e26Snapshot) Stats() *engine.Stats { return &e.stats }
func (e *e26Snapshot) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	e.mu.Lock()
	snap := make(map[uint64][]byte, len(e.vals))
	for k, v := range e.vals {
		snap[k] = v
	}
	e.mu.Unlock()
	st := engine.NewStagedTx(func(key uint64) ([]byte, error) {
		if v, ok := snap[key]; ok {
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
		return make([]byte, 8), nil
	})
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	e.mu.Lock()
	for _, k := range keys {
		cp := make([]byte, len(writes[k]))
		copy(cp, writes[k])
		e.vals[k] = cp
	}
	e.mu.Unlock()
	e.stats.Commits.Add(1)
	return nil
}

// e26SkewSchedule choreographs write skew: both transactions snapshot the
// initial state, T1 reads k2 / writes k1, T2 reads k1 / writes k2, both
// commit — an rw-rw cycle, legal at Read Committed, write skew at
// Serializable.
func e26SkewSchedule() *history.Recorder {
	e := &e26Snapshot{vals: make(map[uint64][]byte)}
	rec := history.NewRecorder()
	begun, proceed := make(chan struct{}, 2), make(chan struct{})
	var wg sync.WaitGroup
	body := func(session int, readKey, writeKey uint64, val []byte) {
		defer wg.Done()
		engine.Run(e, sim.NewClock(), engine.RunOpts{Record: rec, Session: session}, func(tx engine.Tx) error {
			begun <- struct{}{}
			<-proceed
			if _, err := tx.Read(readKey); err != nil {
				return err
			}
			return tx.Write(writeKey, val)
		})
	}
	wg.Add(2)
	go body(0, 12, 11, []byte("skew-v1"))
	go body(1, 11, 12, []byte("skew-v2"))
	<-begun
	<-begun
	close(proceed)
	wg.Wait()
	return rec
}

// e26FindAnomaly returns the first anomaly of the class, if reported.
func e26FindAnomaly(rep *history.Report, class string) (history.Anomaly, bool) {
	for _, a := range rep.Anomalies {
		if a.Class == class {
			return a, true
		}
	}
	return history.Anomaly{}, false
}

func runE26(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E26", Title: "History-based isolation checking across the engine roster"}
	ops := pick(s, 24, 96)

	// Real engines: clean fabric and the drops fault profile, both checked
	// at Serializable in both version-order modes. Zero anomalies expected
	// everywhere — the table's value is the verdict plus the check cost.
	for _, arm := range []struct {
		name string
		prof *fault.Profile
	}{
		{"clean", nil},
		{"drops", &fault.Profile{Name: "drops", Drop: 0.05, Sites: fault.FabricSites}},
	} {
		t := r.table(fmt.Sprintf("E26: serializability verdicts, %s fabric (%d workers x %d ops)", arm.name, e26Workers, ops),
			"engine", "txns", "reads", "writes", "edges", "anomalies", "check time")
		for _, eng := range e26Engines() {
			ecfg := cfg.Clone()
			if arm.prof != nil {
				ecfg.Fault = fault.New(e26Seed, *arm.prof)
			}
			e := eng.build(ecfg)
			rec := e26Run(e, ops)
			rep, err := e26Check(rec)
			if err != nil {
				r.check(fmt.Sprintf("%s/%s: history is checkable", eng.name, arm.name), false, "%v", err)
				continue
			}
			t.Row(eng.name, rep.Txns, rep.Reads, rep.Writes, rep.Edges, len(rep.Anomalies), rep.Elapsed.Round(time.Microsecond))
			detail := "clean"
			if !rep.Ok() {
				detail = rep.Anomalies[0].String()
			}
			r.check(fmt.Sprintf("%s/%s: zero isolation anomalies", eng.name, arm.name), rep.Ok(), "%s", detail)
		}
	}

	// Weakened engines: the checker must produce the named anomaly with a
	// minimal witness cycle, or the verdicts above mean nothing.
	t := r.table("E26: weakened engines — the checker's teeth", "engine", "level", "anomaly", "witness cycle")
	dirtyRep, err := history.Check(e26DirtySchedule().Ops(), history.Opts{Level: history.ReadCommitted, SingleWriter: true})
	if err == nil {
		if a, found := e26FindAnomaly(dirtyRep, "G1c"); found {
			t.Row("weak-dirty", "read-committed", a.Class, fmt.Sprintf("%v", a.Cycle))
			r.check("weak-dirty: checker reports G1c with a witness cycle", len(a.Cycle) > 0, "%s", a.Message)
		} else {
			r.check("weak-dirty: checker reports G1c with a witness cycle", false, "anomalies: %v", dirtyRep.Anomalies)
		}
	} else {
		r.check("weak-dirty: history is checkable", false, "%v", err)
	}
	skewOps := e26SkewSchedule().Ops()
	skewRC, errRC := history.Check(skewOps, history.Opts{Level: history.ReadCommitted, SingleWriter: true})
	skewSer, errSer := history.Check(skewOps, history.Opts{Level: history.Serializable, SingleWriter: true})
	if errRC == nil && errSer == nil {
		r.check("weak-snapshot: schedule is legal at read committed", skewRC.Ok(), "anomalies: %v", skewRC.Anomalies)
		if a, found := e26FindAnomaly(skewSer, "write-skew"); found {
			t.Row("weak-snapshot", "serializable", a.Class, fmt.Sprintf("%v", a.Cycle))
			r.check("weak-snapshot: checker reports write skew with a witness cycle", len(a.Cycle) > 0, "%s", a.Message)
		} else {
			r.check("weak-snapshot: checker reports write skew with a witness cycle", false, "anomalies: %v", skewSer.Anomalies)
		}
	} else {
		r.check("weak-snapshot: history is checkable", errRC == nil && errSer == nil, "rc=%v ser=%v", errRC, errSer)
	}

	r.note("every verdict is over a fully recorded history (seed %d): each engine.Run call is one logical op with explicit retry lineage, commit stamps taken at the engine's durability point", e26Seed)
	r.note("check = cycle search over the ww/wr/rw/so dependency graph, run in both version-order modes (per-key program order and commit stamps); cost is linear in ops+edges")
	r.traceOp(cfg, "txn.write-recorded", func(c *sim.Clock) {
		e := e26Engines()[0].build(cfg)
		rec := history.NewRecorder()
		engine.Run(e, c, engine.RunOpts{Record: rec, Session: 0}, func(tx engine.Tx) error {
			return tx.Write(1, make([]byte, oltpLayout().ValSize))
		})
	})
	return r
}
