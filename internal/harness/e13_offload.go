package harness

import (
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/offload"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/remotecache"
	"github.com/disagglab/disagg/internal/shuffle"
	"github.com/disagglab/disagg/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "TELEPORT compute pushdown",
		Claim: `§3.2: TELEPORT offloads "light-weight but memory-intensive operators" to the memory pool, eliminating data movement; it "only synchronizes data on applications' demands".`,
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Farview operator-stack offloading with pipelining",
		Claim: `§3.2: Farview implements database operators in the memory node and "supports pipelining in the operator stack" so complex sub-queries run near data.`,
		Run:   runE14,
	})
	register(Experiment{
		ID:    "E15",
		Title: "Redy remote cache and CompuCache stored procedures",
		Claim: `§3.2: stranded-memory caches offer "a lower-latency alternative to SSDs", migrate when memory is reclaimed, and CompuCache's stored procedures do server-side pointer chasing in a single round trip.`,
		Run:   runE15,
	})
	register(Experiment{
		ID:    "E16",
		Title: "Dremel disaggregated shuffle",
		Claim: `§3.2: "shuffles scale quadratically with the number of producers and consumers"; the disaggregated shuffle tier "improves the performance and scalability of joins by an order of magnitude".`,
		Run:   runE16,
	})
}

func runE13(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E13", Title: "Compute pushdown"}
	rows := pick(s, 100_000, 1_000_000)
	pool := memnode.New(cfg, "mem0", 1<<30)
	tbl := query.NewTable("pred", "val")
	rng := sim.NewRand(21, 0)
	for i := 0; i < rows; i++ {
		tbl.AppendRow(int64(rng.Intn(1000)), int64(i))
	}
	rc, err := offload.Upload(cfg, pool, tbl)
	if err != nil {
		panic(err)
	}
	qp := pool.Connect(nil)

	// (a) Selectivity sweep with a row-returning filter: the pushdown
	// advantage shrinks as output approaches input.
	t := r.table("E13a: filter returning rows, selectivity sweep",
		"selectivity", "pull (paged)", "pushdown", "speedup")
	var speedups []float64
	for _, selPerMille := range []int64{10, 100, 500, 900} {
		pc := sim.NewClock()
		pulled, err := rc.PullFilterRows(pc, qp, "pred", 0, selPerMille, "val")
		if err != nil {
			panic(err)
		}
		sc := sim.NewClock()
		pushed, err := rc.PushFilterRows(sc, qp, "pred", 0, selPerMille, "val")
		if err != nil {
			panic(err)
		}
		if len(pulled) != len(pushed) {
			r.check("pull/push agree", false, "row counts %d vs %d", len(pulled), len(pushed))
			return r
		}
		sp := ratio(pc.Now(), sc.Now())
		speedups = append(speedups, sp)
		t.Row(fmt.Sprintf("%.1f%%", float64(selPerMille)/10), pc.Now(), sc.Now(), sp)
	}
	r.check("pushdown wins at low selectivity", speedups[0] > 3,
		"%.1fx at 1%% selectivity", speedups[0])
	r.check("advantage shrinks as selectivity grows",
		speedups[len(speedups)-1] < speedups[0],
		"%.1fx at 1%% vs %.1fx at 90%%", speedups[0], speedups[len(speedups)-1])

	// (b) Aggregating pushdown: output is constant-size, so the win is
	// large regardless of selectivity.
	pc := sim.NewClock()
	rc.PullFilterSum(pc, qp, "pred", 0, 500, "val")
	sc := sim.NewClock()
	rc.PushFilterSum(sc, qp, "pred", 0, 500, "val")
	t2 := r.table("E13b: filter+aggregate", "path", "time")
	t2.Row("pull (paged) + local agg", pc.Now())
	t2.Row("pushdown agg", sc.Now())
	r.check("aggregate pushdown ≫ pull", sc.Now() < pc.Now()/2,
		"%.1fx", ratio(pc.Now(), sc.Now()))

	// (c) Synchronization: dirty compute-side data adds a visible sync
	// cost to pushdown, but results stay coherent.
	for i := 0; i < 1000; i++ {
		rc.LocalWrite("val", i, int64(-i))
	}
	dc := sim.NewClock()
	rc.PushFilterSum(dc, qp, "pred", 0, 500, "val")
	r.check("pushdown after dirty writes synchronizes on demand",
		rc.DirtyCount() == 0 && dc.Now() > sc.Now(),
		"sync of 1000 dirty words added %v", dc.Now()-sc.Now())
	r.traceOp(cfg, "offload.pushsum", func(c *sim.Clock) {
		if _, _, err := rc.PushFilterSum(c, qp, "pred", 0, 500, "val"); err != nil {
			panic(err)
		}
	})
	return r
}

func runE14(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E14", Title: "Operator-stack offloading"}
	rows := pick(s, 100_000, 1_000_000)
	pool := memnode.New(cfg, "fv0", 1<<30)
	tbl := query.NewTable("grp", "val", "flt")
	rng := sim.NewRand(23, 0)
	for i := 0; i < rows; i++ {
		tbl.AppendRow(int64(rng.Intn(16)), int64(i), int64(rng.Intn(100)))
	}
	rc, err := offload.Upload(cfg, pool, tbl)
	if err != nil {
		panic(err)
	}
	qp := pool.Connect(nil)
	stack := []offload.Stage{
		{Kind: offload.StageSelect, Col: "flt", Lo: 0, Hi: 50},
		{Kind: offload.StageProject, Col: "val"},
		{Kind: offload.StageGroupBy, Col: "grp"},
		{Kind: offload.StageAgg, Col: "val"},
	}
	pipe := sim.NewClock()
	outP, err := rc.RunStack(pipe, qp, stack, true)
	if err != nil {
		panic(err)
	}
	mat := sim.NewClock()
	outM, err := rc.RunStack(mat, qp, stack, false)
	if err != nil {
		panic(err)
	}
	// Pull-based comparator: fetch all three columns, compute locally.
	pull := sim.NewClock()
	vals, err := rc.PullFilterRows(pull, qp, "flt", 0, 50, "val")
	if err != nil {
		panic(err)
	}
	t := r.table("E14: select->project->groupby->agg over "+fmt.Sprint(rows)+" rows",
		"execution", "time", "groups")
	t.Row("farview pipelined stack", pipe.Now(), len(outP))
	t.Row("farview stage-at-a-time", mat.Now(), len(outM))
	t.Row("pull-based (client computes)", pull.Now(), "-")
	r.check("results agree across modes", len(outP) == len(outM) && sameTotals(outP, outM),
		"%d groups", len(outP))
	r.check("pipelining beats materialization", pipe.Now() < mat.Now(),
		"%v vs %v", pipe.Now(), mat.Now())
	r.check("offloaded stack beats pulling data", pipe.Now() < pull.Now()/2,
		"%.1fx over pull (which moved %d rows)", ratio(pull.Now(), pipe.Now()), len(vals))
	r.traceOp(cfg, "offload.stack", func(c *sim.Clock) {
		if _, err := rc.RunStack(c, qp, stack, true); err != nil {
			panic(err)
		}
	})
	return r
}

func sameTotals(a, b map[int64]int64) bool {
	var ta, tb int64
	for _, v := range a {
		ta += v
	}
	for _, v := range b {
		tb += v
	}
	return ta == tb
}

func runE15(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E15", Title: "Remote caching on stranded memory"}
	items := pick(s, 500, 5000)
	cache, err := remotecache.New(cfg, remotecache.DefaultSLO(), 2, 64<<20, 256)
	if err != nil {
		panic(err)
	}
	qp := cache.Connect(nil)
	c := sim.NewClock()
	val := make([]byte, 256)
	for k := uint64(0); k < uint64(items); k++ {
		if err := cache.Set(c, qp, k, val); err != nil {
			panic(err)
		}
	}
	gc := sim.NewClock()
	for k := uint64(0); k < uint64(items); k++ {
		cache.Get(gc, qp, k)
	}
	remoteLat := gc.Now() / time.Duration(items)
	ssdLat := cache.SSDGetCost()
	t := r.table("E15a: 256B cache GET", "tier", "latency")
	t.Row("stranded-memory cache (RDMA)", remoteLat)
	t.Row("local SSD cache", ssdLat)
	r.check("remote cache ≫ faster than SSD", remoteLat < ssdLat/10,
		"%v vs %v (%.0fx)", remoteLat, ssdLat, ratio(ssdLat, remoteLat))

	// Reclamation: migrate and keep serving.
	mc := sim.NewClock()
	moved, err := cache.Reclaim(mc)
	if err != nil {
		panic(err)
	}
	qp2 := cache.Connect(nil)
	post := sim.NewClock()
	miss := 0
	for k := uint64(0); k < uint64(items); k++ {
		if _, err := cache.Get(post, qp2, k); err != nil {
			miss++
		}
	}
	t2 := r.table("E15b: stranded-memory reclamation", "metric", "value")
	t2.Row("bytes migrated", metrics.FormatBytes(moved))
	t2.Row("migration time", mc.Now())
	t2.Row("misses after migration", miss)
	r.check("cache survives reclamation", miss == 0, "migrated %s in %v", metrics.FormatBytes(moved), mc.Now())

	// CompuCache pointer chase.
	hops := 8
	// Build a chain over the first `hops+1` keys.
	// (Chase requires values whose first 8 bytes point at the next key's
	// address; reuse the cache's own test pattern by setting via chase
	// helper in remotecache tests — here we measure cost ratio on a
	// fresh small cache.)
	ch, _ := remotecache.New(cfg, remotecache.DefaultSLO(), 1, 1<<20, 64)
	cqp := ch.Connect(nil)
	chainVal := make([]byte, 64)
	cclk := sim.NewClock()
	for k := uint64(0); k <= uint64(hops); k++ {
		ch.Set(cclk, cqp, k, chainVal)
	}
	// Link the chain (value of key i -> addr of key i+1) by re-setting.
	if err := ch.Link(cclk, cqp, hops); err != nil {
		panic(err)
	}
	direct := sim.NewClock()
	ch.Chase(direct, cqp, 0, hops, false)
	offl := sim.NewClock()
	ch.Chase(offl, cqp, 0, hops, true)
	t3 := r.table("E15c: "+fmt.Sprint(hops)+"-hop pointer chase", "mode", "time", "round trips")
	t3.Row("client-driven", direct.Now(), hops)
	t3.Row("stored procedure (CompuCache)", offl.Now(), 1)
	r.check("stored procedure collapses k RTTs to 1", offl.Now() < direct.Now()/3,
		"%v vs %v", offl.Now(), direct.Now())
	r.traceOp(cfg, "cache.chase", func(c *sim.Clock) {
		if _, err := ch.Chase(c, cqp, 0, hops, true); err != nil {
			panic(err)
		}
	})
	return r
}

func runE16(cfg *sim.Config, s Scale) *Result {
	r := &Result{ID: "E16", Title: "Disaggregated shuffle"}
	rowsPer := pick(s, 2000, 20_000)
	t := r.table("E16: shuffle makespan, P=C=n", "n", "direct", "disagg layer", "speedup", "direct conns")
	var gaps []float64
	sizes := []int{2, 4, 8, 16, 32}
	for _, n := range sizes {
		d := shuffle.NewDirect(cfg, n)
		directRes := sim.RunGroup(n, func(id int, c *sim.Clock) int {
			d.Produce(c, id, rowsFor(int64(id), rowsPer))
			d.Consume(c, id)
			return 1
		})
		pool := memnode.New(cfg, "shuf", 2<<30)
		l := shuffle.NewLayer(cfg, pool, n)
		layerRes := sim.RunGroup(n, func(id int, c *sim.Clock) int {
			qp := pool.Connect(nil)
			if err := l.Produce(c, qp, rowsFor(int64(id), rowsPer)); err != nil {
				panic(err)
			}
			if _, err := l.Consume(c, qp, id); err != nil {
				panic(err)
			}
			return 1
		})
		gap := ratio(directRes.MakeSpan, layerRes.MakeSpan)
		gaps = append(gaps, gap)
		t.Row(n, directRes.MakeSpan, layerRes.MakeSpan, gap, d.Connections())
	}
	r.check("direct shuffle degrades with scale; layer stays flat",
		gaps[len(gaps)-1] > gaps[0]*2,
		"advantage grows %.1fx -> %.1fx from n=2 to n=32", gaps[0], gaps[len(gaps)-1])
	r.check("order-of-magnitude improvement at scale", gaps[len(gaps)-1] >= 8,
		"%.1fx at n=32", gaps[len(gaps)-1])
	r.traceOp(cfg, "shuffle.direct-pair", func(c *sim.Clock) {
		d := shuffle.NewDirect(cfg, 1)
		d.Produce(c, 0, rowsFor(1, 64))
		d.Consume(c, 0)
	})
	return r
}

func rowsFor(seed int64, n int) []uint64 {
	rng := sim.NewRand(seed, 0)
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Int63())
	}
	return out
}
