// Package autoscale implements the "automatic resource provisioning"
// future direction of §4: a controller that watches workload telemetry
// (latency, utilization, queueing) and decides how much compute, memory,
// and storage to provision — the decision disaggregation makes cheap,
// because each resource scales independently.
//
// Two policies are provided: a reactive threshold rule (the classic
// autoscaler) and a predictive model that regresses demand over a sliding
// window and provisions ahead of it — the "recent advances in machine
// learning" §4 points at, distilled to an online linear fit, which is
// enough to show the lead-time benefit.
package autoscale

import (
	"errors"
	"fmt"
	"time"
)

// Sample is one telemetry observation.
type Sample struct {
	// At is the virtual timestamp of the observation.
	At time.Duration
	// Demand is the offered load (e.g. txn/s or queries/s).
	Demand float64
}

// Decision is the controller's output.
type Decision struct {
	// Nodes is the number of compute nodes to run.
	Nodes int
	// Reason explains the decision (for operator logs).
	Reason string
}

// Policy maps telemetry to provisioning decisions.
type Policy interface {
	// Decide consumes the newest sample and returns the node count to
	// provision, given each node serves perNode demand units.
	Decide(s Sample, perNode float64) Decision
}

// Errors.
var ErrBadCapacity = errors.New("autoscale: per-node capacity must be positive")

// Reactive is the threshold autoscaler: scale out when utilization exceeds
// High, in when below Low. It reacts only after load has already changed.
type Reactive struct {
	High, Low float64
	nodes     int
}

// NewReactive returns a reactive policy starting at one node.
func NewReactive() *Reactive { return &Reactive{High: 0.8, Low: 0.3, nodes: 1} }

// Decide implements Policy.
func (r *Reactive) Decide(s Sample, perNode float64) Decision {
	if r.nodes < 1 {
		r.nodes = 1
	}
	util := s.Demand / (float64(r.nodes) * perNode)
	switch {
	case util > r.High:
		r.nodes = int(s.Demand/(perNode*r.High)) + 1
		return Decision{Nodes: r.nodes, Reason: fmt.Sprintf("util %.2f > %.2f: scale out", util, r.High)}
	case util < r.Low && r.nodes > 1:
		r.nodes = int(s.Demand/(perNode*r.High)) + 1
		return Decision{Nodes: r.nodes, Reason: fmt.Sprintf("util %.2f < %.2f: scale in", util, r.Low)}
	default:
		return Decision{Nodes: r.nodes, Reason: "steady"}
	}
}

// Predictive fits demand(t) over a sliding window with least squares and
// provisions for the EXTRAPOLATED demand one horizon ahead, so capacity is
// ready when the load arrives.
type Predictive struct {
	// Window is the number of samples regressed.
	Window int
	// Horizon is how far ahead to provision.
	Horizon time.Duration
	// Headroom is the target utilization for the predicted demand.
	Headroom float64

	samples []Sample
	nodes   int
}

// NewPredictive returns a predictive policy with a 16-sample window.
func NewPredictive(horizon time.Duration) *Predictive {
	return &Predictive{Window: 16, Horizon: horizon, Headroom: 0.8, nodes: 1}
}

// Decide implements Policy.
func (p *Predictive) Decide(s Sample, perNode float64) Decision {
	p.samples = append(p.samples, s)
	if len(p.samples) > p.Window {
		p.samples = p.samples[len(p.samples)-p.Window:]
	}
	predicted := p.forecast(s.At + p.Horizon)
	if predicted < s.Demand {
		predicted = s.Demand // never provision below observed load
	}
	want := int(predicted/(perNode*p.Headroom)) + 1
	if want < 1 {
		want = 1
	}
	p.nodes = want
	return Decision{Nodes: want, Reason: fmt.Sprintf("forecast %.0f at +%v", predicted, p.Horizon)}
}

// forecast extrapolates the least-squares line through the window.
func (p *Predictive) forecast(at time.Duration) float64 {
	n := float64(len(p.samples))
	if n == 0 {
		return 0
	}
	if n == 1 {
		return p.samples[0].Demand
	}
	var sx, sy, sxx, sxy float64
	for _, s := range p.samples {
		x := s.At.Seconds()
		sx += x
		sy += s.Demand
		sxx += x * x
		sxy += x * s.Demand
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	f := intercept + slope*at.Seconds()
	if f < 0 {
		return 0
	}
	return f
}

// Trace evaluates a policy against a demand trace and reports (a) the
// fraction of samples where provisioned capacity was insufficient (SLO
// violations) and (b) the average overprovisioned node-fraction (cost).
// Each sample is one control interval; decisions take effect the NEXT
// interval (provisioning lag).
func Trace(p Policy, perNode float64, demands []float64, interval time.Duration) (violations float64, avgOver float64, err error) {
	if perNode <= 0 {
		return 0, 0, ErrBadCapacity
	}
	nodes := 1
	bad := 0
	var over float64
	for i, d := range demands {
		// Serve this interval with the capacity provisioned before it.
		cap := float64(nodes) * perNode
		if d > cap {
			bad++
		} else if d > 0 {
			over += (cap - d) / perNode
		}
		dec := p.Decide(Sample{At: time.Duration(i) * interval, Demand: d}, perNode)
		nodes = dec.Nodes
	}
	n := float64(len(demands))
	if n == 0 {
		return 0, 0, nil
	}
	return float64(bad) / n, over / n, nil
}

// RampTrace builds a demand trace that ramps up, plateaus and falls — the
// diurnal pattern provisioning papers use.
func RampTrace(peak float64, steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		frac := float64(i) / float64(steps-1)
		switch {
		case frac < 0.4: // ramp
			out[i] = peak * frac / 0.4
		case frac < 0.7: // plateau
			out[i] = peak
		default: // fall
			out[i] = peak * (1 - (frac-0.7)/0.3)
		}
	}
	return out
}
