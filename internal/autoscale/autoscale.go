// Package autoscale implements the "automatic resource provisioning"
// future direction of §4: a controller that watches workload telemetry
// (latency, utilization, queueing) and decides how much compute, memory,
// and storage to provision — the decision disaggregation makes cheap,
// because each resource scales independently.
//
// Two policies are provided: a reactive threshold rule (the classic
// autoscaler) and a predictive model that regresses demand over a sliding
// window and provisions ahead of it — the "recent advances in machine
// learning" §4 points at, distilled to an online linear fit, which is
// enough to show the lead-time benefit.
package autoscale

import (
	"errors"
	"fmt"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Telemetry is one virtual-time observation of the fleet. The controller
// builds it from live sim.Meter counters (see MeterSource); offline traces
// build it directly from a demand series. Demand is the load signal every
// policy provisions for; Util and Queued, when measured, refine the
// congestion picture beyond what Demand alone implies.
type Telemetry struct {
	// At is the virtual timestamp of the observation (a sim.Clock reading).
	At time.Duration
	// Demand is the offered load in per-node capacity units: 1.0 is one
	// fully-busy node at the nominal perNode rate (for live telemetry,
	// virtual busy-time per virtual second; for traces, txn/s or any other
	// rate the perNode capacity is denominated in).
	Demand float64
	// Util is the MEASURED fleet utilization ρ over the observation window
	// (busy / (nodes × elapsed)), or 0 when unknown (offline traces).
	// Policies prefer it to the Demand-derived estimate when present.
	Util float64
	// Queued is the fraction of operations in the window that observed
	// queueing — the congestion signal sim.Meter exposes.
	Queued float64
}

// Sample is one telemetry observation.
//
// Deprecated: Sample is an alias of Telemetry kept so existing literals
// (Sample{At: ..., Demand: ...}) compile unchanged; new code should say
// Telemetry.
type Sample = Telemetry

// Decision is the controller's output.
type Decision struct {
	// Nodes is the number of compute nodes to run.
	Nodes int
	// Reason explains the decision (for operator logs).
	Reason string
}

// Policy maps telemetry to provisioning decisions.
type Policy interface {
	// Decide consumes the newest observation and returns the node count to
	// provision, given each node serves perNode demand units.
	Decide(s Telemetry, perNode float64) Decision
}

// Errors.
var ErrBadCapacity = errors.New("autoscale: per-node capacity must be positive")

// Reactive is the threshold autoscaler: scale out when utilization exceeds
// High, in when below Low. It reacts only after load has already changed.
type Reactive struct {
	High, Low float64
	nodes     int
}

// NewReactive returns a reactive policy starting at one node.
func NewReactive() *Reactive { return &Reactive{High: 0.8, Low: 0.3, nodes: 1} }

// Decide implements Policy. When the observation carries a measured
// utilization (live sim.Meter telemetry), that drives the threshold test;
// otherwise utilization is derived from Demand as in the offline traces.
func (r *Reactive) Decide(s Telemetry, perNode float64) Decision {
	if r.nodes < 1 {
		r.nodes = 1
	}
	util := s.Demand / (float64(r.nodes) * perNode)
	if s.Util > 0 {
		util = s.Util
	}
	switch {
	case util > r.High:
		r.nodes = int(s.Demand/(perNode*r.High)) + 1
		return Decision{Nodes: r.nodes, Reason: fmt.Sprintf("util %.2f > %.2f: scale out", util, r.High)}
	case util < r.Low && r.nodes > 1:
		r.nodes = int(s.Demand/(perNode*r.High)) + 1
		return Decision{Nodes: r.nodes, Reason: fmt.Sprintf("util %.2f < %.2f: scale in", util, r.Low)}
	default:
		return Decision{Nodes: r.nodes, Reason: "steady"}
	}
}

// Predictive fits demand(t) over a sliding window with least squares and
// provisions for the EXTRAPOLATED demand one horizon ahead, so capacity is
// ready when the load arrives.
type Predictive struct {
	// Window is the number of samples regressed.
	Window int
	// Horizon is how far ahead to provision.
	Horizon time.Duration
	// Headroom is the target utilization for the predicted demand.
	Headroom float64

	samples []Sample
	nodes   int
}

// NewPredictive returns a predictive policy with a 16-sample window.
func NewPredictive(horizon time.Duration) *Predictive {
	return &Predictive{Window: 16, Horizon: horizon, Headroom: 0.8, nodes: 1}
}

// Decide implements Policy.
func (p *Predictive) Decide(s Telemetry, perNode float64) Decision {
	p.samples = append(p.samples, s)
	if len(p.samples) > p.Window {
		p.samples = p.samples[len(p.samples)-p.Window:]
	}
	predicted := p.forecast(s.At + p.Horizon)
	if predicted < s.Demand {
		predicted = s.Demand // never provision below observed load
	}
	want := int(predicted/(perNode*p.Headroom)) + 1
	if want < 1 {
		want = 1
	}
	p.nodes = want
	return Decision{Nodes: want, Reason: fmt.Sprintf("forecast %.0f at +%v", predicted, p.Horizon)}
}

// forecast extrapolates the least-squares line through the window.
func (p *Predictive) forecast(at time.Duration) float64 {
	n := float64(len(p.samples))
	if n == 0 {
		return 0
	}
	if n == 1 {
		return p.samples[0].Demand
	}
	var sx, sy, sxx, sxy float64
	for _, s := range p.samples {
		x := s.At.Seconds()
		sx += x
		sy += s.Demand
		sxx += x * x
		sxy += x * s.Demand
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	f := intercept + slope*at.Seconds()
	if f < 0 {
		return 0
	}
	return f
}

// MeterSource converts live sim.Meter counters into windowed Telemetry:
// each Sample call reads the meters' cumulative busy/ops/queued totals,
// differences them against the previous call, and reports the window's
// demand rate (virtual busy-time per virtual second, i.e. node-equivalents
// of load), measured utilization over the live node count, and queued
// fraction. The meter set must be delta-monotonic across calls — keep
// retired members' meters in the set (their counters simply stop moving)
// rather than dropping them, or the differencing goes negative.
//
// MeterSource is the bridge the ISSUE-8 redesign adds: policies consume
// the same Telemetry whether it came from an offline trace or from the
// running fleet's meters stamped with sim.Clock time.
type MeterSource struct {
	lastAt     time.Duration
	lastBusy   time.Duration
	lastOps    int64
	lastQueued int64
}

// Sample observes the meters at virtual time now with nodes live compute
// members and returns the telemetry for the window since the previous
// call. The first call establishes the baseline window from t=0.
func (ms *MeterSource) Sample(now time.Duration, nodes int, meters ...*sim.Meter) Telemetry {
	var busy time.Duration
	var ops, queued int64
	for _, m := range meters {
		busy += m.Busy()
		ops += m.TotalOps()
		queued += m.QueuedOps()
	}
	dt := now - ms.lastAt
	dBusy := busy - ms.lastBusy
	dOps := ops - ms.lastOps
	dQueued := queued - ms.lastQueued
	ms.lastAt, ms.lastBusy, ms.lastOps, ms.lastQueued = now, busy, ops, queued
	t := Telemetry{At: now}
	if dt <= 0 || dBusy < 0 || dOps < 0 {
		return t
	}
	t.Demand = dBusy.Seconds() / dt.Seconds()
	if nodes > 0 {
		t.Util = t.Demand / float64(nodes)
	}
	if dOps > 0 {
		t.Queued = float64(dQueued) / float64(dOps)
	}
	return t
}

// Trace evaluates a policy against a demand trace and reports (a) the
// fraction of samples where provisioned capacity was insufficient (SLO
// violations) and (b) the average overprovisioned node-fraction (cost).
// Each sample is one control interval; decisions take effect the NEXT
// interval (provisioning lag).
//
// Trace is a thin shim over the Telemetry surface: it feeds observations
// with no measured Util/Queued, so policies fall back to the demand-derived
// utilization and the E21 outputs are unchanged by the live-telemetry
// redesign.
func Trace(p Policy, perNode float64, demands []float64, interval time.Duration) (violations float64, avgOver float64, err error) {
	if perNode <= 0 {
		return 0, 0, ErrBadCapacity
	}
	nodes := 1
	bad := 0
	var over float64
	for i, d := range demands {
		// Serve this interval with the capacity provisioned before it.
		cap := float64(nodes) * perNode
		if d > cap {
			bad++
		} else if d > 0 {
			over += (cap - d) / perNode
		}
		dec := p.Decide(Telemetry{At: time.Duration(i) * interval, Demand: d}, perNode)
		nodes = dec.Nodes
	}
	n := float64(len(demands))
	if n == 0 {
		return 0, 0, nil
	}
	return float64(bad) / n, over / n, nil
}

// RampTrace builds a demand trace that ramps up, plateaus and falls — the
// diurnal pattern provisioning papers use.
func RampTrace(peak float64, steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		frac := float64(i) / float64(steps-1)
		switch {
		case frac < 0.4: // ramp
			out[i] = peak * frac / 0.4
		case frac < 0.7: // plateau
			out[i] = peak
		default: // fall
			out[i] = peak * (1 - (frac-0.7)/0.3)
		}
	}
	return out
}
