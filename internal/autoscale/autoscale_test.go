package autoscale

import (
	"testing"
	"time"
)

func TestReactiveScalesOutUnderLoad(t *testing.T) {
	p := NewReactive()
	d := p.Decide(Sample{At: 0, Demand: 1000}, 100)
	if d.Nodes < 10 {
		t.Fatalf("nodes = %d for demand 1000 at 100/node", d.Nodes)
	}
	// Scale back in when idle.
	d = p.Decide(Sample{At: time.Second, Demand: 50}, 100)
	if d.Nodes > 2 {
		t.Fatalf("nodes = %d after load dropped", d.Nodes)
	}
}

func TestReactiveSteadyState(t *testing.T) {
	p := NewReactive()
	p.Decide(Sample{Demand: 500}, 100) // provisions ~7
	before := p.nodes
	d := p.Decide(Sample{Demand: 500}, 100)
	if d.Nodes != before || d.Reason != "steady" {
		t.Fatalf("steady load changed provisioning: %+v", d)
	}
}

func TestPredictiveForecastsLinearRamp(t *testing.T) {
	p := NewPredictive(10 * time.Second)
	// Feed a perfect ramp: demand = 10*t.
	var last Decision
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Second
		last = p.Decide(Sample{At: at, Demand: float64(i * 10)}, 100)
	}
	// At t=9 demand is 90; forecast at t=19 should be ~190, so with
	// headroom 0.8 it provisions ceil(190/80)+1 ≈ 3.
	if last.Nodes < 3 {
		t.Fatalf("predictive provisioned only %d nodes ahead of the ramp", last.Nodes)
	}
}

func TestForecastDegenerateCases(t *testing.T) {
	p := NewPredictive(time.Second)
	if f := p.forecast(time.Second); f != 0 {
		t.Fatalf("empty forecast = %v", f)
	}
	p.samples = []Sample{{At: 0, Demand: 42}}
	if f := p.forecast(time.Hour); f != 42 {
		t.Fatalf("single-sample forecast = %v", f)
	}
	// Identical timestamps: fall back to mean.
	p.samples = []Sample{{At: 0, Demand: 10}, {At: 0, Demand: 20}}
	if f := p.forecast(time.Hour); f != 15 {
		t.Fatalf("degenerate forecast = %v", f)
	}
	// Falling demand never forecasts below zero.
	p.samples = []Sample{{At: 0, Demand: 100}, {At: time.Second, Demand: 10}}
	if f := p.forecast(time.Minute); f != 0 {
		t.Fatalf("negative forecast = %v", f)
	}
}

func TestTracePredictiveBeatsReactiveOnRamps(t *testing.T) {
	// The §4 claim distilled: with provisioning lag, a predictor that
	// sees the ramp coming violates the SLO less often. The ramp is
	// steep enough that per-interval growth outruns the reactive
	// policy's headroom.
	demands := RampTrace(40_000, 30)
	perNode := 250.0
	interval := time.Second

	vioR, _, err := Trace(NewReactive(), perNode, demands, interval)
	if err != nil {
		t.Fatal(err)
	}
	vioP, overP, err := Trace(NewPredictive(2*interval), perNode, demands, interval)
	if err != nil {
		t.Fatal(err)
	}
	if !(vioP < vioR) {
		t.Fatalf("predictive violations %.2f should be < reactive %.2f", vioP, vioR)
	}
	// Cost guard: average slack stays below half the peak fleet (the
	// 20% headroom target plus forecast error, not runaway growth).
	if peakNodes := 40_000 / perNode; overP > 0.5*peakNodes {
		t.Fatalf("predictive overprovisions wildly: %.1f nodes average slack", overP)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, _, err := Trace(NewReactive(), 0, []float64{1}, time.Second); err != ErrBadCapacity {
		t.Fatalf("err = %v", err)
	}
	if v, o, err := Trace(NewReactive(), 10, nil, time.Second); err != nil || v != 0 || o != 0 {
		t.Fatal("empty trace should be zero-safe")
	}
}

func TestRampTraceShape(t *testing.T) {
	tr := RampTrace(100, 50)
	if len(tr) != 50 {
		t.Fatalf("len = %d", len(tr))
	}
	if tr[0] != 0 || tr[25] != 100 || tr[len(tr)-1] > 5 {
		t.Fatalf("ramp shape wrong: start %v mid %v end %v", tr[0], tr[25], tr[len(tr)-1])
	}
}
