package autoscale

import (
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

func TestReactiveScalesOutUnderLoad(t *testing.T) {
	p := NewReactive()
	d := p.Decide(Sample{At: 0, Demand: 1000}, 100)
	if d.Nodes < 10 {
		t.Fatalf("nodes = %d for demand 1000 at 100/node", d.Nodes)
	}
	// Scale back in when idle.
	d = p.Decide(Sample{At: time.Second, Demand: 50}, 100)
	if d.Nodes > 2 {
		t.Fatalf("nodes = %d after load dropped", d.Nodes)
	}
}

func TestReactiveSteadyState(t *testing.T) {
	p := NewReactive()
	p.Decide(Sample{Demand: 500}, 100) // provisions ~7
	before := p.nodes
	d := p.Decide(Sample{Demand: 500}, 100)
	if d.Nodes != before || d.Reason != "steady" {
		t.Fatalf("steady load changed provisioning: %+v", d)
	}
}

func TestPredictiveForecastsLinearRamp(t *testing.T) {
	p := NewPredictive(10 * time.Second)
	// Feed a perfect ramp: demand = 10*t.
	var last Decision
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Second
		last = p.Decide(Sample{At: at, Demand: float64(i * 10)}, 100)
	}
	// At t=9 demand is 90; forecast at t=19 should be ~190, so with
	// headroom 0.8 it provisions ceil(190/80)+1 ≈ 3.
	if last.Nodes < 3 {
		t.Fatalf("predictive provisioned only %d nodes ahead of the ramp", last.Nodes)
	}
}

func TestForecastDegenerateCases(t *testing.T) {
	p := NewPredictive(time.Second)
	if f := p.forecast(time.Second); f != 0 {
		t.Fatalf("empty forecast = %v", f)
	}
	p.samples = []Sample{{At: 0, Demand: 42}}
	if f := p.forecast(time.Hour); f != 42 {
		t.Fatalf("single-sample forecast = %v", f)
	}
	// Identical timestamps: fall back to mean.
	p.samples = []Sample{{At: 0, Demand: 10}, {At: 0, Demand: 20}}
	if f := p.forecast(time.Hour); f != 15 {
		t.Fatalf("degenerate forecast = %v", f)
	}
	// Falling demand never forecasts below zero.
	p.samples = []Sample{{At: 0, Demand: 100}, {At: time.Second, Demand: 10}}
	if f := p.forecast(time.Minute); f != 0 {
		t.Fatalf("negative forecast = %v", f)
	}
}

func TestTracePredictiveBeatsReactiveOnRamps(t *testing.T) {
	// The §4 claim distilled: with provisioning lag, a predictor that
	// sees the ramp coming violates the SLO less often. The ramp is
	// steep enough that per-interval growth outruns the reactive
	// policy's headroom.
	demands := RampTrace(40_000, 30)
	perNode := 250.0
	interval := time.Second

	vioR, _, err := Trace(NewReactive(), perNode, demands, interval)
	if err != nil {
		t.Fatal(err)
	}
	vioP, overP, err := Trace(NewPredictive(2*interval), perNode, demands, interval)
	if err != nil {
		t.Fatal(err)
	}
	if !(vioP < vioR) {
		t.Fatalf("predictive violations %.2f should be < reactive %.2f", vioP, vioR)
	}
	// Cost guard: average slack stays below half the peak fleet (the
	// 20% headroom target plus forecast error, not runaway growth).
	if peakNodes := 40_000 / perNode; overP > 0.5*peakNodes {
		t.Fatalf("predictive overprovisions wildly: %.1f nodes average slack", overP)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, _, err := Trace(NewReactive(), 0, []float64{1}, time.Second); err != ErrBadCapacity {
		t.Fatalf("err = %v", err)
	}
	if v, o, err := Trace(NewReactive(), 10, nil, time.Second); err != nil || v != 0 || o != 0 {
		t.Fatal("empty trace should be zero-safe")
	}
}

func TestReactivePrefersMeasuredUtil(t *testing.T) {
	// Demand alone reads as idle, but the measured ρ says the fleet is
	// saturated (e.g. contention stretch, not raw arrival rate): the
	// policy must believe the meter.
	p := NewReactive()
	d := p.Decide(Telemetry{Demand: 10, Util: 0.95}, 100)
	if d.Nodes < 1 || d.Reason == "steady" {
		t.Fatalf("measured util 0.95 did not trigger scale-out: %+v", d)
	}
}

func TestMeterSourceWindows(t *testing.T) {
	m := sim.NewMeter(1)
	c := sim.NewClock()
	var ms MeterSource

	// Window 1: 600µs of demand over a 1ms window on 1 node.
	m.Observe(advanceTo(c, time.Millisecond), 600*time.Microsecond)
	tel := ms.Sample(c.Now(), 1, m)
	if tel.At != time.Millisecond {
		t.Fatalf("At = %v", tel.At)
	}
	if tel.Demand < 0.59 || tel.Demand > 0.61 {
		t.Fatalf("demand = %v, want ~0.6 node-equivalents", tel.Demand)
	}
	if tel.Util < 0.59 || tel.Util > 0.61 {
		t.Fatalf("util = %v, want ~0.6 on one node", tel.Util)
	}

	// Window 2: idle — deltas, not cumulative totals.
	tel = ms.Sample(advanceTo(c, 2*time.Millisecond).Now(), 1, m)
	if tel.Demand != 0 || tel.Util != 0 {
		t.Fatalf("idle window reported demand %v util %v", tel.Demand, tel.Util)
	}

	// Window 3: two nodes, 2ms aggregate busy over 1ms => demand 2.0,
	// util 1.0 across the pair.
	m2 := sim.NewMeter(1)
	m.Observe(advanceTo(c, 3*time.Millisecond), time.Millisecond)
	m2.Observe(c, time.Millisecond)
	tel = ms.Sample(c.Now(), 2, m, m2)
	if tel.Demand < 1.9 || tel.Demand > 2.1 {
		t.Fatalf("demand = %v, want ~2 node-equivalents", tel.Demand)
	}
	if tel.Util < 0.95 || tel.Util > 1.05 {
		t.Fatalf("util = %v, want ~1.0 across two nodes", tel.Util)
	}
}

// advanceTo moves the clock to an absolute virtual time (test helper).
func advanceTo(c *sim.Clock, at time.Duration) *sim.Clock {
	c.Advance(at - c.Now())
	return c
}

func TestObserveDoesNotAdvanceClock(t *testing.T) {
	m := sim.NewMeter(1)
	c := sim.NewClock()
	c.Advance(time.Millisecond)
	m.Observe(c, 500*time.Microsecond)
	if c.Now() != time.Millisecond {
		t.Fatalf("Observe advanced the clock to %v", c.Now())
	}
	if m.Busy() != 500*time.Microsecond || m.TotalOps() != 1 {
		t.Fatalf("busy %v ops %d", m.Busy(), m.TotalOps())
	}
	// Oversubscribed observations register as queued for telemetry.
	m.Observe(c, 10*time.Millisecond)
	if m.QueuedOps() == 0 {
		t.Fatal("oversubscribed Observe did not mark queueing")
	}
}

func TestRampTraceShape(t *testing.T) {
	tr := RampTrace(100, 50)
	if len(tr) != 50 {
		t.Fatalf("len = %d", len(tr))
	}
	if tr[0] != 0 || tr[25] != 100 || tr[len(tr)-1] > 5 {
		t.Fatalf("ramp shape wrong: start %v mid %v end %v", tr[0], tr[25], tr[len(tr)-1])
	}
}
