package rdma

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"github.com/disagglab/disagg/internal/sim"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory(128)
	data := []byte("disaggregated databases")
	if err := m.Write(5, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q, want %q", got, data)
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory(4096)
	f := func(off uint16, payload []byte) bool {
		addr := uint64(off) % 2048
		if len(payload) > 2048 {
			payload = payload[:2048]
		}
		if err := m.Write(addr, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := m.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(64)
	if err := m.Write(60, make([]byte, 8)); err == nil {
		t.Fatal("write past end should fail")
	}
	if err := m.Read(65, make([]byte, 1)); err == nil {
		t.Fatal("read past end should fail")
	}
	if err := m.Write(0, make([]byte, 64)); err != nil {
		t.Fatalf("full-region write failed: %v", err)
	}
	var oob *ErrOutOfBounds
	err := m.Read(100, make([]byte, 4))
	if !errorsAs(err, &oob) {
		t.Fatalf("error type = %T, want *ErrOutOfBounds", err)
	}
}

func errorsAs(err error, target **ErrOutOfBounds) bool {
	if e, ok := err.(*ErrOutOfBounds); ok {
		*target = e
		return true
	}
	return false
}

func TestMemoryAtomicAlignment(t *testing.T) {
	m := NewMemory(64)
	if _, err := m.Load64(3); err == nil {
		t.Fatal("unaligned Load64 should fail")
	}
	if err := m.Store64(8, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load64(8)
	if err != nil || v != 42 {
		t.Fatalf("Load64 = %d, %v", v, err)
	}
}

func TestMemoryCAS(t *testing.T) {
	m := NewMemory(64)
	m.Store64(0, 10)
	ok, err := m.CAS64(0, 10, 20)
	if err != nil || !ok {
		t.Fatalf("CAS(10->20) = %v, %v", ok, err)
	}
	ok, _ = m.CAS64(0, 10, 30)
	if ok {
		t.Fatal("stale CAS succeeded")
	}
	v, _ := m.Load64(0)
	if v != 20 {
		t.Fatalf("value = %d, want 20", v)
	}
}

func TestMemoryAdd64Concurrent(t *testing.T) {
	m := NewMemory(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add64(0, 1)
			}
		}()
	}
	wg.Wait()
	v, _ := m.Load64(0)
	if v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
}

func TestMemoryAdjacentUnalignedWritesDoNotClobber(t *testing.T) {
	// Two writers share word 0: bytes [0,4) and [4,8).
	m := NewMemory(8)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			m.Write(0, []byte{1, 1, 1, 1})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			m.Write(4, []byte{2, 2, 2, 2})
		}
	}()
	wg.Wait()
	got := make([]byte, 8)
	m.Read(0, got)
	if !bytes.Equal(got, []byte{1, 1, 1, 1, 2, 2, 2, 2}) {
		t.Fatalf("adjacent writes clobbered: %v", got)
	}
}

func newTestNode(pm bool) (*sim.Config, *Node) {
	cfg := sim.DefaultConfig()
	var n *Node
	if pm {
		n = NewPMNode(cfg, "pm0", 1<<16)
	} else {
		n = NewNode(cfg, "mem0", 1<<16)
	}
	return cfg, n
}

func TestQPReadWriteChargesLatency(t *testing.T) {
	cfg, n := newTestNode(false)
	qp := Connect(cfg, n, nil)
	c := sim.NewClock()
	data := make([]byte, 256)
	if err := qp.Write(c, 0, data); err != nil {
		t.Fatal(err)
	}
	want := cfg.RDMA.Cost(256)
	if c.Now() != want {
		t.Fatalf("write charged %v, want %v", c.Now(), want)
	}
	before := c.Now()
	if err := qp.Read(c, 0, data); err != nil {
		t.Fatal(err)
	}
	if c.Now()-before != cfg.RDMA.Cost(256) {
		t.Fatalf("read charged %v", c.Now()-before)
	}
}

func TestQPStats(t *testing.T) {
	cfg, n := newTestNode(false)
	var st Stats
	qp := Connect(cfg, n, &st)
	c := sim.NewClock()
	qp.Write(c, 0, make([]byte, 100))
	qp.Read(c, 0, make([]byte, 50))
	qp.CAS(c, 0, 999, 1) // fails: word is not 999
	if st.Ops.Load() != 3 {
		t.Fatalf("ops = %d", st.Ops.Load())
	}
	if st.BytesOut.Load() != 108 || st.BytesIn.Load() != 50 {
		t.Fatalf("bytes = %d/%d", st.BytesOut.Load(), st.BytesIn.Load())
	}
	if st.CASFail.Load() != 1 {
		t.Fatalf("cas failures = %d", st.CASFail.Load())
	}
	if st.TotalBytes() != 158 {
		t.Fatalf("total = %d", st.TotalBytes())
	}
	st.Reset()
	if st.TotalBytes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestPMWriteIsNotPersistentUntilFlush(t *testing.T) {
	cfg, n := newTestNode(true)
	qp := Connect(cfg, n, nil)
	c := sim.NewClock()
	if err := qp.Write(c, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if n.PendingPersist() != 512 {
		t.Fatalf("pending = %d, want 512 (write must not persist)", n.PendingPersist())
	}
	// A flushing read drains the pending bytes.
	if _, err := qp.Load64(c, 0); err != nil {
		t.Fatal(err)
	}
	if n.PendingPersist() != 0 {
		t.Fatalf("pending after flush read = %d", n.PendingPersist())
	}
	_ = cfg
}

func TestWritePersistCostsTwoRoundTrips(t *testing.T) {
	cfg, n := newTestNode(true)
	qp := Connect(cfg, n, nil)
	c := sim.NewClock()
	if err := qp.WritePersist(c, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if n.PendingPersist() != 0 {
		t.Fatal("WritePersist left pending bytes")
	}
	if c.Now() < 2*cfg.RDMA.Base {
		t.Fatalf("WritePersist charged %v, want >= two round trips (%v)", c.Now(), 2*cfg.RDMA.Base)
	}
}

func TestKaliaOrdering(t *testing.T) {
	// §2.3 (Kalia et al.): unsafe write < RPC persist < write+flush-read.
	cfg, n := newTestNode(true)
	payload := make([]byte, 128)

	unsafeC := sim.NewClock()
	Connect(cfg, n, nil).Write(unsafeC, 0, payload)
	n.pending.Store(0)

	rpcC := sim.NewClock()
	Connect(cfg, n, nil).CallPersist(rpcC, 0, payload)

	onesidedC := sim.NewClock()
	Connect(cfg, n, nil).WritePersist(onesidedC, 0, payload)

	if !(unsafeC.Now() < rpcC.Now()) {
		t.Fatalf("unsafe (%v) should be cheaper than RPC persist (%v)", unsafeC.Now(), rpcC.Now())
	}
	if !(rpcC.Now() < onesidedC.Now()) {
		t.Fatalf("RPC persist (%v) should beat one-sided write+flush (%v)", rpcC.Now(), onesidedC.Now())
	}
}

func TestQPCall(t *testing.T) {
	cfg, n := newTestNode(false)
	n.Handle("echo", func(c *sim.Clock, req []byte) []byte {
		return append([]byte("re:"), req...)
	})
	qp := Connect(cfg, n, nil)
	c := sim.NewClock()
	resp, err := qp.Call(c, "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:hi" {
		t.Fatalf("resp = %q", resp)
	}
	if c.Now() < cfg.RDMARPC.Base+cfg.RemoteCPU {
		t.Fatalf("RPC charged %v, too cheap", c.Now())
	}
	if _, err := qp.Call(c, "missing", nil); err == nil {
		t.Fatal("missing handler should error")
	}
}

func TestWriteBatchCheaperThanIndividual(t *testing.T) {
	cfg, n := newTestNode(false)
	ops := make([]WriteOp, 8)
	for i := range ops {
		ops[i] = WriteOp{Addr: uint64(i * 64), Data: make([]byte, 64)}
	}
	batchC := sim.NewClock()
	if err := Connect(cfg, n, nil).WriteBatch(batchC, ops); err != nil {
		t.Fatal(err)
	}
	indivC := sim.NewClock()
	qp := Connect(cfg, n, nil)
	for _, op := range ops {
		qp.Write(indivC, op.Addr, op.Data)
	}
	if !(batchC.Now() < indivC.Now()/4) {
		t.Fatalf("doorbell batch (%v) should be ≪ individual writes (%v)", batchC.Now(), indivC.Now())
	}
	if err := Connect(cfg, n, nil).WriteBatch(sim.NewClock(), nil); err != nil {
		t.Fatal("empty batch should be a no-op")
	}
}

func TestNodeFailureSemantics(t *testing.T) {
	cfg, dram := newTestNode(false)
	qp := Connect(cfg, dram, nil)
	c := sim.NewClock()
	qp.Write(c, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	dram.Fail()
	if err := qp.Read(c, 0, make([]byte, 8)); err != ErrNodeFailed {
		t.Fatalf("read on failed node: %v", err)
	}
	if _, err := qp.CAS(c, 0, 0, 1); err != ErrNodeFailed {
		t.Fatalf("cas on failed node: %v", err)
	}
	dram.Restart()
	got := make([]byte, 8)
	qp.Read(c, 0, got)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("DRAM survived crash: %v", got)
	}

	_, pm := newTestNode(true)
	qpm := Connect(cfg, pm, nil)
	qpm.WritePersist(c, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	pm.Fail()
	pm.Restart()
	qpm.Read(c, 0, got)
	if !bytes.Equal(got, []byte{9, 9, 9, 9, 9, 9, 9, 9}) {
		t.Fatalf("PM lost persisted data across crash: %v", got)
	}
}

func TestConcurrentQPsContendOnNIC(t *testing.T) {
	cfg, n := newTestNode(false)
	// One worker alone:
	solo := sim.RunGroup(1, func(id int, c *sim.Clock) int {
		qp := Connect(cfg, n, nil)
		for i := 0; i < 200; i++ {
			qp.Read(c, 0, make([]byte, 4096))
		}
		return 200
	})
	// Heavy oversubscription of the same NIC:
	crowd := sim.RunGroup(64, func(id int, c *sim.Clock) int {
		qp := Connect(cfg, n, nil)
		for i := 0; i < 200; i++ {
			qp.Read(c, 0, make([]byte, 4096))
		}
		return 200
	})
	if !(crowd.MeanLatency() > solo.MeanLatency()) {
		t.Fatalf("no queueing penalty: solo %v vs crowd %v", solo.MeanLatency(), crowd.MeanLatency())
	}
}

func TestPostNMixedVerbsOneDoorbell(t *testing.T) {
	cfg, n := newTestNode(false)
	var st Stats
	qp := Connect(cfg, n, &st)
	c := sim.NewClock()
	if err := qp.Write(c, 64, []byte{7, 7, 7, 7, 7, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	st.Reset()
	before := c.Now()

	got := make([]byte, 8)
	verbs := []Verb{
		{Op: OpWrite, Addr: 0, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Op: OpRead, Addr: 0, Data: got},
		{Op: OpFAA, Addr: 32, Add: 5},
		{Op: OpCAS, Addr: 32, Old: 5, New: 9},
		{Op: OpLoad, Addr: 32},
	}
	if err := qp.PostN(c, verbs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("in-batch read saw %v", got)
	}
	if verbs[2].Val != 5 {
		t.Fatalf("FAA result = %d, want 5", verbs[2].Val)
	}
	if !verbs[3].Swapped {
		t.Fatal("CAS should have swapped")
	}
	if verbs[4].Val != 9 {
		t.Fatalf("Load result = %d, want 9", verbs[4].Val)
	}
	if st.Ops.Load() != 1 || st.WQEs.Load() != 5 {
		t.Fatalf("ops/wqes = %d/%d, want 1/5", st.Ops.Load(), st.WQEs.Load())
	}
	// One doorbell: base + summed transfer terms + 4 marginal WQEs.
	want := cfg.RDMA.Cost(8+8+8+8+8) + 4*cfg.RDMAPerWQE
	if c.Now()-before != want {
		t.Fatalf("PostN charged %v, want %v", c.Now()-before, want)
	}
}

func TestPostNSingleVerbCostsSameAsSingleCall(t *testing.T) {
	cfg, n := newTestNode(false)
	p := make([]byte, 256)
	single := sim.NewClock()
	if err := Connect(cfg, n, nil).Write(single, 0, p); err != nil {
		t.Fatal(err)
	}
	batch1 := sim.NewClock()
	if err := Connect(cfg, n, nil).PostN(batch1, []Verb{{Op: OpWrite, Addr: 0, Data: p}}); err != nil {
		t.Fatal(err)
	}
	if single.Now() != batch1.Now() {
		t.Fatalf("batch-of-1 (%v) must cost the same as a single verb (%v)", batch1.Now(), single.Now())
	}
}

func TestPostNInBatchReadFlushesPM(t *testing.T) {
	cfg, n := newTestNode(true)
	qp := Connect(cfg, n, nil)
	c := sim.NewClock()
	verbs := []Verb{
		{Op: OpWrite, Addr: 0, Data: make([]byte, 512)},
		{Op: OpLoad, Addr: 0},
	}
	if err := qp.PostN(c, verbs); err != nil {
		t.Fatal(err)
	}
	if n.PendingPersist() != 0 {
		t.Fatalf("in-batch flushing read left %d pending bytes", n.PendingPersist())
	}
	_ = cfg
}
