package rdma

import (
	"errors"
	"sync/atomic"

	"github.com/disagglab/disagg/internal/sim"
)

// ErrNodeFailed is returned by verbs issued against a crashed node.
var ErrNodeFailed = errors.New("rdma: node failed")

// Stats aggregates fabric traffic. A Stats value may be shared by many
// queue pairs (e.g. all connections belonging to one engine) so experiments
// can report network bytes/messages per transaction. Safe for concurrent use.
type Stats struct {
	Ops      atomic.Int64
	RPCs     atomic.Int64
	BytesOut atomic.Int64 // initiator -> target
	BytesIn  atomic.Int64 // target -> initiator
	CASFail  atomic.Int64
}

// TotalBytes reports BytesOut + BytesIn.
func (s *Stats) TotalBytes() int64 { return s.BytesOut.Load() + s.BytesIn.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Ops.Store(0)
	s.RPCs.Store(0)
	s.BytesOut.Store(0)
	s.BytesIn.Store(0)
	s.CASFail.Store(0)
}

// QP is a queue pair connecting an initiator to one target node. It is safe
// for concurrent use, but idiomatic usage gives each worker its own QP (as
// on real hardware); the shared contention point is the target NIC meter.
type QP struct {
	cfg   *sim.Config
	node  *Node
	stats *Stats
}

// Connect creates a queue pair to the target node. stats may be nil.
func Connect(cfg *sim.Config, node *Node, stats *Stats) *QP {
	if stats == nil {
		stats = &Stats{}
	}
	return &QP{cfg: cfg, node: node, stats: stats}
}

// Node returns the target node.
func (q *QP) Node() *Node { return q.node }

// Config returns the substrate config the queue pair was built on.
func (q *QP) Config() *sim.Config { return q.cfg }

// Stats returns the stats sink attached to this QP.
func (q *QP) Stats() *Stats { return q.stats }

func (q *QP) alive() error {
	if q.node.Failed() {
		return ErrNodeFailed
	}
	return nil
}

// Read issues a one-sided READ of len(p) bytes at addr. On a PM node a
// READ also acts as the flushing read of Kalia et al.: it forces all prior
// posted writes on this connection into the persistence domain.
func (q *QP) Read(c *sim.Clock, addr uint64, p []byte) error {
	if err := q.alive(); err != nil {
		return err
	}
	op := q.cfg.Begin(c, "rdma.read")
	if o := q.cfg.Inject(c, "rdma.read"); o.Drop || o.Torn {
		op.End(0)
		return o.FaultErr()
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(len(p)))
	q.stats.Ops.Add(1)
	q.stats.BytesIn.Add(int64(len(p)))
	if q.node.PM {
		q.drainPending(c)
	}
	op.End(int64(len(p)))
	return q.node.Mem.Read(addr, p)
}

// Write issues a one-sided WRITE. The verb completes when the data is in
// the target NIC/PCIe domain: on a PM node that does NOT imply persistence
// (the central trap of §2.3) — the posted bytes are tracked as pending
// until a flushing Read or a server-side flush drains them.
func (q *QP) Write(c *sim.Clock, addr uint64, p []byte) error {
	if err := q.alive(); err != nil {
		return err
	}
	op := q.cfg.Begin(c, "rdma.write")
	o := q.cfg.Inject(c, "rdma.write")
	if o.Drop || o.Torn {
		op.End(0)
		return o.FaultErr()
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(len(p)))
	q.stats.Ops.Add(1)
	q.stats.BytesOut.Add(int64(len(p)))
	if err := q.node.Mem.Write(addr, p); err != nil {
		op.End(0)
		return err
	}
	if o.Duplicate {
		// Duplicated delivery: one-sided writes are idempotent, so the
		// repeat lands harmlessly on the same bytes.
		if err := q.node.Mem.Write(addr, p); err != nil {
			op.End(0)
			return err
		}
	}
	if q.node.PM {
		q.node.pending.Add(int64(len(p)))
	}
	op.End(int64(len(p)))
	return nil
}

// drainPending charges the PM write-bandwidth cost of moving pending bytes
// into the persistence domain and clears the gauge.
func (q *QP) drainPending(c *sim.Clock) {
	n := q.node.pending.Swap(0)
	if n > 0 {
		// Bandwidth term only: the base PM latency overlaps with the
		// network round trip that triggered the drain.
		m := sim.LatencyModel{BytesPerSec: q.cfg.PMWrite.BytesPerSec}
		c.Advance(m.Cost(int(n)))
	}
}

// WritePersist performs the one-sided persistent write recipe: WRITE
// followed by a dependent zero-byte flushing READ. It costs two round trips
// plus the PM drain — which is exactly why Kalia et al. found the
// two-sided CallPersist faster.
func (q *QP) WritePersist(c *sim.Clock, addr uint64, p []byte) error {
	op := q.cfg.Begin(c, "rdma.writepersist")
	if err := q.Write(c, addr, p); err != nil {
		op.End(0)
		return err
	}
	if err := q.alive(); err != nil {
		op.End(0)
		return err
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(0))
	q.stats.Ops.Add(1)
	q.drainPending(c)
	op.End(int64(len(p)))
	return nil
}

// CAS issues a one-sided 8-byte compare-and-swap at addr, returning whether
// it installed new. Failed CASes are counted — retry storms under
// contention are a first-class effect in RACE/Sherman experiments.
func (q *QP) CAS(c *sim.Clock, addr uint64, old, new uint64) (bool, error) {
	if err := q.alive(); err != nil {
		return false, err
	}
	op := q.cfg.Begin(c, "rdma.cas")
	if o := q.cfg.Inject(c, "rdma.cas"); o.Drop || o.Torn {
		op.End(0)
		return false, o.FaultErr()
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(8))
	q.stats.Ops.Add(1)
	q.stats.BytesOut.Add(8)
	op.End(8)
	ok, err := q.node.Mem.CAS64(addr, old, new)
	if err == nil && !ok {
		q.stats.CASFail.Add(1)
	}
	return ok, err
}

// FAA issues a one-sided fetch-and-add, returning the new value.
func (q *QP) FAA(c *sim.Clock, addr uint64, delta uint64) (uint64, error) {
	if err := q.alive(); err != nil {
		return 0, err
	}
	op := q.cfg.Begin(c, "rdma.faa")
	if o := q.cfg.Inject(c, "rdma.faa"); o.Drop || o.Torn {
		op.End(0)
		return 0, o.FaultErr()
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(8))
	q.stats.Ops.Add(1)
	q.stats.BytesOut.Add(8)
	op.End(8)
	return q.node.Mem.Add64(addr, delta)
}

// Load64 issues an 8-byte one-sided READ (word-atomic).
func (q *QP) Load64(c *sim.Clock, addr uint64) (uint64, error) {
	if err := q.alive(); err != nil {
		return 0, err
	}
	op := q.cfg.Begin(c, "rdma.read")
	if o := q.cfg.Inject(c, "rdma.read"); o.Drop || o.Torn {
		op.End(0)
		return 0, o.FaultErr()
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(8))
	q.stats.Ops.Add(1)
	q.stats.BytesIn.Add(8)
	if q.node.PM {
		q.drainPending(c)
	}
	op.End(8)
	return q.node.Mem.Load64(addr)
}

// WriteOp is one element of a doorbell-batched write.
type WriteOp struct {
	Addr uint64
	Data []byte
}

// WriteBatch posts several writes with one doorbell (Sherman's batching
// optimization): a single base latency, summed transfer terms, in-order
// application.
func (q *QP) WriteBatch(c *sim.Clock, ops []WriteOp) error {
	if err := q.alive(); err != nil {
		return err
	}
	if len(ops) == 0 {
		return nil
	}
	obs := q.cfg.Begin(c, "rdma.write")
	if o := q.cfg.Inject(c, "rdma.write"); o.Drop || o.Torn {
		obs.End(0)
		return o.FaultErr()
	}
	total := 0
	for _, op := range ops {
		total += len(op.Data)
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(total))
	q.stats.Ops.Add(1)
	q.stats.BytesOut.Add(int64(total))
	for _, op := range ops {
		if err := q.node.Mem.Write(op.Addr, op.Data); err != nil {
			obs.End(0)
			return err
		}
		if q.node.PM {
			q.node.pending.Add(int64(len(op.Data)))
		}
	}
	obs.End(int64(total))
	return nil
}

// Call performs a two-sided RPC: SEND the request, execute the named
// handler on the target CPU, receive the response. One network round trip
// plus remote CPU dispatch.
func (q *QP) Call(c *sim.Clock, name string, req []byte) ([]byte, error) {
	if err := q.alive(); err != nil {
		return nil, err
	}
	op := q.cfg.Begin(c, "rdma.call")
	if o := q.cfg.Inject(c, "rdma.call"); o.Drop || o.Torn {
		op.End(0)
		return nil, o.FaultErr()
	}
	h, err := q.node.handler(name)
	if err != nil {
		op.End(0)
		return nil, err
	}
	q.stats.RPCs.Add(1)
	q.stats.BytesOut.Add(int64(len(req)))
	q.node.NIC.Charge(c, q.cfg.RDMARPC.Cost(len(req)))
	q.node.CPU.Charge(c, q.cfg.RemoteCPU)
	resp := h(c, req)
	q.stats.BytesIn.Add(int64(len(resp)))
	// Response transfer (bandwidth term only; the round trip base was
	// charged with the request).
	m := sim.LatencyModel{BytesPerSec: q.cfg.RDMARPC.BytesPerSec}
	c.Advance(m.Cost(len(resp)))
	op.End(int64(len(req) + len(resp)))
	return resp, nil
}

// CallPersist is the two-sided persistence path: the RPC handler on the PM
// node writes the payload and flushes it inside the persistence domain
// before replying. One round trip + remote CPU + PM write.
func (q *QP) CallPersist(c *sim.Clock, addr uint64, p []byte) error {
	if err := q.alive(); err != nil {
		return err
	}
	op := q.cfg.Begin(c, "rdma.call")
	if o := q.cfg.Inject(c, "rdma.call"); o.Drop || o.Torn {
		op.End(0)
		return o.FaultErr()
	}
	q.stats.RPCs.Add(1)
	q.stats.BytesOut.Add(int64(len(p)))
	q.node.NIC.Charge(c, q.cfg.RDMARPC.Cost(len(p)))
	q.node.CPU.Charge(c, q.cfg.RemoteCPU)
	if err := q.node.Mem.Write(addr, p); err != nil {
		op.End(0)
		return err
	}
	// Server-side flush: bandwidth-bound PM write (the base PM latency
	// overlaps with composing the reply), no extra round trip.
	drain := sim.LatencyModel{BytesPerSec: q.cfg.PMWrite.BytesPerSec}
	q.node.CPU.Charge(c, drain.Cost(len(p)))
	op.End(int64(len(p)))
	return nil
}
