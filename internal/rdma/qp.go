package rdma

import (
	"errors"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// ErrNodeFailed is returned by verbs issued against a crashed node.
var ErrNodeFailed = errors.New("rdma: node failed")

// Stats aggregates fabric traffic. A Stats value may be shared by many
// queue pairs (e.g. all connections belonging to one engine) so experiments
// can report network bytes/messages per transaction. Safe for concurrent use.
type Stats struct {
	Ops      atomic.Int64 // doorbell-batched submissions (1 per PostN)
	WQEs     atomic.Int64 // individual verbs posted (≥ Ops)
	RPCs     atomic.Int64
	BytesOut atomic.Int64 // initiator -> target
	BytesIn  atomic.Int64 // target -> initiator
	CASFail  atomic.Int64
}

// TotalBytes reports BytesOut + BytesIn.
func (s *Stats) TotalBytes() int64 { return s.BytesOut.Load() + s.BytesIn.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Ops.Store(0)
	s.WQEs.Store(0)
	s.RPCs.Store(0)
	s.BytesOut.Store(0)
	s.BytesIn.Store(0)
	s.CASFail.Store(0)
}

// QP is a queue pair connecting an initiator to one target node. It is safe
// for concurrent use, but idiomatic usage gives each worker its own QP (as
// on real hardware); the shared contention point is the target NIC meter.
type QP struct {
	cfg   *sim.Config
	node  *Node
	stats *Stats
}

// Connect creates a queue pair to the target node. stats may be nil.
func Connect(cfg *sim.Config, node *Node, stats *Stats) *QP {
	if stats == nil {
		stats = &Stats{}
	}
	return &QP{cfg: cfg, node: node, stats: stats}
}

// Node returns the target node.
func (q *QP) Node() *Node { return q.node }

// Config returns the substrate config the queue pair was built on.
func (q *QP) Config() *sim.Config { return q.cfg }

// Stats returns the stats sink attached to this QP.
func (q *QP) Stats() *Stats { return q.stats }

func (q *QP) alive() error {
	if q.node.Failed() {
		return ErrNodeFailed
	}
	return nil
}

// Opcode selects the one-sided operation a Verb performs.
type Opcode uint8

const (
	// OpWrite posts Data to Addr (completes in the NIC domain, not the
	// persistence domain — see Write).
	OpWrite Opcode = iota
	// OpRead reads len(Data) bytes at Addr into Data; on a PM node it is
	// a flushing read.
	OpRead
	// OpCAS compares the 8 bytes at Addr with Old and installs New on
	// match; the outcome lands in Swapped.
	OpCAS
	// OpFAA adds Add to the 8 bytes at Addr; the new value lands in Val.
	OpFAA
	// OpLoad reads the 8 bytes at Addr word-atomically into Val; on a PM
	// node it is a flushing read.
	OpLoad
)

// Verb is one work-queue entry of a doorbell-batched submission. Result
// fields (Val, Swapped) are filled in by PostN.
type Verb struct {
	Op       Opcode
	Addr     uint64
	Data     []byte // OpWrite payload / OpRead destination
	Old, New uint64 // OpCAS operands
	Add      uint64 // OpFAA operand

	Val     uint64 // result: OpFAA new value, OpLoad loaded value
	Swapped bool   // result: OpCAS outcome
}

func (v *Verb) wireBytes() int {
	switch v.Op {
	case OpWrite, OpRead:
		return len(v.Data)
	default:
		return 8
	}
}

// post is the single choke point every one-sided verb goes through: one
// liveness check, one trace span, one fault-injection decision, and one
// NIC charge per doorbell, however many WQEs ride it. Cost is the RDMA
// base + the summed transfer terms + a per-WQE marginal term for entries
// beyond the first; verbs then apply in order.
func (q *QP) post(c *sim.Clock, site string, verbs []Verb) error {
	if err := q.alive(); err != nil {
		return err
	}
	if len(verbs) == 0 {
		return nil
	}
	// Admission gate on the target NIC: under overload the gate sheds the
	// doorbell before any fault decision or meter charge.
	if err := q.cfg.Admit(c, site, q.node.NIC); err != nil {
		return err
	}
	op := q.cfg.Begin(c, site)
	o := q.cfg.Inject(c, site)
	if o.Drop || o.Torn {
		op.End(0)
		return o.FaultErr()
	}
	total := 0
	for i := range verbs {
		total += verbs[i].wireBytes()
	}
	cost := q.cfg.RDMA.Cost(total)
	if n := len(verbs); n > 1 {
		cost += time.Duration(n-1) * q.cfg.RDMAPerWQE
	}
	q.node.NIC.Charge(c, cost)
	q.stats.Ops.Add(1)
	q.stats.WQEs.Add(int64(len(verbs)))
	var moved int64
	for i := range verbs {
		v := &verbs[i]
		switch v.Op {
		case OpWrite:
			q.stats.BytesOut.Add(int64(len(v.Data)))
			if err := q.node.Mem.Write(v.Addr, v.Data); err != nil {
				op.End(moved)
				return err
			}
			if o.Duplicate {
				// Duplicated delivery: one-sided writes are idempotent,
				// so the repeat lands harmlessly on the same bytes.
				if err := q.node.Mem.Write(v.Addr, v.Data); err != nil {
					op.End(moved)
					return err
				}
			}
			if q.node.PM {
				q.node.pending.Add(int64(len(v.Data)))
			}
			moved += int64(len(v.Data))
		case OpRead:
			q.stats.BytesIn.Add(int64(len(v.Data)))
			if q.node.PM {
				q.drainPending(c)
			}
			if err := q.node.Mem.Read(v.Addr, v.Data); err != nil {
				op.End(moved)
				return err
			}
			moved += int64(len(v.Data))
		case OpCAS:
			q.stats.BytesOut.Add(8)
			ok, err := q.node.Mem.CAS64(v.Addr, v.Old, v.New)
			if err != nil {
				op.End(moved)
				return err
			}
			v.Swapped = ok
			if !ok {
				q.stats.CASFail.Add(1)
			}
			moved += 8
		case OpFAA:
			q.stats.BytesOut.Add(8)
			nv, err := q.node.Mem.Add64(v.Addr, v.Add)
			if err != nil {
				op.End(moved)
				return err
			}
			v.Val = nv
			moved += 8
		case OpLoad:
			q.stats.BytesIn.Add(8)
			if q.node.PM {
				q.drainPending(c)
			}
			nv, err := q.node.Mem.Load64(v.Addr)
			if err != nil {
				op.End(moved)
				return err
			}
			v.Val = nv
			moved += 8
		}
	}
	op.End(moved)
	return nil
}

// PostN posts verbs as one doorbell-batched submission with a single
// completion poll. Within the batch a read verb still acts as the flushing
// read for writes posted before it.
func (q *QP) PostN(c *sim.Clock, verbs []Verb) error {
	return q.post(c, "rdma.post", verbs)
}

// Read issues a one-sided READ of len(p) bytes at addr. On a PM node a
// READ also acts as the flushing read of Kalia et al.: it forces all prior
// posted writes on this connection into the persistence domain.
func (q *QP) Read(c *sim.Clock, addr uint64, p []byte) error {
	v := [1]Verb{{Op: OpRead, Addr: addr, Data: p}}
	return q.post(c, "rdma.read", v[:])
}

// Write issues a one-sided WRITE. The verb completes when the data is in
// the target NIC/PCIe domain: on a PM node that does NOT imply persistence
// (the central trap of §2.3) — the posted bytes are tracked as pending
// until a flushing Read or a server-side flush drains them.
func (q *QP) Write(c *sim.Clock, addr uint64, p []byte) error {
	v := [1]Verb{{Op: OpWrite, Addr: addr, Data: p}}
	return q.post(c, "rdma.write", v[:])
}

// drainPending charges the PM write-bandwidth cost of moving pending bytes
// into the persistence domain and clears the gauge.
func (q *QP) drainPending(c *sim.Clock) {
	n := q.node.pending.Swap(0)
	if n > 0 {
		// Bandwidth term only: the base PM latency overlaps with the
		// network round trip that triggered the drain.
		m := sim.LatencyModel{BytesPerSec: q.cfg.PMWrite.BytesPerSec}
		c.Advance(m.Cost(int(n)))
	}
}

// WritePersist performs the one-sided persistent write recipe: WRITE
// followed by a dependent zero-byte flushing READ. It costs two round trips
// plus the PM drain — which is exactly why Kalia et al. found the
// two-sided CallPersist faster.
func (q *QP) WritePersist(c *sim.Clock, addr uint64, p []byte) error {
	op := q.cfg.Begin(c, "rdma.writepersist")
	if err := q.Write(c, addr, p); err != nil {
		op.End(0)
		return err
	}
	if err := q.alive(); err != nil {
		op.End(0)
		return err
	}
	q.node.NIC.Charge(c, q.cfg.RDMA.Cost(0))
	q.stats.Ops.Add(1)
	q.drainPending(c)
	op.End(int64(len(p)))
	return nil
}

// CAS issues a one-sided 8-byte compare-and-swap at addr, returning whether
// it installed new. Failed CASes are counted — retry storms under
// contention are a first-class effect in RACE/Sherman experiments.
func (q *QP) CAS(c *sim.Clock, addr uint64, old, new uint64) (bool, error) {
	v := [1]Verb{{Op: OpCAS, Addr: addr, Old: old, New: new}}
	err := q.post(c, "rdma.cas", v[:])
	return v[0].Swapped, err
}

// FAA issues a one-sided fetch-and-add, returning the new value.
func (q *QP) FAA(c *sim.Clock, addr uint64, delta uint64) (uint64, error) {
	v := [1]Verb{{Op: OpFAA, Addr: addr, Add: delta}}
	err := q.post(c, "rdma.faa", v[:])
	return v[0].Val, err
}

// Load64 issues an 8-byte one-sided READ (word-atomic).
func (q *QP) Load64(c *sim.Clock, addr uint64) (uint64, error) {
	v := [1]Verb{{Op: OpLoad, Addr: addr}}
	err := q.post(c, "rdma.read", v[:])
	return v[0].Val, err
}

// WriteOp is one element of a doorbell-batched write.
type WriteOp struct {
	Addr uint64
	Data []byte
}

// WriteBatch posts several writes with one doorbell (Sherman's batching
// optimization): a single base latency, summed transfer terms, in-order
// application. It is PostN specialized to writes, kept for callers that
// batch homogeneous page/log writes.
func (q *QP) WriteBatch(c *sim.Clock, ops []WriteOp) error {
	if len(ops) == 0 {
		if err := q.alive(); err != nil {
			return err
		}
		return nil
	}
	verbs := make([]Verb, len(ops))
	for i, op := range ops {
		verbs[i] = Verb{Op: OpWrite, Addr: op.Addr, Data: op.Data}
	}
	return q.post(c, "rdma.write", verbs)
}

// Call performs a two-sided RPC: SEND the request, execute the named
// handler on the target CPU, receive the response. One network round trip
// plus remote CPU dispatch.
func (q *QP) Call(c *sim.Clock, name string, req []byte) ([]byte, error) {
	if err := q.alive(); err != nil {
		return nil, err
	}
	// Admission gate for two-sided RPCs (the memnode control plane rides
	// this path): shed before the fault decision and the NIC/CPU charges.
	if err := q.cfg.Admit(c, "rdma.call", q.node.NIC); err != nil {
		return nil, err
	}
	op := q.cfg.Begin(c, "rdma.call")
	if o := q.cfg.Inject(c, "rdma.call"); o.Drop || o.Torn {
		op.End(0)
		return nil, o.FaultErr()
	}
	h, err := q.node.handler(name)
	if err != nil {
		op.End(0)
		return nil, err
	}
	q.stats.RPCs.Add(1)
	q.stats.BytesOut.Add(int64(len(req)))
	q.node.NIC.Charge(c, q.cfg.RDMARPC.Cost(len(req)))
	q.node.CPU.Charge(c, q.cfg.RemoteCPU)
	resp := h(c, req)
	q.stats.BytesIn.Add(int64(len(resp)))
	// Response transfer (bandwidth term only; the round trip base was
	// charged with the request).
	m := sim.LatencyModel{BytesPerSec: q.cfg.RDMARPC.BytesPerSec}
	c.Advance(m.Cost(len(resp)))
	op.End(int64(len(req) + len(resp)))
	return resp, nil
}

// CallPersist is the two-sided persistence path: the RPC handler on the PM
// node writes the payload and flushes it inside the persistence domain
// before replying. One round trip + remote CPU + PM write.
func (q *QP) CallPersist(c *sim.Clock, addr uint64, p []byte) error {
	if err := q.alive(); err != nil {
		return err
	}
	if err := q.cfg.Admit(c, "rdma.call", q.node.NIC); err != nil {
		return err
	}
	op := q.cfg.Begin(c, "rdma.call")
	if o := q.cfg.Inject(c, "rdma.call"); o.Drop || o.Torn {
		op.End(0)
		return o.FaultErr()
	}
	q.stats.RPCs.Add(1)
	q.stats.BytesOut.Add(int64(len(p)))
	q.node.NIC.Charge(c, q.cfg.RDMARPC.Cost(len(p)))
	q.node.CPU.Charge(c, q.cfg.RemoteCPU)
	if err := q.node.Mem.Write(addr, p); err != nil {
		op.End(0)
		return err
	}
	// Server-side flush: bandwidth-bound PM write (the base PM latency
	// overlaps with composing the reply), no extra round trip.
	drain := sim.LatencyModel{BytesPerSec: q.cfg.PMWrite.BytesPerSec}
	q.node.CPU.Charge(c, drain.Cost(len(p)))
	op.End(int64(len(p)))
	return nil
}
