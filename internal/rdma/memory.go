// Package rdma models an RDMA-capable fabric at the verbs level: registered
// memory regions, queue pairs with one-sided READ/WRITE/CAS/FAA and
// two-sided SEND/RECV RPC, doorbell batching, and the persistence semantics
// of remote persistent memory (a one-sided write completes before data
// reaches the persistence domain; a trailing read or a server-side flush is
// required — Kalia et al., §2.3 of the tutorial).
//
// Time is virtual (see internal/sim) but state is real: remote memory is a
// word-atomic byte array, so concurrent compare-and-swap contention, torn
// multi-word reads, and retry storms behave as they do on real hardware.
package rdma

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Memory is a byte-addressable region with word (8-byte) atomicity — the
// same guarantee RDMA NICs give. Bulk reads and writes are performed word
// by word with atomic loads/stores: individual words are never torn, but a
// multi-word transfer can interleave with concurrent writers, exactly like
// a one-sided READ racing a remote writer. Higher layers (RACE, Sherman)
// must — and do — handle that with versions and checksums.
type Memory struct {
	words []uint64
	size  uint64
}

// NewMemory allocates a region of the given size in bytes (rounded up to a
// whole number of words).
func NewMemory(size int) *Memory {
	if size < 0 {
		size = 0
	}
	nw := (size + 7) / 8
	return &Memory{words: make([]uint64, nw), size: uint64(size)}
}

// Size reports the usable size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// ErrOutOfBounds reports an access outside the registered region.
type ErrOutOfBounds struct {
	Addr uint64
	Len  int
	Size uint64
}

func (e *ErrOutOfBounds) Error() string {
	return fmt.Sprintf("rdma: access [%d,%d) outside region of %d bytes", e.Addr, e.Addr+uint64(e.Len), e.Size)
}

func (m *Memory) check(addr uint64, n int) error {
	if n < 0 || addr > m.size || uint64(n) > m.size-addr {
		return &ErrOutOfBounds{Addr: addr, Len: n, Size: m.size}
	}
	return nil
}

// Read copies len(p) bytes starting at addr into p.
func (m *Memory) Read(addr uint64, p []byte) error {
	if err := m.check(addr, len(p)); err != nil {
		return err
	}
	i := 0
	for i < len(p) {
		w := (addr + uint64(i)) / 8
		off := int((addr + uint64(i)) % 8)
		v := atomic.LoadUint64(&m.words[w])
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		n := copy(p[i:], tmp[off:])
		i += n
	}
	return nil
}

// Write copies p into the region starting at addr. Partial words at the
// edges are merged with a CAS loop so concurrent writers to adjacent bytes
// in the same word do not clobber each other.
func (m *Memory) Write(addr uint64, p []byte) error {
	if err := m.check(addr, len(p)); err != nil {
		return err
	}
	i := 0
	for i < len(p) {
		pos := addr + uint64(i)
		w := pos / 8
		off := int(pos % 8)
		n := 8 - off
		if n > len(p)-i {
			n = len(p) - i
		}
		if off == 0 && n == 8 {
			atomic.StoreUint64(&m.words[w], binary.LittleEndian.Uint64(p[i:]))
		} else {
			for {
				old := atomic.LoadUint64(&m.words[w])
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], old)
				copy(tmp[off:off+n], p[i:i+n])
				if atomic.CompareAndSwapUint64(&m.words[w], old, binary.LittleEndian.Uint64(tmp[:])) {
					break
				}
			}
		}
		i += n
	}
	return nil
}

func (m *Memory) wordIndex(addr uint64) (int, error) {
	if addr%8 != 0 {
		return 0, fmt.Errorf("rdma: atomic op at unaligned address %d", addr)
	}
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	return int(addr / 8), nil
}

// Load64 atomically loads the word at addr (8-byte aligned).
func (m *Memory) Load64(addr uint64) (uint64, error) {
	i, err := m.wordIndex(addr)
	if err != nil {
		return 0, err
	}
	return atomic.LoadUint64(&m.words[i]), nil
}

// Store64 atomically stores v at addr (8-byte aligned).
func (m *Memory) Store64(addr uint64, v uint64) error {
	i, err := m.wordIndex(addr)
	if err != nil {
		return err
	}
	atomic.StoreUint64(&m.words[i], v)
	return nil
}

// CAS64 atomically compares-and-swaps the word at addr.
func (m *Memory) CAS64(addr uint64, old, new uint64) (bool, error) {
	i, err := m.wordIndex(addr)
	if err != nil {
		return false, err
	}
	return atomic.CompareAndSwapUint64(&m.words[i], old, new), nil
}

// Add64 atomically adds delta to the word at addr, returning the new value.
func (m *Memory) Add64(addr uint64, delta uint64) (uint64, error) {
	i, err := m.wordIndex(addr)
	if err != nil {
		return 0, err
	}
	return atomic.AddUint64(&m.words[i], delta), nil
}
