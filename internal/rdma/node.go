package rdma

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/disagglab/disagg/internal/sim"
)

// Handler is a two-sided RPC handler executed on the target node. The
// caller's clock is passed through so that any device work the handler
// performs is charged to the waiting caller, matching synchronous RPC.
type Handler func(c *sim.Clock, req []byte) []byte

// Node is an RDMA-attached server: a registered memory region, a NIC meter,
// a (deliberately weak, per the DDC model in §1) CPU meter, and an RPC
// handler table. If PM is set the memory is persistent-capable and the node
// tracks bytes that have been posted by one-sided writes but have not yet
// reached the persistence domain.
type Node struct {
	Name string
	Mem  *Memory
	NIC  *sim.Meter
	CPU  *sim.Meter
	// PM marks the region as persistent memory with RDMA flush semantics.
	PM bool

	cfg      *sim.Config
	mu       sync.RWMutex
	handlers map[string]Handler
	pending  atomic.Int64 // unflushed bytes (PM only)
	failed   atomic.Bool
}

// NewNode creates a node with size bytes of registered memory.
func NewNode(cfg *sim.Config, name string, size int) *Node {
	n := &Node{
		Name:     name,
		Mem:      NewMemory(size),
		NIC:      sim.NewMeter(cfg.NICSlots),
		CPU:      sim.NewMeter(cfg.CPUSlots),
		cfg:      cfg,
		handlers: make(map[string]Handler),
	}
	cfg.RegisterMeter("rdma."+name+".nic", n.NIC)
	cfg.RegisterMeter("rdma."+name+".cpu", n.CPU)
	return n
}

// NewPMNode creates a node whose memory is persistent memory.
func NewPMNode(cfg *sim.Config, name string, size int) *Node {
	n := NewNode(cfg, name, size)
	n.PM = true
	return n
}

// Handle registers an RPC handler under the given name.
func (n *Node) Handle(name string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[name] = h
}

func (n *Node) handler(name string) (Handler, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.handlers[name]
	if !ok {
		return nil, fmt.Errorf("rdma: node %s: no handler %q", n.Name, name)
	}
	return h, nil
}

// Fail marks the node as crashed: subsequent verbs return ErrNodeFailed.
// Registered memory contents are preserved iff the node is a PM node
// (persistence), otherwise they are wiped — memory disaggregation disables
// fate sharing but DRAM is still volatile.
func (n *Node) Fail() {
	n.failed.Store(true)
	if !n.PM {
		for i := range n.Mem.words {
			atomic.StoreUint64(&n.Mem.words[i], 0)
		}
	}
}

// Restart clears the failed flag (contents follow Fail semantics).
func (n *Node) Restart() { n.failed.Store(false) }

// Failed reports whether the node is down.
func (n *Node) Failed() bool { return n.failed.Load() }

// PendingPersist reports bytes posted by one-sided writes that have not yet
// reached the persistence domain. Non-PM nodes always report zero.
func (n *Node) PendingPersist() int64 {
	if !n.PM {
		return 0
	}
	return n.pending.Load()
}
