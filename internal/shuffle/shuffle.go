// Package shuffle implements the two intermediate-shuffle architectures
// Dremel compares (§3.2): the classic direct shuffle, where every producer
// streams a partition to every consumer (P×C flows, quadratic fan-out and
// per-pair connection overheads, state coupled to compute), and the
// disaggregated shuffle layer, where producers write partitioned data to a
// memory pool (P flows) and consumers read their partition (C flows),
// decoupling shuffle state from compute.
package shuffle

import (
	"encoding/binary"
	"errors"
	"sync"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// ErrNoSpace is returned when the shuffle layer's pool is exhausted.
var ErrNoSpace = errors.New("shuffle: pool full")

// Direct is the producer-to-consumer shuffle: data flows over per-pair TCP
// streams; each pair costs a message base latency.
type Direct struct {
	cfg       *sim.Config
	consumers int

	mu    sync.Mutex
	boxes []map[int][][]uint64 // consumer -> producer -> chunks
	// Connections counts distinct producer-consumer flows used.
	conns map[[2]int]bool
}

// NewDirect builds a direct shuffle toward `consumers` consumers.
func NewDirect(cfg *sim.Config, consumers int) *Direct {
	d := &Direct{cfg: cfg, consumers: consumers, conns: make(map[[2]int]bool)}
	d.boxes = make([]map[int][][]uint64, consumers)
	for i := range d.boxes {
		d.boxes[i] = make(map[int][][]uint64)
	}
	return d
}

// Connections reports the number of distinct flows (the quadratic term).
func (d *Direct) Connections() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

// Produce partitions rows by hash and sends each partition to its
// consumer: one message per consumer, each paying the TCP base latency.
func (d *Direct) Produce(c *sim.Clock, producer int, rows []uint64) {
	parts := make([][]uint64, d.consumers)
	for _, r := range rows {
		p := int(hash64(r) % uint64(d.consumers))
		parts[p] = append(parts[p], r)
	}
	c.Advance(d.cfg.CPU.Cost(len(rows) * 8))
	for ci, part := range parts {
		// Every consumer gets a message even when empty (end-of-stream
		// markers), which is exactly the P×C scaling problem.
		c.Advance(d.cfg.TCP.Cost(len(part) * 8))
		d.mu.Lock()
		d.conns[[2]int{producer, ci}] = true
		if len(part) > 0 {
			d.boxes[ci][producer] = append(d.boxes[ci][producer], part)
		}
		d.mu.Unlock()
	}
}

// Consume collects consumer ci's partition (already delivered; a real
// consumer overlaps receive with produce — we charge only the merge).
func (d *Direct) Consume(c *sim.Clock, ci int) []uint64 {
	d.mu.Lock()
	box := d.boxes[ci]
	d.boxes[ci] = make(map[int][][]uint64)
	d.mu.Unlock()
	var out []uint64
	for _, chunks := range box {
		for _, ch := range chunks {
			out = append(out, ch...)
		}
	}
	c.Advance(d.cfg.CPU.Cost(len(out) * 8))
	return out
}

// Layer is the Dremel-style disaggregated shuffle tier: a memory pool
// holding per-partition append logs.
type Layer struct {
	cfg        *sim.Config
	pool       *memnode.Pool
	partitions int

	mu     sync.Mutex
	chunks [][]chunk // per partition
}

type chunk struct {
	addr uint64
	n    int
}

// NewLayer creates the shuffle layer over a memory pool and registers the
// partition-fetch handler: consumers retrieve their whole (server-merged)
// partition with a single request, which is what keeps consumer-side cost
// independent of the producer count.
func NewLayer(cfg *sim.Config, pool *memnode.Pool, partitions int) *Layer {
	l := &Layer{cfg: cfg, pool: pool, partitions: partitions, chunks: make([][]chunk, partitions)}
	pool.Node().Handle("shuffle.fetch", l.handleFetch)
	return l
}

// handleFetch merges one partition's chunks node-side.
func (l *Layer) handleFetch(c *sim.Clock, req []byte) []byte {
	if len(req) != 4 {
		return nil
	}
	pi := int(binary.LittleEndian.Uint32(req))
	if pi < 0 || pi >= l.partitions {
		return nil
	}
	l.mu.Lock()
	chunks := append([]chunk(nil), l.chunks[pi]...)
	l.mu.Unlock()
	total := 0
	for _, ch := range chunks {
		total += ch.n
	}
	out := make([]byte, 4, 4+total*8)
	binary.LittleEndian.PutUint32(out, uint32(total))
	mem := l.pool.Node().Mem
	for _, ch := range chunks {
		buf := make([]byte, ch.n*8)
		if mem.Read(ch.addr, buf) != nil {
			return nil
		}
		out = append(out, buf...)
	}
	c.Advance(l.cfg.DRAM.Cost(total * 8))
	return out
}

// Produce partitions rows and appends each partition's chunk to the layer
// with a single doorbell-batched RDMA write (one flow per producer).
func (l *Layer) Produce(c *sim.Clock, qp *rdma.QP, rows []uint64) error {
	parts := make([][]uint64, l.partitions)
	for _, r := range rows {
		p := int(hash64(r) % uint64(l.partitions))
		parts[p] = append(parts[p], r)
	}
	c.Advance(l.cfg.CPU.Cost(len(rows) * 8))
	var ops []rdma.WriteOp
	var placed []struct {
		part int
		ch   chunk
	}
	for pi, part := range parts {
		if len(part) == 0 {
			continue
		}
		addr, err := l.pool.Alloc(uint64(len(part) * 8))
		if err != nil {
			return ErrNoSpace
		}
		buf := make([]byte, len(part)*8)
		for i, v := range part {
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
		ops = append(ops, rdma.WriteOp{Addr: addr, Data: buf})
		placed = append(placed, struct {
			part int
			ch   chunk
		}{pi, chunk{addr, len(part)}})
	}
	if err := qp.WriteBatch(c, ops); err != nil {
		return err
	}
	l.mu.Lock()
	for _, p := range placed {
		l.chunks[p.part] = append(l.chunks[p.part], p.ch)
	}
	l.mu.Unlock()
	return nil
}

// Consume fetches partition pi as one server-merged response (one flow,
// one request, regardless of how many producers contributed).
func (l *Layer) Consume(c *sim.Clock, qp *rdma.QP, pi int) ([]uint64, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], uint32(pi))
	resp, err := qp.Call(c, "shuffle.fetch", req[:])
	if err != nil {
		return nil, err
	}
	if len(resp) < 4 {
		return nil, errors.New("shuffle: bad fetch response")
	}
	n := int(binary.LittleEndian.Uint32(resp))
	if len(resp) < 4+n*8 {
		return nil, errors.New("shuffle: truncated fetch response")
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(resp[4+i*8:])
	}
	c.Advance(l.cfg.CPU.Cost(len(out) * 8))
	return out, nil
}

// Release frees a partition's chunks after consumption (shuffle state has
// its own lifecycle, decoupled from both producers and consumers).
func (l *Layer) Release(pi int) {
	l.mu.Lock()
	chunks := l.chunks[pi]
	l.chunks[pi] = nil
	l.mu.Unlock()
	for _, ch := range chunks {
		l.pool.Free(ch.addr)
	}
}

// PartitionOf reports the partition a row routes to (consumers verify
// routing in tests).
func (l *Layer) PartitionOf(row uint64) int { return int(hash64(row) % uint64(l.partitions)) }

// PartitionOf reports the consumer a row routes to in the direct shuffle.
func (d *Direct) PartitionOf(row uint64) int { return int(hash64(row) % uint64(d.consumers)) }

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}
