package shuffle

import (
	"sort"
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/sim"
)

func rowsFor(seed int64, n int) []uint64 {
	r := sim.NewRand(seed, 0)
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(r.Int63())
	}
	return out
}

func TestDirectShuffleDeliversEverything(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := NewDirect(cfg, 4)
	c := sim.NewClock()
	var all []uint64
	for p := 0; p < 3; p++ {
		rows := rowsFor(int64(p), 1000)
		all = append(all, rows...)
		d.Produce(c, p, rows)
	}
	var got []uint64
	for ci := 0; ci < 4; ci++ {
		part := d.Consume(c, ci)
		for _, v := range part {
			if d.PartitionOf(v) != ci {
				t.Fatalf("row %d misrouted to consumer %d", v, ci)
			}
		}
		got = append(got, part...)
	}
	if !sameMultiset(all, got) {
		t.Fatalf("lost rows: sent %d got %d", len(all), len(got))
	}
	if d.Connections() != 12 {
		t.Fatalf("connections = %d, want 3x4", d.Connections())
	}
}

func TestLayerShuffleDeliversEverything(t *testing.T) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "shuf", 64<<20)
	l := NewLayer(cfg, pool, 4)
	c := sim.NewClock()
	var all []uint64
	for p := 0; p < 3; p++ {
		rows := rowsFor(int64(p), 1000)
		all = append(all, rows...)
		qp := pool.Connect(nil)
		if err := l.Produce(c, qp, rows); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	for ci := 0; ci < 4; ci++ {
		qp := pool.Connect(nil)
		part, err := l.Consume(c, qp, ci)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range part {
			if l.PartitionOf(v) != ci {
				t.Fatalf("row %d misrouted to partition %d", v, ci)
			}
		}
		got = append(got, part...)
	}
	if !sameMultiset(all, got) {
		t.Fatalf("lost rows: sent %d got %d", len(all), len(got))
	}
}

func TestLayerReleaseFreesPool(t *testing.T) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "shuf", 1<<20)
	l := NewLayer(cfg, pool, 2)
	c := sim.NewClock()
	qp := pool.Connect(nil)
	free0 := pool.FreeBytes()
	l.Produce(c, qp, rowsFor(1, 1000))
	if pool.FreeBytes() >= free0 {
		t.Fatal("produce allocated nothing")
	}
	l.Release(0)
	l.Release(1)
	if pool.FreeBytes() != free0 {
		t.Fatalf("release leaked: %d vs %d", pool.FreeBytes(), free0)
	}
}

func TestDisaggScalesBetterThanDirect(t *testing.T) {
	// E16: at P=C=n, the direct shuffle pays n base latencies per
	// producer; the layer pays one batched write. The gap must widen
	// with n.
	cfg := sim.DefaultConfig()
	const rows = 2000
	runDirect := func(n int) sim.GroupResult {
		d := NewDirect(cfg, n)
		return sim.RunGroup(n, func(id int, c *sim.Clock) int {
			d.Produce(c, id, rowsFor(int64(id), rows))
			d.Consume(c, id)
			return 1
		})
	}
	runLayer := func(n int) sim.GroupResult {
		pool := memnode.New(cfg, "shuf", 1<<30)
		l := NewLayer(cfg, pool, n)
		return sim.RunGroup(n, func(id int, c *sim.Clock) int {
			qp := pool.Connect(nil)
			if err := l.Produce(c, qp, rowsFor(int64(id), rows)); err != nil {
				t.Errorf("produce: %v", err)
			}
			if _, err := l.Consume(c, qp, id); err != nil {
				t.Errorf("consume: %v", err)
			}
			return 1
		})
	}
	gapAt := func(n int) float64 {
		return float64(runDirect(n).MakeSpan) / float64(runLayer(n).MakeSpan)
	}
	small := gapAt(4)
	large := gapAt(32)
	if large <= small {
		t.Fatalf("disagg advantage should grow with scale: %0.1fx at 4, %0.1fx at 32", small, large)
	}
	if large < 5 {
		t.Fatalf("at 32x32 the layer should win by a lot, got %.1fx", large)
	}
}

func sameMultiset(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
