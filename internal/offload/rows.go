package offload

import (
	"encoding/binary"
	"errors"

	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// RegisterRowHandlers installs the row-returning pushdown ("filter rows"),
// used by the E13 selectivity sweep: unlike an aggregate, its result size
// grows with selectivity, so the pushdown advantage shrinks as selectivity
// approaches one.
func (rc *RemoteColumns) registerRowHandlers() {
	rc.pool.Node().Handle("teleport.filterrows", rc.handleFilterRows)
}

// PullFilterRows pages both columns in and returns the sum-column values
// of matching rows (client-side evaluation).
func (rc *RemoteColumns) PullFilterRows(c *sim.Clock, qp *rdma.QP, predCol string, lo, hi int64, outCol string) ([]int64, error) {
	pa, err := rc.addrOf(predCol)
	if err != nil {
		return nil, err
	}
	sa, err := rc.addrOf(outCol)
	if err != nil {
		return nil, err
	}
	pbuf := make([]byte, rc.rows*8)
	sbuf := make([]byte, rc.rows*8)
	for _, col := range []struct {
		addr uint64
		buf  []byte
	}{{pa, pbuf}, {sa, sbuf}} {
		for off := 0; off < len(col.buf); off += pagingGranule {
			end := off + pagingGranule
			if end > len(col.buf) {
				end = len(col.buf)
			}
			if err := qp.Read(c, col.addr+uint64(off), col.buf[off:end]); err != nil {
				return nil, err
			}
		}
	}
	c.Advance(rc.cfg.CPU.Cost(rc.rows * 16))
	var out []int64
	for i := 0; i < rc.rows; i++ {
		pv := int64(binary.LittleEndian.Uint64(pbuf[i*8:]))
		if pv >= lo && pv < hi {
			out = append(out, int64(binary.LittleEndian.Uint64(sbuf[i*8:])))
		}
	}
	return out, nil
}

// PushFilterRows offloads the filter and transfers back only matching rows.
func (rc *RemoteColumns) PushFilterRows(c *sim.Clock, qp *rdma.QP, predCol string, lo, hi int64, outCol string) ([]int64, error) {
	if err := rc.Sync(c, qp); err != nil {
		return nil, err
	}
	resp, err := qp.Call(c, "teleport.filterrows", encodeFilterSumReq(predCol, lo, hi, outCol))
	if err != nil {
		return nil, err
	}
	if len(resp) < 4 {
		return nil, errors.New("offload: bad filterrows response")
	}
	n := int(binary.LittleEndian.Uint32(resp))
	if len(resp) < 4+n*8 {
		return nil, errors.New("offload: truncated filterrows response")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(resp[4+i*8:]))
	}
	return out, nil
}

func (rc *RemoteColumns) handleFilterRows(c *sim.Clock, req []byte) []byte {
	predCol, lo, hi, outCol, err := decodeFilterSumReq(req)
	if err != nil {
		return nil
	}
	pa, err1 := rc.addrOf(predCol)
	sa, err2 := rc.addrOf(outCol)
	if err1 != nil || err2 != nil {
		return nil
	}
	mem := rc.pool.Node().Mem
	pbuf := make([]byte, rc.rows*8)
	sbuf := make([]byte, rc.rows*8)
	if mem.Read(pa, pbuf) != nil || mem.Read(sa, sbuf) != nil {
		return nil
	}
	c.Advance(rc.cfg.DRAM.Cost(rc.rows * 16))
	resp := make([]byte, 4)
	n := 0
	for i := 0; i < rc.rows; i++ {
		pv := int64(binary.LittleEndian.Uint64(pbuf[i*8:]))
		if pv >= lo && pv < hi {
			resp = append(resp, sbuf[i*8:i*8+8]...)
			n++
		}
	}
	binary.LittleEndian.PutUint32(resp, uint32(n))
	return resp
}
