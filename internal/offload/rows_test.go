package offload

import (
	"sort"
	"testing"

	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

func TestFilterRowsPullPushAgree(t *testing.T) {
	_, rc, qp := setup(t, 20_000)
	if rc.Rows() != 20_000 {
		t.Fatalf("rows = %d", rc.Rows())
	}
	pulled, err := rc.PullFilterRows(sim.NewClock(), qp, "a", 5, 8, "b")
	if err != nil {
		t.Fatal(err)
	}
	pushed, err := rc.PushFilterRows(sim.NewClock(), qp, "a", 5, 8, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(pulled) != len(pushed) || len(pulled) == 0 {
		t.Fatalf("lengths %d vs %d", len(pulled), len(pushed))
	}
	sort.Slice(pulled, func(i, j int) bool { return pulled[i] < pulled[j] })
	sort.Slice(pushed, func(i, j int) bool { return pushed[i] < pushed[j] })
	for i := range pulled {
		if pulled[i] != pushed[i] {
			t.Fatalf("row %d: %d vs %d", i, pulled[i], pushed[i])
		}
		// Values are row indices with a%100 in [5,8).
		if m := pulled[i] % 100; m < 5 || m >= 8 {
			t.Fatalf("row value %d fails predicate", pulled[i])
		}
	}
}

func TestFilterRowsAdvantageShrinksWithSelectivity(t *testing.T) {
	_, rc, qp := setup(t, 100_000)
	speedup := func(lo, hi int64) float64 {
		pc := sim.NewClock()
		if _, err := rc.PullFilterRows(pc, qp, "a", lo, hi, "b"); err != nil {
			t.Fatal(err)
		}
		sc := sim.NewClock()
		if _, err := rc.PushFilterRows(sc, qp, "a", lo, hi, "b"); err != nil {
			t.Fatal(err)
		}
		return float64(pc.Now()) / float64(sc.Now())
	}
	narrow := speedup(0, 1) // 1% of rows
	wide := speedup(0, 95)  // 95% of rows
	if !(narrow > wide) {
		t.Fatalf("advantage should shrink with selectivity: %.1fx vs %.1fx", narrow, wide)
	}
	if narrow < 2 {
		t.Fatalf("selective pushdown advantage too small: %.1fx", narrow)
	}
}

func TestFilterRowsErrors(t *testing.T) {
	_, rc, qp := setup(t, 100)
	if _, err := rc.PullFilterRows(sim.NewClock(), qp, "zzz", 0, 1, "b"); err == nil {
		t.Fatal("unknown pred column accepted")
	}
	if _, err := rc.PullFilterRows(sim.NewClock(), qp, "a", 0, 1, "zzz"); err == nil {
		t.Fatal("unknown out column accepted")
	}
	if _, err := rc.PushFilterRows(sim.NewClock(), qp, "zzz", 0, 1, "b"); err == nil {
		t.Fatal("unknown pushdown column accepted")
	}
}

func TestPushFilterRowsSyncsDirtyData(t *testing.T) {
	_, rc, qp := setup(t, 1000)
	// Move row 0's predicate value into the selected range.
	if err := rc.LocalWrite("a", 0, 42); err != nil {
		t.Fatal(err)
	}
	rows, err := rc.PushFilterRows(sim.NewClock(), qp, "a", 42, 43, "b")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rows {
		if v == 0 { // row 0's "b" value is 0
			found = true
		}
	}
	if !found {
		t.Fatal("dirty predicate value not visible to pushdown")
	}
	if rc.DirtyCount() != 0 {
		t.Fatal("sync did not drain dirty set")
	}
}

func TestHandlersRejectMalformedRequests(t *testing.T) {
	_, rc, qp := setup(t, 100)
	// Raw RPC with a garbage payload must not crash the node; handlers
	// return empty responses which surface as client-side errors.
	if resp, err := qp.Call(sim.NewClock(), "teleport.filterrows", []byte{1, 2}); err == nil && len(resp) >= 4 {
		t.Fatal("malformed request produced a plausible response")
	}
	if resp, err := qp.Call(sim.NewClock(), "teleport.filtersum", []byte{9}); err == nil && len(resp) == 16 {
		t.Fatal("malformed request produced a plausible response")
	}
	if resp, err := qp.Call(sim.NewClock(), "farview.stack", nil); err == nil && len(resp) >= 4 {
		t.Fatal("malformed request produced a plausible response")
	}
	_ = rc
	var _ *rdma.QP = qp
}
