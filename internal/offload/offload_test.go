package offload

import (
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

func setup(t *testing.T, rows int) (*sim.Config, *RemoteColumns, *rdma.QP) {
	t.Helper()
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 256<<20)
	tbl := query.NewTable("a", "b")
	for i := 0; i < rows; i++ {
		tbl.AppendRow(int64(i%100), int64(i))
	}
	rc, err := Upload(cfg, pool, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, rc, pool.Connect(nil)
}

func naiveFilterSum(rows int, lo, hi int64) (sum, count int64) {
	for i := 0; i < rows; i++ {
		if v := int64(i % 100); v >= lo && v < hi {
			sum += int64(i)
			count++
		}
	}
	return
}

func TestPullAndPushAgree(t *testing.T) {
	_, rc, qp := setup(t, 50_000)
	wantSum, wantCount := naiveFilterSum(50_000, 10, 20)
	pullSum, pullCount, err := rc.PullFilterSum(sim.NewClock(), qp, "a", 10, 20, "b")
	if err != nil {
		t.Fatal(err)
	}
	pushSum, pushCount, err := rc.PushFilterSum(sim.NewClock(), qp, "a", 10, 20, "b")
	if err != nil {
		t.Fatal(err)
	}
	if pullSum != wantSum || pullCount != wantCount {
		t.Fatalf("pull = (%d,%d), want (%d,%d)", pullSum, pullCount, wantSum, wantCount)
	}
	if pushSum != wantSum || pushCount != wantCount {
		t.Fatalf("push = (%d,%d), want (%d,%d)", pushSum, pushCount, wantSum, wantCount)
	}
}

func TestPushdownBeatsPullOnSelectiveQueries(t *testing.T) {
	// E13: pushdown eliminates the bulk transfer when output ≪ input.
	_, rc, qp := setup(t, 200_000)
	pull := sim.NewClock()
	if _, _, err := rc.PullFilterSum(pull, qp, "a", 10, 12, "b"); err != nil {
		t.Fatal(err)
	}
	push := sim.NewClock()
	if _, _, err := rc.PushFilterSum(push, qp, "a", 10, 12, "b"); err != nil {
		t.Fatal(err)
	}
	if !(push.Now() < pull.Now()/2) {
		t.Fatalf("pushdown %v should be ≫ faster than pull %v", push.Now(), pull.Now())
	}
}

func TestPushdownMovesFarFewerBytes(t *testing.T) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 256<<20)
	tbl := query.NewTable("a", "b")
	for i := 0; i < 100_000; i++ {
		tbl.AppendRow(int64(i%100), int64(i))
	}
	rc, err := Upload(cfg, pool, tbl)
	if err != nil {
		t.Fatal(err)
	}
	var pullStats, pushStats rdma.Stats
	qpPull := pool.Connect(&pullStats)
	qpPush := pool.Connect(&pushStats)
	rc.PullFilterSum(sim.NewClock(), qpPull, "a", 0, 5, "b")
	rc.PushFilterSum(sim.NewClock(), qpPush, "a", 0, 5, "b")
	if !(pushStats.TotalBytes() < pullStats.TotalBytes()/100) {
		t.Fatalf("push moved %d bytes, pull %d", pushStats.TotalBytes(), pullStats.TotalBytes())
	}
}

func TestDirtyDataSynchronizedBeforePushdown(t *testing.T) {
	// TELEPORT's coherence: compute-local dirty values must be visible
	// to the pushed-down computation.
	_, rc, qp := setup(t, 1000)
	// Overwrite row 0: pred value outside range, so it must be excluded.
	if err := rc.LocalWrite("a", 0, 999); err != nil {
		t.Fatal(err)
	}
	// And row 1's sum value becomes 1_000_000.
	if err := rc.LocalWrite("b", 1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if rc.DirtyCount() != 2 {
		t.Fatalf("dirty = %d", rc.DirtyCount())
	}
	sum, count, err := rc.PushFilterSum(sim.NewClock(), qp, "a", 0, 5, "b")
	if err != nil {
		t.Fatal(err)
	}
	if rc.DirtyCount() != 0 {
		t.Fatal("pushdown did not synchronize dirty data")
	}
	// Naive recomputation with the edits applied.
	var wantSum, wantCount int64
	for i := 0; i < 1000; i++ {
		pv := int64(i % 100)
		if i == 0 {
			pv = 999
		}
		if pv >= 0 && pv < 5 {
			sv := int64(i)
			if i == 1 {
				sv = 1_000_000
			}
			wantSum += sv
			wantCount++
		}
	}
	if sum != wantSum || count != wantCount {
		t.Fatalf("push after dirty writes = (%d,%d), want (%d,%d)", sum, count, wantSum, wantCount)
	}
}

func TestUnknownColumn(t *testing.T) {
	_, rc, qp := setup(t, 100)
	if _, _, err := rc.PullFilterSum(sim.NewClock(), qp, "zzz", 0, 1, "b"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if err := rc.LocalWrite("zzz", 0, 1); err == nil {
		t.Fatal("unknown column write accepted")
	}
}

func TestFarviewStackCorrectness(t *testing.T) {
	_, rc, qp := setup(t, 10_000)
	stages := []Stage{
		{Kind: StageSelect, Col: "a", Lo: 0, Hi: 10},
		{Kind: StageGroupBy, Col: "a"},
		{Kind: StageAgg, Col: "b"},
	}
	out, err := rc.RunStack(sim.NewClock(), qp, stages, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("groups = %d", len(out))
	}
	// Verify group 3: sum of i where i%100 == 3.
	var want int64
	for i := 0; i < 10_000; i++ {
		if i%100 == 3 {
			want += int64(i)
		}
	}
	if out[3] != want {
		t.Fatalf("group 3 = %d, want %d", out[3], want)
	}
}

func TestFarviewPipeliningCheaper(t *testing.T) {
	// E14: the pipelined operator stack beats stage-at-a-time
	// materialization.
	_, rc, qp := setup(t, 200_000)
	stages := []Stage{
		{Kind: StageSelect, Col: "a", Lo: 0, Hi: 50},
		{Kind: StageProject, Col: "b"},
		{Kind: StageGroupBy, Col: "a"},
		{Kind: StageAgg, Col: "b"},
	}
	piped := sim.NewClock()
	outP, err := rc.RunStack(piped, qp, stages, true)
	if err != nil {
		t.Fatal(err)
	}
	mat := sim.NewClock()
	outM, err := rc.RunStack(mat, qp, stages, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(outP) != len(outM) {
		t.Fatalf("results differ: %d vs %d groups", len(outP), len(outM))
	}
	if !(piped.Now() < mat.Now()) {
		t.Fatalf("pipelined %v should beat materialized %v", piped.Now(), mat.Now())
	}
}

func TestStackCodecRoundTrip(t *testing.T) {
	stages := []Stage{
		{Kind: StageSelect, Col: "abc", Lo: -5, Hi: 100},
		{Kind: StageAgg, Col: "x"},
	}
	got, piped, err := decodeStackReq(encodeStackReq(stages, true))
	if err != nil || !piped || len(got) != 2 {
		t.Fatalf("decode: %v %v %d", err, piped, len(got))
	}
	if got[0] != stages[0] || got[1] != stages[1] {
		t.Fatalf("round trip: %+v", got)
	}
	if _, _, err := decodeStackReq([]byte{5}); err == nil {
		t.Fatal("short request accepted")
	}
}
