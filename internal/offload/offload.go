// Package offload implements the compute-pushdown systems of §3.2:
//
//   - TELEPORT: a general pushdown facility on a disaggregated-OS-style
//     memory pool — the compute node ships a named function + arguments in
//     one RPC, the memory node executes it against its local memory, and
//     only the result crosses the fabric. Because the compute pool caches
//     (and dirties) parts of the pooled memory, pushdown must synchronize
//     dirty cached blocks on demand first (TELEPORT's coherence mechanism).
//
//   - Farview: a memory-node operator stack (selection, projection,
//     group-by, aggregation) executed by memory-side hardware with
//     pipelining across operators, so a chain of operators costs roughly
//     its slowest stage instead of the sum of stages.
package offload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// ErrNoColumn is returned for operations on unknown columns.
var ErrNoColumn = errors.New("offload: no such column")

// RemoteColumns is a columnar dataset resident in a disaggregated memory
// pool, with an optional compute-local cache that can hold dirty data —
// the situation TELEPORT's synchronization exists for.
type RemoteColumns struct {
	cfg  *sim.Config
	pool *memnode.Pool
	rows int

	mu    sync.Mutex
	addrs map[string]uint64
	// localDirty holds compute-side modifications not yet written back:
	// col -> row -> value.
	localDirty map[string]map[int]int64
}

// Upload moves a table into the pool and registers the pushdown handlers.
func Upload(cfg *sim.Config, pool *memnode.Pool, t *query.Table) (*RemoteColumns, error) {
	rc := &RemoteColumns{
		cfg:        cfg,
		pool:       pool,
		rows:       t.NumRows(),
		addrs:      make(map[string]uint64),
		localDirty: make(map[string]map[int]int64),
	}
	setup := sim.NewClock()
	qp := pool.Connect(nil)
	for i, name := range t.Schema.Cols {
		addr, err := pool.Alloc(uint64(t.NumRows() * 8))
		if err != nil {
			return nil, err
		}
		buf := make([]byte, t.NumRows()*8)
		for j, v := range t.Cols[i] {
			binary.LittleEndian.PutUint64(buf[j*8:], uint64(v))
		}
		if err := qp.Write(setup, addr, buf); err != nil {
			return nil, err
		}
		rc.addrs[name] = addr
	}
	pool.Node().Handle("teleport.filtersum", rc.handleFilterSum)
	pool.Node().Handle("farview.stack", rc.handleStack)
	rc.registerRowHandlers()
	return rc, nil
}

// Rows reports the dataset length.
func (rc *RemoteColumns) Rows() int { return rc.rows }

func (rc *RemoteColumns) addrOf(col string) (uint64, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	a, ok := rc.addrs[col]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	return a, nil
}

// LocalWrite stages a compute-side modification in the local cache (dirty:
// the pooled copy is now stale until Sync).
func (rc *RemoteColumns) LocalWrite(col string, row int, val int64) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.addrs[col]; !ok {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	m := rc.localDirty[col]
	if m == nil {
		m = make(map[int]int64)
		rc.localDirty[col] = m
	}
	m[row] = val
	return nil
}

// DirtyCount reports pending unsynchronized writes.
func (rc *RemoteColumns) DirtyCount() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n := 0
	for _, m := range rc.localDirty {
		n += len(m)
	}
	return n
}

// Sync writes dirty cached values back to the pool (charged per dirty
// word; TELEPORT synchronizes only on demand, which is why it beats
// application-agnostic page-granularity coherence).
func (rc *RemoteColumns) Sync(c *sim.Clock, qp *rdma.QP) error {
	rc.mu.Lock()
	dirty := rc.localDirty
	rc.localDirty = make(map[string]map[int]int64)
	addrs := make(map[string]uint64, len(rc.addrs))
	for k, v := range rc.addrs {
		addrs[k] = v
	}
	rc.mu.Unlock()
	var ops []rdma.WriteOp
	for col, m := range dirty {
		base := addrs[col]
		for row, val := range m {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(val))
			ops = append(ops, rdma.WriteOp{Addr: base + uint64(row*8), Data: b[:]})
		}
	}
	if len(ops) == 0 {
		return nil
	}
	return qp.WriteBatch(c, ops)
}

// pagingGranule is the disaggregated-OS paging unit: the TELEPORT
// substrate fetches remote memory in pages, so a pull-based scan pays a
// per-page round trip, not one bulk transfer.
const pagingGranule = 4096

// PullFilterSum is the NO-pushdown baseline: page the columns in over the
// fabric (4KB remote-paging granularity, as in the disaggregated OSes
// TELEPORT builds on) and evaluate locally. Local dirty values are merged
// for free (they are local).
func (rc *RemoteColumns) PullFilterSum(c *sim.Clock, qp *rdma.QP, predCol string, lo, hi int64, sumCol string) (sum int64, count int64, err error) {
	pa, err := rc.addrOf(predCol)
	if err != nil {
		return 0, 0, err
	}
	sa, err := rc.addrOf(sumCol)
	if err != nil {
		return 0, 0, err
	}
	pbuf := make([]byte, rc.rows*8)
	sbuf := make([]byte, rc.rows*8)
	for _, col := range []struct {
		addr uint64
		buf  []byte
	}{{pa, pbuf}, {sa, sbuf}} {
		for off := 0; off < len(col.buf); off += pagingGranule {
			end := off + pagingGranule
			if end > len(col.buf) {
				end = len(col.buf)
			}
			if err := qp.Read(c, col.addr+uint64(off), col.buf[off:end]); err != nil {
				return 0, 0, err
			}
		}
	}
	c.Advance(rc.cfg.CPU.Cost(rc.rows * 16))
	rc.mu.Lock()
	pd := rc.localDirty[predCol]
	sd := rc.localDirty[sumCol]
	rc.mu.Unlock()
	for i := 0; i < rc.rows; i++ {
		pv := int64(binary.LittleEndian.Uint64(pbuf[i*8:]))
		if v, ok := pd[i]; ok {
			pv = v
		}
		if pv >= lo && pv < hi {
			sv := int64(binary.LittleEndian.Uint64(sbuf[i*8:]))
			if v, ok := sd[i]; ok {
				sv = v
			}
			sum += sv
			count++
		}
	}
	return sum, count, nil
}

// PushFilterSum is the TELEPORT path: synchronize dirty cached data on
// demand, then one RPC executes filter+sum on the memory node; only 16
// bytes return.
func (rc *RemoteColumns) PushFilterSum(c *sim.Clock, qp *rdma.QP, predCol string, lo, hi int64, sumCol string) (sum int64, count int64, err error) {
	if err := rc.Sync(c, qp); err != nil {
		return 0, 0, err
	}
	req := encodeFilterSumReq(predCol, lo, hi, sumCol)
	resp, err := qp.Call(c, "teleport.filtersum", req)
	if err != nil {
		return 0, 0, err
	}
	if len(resp) != 16 {
		return 0, 0, errors.New("offload: bad pushdown response")
	}
	return int64(binary.LittleEndian.Uint64(resp)), int64(binary.LittleEndian.Uint64(resp[8:])), nil
}

func encodeFilterSumReq(predCol string, lo, hi int64, sumCol string) []byte {
	req := make([]byte, 0, 32+len(predCol)+len(sumCol))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(lo))
	req = append(req, b[:]...)
	binary.LittleEndian.PutUint64(b[:], uint64(hi))
	req = append(req, b[:]...)
	req = append(req, byte(len(predCol)))
	req = append(req, predCol...)
	req = append(req, byte(len(sumCol)))
	req = append(req, sumCol...)
	return req
}

func decodeFilterSumReq(req []byte) (predCol string, lo, hi int64, sumCol string, err error) {
	if len(req) < 18 {
		return "", 0, 0, "", errors.New("offload: short request")
	}
	lo = int64(binary.LittleEndian.Uint64(req))
	hi = int64(binary.LittleEndian.Uint64(req[8:]))
	p := 16
	n := int(req[p])
	p++
	if len(req) < p+n+1 {
		return "", 0, 0, "", errors.New("offload: short request")
	}
	predCol = string(req[p : p+n])
	p += n
	m := int(req[p])
	p++
	if len(req) < p+m {
		return "", 0, 0, "", errors.New("offload: short request")
	}
	sumCol = string(req[p : p+m])
	return predCol, lo, hi, sumCol, nil
}

// handleFilterSum runs on the memory node: scan both columns from local
// memory (DRAM cost, no fabric) and return the aggregate.
func (rc *RemoteColumns) handleFilterSum(c *sim.Clock, req []byte) []byte {
	predCol, lo, hi, sumCol, err := decodeFilterSumReq(req)
	if err != nil {
		return nil
	}
	pa, err1 := rc.addrOf(predCol)
	sa, err2 := rc.addrOf(sumCol)
	if err1 != nil || err2 != nil {
		return nil
	}
	mem := rc.pool.Node().Mem
	pbuf := make([]byte, rc.rows*8)
	sbuf := make([]byte, rc.rows*8)
	if mem.Read(pa, pbuf) != nil || mem.Read(sa, sbuf) != nil {
		return nil
	}
	// Memory-side work: a simple filter+sum vectorizes and streams at
	// DRAM bandwidth (TELEPORT targets exactly these light-weight,
	// memory-intensive operators).
	c.Advance(rc.cfg.DRAM.Cost(rc.rows * 16))
	var sum, count int64
	for i := 0; i < rc.rows; i++ {
		pv := int64(binary.LittleEndian.Uint64(pbuf[i*8:]))
		if pv >= lo && pv < hi {
			sum += int64(binary.LittleEndian.Uint64(sbuf[i*8:]))
			count++
		}
	}
	resp := make([]byte, 16)
	binary.LittleEndian.PutUint64(resp, uint64(sum))
	binary.LittleEndian.PutUint64(resp[8:], uint64(count))
	return resp
}

// StageKind enumerates Farview operator-stack stages.
type StageKind uint8

// Farview stages.
const (
	StageSelect  StageKind = iota + 1 // filter rows by [Lo,Hi) on Col
	StageProject                      // keep only Col (narrows row width)
	StageGroupBy                      // group by Col…
	StageAgg                          // …sum Col per group
)

// Stage is one operator in the Farview stack.
type Stage struct {
	Kind StageKind
	Col  string
	Lo   int64
	Hi   int64
}

// RunStack executes a Farview operator stack on the memory node. With
// pipelining the stages stream into each other (cost ≈ slowest stage);
// without it each stage materializes its intermediate to device memory
// (cost = sum of stages + intermediate writes). Results return over the
// fabric.
func (rc *RemoteColumns) RunStack(c *sim.Clock, qp *rdma.QP, stages []Stage, pipelined bool) (map[int64]int64, error) {
	if err := rc.Sync(c, qp); err != nil {
		return nil, err
	}
	req := encodeStackReq(stages, pipelined)
	resp, err := qp.Call(c, "farview.stack", req)
	if err != nil {
		return nil, err
	}
	if len(resp) < 4 {
		return nil, errors.New("offload: bad stack response")
	}
	n := int(binary.LittleEndian.Uint32(resp))
	if len(resp) < 4+n*16 {
		return nil, errors.New("offload: truncated stack response")
	}
	out := make(map[int64]int64, n)
	for i := 0; i < n; i++ {
		g := int64(binary.LittleEndian.Uint64(resp[4+i*16:]))
		v := int64(binary.LittleEndian.Uint64(resp[4+i*16+8:]))
		out[g] = v
	}
	return out, nil
}

func encodeStackReq(stages []Stage, pipelined bool) []byte {
	req := []byte{byte(len(stages)), 0}
	if pipelined {
		req[1] = 1
	}
	for _, s := range stages {
		req = append(req, byte(s.Kind), byte(len(s.Col)))
		req = append(req, s.Col...)
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:], uint64(s.Lo))
		binary.LittleEndian.PutUint64(b[8:], uint64(s.Hi))
		req = append(req, b[:]...)
	}
	return req
}

func decodeStackReq(req []byte) (stages []Stage, pipelined bool, err error) {
	if len(req) < 2 {
		return nil, false, errors.New("offload: short stack request")
	}
	n := int(req[0])
	pipelined = req[1] == 1
	p := 2
	for i := 0; i < n; i++ {
		if len(req) < p+2 {
			return nil, false, errors.New("offload: short stack request")
		}
		kind := StageKind(req[p])
		cl := int(req[p+1])
		p += 2
		if len(req) < p+cl+16 {
			return nil, false, errors.New("offload: short stack request")
		}
		col := string(req[p : p+cl])
		p += cl
		lo := int64(binary.LittleEndian.Uint64(req[p:]))
		hi := int64(binary.LittleEndian.Uint64(req[p+8:]))
		p += 16
		stages = append(stages, Stage{Kind: kind, Col: col, Lo: lo, Hi: hi})
	}
	return stages, pipelined, nil
}

// handleStack executes the operator stack node-side.
func (rc *RemoteColumns) handleStack(c *sim.Clock, req []byte) []byte {
	stages, pipelined, err := decodeStackReq(req)
	if err != nil {
		return nil
	}
	mem := rc.pool.Node().Mem
	readCol := func(col string) ([]int64, bool) {
		a, err := rc.addrOf(col)
		if err != nil {
			return nil, false
		}
		buf := make([]byte, rc.rows*8)
		if mem.Read(a, buf) != nil {
			return nil, false
		}
		vals := make([]int64, rc.rows)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		return vals, true
	}
	// Evaluate: selected rows flow through the stack.
	selected := make([]bool, rc.rows)
	for i := range selected {
		selected[i] = true
	}
	liveRows := rc.rows
	var stageCosts []time.Duration
	var groupCol, aggCol string
	for _, s := range stages {
		cost := rc.cfg.DRAM.Cost(liveRows * 8)
		switch s.Kind {
		case StageSelect:
			vals, ok := readCol(s.Col)
			if !ok {
				return nil
			}
			live := 0
			for i := range selected {
				if selected[i] && vals[i] >= s.Lo && vals[i] < s.Hi {
					live++
				} else {
					selected[i] = false
				}
			}
			liveRows = live
		case StageProject:
			// Narrowing: subsequent stages touch fewer bytes.
		case StageGroupBy:
			groupCol = s.Col
		case StageAgg:
			aggCol = s.Col
		}
		// Each stage streams at device bandwidth (Farview's operators
		// are implemented in memory-attached hardware).
		stageCosts = append(stageCosts, cost)
	}
	// Charge the stack: pipelined = max stage; otherwise sum of stages
	// plus intermediate materialization (write + read per boundary).
	if pipelined {
		var max time.Duration
		for _, d := range stageCosts {
			if d > max {
				max = d
			}
		}
		c.Advance(max)
	} else {
		var total time.Duration
		for i, d := range stageCosts {
			total += d
			if i < len(stageCosts)-1 {
				total += 2 * rc.cfg.DRAM.Cost(liveRows*8)
			}
		}
		c.Advance(total)
	}
	// Compute the result (group -> sum).
	var groups, aggs []int64
	if groupCol != "" {
		g, ok := readCol(groupCol)
		if !ok {
			return nil
		}
		groups = g
	}
	if aggCol != "" {
		a, ok := readCol(aggCol)
		if !ok {
			return nil
		}
		aggs = a
	}
	out := make(map[int64]int64)
	for i := 0; i < rc.rows; i++ {
		if !selected[i] {
			continue
		}
		var g, v int64
		if groups != nil {
			g = groups[i]
		}
		if aggs != nil {
			v = aggs[i]
		} else {
			v = 1
		}
		out[g] += v
	}
	resp := make([]byte, 4, 4+len(out)*16)
	binary.LittleEndian.PutUint32(resp, uint32(len(out)))
	for g, v := range out {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:], uint64(g))
		binary.LittleEndian.PutUint64(b[8:], uint64(v))
		resp = append(resp, b[:]...)
	}
	return resp
}
