// Package txn provides transaction concurrency control: a striped local
// lock table with shared/exclusive try-locks (two-phase locking with
// bounded retry instead of blocking, so waiting time is charged on virtual
// clocks), and a remote lock table living in disaggregated memory that is
// acquired with one-sided RDMA CAS — the mechanism behind multi-writer
// scalability on shared memory (§3.1, §4).
package txn

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// ErrDeadlock is returned when lock acquisition exhausts its retry budget;
// callers abort and (typically) restart the transaction.
var ErrDeadlock = errors.New("txn: lock acquisition timed out (possible deadlock)")

// ErrAborted marks a transaction aborted by conflict.
var ErrAborted = errors.New("txn: aborted")

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

const lockStripes = 256

type lockEntry struct {
	xHolder uint64 // tx holding exclusive, 0 if none
	sCount  int
	sHold   map[uint64]int // shared holders (count for re-entrancy)
}

type lockShard struct {
	mu      sync.Mutex
	entries map[uint64]*lockEntry
}

// LockTable is a striped in-memory lock table with try-lock semantics.
type LockTable struct {
	shards [lockStripes]lockShard
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	lt := &LockTable{}
	for i := range lt.shards {
		lt.shards[i].entries = make(map[uint64]*lockEntry)
	}
	return lt
}

func (lt *LockTable) shard(key uint64) *lockShard {
	return &lt.shards[((key*0x9E3779B97F4A7C15)>>56)%lockStripes]
}

// TryLock attempts to acquire key in the given mode for tx. Re-entrant:
// a holder re-acquiring compatibly succeeds; a shared holder may upgrade
// to exclusive when it is the only holder.
func (lt *LockTable) TryLock(tx uint64, key uint64, m Mode) bool {
	s := lt.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		e = &lockEntry{sHold: make(map[uint64]int)}
		s.entries[key] = e
	}
	switch m {
	case Shared:
		if e.xHolder != 0 && e.xHolder != tx {
			return false
		}
		e.sHold[tx]++
		e.sCount++
		return true
	default: // Exclusive
		if e.xHolder == tx {
			return true
		}
		if e.xHolder != 0 {
			return false
		}
		// Upgrade allowed only if tx is the sole shared holder.
		if e.sCount > 0 && (len(e.sHold) > 1 || e.sHold[tx] == 0) {
			return false
		}
		e.xHolder = tx
		return true
	}
}

// Unlock releases tx's hold on key in the given mode.
func (lt *LockTable) Unlock(tx uint64, key uint64, m Mode) {
	s := lt.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return
	}
	switch m {
	case Shared:
		if n := e.sHold[tx]; n > 0 {
			if n == 1 {
				delete(e.sHold, tx)
			} else {
				e.sHold[tx] = n - 1
			}
			e.sCount--
		}
	default:
		if e.xHolder == tx {
			e.xHolder = 0
		}
	}
	if e.xHolder == 0 && e.sCount == 0 {
		delete(s.entries, key)
	}
}

// Held reports whether any transaction holds the key (test helper).
func (lt *LockTable) Held(key uint64) bool {
	s := lt.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// AcquireOpts controls retrying acquisition.
type AcquireOpts struct {
	// Retries before giving up with ErrDeadlock.
	Retries int
	// Backoff charged on the clock per failed attempt.
	Backoff time.Duration
	// AttemptCost charged per attempt (e.g. a local lock-table probe is
	// nearly free; a remote CAS costs a network op — the remote table
	// charges that itself).
	AttemptCost time.Duration
}

// DefaultAcquire is a sensible local-lock retry policy.
var DefaultAcquire = AcquireOpts{Retries: 20, Backoff: 2 * time.Microsecond}

// Acquire retries TryLock with backoff charged to the clock.
func (lt *LockTable) Acquire(c *sim.Clock, tx uint64, key uint64, m Mode, o AcquireOpts) error {
	for i := 0; ; i++ {
		if o.AttemptCost > 0 {
			c.Advance(o.AttemptCost)
		}
		if lt.TryLock(tx, key, m) {
			return nil
		}
		if i >= o.Retries {
			return ErrDeadlock
		}
		// Lock-wait backoff is critical-path time; bracket it so the
		// profiler attributes it instead of folding it into residual.
		sp := c.StartSpan("backoff")
		c.Advance(o.Backoff * time.Duration(i+1))
		c.FinishSpan(sp, 0)
		runtime.Gosched()
	}
}

// RemoteLockTable is a global lock table resident in disaggregated memory,
// acquired with one-sided RDMA CAS(0 -> tx). It is what lets multiple
// writer nodes coordinate without a central lock server.
type RemoteLockTable struct {
	base  uint64
	slots uint64
}

// NewRemoteLockTable lays out `slots` 8-byte lock words at base inside the
// memory node's region. The region must be zeroed (all locks free).
func NewRemoteLockTable(base uint64, slots uint64) *RemoteLockTable {
	if slots == 0 {
		slots = 1
	}
	return &RemoteLockTable{base: base, slots: slots}
}

// SizeBytes reports the registered-memory footprint.
func (r *RemoteLockTable) SizeBytes() uint64 { return r.slots * 8 }

func (r *RemoteLockTable) addrOf(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return r.base + (h%r.slots)*8
}

// TryLock attempts CAS(0 -> tx) on the key's lock word over qp.
// Key aliasing (two keys hashing to one slot) yields false conflicts,
// exactly as in RDMA lock-table designs sized by memory budget.
func (r *RemoteLockTable) TryLock(c *sim.Clock, qp *rdma.QP, tx uint64, key uint64) (bool, error) {
	return qp.CAS(c, r.addrOf(key), 0, tx)
}

// Unlock releases the key's lock word if held by tx.
func (r *RemoteLockTable) Unlock(c *sim.Clock, qp *rdma.QP, tx uint64, key uint64) error {
	ok, err := qp.CAS(c, r.addrOf(key), tx, 0)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("txn: remote unlock of non-held lock")
	}
	return nil
}

// Acquire retries the remote CAS with backoff; each attempt costs a real
// one-sided CAS on the fabric.
func (r *RemoteLockTable) Acquire(c *sim.Clock, qp *rdma.QP, tx uint64, key uint64, o AcquireOpts) error {
	for i := 0; ; i++ {
		ok, err := r.TryLock(c, qp, tx, key)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if i >= o.Retries {
			return ErrDeadlock
		}
		sp := c.StartSpan("backoff")
		c.Advance(o.Backoff * time.Duration(i+1))
		c.FinishSpan(sp, 0)
		runtime.Gosched()
	}
}
