package txn

import (
	"sync"
	"testing"

	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

func TestSharedLocksCoexist(t *testing.T) {
	lt := NewLockTable()
	if !lt.TryLock(1, 100, Shared) || !lt.TryLock(2, 100, Shared) {
		t.Fatal("two shared locks should coexist")
	}
	if lt.TryLock(3, 100, Exclusive) {
		t.Fatal("exclusive granted over shared holders")
	}
	lt.Unlock(1, 100, Shared)
	lt.Unlock(2, 100, Shared)
	if !lt.TryLock(3, 100, Exclusive) {
		t.Fatal("exclusive denied after shared release")
	}
}

func TestExclusiveBlocksAll(t *testing.T) {
	lt := NewLockTable()
	if !lt.TryLock(1, 5, Exclusive) {
		t.Fatal("first exclusive denied")
	}
	if lt.TryLock(2, 5, Shared) || lt.TryLock(2, 5, Exclusive) {
		t.Fatal("lock granted over exclusive holder")
	}
	// Re-entrant for the holder.
	if !lt.TryLock(1, 5, Exclusive) || !lt.TryLock(1, 5, Shared) {
		t.Fatal("holder re-entry denied")
	}
}

func TestLockUpgrade(t *testing.T) {
	lt := NewLockTable()
	lt.TryLock(1, 9, Shared)
	if !lt.TryLock(1, 9, Exclusive) {
		t.Fatal("sole shared holder denied upgrade")
	}
	lt2 := NewLockTable()
	lt2.TryLock(1, 9, Shared)
	lt2.TryLock(2, 9, Shared)
	if lt2.TryLock(1, 9, Exclusive) {
		t.Fatal("upgrade granted with other shared holders")
	}
}

func TestUnlockCleansUp(t *testing.T) {
	lt := NewLockTable()
	lt.TryLock(1, 77, Exclusive)
	lt.Unlock(1, 77, Exclusive)
	if lt.Held(77) {
		t.Fatal("entry not cleaned up")
	}
	// Unlock of a non-held key is a no-op.
	lt.Unlock(2, 12345, Shared)
}

func TestLockTableConcurrentMutex(t *testing.T) {
	// N goroutines use TryLock(Exclusive) as a mutex around a counter:
	// mutual exclusion must hold.
	lt := NewLockTable()
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for !lt.TryLock(id, 1, Exclusive) {
				}
				counter++
				lt.Unlock(id, 1, Exclusive)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if counter != 1600 {
		t.Fatalf("counter = %d, want 1600 (mutual exclusion broken)", counter)
	}
}

func TestAcquireRetriesThenDeadlock(t *testing.T) {
	lt := NewLockTable()
	lt.TryLock(1, 42, Exclusive)
	c := sim.NewClock()
	err := lt.Acquire(c, 2, 42, Exclusive, AcquireOpts{Retries: 5, Backoff: 1000})
	if err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if c.Now() == 0 {
		t.Fatal("retry backoff not charged to clock")
	}
	lt.Unlock(1, 42, Exclusive)
	if err := lt.Acquire(c, 2, 42, Exclusive, DefaultAcquire); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestRemoteLockTable(t *testing.T) {
	cfg := sim.DefaultConfig()
	node := rdma.NewNode(cfg, "mem0", 1<<16)
	rlt := NewRemoteLockTable(0, 1024)
	if rlt.SizeBytes() != 8192 {
		t.Fatalf("size = %d", rlt.SizeBytes())
	}
	qp1 := rdma.Connect(cfg, node, nil)
	qp2 := rdma.Connect(cfg, node, nil)
	c1, c2 := sim.NewClock(), sim.NewClock()

	ok, err := rlt.TryLock(c1, qp1, 1, 500)
	if err != nil || !ok {
		t.Fatalf("first lock: %v %v", ok, err)
	}
	ok, _ = rlt.TryLock(c2, qp2, 2, 500)
	if ok {
		t.Fatal("second writer acquired a held remote lock")
	}
	if err := rlt.Unlock(c1, qp1, 1, 500); err != nil {
		t.Fatal(err)
	}
	ok, _ = rlt.TryLock(c2, qp2, 2, 500)
	if !ok {
		t.Fatal("lock not acquirable after release")
	}
	// Unlock by wrong tx fails.
	if err := rlt.Unlock(c1, qp1, 1, 500); err == nil {
		t.Fatal("foreign unlock accepted")
	}
}

func TestRemoteLockChargesFabric(t *testing.T) {
	cfg := sim.DefaultConfig()
	node := rdma.NewNode(cfg, "mem0", 1<<16)
	var st rdma.Stats
	qp := rdma.Connect(cfg, node, &st)
	rlt := NewRemoteLockTable(0, 64)
	c := sim.NewClock()
	rlt.TryLock(c, qp, 1, 1)
	if c.Now() < cfg.RDMA.Base {
		t.Fatalf("remote CAS charged only %v", c.Now())
	}
	if st.Ops.Load() != 1 {
		t.Fatalf("ops = %d", st.Ops.Load())
	}
}

func TestRemoteAcquireContention(t *testing.T) {
	cfg := sim.DefaultConfig()
	node := rdma.NewNode(cfg, "mem0", 1<<16)
	rlt := NewRemoteLockTable(0, 16)
	// Eight writers hammer one key through real CAS; the critical
	// sections must serialize.
	var mu sync.Mutex
	crit := 0
	maxInCrit := 0
	res := sim.RunGroup(8, func(id int, c *sim.Clock) int {
		qp := rdma.Connect(cfg, node, nil)
		tx := uint64(id + 1)
		done := 0
		for i := 0; i < 50; i++ {
			if err := rlt.Acquire(c, qp, tx, 7, AcquireOpts{Retries: 10_000, Backoff: 100}); err != nil {
				continue
			}
			mu.Lock()
			crit++
			if crit > maxInCrit {
				maxInCrit = crit
			}
			crit--
			mu.Unlock()
			rlt.Unlock(c, qp, tx, 7)
			done++
		}
		return done
	})
	if maxInCrit > 1 {
		t.Fatalf("mutual exclusion broken: %d concurrent holders", maxInCrit)
	}
	if res.TotalOps != 400 {
		t.Fatalf("completed %d/400 acquisitions", res.TotalOps)
	}
}
