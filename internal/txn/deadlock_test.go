package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// Two transactions acquiring the same pair of keys in opposite order must
// not hang: the retry budget converts the deadlock into ErrDeadlock on at
// least one side, and the survivor (if any) can finish.
func TestCrossTransactionDeadlockResolves(t *testing.T) {
	lt := NewLockTable()
	opts := AcquireOpts{Retries: 5, Backoff: time.Microsecond}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	acquire := func(idx int, tx, first, second uint64) {
		defer wg.Done()
		c := sim.NewClock()
		if err := lt.Acquire(c, tx, first, Exclusive, opts); err != nil {
			errs[idx] = err
			return
		}
		defer lt.Unlock(tx, first, Exclusive)
		// Hold first long enough that the other side is already holding
		// its own first key, then go for the crossing key.
		time.Sleep(time.Millisecond)
		if err := lt.Acquire(c, tx, second, Exclusive, opts); err != nil {
			errs[idx] = err
			return
		}
		lt.Unlock(tx, second, Exclusive)
	}
	wg.Add(2)
	go acquire(0, 1, 100, 200)
	go acquire(1, 2, 200, 100)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlocked: Acquire never timed out")
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrDeadlock) {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	// Both keys must be fully released regardless of who aborted.
	if lt.Held(100) || lt.Held(200) {
		t.Fatal("locks leaked after deadlock resolution")
	}
}

// The timeout path must charge the virtual clock for every backoff, so
// contention is visible in simulated time, and report ErrDeadlock (not
// hang, not nil).
func TestAcquireTimeoutChargesClock(t *testing.T) {
	lt := NewLockTable()
	if !lt.TryLock(1, 7, Exclusive) {
		t.Fatal("setup lock failed")
	}
	c := sim.NewClock()
	opts := AcquireOpts{Retries: 8, Backoff: 3 * time.Microsecond, AttemptCost: time.Microsecond}
	err := lt.Acquire(c, 2, 7, Exclusive, opts)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// 9 attempts at 1us each + backoffs 3,6,...,24us = 9 + 108.
	want := 9*time.Microsecond + 108*time.Microsecond
	if c.Now() != want {
		t.Fatalf("clock charged %v, want %v", c.Now(), want)
	}
}

// An upgrade attempt while another shared holder remains must burn its
// retries and fail with ErrDeadlock, leaving the shared holds intact.
func TestUpgradeBlockedBySecondSharedHolder(t *testing.T) {
	lt := NewLockTable()
	if !lt.TryLock(1, 42, Shared) || !lt.TryLock(2, 42, Shared) {
		t.Fatal("setup shared locks failed")
	}
	c := sim.NewClock()
	err := lt.Acquire(c, 1, 42, Exclusive, AcquireOpts{Retries: 3, Backoff: time.Microsecond})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("upgrade with a co-holder: want ErrDeadlock, got %v", err)
	}
	// After the co-holder leaves, the upgrade succeeds.
	lt.Unlock(2, 42, Shared)
	if err := lt.Acquire(c, 1, 42, Exclusive, DefaultAcquire); err != nil {
		t.Fatalf("upgrade as sole holder: %v", err)
	}
	lt.Unlock(1, 42, Exclusive)
	lt.Unlock(1, 42, Shared)
	if lt.Held(42) {
		t.Fatal("lock leaked after upgrade cycle")
	}
}

// Shared re-acquisition is re-entrant and must be released once per hold.
func TestSharedReentrancyCounts(t *testing.T) {
	lt := NewLockTable()
	for i := 0; i < 3; i++ {
		if !lt.TryLock(1, 9, Shared) {
			t.Fatalf("re-entrant shared acquire %d failed", i)
		}
	}
	lt.Unlock(1, 9, Shared)
	lt.Unlock(1, 9, Shared)
	if !lt.Held(9) {
		t.Fatal("lock dropped while one hold remains")
	}
	// Still a shared holder: an outside exclusive must fail.
	if lt.TryLock(2, 9, Exclusive) {
		t.Fatal("exclusive granted despite remaining shared hold")
	}
	lt.Unlock(1, 9, Shared)
	if lt.Held(9) {
		t.Fatal("lock leaked after final unlock")
	}
}

// A remote Acquire against a lock that never frees must time out with
// ErrDeadlock after burning its CAS budget.
func TestRemoteAcquireTimesOut(t *testing.T) {
	cfg := sim.DefaultConfig()
	node := rdma.NewNode(cfg, "mem0", 1<<16)
	rlt := NewRemoteLockTable(0, 16)
	qp1 := rdma.Connect(cfg, node, nil)
	qp2 := rdma.Connect(cfg, node, nil)
	c := sim.NewClock()
	if ok, err := rlt.TryLock(c, qp1, 1, 5); err != nil || !ok {
		t.Fatalf("setup: %v %v", ok, err)
	}
	err := rlt.Acquire(sim.NewClock(), qp2, 2, 5, AcquireOpts{Retries: 4, Backoff: time.Microsecond})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

// Injected fabric faults on the CAS path must surface as errors from
// Acquire (not spin, not succeed).
func TestRemoteAcquireSurfacesInjectedFault(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Fault = fault.New(11, fault.Profile{Name: "cas-drop", Drop: 1.0, Sites: []string{"rdma."}})
	node := rdma.NewNode(cfg, "mem0", 1<<16)
	rlt := NewRemoteLockTable(0, 16)
	qp := rdma.Connect(cfg, node, nil)
	err := rlt.Acquire(sim.NewClock(), qp, 1, 5, AcquireOpts{Retries: 2, Backoff: time.Microsecond})
	if err == nil {
		t.Fatal("acquire succeeded across a fully dropped fabric")
	}
	if !errors.Is(err, sim.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
}
