package cluster

import (
	"time"

	"github.com/disagglab/disagg/internal/autoscale"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/profile"
)

// Controller closes the provisioning loop of §4: each Tick samples the
// fleet's live sim.Meter telemetry (per-member virtual busy time, queued
// fraction) through autoscale.MeterSource, feeds the windowed Telemetry
// into an autoscale.Policy, and EXECUTES the decision on the fleet —
// spinning members up (attach to shared storage, warm via the coherence
// directory and durable watermark, recovery time charged to the virtual
// clock) or draining them back out. This is the redesign ISSUE 8 asks
// for: the policies that E21 only ever evaluated against offline demand
// traces now provision real engines from real ρ/queue measurements.
type Controller struct {
	Fleet  *Fleet
	Policy autoscale.Policy
	// PerNode is the demand one member serves at full utilization, in the
	// meter's node-equivalent units. 1.0 means "a member is full when its
	// virtual busy time equals the window" — the natural calibration for
	// capacity-1 member meters; lower values keep headroom.
	PerNode float64
	// Min and Max clamp the executed fleet size (Min >= 1; Max <= 0
	// means unbounded).
	Min, Max int

	src autoscale.MeterSource
}

// NewController wires a controller with perNode calibration 0.8 (scale
// out before members saturate) over the given policy.
func NewController(f *Fleet, p autoscale.Policy) *Controller {
	return &Controller{Fleet: f, Policy: p, PerNode: 0.8, Min: 1}
}

// TickResult reports one control interval's observation and action.
type TickResult struct {
	Telemetry autoscale.Telemetry
	Decision  autoscale.Decision
	// Target is the clamped member count the controller executed.
	Target int
	// Added and Retired are the member ids the fleet changed.
	Added, Retired []int
	// WarmTime is the recovery time charged for this tick's attach/warm
	// work (0 when membership did not change).
	WarmTime time.Duration
	// SLO is the fleet's burn-rate evaluation over the window ending at
	// this tick (zero unless Fleet.SetSLO attached an objective). It lets
	// a scaling audit line up "burn > 1" intervals with the decisions
	// taken inside them.
	SLO profile.Status
	// SLOAttached reports whether the fleet has an objective, so a zero
	// Status is distinguishable from "not tracked".
	SLOAttached bool
}

// Tick runs one control interval at virtual time c.Now(): sample, decide,
// execute. Scale work (member attach, watermark warm-up, shard takeover)
// is charged to the caller's clock — the controller's provisioning lag is
// part of the simulated story, not hidden from it.
func (ctl *Controller) Tick(c *sim.Clock) TickResult {
	f := ctl.Fleet
	nodes := f.Size()
	tel := ctl.src.Sample(c.Now(), nodes, f.Meters()...)
	dec := ctl.Policy.Decide(tel, ctl.PerNode)
	target := dec.Nodes
	if target < ctl.Min {
		target = ctl.Min
	}
	if ctl.Max > 0 && target > ctl.Max {
		target = ctl.Max
	}
	res := TickResult{Telemetry: tel, Decision: dec, Target: target}
	if t := f.SLO(); t != nil {
		res.SLO = t.Snapshot(c.Now())
		res.SLOAttached = true
	}
	if target != nodes {
		before := c.Now()
		res.Added, res.Retired = f.ScaleTo(c, target)
		res.WarmTime = c.Now() - before
	}
	return res
}
