package cluster_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/autoscale"
	"github.com/disagglab/disagg/internal/cluster"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/sharednothing"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/profile"
)

// mustLayout builds the standard 4 KiB-page / 64-byte-value layout.
func mustLayout(t *testing.T) heap.Layout {
	t.Helper()
	layout, err := heap.NewLayout(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	return layout
}

func TestShardMapDeterministicAcrossJoinOrder(t *testing.T) {
	a := cluster.NewShardMap(64, 0, 1, 2, 3)
	b := cluster.NewShardMap(64)
	for _, id := range []int{3, 1, 0, 2} { // any join order
		b.Add(id)
	}
	for slot := 0; slot < 64; slot++ {
		if a.OwnerOfSlot(slot) != b.OwnerOfSlot(slot) {
			t.Fatalf("slot %d: owner %d vs %d — assignment depends on join order",
				slot, a.OwnerOfSlot(slot), b.OwnerOfSlot(slot))
		}
	}
}

func TestShardMapAddMovesSlotsOnlyToNewcomer(t *testing.T) {
	m := cluster.NewShardMap(256, 0, 1, 2)
	before := make([]int, 256)
	for s := range before {
		before[s] = m.OwnerOfSlot(s)
	}
	moved := m.Add(7)
	if len(moved) == 0 {
		t.Fatal("newcomer won no slots (weights degenerate)")
	}
	movedSet := map[int]bool{}
	for _, s := range moved {
		movedSet[s] = true
		if got := m.OwnerOfSlot(s); got != 7 {
			t.Fatalf("moved slot %d went to %d, not the newcomer", s, got)
		}
	}
	for s := 0; s < 256; s++ {
		if !movedSet[s] && m.OwnerOfSlot(s) != before[s] {
			t.Fatalf("slot %d moved between survivors (%d -> %d)", s, before[s], m.OwnerOfSlot(s))
		}
	}
}

func TestShardMapRemoveMovesOnlyVictimSlots(t *testing.T) {
	m := cluster.NewShardMap(256, 0, 1, 2, 3)
	before := make([]int, 256)
	for s := range before {
		before[s] = m.OwnerOfSlot(s)
	}
	gainers := map[int]bool{}
	moved := m.Remove(2, gainers)
	for _, s := range moved {
		if before[s] != 2 {
			t.Fatalf("slot %d moved but belonged to %d, not the removed member", s, before[s])
		}
		if got := m.OwnerOfSlot(s); got == 2 || got < 0 {
			t.Fatalf("slot %d still owned by %d after removal", s, got)
		}
		if !gainers[m.OwnerOfSlot(s)] {
			t.Fatalf("gainer %d of slot %d not reported", m.OwnerOfSlot(s), s)
		}
	}
	for s := 0; s < 256; s++ {
		if before[s] != 2 && m.OwnerOfSlot(s) != before[s] {
			t.Fatalf("survivor slot %d moved (%d -> %d)", s, before[s], m.OwnerOfSlot(s))
		}
	}
}

func TestShardMapNoOrphans(t *testing.T) {
	m := cluster.NewShardMap(128, 0)
	check := func(stage string) {
		t.Helper()
		members := map[int]bool{}
		for _, id := range m.Members() {
			members[id] = true
		}
		for s := 0; s < 128; s++ {
			own := m.OwnerOfSlot(s)
			if !members[own] {
				t.Fatalf("%s: slot %d owned by %d, not a member", stage, s, own)
			}
		}
	}
	check("initial")
	for id := 1; id <= 5; id++ {
		m.Add(id)
		check("after add")
	}
	for _, id := range []int{3, 0, 5} {
		m.Remove(id, nil)
		check("after remove")
	}
	// Keys route to slots in range and stably.
	for key := uint64(0); key < 1000; key++ {
		s := m.SlotOf(key)
		if s < 0 || s >= 128 {
			t.Fatalf("key %d hashed to slot %d", key, s)
		}
		if m.SlotOf(key) != s {
			t.Fatal("SlotOf is not stable")
		}
	}
}

// auroraSpec builds a shared-volume aurora fleet spec for tests.
func auroraSpec(cfg *sim.Config, layout heap.Layout) cluster.Spec {
	var root *aurora.Engine
	return cluster.Spec{
		Name: "aurora",
		New: func(id int) engine.Engine {
			if id == 0 {
				root = aurora.New(cfg, layout, 64, 1)
				return root
			}
			return aurora.Peer(root, id, 64)
		},
	}
}

// TestFleetSmoke is the -race smoke test: concurrent workers drive keyed
// writes through the router while the fleet scales out and a member
// crashes mid-run; afterwards every acked write must be readable and the
// fleet-wide accounting must conserve.
func TestFleetSmoke(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := mustLayout(t)
	f := cluster.New(auroraSpec(cfg, layout), sim.NewClock(), 2)

	const workers = 4
	const opsEach = 40
	type ack struct {
		key uint64
		seq uint64
	}
	ackCh := make(chan ack, workers*opsEach)
	var unavailable atomic.Int64
	sim.RunGroup(workers, func(id int, c *sim.Clock) int {
		done := 0
		for i := 0; i < opsEach; i++ {
			key := uint64(1000 + id*opsEach + i)
			seq := uint64(i + 1)
			v := make([]byte, layout.ValSize)
			for b := 0; b < 8; b++ {
				v[b] = byte(seq >> (8 * b))
			}
			err := f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 8}}, func(tx engine.Tx) error {
				return tx.Write(key, v)
			})
			if err != nil {
				if errors.Is(err, engine.ErrUnavailable) {
					unavailable.Add(1)
				}
				continue
			}
			ackCh <- ack{key, seq}
			done++
			// Membership churn mid-stream, from two workers.
			if id == 0 && i == 10 {
				f.ScaleTo(c, 3)
			}
			if id == 1 && i == 25 {
				if err := f.Crash(c, 1); err != nil && !errors.Is(err, cluster.ErrNoMembers) {
					t.Errorf("crash: %v", err)
				}
			}
		}
		return done
	})
	close(ackCh)

	if got := f.Size(); got < 1 {
		t.Fatalf("fleet size = %d", got)
	}
	tot := f.Totals()
	if !tot.Conserved() {
		t.Fatalf("fleet accounting broken: attempts %d != commits %d + aborts %d + shed %d",
			tot.Attempts, tot.Commits, tot.Aborts, tot.Shed)
	}
	// Every acked write must be readable through the (post-failover)
	// router.
	c := sim.NewClock()
	for a := range ackCh {
		var got []byte
		err := f.Run(c, a.key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 8}}, func(tx engine.Tx) error {
			v, rerr := tx.Read(a.key)
			got = v
			return rerr
		})
		if err != nil {
			t.Fatalf("read back key %d: %v", a.key, err)
		}
		var seq uint64
		for b := 0; b < 8; b++ {
			seq |= uint64(got[b]) << (8 * b)
		}
		if seq != a.seq {
			t.Fatalf("key %d: acked seq %d, read %d after failover", a.key, a.seq, seq)
		}
	}
	t.Logf("smoke: commits=%d aborts=%d shed=%d unavailable-surfaced=%d",
		tot.Commits, tot.Aborts, tot.Shed, unavailable.Load())
}

// TestFleetReadOnlyRouting exercises least-loaded/session-affinity reads:
// an acked write on the shard owner must be visible to a read-only
// session routed to any other member (the refresh closes the watermark
// gap).
func TestFleetReadOnlyRouting(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := mustLayout(t)
	f := cluster.New(auroraSpec(cfg, layout), sim.NewClock(), 3)
	c := sim.NewClock()
	key := uint64(4242)
	want := make([]byte, layout.ValSize)
	want[0] = 0xAB
	if err := f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 4}}, func(tx engine.Tx) error {
		return tx.Write(key, want)
	}); err != nil {
		t.Fatal(err)
	}
	// Several sessions: each pins a member; all must see the commit.
	for sess := 0; sess < 6; sess++ {
		var got []byte
		err := f.Run(c, key, cluster.RunOpts{
			RunOpts:  engine.RunOpts{Retries: 4, Session: sess},
			ReadOnly: true,
		}, func(tx engine.Tx) error {
			v, rerr := tx.Read(key)
			got = v
			return rerr
		})
		if err != nil {
			t.Fatalf("session %d read: %v", sess, err)
		}
		if got[0] != 0xAB {
			t.Fatalf("session %d: stale read %x (cross-member refresh failed)", sess, got[0])
		}
	}
}

func TestControllerScalesOutAndBackIn(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := mustLayout(t)
	f := cluster.New(auroraSpec(cfg, layout), sim.NewClock(), 1)
	ctl := cluster.NewController(f, autoscale.NewReactive())
	ctl.Max = 4

	// Saturate the lone member: its meter observes 3x more busy time
	// than the window (clock at 1ms, 3ms demanded).
	c := sim.NewClock()
	c.Advance(time.Millisecond)
	f.Members()[0].Meter.Observe(c, 3*time.Millisecond)
	res := ctl.Tick(c)
	if res.Telemetry.Util <= 1 {
		t.Fatalf("util = %v, want oversubscribed", res.Telemetry.Util)
	}
	if got := f.Size(); got < 2 {
		t.Fatalf("controller did not scale out: size %d (%s)", got, res.Decision.Reason)
	}
	if len(res.Added) == 0 || res.WarmTime <= 0 {
		t.Fatalf("scale-out charged no warm work: %+v", res)
	}

	// Idle windows: scale back in, but never below Min.
	for i := 0; i < 4; i++ {
		c.Advance(time.Millisecond)
		res = ctl.Tick(c)
	}
	if got := f.Size(); got >= 4 {
		t.Fatalf("controller did not scale in after idle windows: size %d", got)
	}
	if f.Size() < ctl.Min {
		t.Fatalf("fleet fell below Min: %d", f.Size())
	}
}

func TestPartitionedFleetRescales(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := mustLayout(t)
	var e *sharednothing.Engine
	spec := cluster.Spec{
		Name: "shared-nothing",
		New: func(id int) engine.Engine {
			e = sharednothing.New(cfg, layout, 1)
			return e
		},
		Rescale: func(c *sim.Clock, n int) int64 { return e.Rebalance(c, n) },
	}
	c := sim.NewClock()
	f := cluster.New(spec, c, 2)
	if e.Partitions() != 2 {
		t.Fatalf("partitions = %d", e.Partitions())
	}
	// Write some data, then rescale: data must move (the elasticity tax).
	for key := uint64(0); key < 64; key++ {
		v := make([]byte, layout.ValSize)
		if err := f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 4}}, func(tx engine.Tx) error {
			return tx.Write(key, v)
		}); err != nil {
			t.Fatal(err)
		}
	}
	f.ScaleTo(c, 4)
	if e.Partitions() != 4 {
		t.Fatalf("partitions after scale = %d", e.Partitions())
	}
	if e.MovedBytes.Load() == 0 {
		t.Fatal("rescale moved no data — shared-nothing elasticity should pay the movement tax")
	}
	// Crash drills are unsupported on partitioned fleets.
	if err := f.Crash(c, 0); !errors.Is(err, cluster.ErrUnsupported) {
		t.Fatalf("crash on partitioned fleet: %v", err)
	}
}

// TestFleetSLOSurfacedThroughController attaches a latency objective to
// a fleet, drives transactions through the router (some fast, some
// failing), and checks the controller's tick surfaces the window's burn
// rate — and that a fleet without an objective is distinguishable from
// one burning at 0x.
func TestFleetSLOSurfacedThroughController(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := mustLayout(t)
	f := cluster.New(auroraSpec(cfg, layout), sim.NewClock(), 1)
	ctl := cluster.NewController(f, autoscale.NewReactive())

	c := sim.NewClock()
	if res := ctl.Tick(c); res.SLOAttached {
		t.Fatalf("tick reports an objective before SetSLO: %+v", res.SLO)
	}

	// 90% objective: with 8 clean commits and 2 forced failures the
	// window's error fraction is 0.2 and the burn 2x.
	f.SetSLO(profile.SLO{Target: 50 * time.Millisecond, Objective: 0.9, Window: 10 * time.Millisecond})
	v := make([]byte, layout.ValSize)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		key := uint64(100 + i)
		fail := i >= 8
		err := f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: 2}}, func(tx engine.Tx) error {
			if fail {
				return boom
			}
			return tx.Write(key, v)
		})
		if fail != (err != nil) {
			t.Fatalf("op %d: err = %v, want failure=%v", i, err, fail)
		}
	}

	res := ctl.Tick(c)
	if !res.SLOAttached {
		t.Fatalf("objective attached but tick reports none")
	}
	if res.SLO.Good != 8 || res.SLO.Bad != 2 {
		t.Fatalf("window counted good=%d bad=%d, want 8/2", res.SLO.Good, res.SLO.Bad)
	}
	if res.SLO.Burn < 1.9 || res.SLO.Burn > 2.1 {
		t.Fatalf("burn = %.2fx, want ~2x (errFrac 0.2 against a 0.1 budget)", res.SLO.Burn)
	}

	// A tick far past the window sees an empty (healthy) window.
	c.Advance(time.Second)
	if res := ctl.Tick(c); !res.SLOAttached || res.SLO.Bad != 0 || res.SLO.Burn != 0 {
		t.Fatalf("stale window leaked into the snapshot: %+v", res.SLO)
	}
}
