// Package cluster implements the elastic compute fleet of §4: N live
// engine instances of one architecture running over one shared storage
// substrate, with transaction routing, live scale-out/in, and failover.
//
// The fleet is the single entry point in fleet mode — workloads call
// Fleet.Run instead of engine.Run, and the Router maps each transaction to
// a member: writes go to the key's shard owner (a rendezvous-hash shard
// map, so per-member lock tables stay sufficient — one writer per key),
// read-only transactions may ride least-loaded/session-affinity routing
// with an explicit freshness refresh when they land off the owner.
//
// Elasticity is the payoff disaggregation buys (arXiv:2411.01269): a
// scaled-out member is stateless — it attaches to the shared log/volume,
// registers its cache with the architecture's coherence directory, learns
// the durable watermark (charged to the virtual clock as recovery work),
// and starts taking traffic. Scale-in drains a member back out with only
// shard reassignment; no data moves. The shared-nothing baseline wires in
// through the same API but must physically rebalance its partitions — the
// elasticity tax E4 measures, preserved here deliberately.
//
// Failover reuses the same machinery: Crash on a member routes its
// keyspace to survivors (who warm via engine.Recoverer), in-flight
// transactions on the dead node fail fast through the admission stack and
// re-route, and the fleet-wide accounting invariant
// Attempts == Commits + Aborts + Shed holds because every attempt still
// lands in exactly one member's Stats.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/profile"
)

// Cluster errors.
var (
	// ErrNoMembers is returned when routing finds no active member.
	ErrNoMembers = errors.New("cluster: no active members")
	// ErrUnsupported is returned for drills the architecture cannot run
	// (e.g. Crash on a fleet without engine.Recoverer).
	ErrUnsupported = errors.New("cluster: unsupported by this architecture")
)

// Spec describes how to build one architecture's fleet members. The
// cluster package is engine-agnostic: the per-architecture wiring (root
// constructors, Peer attachment, shared-nothing rebalancing) lives in the
// caller's closures.
type Spec struct {
	// Name labels the fleet in logs and experiment tables.
	Name string
	// New builds member id. Id 0 is the root and owns the storage
	// substrate; higher ids must attach to the SAME substrate (the
	// architecture's Peer constructor). Called under the fleet's
	// membership lock.
	New func(id int) engine.Engine
	// Rescale, when non-nil, marks a partitioned (shared-nothing)
	// architecture: the fleet holds ONE engine (New(0)) and elasticity
	// re-partitions it, physically moving data. It returns the bytes
	// moved. Shared-storage fleets leave it nil.
	Rescale func(c *sim.Clock, n int) (movedBytes int64)
	// Slots overrides the shard-map granularity (<=0: DefaultSlots).
	Slots int
	// ComputeCost, when positive, models each member as a finite compute
	// node: every dispatched transaction first charges this much service
	// demand through the member's Meter under processor-sharing semantics,
	// so an oversubscribed member stretches its transactions' virtual
	// latency (the saturation a scale-out relieves). When zero the meter
	// only observes — telemetry without a compute bottleneck — which keeps
	// conformance timing identical to direct engine.Run.
	ComputeCost time.Duration
}

// memberState tracks a member's lifecycle.
type memberState int32

const (
	stateActive memberState = iota
	stateCrashed
	stateRetired
)

// Member is one compute node of the fleet.
type Member struct {
	ID int
	E  engine.Engine

	caps  engine.Capability
	state atomic.Int32
	// Meter accumulates the member's virtual busy time (capacity 1: one
	// compute node) via non-charging Observe calls — the ρ/queue telemetry
	// the Controller feeds into autoscale decisions.
	Meter    *sim.Meter
	inflight atomic.Int64
	// WarmTime is the recovery time charged when the member attached or
	// took over shards (0 for the root).
	WarmTime time.Duration
}

// Active reports whether the member is routable.
func (m *Member) Active() bool { return memberState(m.state.Load()) == stateActive }

// InFlight reports the member's currently dispatched transaction count
// (the least-loaded routing signal).
func (m *Member) InFlight() int64 { return m.inflight.Load() }

// detacher is the optional engine hook for leaving the shared coherence
// directory on retirement.
type detacher interface{ Detach() }

// Fleet runs N members of one architecture over a shared substrate.
//
// Locking: mu is held in R mode for the full dispatch of every
// transaction and in W mode for membership changes (scale-out/in,
// failover). Membership changes therefore quiesce in-flight dispatches,
// which is what makes "flip the shard map, then warm the gainers" atomic
// with respect to traffic: no transaction can be executing on the old
// owner while the new owner starts taking writes for a moved slot.
type Fleet struct {
	spec Spec

	mu      sync.RWMutex
	members map[int]*Member // every member ever, incl. crashed/retired
	order   []int           // creation order, for deterministic iteration
	shard   *ShardMap
	nextID  int
	// sessions pins read-only sessions to members (session affinity). It
	// has its own lock because pins are created during dispatch, which
	// holds mu only in R mode.
	sessMu   sync.Mutex
	sessions map[int]int
	// meters is append-only (retired members' counters stop moving but
	// stay in the set) so autoscale.MeterSource deltas never go negative.
	meters []*sim.Meter
	// partitioned is the single engine of a Rescale fleet.
	partitioned *Member
	parts       int
	// slo, when set, scores every dispatched transaction against the
	// fleet's latency objective; the controller surfaces its burn rate
	// each tick so scaling decisions can be audited against SLO burn.
	// Atomic so SetSLO needs no ordering against in-flight dispatches.
	slo atomic.Pointer[profile.SLOTracker]
}

// New builds a fleet with n initial members (n < 1 is treated as 1),
// warming members 1..n-1 on the caller's clock.
func New(spec Spec, c *sim.Clock, n int) *Fleet {
	if n < 1 {
		n = 1
	}
	f := &Fleet{
		spec:     spec,
		members:  make(map[int]*Member),
		sessions: make(map[int]int),
	}
	if spec.Rescale != nil {
		f.partitioned = f.newMemberLocked(c)
		f.parts = n
		if n > 1 {
			spec.Rescale(c, n)
		}
		return f
	}
	f.shard = NewShardMap(spec.Slots)
	for i := 0; i < n; i++ {
		m := f.newMemberLocked(c)
		f.shard.Add(m.ID)
	}
	return f
}

// newMemberLocked spawns and warms the next member. Callers hold mu (or
// are the constructor).
func (f *Fleet) newMemberLocked(c *sim.Clock) *Member {
	id := f.nextID
	f.nextID++
	m := &Member{ID: id, E: f.spec.New(id), Meter: sim.NewMeter(1)}
	m.caps = engine.Caps(m.E)
	if id > 0 && m.caps.Recoverer != nil {
		// Attaching is recovery work: learn the substrate's durable
		// watermark, charged to the virtual clock.
		if d, err := m.caps.Recoverer.Recover(c); err == nil {
			m.WarmTime = d
		}
	}
	f.members[id] = m
	f.order = append(f.order, id)
	f.meters = append(f.meters, m.Meter)
	return m
}

// Size reports the active member count (partition count for partitioned
// fleets).
func (f *Fleet) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.partitioned != nil {
		return f.parts
	}
	n := 0
	for _, id := range f.order {
		if f.members[id].Active() {
			n++
		}
	}
	return n
}

// Members returns every member ever created, in creation order (crashed
// and retired included — their Stats still count toward fleet totals).
func (f *Fleet) Members() []*Member {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Member, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, f.members[id])
	}
	return out
}

// Meters returns the append-only meter set for autoscale.MeterSource.
func (f *Fleet) Meters() []*sim.Meter {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]*sim.Meter(nil), f.meters...)
}

// SetSLO attaches a latency objective to the fleet: every dispatched
// transaction is scored against it, and Controller.Tick reports the
// window's burn rate alongside the scaling decision.
func (f *Fleet) SetSLO(s profile.SLO) { f.slo.Store(profile.NewSLOTracker(s)) }

// SLO returns the fleet's tracker (nil when no objective is attached).
func (f *Fleet) SLO() *profile.SLOTracker { return f.slo.Load() }

// ShardOwner reports the member id owning key (routing introspection).
func (f *Fleet) ShardOwner(key uint64) int {
	if f.partitioned != nil {
		return f.partitioned.ID
	}
	return f.shard.Owner(key)
}

// RunOpts extends engine.RunOpts with fleet routing controls.
type RunOpts struct {
	engine.RunOpts
	// ReadOnly routes the transaction by load instead of by key: the
	// fleet picks the session's pinned member (or the least-loaded active
	// member on first use) and, when that member is not the key's shard
	// owner, refreshes its durable watermark first so the read cannot
	// trail an acknowledged commit. The transaction must not write.
	ReadOnly bool
	// FailoverRetries bounds re-routing after a member failure mid-run
	// (default 3). Each re-route consults the shard map again, so a
	// transaction caught on a crashing member lands on the survivor that
	// took over its slot.
	FailoverRetries int
}

// Run executes fn as one transaction on the member that owns key. It is
// the fleet-mode replacement for engine.Run: same per-attempt accounting
// (delegated to the routed member's Stats), plus routing, telemetry, and
// failover re-routing. Transactions that write multiple keys must keep
// their write set within one shard (the seeded fleet workloads use
// single-key writes; cross-shard transactions are the shared-nothing
// engine's department).
func (f *Fleet) Run(c *sim.Clock, key uint64, opts RunOpts, fn func(tx engine.Tx) error) error {
	retries := opts.FailoverRetries
	if retries <= 0 {
		retries = 3
	}
	var lastErr error
	lastMember := -1
	for attempt := 0; attempt <= retries; attempt++ {
		m, err := f.dispatch(c, key, &opts, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		if m == nil {
			return err
		}
		// Re-routing only helps when the member was lost (not an
		// admission shed, not a conflict) and the map has someone else to
		// offer; a repeat route to the same member means the failure is
		// substrate-wide, so surface it.
		if !errors.Is(err, engine.ErrUnavailable) || errors.Is(err, sim.ErrAdmission) {
			return err
		}
		if m.ID == lastMember && m.Active() {
			return err
		}
		lastMember = m.ID
	}
	return lastErr
}

// dispatch routes and executes one fleet attempt under the membership
// read lock, recording telemetry on the routed member.
func (f *Fleet) dispatch(c *sim.Clock, key uint64, opts *RunOpts, fn func(tx engine.Tx) error) (*Member, error) {
	f.mu.RLock()
	m := f.routeLocked(key, opts)
	if m == nil {
		f.mu.RUnlock()
		return nil, ErrNoMembers
	}
	if opts.ReadOnly {
		if err := f.refreshLocked(c, m, key); err != nil {
			// The member cannot prove freshness, so it must not serve the
			// read. Unpin the session and surface unavailability; the
			// retry loop may land the session somewhere healthier.
			f.unpin(opts.Session)
			f.mu.RUnlock()
			return m, err
		}
	}
	m.inflight.Add(1)
	start := c.Now()
	if cc := f.spec.ComputeCost; cc > 0 {
		// The member's compute share: oversubscription stretches this
		// charge, and it is what the meter's busy time then reports to the
		// autoscale loop. The substrate legs inside engine.Run charge their
		// own meters, so they are not re-billed here.
		m.Meter.Charge(c, cc)
	}
	err := engine.Run(m.E, c, opts.RunOpts, fn)
	if f.spec.ComputeCost <= 0 {
		m.Meter.Observe(c, c.Now()-start)
	}
	if t := f.slo.Load(); t != nil {
		t.Observe(c.Now(), c.Now()-start, err == nil)
	}
	m.inflight.Add(-1)
	f.mu.RUnlock()
	return m, err
}

// routeLocked picks the member for one transaction. Callers hold mu.R.
func (f *Fleet) routeLocked(key uint64, opts *RunOpts) *Member {
	if f.partitioned != nil {
		return f.partitioned
	}
	if opts.ReadOnly {
		f.sessMu.Lock()
		defer f.sessMu.Unlock()
		if id, ok := f.sessions[opts.Session]; ok {
			if m := f.members[id]; m != nil && m.Active() {
				return m
			}
			delete(f.sessions, opts.Session)
		}
		if m := f.leastLoadedLocked(); m != nil {
			f.sessions[opts.Session] = m.ID
			return m
		}
		return nil
	}
	owner := f.shard.Owner(key)
	if owner < 0 {
		return nil
	}
	return f.members[owner]
}

// leastLoadedLocked picks the active member with the fewest in-flight
// transactions (ties break to the lowest id, keeping routing
// deterministic under equal load).
func (f *Fleet) leastLoadedLocked() *Member {
	var best *Member
	for _, id := range f.order {
		m := f.members[id]
		if !m.Active() {
			continue
		}
		if best == nil || m.InFlight() < best.InFlight() {
			best = m
		}
	}
	return best
}

// refreshLocked makes a read-only dispatch to a non-owner member safe: the
// member's durable watermark is advanced to the substrate's high-water
// mark (one recovery-style round trip, charged to the caller's clock)
// before the read, so no acknowledged commit on the owner can trail the
// reader's floor. On the owner — or when the architecture has no
// Recoverer — it is a no-op; the owner's floor already covers its own
// acked commits. A refresh failure is surfaced as unavailability: a
// member that cannot prove freshness must not serve the read.
func (f *Fleet) refreshLocked(c *sim.Clock, m *Member, key uint64) error {
	if f.partitioned != nil || m.caps.Recoverer == nil || !m.Active() {
		return nil
	}
	if f.shard.Owner(key) == m.ID {
		return nil
	}
	if _, err := m.caps.Recoverer.Recover(c); err != nil {
		return fmt.Errorf("%w: freshness refresh on member %d: %v", engine.ErrUnavailable, m.ID, err)
	}
	return nil
}

// unpin drops a read-only session's member pin.
func (f *Fleet) unpin(session int) {
	f.sessMu.Lock()
	delete(f.sessions, session)
	f.sessMu.Unlock()
}

// ScaleTo grows or shrinks the fleet to n active members, charging
// attach/warm work to the caller's clock. Scale-in never retires the
// root (member 0, which owns the substrate), so n is clamped to >= 1.
// It returns the member ids added or retired.
func (f *Fleet) ScaleTo(c *sim.Clock, n int) (added, retired []int) {
	if n < 1 {
		n = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitioned != nil {
		if n != f.parts {
			f.spec.Rescale(c, n)
			f.parts = n
		}
		return nil, nil
	}
	active := f.activeIDsLocked()
	for len(active) < n {
		m := f.newMemberLocked(c)
		f.shard.Add(m.ID)
		added = append(added, m.ID)
		active = append(active, m.ID)
	}
	// Retire newest-first, never the root.
	for i := len(active) - 1; len(active) > n && i > 0; i-- {
		id := active[i]
		if id == 0 {
			continue
		}
		f.retireLocked(c, id, stateRetired)
		retired = append(retired, id)
		active = append(active[:i], active[i+1:]...)
	}
	return added, retired
}

// Crash kills member id: volatile state is lost, its keyspace re-routes
// to survivors (who warm on the caller's clock), and its sessions drain.
// The crashed member's Stats stay in the fleet totals.
func (f *Fleet) Crash(c *sim.Clock, id int) error {
	f.mu.RLock()
	if f.partitioned != nil {
		f.mu.RUnlock()
		return fmt.Errorf("%w: partitioned fleets do not crash members", ErrUnsupported)
	}
	m, ok := f.members[id]
	if !ok || !m.Active() {
		f.mu.RUnlock()
		return fmt.Errorf("%w: member %d not active", ErrNoMembers, id)
	}
	if m.caps.Recoverer == nil {
		f.mu.RUnlock()
		return fmt.Errorf("%w: %s has no Recoverer", ErrUnsupported, m.E.Name())
	}
	if len(f.activeIDsLocked()) == 1 {
		f.mu.RUnlock()
		return fmt.Errorf("%w: cannot crash the last member", ErrNoMembers)
	}
	f.mu.RUnlock()
	// Kill the node BEFORE taking the membership write lock: in-flight
	// transactions on it fail fast with ErrUnavailable (engine-side shed)
	// and their fleet.Run re-route blocks on the read lock until the
	// takeover below has flipped the shard map to the survivors.
	m.state.Store(int32(stateCrashed))
	m.caps.Recoverer.Crash()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.retireLocked(c, id, stateCrashed)
	return nil
}

// retireLocked removes a member from routing (crashed or drained): the
// shard map reassigns its slots, each gaining survivor warms to the
// substrate high-water mark (so takeover reads cover every commit the
// leaver acknowledged), sessions unpin, and the leaver's cache tier
// detaches from the coherence directory. Callers hold mu.W.
func (f *Fleet) retireLocked(c *sim.Clock, id int, to memberState) {
	m := f.members[id]
	m.state.Store(int32(to))
	if to == stateCrashed && m.caps.Recoverer != nil {
		m.caps.Recoverer.Crash()
	}
	gainers := make(map[int]bool)
	f.shard.Remove(id, gainers)
	for gid := range gainers {
		g := f.members[gid]
		if g.caps.Recoverer == nil || !g.Active() {
			continue
		}
		if d, err := g.caps.Recoverer.Recover(c); err == nil {
			g.WarmTime += d
		}
	}
	f.sessMu.Lock()
	for sess, sid := range f.sessions {
		if sid == id {
			delete(f.sessions, sess)
		}
	}
	f.sessMu.Unlock()
	if to == stateRetired {
		if d, ok := m.E.(detacher); ok {
			d.Detach()
		}
	}
}

// activeIDsLocked lists active member ids in creation order.
func (f *Fleet) activeIDsLocked() []int {
	var out []int
	for _, id := range f.order {
		if f.members[id].Active() {
			out = append(out, id)
		}
	}
	return out
}

// Totals is the fleet-wide Stats aggregate (plain values, summed over
// every member ever, so retired and crashed members' traffic stays
// accounted).
type Totals struct {
	Attempts, Commits, Aborts, Shed int64
	Retries, Indeterminates         int64
}

// Conserved reports whether the fleet-wide accounting invariant holds:
// every attempt landed in exactly one of Commits, Aborts, or Shed.
func (t Totals) Conserved() bool { return t.Attempts == t.Commits+t.Aborts+t.Shed }

// Totals sums member Stats fleet-wide.
func (f *Fleet) Totals() Totals {
	var t Totals
	for _, m := range f.Members() {
		s := m.E.Stats()
		t.Attempts += s.Attempts.Load()
		t.Commits += s.Commits.Load()
		t.Aborts += s.Aborts.Load()
		t.Shed += s.Shed.Load()
		t.Retries += s.Retries.Load()
		t.Indeterminates += s.Indeterminates.Load()
	}
	// A partitioned fleet is one engine shared by every routing path;
	// Members() has exactly one entry, so no double counting.
	return t
}
