package cluster

import (
	"sort"
	"sync"
)

// ShardMap assigns the keyspace to fleet members with rendezvous
// (highest-random-weight) hashing over a fixed slot count. Every key hashes
// to one of Slots slots; every slot is owned by exactly one member — the
// member with the highest hash weight for that slot. The properties the
// fleet relies on:
//
//   - Deterministic: the same member set always produces the same
//     assignment, independent of join order.
//   - Minimal movement: adding a member moves only the slots the new member
//     now wins (roughly Slots/n), all FROM survivors TO the newcomer;
//     removing a member moves only ITS slots, scattered across survivors.
//     No slot ever moves between two members that are present before and
//     after the change.
//   - No orphans: while at least one member exists, every slot has an
//     owner.
//
// Writes route by key through the map, which is what keeps per-member lock
// tables sufficient: two members never own the same key at the same time.
type ShardMap struct {
	slots int

	mu      sync.RWMutex
	members []int // sorted, for deterministic iteration
	owner   []int // slot -> owning member id
}

// DefaultSlots is the shard granularity fleets use unless overridden:
// fine enough that load spreads across a handful of members, coarse
// enough that membership changes re-route a bounded key set.
const DefaultSlots = 64

// NewShardMap builds a map with the given slot count (<=0 selects
// DefaultSlots) over the initial member set.
func NewShardMap(slots int, members ...int) *ShardMap {
	if slots <= 0 {
		slots = DefaultSlots
	}
	m := &ShardMap{slots: slots, owner: make([]int, slots)}
	m.members = append(m.members, members...)
	sort.Ints(m.members)
	m.rebuildLocked(nil)
	return m
}

// Slots reports the slot count.
func (m *ShardMap) Slots() int { return m.slots }

// Members returns the current member set (sorted copy).
func (m *ShardMap) Members() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]int(nil), m.members...)
}

// SlotOf reports the slot a key hashes to (member-set independent).
func (m *ShardMap) SlotOf(key uint64) int {
	return int(mix(key) % uint64(m.slots))
}

// Owner reports the member owning the key's slot, or -1 if the map is
// empty.
func (m *ShardMap) Owner(key uint64) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.members) == 0 {
		return -1
	}
	return m.owner[m.SlotOf(key)]
}

// OwnerOfSlot reports the member owning a slot, or -1 if the map is empty.
func (m *ShardMap) OwnerOfSlot(slot int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.members) == 0 {
		return -1
	}
	return m.owner[slot]
}

// Add joins a member and returns the slots that changed owner (each gained
// by the newcomer). Adding a present member is a no-op.
func (m *ShardMap) Add(id int) (moved []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range m.members {
		if v == id {
			return nil
		}
	}
	m.members = append(m.members, id)
	sort.Ints(m.members)
	return m.rebuildLocked(nil)
}

// Remove retires a member and returns the slots that changed owner (each
// previously the removed member's, now scattered across survivors).
// gainers, when non-nil, collects the set of members that gained at least
// one slot — the members a failover must warm.
func (m *ShardMap) Remove(id int, gainers map[int]bool) (moved []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.members[:0]
	found := false
	for _, v := range m.members {
		if v == id {
			found = true
			continue
		}
		kept = append(kept, v)
	}
	if !found {
		return nil
	}
	m.members = kept
	return m.rebuildLocked(gainers)
}

// rebuildLocked recomputes every slot's owner and returns the slots whose
// owner changed, recording gaining members in gainers when non-nil.
func (m *ShardMap) rebuildLocked(gainers map[int]bool) (moved []int) {
	if len(m.members) == 0 {
		for i := range m.owner {
			m.owner[i] = -1
		}
		return nil
	}
	for slot := range m.owner {
		best, bestW := -1, uint64(0)
		for _, id := range m.members {
			if w := weight(uint64(slot), uint64(id)); best == -1 || w > bestW {
				best, bestW = id, w
			}
		}
		if m.owner[slot] != best {
			moved = append(moved, slot)
			if gainers != nil {
				gainers[best] = true
			}
			m.owner[slot] = best
		}
	}
	return moved
}

// weight is the rendezvous hash of (slot, member).
func weight(slot, member uint64) uint64 {
	return mix(slot*0x9E3779B97F4A7C15 ^ mix(member+0xD1B54A32D192ED03))
}

// mix is a splitmix64-style finalizer: avalanche so nearby keys and member
// ids land on uncorrelated slots/weights.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
