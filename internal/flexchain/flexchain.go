// Package flexchain implements the FlexChain design of §3.1: a permissioned
// XOV (execute-order-validate) blockchain whose world state lives in a
// tiered key-value store over disaggregated memory — a small hot cache on
// the compute (validator) node backed by the memory pool — so compute and
// memory scale with their own demands. Disaggregation shifts the
// bottleneck to the VALIDATE phase, which FlexChain attacks by building a
// dependency graph over the block's transactions and validating
// independent transactions in parallel.
package flexchain

import (
	"encoding/binary"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
)

// Version is a world-state version number (block height based).
type Version uint64

// Tx is one endorsed transaction: the read set it was simulated against
// and the writes it wants to apply.
type Tx struct {
	ID     int
	Reads  map[uint64]Version // key -> version observed at endorsement
	Writes map[uint64]uint64  // key -> new value
}

// State is the tiered world-state store: a compute-local cache in front of
// versioned records in the disaggregated memory pool.
type State struct {
	cfg  *sim.Config
	pool *memnode.Pool

	mu    sync.Mutex
	addrs map[uint64]uint64 // key -> remote record address
	cache *buffer.Pool      // hot tier: record images keyed by key
	// committed versions (authoritative, mirrors remote contents).
	versions map[uint64]Version
	values   map[uint64]uint64
}

// record layout in the pool: version(8) value(8).
const recordSize = 16

// NewState creates the tiered store with a hot cache of cacheRecords.
func NewState(cfg *sim.Config, pool *memnode.Pool, cacheRecords int) *State {
	s := &State{
		cfg:      cfg,
		pool:     pool,
		addrs:    make(map[uint64]uint64),
		versions: make(map[uint64]Version),
		values:   make(map[uint64]uint64),
	}
	s.cache = buffer.NewPool(cfg, cacheRecords, s.fetchRecord, nil)
	return s
}

// fetchRecord loads a record from the pool on a hot-tier miss.
func (s *State) fetchRecord(c *sim.Clock, id page.ID) ([]byte, error) {
	s.mu.Lock()
	addr, ok := s.addrs[uint64(id)]
	s.mu.Unlock()
	buf := make([]byte, recordSize)
	if !ok {
		return buf, nil // unset key: version 0, value 0
	}
	qp := s.pool.Connect(nil)
	if err := qp.Read(c, addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Read returns (value, version) of a key through the tiered store.
func (s *State) Read(c *sim.Clock, key uint64) (uint64, Version, error) {
	data, err := s.cache.Get(c, page.ID(key))
	if err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(data[8:]), Version(binary.LittleEndian.Uint64(data)), nil
}

// apply installs a committed write at the given version (remote write +
// cache refresh).
func (s *State) apply(c *sim.Clock, key, value uint64, v Version) error {
	s.mu.Lock()
	addr, ok := s.addrs[key]
	var err error
	if !ok {
		addr, err = s.pool.Alloc(recordSize)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.addrs[key] = addr
	}
	s.versions[key] = v
	s.values[key] = value
	s.mu.Unlock()
	buf := make([]byte, recordSize)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	binary.LittleEndian.PutUint64(buf[8:], value)
	qp := s.pool.Connect(nil)
	if err := qp.Write(c, addr, buf); err != nil {
		return err
	}
	return s.cache.Install(c, page.ID(key), buf, false)
}

// Validator commits blocks against the state.
type Validator struct {
	cfg   *sim.Config
	state *State
	// height is the current block height (doubles as the version stamp).
	height Version
	// Parallelism is the validator's worker count for parallel
	// validation (FlexChain's dependency-graph scheduling).
	Parallelism int
}

// NewValidator creates a validator over the state.
func NewValidator(cfg *sim.Config, state *State, parallelism int) *Validator {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Validator{cfg: cfg, state: state, Parallelism: parallelism}
}

// Height reports the committed block height.
func (v *Validator) Height() Version { return v.height }

// validateOne re-reads the transaction's read set and checks versions
// (MVCC validation); cost rides the tiered store.
func (v *Validator) validateOne(c *sim.Clock, tx *Tx) (bool, error) {
	for key, sawVersion := range tx.Reads {
		_, cur, err := v.state.Read(c, key)
		if err != nil {
			return false, err
		}
		if cur != sawVersion {
			return false, nil // stale read: transaction invalid
		}
	}
	return true, nil
}

// CommitBlock validates and commits a block, returning the IDs of valid
// transactions. With parallel=false every transaction validates serially
// (the classic XOV pipeline); with parallel=true FlexChain's dependency
// graph lets independent transactions validate concurrently — the block's
// validation time becomes the longest dependency CHAIN instead of the sum.
// Conflicting transactions are still decided in block order.
func (v *Validator) CommitBlock(c *sim.Clock, block []*Tx, parallel bool) ([]int, error) {
	v.height++
	var validIDs []int
	if !parallel {
		for _, tx := range block {
			ok, err := v.validateOne(c, tx)
			if err != nil {
				return nil, err
			}
			if ok {
				if err := v.applyTx(c, tx); err != nil {
					return nil, err
				}
				validIDs = append(validIDs, tx.ID)
			}
		}
		return validIDs, nil
	}
	// Dependency graph: tx j depends on earlier tx i when j reads or
	// writes a key i writes (write-read, write-write), or writes a key
	// i reads (read-write) — block order decides conflicts.
	levels := scheduleLevels(block)
	// Parallel validation: each level's transactions validate
	// concurrently across the validator's workers; the level costs its
	// slowest member (subject to worker count), and time accrues level
	// by level.
	for _, level := range levels {
		levelStart := c.Now()
		var worst time.Duration
		for gi := 0; gi < len(level); gi += v.Parallelism {
			end := gi + v.Parallelism
			if end > len(level) {
				end = len(level)
			}
			var waveWorst time.Duration
			for _, tx := range level[gi:end] {
				probe := sim.NewClock()
				probe.AdvanceTo(levelStart)
				ok, err := v.validateOne(probe, tx)
				if err != nil {
					return nil, err
				}
				if ok {
					if err := v.applyTx(probe, tx); err != nil {
						return nil, err
					}
					validIDs = append(validIDs, tx.ID)
				}
				if d := probe.Now() - levelStart; d > waveWorst {
					waveWorst = d
				}
			}
			worst += waveWorst
		}
		c.Advance(worst)
	}
	return validIDs, nil
}

func (v *Validator) applyTx(c *sim.Clock, tx *Tx) error {
	for key, val := range tx.Writes {
		if err := v.state.apply(c, key, val, v.height); err != nil {
			return err
		}
	}
	return nil
}

// scheduleLevels topologically layers the block by conflict dependencies.
func scheduleLevels(block []*Tx) [][]*Tx {
	n := len(block)
	level := make([]int, n)
	maxLevel := 0
	conflicts := func(a, b *Tx) bool {
		for k := range a.Writes {
			if _, ok := b.Reads[k]; ok {
				return true
			}
			if _, ok := b.Writes[k]; ok {
				return true
			}
		}
		for k := range a.Reads {
			if _, ok := b.Writes[k]; ok {
				return true
			}
		}
		return false
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if conflicts(block[i], block[j]) && level[i]+1 > level[j] {
				level[j] = level[i] + 1
			}
		}
		if level[j] > maxLevel {
			maxLevel = level[j]
		}
	}
	out := make([][]*Tx, maxLevel+1)
	for i, tx := range block {
		out[level[i]] = append(out[level[i]], tx)
	}
	return out
}

// Levels exposes the dependency layering (tests, metrics).
func Levels(block []*Tx) int { return len(scheduleLevels(block)) }
