package flexchain

import (
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/sim"
)

func newChain(t *testing.T, cacheRecords, parallelism int) (*State, *Validator) {
	t.Helper()
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "world-state", 16<<20)
	st := NewState(cfg, pool, cacheRecords)
	return st, NewValidator(cfg, st, parallelism)
}

func tx(id int, reads map[uint64]Version, writes map[uint64]uint64) *Tx {
	if reads == nil {
		reads = map[uint64]Version{}
	}
	if writes == nil {
		writes = map[uint64]uint64{}
	}
	return &Tx{ID: id, Reads: reads, Writes: writes}
}

func TestCommitAndRead(t *testing.T) {
	st, v := newChain(t, 64, 4)
	c := sim.NewClock()
	valid, err := v.CommitBlock(c, []*Tx{
		tx(1, nil, map[uint64]uint64{10: 100}),
		tx(2, nil, map[uint64]uint64{20: 200}),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(valid) != 2 {
		t.Fatalf("valid = %v", valid)
	}
	val, ver, err := st.Read(c, 10)
	if err != nil || val != 100 || ver != 1 {
		t.Fatalf("read: %d v%d %v", val, ver, err)
	}
}

func TestStaleReadInvalidated(t *testing.T) {
	_, v := newChain(t, 64, 4)
	c := sim.NewClock()
	v.CommitBlock(c, []*Tx{tx(1, nil, map[uint64]uint64{5: 50})}, false)
	// Endorsed against version 0, but key 5 is now at version 1.
	valid, err := v.CommitBlock(c, []*Tx{
		tx(2, map[uint64]Version{5: 0}, map[uint64]uint64{5: 51}),
		tx(3, map[uint64]Version{5: 1}, map[uint64]uint64{6: 60}),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(valid) != 1 || valid[0] != 3 {
		t.Fatalf("valid = %v, want [3]", valid)
	}
}

func TestIntraBlockConflictOrdering(t *testing.T) {
	// tx A writes key 1; tx B (later in block) reads key 1 at the
	// pre-block version — B must be invalidated because A commits first.
	_, v := newChain(t, 64, 4)
	c := sim.NewClock()
	for _, parallel := range []bool{false, true} {
		valid, err := v.CommitBlock(c, []*Tx{
			tx(1, nil, map[uint64]uint64{1: 11}),
			tx(2, map[uint64]Version{1: v.Height()}, map[uint64]uint64{2: 22}),
		}, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if len(valid) != 1 || valid[0] != 1 {
			t.Fatalf("parallel=%v: valid = %v, want [1]", parallel, valid)
		}
	}
}

func TestParallelAndSerialAgree(t *testing.T) {
	mk := func() []*Tx {
		var block []*Tx
		for i := 0; i < 40; i++ {
			block = append(block, tx(i,
				map[uint64]Version{uint64(i): 0},
				map[uint64]uint64{uint64(i + 100): uint64(i)}))
		}
		// A conflicting pair on top.
		block = append(block, tx(100, nil, map[uint64]uint64{500: 1}))
		block = append(block, tx(101, map[uint64]Version{500: 0}, map[uint64]uint64{501: 1}))
		return block
	}
	_, v1 := newChain(t, 64, 8)
	serialValid, err := v1.CommitBlock(sim.NewClock(), mk(), false)
	if err != nil {
		t.Fatal(err)
	}
	_, v2 := newChain(t, 64, 8)
	parallelValid, err := v2.CommitBlock(sim.NewClock(), mk(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialValid) != len(parallelValid) {
		t.Fatalf("serial %d valid vs parallel %d", len(serialValid), len(parallelValid))
	}
}

func TestDependencyLevels(t *testing.T) {
	independent := []*Tx{
		tx(1, nil, map[uint64]uint64{1: 1}),
		tx(2, nil, map[uint64]uint64{2: 1}),
		tx(3, nil, map[uint64]uint64{3: 1}),
	}
	if Levels(independent) != 1 {
		t.Fatalf("independent block has %d levels", Levels(independent))
	}
	chain := []*Tx{
		tx(1, nil, map[uint64]uint64{1: 1}),
		tx(2, map[uint64]Version{1: 0}, map[uint64]uint64{2: 1}),
		tx(3, map[uint64]Version{2: 0}, map[uint64]uint64{3: 1}),
	}
	if Levels(chain) != 3 {
		t.Fatalf("dependency chain has %d levels", Levels(chain))
	}
}

func TestParallelValidationFasterOnIndependentBlocks(t *testing.T) {
	// FlexChain's claim: with validation the new bottleneck, the
	// dependency-graph parallel validator beats serial validation on
	// blocks of mostly independent transactions.
	mk := func() []*Tx {
		var block []*Tx
		for i := 0; i < 64; i++ {
			block = append(block, tx(i,
				map[uint64]Version{uint64(i): 0},
				map[uint64]uint64{uint64(i): uint64(i)}))
		}
		return block
	}
	_, serial := newChain(t, 4, 8) // tiny cache: validation reads hit the pool
	sc := sim.NewClock()
	if _, err := serial.CommitBlock(sc, mk(), false); err != nil {
		t.Fatal(err)
	}
	_, par := newChain(t, 4, 8)
	pc := sim.NewClock()
	if _, err := par.CommitBlock(pc, mk(), true); err != nil {
		t.Fatal(err)
	}
	// The speedup is bounded by the memory-pool NIC, not the worker
	// count, so expect a solid but not linear win.
	if !(pc.Now() < sc.Now()*2/3) {
		t.Fatalf("parallel validation (%v) should clearly beat serial (%v)", pc.Now(), sc.Now())
	}
}
