package storagenode

import (
	"bytes"
	"testing"

	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

// Regression: after a replica adopts a recovery horizon, gossip or repair
// re-delivering records at or below the horizon must be absorbed, not
// re-materialized — re-applying them would stamp a below-horizon LSN onto
// a page whose checkpointed image is already fresher, and a subsequent
// ReadPage would serve the stale value as if complete.
func TestReplicaBelowHorizonRedeliveryNotRematerialized(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	log := wal.NewLog()
	a := NewReplica(cfg, "a", 0, layout, 1)
	b := NewReplica(cfg, "b", 1, layout, 1)
	c := sim.NewClock()

	var recs []wal.Record
	for _, v := range []string{"v1", "v2", "v3"} {
		rec := updateRec(0, 5, layout, v)
		rec.LSN = log.Append(rec)
		recs = append(recs, rec)
	}
	a.ingest(recs)
	a.AdvanceHorizon(c, 3)
	log.TruncateBefore(4)

	// b starts empty; the log below the horizon is gone, so catch-up must
	// go through checkpoint adoption.
	if n, err := b.CatchUpFrom(c, a, log); err != nil || n == 0 {
		t.Fatalf("catch-up after truncation: n=%d err=%v", n, err)
	}
	if b.Horizon() != 3 {
		t.Fatalf("adopted horizon = %d", b.Horizon())
	}

	// Gossip re-delivers the pre-checkpoint records. They are covered by
	// the adopted images and must not re-materialize.
	applied := b.AppliedRecords()
	if err := b.Ingest(c, recs[:2]); err != nil {
		t.Fatal(err)
	}
	if got := b.PendingRecords(); got != 0 {
		t.Fatalf("below-horizon re-delivery buffered %d records", got)
	}
	if got := b.AppliedRecords(); got != applied {
		t.Fatalf("below-horizon re-delivery re-materialized records: applied %d -> %d", applied, got)
	}
	data, err := b.ReadPage(c, layout.PageOf(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := layout.ReadValue(data, 5); !bytes.HasPrefix(v, []byte("v3")) {
		t.Fatalf("value after re-delivery = %q (checkpointed image overwritten)", v[:4])
	}
	if lsn := page.Wrap(data).LSN(); wal.LSN(lsn) < 3 {
		t.Fatalf("page LSN regressed to %d after re-delivery", lsn)
	}
}

// Regression: when the source log has been truncated past a replica's
// prefix, the log-only heal path must ship nothing — silently replaying
// just the surviving tail would leave the gap unapplied while the prefix
// bookkeeping claims completeness.
func TestReplicaCatchUpFromLogRefusesTruncatedGap(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	log := wal.NewLog()
	b := NewReplica(cfg, "b", 0, layout, 1)
	c := sim.NewClock()

	for i, v := range []string{"v1", "v2", "v3", "v4"} {
		rec := updateRec(0, uint64(i), layout, v)
		rec.LSN = log.Append(rec)
	}
	log.TruncateBefore(3)

	if n := b.CatchUpFromLog(c, log); n != 0 {
		t.Fatalf("log-only catch-up shipped %d records across a truncated gap", n)
	}
	if b.PrefixLSN() != 0 || b.HighLSN() != 0 {
		t.Fatalf("refused catch-up still advanced state: prefix=%d high=%d", b.PrefixLSN(), b.HighLSN())
	}
}

// After adopting checkpointed images for the truncated range, a replica
// must still tail-replay the surviving records above the horizon from its
// peer — the two sources stitch together into the complete state.
func TestReplicaAdoptionThenTailReplay(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	log := wal.NewLog()
	a := NewReplica(cfg, "a", 0, layout, 1)
	b := NewReplica(cfg, "b", 1, layout, 1)
	c := sim.NewClock()

	var recs []wal.Record
	for _, v := range []string{"v1", "v2", "v3"} {
		rec := updateRec(0, 5, layout, v)
		rec.LSN = log.Append(rec)
		recs = append(recs, rec)
	}
	a.ingest(recs)
	a.AdvanceHorizon(c, 3)
	log.TruncateBefore(4)

	// The tail keeps growing after the checkpoint.
	tail := updateRec(0, 5, layout, "v4")
	tail.LSN = log.Append(tail)
	a.ingest([]wal.Record{tail})

	if n, err := b.CatchUpFrom(c, a, log); err != nil || n == 0 {
		t.Fatalf("catch-up: n=%d err=%v", n, err)
	}
	data, err := b.ReadPage(c, layout.PageOf(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := layout.ReadValue(data, 5); !bytes.HasPrefix(v, []byte("v4")) {
		t.Fatalf("value = %q (tail above the adopted horizon not replayed)", v[:4])
	}
}

// AdvanceHorizon must materialize what the horizon completes BEFORE
// adopting it: pending records at or below the horizon would otherwise be
// treated as covered and silently dropped.
func TestAdvanceHorizonMaterializesPendingFirst(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	r := NewReplica(cfg, "r0", 0, layout, 1)
	c := sim.NewClock()

	r.ingest([]wal.Record{updateRec(1, 7, layout, "kept")})
	if r.PendingRecords() != 1 {
		t.Fatalf("pending = %d", r.PendingRecords())
	}
	r.AdvanceHorizon(c, 1)
	if r.PendingRecords() != 0 {
		t.Fatal("horizon adoption left records pending")
	}
	data, err := r.ReadPage(c, layout.PageOf(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := layout.ReadValue(data, 7); !bytes.HasPrefix(v, []byte("kept")) {
		t.Fatalf("value = %q (pending record dropped by horizon adoption)", v[:4])
	}
}
