package storagenode

import (
	"bytes"
	"testing"

	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

func testLayout(t *testing.T) heap.Layout {
	t.Helper()
	l, err := heap.NewLayout(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func updateRec(lsn wal.LSN, key uint64, layout heap.Layout, val string) wal.Record {
	v := make([]byte, layout.ValSize)
	copy(v, val)
	return wal.Record{
		LSN:    lsn,
		Type:   wal.TypeUpdate,
		TxID:   1,
		PageID: uint64(layout.PageOf(key)),
		Key:    key,
		After:  v,
	}
}

func TestReplicaMaterializesLogIntoPages(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	r := NewReplica(cfg, "r0", 0, layout, 1)
	c := sim.NewClock()

	if err := r.Ingest(c, []wal.Record{updateRec(1, 5, layout, "v1"), updateRec(2, 5, layout, "v2")}); err != nil {
		t.Fatal(err)
	}
	if r.PendingRecords() != 2 {
		t.Fatalf("pending = %d", r.PendingRecords())
	}
	data, err := r.ReadPage(c, layout.PageOf(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := layout.ReadValue(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v, []byte("v2")) {
		t.Fatalf("materialized value = %q", v[:4])
	}
	if r.PendingRecords() != 0 {
		t.Fatal("pending not drained by read")
	}
	if r.AppliedRecords() != 2 {
		t.Fatalf("applied = %d", r.AppliedRecords())
	}
}

func TestReplicaReadRespectsMinLSN(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	r := NewReplica(cfg, "r0", 0, layout, 1)
	c := sim.NewClock()
	r.Ingest(c, []wal.Record{updateRec(1, 1, layout, "x")})
	if _, err := r.ReadPage(c, layout.PageOf(1), 10); err != ErrStaleReplica {
		t.Fatalf("stale read err = %v", err)
	}
	if _, err := r.ReadPage(c, layout.PageOf(1), 1); err != nil {
		t.Fatalf("fresh read err = %v", err)
	}
	if r.PrefixLSN() != 1 {
		t.Fatalf("prefix = %d", r.PrefixLSN())
	}
}

func TestReplicaFailRestartDurability(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	r := NewReplica(cfg, "r0", 0, layout, 1)
	c := sim.NewClock()
	r.Ingest(c, []wal.Record{updateRec(1, 2, layout, "durable")})
	r.Fail()
	if _, err := r.ReadPage(c, layout.PageOf(2), 1); err != ErrReplicaDown {
		t.Fatalf("read on failed replica: %v", err)
	}
	if err := r.Ingest(c, []wal.Record{updateRec(2, 2, layout, "lost")}); err != ErrReplicaDown {
		t.Fatalf("ingest on failed replica: %v", err)
	}
	r.Restart()
	data, err := r.ReadPage(c, layout.PageOf(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := layout.ReadValue(data, 2)
	if !bytes.HasPrefix(v, []byte("durable")) {
		t.Fatal("durable record lost across crash")
	}
	if r.HighLSN() != 1 {
		t.Fatalf("high LSN = %d (record during downtime must be missed)", r.HighLSN())
	}
}

func TestReplicaWritePageSupersedesOlderLog(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	r := NewReplica(cfg, "r0", 0, layout, 1)
	c := sim.NewClock()
	r.Ingest(c, []wal.Record{updateRec(1, 3, layout, "old")})
	// Ship a full page image at LSN 5.
	p := layout.FormatPage(layout.PageOf(3))
	layout.WriteValue(p.Bytes(), 3, []byte("imaged"), 5)
	if err := r.WritePage(c, layout.PageOf(3), p.Bytes()); err != nil {
		t.Fatal(err)
	}
	if r.PendingRecords() != 0 {
		t.Fatal("superseded records not dropped")
	}
	data, _ := r.ReadPage(c, layout.PageOf(3), 5)
	v, _ := layout.ReadValue(data, 3)
	if !bytes.HasPrefix(v, []byte("imaged")) {
		t.Fatalf("value = %q", v[:8])
	}
}

func TestReplicaCatchUpFrom(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	log := wal.NewLog()
	a := NewReplica(cfg, "a", 0, layout, 1)
	b := NewReplica(cfg, "b", 1, layout, 1)
	c := sim.NewClock()
	var recs []wal.Record
	for i := 0; i < 5; i++ {
		rec := updateRec(0, uint64(i), layout, "v")
		rec.LSN = log.Append(rec)
		recs = append(recs, rec)
	}
	a.ingest(recs)
	b.ingest(recs[:2])
	n, err := b.CatchUpFrom(c, a, log)
	if err != nil || n != 3 {
		t.Fatalf("caught up %d records, err %v", n, err)
	}
	if b.HighLSN() != a.HighLSN() {
		t.Fatalf("lsn %d vs %d", b.HighLSN(), a.HighLSN())
	}
	// Idempotent when already caught up.
	n, _ = b.CatchUpFrom(c, a, log)
	if n != 0 {
		t.Fatalf("second catch-up shipped %d", n)
	}
}

func TestVolumeQuorumWriteAndRead(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	v := NewAuroraVolume(cfg, layout)
	if len(v.Replicas) != 6 || v.WriteQ != 4 || v.ReadQ != 3 {
		t.Fatalf("volume shape: %d replicas W=%d R=%d", len(v.Replicas), v.WriteQ, v.ReadQ)
	}
	c := sim.NewClock()
	if err := v.AppendLog(c, []wal.Record{updateRec(1, 9, layout, "q")}); err != nil {
		t.Fatal(err)
	}
	if c.Now() == 0 {
		t.Fatal("quorum write charged nothing")
	}
	data, err := v.ReadPage(c, layout.PageOf(9), 1)
	if err != nil {
		t.Fatal(err)
	}
	val, _ := layout.ReadValue(data, 9)
	if !bytes.HasPrefix(val, []byte("q")) {
		t.Fatal("read after quorum write lost data")
	}
}

func TestVolumeSurvivesAZLoss(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	v := NewAuroraVolume(cfg, layout)
	c := sim.NewClock()
	v.AppendLog(c, []wal.Record{updateRec(1, 1, layout, "pre")})

	v.FailAZ(2)
	if !v.WriteAvailable() || !v.ReadAvailable() {
		t.Fatal("AZ loss must not break quorums (4 of 6 alive)")
	}
	if err := v.AppendLog(c, []wal.Record{updateRec(2, 1, layout, "post")}); err != nil {
		t.Fatal(err)
	}

	// AZ + one more node: write quorum lost, read quorum survives
	// (Aurora's AZ+1 read availability).
	v.Replicas[0].Fail()
	if v.WriteAvailable() {
		t.Fatal("write quorum should be lost at 3/6")
	}
	if !v.ReadAvailable() {
		t.Fatal("read quorum should survive AZ+1")
	}
	if err := v.AppendLog(c, nil); err != ErrNoQuorum {
		t.Fatalf("append without quorum: %v", err)
	}
	lsn, err := v.FindHighLSN(c)
	if err != nil || lsn != 2 {
		t.Fatalf("recovery high LSN = %d, %v", lsn, err)
	}
}

func TestVolumeRepairReplica(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	log := wal.NewLog()
	v := NewAuroraVolume(cfg, layout)
	c := sim.NewClock()
	v.Replicas[5].Fail()
	for i := 0; i < 4; i++ {
		rec := updateRec(0, uint64(i), layout, "x")
		rec.LSN = log.Append(rec)
		v.AppendLog(c, []wal.Record{rec})
	}
	if v.Replicas[5].HighLSN() != 0 {
		t.Fatal("failed replica received writes")
	}
	n, err := v.RepairReplica(c, 5, log)
	if err != nil || n != 4 {
		t.Fatalf("repair shipped %d, err %v", n, err)
	}
	if v.Replicas[5].HighLSN() != 4 {
		t.Fatalf("repaired replica LSN = %d", v.Replicas[5].HighLSN())
	}
}

func TestVolumeQuorumLatencyCheaperThanAllReplicas(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	v := NewAuroraVolume(cfg, layout)
	rec := []wal.Record{updateRec(1, 1, layout, "z")}
	qc := sim.NewClock()
	v.AppendLog(qc, rec)
	// The slowest replica is in AZ 2 (scale 1.5): waiting for all 6
	// would cost at least that; quorum must be cheaper.
	slowest := v.Replicas[5].netCost(rec[0].EncodedSize())
	if float64(qc.Now()) >= slowest {
		t.Fatalf("quorum latency %v not cheaper than slowest replica %v", qc.Now(), slowest)
	}
}

func TestLogStoreAppendDurableAcrossCrash(t *testing.T) {
	cfg := sim.DefaultConfig()
	ls := NewLogStore(cfg, MediumSSD)
	c := sim.NewClock()
	layout := testLayout(t)
	ls.Append(c, []wal.Record{updateRec(1, 1, layout, "a"), updateRec(2, 2, layout, "b")})
	ls.Fail()
	if err := ls.Append(c, nil); err != ErrReplicaDown {
		t.Fatalf("append on failed store: %v", err)
	}
	ls.Restart()
	recs, err := ls.Since(c, 1)
	if err != nil || len(recs) != 1 || recs[0].LSN != 2 {
		t.Fatalf("since(1) = %d recs, err %v", len(recs), err)
	}
	if ls.HighLSN() != 2 || ls.Len() != 2 {
		t.Fatalf("high=%d len=%d", ls.HighLSN(), ls.Len())
	}
}

func TestPMLogStoreFasterThanSSD(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	rec := []wal.Record{updateRec(1, 1, layout, "fast")}
	pm := NewLogStore(cfg, MediumPM)
	ssd := NewLogStore(cfg, MediumSSD)
	pc, sc := sim.NewClock(), sim.NewClock()
	pm.Append(pc, rec)
	ssd.Append(sc, rec)
	if !(pc.Now() < sc.Now()/5) {
		t.Fatalf("PM log append (%v) should be ≫ faster than SSD (%v)", pc.Now(), sc.Now())
	}
}

func TestLogStoreGroupQuorum(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	g := NewLogStoreGroup(cfg, 3, 2, MediumSSD)
	c := sim.NewClock()
	if err := g.Append(c, []wal.Record{updateRec(1, 1, layout, "x")}); err != nil {
		t.Fatal(err)
	}
	if g.HighLSN() != 1 {
		t.Fatalf("group high LSN = %d", g.HighLSN())
	}
	g.Stores[0].Fail()
	g.Stores[1].Fail()
	if err := g.Append(c, nil); err != ErrNoQuorum {
		t.Fatalf("append with 1/3 alive: %v", err)
	}
}

func TestPageStoreGroupGossipConvergence(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	log := wal.NewLog()
	g := NewPageStoreGroup(cfg, 3, layout, log)
	c := sim.NewClock()
	// Write 9 batches round-robin: each store gets 3, so all lag.
	for i := 0; i < 9; i++ {
		rec := updateRec(0, uint64(i), layout, "g")
		rec.LSN = log.Append(rec)
		if err := g.WriteToOne(c, []wal.Record{rec}); err != nil {
			t.Fatal(err)
		}
	}
	if g.MaxLag() == 0 {
		t.Fatal("round-robin writes should leave stores at different LSNs")
	}
	bg := sim.NewClock()
	for i := 0; i < 3 && g.MaxLag() > 0; i++ {
		g.GossipRound(bg)
	}
	if g.MaxLag() != 0 {
		t.Fatalf("gossip did not converge: lag %d", g.MaxLag())
	}
	// Every key readable at the head LSN from the group.
	for i := 0; i < 9; i++ {
		data, err := g.ReadPage(c, layout.PageOf(uint64(i)), 9)
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		v, _ := layout.ReadValue(data, uint64(i))
		if !bytes.HasPrefix(v, []byte("g")) {
			t.Fatalf("key %d value %q", i, v[:2])
		}
	}
}

func TestPageStoreGroupStaleReadRejected(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := testLayout(t)
	log := wal.NewLog()
	g := NewPageStoreGroup(cfg, 3, layout, log)
	c := sim.NewClock()
	rec := updateRec(0, 1, layout, "v")
	rec.LSN = log.Append(rec)
	g.WriteToOne(c, []wal.Record{rec})
	// Only one store has LSN 1; ask for LSN 99 — nobody can serve.
	if _, err := g.ReadPage(c, layout.PageOf(1), 99); err != ErrStaleReplica {
		t.Fatalf("err = %v", err)
	}
	// But LSN 1 is servable by the store that got the write.
	if _, err := g.ReadPage(c, layout.PageOf(1), 1); err != nil {
		t.Fatalf("fresh store read: %v", err)
	}
}
