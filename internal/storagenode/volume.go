package storagenode

import (
	"sort"
	"time"

	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

// Volume is an Aurora-style quorum-replicated storage volume: R replicas
// spread over AZs, a write quorum W and read quorum Rq with W + Rq > R so
// every read quorum intersects every write quorum (§2.1: 6 replicas over 3
// AZs, W=4, Rq=3 — tolerating an entire AZ plus one more node for reads).
type Volume struct {
	cfg      *sim.Config
	Replicas []*Replica
	WriteQ   int
	ReadQ    int
	meter    *sim.Meter
}

// NewAuroraVolume builds the canonical 6-replica/3-AZ volume with W=4,
// R=3. Same-AZ replicas are network-closer than cross-AZ ones.
func NewAuroraVolume(cfg *sim.Config, layout heap.Layout) *Volume {
	v := &Volume{cfg: cfg, WriteQ: 4, ReadQ: 3, meter: sim.NewMeter(cfg.NICSlots)}
	for i := 0; i < 6; i++ {
		az := i / 2
		scale := 1.0 + 0.25*float64(az)
		v.Replicas = append(v.Replicas, NewReplica(cfg, replicaName(i), az, layout, scale))
	}
	return v
}

// NewVolume builds a volume with custom replication.
func NewVolume(cfg *sim.Config, layout heap.Layout, replicas, azs, writeQ, readQ int) *Volume {
	v := &Volume{cfg: cfg, WriteQ: writeQ, ReadQ: readQ, meter: sim.NewMeter(cfg.NICSlots)}
	for i := 0; i < replicas; i++ {
		az := i % azs
		scale := 1.0 + 0.25*float64(az)
		v.Replicas = append(v.Replicas, NewReplica(cfg, replicaName(i), az, layout, scale))
	}
	return v
}

func replicaName(i int) string {
	return "sn-" + string(rune('a'+i))
}

// Alive reports the number of healthy replicas.
func (v *Volume) Alive() int {
	n := 0
	for _, r := range v.Replicas {
		if !r.Failed() {
			n++
		}
	}
	return n
}

// FailAZ crashes every replica in the given AZ.
func (v *Volume) FailAZ(az int) {
	for _, r := range v.Replicas {
		if r.AZ == az {
			r.Fail()
		}
	}
}

// WriteAvailable reports whether a write quorum is reachable.
func (v *Volume) WriteAvailable() bool { return v.Alive() >= v.WriteQ }

// ReadAvailable reports whether a read quorum is reachable.
func (v *Volume) ReadAvailable() bool { return v.Alive() >= v.ReadQ }

// AppendLog ships the encoded records to all alive replicas in parallel
// and returns when the write quorum has acknowledged: the caller's clock
// advances by the W-th fastest replica acknowledgement. Every alive
// replica ultimately receives the records (slow acks are still in flight).
// Fault injection acts per replica delivery: a dropped delivery loses that
// replica's copy, a torn one lands only a prefix there — the append still
// succeeds if W deliveries land whole, else the caller sees the fault (an
// unacknowledged commit whose records may survive on some replicas).
func (v *Volume) AppendLog(c *sim.Clock, recs []wal.Record) error {
	// Admission gate on the volume's quorum meter: shed the append under
	// overload before any per-replica delivery or charge.
	if err := v.cfg.Admit(c, "volume.append", v.meter); err != nil {
		return err
	}
	op := v.cfg.Begin(c, "volume.append")
	if !v.WriteAvailable() {
		op.End(0)
		return ErrNoQuorum
	}
	n := encodedSize(recs)
	var acks []float64
	var faultErr error
	for _, r := range v.Replicas {
		if r.Failed() {
			continue
		}
		f := v.cfg.Inject(c, "volume.ingest")
		if f.Drop {
			faultErr = f.FaultErr()
			continue
		}
		deliver := recs
		if f.Torn {
			deliver = recs[:len(recs)/2]
			faultErr = f.FaultErr()
		}
		if !r.ingest(deliver) {
			continue
		}
		if f.Duplicate {
			r.ingest(deliver)
		}
		if f.Torn {
			continue // prefix landed but this replica does not ack
		}
		acks = append(acks, r.netCost(n))
	}
	if len(acks) < v.WriteQ {
		op.End(0)
		if faultErr != nil {
			return faultErr
		}
		return ErrNoQuorum
	}
	sort.Float64s(acks)
	quorumLat := time.Duration(acks[v.WriteQ-1])
	v.meter.Charge(c, quorumLat)
	op.End(int64(n))
	return nil
}

// ReadPage reads the page at or above minLSN from the nearest replica that
// can serve it. Under normal operation Aurora reads from a single
// up-to-date replica (no read quorum on the fast path); quorum reads are
// only needed during recovery, which FindHighLSN models.
func (v *Volume) ReadPage(c *sim.Clock, id page.ID, minLSN wal.LSN) ([]byte, error) {
	// Try replicas nearest-first.
	order := make([]*Replica, 0, len(v.Replicas))
	order = append(order, v.Replicas...)
	sort.Slice(order, func(i, j int) bool { return order[i].netScale < order[j].netScale })
	var lastErr error = ErrNoQuorum
	for _, r := range order {
		data, err := r.ReadPage(c, id, minLSN)
		if err == nil {
			return data, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// FindHighLSN performs the read-quorum recovery protocol: poll a read
// quorum of replicas for their high LSNs and return the highest LSN known
// to be write-quorum durable (the maximum LSN seen, since an acked write
// reached W replicas and Rq intersects every W). The caller's clock pays
// one round trip to the Rq-th fastest replica.
func (v *Volume) FindHighLSN(c *sim.Clock) (wal.LSN, error) {
	if !v.ReadAvailable() {
		return 0, ErrNoQuorum
	}
	var acks []float64
	var high wal.LSN
	polled := 0
	for _, r := range v.Replicas {
		if r.Failed() {
			continue
		}
		acks = append(acks, r.netCost(16))
		if h := r.HighLSN(); h > high {
			high = h
		}
		polled++
	}
	sort.Float64s(acks)
	idx := v.ReadQ - 1
	if idx >= len(acks) {
		idx = len(acks) - 1
	}
	v.meter.Charge(c, time.Duration(acks[idx]))
	return high, nil
}

// Heal catches every alive replica up from the authoritative log,
// restoring quorum freshness after injected drops or torn deliveries left
// holes no peer can fill. Returns the total records shipped.
func (v *Volume) Heal(c *sim.Clock, log *wal.Log) int {
	total := 0
	for _, r := range v.Replicas {
		if r.Failed() {
			continue
		}
		total += r.CatchUpFromLog(c, log)
	}
	return total
}

// AdvanceHorizon publishes a checkpoint horizon to every alive replica:
// each one materializes its pending records at or below h and stops
// accepting re-deliveries of that prefix (see Replica.AdvanceHorizon).
// Failed replicas learn the horizon later through RepairReplica's
// checkpoint-image adoption. Returns the number of replicas advanced.
func (v *Volume) AdvanceHorizon(c *sim.Clock, h wal.LSN) int {
	n := 0
	for _, r := range v.Replicas {
		if r.Failed() {
			continue
		}
		r.AdvanceHorizon(c, h)
		n++
	}
	return n
}

// RepairReplica restores a crashed replica and catches it up from the
// nearest healthy peer, returning the number of records shipped.
func (v *Volume) RepairReplica(c *sim.Clock, i int, log *wal.Log) (int, error) {
	r := v.Replicas[i]
	r.Restart()
	for _, peer := range v.Replicas {
		if peer == r || peer.Failed() {
			continue
		}
		return r.CatchUpFrom(c, peer, log)
	}
	return 0, ErrNoQuorum
}
