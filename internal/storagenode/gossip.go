package storagenode

import (
	"sync/atomic"

	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

// PageStoreGroup is the Taurus page-store arrangement (§2.1): the writer
// sends each log batch to only ONE page store (cutting writer fan-out and
// network cost), and the stores converge via gossip anti-entropy rounds.
// Reads must find a store that is fresh enough, so bounded staleness is a
// first-class, observable property.
type PageStoreGroup struct {
	cfg    *sim.Config
	Stores []*Replica
	// authoritative log used by gossip to ship missing records (stands
	// in for the peer-to-peer record exchange).
	log  *wal.Log
	next atomic.Int64
}

// NewPageStoreGroup creates n page stores fed round-robin.
func NewPageStoreGroup(cfg *sim.Config, n int, layout heap.Layout, log *wal.Log) *PageStoreGroup {
	g := &PageStoreGroup{cfg: cfg, log: log}
	for i := 0; i < n; i++ {
		g.Stores = append(g.Stores, NewReplica(cfg, "ps-"+string(rune('a'+i)), i%3, layout, 1.0+0.1*float64(i)))
	}
	return g
}

// WriteToOne ships the records to a single page store (round-robin),
// charging only that one transfer — Taurus's "frugal" write path.
func (g *PageStoreGroup) WriteToOne(c *sim.Clock, recs []wal.Record) error {
	for tries := 0; tries < len(g.Stores); tries++ {
		s := g.Stores[int(g.next.Add(1)-1)%len(g.Stores)]
		if s.Failed() {
			continue
		}
		return s.Ingest(c, recs)
	}
	return ErrNoQuorum
}

// GossipRound runs one anti-entropy round: every store catches up from the
// freshest healthy peer, then from the authoritative log itself — injected
// drops can lose a delivery entirely, leaving holes no peer holds, and the
// log-store tier is the anti-entropy source of last resort for those.
// Returns total records shipped. Gossip runs on background clocks; pass a
// throwaway clock unless modeling its cost.
func (g *PageStoreGroup) GossipRound(c *sim.Clock) int {
	// All-pairs exchange seeded from every store: each store catches up
	// from each healthy peer, so holes propagate even when no single
	// store holds everything.
	total := 0
	for _, s := range g.Stores {
		if s.Failed() {
			continue
		}
		for _, peer := range g.Stores {
			if peer == s || peer.Failed() {
				continue
			}
			n, err := s.CatchUpFrom(c, peer, g.log)
			if err == nil {
				total += n
			}
		}
	}
	for _, s := range g.Stores {
		if s.Failed() {
			continue
		}
		total += s.CatchUpFromLog(c, g.log)
	}
	return total
}

// ReadPage serves a page at minLSN from any fresh-enough store, preferring
// the freshest (Taurus readers route by LSN freshness maps).
func (g *PageStoreGroup) ReadPage(c *sim.Clock, id page.ID, minLSN wal.LSN) ([]byte, error) {
	var best *Replica
	for _, s := range g.Stores {
		if s.Failed() || s.PrefixLSN() < minLSN {
			continue
		}
		if best == nil || s.PrefixLSN() > best.PrefixLSN() {
			best = s
		}
	}
	if best == nil {
		return nil, ErrStaleReplica
	}
	return best.ReadPage(c, id, minLSN)
}

// AdvanceHorizon publishes a checkpoint horizon to every alive page
// store (see Replica.AdvanceHorizon). Stores that are down adopt the
// horizon later through gossip's CatchUpFrom image-adoption path.
// Returns the number of stores advanced.
func (g *PageStoreGroup) AdvanceHorizon(c *sim.Clock, h wal.LSN) int {
	n := 0
	for _, s := range g.Stores {
		if s.Failed() {
			continue
		}
		s.AdvanceHorizon(c, h)
		n++
	}
	return n
}

// MaxLag reports the LSN distance between the freshest and stalest healthy
// stores — the bounded-staleness metric for experiment E3.
func (g *PageStoreGroup) MaxLag() wal.LSN {
	var lo, hi wal.LSN
	first := true
	for _, s := range g.Stores {
		if s.Failed() {
			continue
		}
		h := s.PrefixLSN()
		if first {
			lo, hi = h, h
			first = false
			continue
		}
		if h < lo {
			lo = h
		}
		if h > hi {
			hi = h
		}
	}
	return hi - lo
}
