// Package storagenode implements the disaggregated storage tier shared by
// the storage-disaggregation engines (§2): individual storage replicas that
// accept log records and materialize pages from them asynchronously
// ("log-as-the-database", Aurora), quorum-replicated volumes (6 replicas /
// 3 AZs, write quorum 4, read quorum 3), dedicated log stores (Socrates
// XLOG, Taurus log stores), and gossip-based anti-entropy between page
// stores (Taurus).
package storagenode

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

// Package errors.
var (
	ErrReplicaDown  = errors.New("storagenode: replica down")
	ErrStalePage    = errors.New("storagenode: page not yet at requested LSN")
	ErrNoQuorum     = errors.New("storagenode: quorum unavailable")
	ErrUnknownPage  = errors.New("storagenode: unknown page")
	ErrStaleReplica = errors.New("storagenode: replica behind requested LSN")
)

// Replica is one storage server: durable pages plus a buffer of received
// log records that are applied ("materialized") to pages lazily, off the
// commit path — the core Aurora storage-engine idea.
type Replica struct {
	cfg    *sim.Config
	Name   string
	AZ     int
	layout heap.Layout
	// netScale models the network distance from the writer (same-AZ
	// replicas are closer than cross-AZ ones).
	netScale float64
	nic      *sim.Meter

	mu      sync.Mutex
	pages   map[page.ID][]byte
	pending map[page.ID][]wal.Record
	highLSN wal.LSN
	// prefixLSN is the highest L such that every LSN in [1, L] has been
	// received. Single-store feeds (Taurus page stores) leave holes, so
	// freshness must be judged by the contiguous prefix, not the max.
	prefixLSN wal.LSN
	// holes holds received LSNs beyond the prefix (bounded by the number
	// of gaps, drained as the prefix advances).
	holes map[wal.LSN]struct{}
	// horizon is the recovery horizon this replica has adopted: every
	// LSN <= horizon is covered by checkpointed page state, the source
	// log below horizon+1 may be truncated, and re-deliveries at or
	// below it are dropped rather than re-materialized.
	horizon wal.LSN
	failed  bool
	// appliedRecords counts materialized records (for tests/metrics).
	appliedRecords int64
}

// NewReplica creates an empty replica. The layout is used to format pages
// on demand when the first log record for a page arrives.
func NewReplica(cfg *sim.Config, name string, az int, layout heap.Layout, netScale float64) *Replica {
	if netScale <= 0 {
		netScale = 1
	}
	return &Replica{
		cfg:      cfg,
		Name:     name,
		AZ:       az,
		layout:   layout,
		netScale: netScale,
		nic:      sim.NewMeter(cfg.NICSlots),
		pages:    make(map[page.ID][]byte),
		pending:  make(map[page.ID][]wal.Record),
		holes:    make(map[wal.LSN]struct{}),
	}
}

// netCost models one message of n bytes from the writer to this replica,
// before queueing.
func (r *Replica) netCost(n int) float64 {
	return float64(r.cfg.TCP.Cost(n)) * r.netScale
}

// Fail crashes the replica. Pages and buffered log records are durable
// (they were acknowledged only after reaching persistent media).
func (r *Replica) Fail() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failed = true
}

// Restart brings the replica back.
func (r *Replica) Restart() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failed = false
}

// Failed reports crash state.
func (r *Replica) Failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// HighLSN reports the highest LSN this replica has received.
func (r *Replica) HighLSN() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.highLSN
}

// AppliedRecords reports how many records have been materialized.
func (r *Replica) AppliedRecords() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedRecords
}

// ingest buffers records without charging network cost (the volume layer
// accounts transfer once per quorum write). Crashed replicas miss the
// records — they must catch up via CatchUpFrom.
func (r *Replica) ingest(recs []wal.Record) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed {
		return false
	}
	for _, rec := range recs {
		if rec.LSN <= r.prefixLSN {
			continue // duplicate delivery
		}
		if rec.LSN <= r.horizon {
			// At or below the adopted recovery horizon: the checkpointed
			// page images already cover this record. Re-materializing it
			// (e.g. a gossip round re-delivering pre-checkpoint records)
			// would stamp a freshly formatted page with a below-horizon
			// LSN and serve it as if complete.
			continue
		}
		if _, dup := r.holes[rec.LSN]; dup {
			continue
		}
		switch rec.Type {
		case wal.TypeUpdate, wal.TypeInsert, wal.TypeDelete:
			r.pending[page.ID(rec.PageID)] = append(r.pending[page.ID(rec.PageID)], rec)
		}
		if rec.LSN > r.highLSN {
			r.highLSN = rec.LSN
		}
		r.holes[rec.LSN] = struct{}{}
	}
	// Advance the contiguous prefix through any filled holes.
	for {
		if _, ok := r.holes[r.prefixLSN+1]; !ok {
			break
		}
		delete(r.holes, r.prefixLSN+1)
		r.prefixLSN++
	}
	return true
}

// hasLSN reports whether the replica has received the record at lsn.
func (r *Replica) hasLSN(lsn wal.LSN) bool {
	if lsn <= r.prefixLSN {
		return true
	}
	_, ok := r.holes[lsn]
	return ok
}

// PrefixLSN reports the highest LSN up to which the replica has a complete,
// gap-free log.
func (r *Replica) PrefixLSN() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prefixLSN
}

// Ingest delivers records directly to this replica, charging its network
// link (single-replica tiers: Socrates page servers, Taurus page stores).
// Fault injection can drop the delivery (transient error: no record lands),
// tear it (a prefix lands, the rest is lost, caller sees an error), or
// duplicate it (absorbed — ingest dedups by LSN).
func (r *Replica) Ingest(c *sim.Clock, recs []wal.Record) error {
	op := r.cfg.Begin(c, "replica.ingest")
	f := r.cfg.Inject(c, "replica.ingest")
	if f.Drop {
		op.End(0)
		return f.FaultErr()
	}
	deliver := recs
	if f.Torn {
		deliver = recs[:len(recs)/2]
	}
	n := encodedSize(deliver)
	r.nic.Charge(c, sim.LatencyModel{Base: r.cfg.TCP.Base, BytesPerSec: r.cfg.TCP.BytesPerSec}.Cost(n))
	if !r.ingest(deliver) {
		op.End(0)
		return ErrReplicaDown
	}
	if f.Duplicate {
		r.ingest(deliver) // repeat delivery; LSN dedup absorbs it
	}
	op.End(int64(n))
	if f.Torn {
		return f.FaultErr()
	}
	return nil
}

func encodedSize(recs []wal.Record) int {
	n := 0
	for i := range recs {
		n += recs[i].EncodedSize()
	}
	return n
}

// materializeLocked applies pending records to the page, formatting it
// first if needed. CPU cost is charged to the caller performing the read
// (Aurora charges this to background appliers; charging the reader is the
// conservative choice and only matters when reads outpace materialization).
func (r *Replica) materializeLocked(c *sim.Clock, id page.ID) []byte {
	data, ok := r.pages[id]
	if !ok {
		data = r.layout.FormatPage(id).Bytes()
		r.pages[id] = data
	}
	pend := r.pending[id]
	if len(pend) == 0 {
		return data
	}
	// Gossip and repair can deliver records out of order; redo must be
	// applied in LSN order for the page-LSN idempotence check to hold.
	sort.Slice(pend, func(i, j int) bool { return pend[i].LSN < pend[j].LSN })
	p := page.Wrap(data)
	var keep []wal.Record
	for _, rec := range pend {
		if rec.LSN <= r.horizon {
			// Covered by the adopted checkpoint: the page image (local or
			// adopted from a checkpointed peer) already reflects it. Drop
			// rather than re-apply onto a possibly fresher image.
			continue
		}
		if rec.LSN > r.prefixLSN {
			// Past a log hole: applying this record would stamp the page
			// with an LSN that overstates completeness (ReadPage would
			// then serve the page as fresh while a dropped record for
			// another key on it is still missing). Hold it until the
			// prefix catches up.
			keep = append(keep, rec)
			continue
		}
		if rec.LSN <= wal.LSN(p.LSN()) {
			continue
		}
		// Redo: install the after-image.
		if err := r.layout.WriteValue(data, rec.Key, rec.After, uint64(rec.LSN)); err == nil {
			r.appliedRecords++
		}
		if c != nil {
			c.Advance(r.cfg.CPU.Cost(len(rec.After) + 16))
		}
	}
	if len(keep) > 0 {
		r.pending[id] = keep
	} else {
		delete(r.pending, id)
	}
	return data
}

// ReadPage returns the page materialized to at least minLSN, charging the
// network round trip and materialization. It fails on crashed replicas and
// on replicas that have not received log up to minLSN (stale gossip copy).
func (r *Replica) ReadPage(c *sim.Clock, id page.ID, minLSN wal.LSN) ([]byte, error) {
	op := r.cfg.Begin(c, "replica.read")
	if f := r.cfg.Inject(c, "replica.read"); f.Drop || f.Torn {
		op.End(0)
		return nil, f.FaultErr()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed {
		op.End(0)
		return nil, ErrReplicaDown
	}
	data := r.materializeLocked(c, id)
	// Fresh enough if the log prefix covers minLSN, or the materialized
	// page itself is already at minLSN (e.g. installed via WritePage).
	if r.prefixLSN < minLSN && wal.LSN(page.Wrap(data).LSN()) < minLSN {
		op.End(0)
		return nil, ErrStaleReplica
	}
	r.nic.Charge(c, sim.LatencyModel{Base: r.cfg.TCP.Base, BytesPerSec: r.cfg.TCP.BytesPerSec}.Cost(len(data)))
	op.End(int64(len(data)))
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WritePage installs a full page image (page-shipping path used by PolarDB
// alongside log shipping, and by checkpointers).
func (r *Replica) WritePage(c *sim.Clock, id page.ID, data []byte) error {
	op := r.cfg.Begin(c, "replica.write")
	if f := r.cfg.Inject(c, "replica.write"); f.Drop || f.Torn {
		op.End(0)
		return f.FaultErr()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed {
		op.End(0)
		return ErrReplicaDown
	}
	r.nic.Charge(c, sim.LatencyModel{Base: r.cfg.TCP.Base, BytesPerSec: r.cfg.TCP.BytesPerSec}.Cost(len(data)))
	op.End(int64(len(data)))
	cp := make([]byte, len(data))
	copy(cp, data)
	r.pages[id] = cp
	if lsn := wal.LSN(page.Wrap(cp).LSN()); lsn > r.highLSN {
		r.highLSN = lsn
	}
	// Page image supersedes pending records at or below its LSN.
	pl := page.Wrap(cp).LSN()
	var keep []wal.Record
	for _, rec := range r.pending[id] {
		if rec.LSN > wal.LSN(pl) {
			keep = append(keep, rec)
		}
	}
	if len(keep) > 0 {
		r.pending[id] = keep
	} else {
		delete(r.pending, id)
	}
	return nil
}

// MaterializeAll applies every pending record (background work; charged to
// the given clock, which tests usually make a throwaway).
func (r *Replica) MaterializeAll(c *sim.Clock) {
	r.mu.Lock()
	ids := make([]page.ID, 0, len(r.pending))
	for id := range r.pending {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	for _, id := range ids {
		r.mu.Lock()
		r.materializeLocked(c, id)
		r.mu.Unlock()
	}
}

// PendingRecords reports buffered, unmaterialized records.
func (r *Replica) PendingRecords() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, p := range r.pending {
		n += len(p)
	}
	return n
}

// Horizon reports the recovery horizon this replica has adopted.
func (r *Replica) Horizon() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.horizon
}

// AdvanceHorizon adopts a new recovery horizon: the caller (a checkpoint
// coordinator) asserts this replica's state covers every LSN <= h —
// either the records have all been delivered (converged via catch-up) or
// checkpointed page images were installed via WritePage. The replica
// materializes what the horizon completes, advances its contiguous
// prefix to h, and drops bookkeeping at or below it; subsequent
// re-deliveries at or below h are absorbed rather than re-materialized.
func (r *Replica) AdvanceHorizon(c *sim.Clock, h wal.LSN) {
	op := r.cfg.Begin(c, "replica.horizon")
	r.mu.Lock()
	if h <= r.horizon {
		r.mu.Unlock()
		op.End(0)
		return
	}
	for lsn := range r.holes {
		if lsn <= h {
			delete(r.holes, lsn)
		}
	}
	if h > r.prefixLSN {
		r.prefixLSN = h
	}
	for {
		if _, ok := r.holes[r.prefixLSN+1]; !ok {
			break
		}
		delete(r.holes, r.prefixLSN+1)
		r.prefixLSN++
	}
	// Materialize everything the new prefix completes BEFORE adopting the
	// horizon: pending records at or below h must reach their pages now —
	// after adoption they would be treated as covered and dropped.
	ids := make([]page.ID, 0, len(r.pending))
	for id := range r.pending {
		ids = append(ids, id)
	}
	for _, id := range ids {
		r.materializeLocked(c, id)
	}
	r.horizon = h
	if h > r.highLSN {
		r.highLSN = h
	}
	r.mu.Unlock()
	op.End(int64(h))
}

// adoptCheckpoint copies the peer's checkpointed page images needed to
// cover horizon h onto this replica (the truncated range below h cannot
// be replayed from any log). The peer must itself cover h. Returns pages
// copied.
func (r *Replica) adoptCheckpoint(c *sim.Clock, peer *Replica, h wal.LSN) (int, error) {
	peer.mu.Lock()
	if peer.failed {
		peer.mu.Unlock()
		return 0, ErrReplicaDown
	}
	if peer.prefixLSN < h && peer.horizon < h {
		peer.mu.Unlock()
		return 0, ErrStaleReplica
	}
	images := make(map[page.ID][]byte)
	ids := make([]page.ID, 0, len(peer.pages)+len(peer.pending))
	for id := range peer.pages {
		ids = append(ids, id)
	}
	for id := range peer.pending {
		if _, ok := peer.pages[id]; !ok {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		data := peer.materializeLocked(nil, id)
		cp := make([]byte, len(data))
		copy(cp, data)
		images[id] = cp
	}
	peer.mu.Unlock()

	r.mu.Lock()
	bytes, copied := 0, 0
	for id, img := range images {
		lsn := wal.LSN(page.Wrap(img).LSN())
		if cur, ok := r.pages[id]; ok && wal.LSN(page.Wrap(cur).LSN()) >= lsn {
			continue
		}
		r.pages[id] = img
		if lsn > r.highLSN {
			r.highLSN = lsn
		}
		// The image supersedes pending records at or below its LSN.
		var keep []wal.Record
		for _, rec := range r.pending[id] {
			if rec.LSN > lsn {
				keep = append(keep, rec)
			}
		}
		if len(keep) > 0 {
			r.pending[id] = keep
		} else {
			delete(r.pending, id)
		}
		bytes += len(img)
		copied++
	}
	r.mu.Unlock()
	c.Advance(sim.LatencyModel{Base: r.cfg.TCP.Base, BytesPerSec: r.cfg.TCP.BytesPerSec}.Cost(bytes))
	r.AdvanceHorizon(c, h)
	return copied, nil
}

// CatchUpFrom copies missing state from a healthy peer (recovery after a
// crash or a gossip round). It transfers only records the peer has beyond
// this replica's highLSN, charging network transfer for the delta, and
// returns the number of records transferred. When the source log has
// been truncated past this replica's prefix, the gap cannot be replayed:
// the replica first adopts the peer's checkpointed page images covering
// the recovery horizon, then tail-replays above it — without this, a
// post-truncation catch-up would silently skip the gap and re-materialize
// below-horizon records onto pages whose checkpointed images live
// elsewhere.
func (r *Replica) CatchUpFrom(c *sim.Clock, peer *Replica, log *wal.Log) (int, error) {
	r.mu.Lock()
	if r.failed {
		r.mu.Unlock()
		return 0, ErrReplicaDown
	}
	from := r.prefixLSN
	r.mu.Unlock()
	adopted := 0
	if floor := log.Floor(); from+1 < floor {
		n, err := r.adoptCheckpoint(c, peer, floor-1)
		if err != nil {
			return 0, err
		}
		adopted = n
		from = floor - 1
	}

	peer.mu.Lock()
	peerFailed := peer.failed
	peer.mu.Unlock()
	if peerFailed {
		return adopted, ErrReplicaDown
	}
	// Ship exactly the records the peer holds and the receiver lacks
	// (the receiver may have holes above its prefix).
	recs := log.Since(from)
	var ship []wal.Record
	for _, rec := range recs {
		peer.mu.Lock()
		has := peer.hasLSN(rec.LSN)
		peer.mu.Unlock()
		if !has {
			continue
		}
		r.mu.Lock()
		lacks := !r.hasLSN(rec.LSN)
		r.mu.Unlock()
		if lacks {
			ship = append(ship, rec)
		}
	}
	if len(ship) == 0 {
		return adopted, nil
	}
	n := encodedSize(ship)
	c.Advance(sim.LatencyModel{Base: r.cfg.TCP.Base, BytesPerSec: r.cfg.TCP.BytesPerSec}.Cost(n))
	r.ingest(ship)
	return adopted + len(ship), nil
}

// CatchUpFromLog ships every record the replica lacks straight from the
// authoritative log (heal path: injected drops and torn deliveries can
// leave LSN holes no peer holds either, which would stall the prefix
// forever). Returns the number of records shipped. When the log has been
// truncated past this replica's prefix the gap is unrecoverable from the
// log: the replica ships nothing (rather than silently skipping the gap
// and later serving partially materialized pages) and must instead adopt
// checkpointed page images via CatchUpFrom/WritePage.
func (r *Replica) CatchUpFromLog(c *sim.Clock, log *wal.Log) int {
	r.mu.Lock()
	if r.failed {
		r.mu.Unlock()
		return 0
	}
	from := r.prefixLSN
	r.mu.Unlock()
	if floor := log.Floor(); from+1 < floor {
		return 0
	}

	var ship []wal.Record
	for _, rec := range log.Since(from) {
		r.mu.Lock()
		lacks := !r.hasLSN(rec.LSN)
		r.mu.Unlock()
		if lacks {
			ship = append(ship, rec)
		}
	}
	if len(ship) == 0 {
		return 0
	}
	if c != nil {
		c.Advance(sim.LatencyModel{Base: r.cfg.TCP.Base, BytesPerSec: r.cfg.TCP.BytesPerSec}.Cost(encodedSize(ship)))
	}
	r.ingest(ship)
	return len(ship)
}

// String implements fmt.Stringer.
func (r *Replica) String() string {
	return fmt.Sprintf("replica(%s az=%d lsn=%d)", r.Name, r.AZ, r.HighLSN())
}
