package storagenode

import (
	"testing"
	"testing/quick"

	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

// TestQuorumIntersectionProperty: for any pattern of replica failures,
// whenever the volume reports WriteAvailable and an append is acked, a
// subsequent FindHighLSN over a read quorum must see that LSN — the W+R>N
// intersection argument Aurora's recovery rests on.
func TestQuorumIntersectionProperty(t *testing.T) {
	layout := testLayout(t)
	cfg := sim.DefaultConfig()
	f := func(failMask uint8, moreFail uint8) bool {
		v := NewAuroraVolume(cfg, layout)
		c := sim.NewClock()
		lsn := wal.LSN(0)
		appendOne := func() bool {
			lsn++
			rec := updateRec(lsn, uint64(lsn), layout, "q")
			return v.AppendLog(c, []wal.Record{rec}) == nil
		}
		// Baseline write with everything healthy.
		if !appendOne() {
			return false
		}
		// Apply the first failure pattern.
		for i := 0; i < 6; i++ {
			if failMask&(1<<i) != 0 {
				v.Replicas[i].Fail()
			}
		}
		wrote := false
		if v.WriteAvailable() {
			if !appendOne() {
				return false
			}
			wrote = true
		}
		// A second, independent failure wave (replicas may recover too).
		for i := 0; i < 6; i++ {
			if moreFail&(1<<i) != 0 {
				v.Replicas[i].Fail()
			} else if failMask&(1<<i) != 0 && moreFail&(1<<(i%3)) == 0 {
				v.Replicas[i].Restart()
			}
		}
		if !v.ReadAvailable() {
			return true // nothing to check: reads legitimately unavailable
		}
		high, err := v.FindHighLSN(c)
		if err != nil {
			return false
		}
		want := wal.LSN(1)
		if wrote {
			want = 2
		}
		// The read quorum must reach at least the last acked write.
		return high >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestVolumeQuorumMath checks the availability thresholds exhaustively for
// the 6/4/3 configuration.
func TestVolumeQuorumMath(t *testing.T) {
	layout := testLayout(t)
	cfg := sim.DefaultConfig()
	for failures := 0; failures <= 6; failures++ {
		v := NewAuroraVolume(cfg, layout)
		for i := 0; i < failures; i++ {
			v.Replicas[i].Fail()
		}
		alive := 6 - failures
		if got := v.WriteAvailable(); got != (alive >= 4) {
			t.Errorf("failures=%d: WriteAvailable=%v", failures, got)
		}
		if got := v.ReadAvailable(); got != (alive >= 3) {
			t.Errorf("failures=%d: ReadAvailable=%v", failures, got)
		}
	}
}

// TestGossipEventuallyConsistentProperty: for random write distributions
// across page stores, enough gossip rounds always converge the group.
func TestGossipEventuallyConsistentProperty(t *testing.T) {
	layout := testLayout(t)
	cfg := sim.DefaultConfig()
	f := func(nWrites uint8, seed int64) bool {
		log := wal.NewLog()
		g := NewPageStoreGroup(cfg, 3, layout, log)
		c := sim.NewClock()
		r := sim.NewRand(seed, 0)
		n := int(nWrites%50) + 1
		for i := 0; i < n; i++ {
			rec := updateRec(0, uint64(r.Int63n(100)), layout, "g")
			rec.LSN = log.Append(rec)
			if g.WriteToOne(c, []wal.Record{rec}) != nil {
				return false
			}
		}
		bg := sim.NewClock()
		for round := 0; round < 4 && g.MaxLag() > 0; round++ {
			g.GossipRound(bg)
		}
		return g.MaxLag() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
