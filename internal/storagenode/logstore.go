package storagenode

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

// Medium selects the durable medium backing a log store.
type Medium int

// Log store media.
const (
	MediumSSD Medium = iota
	MediumPM
)

// LogStore is a dedicated durability tier for log records: the Socrates
// XLOG service, Taurus log stores, and the PilotDB PM log layer all
// instantiate it with different media. Appends are synchronous and
// durable; the store retains records for replay.
type LogStore struct {
	cfg    *sim.Config
	medium Medium
	meter  *sim.Meter

	mu      sync.Mutex
	records []wal.Record
	seen    map[wal.LSN]struct{}
	highLSN wal.LSN
	// floor is the lowest LSN guaranteed retained (1 until the first
	// truncation). Reads reaching below it fail with wal.ErrTruncated
	// instead of silently yielding a partial prefix.
	floor  wal.LSN
	failed bool
}

// hasLSNLocked reports whether the record at lsn is already durable here.
func (ls *LogStore) hasLSNLocked(lsn wal.LSN) bool {
	_, ok := ls.seen[lsn]
	return ok
}

// NewLogStore creates a log store on the given medium.
func NewLogStore(cfg *sim.Config, medium Medium) *LogStore {
	return &LogStore{cfg: cfg, medium: medium, meter: sim.NewMeter(cfg.NICSlots), seen: make(map[wal.LSN]struct{}), floor: 1}
}

// Fail crashes the store (records are durable across Restart).
func (ls *LogStore) Fail() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.failed = true
}

// Restart brings the store back with its durable contents.
func (ls *LogStore) Restart() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.failed = false
}

// Append durably stores the records: one network round trip plus the
// medium's persist cost for the payload. Appends are idempotent per LSN
// (duplicate deliveries of already-durable records are absorbed), and
// fault injection can tear an append mid-batch: a prefix of the records
// is durable, the rest is lost, and the caller sees an error — the
// crash-point-mid-WAL-append case engines must treat as an unacknowledged
// commit.
func (ls *LogStore) Append(c *sim.Clock, recs []wal.Record) error {
	// Admission gate on the store's service meter: under overload the
	// append is shed before the fault decision and any charge. (Quorum
	// probes arrive on fresh clocks and pass inside the gate's warmup;
	// the group-level gate below covers that path.)
	if err := ls.cfg.Admit(c, "logstore.append", ls.meter); err != nil {
		return err
	}
	op := ls.cfg.Begin(c, "logstore.append")
	f := ls.cfg.Inject(c, "logstore.append")
	if f.Drop {
		op.End(0)
		return f.FaultErr()
	}
	persistRecs := recs
	if f.Torn {
		persistRecs = recs[:len(recs)/2]
	}
	ls.mu.Lock()
	if ls.failed {
		ls.mu.Unlock()
		return ErrReplicaDown
	}
	for _, r := range persistRecs {
		if ls.hasLSNLocked(r.LSN) {
			continue // duplicate delivery of a durable record
		}
		ls.seen[r.LSN] = struct{}{}
		ls.records = append(ls.records, r)
		if r.LSN > ls.highLSN {
			ls.highLSN = r.LSN
		}
	}
	ls.mu.Unlock()
	if f.Torn {
		op.End(int64(encodedSize(persistRecs)))
		return f.FaultErr()
	}

	n := encodedSize(recs)
	var persist time.Duration
	switch ls.medium {
	case MediumPM:
		// Compute-node-driven one-sided RDMA append + PM drain
		// (PilotDB, §2.3).
		persist = ls.cfg.RDMA.Cost(n) + sim.LatencyModel{BytesPerSec: ls.cfg.PMWrite.BytesPerSec}.Cost(n)
	default:
		persist = ls.cfg.TCP.Cost(n) + ls.cfg.SSDWrite.Cost(n)
	}
	ls.meter.Charge(c, persist)
	op.End(int64(n))
	return nil
}

// TruncateBefore durably discards records with LSN < upTo and raises the
// retention floor — the checkpoint coordinator's truncation RPC: one
// control round trip plus a metadata persist on the store's medium.
// Truncation is idempotent and monotonic (a stale horizon is a no-op).
// Fault injection can drop the RPC (nothing truncated) or tear it (the
// floor advances only half way; the caller retries on the next round).
func (ls *LogStore) TruncateBefore(c *sim.Clock, upTo wal.LSN) error {
	op := ls.cfg.Begin(c, "logstore.truncate")
	f := ls.cfg.Inject(c, "logstore.truncate")
	if f.Drop {
		op.End(0)
		return f.FaultErr()
	}
	target := upTo
	ls.mu.Lock()
	if ls.failed {
		ls.mu.Unlock()
		op.End(0)
		return ErrReplicaDown
	}
	if f.Torn && target > ls.floor {
		// Crash-point mid-truncation: only part of the range is reclaimed.
		target = ls.floor + (target-ls.floor)/2
	}
	dropped := 0
	if target > ls.floor {
		ls.floor = target
		keep := ls.records[:0]
		for _, r := range ls.records {
			if r.LSN >= target {
				keep = append(keep, r)
			} else {
				delete(ls.seen, r.LSN)
				dropped++
			}
		}
		ls.records = keep
	}
	ls.mu.Unlock()
	var persist time.Duration
	switch ls.medium {
	case MediumPM:
		persist = ls.cfg.RDMA.Cost(24) + sim.LatencyModel{BytesPerSec: ls.cfg.PMWrite.BytesPerSec}.Cost(24)
	default:
		persist = ls.cfg.TCP.Cost(24) + ls.cfg.SSDWrite.Cost(24)
	}
	ls.meter.Charge(c, persist)
	op.End(int64(dropped))
	if f.Torn {
		return f.FaultErr()
	}
	return nil
}

// Floor reports the lowest LSN guaranteed retained.
func (ls *LogStore) Floor() wal.LSN {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.floor
}

// SincePage returns records for one page with LSN > after. The store
// maintains per-page log chains (as PilotDB's PM layer does), so only the
// relevant records cross the network. Requests reaching below the
// truncation floor fail with wal.ErrTruncated: the gap may have held
// records for this page, so the chain would be silently incomplete.
func (ls *LogStore) SincePage(c *sim.Clock, pageID uint64, after wal.LSN) ([]wal.Record, error) {
	op := ls.cfg.Begin(c, "logstore.read")
	if f := ls.cfg.Inject(c, "logstore.read"); f.Drop || f.Torn {
		op.End(0)
		return nil, f.FaultErr()
	}
	ls.mu.Lock()
	if ls.failed {
		ls.mu.Unlock()
		op.End(0)
		return nil, ErrReplicaDown
	}
	if after+1 < ls.floor {
		floor := ls.floor
		ls.mu.Unlock()
		op.End(0)
		return nil, fmt.Errorf("%w: page %d since %d, floor %d", wal.ErrTruncated, pageID, after, floor)
	}
	var out []wal.Record
	for _, r := range ls.records {
		if r.LSN > after && r.PageID == pageID && r.Type != wal.TypeCommit && r.Type != wal.TypeAbort {
			out = append(out, r)
		}
	}
	ls.mu.Unlock()
	n := encodedSize(out)
	var read time.Duration
	switch ls.medium {
	case MediumPM:
		read = ls.cfg.RDMA.Cost(n)
	default:
		read = ls.cfg.TCP.Cost(n) + ls.cfg.SSDRead.Cost(n)
	}
	ls.meter.Charge(c, read)
	op.End(int64(n))
	return out, nil
}

// HighLSN reports the highest durable LSN.
func (ls *LogStore) HighLSN() wal.LSN {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.highLSN
}

// Len reports stored record count.
func (ls *LogStore) Len() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.records)
}

// Since returns records with LSN > after (replay on recovery), charging
// network transfer for the shipped bytes. Requests reaching below the
// truncation floor fail with wal.ErrTruncated rather than yielding a
// silent partial prefix — recovery must start from checkpointed state at
// or above the floor.
func (ls *LogStore) Since(c *sim.Clock, after wal.LSN) ([]wal.Record, error) {
	op := ls.cfg.Begin(c, "logstore.read")
	if f := ls.cfg.Inject(c, "logstore.read"); f.Drop || f.Torn {
		op.End(0)
		return nil, f.FaultErr()
	}
	ls.mu.Lock()
	if ls.failed {
		ls.mu.Unlock()
		op.End(0)
		return nil, ErrReplicaDown
	}
	if after+1 < ls.floor {
		floor := ls.floor
		ls.mu.Unlock()
		op.End(0)
		return nil, fmt.Errorf("%w: since %d, floor %d", wal.ErrTruncated, after, floor)
	}
	var out []wal.Record
	for _, r := range ls.records {
		if r.LSN > after {
			out = append(out, r)
		}
	}
	ls.mu.Unlock()
	var read time.Duration
	n := encodedSize(out)
	switch ls.medium {
	case MediumPM:
		read = ls.cfg.RDMA.Cost(n)
	default:
		read = ls.cfg.TCP.Cost(n) + ls.cfg.SSDRead.Cost(n)
	}
	ls.meter.Charge(c, read)
	op.End(int64(n))
	return out, nil
}

// LogStoreGroup replicates a log store N ways with a write quorum — the
// Taurus log-store arrangement (synchronously replicated logs; frugal
// asynchronous pages).
type LogStoreGroup struct {
	Stores []*LogStore
	Quorum int
	cfg    *sim.Config
	meter  *sim.Meter
}

// NewLogStoreGroup builds n stores with the given quorum on the medium.
func NewLogStoreGroup(cfg *sim.Config, n, quorum int, medium Medium) *LogStoreGroup {
	g := &LogStoreGroup{Quorum: quorum, cfg: cfg, meter: sim.NewMeter(cfg.NICSlots)}
	for i := 0; i < n; i++ {
		g.Stores = append(g.Stores, NewLogStore(cfg, medium))
	}
	return g
}

// Append replicates the records, returning at quorum: the clock advances
// by the quorum-th fastest store's persist latency (appends fan out in
// parallel).
func (g *LogStoreGroup) Append(c *sim.Clock, recs []wal.Record) error {
	if err := g.cfg.Admit(c, "logstore.quorum", g.meter); err != nil {
		return err
	}
	op := g.cfg.Begin(c, "logstore.quorum")
	var lats []time.Duration
	for _, ls := range g.Stores {
		probe := sim.NewClock()
		if err := ls.Append(probe, recs); err != nil {
			continue
		}
		lats = append(lats, probe.Now())
	}
	if len(lats) < g.Quorum {
		op.End(0)
		return ErrNoQuorum
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	g.meter.Charge(c, lats[g.Quorum-1])
	op.End(int64(encodedSize(recs)))
	return nil
}

// TruncateBefore fans the truncation horizon out to every store in
// parallel (probe clocks; the caller pays the slowest store's RPC, it is
// background work either way). Truncation needs no quorum — a store that
// misses the horizon retains extra records and retries next round — but
// total failure is surfaced so coordinators can count it.
func (g *LogStoreGroup) TruncateBefore(c *sim.Clock, upTo wal.LSN) error {
	op := g.cfg.Begin(c, "logstore.truncate.fanout")
	var slowest time.Duration
	okCount := 0
	var lastErr error
	for _, ls := range g.Stores {
		probe := sim.NewClock()
		if err := ls.TruncateBefore(probe, upTo); err != nil {
			lastErr = err
			continue
		}
		if probe.Now() > slowest {
			slowest = probe.Now()
		}
		okCount++
	}
	g.meter.Charge(c, slowest)
	op.End(int64(okCount))
	if okCount == 0 && lastErr != nil {
		return lastErr
	}
	return nil
}

// Floor reports the highest retention floor across the stores: below it
// no single store is guaranteed to retain records (individual stores may
// lag the horizon when a truncation RPC was dropped).
func (g *LogStoreGroup) Floor() wal.LSN {
	var floor wal.LSN = 1
	for _, ls := range g.Stores {
		if f := ls.Floor(); f > floor {
			floor = f
		}
	}
	return floor
}

// HighLSN reports the highest LSN durable at a quorum of stores.
func (g *LogStoreGroup) HighLSN() wal.LSN {
	var lsns []wal.LSN
	for _, ls := range g.Stores {
		lsns = append(lsns, ls.HighLSN())
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	if len(lsns) < g.Quorum {
		return 0
	}
	return lsns[g.Quorum-1]
}
