// Package wal implements the write-ahead log shared by every OLTP engine:
// typed log records with a binary codec, a sequential in-memory log with
// group commit, and ARIES-style redo helpers ("the log is the database" —
// Aurora, §2.1).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// LSN is a log sequence number. LSN 0 is "nil" (no record).
type LSN uint64

// Type enumerates log record kinds.
type Type uint8

// Log record kinds.
const (
	TypeUpdate Type = iota + 1
	TypeCommit
	TypeAbort
	TypeCheckpoint
	TypeInsert
	TypeDelete
)

func (t Type) String() string {
	switch t {
	case TypeUpdate:
		return "update"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeInsert:
		return "insert"
	case TypeDelete:
		return "delete"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is one log record. Update/Insert/Delete records carry the page,
// key and images; Commit/Abort/Checkpoint carry only transaction metadata.
type Record struct {
	LSN    LSN
	Type   Type
	TxID   uint64
	PageID uint64
	Key    uint64
	Before []byte // undo image (nil for inserts)
	After  []byte // redo image (nil for deletes)
}

const recordHeader = 8 + 1 + 8 + 8 + 8 + 4 + 4 // lsn type tx page key blen alen

// EncodedSize reports the record's wire size.
func (r *Record) EncodedSize() int { return recordHeader + len(r.Before) + len(r.After) }

// Encode appends the record's wire form to dst and returns the result.
func (r *Record) Encode(dst []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(r.LSN))
	hdr[8] = byte(r.Type)
	binary.LittleEndian.PutUint64(hdr[9:], r.TxID)
	binary.LittleEndian.PutUint64(hdr[17:], r.PageID)
	binary.LittleEndian.PutUint64(hdr[25:], r.Key)
	binary.LittleEndian.PutUint32(hdr[33:], uint32(len(r.Before)))
	binary.LittleEndian.PutUint32(hdr[37:], uint32(len(r.After)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Before...)
	dst = append(dst, r.After...)
	return dst
}

// Common codec errors.
var (
	ErrShortRecord = errors.New("wal: short record")
	ErrBadRecord   = errors.New("wal: bad record")
)

// Decode parses one record from p, returning the record and the number of
// bytes consumed.
func Decode(p []byte) (Record, int, error) {
	if len(p) < recordHeader {
		return Record{}, 0, ErrShortRecord
	}
	var r Record
	r.LSN = LSN(binary.LittleEndian.Uint64(p[0:]))
	r.Type = Type(p[8])
	if r.Type < TypeUpdate || r.Type > TypeDelete {
		return Record{}, 0, fmt.Errorf("%w: type %d", ErrBadRecord, p[8])
	}
	r.TxID = binary.LittleEndian.Uint64(p[9:])
	r.PageID = binary.LittleEndian.Uint64(p[17:])
	r.Key = binary.LittleEndian.Uint64(p[25:])
	blen := int(binary.LittleEndian.Uint32(p[33:]))
	alen := int(binary.LittleEndian.Uint32(p[37:]))
	total := recordHeader + blen + alen
	if blen < 0 || alen < 0 || len(p) < total {
		return Record{}, 0, ErrShortRecord
	}
	if blen > 0 {
		r.Before = append([]byte(nil), p[recordHeader:recordHeader+blen]...)
	}
	if alen > 0 {
		r.After = append([]byte(nil), p[recordHeader+blen:total]...)
	}
	return r, total, nil
}

// DecodePrefix parses the longest clean prefix of a record stream,
// tolerating a torn tail: a trailing partial record (short header or
// truncated payload — what a crash mid-append leaves behind) is discarded
// rather than reported as an error. A structurally bad record (invalid
// type byte) still fails: that is corruption, not a crash artifact.
// Returns the records and the number of bytes consumed.
func DecodePrefix(p []byte) ([]Record, int, error) {
	var out []Record
	used := 0
	for len(p) > 0 {
		r, n, err := Decode(p)
		if errors.Is(err, ErrShortRecord) {
			return out, used, nil
		}
		if err != nil {
			return out, used, err
		}
		out = append(out, r)
		p = p[n:]
		used += n
	}
	return out, used, nil
}

// DecodeAll parses a concatenation of records.
func DecodeAll(p []byte) ([]Record, error) {
	var out []Record
	for len(p) > 0 {
		r, n, err := Decode(p)
		if err != nil {
			return out, err
		}
		out = append(out, r)
		p = p[n:]
	}
	return out, nil
}

// ErrTruncated is returned by Replay when the requested range reaches
// below the truncation floor: records there were discarded by a
// checkpoint, so a replay from that point would silently miss updates.
// Callers must restart from a checkpointed page image at or above the
// floor instead.
var ErrTruncated = errors.New("wal: requested range below truncation floor")

// Log is a thread-safe, append-only in-memory log. Durability of appended
// records is the engine's concern (engines ship encoded records to log
// tiers / storage nodes and only then acknowledge commits).
type Log struct {
	mu      sync.Mutex
	records []Record
	next    LSN
	// floor is the lowest LSN guaranteed retained: TruncateBefore(upTo)
	// raises it to upTo. Records below the floor are gone for good.
	floor LSN
}

// NewLog returns an empty log whose first LSN is 1.
func NewLog() *Log { return &Log{next: 1, floor: 1} }

// Append assigns the next LSN to r and stores it, returning the LSN.
func (l *Log) Append(r Record) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.next
	l.next++
	l.records = append(l.records, r)
	return r.LSN
}

// Head returns the next LSN to be assigned.
func (l *Log) Head() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Len reports the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Since returns a copy of all records with LSN > after, in LSN order.
// Since does not check the truncation floor; recovery paths must use
// Replay, which fails loudly instead of yielding a silent partial prefix.
func (l *Log) Since(after LSN) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if r.LSN > after {
			out = append(out, r)
		}
	}
	return out
}

// Replay returns all records with LSN > after, failing with ErrTruncated
// when any LSN in (after, floor) has been discarded by a checkpoint — a
// replay from below the truncation floor would otherwise silently miss
// updates and reconstruct a stale prefix as if it were complete.
func (l *Log) Replay(after LSN) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after+1 < l.floor {
		return nil, fmt.Errorf("%w: replay from %d, floor %d", ErrTruncated, after, l.floor)
	}
	var out []Record
	for _, r := range l.records {
		if r.LSN > after {
			out = append(out, r)
		}
	}
	return out, nil
}

// Floor reports the lowest LSN guaranteed retained (1 when nothing has
// been truncated). Every LSN below the floor has been discarded.
func (l *Log) Floor() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// TruncateBefore discards records with LSN < upTo (checkpointing) and
// raises the truncation floor to upTo. The floor is monotonic: truncating
// below the current floor is a no-op.
func (l *Log) TruncateBefore(upTo LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upTo <= l.floor {
		return
	}
	l.floor = upTo
	keep := l.records[:0]
	for _, r := range l.records {
		if r.LSN >= upTo {
			keep = append(keep, r)
		}
	}
	l.records = keep
}

// Applier consumes redo records. Page stores and engines implement this.
type Applier interface {
	// Apply applies one redo record; it must be idempotent with respect
	// to page LSNs (apply only if record LSN > page LSN).
	Apply(r Record)
}

// Redo replays records in order into the applier, skipping records at or
// below the given page-LSN floor resolver. pageLSN may be nil, in which
// case all records are applied (the applier is then responsible for
// idempotence).
func Redo(records []Record, pageLSN func(pageID uint64) LSN, apply func(Record)) int {
	applied := 0
	for _, r := range records {
		if r.Type == TypeCommit || r.Type == TypeAbort || r.Type == TypeCheckpoint {
			continue
		}
		if pageLSN != nil && r.LSN <= pageLSN(r.PageID) {
			continue
		}
		apply(r)
		applied++
	}
	return applied
}
