package wal

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func sampleRecord() Record {
	return Record{
		LSN:    42,
		Type:   TypeUpdate,
		TxID:   7,
		PageID: 13,
		Key:    99,
		Before: []byte("old"),
		After:  []byte("newer"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleRecord()
	buf := r.Encode(nil)
	if len(buf) != r.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), r.EncodedSize())
	}
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v, n=%d", err, n)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip: %+v vs %+v", got, r)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrShortRecord {
		t.Fatalf("nil: %v", err)
	}
	r := sampleRecord()
	buf := r.Encode(nil)
	if _, _, err := Decode(buf[:len(buf)-1]); err != ErrShortRecord {
		t.Fatalf("truncated: %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[8] = 200 // invalid type
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("bad type accepted")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(tx, pg, key uint64, before, after []byte, typeSel uint8) bool {
		r := Record{
			Type:   Type(typeSel%6) + TypeUpdate,
			TxID:   tx,
			PageID: pg,
			Key:    key,
			Before: before,
			After:  after,
		}
		if len(r.Before) == 0 {
			r.Before = nil
		}
		if len(r.After) == 0 {
			r.After = nil
		}
		got, n, err := Decode(r.Encode(nil))
		return err == nil && n == r.EncodedSize() &&
			got.Type == r.Type && got.TxID == r.TxID &&
			got.PageID == r.PageID && got.Key == r.Key &&
			bytes.Equal(got.Before, r.Before) && bytes.Equal(got.After, r.After)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAllConcatenation(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		r := sampleRecord()
		r.LSN = LSN(i + 1)
		buf = r.Encode(buf)
	}
	rs, err := DecodeAll(buf)
	if err != nil || len(rs) != 5 {
		t.Fatalf("decoded %d records, err %v", len(rs), err)
	}
	for i, r := range rs {
		if r.LSN != LSN(i+1) {
			t.Fatalf("record %d LSN %d", i, r.LSN)
		}
	}
}

func TestLogAppendAssignsMonotonicLSNs(t *testing.T) {
	l := NewLog()
	l1 := l.Append(Record{Type: TypeUpdate})
	l2 := l.Append(Record{Type: TypeCommit})
	if l1 != 1 || l2 != 2 || l.Head() != 3 || l.Len() != 2 {
		t.Fatalf("lsns %d,%d head %d len %d", l1, l2, l.Head(), l.Len())
	}
}

func TestLogAppendConcurrentUnique(t *testing.T) {
	l := NewLog()
	var mu sync.Mutex
	seen := make(map[LSN]bool)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				lsn := l.Append(Record{Type: TypeUpdate})
				mu.Lock()
				if seen[lsn] {
					t.Errorf("duplicate LSN %d", lsn)
				}
				seen[lsn] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.Len() != 4000 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestLogSinceAndTruncate(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: TypeUpdate, Key: uint64(i)})
	}
	rs := l.Since(7)
	if len(rs) != 3 || rs[0].LSN != 8 {
		t.Fatalf("Since(7) = %d records, first %d", len(rs), rs[0].LSN)
	}
	l.TruncateBefore(9)
	if l.Len() != 2 {
		t.Fatalf("after truncate len = %d", l.Len())
	}
	if got := l.Since(0); got[0].LSN != 9 {
		t.Fatalf("first surviving LSN = %d", got[0].LSN)
	}
}

func TestRedoSkipsByPageLSN(t *testing.T) {
	recs := []Record{
		{LSN: 1, Type: TypeUpdate, PageID: 1},
		{LSN: 2, Type: TypeCommit},
		{LSN: 3, Type: TypeUpdate, PageID: 1},
		{LSN: 4, Type: TypeUpdate, PageID: 2},
	}
	pageLSN := func(id uint64) LSN {
		if id == 1 {
			return 1 // page 1 already has LSN 1 applied
		}
		return 0
	}
	var applied []LSN
	n := Redo(recs, pageLSN, func(r Record) { applied = append(applied, r.LSN) })
	if n != 2 || !reflect.DeepEqual(applied, []LSN{3, 4}) {
		t.Fatalf("applied %v (n=%d)", applied, n)
	}
}

func TestRedoIdempotent(t *testing.T) {
	// Running Redo twice with an LSN-tracking applier must apply each
	// record exactly once.
	recs := []Record{
		{LSN: 1, Type: TypeUpdate, PageID: 1},
		{LSN: 2, Type: TypeUpdate, PageID: 1},
	}
	pageLSNs := map[uint64]LSN{}
	apply := func(r Record) { pageLSNs[r.PageID] = r.LSN }
	look := func(id uint64) LSN { return pageLSNs[id] }
	first := Redo(recs, look, apply)
	second := Redo(recs, look, apply)
	if first != 2 || second != 0 {
		t.Fatalf("first=%d second=%d", first, second)
	}
}

func TestTypeString(t *testing.T) {
	if TypeUpdate.String() != "update" || TypeCommit.String() != "commit" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
}

// TestReplayBelowFloorErrTruncated is the replay-below-horizon
// regression: replaying from an LSN older than the truncation point must
// fail with ErrTruncated, not silently yield the retained partial prefix
// as if it were the complete history.
func TestReplayBelowFloorErrTruncated(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: TypeUpdate, Key: uint64(i)})
	}
	l.TruncateBefore(6) // records 1..5 are gone

	if _, err := l.Replay(0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Replay(0) below the floor: err = %v, want ErrTruncated", err)
	}
	if _, err := l.Replay(4); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Replay(4) below the floor: err = %v, want ErrTruncated", err)
	}
	// Exactly at the floor boundary: records 6.. are all retained.
	rs, err := l.Replay(5)
	if err != nil {
		t.Fatalf("Replay(5) at the floor: %v", err)
	}
	if len(rs) != 5 || rs[0].LSN != 6 {
		t.Fatalf("Replay(5) = %d records, first %v", len(rs), rs[0].LSN)
	}
	if got := l.Floor(); got != 6 {
		t.Fatalf("Floor() = %d, want 6", got)
	}
	// The floor is monotonic: a stale (lower) truncation is a no-op.
	l.TruncateBefore(3)
	if got := l.Floor(); got != 6 {
		t.Fatalf("Floor() after stale truncate = %d, want 6", got)
	}
}

// TestReplayFreshLogFromZero: an untruncated log replays its full
// history from zero without error.
func TestReplayFreshLogFromZero(t *testing.T) {
	l := NewLog()
	for i := 0; i < 4; i++ {
		l.Append(Record{Type: TypeUpdate, Key: uint64(i)})
	}
	rs, err := l.Replay(0)
	if err != nil {
		t.Fatalf("Replay(0) on fresh log: %v", err)
	}
	if len(rs) != 4 {
		t.Fatalf("Replay(0) = %d records, want 4", len(rs))
	}
}
