package wal

import (
	"errors"
	"testing"
)

func encodeStream(recs []Record) []byte {
	var out []byte
	for i := range recs {
		out = recs[i].Encode(out)
	}
	return out
}

func sampleRecords() []Record {
	return []Record{
		{LSN: 1, Type: TypeUpdate, TxID: 1, PageID: 3, Key: 10, After: []byte("after-1")},
		{LSN: 2, Type: TypeUpdate, TxID: 1, PageID: 3, Key: 11, Before: []byte("b"), After: []byte("after-2")},
		{LSN: 3, Type: TypeCommit, TxID: 1},
	}
}

// A clean stream decodes fully with every byte consumed.
func TestDecodePrefixCleanStream(t *testing.T) {
	stream := encodeStream(sampleRecords())
	recs, used, err := DecodePrefix(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || used != len(stream) {
		t.Fatalf("got %d recs, %d/%d bytes", len(recs), used, len(stream))
	}
	if recs[2].Type != TypeCommit || recs[1].Key != 11 {
		t.Fatalf("records garbled: %+v", recs)
	}
}

// Truncation anywhere inside the tail record — header or payload — is what
// a crash mid-append leaves on disk. Reopen must keep every whole record
// before the tear and silently discard the tail.
func TestDecodePrefixTornTail(t *testing.T) {
	full := encodeStream(sampleRecords())
	two := encodeStream(sampleRecords()[:2])
	for cut := len(two) + 1; cut < len(full); cut++ {
		recs, used, err := DecodePrefix(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: got %d whole records, want 2", cut, len(recs))
		}
		if used != len(two) {
			t.Fatalf("cut %d: consumed %d bytes, want %d", cut, used, len(two))
		}
	}
	// Torn mid-payload of the second record: only the first survives.
	recs, _, err := DecodePrefix(full[:len(two)-3])
	if err != nil || len(recs) != 1 {
		t.Fatalf("mid-payload tear: %d recs, %v", len(recs), err)
	}
	// Torn inside the very first header: nothing survives, no error.
	recs, used, err := DecodePrefix(full[:5])
	if err != nil || len(recs) != 0 || used != 0 {
		t.Fatalf("first-header tear: %d recs, used %d, %v", len(recs), used, err)
	}
}

// Structural corruption (an invalid type byte) is NOT a crash artifact and
// must be reported, preserving the records before it.
func TestDecodePrefixBadRecord(t *testing.T) {
	stream := encodeStream(sampleRecords())
	one := len(encodeStream(sampleRecords()[:1]))
	stream[one+8] = 0xFF // type byte of the second record
	recs, used, err := DecodePrefix(stream)
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("want ErrBadRecord, got %v", err)
	}
	if len(recs) != 1 || used != one {
		t.Fatalf("got %d recs, %d bytes before corruption", len(recs), used)
	}
}

// An empty buffer is a valid (empty) log.
func TestDecodePrefixEmpty(t *testing.T) {
	recs, used, err := DecodePrefix(nil)
	if err != nil || len(recs) != 0 || used != 0 {
		t.Fatalf("empty: %d recs, used %d, %v", len(recs), used, err)
	}
}
