package workload

import (
	"math/rand"
	"sort"

	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
)

// TPCH generates a TPC-H-lite schema: lineitem, orders and customer tables
// with the columns the Q1/Q3/Q5/Q6-shaped queries need. Values are scaled
// to int64 (prices in cents, dates as day numbers).
type TPCH struct {
	// ScaleRows is the lineitem row count; orders = ScaleRows/4,
	// customers = ScaleRows/40.
	ScaleRows int
	// Clustered sorts lineitem by shipdate, which makes zone maps
	// effective (the E5 variable).
	Clustered bool
	Seed      int64
}

// Lineitem column names.
const (
	LOrderKey  = "l_orderkey"
	LQuantity  = "l_quantity"
	LPrice     = "l_extendedprice"
	LDiscount  = "l_discount" // percent 0..10
	LShipDate  = "l_shipdate" // day number 0..2555 (7 years)
	LFlag      = "l_returnflag"
	OOrderKey  = "o_orderkey"
	OCustKey   = "o_custkey"
	OOrderDate = "o_orderdate"
	CCustKey   = "c_custkey"
	CNation    = "c_nationkey"
)

// Data bundles the generated tables.
type Data struct {
	Lineitem *query.Table
	Orders   *query.Table
	Customer *query.Table
}

// Generate builds the dataset.
func (t TPCH) Generate() *Data {
	if t.ScaleRows <= 0 {
		t.ScaleRows = 100_000
	}
	r := sim.NewRand(t.Seed, 0)
	nOrders := t.ScaleRows/4 + 1
	nCust := t.ScaleRows/40 + 1

	li := query.NewTable(LOrderKey, LQuantity, LPrice, LDiscount, LShipDate, LFlag)
	if t.Clustered {
		// Generate shipdates sorted: clustered layout.
		dates := make([]int64, t.ScaleRows)
		for i := range dates {
			dates[i] = int64(r.Intn(2556))
		}
		sortInt64s(dates)
		for i := 0; i < t.ScaleRows; i++ {
			li.AppendRow(rowFor(r, nOrders, dates[i])...)
		}
	} else {
		for i := 0; i < t.ScaleRows; i++ {
			li.AppendRow(rowFor(r, nOrders, int64(r.Intn(2556)))...)
		}
	}

	ord := query.NewTable(OOrderKey, OCustKey, OOrderDate)
	for i := 0; i < nOrders; i++ {
		ord.AppendRow(int64(i), int64(r.Intn(nCust)), int64(r.Intn(2556)))
	}
	cust := query.NewTable(CCustKey, CNation)
	for i := 0; i < nCust; i++ {
		cust.AppendRow(int64(i), int64(r.Intn(25)))
	}
	return &Data{Lineitem: li, Orders: ord, Customer: cust}
}

func rowFor(r *rand.Rand, nOrders int, date int64) []int64 {
	return []int64{
		int64(r.Intn(nOrders)),     // orderkey
		int64(1 + r.Intn(50)),      // quantity
		int64(100 + r.Intn(99900)), // price (cents)
		int64(r.Intn(11)),          // discount %
		date,                       // shipdate
		int64(r.Intn(3)),           // returnflag
	}
}

func sortInt64s(a []int64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// Q6 builds the TPC-H Q6-shaped plan: a selective filter-and-aggregate on
// lineitem (revenue = sum(price*discount) approximated as sum(price) over
// the qualifying rows plus sum(discount)).
//
//	SELECT sum(l_extendedprice) FROM lineitem
//	WHERE l_shipdate in [dateLo, dateHi) AND l_discount in [dLo, dHi)
func Q6(cfg *sim.Config, src query.Source, dateLo, dateHi, dLo, dHi int64, prune bool) (query.Operator, error) {
	scan, err := query.NewScan(cfg, src, []string{LPrice}, []query.Predicate{
		{Col: LShipDate, Lo: dateLo, Hi: dateHi},
		{Col: LDiscount, Lo: dLo, Hi: dHi},
	}, prune)
	if err != nil {
		return nil, err
	}
	return query.NewHashAgg(cfg, scan, "", query.AggSpec{Col: LPrice}, query.AggSpec{}), nil
}

// Q1 builds the TPC-H Q1-shaped plan: scan most of lineitem, group by
// return flag, sum price and quantity.
func Q1(cfg *sim.Config, src query.Source, dateHi int64) (query.Operator, error) {
	scan, err := query.NewScan(cfg, src, []string{LFlag, LPrice, LQuantity}, []query.Predicate{
		{Col: LShipDate, Lo: 0, Hi: dateHi},
	}, true)
	if err != nil {
		return nil, err
	}
	return query.NewHashAgg(cfg, scan, LFlag, query.AggSpec{Col: LPrice}, query.AggSpec{Col: LQuantity}, query.AggSpec{}), nil
}

// Q3Top builds the full Q3 shape including the ORDER BY revenue LIMIT k
// tail on top of the join+aggregate.
func Q3Top(cfg *sim.Config, li query.Source, ord query.Source, cutoff int64, k int, budget *query.MemoryBudget) (query.Operator, error) {
	agg, err := Q3(cfg, li, ord, cutoff, budget)
	if err != nil {
		return nil, err
	}
	return query.NewTopK(cfg, agg, "sum_"+LPrice, k, false), nil
}

// Q5 builds the TPC-H Q5-shaped plan: lineitem ⋈ orders ⋈ customer,
// revenue grouped by customer nation for orders in a date window.
//
//	SELECT c_nationkey, sum(l_extendedprice)
//	FROM lineitem JOIN orders JOIN customer
//	WHERE o_orderdate in [dateLo, dateHi) GROUP BY c_nationkey
func Q5(cfg *sim.Config, li, ord, cust query.Source, dateLo, dateHi int64, budget *query.MemoryBudget) (query.Operator, error) {
	ordScan, err := query.NewScan(cfg, ord, []string{OOrderKey, OCustKey}, []query.Predicate{
		{Col: OOrderDate, Lo: dateLo, Hi: dateHi},
	}, true)
	if err != nil {
		return nil, err
	}
	custScan, err := query.NewScan(cfg, cust, []string{CCustKey, CNation}, nil, false)
	if err != nil {
		return nil, err
	}
	// customer ⋈ orders on custkey (customer is the small build side).
	co := query.NewHashJoin(cfg, custScan, ordScan, CCustKey, OCustKey, nil)
	// (customer ⋈ orders) ⋈ lineitem on orderkey.
	liScan, err := query.NewScan(cfg, li, []string{LOrderKey, LPrice}, nil, false)
	if err != nil {
		return nil, err
	}
	col := query.NewHashJoin(cfg, co, liScan, OOrderKey, LOrderKey, budget)
	// Joined schema: lineitem cols, then b_-prefixed (customer⋈orders)
	// cols — the nation arrives as b_b_c_nationkey.
	return query.NewHashAgg(cfg, col, "b_b_"+CNation, query.AggSpec{Col: LPrice}), nil
}

// Q3 builds the TPC-H Q3-shaped plan: join lineitem with orders (budgeted,
// spilling build side), then aggregate revenue per order date.
//
//	SELECT o_orderdate, sum(l_extendedprice) FROM lineitem JOIN orders
//	WHERE o_orderdate < cutoff GROUP BY o_orderdate
func Q3(cfg *sim.Config, li query.Source, ord query.Source, cutoff int64, budget *query.MemoryBudget) (query.Operator, error) {
	ordScan, err := query.NewScan(cfg, ord, []string{OOrderKey, OOrderDate}, []query.Predicate{
		{Col: OOrderDate, Lo: 0, Hi: cutoff},
	}, true)
	if err != nil {
		return nil, err
	}
	liScan, err := query.NewScan(cfg, li, []string{LOrderKey, LPrice}, nil, false)
	if err != nil {
		return nil, err
	}
	join := query.NewHashJoin(cfg, ordScan, liScan, OOrderKey, LOrderKey, budget)
	return query.NewHashAgg(cfg, join, "b_"+OOrderDate, query.AggSpec{Col: LPrice}), nil
}
