// Package workload provides the benchmark workloads used throughout the
// experiments: YCSB-style key-value mixes with Zipfian skew, a TPC-C-lite
// transactional mix (NewOrder/Payment-shaped multi-key transactions), and
// a TPC-H-lite schema generator with Q1/Q3/Q6-shaped analytical queries.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
)

// YCSB is a key-value workload: a read/update mix over n keys with
// optional Zipfian skew.
type YCSB struct {
	Keys      uint64
	ReadFrac  float64
	Theta     float64 // 0 = uniform
	ValueSize int
}

// YCSBA returns the classic 50/50 update-heavy mix.
func YCSBA(keys uint64) YCSB { return YCSB{Keys: keys, ReadFrac: 0.5, Theta: 1.1, ValueSize: 100} }

// YCSBB returns the 95/5 read-heavy mix.
func YCSBB(keys uint64) YCSB { return YCSB{Keys: keys, ReadFrac: 0.95, Theta: 1.1, ValueSize: 100} }

// YCSBC returns the read-only mix.
func YCSBC(keys uint64) YCSB { return YCSB{Keys: keys, ReadFrac: 1.0, Theta: 1.1, ValueSize: 100} }

// Op is one generated operation.
type Op struct {
	Read bool
	Key  uint64
}

// Generator produces a deterministic op stream for one worker.
type Generator struct {
	w  YCSB
	r  *rand.Rand
	kc *sim.KeyChooser
}

// NewGenerator builds a per-worker generator.
func (w YCSB) NewGenerator(seed int64, worker int) *Generator {
	r := sim.NewRand(seed, worker)
	return &Generator{w: w, r: r, kc: sim.NewKeyChooser(r, w.Theta, w.Keys)}
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	return Op{Read: g.r.Float64() < g.w.ReadFrac, Key: g.kc.Next()}
}

// Value builds the value payload for a key (deterministic, verifiable).
func (g *Generator) Value(key uint64) []byte {
	v := make([]byte, g.w.ValueSize)
	binary.LittleEndian.PutUint64(v, key^0xBADC0FFEE)
	return v
}

// RunOn executes ops operations against an engine on the worker clock,
// returning the number of committed transactions.
func (g *Generator) RunOn(e engine.Engine, c *sim.Clock, ops int) int {
	committed := 0
	for i := 0; i < ops; i++ {
		op := g.Next()
		err := engine.Run(e, c, engine.RunOpts{Retries: 3}, func(tx engine.Tx) error {
			if op.Read {
				_, err := tx.Read(op.Key)
				return err
			}
			return tx.Write(op.Key, g.Value(op.Key))
		})
		if err == nil {
			committed++
		}
	}
	return committed
}

// TPCCLite is a Payment/NewOrder-shaped transactional mix over a banking-
// style keyspace: each transaction reads and updates a handful of rows,
// with a hot "warehouse" region and a cold "customer" region.
type TPCCLite struct {
	Warehouses uint64 // hot keys
	Customers  uint64 // cold keys
	ValueSize  int
}

// DefaultTPCC returns a small but contention-realistic configuration.
func DefaultTPCC() TPCCLite {
	return TPCCLite{Warehouses: 16, Customers: 100_000, ValueSize: 96}
}

// TotalKeys reports the keyspace size (warehouses first, then customers).
func (t TPCCLite) TotalKeys() uint64 { return t.Warehouses + t.Customers }

// TPCCGen generates TPC-C-lite transactions for one worker.
type TPCCGen struct {
	t TPCCLite
	r *rand.Rand
}

// NewGenerator builds a per-worker generator.
func (t TPCCLite) NewGenerator(seed int64, worker int) *TPCCGen {
	return &TPCCGen{t: t, r: sim.NewRand(seed, worker)}
}

// TxKind distinguishes the generated transaction profiles.
type TxKind int

// Transaction kinds.
const (
	TxPayment  TxKind = iota // 1 hot update + 1 cold update
	TxNewOrder               // 1 hot read + 5-10 cold reads + 5-10 cold writes
)

// TxSpec is one generated transaction.
type TxSpec struct {
	Kind   TxKind
	Reads  []uint64
	Writes []uint64
}

// Next generates the next transaction (45% Payment, 55% NewOrder, per the
// TPC-C mix shape).
func (g *TPCCGen) Next() TxSpec {
	hot := uint64(g.r.Int63n(int64(g.t.Warehouses)))
	cold := func() uint64 { return g.t.Warehouses + uint64(g.r.Int63n(int64(g.t.Customers))) }
	if g.r.Float64() < 0.45 {
		return TxSpec{Kind: TxPayment, Writes: []uint64{hot, cold()}}
	}
	n := 5 + g.r.Intn(6)
	spec := TxSpec{Kind: TxNewOrder, Reads: []uint64{hot}}
	for i := 0; i < n; i++ {
		k := cold()
		spec.Reads = append(spec.Reads, k)
		spec.Writes = append(spec.Writes, k)
	}
	return spec
}

// Value builds a payload.
func (g *TPCCGen) Value(key uint64) []byte {
	v := make([]byte, g.t.ValueSize)
	binary.LittleEndian.PutUint64(v, key*2654435761)
	return v
}

// RunOn executes n transactions against the engine, returning commits.
func (g *TPCCGen) RunOn(e engine.Engine, c *sim.Clock, n int) int {
	committed := 0
	for i := 0; i < n; i++ {
		spec := g.Next()
		err := engine.Run(e, c, engine.RunOpts{Retries: 3}, func(tx engine.Tx) error {
			for _, k := range spec.Reads {
				if _, err := tx.Read(k); err != nil {
					return err
				}
			}
			for _, k := range spec.Writes {
				if err := tx.Write(k, g.Value(k)); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			committed++
		}
	}
	return committed
}

// String implements fmt.Stringer.
func (t TPCCLite) String() string {
	return fmt.Sprintf("tpcc-lite(w=%d,c=%d)", t.Warehouses, t.Customers)
}
