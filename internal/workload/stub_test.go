package workload

import (
	"sync"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
)

// stubEngine is a minimal engine.Engine for generator tests.
type stubEngine struct {
	mu      sync.Mutex
	data    map[uint64][]byte
	commits int
	stats   engine.Stats
}

func (s *stubEngine) Name() string { return "stub" }

func (s *stubEngine) Stats() *engine.Stats { return &s.stats }

type stubTx struct{ s *stubEngine }

func (t stubTx) Read(key uint64) ([]byte, error) { return t.s.data[key], nil }

func (t stubTx) Write(key uint64, val []byte) error {
	t.s.data[key] = append([]byte(nil), val...)
	return nil
}

func (s *stubEngine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := fn(stubTx{s}); err != nil {
		return err
	}
	s.commits++
	s.stats.Commits.Add(1)
	return nil
}
