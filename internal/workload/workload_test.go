package workload

import (
	"testing"

	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
)

func TestYCSBMixRatio(t *testing.T) {
	g := YCSBB(1000).NewGenerator(1, 0)
	reads := 0
	for i := 0; i < 10_000; i++ {
		if g.Next().Read {
			reads++
		}
	}
	if reads < 9300 || reads > 9700 {
		t.Fatalf("read fraction = %d/10000, want ~9500", reads)
	}
}

func TestYCSBDeterministicPerWorker(t *testing.T) {
	a := YCSBA(1000).NewGenerator(7, 3)
	b := YCSBA(1000).NewGenerator(7, 3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generators diverge for same (seed,worker)")
		}
	}
}

func TestYCSBKeysInRange(t *testing.T) {
	g := YCSBA(64).NewGenerator(2, 1)
	for i := 0; i < 1000; i++ {
		if op := g.Next(); op.Key >= 64 {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
	if len(g.Value(5)) != 100 {
		t.Fatal("value size wrong")
	}
}

func TestTPCCSpecShapes(t *testing.T) {
	w := DefaultTPCC()
	g := w.NewGenerator(1, 0)
	payments, neworders := 0, 0
	for i := 0; i < 5000; i++ {
		spec := g.Next()
		switch spec.Kind {
		case TxPayment:
			payments++
			if len(spec.Writes) != 2 || len(spec.Reads) != 0 {
				t.Fatalf("payment shape: %+v", spec)
			}
			if spec.Writes[0] >= w.Warehouses {
				t.Fatal("payment hot key out of warehouse range")
			}
		case TxNewOrder:
			neworders++
			if len(spec.Reads) < 6 || len(spec.Writes) < 5 {
				t.Fatalf("neworder shape: %+v", spec)
			}
		}
		for _, k := range append(spec.Reads, spec.Writes...) {
			if k >= w.TotalKeys() {
				t.Fatalf("key %d out of keyspace", k)
			}
		}
	}
	frac := float64(payments) / float64(payments+neworders)
	if frac < 0.40 || frac > 0.50 {
		t.Fatalf("payment fraction = %.2f", frac)
	}
}

func TestTPCHGenerateShape(t *testing.T) {
	d := TPCH{ScaleRows: 10_000, Seed: 1}.Generate()
	if d.Lineitem.NumRows() != 10_000 {
		t.Fatalf("lineitem rows = %d", d.Lineitem.NumRows())
	}
	if d.Orders.NumRows() != 2501 || d.Customer.NumRows() != 251 {
		t.Fatalf("orders=%d customers=%d", d.Orders.NumRows(), d.Customer.NumRows())
	}
	// Every lineitem orderkey must exist in orders.
	ok, _ := d.Lineitem.Schema.ColIndex(LOrderKey)
	for _, v := range d.Lineitem.Cols[ok] {
		if v < 0 || v >= int64(d.Orders.NumRows()) {
			t.Fatalf("dangling orderkey %d", v)
		}
	}
}

func TestTPCHClusteredSortsShipdate(t *testing.T) {
	d := TPCH{ScaleRows: 5000, Clustered: true, Seed: 2}.Generate()
	ci, _ := d.Lineitem.Schema.ColIndex(LShipDate)
	col := d.Lineitem.Cols[ci]
	for i := 1; i < len(col); i++ {
		if col[i] < col[i-1] {
			t.Fatal("clustered lineitem not sorted by shipdate")
		}
	}
}

func TestQ6MatchesNaiveEvaluation(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := TPCH{ScaleRows: 20_000, Seed: 3}.Generate()
	src := query.NewLocalSource(cfg, d.Lineitem)
	op, err := Q6(cfg, src, 100, 465, 2, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := query.Collect(sim.NewClock(), op)
	if err != nil {
		t.Fatal(err)
	}
	// Naive evaluation over the raw table.
	di, _ := d.Lineitem.Schema.ColIndex(LShipDate)
	pi, _ := d.Lineitem.Schema.ColIndex(LPrice)
	ci, _ := d.Lineitem.Schema.ColIndex(LDiscount)
	var sum, count int64
	for r := 0; r < d.Lineitem.NumRows(); r++ {
		date, disc := d.Lineitem.Cols[di][r], d.Lineitem.Cols[ci][r]
		if date >= 100 && date < 465 && disc >= 2 && disc < 5 {
			sum += d.Lineitem.Cols[pi][r]
			count++
		}
	}
	if out.Cols[0][0] != sum || out.Cols[1][0] != count {
		t.Fatalf("Q6 = (%d,%d), naive = (%d,%d)", out.Cols[0][0], out.Cols[1][0], sum, count)
	}
	if count == 0 {
		t.Fatal("degenerate test: no qualifying rows")
	}
}

func TestQ1Groups(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := TPCH{ScaleRows: 10_000, Seed: 4}.Generate()
	src := query.NewLocalSource(cfg, d.Lineitem)
	op, err := Q1(cfg, src, 2000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := query.Collect(sim.NewClock(), op)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 { // three return flags
		t.Fatalf("groups = %d", out.Len())
	}
	var total int64
	for i := 0; i < out.Len(); i++ {
		total += out.Cols[3][i] // count column
	}
	// All rows with shipdate < 2000 are covered.
	di, _ := d.Lineitem.Schema.ColIndex(LShipDate)
	var want int64
	for _, v := range d.Lineitem.Cols[di] {
		if v < 2000 {
			want++
		}
	}
	if total != want {
		t.Fatalf("count = %d, want %d", total, want)
	}
}

func TestQ3JoinMatchesNaive(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := TPCH{ScaleRows: 8000, Seed: 5}.Generate()
	li := query.NewLocalSource(cfg, d.Lineitem)
	ord := query.NewLocalSource(cfg, d.Orders)
	op, err := Q3(cfg, li, ord, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := query.Collect(sim.NewClock(), op)
	if err != nil {
		t.Fatal(err)
	}
	// Naive: sum revenue over lineitems whose order has date < 1000.
	oDate := make(map[int64]int64)
	oi, _ := d.Orders.Schema.ColIndex(OOrderKey)
	odi, _ := d.Orders.Schema.ColIndex(OOrderDate)
	for r := 0; r < d.Orders.NumRows(); r++ {
		oDate[d.Orders.Cols[oi][r]] = d.Orders.Cols[odi][r]
	}
	lo, _ := d.Lineitem.Schema.ColIndex(LOrderKey)
	lp, _ := d.Lineitem.Schema.ColIndex(LPrice)
	var want int64
	for r := 0; r < d.Lineitem.NumRows(); r++ {
		if oDate[d.Lineitem.Cols[lo][r]] < 1000 {
			want += d.Lineitem.Cols[lp][r]
		}
	}
	var got int64
	for i := 0; i < out.Len(); i++ {
		got += out.Cols[1][i]
	}
	if got != want {
		t.Fatalf("Q3 revenue = %d, naive = %d", got, want)
	}
}

func TestRunOnEngineStub(t *testing.T) {
	// Exercise RunOn against a trivial in-memory engine.
	e := &stubEngine{data: map[uint64][]byte{}}
	g := YCSBA(100).NewGenerator(1, 0)
	c := sim.NewClock()
	if n := g.RunOn(e, c, 500); n != 500 {
		t.Fatalf("committed %d/500", n)
	}
	tg := DefaultTPCC().NewGenerator(1, 0)
	if n := tg.RunOn(e, c, 200); n != 200 {
		t.Fatalf("tpcc committed %d/200", n)
	}
	if e.commits != 700 {
		t.Fatalf("engine saw %d commits", e.commits)
	}
}

func TestQ5MatchesNaive(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := TPCH{ScaleRows: 8000, Seed: 6}.Generate()
	op, err := Q5(cfg,
		query.NewLocalSource(cfg, d.Lineitem),
		query.NewLocalSource(cfg, d.Orders),
		query.NewLocalSource(cfg, d.Customer),
		200, 1200, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := query.Collect(sim.NewClock(), op)
	if err != nil {
		t.Fatal(err)
	}
	// Naive evaluation.
	oi, _ := d.Orders.Schema.ColIndex(OOrderKey)
	oc, _ := d.Orders.Schema.ColIndex(OCustKey)
	od, _ := d.Orders.Schema.ColIndex(OOrderDate)
	orderCust := map[int64]int64{}
	for r := 0; r < d.Orders.NumRows(); r++ {
		if dte := d.Orders.Cols[od][r]; dte >= 200 && dte < 1200 {
			orderCust[d.Orders.Cols[oi][r]] = d.Orders.Cols[oc][r]
		}
	}
	ci, _ := d.Customer.Schema.ColIndex(CCustKey)
	cn, _ := d.Customer.Schema.ColIndex(CNation)
	custNation := map[int64]int64{}
	for r := 0; r < d.Customer.NumRows(); r++ {
		custNation[d.Customer.Cols[ci][r]] = d.Customer.Cols[cn][r]
	}
	lo, _ := d.Lineitem.Schema.ColIndex(LOrderKey)
	lp, _ := d.Lineitem.Schema.ColIndex(LPrice)
	want := map[int64]int64{}
	for r := 0; r < d.Lineitem.NumRows(); r++ {
		if custKey, ok := orderCust[d.Lineitem.Cols[lo][r]]; ok {
			want[custNation[custKey]] += d.Lineitem.Cols[lp][r]
		}
	}
	if out.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", out.Len(), len(want))
	}
	for i := 0; i < out.Len(); i++ {
		nation, rev := out.Cols[0][i], out.Cols[1][i]
		if want[nation] != rev {
			t.Fatalf("nation %d revenue %d, want %d", nation, rev, want[nation])
		}
	}
}

func TestQ3TopReturnsKHottestDates(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := TPCH{ScaleRows: 8000, Seed: 7}.Generate()
	op, err := Q3Top(cfg,
		query.NewLocalSource(cfg, d.Lineitem),
		query.NewLocalSource(cfg, d.Orders),
		2000, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := query.Collect(sim.NewClock(), op)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("rows = %d", out.Len())
	}
	rev := out.Cols[1]
	for i := 1; i < len(rev); i++ {
		if rev[i] > rev[i-1] {
			t.Fatalf("revenues not descending: %v", rev)
		}
	}
}
