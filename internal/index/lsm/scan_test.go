package lsm

import (
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

func TestScanBasic(t *testing.T) {
	opt := Options{Shards: 4, MemtableEntries: 32, CompactAt: 3, RemoteCompaction: true}
	tr := newTree(t, opt)
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	for i := uint64(0); i < 500; i++ {
		cl.Put(clk, i, i*10)
	}
	ents, err := cl.Scan(clk, 100, 110)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 10 {
		t.Fatalf("scan returned %d entries", len(ents))
	}
	for i, e := range ents {
		if e.Key != uint64(100+i) || e.Value != e.Key*10 {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestScanSeesNewestVersionAndSkipsTombstones(t *testing.T) {
	opt := Options{Shards: 2, MemtableEntries: 8, CompactAt: 100}
	tr := newTree(t, opt)
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	for i := uint64(0); i < 50; i++ {
		cl.Put(clk, i, 1)
	}
	cl.FlushAll(clk)
	// Overwrite evens, delete key 7.
	for i := uint64(0); i < 50; i += 2 {
		cl.Put(clk, i, 2)
	}
	cl.Delete(clk, 7)
	ents, err := cl.Scan(clk, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[uint64]uint64{}
	for _, e := range ents {
		byKey[e.Key] = e.Value
	}
	if _, ok := byKey[7]; ok {
		t.Fatal("tombstoned key visible in scan")
	}
	if len(ents) != 19 {
		t.Fatalf("entries = %d, want 19", len(ents))
	}
	if byKey[4] != 2 || byKey[5] != 1 {
		t.Fatalf("version resolution wrong: %v", byKey)
	}
}

func TestScanModelEquivalence(t *testing.T) {
	opt := Options{Shards: 3, MemtableEntries: 16, CompactAt: 3, RemoteCompaction: true}
	tr := newTree(t, opt)
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	model := map[uint64]uint64{}
	r := sim.NewRand(99, 0)
	for step := 0; step < 3000; step++ {
		k := uint64(r.Int63n(200))
		if r.Intn(5) == 0 {
			cl.Delete(clk, k)
			delete(model, k)
		} else {
			v := uint64(r.Int63n(1 << 30))
			cl.Put(clk, k, v)
			model[k] = v
		}
	}
	ents, err := cl.Scan(clk, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(model) {
		t.Fatalf("scan %d entries, model %d", len(ents), len(model))
	}
	prev := int64(-1)
	for _, e := range ents {
		if int64(e.Key) <= prev {
			t.Fatalf("scan not sorted at key %d", e.Key)
		}
		prev = int64(e.Key)
		if model[e.Key] != e.Value {
			t.Fatalf("key %d = %d, model %d", e.Key, e.Value, model[e.Key])
		}
	}
}

func TestScanEmptyAndInvertedRange(t *testing.T) {
	tr := newTree(t, DefaultOptions())
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	cl.Put(clk, 5, 50)
	if ents, _ := cl.Scan(clk, 100, 200); len(ents) != 0 {
		t.Fatal("empty range returned entries")
	}
	if ents, _ := cl.Scan(clk, 9, 3); ents != nil {
		t.Fatal("inverted range returned entries")
	}
}
