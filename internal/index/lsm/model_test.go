package lsm

import (
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/sim"
)

// TestModelEquivalence runs a long random put/get/delete sequence against
// the tree and a map model across several configurations, including ones
// that force frequent flushes and compactions.
func TestModelEquivalence(t *testing.T) {
	configs := []Options{
		{Shards: 1, MemtableEntries: 16, CompactAt: 2, RemoteCompaction: true},
		{Shards: 1, MemtableEntries: 16, CompactAt: 2, RemoteCompaction: false},
		{Shards: 4, MemtableEntries: 8, CompactAt: 3, RemoteCompaction: true},
		DefaultOptions(),
	}
	for _, opt := range configs {
		tr := newTree(t, opt)
		cl := tr.Attach(nil)
		clk := sim.NewClock()
		model := make(map[uint64]uint64)
		const seed = 555
		t.Logf("seed=%d", seed)
		r := sim.NewRand(seed, 0)
		for step := 0; step < 5000; step++ {
			k := uint64(r.Int63n(300))
			switch r.Intn(4) {
			case 0, 1: // put
				v := uint64(r.Int63n(1 << 40))
				if err := cl.Put(clk, k, v); err != nil {
					t.Fatalf("opt %+v step %d put: %v", opt, step, err)
				}
				model[k] = v
			case 2: // delete
				if err := cl.Delete(clk, k); err != nil {
					t.Fatalf("opt %+v step %d delete: %v", opt, step, err)
				}
				delete(model, k)
			default: // get
				got, ok, err := cl.Get(clk, k)
				if err != nil {
					t.Fatalf("opt %+v step %d get: %v", opt, step, err)
				}
				want, wantOK := model[k]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("opt %+v step %d key %d: lsm (%d,%v) model (%d,%v)",
						opt, step, k, got, ok, want, wantOK)
				}
			}
		}
		// Sweep after a final flush+compaction barrier.
		if err := cl.FlushAll(clk); err != nil {
			t.Fatal(err)
		}
		if err := cl.CompactAll(clk); err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 300; k++ {
			got, ok, err := cl.Get(clk, k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("opt %+v final key %d: lsm (%d,%v) model (%d,%v)", opt, k, got, ok, want, wantOK)
			}
		}
	}
}

func TestPoolExhaustionOnFlush(t *testing.T) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "tiny", 256)
	tr := New(cfg, pool, Options{Shards: 1, MemtableEntries: 8, CompactAt: 100})
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	var sawErr error
	for i := uint64(0); i < 200; i++ {
		if err := cl.Put(clk, i, i); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr != ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace", sawErr)
	}
}

func TestCompactionFreesOldRuns(t *testing.T) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 1<<20)
	tr := New(cfg, pool, Options{Shards: 1, MemtableEntries: 32, CompactAt: 3, RemoteCompaction: false})
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	// Overwrite the same small keyspace repeatedly: without compaction
	// reclaiming runs, the pool would fill with dead versions.
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 64; k++ {
			if err := cl.Put(clk, k, uint64(round)); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	used := pool.UsedBytes()
	// Live data is 64 entries = 1KiB; allow run + metadata slack, but
	// dead versions (50 rounds x 64 keys x 16B = 50KiB) must be gone.
	if used > 16<<10 {
		t.Fatalf("pool holds %d bytes — compaction is not reclaiming", used)
	}
}
