// Package lsm implements a dLSM-style LSM-tree index on disaggregated
// memory (§3.1): compute-side mutable memtables (sharded to admit
// concurrent writers), immutable sorted runs flushed to the remote memory
// pool with large one-sided writes, client-cached bloom filters and block
// indexes so a point lookup costs at most one RDMA read per probed run,
// and compaction that can run either client-driven (download-merge-upload)
// or offloaded to the memory node (dLSM's remote compaction), making the
// offloading benefit measurable.
package lsm

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// Tombstone is the reserved value marking a deleted key.
const Tombstone = ^uint64(0)

const (
	entrySize    = 16 // key + value
	blockEntries = 16 // entries per index block (one RDMA read)
)

// ErrNoSpace is returned when the memory pool cannot host a flush.
var ErrNoSpace = errors.New("lsm: memory pool full")

// Options tune the tree.
type Options struct {
	// Shards is the number of independent LSM shards (concurrent
	// writers hash across them).
	Shards int
	// MemtableEntries triggers a flush when a shard's memtable reaches
	// this size.
	MemtableEntries int
	// CompactAt triggers compaction when a shard accumulates this many
	// runs.
	CompactAt int
	// RemoteCompaction offloads merges to the memory node (dLSM);
	// otherwise the client downloads, merges, and re-uploads.
	RemoteCompaction bool
}

// DefaultOptions returns dLSM-ish defaults.
func DefaultOptions() Options {
	return Options{Shards: 8, MemtableEntries: 1024, CompactAt: 4, RemoteCompaction: true}
}

// run is one immutable sorted run in remote memory.
type run struct {
	addr  uint64
	count int
	min   uint64
	max   uint64
	// bloom is a client-cached blocked bloom filter (built at flush).
	bloom []uint64
	// blockMins is the client-cached sparse index: first key of every
	// block of blockEntries entries.
	blockMins []uint64
}

func (r *run) sizeBytes() uint64 { return uint64(r.count) * entrySize }

type shard struct {
	mu   sync.Mutex
	mem  map[uint64]uint64
	runs []*run // newest first
	// compacting serializes compactions per shard: while set, only
	// flushes may touch runs (they prepend), so the compacted suffix
	// stays stable.
	compacting bool
}

// Tree is a sharded LSM index on a memory pool. Safe for concurrent use.
type Tree struct {
	cfg    *sim.Config
	pool   *memnode.Pool
	opt    Options
	shards []*shard

	compactions int64
	statsMu     sync.Mutex
}

// New creates the tree and registers the remote-compaction RPC handler on
// the pool's node.
func New(cfg *sim.Config, pool *memnode.Pool, opt Options) *Tree {
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	if opt.MemtableEntries < 1 {
		opt.MemtableEntries = 1024
	}
	if opt.CompactAt < 2 {
		opt.CompactAt = 2
	}
	t := &Tree{cfg: cfg, pool: pool, opt: opt}
	for i := 0; i < opt.Shards; i++ {
		t.shards = append(t.shards, &shard{mem: make(map[uint64]uint64)})
	}
	pool.Node().Handle("lsm.compact", t.remoteCompactHandler)
	return t
}

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

func (t *Tree) shardOf(key uint64) *shard {
	return t.shards[hash64(key)%uint64(len(t.shards))]
}

// Client is one compute-side user with its own queue pair.
type Client struct {
	t  *Tree
	qp *rdma.QP
}

// Attach creates a client; stats may be nil.
func (t *Tree) Attach(stats *rdma.Stats) *Client {
	return &Client{t: t, qp: t.pool.Connect(stats)}
}

// Put inserts or updates a key. Memtable inserts are local-DRAM cheap; a
// full memtable flushes synchronously on this client's clock (dLSM uses
// background flushing; charging the writer is the conservative choice).
func (c *Client) Put(clk *sim.Clock, key, val uint64) error {
	s := c.t.shardOf(key)
	s.mu.Lock()
	s.mem[key] = val
	clk.Advance(c.t.cfg.DRAM.Cost(entrySize))
	if len(s.mem) < c.t.opt.MemtableEntries {
		s.mu.Unlock()
		return nil
	}
	if err := c.flushLocked(clk, s); err != nil {
		s.mu.Unlock()
		return err
	}
	needCompact := len(s.runs) >= c.t.opt.CompactAt
	s.mu.Unlock()
	if needCompact {
		return c.compact(clk, s)
	}
	return nil
}

// Delete writes a tombstone.
func (c *Client) Delete(clk *sim.Clock, key uint64) error {
	return c.Put(clk, key, Tombstone)
}

// Get returns the newest value for key, probing memtable then runs
// newest-first with bloom filters.
func (c *Client) Get(clk *sim.Clock, key uint64) (uint64, bool, error) {
	s := c.t.shardOf(key)
	s.mu.Lock()
	if v, ok := s.mem[key]; ok {
		s.mu.Unlock()
		clk.Advance(c.t.cfg.DRAM.Cost(entrySize))
		if v == Tombstone {
			return 0, false, nil
		}
		return v, true, nil
	}
	runs := make([]*run, len(s.runs))
	copy(runs, s.runs)
	s.mu.Unlock()
	clk.Advance(c.t.cfg.DRAM.Cost(entrySize))

	for _, r := range runs {
		if key < r.min || key > r.max || !bloomMaybe(r.bloom, key) {
			continue
		}
		v, ok, err := c.searchRun(clk, r, key)
		if err != nil {
			return 0, false, err
		}
		if ok {
			if v == Tombstone {
				return 0, false, nil
			}
			return v, true, nil
		}
	}
	return 0, false, nil
}

// searchRun finds key in a run: local sparse-index lookup picks the block,
// one RDMA read fetches it.
func (c *Client) searchRun(clk *sim.Clock, r *run, key uint64) (uint64, bool, error) {
	// Last block whose min <= key.
	b := sort.Search(len(r.blockMins), func(i int) bool { return r.blockMins[i] > key }) - 1
	if b < 0 {
		return 0, false, nil
	}
	start := b * blockEntries
	n := r.count - start
	if n > blockEntries {
		n = blockEntries
	}
	buf := make([]byte, n*entrySize)
	if err := c.qp.Read(clk, r.addr+uint64(start*entrySize), buf); err != nil {
		return 0, false, err
	}
	for i := 0; i < n; i++ {
		k := binary.LittleEndian.Uint64(buf[i*entrySize:])
		if k == key {
			return binary.LittleEndian.Uint64(buf[i*entrySize+8:]), true, nil
		}
		if k > key {
			break
		}
	}
	return 0, false, nil
}

// flushLocked sorts the memtable and writes it as a new run (shard lock
// held by the caller).
func (c *Client) flushLocked(clk *sim.Clock, s *shard) error {
	keys := make([]uint64, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := make([]byte, len(keys)*entrySize)
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[i*entrySize:], k)
		binary.LittleEndian.PutUint64(buf[i*entrySize+8:], s.mem[k])
	}
	clk.Advance(c.t.cfg.CPU.Cost(len(buf))) // sort/encode
	r, err := c.uploadRun(clk, buf, keys)
	if err != nil {
		return err
	}
	s.runs = append([]*run{r}, s.runs...)
	s.mem = make(map[uint64]uint64)
	return nil
}

// uploadRun writes a sorted entry buffer to the pool and builds the
// client-cached metadata.
func (c *Client) uploadRun(clk *sim.Clock, buf []byte, keys []uint64) (*run, error) {
	addr, err := c.t.pool.Alloc(uint64(len(buf)))
	if err != nil {
		return nil, ErrNoSpace
	}
	if err := c.qp.Write(clk, addr, buf); err != nil {
		return nil, err
	}
	r := &run{addr: addr, count: len(keys)}
	if len(keys) > 0 {
		r.min, r.max = keys[0], keys[len(keys)-1]
	}
	r.bloom = buildBloom(keys)
	for i := 0; i < len(keys); i += blockEntries {
		r.blockMins = append(r.blockMins, keys[i])
	}
	return r, nil
}

// CompactAll merges every shard's runs (test/benchmark barrier).
func (c *Client) CompactAll(clk *sim.Clock) error {
	for _, s := range c.t.shards {
		if err := c.compact(clk, s); err != nil {
			return err
		}
	}
	return nil
}

// compact merges all runs of the shard into one.
func (c *Client) compact(clk *sim.Clock, s *shard) error {
	s.mu.Lock()
	if s.compacting || len(s.runs) < 2 {
		s.mu.Unlock()
		return nil
	}
	s.compacting = true
	runs := make([]*run, len(s.runs))
	copy(runs, s.runs)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()
	var merged *run
	var err error
	if c.t.opt.RemoteCompaction {
		merged, err = c.compactRemote(clk, runs)
	} else {
		merged, err = c.compactLocal(clk, runs)
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	// Replace exactly the runs we merged (new flushes may have
	// prepended fresher runs meanwhile).
	keep := s.runs[:len(s.runs)-len(runs)]
	s.runs = append(append([]*run{}, keep...), merged)
	s.mu.Unlock()
	for _, r := range runs {
		c.t.pool.Free(r.addr)
	}
	c.t.statsMu.Lock()
	c.t.compactions++
	c.t.statsMu.Unlock()
	return nil
}

// Compactions reports how many merges have run.
func (t *Tree) Compactions() int64 {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.compactions
}

// compactLocal downloads every run, merges on the compute node, and
// uploads the result: traffic = 2x data size.
func (c *Client) compactLocal(clk *sim.Clock, runs []*run) (*run, error) {
	merged := make(map[uint64]uint64)
	// Oldest first so newer runs overwrite.
	for i := len(runs) - 1; i >= 0; i-- {
		r := runs[i]
		buf := make([]byte, r.sizeBytes())
		if err := c.qp.Read(clk, r.addr, buf); err != nil {
			return nil, err
		}
		for j := 0; j < r.count; j++ {
			k := binary.LittleEndian.Uint64(buf[j*entrySize:])
			v := binary.LittleEndian.Uint64(buf[j*entrySize+8:])
			merged[k] = v
		}
	}
	keys := make([]uint64, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]byte, len(keys)*entrySize)
	for i, k := range keys {
		binary.LittleEndian.PutUint64(out[i*entrySize:], k)
		binary.LittleEndian.PutUint64(out[i*entrySize+8:], merged[k])
	}
	clk.Advance(c.t.cfg.CPU.Cost(len(out) * 2)) // merge cost
	return c.uploadRun(clk, out, keys)
}

// compactRemote ships only run descriptors to the memory node; the node
// merges with local-memory accesses and replies with the new run address.
// Traffic = a few hundred bytes instead of 2x data size.
func (c *Client) compactRemote(clk *sim.Clock, runs []*run) (*run, error) {
	req := make([]byte, 4+len(runs)*12)
	binary.LittleEndian.PutUint32(req, uint32(len(runs)))
	for i, r := range runs {
		binary.LittleEndian.PutUint64(req[4+i*12:], r.addr)
		binary.LittleEndian.PutUint32(req[4+i*12+8:], uint32(r.count))
	}
	resp, err := c.qp.Call(clk, "lsm.compact", req)
	if err != nil {
		return nil, err
	}
	return decodeRunMeta(resp)
}

// Run metadata wire format (remote compaction response):
// addr(8) count(4) nMins(4) nBloom(4) mins... bloom... min(8) max(8).
func encodeRunMeta(r *run) []byte {
	out := make([]byte, 20+len(r.blockMins)*8+len(r.bloom)*8+16)
	binary.LittleEndian.PutUint64(out, r.addr)
	binary.LittleEndian.PutUint32(out[8:], uint32(r.count))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(r.blockMins)))
	binary.LittleEndian.PutUint32(out[16:], uint32(len(r.bloom)))
	off := 20
	for _, m := range r.blockMins {
		binary.LittleEndian.PutUint64(out[off:], m)
		off += 8
	}
	for _, w := range r.bloom {
		binary.LittleEndian.PutUint64(out[off:], w)
		off += 8
	}
	binary.LittleEndian.PutUint64(out[off:], r.min)
	binary.LittleEndian.PutUint64(out[off+8:], r.max)
	return out
}

func decodeRunMeta(p []byte) (*run, error) {
	if len(p) < 36 {
		return nil, errors.New("lsm: bad remote compaction response")
	}
	r := &run{
		addr:  binary.LittleEndian.Uint64(p),
		count: int(binary.LittleEndian.Uint32(p[8:])),
	}
	nMins := int(binary.LittleEndian.Uint32(p[12:]))
	nBloom := int(binary.LittleEndian.Uint32(p[16:]))
	if len(p) < 20+(nMins+nBloom)*8+16 {
		return nil, errors.New("lsm: truncated compaction response")
	}
	off := 20
	for i := 0; i < nMins; i++ {
		r.blockMins = append(r.blockMins, binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	for i := 0; i < nBloom; i++ {
		r.bloom = append(r.bloom, binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	r.min = binary.LittleEndian.Uint64(p[off:])
	r.max = binary.LittleEndian.Uint64(p[off+8:])
	return r, nil
}

// remoteCompactHandler runs on the memory node: merge the given runs with
// node-local memory accesses (DRAM cost charged to the waiting caller, but
// no fabric transfer).
func (t *Tree) remoteCompactHandler(clk *sim.Clock, req []byte) []byte {
	if len(req) < 4 {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(req))
	if len(req) < 4+n*12 {
		return nil
	}
	mem := t.pool.Node().Mem
	merged := make(map[uint64]uint64)

	for i := n - 1; i >= 0; i-- { // oldest first
		addr := binary.LittleEndian.Uint64(req[4+i*12:])
		count := int(binary.LittleEndian.Uint32(req[4+i*12+8:]))
		buf := make([]byte, count*entrySize)
		if err := mem.Read(addr, buf); err != nil {
			return nil
		}
		clk.Advance(t.cfg.DRAM.Cost(len(buf)))
		for j := 0; j < count; j++ {
			merged[binary.LittleEndian.Uint64(buf[j*entrySize:])] = binary.LittleEndian.Uint64(buf[j*entrySize+8:])
		}

	}
	keys := make([]uint64, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]byte, len(keys)*entrySize)
	for i, k := range keys {
		binary.LittleEndian.PutUint64(out[i*entrySize:], k)
		binary.LittleEndian.PutUint64(out[i*entrySize+8:], merged[k])
	}
	clk.Advance(t.cfg.CPU.Cost(len(out) * 2))
	addr, err := t.pool.Alloc(uint64(len(out)))
	if err != nil {
		return nil
	}
	if err := mem.Write(addr, out); err != nil {
		return nil
	}
	clk.Advance(t.cfg.DRAM.Cost(len(out)))
	r := &run{addr: addr, count: len(keys)}
	if len(keys) > 0 {
		r.min, r.max = keys[0], keys[len(keys)-1]
	}
	r.bloom = buildBloom(keys)
	for i := 0; i < len(keys); i += blockEntries {
		r.blockMins = append(r.blockMins, keys[i])
	}
	return encodeRunMeta(r)
}

// RunCount reports the total number of runs across shards.
func (t *Tree) RunCount() int {
	n := 0
	for _, s := range t.shards {
		s.mu.Lock()
		n += len(s.runs)
		s.mu.Unlock()
	}
	return n
}

// MemEntries reports buffered (unflushed) entries.
func (t *Tree) MemEntries() int {
	n := 0
	for _, s := range t.shards {
		s.mu.Lock()
		n += len(s.mem)
		s.mu.Unlock()
	}
	return n
}

// FlushAll flushes every shard's memtable (test/benchmark barrier).
func (c *Client) FlushAll(clk *sim.Clock) error {
	for _, s := range c.t.shards {
		s.mu.Lock()
		if len(s.mem) > 0 {
			if err := c.flushLocked(clk, s); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// bloom: a simple 8-bits-per-key blocked filter with 2 probes.
func buildBloom(keys []uint64) []uint64 {
	words := (len(keys) + 7) / 8
	if words == 0 {
		words = 1
	}
	f := make([]uint64, words)
	for _, k := range keys {
		h1, h2 := hash64(k), hash64(k^0x5BD1E995)
		f[(h1/64)%uint64(len(f))] |= 1 << (h1 % 64)
		f[(h2/64)%uint64(len(f))] |= 1 << (h2 % 64)
	}
	return f
}

func bloomMaybe(f []uint64, k uint64) bool {
	if len(f) == 0 {
		return true
	}
	h1, h2 := hash64(k), hash64(k^0x5BD1E995)
	if f[(h1/64)%uint64(len(f))]&(1<<(h1%64)) == 0 {
		return false
	}
	return f[(h2/64)%uint64(len(f))]&(1<<(h2%64)) != 0
}
