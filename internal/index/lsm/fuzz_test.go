package lsm

import (
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

// FuzzLSM interprets the fuzz input as an op script (3 bytes per op:
// opcode, key, value) against a tiny-memtable configuration so flushes and
// compactions trigger constantly, cross-checking against a map model.
func FuzzLSM(f *testing.F) {
	f.Add([]byte{0, 1, 10, 0, 2, 20, 2, 1, 0, 1, 1, 0})
	f.Add([]byte{0, 9, 1, 0, 9, 2, 1, 9, 0, 2, 9, 0, 1, 9, 0})
	seed := make([]byte, 0, 3*80)
	for i := 0; i < 80; i++ {
		seed = append(seed, byte(i%3), byte(i*5), byte(i*11))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*2048 {
			data = data[:3*2048]
		}
		opt := Options{Shards: 2, MemtableEntries: 8, CompactAt: 2, RemoteCompaction: true}
		tr := newTree(t, opt)
		cl := tr.Attach(nil)
		clk := sim.NewClock()
		model := make(map[uint64]uint64)
		for i := 0; i+2 < len(data); i += 3 {
			op, kb, vb := data[i], data[i+1], data[i+2]
			key := uint64(kb)
			switch op % 3 {
			case 0:
				val := uint64(vb) + 1
				if err := cl.Put(clk, key, val); err != nil {
					t.Fatalf("op %d put(%d,%d): %v", i/3, key, val, err)
				}
				model[key] = val
			case 1:
				got, ok, err := cl.Get(clk, key)
				if err != nil {
					t.Fatalf("op %d get(%d): %v", i/3, key, err)
				}
				want, wantOK := model[key]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("op %d key %d: lsm (%d,%v) model (%d,%v)",
						i/3, key, got, ok, want, wantOK)
				}
			case 2:
				if err := cl.Delete(clk, key); err != nil {
					t.Fatalf("op %d delete(%d): %v", i/3, key, err)
				}
				delete(model, key)
			}
		}
		for k, want := range model {
			got, ok, err := cl.Get(clk, k)
			if err != nil || !ok || got != want {
				t.Fatalf("final key %d: (%d,%v,%v) want %d", k, got, ok, err, want)
			}
		}
	})
}
