package lsm

import (
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

func newTree(t *testing.T, opt Options) *Tree {
	t.Helper()
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 256<<20)
	return New(cfg, pool, opt)
}

func TestPutGetMemtable(t *testing.T) {
	tr := newTree(t, DefaultOptions())
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	cl.Put(clk, 1, 100)
	v, ok, err := cl.Get(clk, 1)
	if err != nil || !ok || v != 100 {
		t.Fatalf("get: %d %v %v", v, ok, err)
	}
	if tr.RunCount() != 0 {
		t.Fatal("premature flush")
	}
	if _, ok, _ := cl.Get(clk, 2); ok {
		t.Fatal("phantom key")
	}
}

func TestFlushAndRemoteRead(t *testing.T) {
	opt := Options{Shards: 1, MemtableEntries: 64, CompactAt: 100, RemoteCompaction: true}
	tr := newTree(t, opt)
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	for i := uint64(0); i < 200; i++ {
		if err := cl.Put(clk, i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if tr.RunCount() == 0 {
		t.Fatal("no flush happened")
	}
	for i := uint64(0); i < 200; i++ {
		v, ok, err := cl.Get(clk, i)
		if err != nil || !ok || v != i*3 {
			t.Fatalf("get %d: %d %v %v", i, v, ok, err)
		}
	}
}

func TestNewestValueWinsAcrossRuns(t *testing.T) {
	opt := Options{Shards: 1, MemtableEntries: 16, CompactAt: 100}
	tr := newTree(t, opt)
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	// Write key 5 with generations spread across several flushes.
	for gen := uint64(1); gen <= 5; gen++ {
		cl.Put(clk, 5, gen*1000)
		for i := uint64(0); i < 20; i++ { // force a flush
			cl.Put(clk, 100+gen*50+i, i)
		}
	}
	v, ok, _ := cl.Get(clk, 5)
	if !ok || v != 5000 {
		t.Fatalf("latest gen = %d %v, want 5000", v, ok)
	}
}

func TestDeleteTombstone(t *testing.T) {
	opt := Options{Shards: 1, MemtableEntries: 8, CompactAt: 100}
	tr := newTree(t, opt)
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	cl.Put(clk, 1, 10)
	cl.FlushAll(clk)
	cl.Delete(clk, 1)
	cl.FlushAll(clk)
	if _, ok, _ := cl.Get(clk, 1); ok {
		t.Fatal("tombstoned key visible")
	}
}

func TestCompactionMergesRuns(t *testing.T) {
	for _, remote := range []bool{true, false} {
		opt := Options{Shards: 1, MemtableEntries: 32, CompactAt: 3, RemoteCompaction: remote}
		tr := newTree(t, opt)
		cl := tr.Attach(nil)
		clk := sim.NewClock()
		for i := uint64(0); i < 500; i++ {
			if err := cl.Put(clk, i, i+7); err != nil {
				t.Fatalf("remote=%v put: %v", remote, err)
			}
		}
		if tr.Compactions() == 0 {
			t.Fatalf("remote=%v: no compaction ran", remote)
		}
		if tr.RunCount() >= 4 {
			t.Fatalf("remote=%v: run count %d not bounded", remote, tr.RunCount())
		}
		for i := uint64(0); i < 500; i++ {
			v, ok, err := cl.Get(clk, i)
			if err != nil || !ok || v != i+7 {
				t.Fatalf("remote=%v get %d: %d %v %v", remote, i, v, ok, err)
			}
		}
	}
}

func TestRemoteCompactionCheaperThanLocal(t *testing.T) {
	// dLSM's core claim: offloading compaction avoids 2x data movement.
	cost := func(remote bool) (cost int64) {
		opt := Options{Shards: 1, MemtableEntries: 256, CompactAt: 4, RemoteCompaction: remote}
		tr := newTree(t, opt)
		var st rdma.Stats
		cl := tr.Attach(&st)
		clk := sim.NewClock()
		for i := uint64(0); i < 4*256; i++ {
			cl.Put(clk, i, i)
		}
		if tr.Compactions() == 0 {
			t.Fatal("no compaction")
		}
		return st.TotalBytes()
	}
	remoteBytes := cost(true)
	localBytes := cost(false)
	if !(remoteBytes < localBytes/2) {
		t.Fatalf("remote compaction moved %d bytes, local %d — offload should save ≫2x", remoteBytes, localBytes)
	}
}

func TestShardedConcurrentWriters(t *testing.T) {
	opt := Options{Shards: 8, MemtableEntries: 64, CompactAt: 4, RemoteCompaction: true}
	tr := newTree(t, opt)
	const perWorker = 500
	res := sim.RunGroup(8, func(id int, clk *sim.Clock) int {
		cl := tr.Attach(nil)
		base := uint64(id) * 1_000_000
		for i := uint64(0); i < perWorker; i++ {
			if err := cl.Put(clk, base+i, base+i); err != nil {
				t.Errorf("put: %v", err)
				return int(i)
			}
		}
		return perWorker
	})
	if res.TotalOps != 8*perWorker {
		t.Fatalf("ops = %d", res.TotalOps)
	}
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	for id := 0; id < 8; id++ {
		base := uint64(id) * 1_000_000
		for i := uint64(0); i < perWorker; i += 17 {
			v, ok, err := cl.Get(clk, base+i)
			if err != nil || !ok || v != base+i {
				t.Fatalf("key %d: %d %v %v", base+i, v, ok, err)
			}
		}
	}
}

func TestBloomFilter(t *testing.T) {
	keys := []uint64{1, 5, 9, 1000, 77777}
	f := buildBloom(keys)
	for _, k := range keys {
		if !bloomMaybe(f, k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	fp := 0
	for k := uint64(2_000_000); k < 2_001_000; k++ {
		if bloomMaybe(f, k) {
			fp++
		}
	}
	if fp > 500 {
		t.Fatalf("bloom useless: %d/1000 false positives", fp)
	}
	if !bloomMaybe(nil, 1) {
		t.Fatal("nil filter must admit everything")
	}
}

func TestRunMetaCodec(t *testing.T) {
	r := &run{addr: 4096, count: 33, min: 2, max: 999, bloom: []uint64{1, 2, 3}, blockMins: []uint64{2, 500}}
	got, err := decodeRunMeta(encodeRunMeta(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.addr != r.addr || got.count != r.count || got.min != r.min || got.max != r.max ||
		len(got.bloom) != 3 || got.bloom[2] != 3 || len(got.blockMins) != 2 || got.blockMins[1] != 500 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := decodeRunMeta([]byte{1, 2, 3}); err == nil {
		t.Fatal("short meta accepted")
	}
}

func TestGetUsesFewRDMAOps(t *testing.T) {
	opt := Options{Shards: 1, MemtableEntries: 128, CompactAt: 3, RemoteCompaction: true}
	tr := newTree(t, opt)
	cl := tr.Attach(nil)
	clk := sim.NewClock()
	for i := uint64(0); i < 1000; i++ {
		cl.Put(clk, i, i)
	}
	var st rdma.Stats
	cl2 := tr.Attach(&st)
	if _, ok, _ := cl2.Get(sim.NewClock(), 500); !ok {
		t.Fatal("missing key")
	}
	if ops := st.Ops.Load() + st.RPCs.Load(); ops > 3 {
		t.Fatalf("point lookup used %d fabric ops", ops)
	}
}
