package lsm

import (
	"encoding/binary"
	"sort"

	"github.com/disagglab/disagg/internal/sim"
)

// Entry is one key-value pair returned by Scan.
type Entry struct {
	Key   uint64
	Value uint64
}

// Scan returns the live entries with lo <= key < hi in ascending key
// order, merging the memtables and every run newest-first so the freshest
// version of each key wins and tombstones suppress older versions. Each
// overlapping run costs the RDMA reads for its intersecting key range.
func (c *Client) Scan(clk *sim.Clock, lo, hi uint64) ([]Entry, error) {
	if hi <= lo {
		return nil, nil
	}
	// Newest version per key across all shards.
	newest := make(map[uint64]uint64) // key -> value (incl. tombstones)
	settled := make(map[uint64]bool)  // key decided by a newer source
	for _, s := range c.t.shards {
		s.mu.Lock()
		for k, v := range s.mem {
			if k >= lo && k < hi && !settled[k] {
				newest[k] = v
				settled[k] = true
			}
		}
		clk.Advance(c.t.cfg.DRAM.Cost(len(s.mem) / 8 * entrySize))
		runs := make([]*run, len(s.runs))
		copy(runs, s.runs)
		s.mu.Unlock()
		// Runs newest-first; a key found in a newer run shadows older.
		for _, r := range runs {
			if r.count == 0 || r.max < lo || r.min >= hi {
				continue
			}
			ents, err := c.scanRun(clk, r, lo, hi)
			if err != nil {
				return nil, err
			}
			for _, e := range ents {
				if !settled[e.Key] {
					newest[e.Key] = e.Value
					settled[e.Key] = true
				}
			}
		}
		// Reset the settled set per shard? No: shards hold disjoint key
		// sets (hash sharding), so cross-shard shadowing cannot occur.
	}
	out := make([]Entry, 0, len(newest))
	for k, v := range newest {
		if v == Tombstone {
			continue
		}
		out = append(out, Entry{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	clk.Advance(c.t.cfg.CPU.Cost(len(out) * entrySize))
	return out, nil
}

// scanRun reads the run's entries intersecting [lo, hi) with one RDMA read
// spanning the bracketing blocks.
func (c *Client) scanRun(clk *sim.Clock, r *run, lo, hi uint64) ([]Entry, error) {
	// First block that could contain lo.
	b := sort.Search(len(r.blockMins), func(i int) bool { return r.blockMins[i] > lo }) - 1
	if b < 0 {
		b = 0
	}
	start := b * blockEntries
	// Last block whose min is below hi.
	e := sort.Search(len(r.blockMins), func(i int) bool { return r.blockMins[i] >= hi })
	end := e * blockEntries
	if end > r.count {
		end = r.count
	}
	if start >= end {
		return nil, nil
	}
	buf := make([]byte, (end-start)*entrySize)
	if err := c.qp.Read(clk, r.addr+uint64(start*entrySize), buf); err != nil {
		return nil, err
	}
	var out []Entry
	for i := 0; i < end-start; i++ {
		k := binary.LittleEndian.Uint64(buf[i*entrySize:])
		if k < lo {
			continue
		}
		if k >= hi {
			break
		}
		out = append(out, Entry{Key: k, Value: binary.LittleEndian.Uint64(buf[i*entrySize+8:])})
	}
	return out, nil
}
