package bptree

import (
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

func newTree(t *testing.T, opt Options) *Tree {
	t.Helper()
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 64<<20)
	tr, err := New(cfg, pool, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPutGetSingleLeaf(t *testing.T) {
	tr := newTree(t, Sherman())
	cl := tr.Attach(1, nil)
	clk := sim.NewClock()
	for i := uint64(1); i <= 10; i++ {
		if err := cl.Put(clk, i*10, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		v, ok, err := cl.Get(clk, i*10)
		if err != nil || !ok || v != i {
			t.Fatalf("get %d: %d %v %v", i*10, v, ok, err)
		}
	}
	if _, ok, _ := cl.Get(clk, 5); ok {
		t.Fatal("phantom key")
	}
}

func TestUpdateExisting(t *testing.T) {
	tr := newTree(t, Sherman())
	cl := tr.Attach(1, nil)
	clk := sim.NewClock()
	cl.Put(clk, 1, 100)
	cl.Put(clk, 1, 200)
	v, ok, _ := cl.Get(clk, 1)
	if !ok || v != 200 {
		t.Fatalf("after update: %d %v", v, ok)
	}
}

func TestSplitsSequential(t *testing.T) {
	for _, opt := range []Options{Sherman(), Naive()} {
		tr := newTree(t, opt)
		cl := tr.Attach(1, nil)
		clk := sim.NewClock()
		const n = 2000
		for i := uint64(0); i < n; i++ {
			if err := cl.Put(clk, i, i*2); err != nil {
				t.Fatalf("opt %+v put %d: %v", opt, i, err)
			}
		}
		for i := uint64(0); i < n; i++ {
			v, ok, err := cl.Get(clk, i)
			if err != nil || !ok || v != i*2 {
				t.Fatalf("opt %+v get %d: %d %v %v", opt, i, v, ok, err)
			}
		}
	}
}

func TestSplitsRandomOrder(t *testing.T) {
	tr := newTree(t, Sherman())
	cl := tr.Attach(1, nil)
	clk := sim.NewClock()
	const seed = 3
	t.Logf("seed=%d", seed)
	r := sim.NewRand(seed, 0)
	keys := r.Perm(3000)
	for _, k := range keys {
		if err := cl.Put(clk, uint64(k)+1, uint64(k)*7); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for _, k := range keys {
		v, ok, err := cl.Get(clk, uint64(k)+1)
		if err != nil || !ok || v != uint64(k)*7 {
			t.Fatalf("get %d: %d %v %v", k, v, ok, err)
		}
	}
}

func TestConcurrentInsertsDisjointRanges(t *testing.T) {
	tr := newTree(t, Sherman())
	const perWorker = 400
	res := sim.RunGroup(8, func(id int, clk *sim.Clock) int {
		cl := tr.Attach(uint64(id+1), nil)
		base := uint64(id)*1_000_000 + 1
		for i := uint64(0); i < perWorker; i++ {
			if err := cl.Put(clk, base+i, base+i); err != nil {
				t.Errorf("worker %d put: %v", id, err)
				return int(i)
			}
		}
		return perWorker
	})
	if res.TotalOps != 8*perWorker {
		t.Fatalf("completed %d/%d", res.TotalOps, 8*perWorker)
	}
	cl := tr.Attach(99, nil)
	clk := sim.NewClock()
	for id := 0; id < 8; id++ {
		base := uint64(id)*1_000_000 + 1
		for i := uint64(0); i < perWorker; i++ {
			v, ok, err := cl.Get(clk, base+i)
			if err != nil || !ok || v != base+i {
				t.Fatalf("key %d: %d %v %v", base+i, v, ok, err)
			}
		}
	}
}

func TestConcurrentMixedReadWrite(t *testing.T) {
	tr := newTree(t, Sherman())
	seedCl := tr.Attach(100, nil)
	seedClk := sim.NewClock()
	for i := uint64(1); i <= 500; i++ {
		seedCl.Put(seedClk, i, i)
	}
	res := sim.RunGroup(8, func(id int, clk *sim.Clock) int {
		cl := tr.Attach(uint64(id+1), nil)
		r := sim.NewRand(77, id)
		ops := 0
		for i := 0; i < 300; i++ {
			k := uint64(r.Int63n(500)) + 1
			if r.Intn(2) == 0 {
				if err := cl.Put(clk, k, k*10); err != nil {
					t.Errorf("put: %v", err)
					return ops
				}
			} else {
				_, ok, err := cl.Get(clk, k)
				if err != nil {
					t.Errorf("get: %v", err)
					return ops
				}
				if !ok {
					t.Errorf("key %d vanished", k)
					return ops
				}
			}
			ops++
		}
		return ops
	})
	if res.TotalOps != 2400 {
		t.Fatalf("ops = %d", res.TotalOps)
	}
}

func TestShermanCheaperThanNaive(t *testing.T) {
	// E11 ablation shape: Sherman's optimistic reads + batched writes +
	// on-chip locks must beat the lock-coupled unbatched baseline.
	run := func(opt Options) sim.GroupResult {
		cfg := sim.DefaultConfig()
		pool := memnode.New(cfg, "m0", 64<<20)
		tr, _ := New(cfg, pool, opt)
		return sim.RunGroup(4, func(id int, clk *sim.Clock) int {
			cl := tr.Attach(uint64(id+1), nil)
			r := sim.NewRand(9, id)
			for i := 0; i < 400; i++ {
				k := uint64(r.Int63n(10_000)) + 1
				if r.Intn(2) == 0 {
					cl.Put(clk, k, k)
				} else {
					cl.Get(clk, k)
				}
			}
			return 400
		})
	}
	sherman := run(Sherman())
	naive := run(Naive())
	if !(sherman.MeanLatency() < naive.MeanLatency()) {
		t.Fatalf("sherman %v should beat naive %v", sherman.MeanLatency(), naive.MeanLatency())
	}
}

func TestReadOpsPerGet(t *testing.T) {
	tr := newTree(t, Sherman())
	cl := tr.Attach(1, nil)
	clk := sim.NewClock()
	for i := uint64(1); i <= 200; i++ {
		cl.Put(clk, i, i)
	}
	var st rdma.Stats
	cl2 := tr.Attach(2, &st)
	cl2.Get(sim.NewClock(), 100)
	// Tree of 200 keys with fanout 16: height 2-3, so 2-4 reads and no
	// locks for an optimistic get.
	if ops := st.Ops.Load(); ops < 2 || ops > 4 {
		t.Fatalf("get used %d ops", ops)
	}
}

func TestNodeCodecRoundTrip(t *testing.T) {
	var n node
	n.addr = 4096
	n.version = 8
	n.count = 3
	n.leaf = true
	n.low, n.high = 5, 500
	n.keys = [Fanout]uint64{10, 20, 30}
	n.vals = [Fanout]uint64{1, 2, 3}
	got := decodeNode(n.addr, encodeNode(&n))
	if got.count != 3 || !got.leaf || got.low != 5 || got.high != 500 ||
		got.keys[1] != 20 || got.vals[2] != 3 || got.version != n.version {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCoversFences(t *testing.T) {
	n := node{low: 10, high: 20}
	if n.covers(9) || !n.covers(10) || !n.covers(19) || n.covers(20) {
		t.Fatal("fence semantics wrong")
	}
}
