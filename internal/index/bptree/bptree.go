// Package bptree implements a B+tree on disaggregated memory in the style
// of Sherman (§3.1): tree nodes live in the memory pool; readers traverse
// with one-sided reads validated by front/back version words (torn reads
// retry); writers acquire a per-node lock word with RDMA CAS, apply their
// change with a doorbell-batched write, bump the version, and release.
//
// The package also exposes the "naive" configuration used as the E11
// baseline — lock-coupled reads (every node read takes and releases the
// node lock) and unbatched writes — so the benefit of Sherman's techniques
// is measurable as an ablation.
package bptree

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// Fanout is the number of keys per node.
const Fanout = 16

// Node layout (all words little-endian):
//
//	[0]   version (front) — odd while a write is in progress
//	[1]   lock word (0 free, else owner id)
//	[2]   count | isLeaf<<32
//	[3]   low fence (inclusive)
//	[4]   high fence (exclusive; ^0 means unbounded)
//	[5..5+F)     keys
//	[5+F..5+2F)  values (leaf) or child addrs (inner)
//	[5+2F]       version (back)
//
// Fence keys let a client detect that an optimistically read leaf no
// longer covers its key after a concurrent split (Sherman's fix for stale
// cached routing). The maximum key ^uint64(0) is reserved.
const (
	offVersion = 0
	offLock    = 8
	offMeta    = 16
	offLow     = 24
	offHigh    = 32
	offKeys    = 40
	offVals    = offKeys + Fanout*8
	offVerBack = offVals + Fanout*8
	nodeSize   = offVerBack + 8
)

// maxKey is the reserved upper sentinel.
const maxKey = ^uint64(0)

// Package errors.
var (
	ErrRetriesExhausted = errors.New("bptree: retries exhausted")
	ErrFull             = errors.New("bptree: node unexpectedly full")
	ErrCorrupt          = errors.New("bptree: corrupt node (lost remote memory?)")
)

// Options select which Sherman optimizations are active.
type Options struct {
	// OptimisticReads traverses with version-validated reads instead of
	// lock-coupled reads.
	OptimisticReads bool
	// BatchedWrites flushes node updates with one doorbell batch instead
	// of one verb per field group.
	BatchedWrites bool
	// OnChipLocks models Sherman's NIC-SRAM lock table: lock CAS latency
	// is a fraction of a memory CAS.
	OnChipLocks bool
}

// Sherman returns the full optimization set.
func Sherman() Options {
	return Options{OptimisticReads: true, BatchedWrites: true, OnChipLocks: true}
}

// Naive returns the lock-coupling baseline.
func Naive() Options { return Options{} }

// Tree is the shared tree handle: pool, root pointer, and a structure
// mutex used only for splits (standing in for Sherman's hierarchical SMO
// locking, which serializes structure changes but not leaf operations).
type Tree struct {
	cfg  *sim.Config
	pool *memnode.Pool
	opt  Options

	rootMu sync.RWMutex
	root   uint64 // remote addr of root node

	smo sync.Mutex
}

// New allocates an empty tree (a single empty leaf as root).
func New(cfg *sim.Config, pool *memnode.Pool, opt Options) (*Tree, error) {
	t := &Tree{cfg: cfg, pool: pool, opt: opt}
	setup := sim.NewClock()
	qp := pool.Connect(nil)
	root, err := t.allocNode(setup, qp, true)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func (t *Tree) allocNode(clk *sim.Clock, qp *rdma.QP, leaf bool) (uint64, error) {
	addr, err := t.pool.Alloc(nodeSize)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, nodeSize)
	meta := uint64(0)
	if leaf {
		meta |= 1 << 32
	}
	binary.LittleEndian.PutUint64(buf[offMeta:], meta)
	binary.LittleEndian.PutUint64(buf[offHigh:], maxKey)
	if err := qp.Write(clk, addr, buf); err != nil {
		return 0, err
	}
	return addr, nil
}

// node is the client-side decoded image of a remote node.
type node struct {
	addr    uint64
	version uint64
	count   int
	leaf    bool
	low     uint64
	high    uint64
	keys    [Fanout]uint64
	vals    [Fanout]uint64
}

// covers reports whether the node's fence range includes key.
func (n *node) covers(key uint64) bool { return key >= n.low && key < n.high }

func decodeNode(addr uint64, buf []byte) node {
	var n node
	n.addr = addr
	n.version = binary.LittleEndian.Uint64(buf[offVersion:])
	meta := binary.LittleEndian.Uint64(buf[offMeta:])
	n.count = int(uint32(meta))
	n.leaf = meta>>32 != 0
	n.low = binary.LittleEndian.Uint64(buf[offLow:])
	n.high = binary.LittleEndian.Uint64(buf[offHigh:])
	for i := 0; i < Fanout; i++ {
		n.keys[i] = binary.LittleEndian.Uint64(buf[offKeys+i*8:])
		n.vals[i] = binary.LittleEndian.Uint64(buf[offVals+i*8:])
	}
	return n
}

func encodeNode(n *node) []byte {
	buf := make([]byte, nodeSize)
	binary.LittleEndian.PutUint64(buf[offVersion:], n.version)
	meta := uint64(uint32(n.count))
	if n.leaf {
		meta |= 1 << 32
	}
	binary.LittleEndian.PutUint64(buf[offMeta:], meta)
	binary.LittleEndian.PutUint64(buf[offLow:], n.low)
	binary.LittleEndian.PutUint64(buf[offHigh:], n.high)
	for i := 0; i < Fanout; i++ {
		binary.LittleEndian.PutUint64(buf[offKeys+i*8:], n.keys[i])
		binary.LittleEndian.PutUint64(buf[offVals+i*8:], n.vals[i])
	}
	binary.LittleEndian.PutUint64(buf[offVerBack:], n.version)
	return buf
}

// Client is one compute-side user with its own QP.
type Client struct {
	t  *Tree
	qp *rdma.QP
	id uint64
	// Retries bounds optimistic-read and lock retry loops.
	Retries int
}

// Attach creates a client; stats may be nil.
func (t *Tree) Attach(id uint64, stats *rdma.Stats) *Client {
	if id == 0 {
		id = 1
	}
	return &Client{t: t, qp: t.pool.Connect(stats), id: id, Retries: 1000}
}

// lockCost is the latency of one lock CAS: cheaper with on-chip locks.
func (c *Client) lockCost() time.Duration {
	if c.t.opt.OnChipLocks {
		return c.t.cfg.RDMA.Base * 6 / 10
	}
	return c.t.cfg.RDMA.Cost(8)
}

// lockNode spins on CAS(lock: 0 -> id).
func (c *Client) lockNode(clk *sim.Clock, addr uint64) error {
	for i := 0; i < c.Retries; i++ {
		ok, err := c.t.pool.Node().Mem.CAS64(addr+offLock, 0, c.id)
		if err != nil {
			return err
		}
		clk.Advance(c.lockCost())
		if ok {
			return nil
		}
		clk.Advance(c.t.cfg.RDMA.Base / 4) // backoff
		runtime.Gosched()
	}
	return ErrRetriesExhausted
}

func (c *Client) unlockNode(clk *sim.Clock, addr uint64) error {
	if _, err := c.t.pool.Node().Mem.CAS64(addr+offLock, c.id, 0); err != nil {
		return err
	}
	clk.Advance(c.lockCost())
	return nil
}

// readNode fetches a node image. With optimistic reads the version words
// are validated (equal front/back, even); otherwise the node lock is held
// across the read (lock coupling).
func (c *Client) readNode(clk *sim.Clock, addr uint64) (node, error) {
	if c.t.opt.OptimisticReads {
		for i := 0; i < c.Retries; i++ {
			buf := make([]byte, nodeSize)
			if err := c.qp.Read(clk, addr, buf); err != nil {
				return node{}, err
			}
			front := binary.LittleEndian.Uint64(buf[offVersion:])
			back := binary.LittleEndian.Uint64(buf[offVerBack:])
			if front == back && front%2 == 0 {
				return decodeNode(addr, buf), nil
			}
			clk.Advance(c.t.cfg.RDMA.Base / 4)
			runtime.Gosched()
		}
		return node{}, ErrRetriesExhausted
	}
	// Lock-coupled read.
	if err := c.lockNode(clk, addr); err != nil {
		return node{}, err
	}
	buf := make([]byte, nodeSize)
	if err := c.qp.Read(clk, addr, buf); err != nil {
		c.unlockNode(clk, addr)
		return node{}, err
	}
	n := decodeNode(addr, buf)
	if err := c.unlockNode(clk, addr); err != nil {
		return node{}, err
	}
	return n, nil
}

// writeNode publishes a locked node update: version is bumped to odd
// before the payload and even after, so optimistic readers either see the
// old or the new image. With batching the three writes go in one doorbell.
func (c *Client) writeNode(clk *sim.Clock, n *node) error {
	n.version += 2
	buf := encodeNode(n)
	if c.t.opt.BatchedWrites {
		return c.qp.WriteBatch(clk, []rdma.WriteOp{{Addr: n.addr, Data: buf}})
	}
	// Unbatched: header, keys, values, back version as separate verbs.
	if err := c.qp.Write(clk, n.addr, buf[:offKeys]); err != nil {
		return err
	}
	if err := c.qp.Write(clk, n.addr+offKeys, buf[offKeys:offVals]); err != nil {
		return err
	}
	if err := c.qp.Write(clk, n.addr+offVals, buf[offVals:offVerBack]); err != nil {
		return err
	}
	return c.qp.Write(clk, n.addr+offVerBack, buf[offVerBack:])
}

func (t *Tree) rootAddr() uint64 {
	t.rootMu.RLock()
	defer t.rootMu.RUnlock()
	return t.root
}

// Get returns the value stored for key. A leaf that no longer covers the
// key (concurrent split moved it) triggers a retry from the root.
func (c *Client) Get(clk *sim.Clock, key uint64) (uint64, bool, error) {
	for attempt := 0; attempt < c.Retries; attempt++ {
		addr := c.t.rootAddr()
		for {
			n, err := c.readNode(clk, addr)
			if err != nil {
				return 0, false, err
			}
			if n.leaf {
				if !n.covers(key) {
					clk.Advance(c.t.cfg.RDMA.Base / 4)
					runtime.Gosched()
					break // stale routing: retry from root
				}
				for i := 0; i < n.count; i++ {
					if n.keys[i] == key {
						return n.vals[i], true, nil
					}
				}
				return 0, false, nil
			}
			next, err := childFor(&n, key)
			if err != nil {
				return 0, false, err
			}
			addr = next
		}
	}
	return 0, false, ErrRetriesExhausted
}

// childFor picks the child pointer for key in an inner node: vals[i] leads
// to keys < keys[i]; vals[count-1] is the rightmost subtree. An empty inner
// node is structurally impossible in a healthy tree (it signals lost remote
// memory) and yields 0.
func childFor(n *node, key uint64) (uint64, error) {
	if n.count == 0 {
		return 0, ErrCorrupt
	}
	for i := 0; i < n.count-1; i++ {
		if key < n.keys[i] {
			return n.vals[i], nil
		}
	}
	return n.vals[n.count-1], nil
}

// Put inserts or updates key -> val.
func (c *Client) Put(clk *sim.Clock, key, val uint64) error {
	for attempt := 0; attempt < c.Retries; attempt++ {
		leafAddr, err := c.descendToLeaf(clk, key)
		if err != nil {
			return err
		}
		if err := c.lockNode(clk, leafAddr); err != nil {
			return err
		}
		// Re-read under lock (the optimistic descent may be stale).
		buf := make([]byte, nodeSize)
		if err := c.qp.Read(clk, leafAddr, buf); err != nil {
			c.unlockNode(clk, leafAddr)
			return err
		}
		n := decodeNode(leafAddr, buf)
		if !n.leaf || !n.covers(key) {
			// Node was split/retargeted under us; retry from the root.
			c.unlockNode(clk, leafAddr)
			continue
		}
		// Update in place?
		for i := 0; i < n.count; i++ {
			if n.keys[i] == key {
				n.vals[i] = val
				err := c.writeNode(clk, &n)
				c.unlockNode(clk, leafAddr)
				return err
			}
		}
		if n.count < Fanout {
			insertSorted(&n, key, val)
			err := c.writeNode(clk, &n)
			c.unlockNode(clk, leafAddr)
			return err
		}
		// Leaf full: release and run a split under the SMO lock.
		c.unlockNode(clk, leafAddr)
		if err := c.splitAndInsert(clk, key, val); err != nil {
			return err
		}
		return nil
	}
	return ErrRetriesExhausted
}

// descendToLeaf walks inner nodes to the leaf that should hold key.
func (c *Client) descendToLeaf(clk *sim.Clock, key uint64) (uint64, error) {
	addr := c.t.rootAddr()
	for {
		n, err := c.readNode(clk, addr)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			return addr, nil
		}
		addr, err = childFor(&n, key)
		if err != nil {
			return 0, err
		}
	}
}

func insertSorted(n *node, key, val uint64) {
	i := n.count
	for i > 0 && n.keys[i-1] > key {
		n.keys[i] = n.keys[i-1]
		n.vals[i] = n.vals[i-1]
		i--
	}
	n.keys[i] = key
	n.vals[i] = val
	n.count++
}

// splitAndInsert performs a recursive split from the root under the SMO
// mutex, then inserts the key. Serializing SMOs keeps the remote structure
// consistent; leaf-level inserts stay concurrent.
func (c *Client) splitAndInsert(clk *sim.Clock, key, val uint64) error {
	c.t.smo.Lock()
	defer c.t.smo.Unlock()
	// A leaf can refill between our split and insert (concurrent
	// non-SMO writers); retry the SMO insert a few times.
	var err error
	for i := 0; i < 8; i++ {
		err = c.insertSMO(clk, key, val)
		if err != ErrFull {
			return err
		}
	}
	return err
}

// insertSMO inserts with the SMO lock held, splitting any full node on the
// descent path (preemptive splitting keeps the recursion simple).
func (c *Client) insertSMO(clk *sim.Clock, key, val uint64) error {
	// Preemptively split a full root.
	rootAddr := c.t.rootAddr()
	rn, err := c.readNode(clk, rootAddr)
	if err != nil {
		return err
	}
	if rn.count == Fanout {
		newRootAddr, err := c.splitRoot(clk, &rn)
		if err != nil {
			return err
		}
		c.t.rootMu.Lock()
		c.t.root = newRootAddr
		c.t.rootMu.Unlock()
	}
	// Descend, splitting full children before entering them.
	addr := c.t.rootAddr()
	for {
		n, err := c.readNode(clk, addr)
		if err != nil {
			return err
		}
		if n.leaf {
			if err := c.lockNode(clk, addr); err != nil {
				return err
			}
			buf := make([]byte, nodeSize)
			if err := c.qp.Read(clk, addr, buf); err != nil {
				c.unlockNode(clk, addr)
				return err
			}
			fresh := decodeNode(addr, buf)
			for i := 0; i < fresh.count; i++ {
				if fresh.keys[i] == key {
					fresh.vals[i] = val
					err := c.writeNode(clk, &fresh)
					c.unlockNode(clk, addr)
					return err
				}
			}
			if fresh.count == Fanout {
				c.unlockNode(clk, addr)
				return ErrFull
			}
			insertSorted(&fresh, key, val)
			err = c.writeNode(clk, &fresh)
			c.unlockNode(clk, addr)
			return err
		}
		childAddr, err := childFor(&n, key)
		if err != nil {
			return err
		}
		cn, err := c.readNode(clk, childAddr)
		if err != nil {
			return err
		}
		if cn.count == Fanout {
			if err := c.splitChild(clk, &n, &cn); err != nil {
				return err
			}
			// Re-read the parent to route correctly.
			continue
		}
		addr = childAddr
	}
}

// splitRoot splits a full root, returning the new root address.
func (c *Client) splitRoot(clk *sim.Clock, rn *node) (uint64, error) {
	leftAddr, rightAddr, sepKey, err := c.splitNode(clk, rn)
	if err != nil {
		return 0, err
	}
	newRoot, err := c.allocNode(clk, false)
	if err != nil {
		return 0, err
	}
	nr := node{addr: newRoot, leaf: false, count: 2, low: 0, high: maxKey}
	nr.keys[0] = sepKey
	nr.keys[1] = maxKey
	nr.vals[0] = leftAddr
	nr.vals[1] = rightAddr
	if err := c.lockNode(clk, newRoot); err != nil {
		return 0, err
	}
	err = c.writeNode(clk, &nr)
	c.unlockNode(clk, newRoot)
	return newRoot, err
}

func (c *Client) allocNode(clk *sim.Clock, leaf bool) (uint64, error) {
	return c.t.allocNode(clk, c.qp, leaf)
}

// splitNode splits n into (reused n = left, new right); returns the
// separator key (first key of right).
func (c *Client) splitNode(clk *sim.Clock, n *node) (left, right uint64, sep uint64, err error) {
	rightAddr, err := c.allocNode(clk, n.leaf)
	if err != nil {
		return 0, 0, 0, err
	}
	mid := n.count / 2
	var rn node
	rn.addr = rightAddr
	rn.leaf = n.leaf
	rn.count = n.count - mid
	copy(rn.keys[:], n.keys[mid:n.count])
	copy(rn.vals[:], n.vals[mid:n.count])
	if n.leaf {
		// Leaf entries are real keys: the right sibling starts at its
		// first key.
		sep = n.keys[mid]
	} else {
		// Inner entries are (upperBound -> child): the left half's new
		// upper bound is its last entry's bound.
		sep = n.keys[mid-1]
	}
	rn.low = sep
	rn.high = n.high

	if err := c.lockNode(clk, n.addr); err != nil {
		return 0, 0, 0, err
	}
	ln := *n
	ln.count = mid
	ln.high = sep
	for i := mid; i < Fanout; i++ {
		ln.keys[i], ln.vals[i] = 0, 0
	}
	if err := c.writeNode(clk, &ln); err != nil {
		c.unlockNode(clk, n.addr)
		return 0, 0, 0, err
	}
	c.unlockNode(clk, n.addr)

	if err := c.lockNode(clk, rightAddr); err != nil {
		return 0, 0, 0, err
	}
	if err := c.writeNode(clk, &rn); err != nil {
		c.unlockNode(clk, rightAddr)
		return 0, 0, 0, err
	}
	c.unlockNode(clk, rightAddr)
	return n.addr, rightAddr, sep, nil
}

// splitChild splits full child cn of parent pn and updates the parent's
// routing entries.
func (c *Client) splitChild(clk *sim.Clock, pn *node, cn *node) error {
	leftAddr, rightAddr, sep, err := c.splitNode(clk, cn)
	if err != nil {
		return err
	}
	if err := c.lockNode(clk, pn.addr); err != nil {
		return err
	}
	buf := make([]byte, nodeSize)
	if err := c.qp.Read(clk, pn.addr, buf); err != nil {
		c.unlockNode(clk, pn.addr)
		return err
	}
	fresh := decodeNode(pn.addr, buf)
	// Find the child entry and split it into two routing entries:
	// [.. (sep -> left), (oldKey -> right) ..].
	for i := 0; i < fresh.count; i++ {
		if fresh.vals[i] == leftAddr {
			if fresh.count == Fanout {
				c.unlockNode(clk, pn.addr)
				return ErrFull
			}
			copy(fresh.keys[i+1:], fresh.keys[i:fresh.count])
			copy(fresh.vals[i+1:], fresh.vals[i:fresh.count])
			fresh.keys[i] = sep
			fresh.vals[i] = leftAddr
			fresh.vals[i+1] = rightAddr
			fresh.count++
			err := c.writeNode(clk, &fresh)
			c.unlockNode(clk, pn.addr)
			return err
		}
	}
	c.unlockNode(clk, pn.addr)
	return ErrFull
}
