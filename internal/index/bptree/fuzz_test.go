package bptree

import (
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

// FuzzBPTree interprets the fuzz input as an op script (3 bytes per op:
// opcode, key, value) and cross-checks the tree against a map model after
// every step. Small key ranges force splits, SMOs and overwrites.
func FuzzBPTree(f *testing.F) {
	f.Add([]byte{0, 1, 10, 0, 2, 20, 1, 1, 0})
	f.Add([]byte{0, 200, 1, 0, 100, 2, 0, 50, 3, 1, 200, 0, 1, 99, 0})
	seed := make([]byte, 0, 3*64)
	for i := 0; i < 64; i++ {
		seed = append(seed, byte(i%2), byte(i*7), byte(i*13))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*2048 {
			data = data[:3*2048]
		}
		for _, opt := range []Options{Sherman(), Naive()} {
			tr := newTree(t, opt)
			cl := tr.Attach(1, nil)
			clk := sim.NewClock()
			model := make(map[uint64]uint64)
			for i := 0; i+2 < len(data); i += 3 {
				op, kb, vb := data[i], data[i+1], data[i+2]
				key := uint64(kb) + 1 // keys start at 1
				switch op % 2 {
				case 0:
					val := uint64(vb) + 1
					if err := cl.Put(clk, key, val); err != nil {
						t.Fatalf("opt %+v op %d put(%d,%d): %v", opt, i/3, key, val, err)
					}
					model[key] = val
				case 1:
					got, ok, err := cl.Get(clk, key)
					if err != nil {
						t.Fatalf("opt %+v op %d get(%d): %v", opt, i/3, key, err)
					}
					want, wantOK := model[key]
					if ok != wantOK || (ok && got != want) {
						t.Fatalf("opt %+v op %d key %d: tree (%d,%v) model (%d,%v)",
							opt, i/3, key, got, ok, want, wantOK)
					}
				}
			}
			for k, want := range model {
				got, ok, err := cl.Get(clk, k)
				if err != nil || !ok || got != want {
					t.Fatalf("opt %+v final key %d: (%d,%v,%v) want %d", opt, k, got, ok, err, want)
				}
			}
		}
	})
}
