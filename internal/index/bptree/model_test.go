package bptree

import (
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// TestModelEquivalence runs a long random op sequence against the tree and
// a map model, comparing after every operation (single-client: the tree
// must be sequentially consistent).
func TestModelEquivalence(t *testing.T) {
	for _, opt := range []Options{Sherman(), Naive(), {OptimisticReads: true}, {BatchedWrites: true}} {
		tr := newTree(t, opt)
		cl := tr.Attach(1, nil)
		clk := sim.NewClock()
		model := make(map[uint64]uint64)
		const seed = 1234
		t.Logf("seed=%d", seed)
		r := sim.NewRand(seed, 0)
		for step := 0; step < 4000; step++ {
			k := uint64(r.Int63n(600)) + 1
			if r.Intn(2) == 0 {
				v := uint64(r.Int63())
				if err := cl.Put(clk, k, v); err != nil {
					t.Fatalf("opt %+v step %d put: %v", opt, step, err)
				}
				model[k] = v
			} else {
				got, ok, err := cl.Get(clk, k)
				if err != nil {
					t.Fatalf("opt %+v step %d get: %v", opt, step, err)
				}
				want, wantOK := model[k]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("opt %+v step %d key %d: tree (%d,%v) model (%d,%v)",
						opt, step, k, got, ok, want, wantOK)
				}
			}
		}
		// Full verification sweep.
		for k, want := range model {
			got, ok, err := cl.Get(clk, k)
			if err != nil || !ok || got != want {
				t.Fatalf("final sweep key %d: (%d,%v,%v) want %d", k, got, ok, err, want)
			}
		}
	}
}

// TestSortedIteration checks the structural B+tree invariant: walking
// leaves via descending key probes returns keys in sorted order with
// correct fences.
func TestFenceInvariants(t *testing.T) {
	tr := newTree(t, Sherman())
	cl := tr.Attach(1, nil)
	clk := sim.NewClock()
	for i := uint64(1); i <= 1000; i++ {
		cl.Put(clk, i*3, i)
	}
	// Every key must live in a leaf whose fences cover it and whose keys
	// are within the fences.
	for i := uint64(1); i <= 1000; i++ {
		key := i * 3
		addr, err := cl.descendToLeaf(clk, key)
		if err != nil {
			t.Fatal(err)
		}
		n, err := cl.readNode(clk, addr)
		if err != nil {
			t.Fatal(err)
		}
		if !n.covers(key) {
			t.Fatalf("leaf [%d,%d) does not cover key %d", n.low, n.high, key)
		}
		for j := 0; j < n.count; j++ {
			if n.keys[j] < n.low || n.keys[j] >= n.high {
				t.Fatalf("leaf [%d,%d) holds out-of-fence key %d", n.low, n.high, n.keys[j])
			}
			if j > 0 && n.keys[j] <= n.keys[j-1] {
				t.Fatalf("leaf keys unsorted: %v", n.keys[:n.count])
			}
		}
	}
}

func TestMemoryNodeFailurePropagates(t *testing.T) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 1<<20)
	tr, err := New(cfg, pool, Sherman())
	if err != nil {
		t.Fatal(err)
	}
	cl := tr.Attach(1, nil)
	clk := sim.NewClock()
	cl.Put(clk, 1, 1)
	pool.Node().Fail()
	if _, _, err := cl.Get(clk, 1); err == nil {
		t.Fatal("get on failed memory node should error")
	}
	if err := cl.Put(clk, 2, 2); err == nil {
		t.Fatal("put on failed memory node should error")
	}
	// DRAM pool: contents are gone after restart (no fate sharing, but
	// volatility is real — §3.1's reliability challenge). The client
	// detects the wiped structure instead of returning bogus data.
	pool.Node().Restart()
	if _, _, err := cl.Get(clk, 1); err != ErrCorrupt {
		t.Fatalf("get on wiped memory = %v, want ErrCorrupt", err)
	}
	_ = rdma.ErrNodeFailed
}

func TestPoolExhaustionSurfaced(t *testing.T) {
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "tiny", 2*nodeSize)
	tr, err := New(cfg, pool, Sherman())
	if err != nil {
		t.Fatal(err)
	}
	cl := tr.Attach(1, nil)
	clk := sim.NewClock()
	// Fill the single leaf, then the split must fail with OOM.
	var sawErr error
	for i := uint64(1); i <= Fanout+1; i++ {
		if err := cl.Put(clk, i, i); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Fatal("split in an exhausted pool should fail")
	}
}
