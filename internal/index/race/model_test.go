package race

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

// TestModelEquivalence runs a long random op sequence against the hash and
// a map model, across directory depths that force splits mid-sequence.
func TestModelEquivalence(t *testing.T) {
	for _, buckets := range []uint64{4, 64} {
		h := newHash(t, 1, buckets)
		cl := h.Attach(1, nil)
		clk := sim.NewClock()
		model := make(map[uint64][]byte)
		const seed = 777
		t.Logf("seed=%d", seed)
		r := sim.NewRand(seed, 0)
		val := func() []byte {
			v := make([]byte, 8+r.Intn(24))
			r.Read(v)
			return v
		}
		for step := 0; step < 5000; step++ {
			k := uint64(r.Int63n(400))
			switch r.Intn(4) {
			case 0, 1:
				v := val()
				if err := cl.Put(clk, k, v); err != nil {
					t.Fatalf("buckets %d step %d put: %v", buckets, step, err)
				}
				model[k] = v
			case 2:
				ok, err := cl.Delete(clk, k)
				if err != nil {
					t.Fatalf("buckets %d step %d delete: %v", buckets, step, err)
				}
				if _, want := model[k]; ok != want {
					t.Fatalf("buckets %d step %d delete(%d) = %v, model %v", buckets, step, k, ok, want)
				}
				delete(model, k)
			default:
				got, ok, err := cl.Get(clk, k)
				if err != nil {
					t.Fatalf("buckets %d step %d get: %v", buckets, step, err)
				}
				want, wantOK := model[k]
				if ok != wantOK || (ok && !bytes.Equal(got, want)) {
					t.Fatalf("buckets %d step %d key %d: hash (%q,%v) model (%q,%v)",
						buckets, step, k, got, ok, want, wantOK)
				}
			}
		}
		for k, want := range model {
			got, ok, err := cl.Get(clk, k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("final key %d: (%q,%v,%v) want %q", k, got, ok, err, want)
			}
		}
	}
}

func TestDirectoryGrowthPreservesEverything(t *testing.T) {
	// Insert monotone keys with big values so splits cascade, verifying
	// after each growth step that no key was dropped.
	h := newHash(t, 1, 2)
	cl := h.Attach(1, nil)
	clk := sim.NewClock()
	depth := h.GlobalDepth()
	inserted := uint64(0)
	for inserted < 1500 {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint64(v, inserted^0xDEAD)
		if err := cl.Put(clk, inserted, v); err != nil {
			t.Fatalf("put %d: %v", inserted, err)
		}
		inserted++
		if d := h.GlobalDepth(); d != depth {
			depth = d
			// Verify the whole keyspace after each directory double.
			for k := uint64(0); k < inserted; k++ {
				got, ok, err := cl.Get(clk, k)
				if err != nil || !ok {
					t.Fatalf("after growth to depth %d: key %d missing (%v)", d, k, err)
				}
				if binary.LittleEndian.Uint64(got) != k^0xDEAD {
					t.Fatalf("after growth to depth %d: key %d corrupt", d, k)
				}
			}
		}
	}
	if depth < 2 {
		t.Fatalf("test never grew the directory (depth %d)", depth)
	}
}

func TestNodeFailurePropagates(t *testing.T) {
	h := newHash(t, 2, 16)
	cl := h.Attach(1, nil)
	clk := sim.NewClock()
	cl.Put(clk, 1, []byte("x"))
	h.pool.Node().Fail()
	if _, _, err := cl.Get(clk, 1); err == nil {
		t.Fatal("get on failed node should error")
	}
	if err := cl.Put(clk, 2, []byte("y")); err == nil {
		t.Fatal("put on failed node should error")
	}
}
