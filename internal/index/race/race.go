// Package race implements RACE-style one-sided RDMA-conscious extendible
// hashing (§3.1): the hash structure lives entirely in disaggregated
// memory, and compute-side clients search and update it with one-sided
// verbs only — reads fetch whole buckets, inserts allocate a KV block,
// write it, and publish it with a single 8-byte CAS into a bucket slot.
// Memory-node CPUs are never involved on the data path (lock-free).
//
// Extendible growth is modeled with a client-cached directory of subtables;
// a full bucket triggers a subtable split that rehashes entries via
// one-sided reads/writes and publishes the new subtable with a directory
// CAS. Torn bucket reads are tolerated: every slot is word-atomic and
// every match is verified by reading the full KV block and comparing keys.
package race

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// BucketSlots is the number of slots per bucket; a bucket (plus its pair
// bucket) is fetched with one RDMA read.
const BucketSlots = 8

// slot word encoding: [fingerprint:16 | valLen:16 | addr:32].
func packSlot(fp uint16, vlen uint16, addr uint32) uint64 {
	return uint64(fp)<<48 | uint64(vlen)<<32 | uint64(addr)
}

func unpackSlot(w uint64) (fp uint16, vlen uint16, addr uint32) {
	return uint16(w >> 48), uint16(w >> 32), uint32(w)
}

// Package errors.
var (
	ErrValueTooLarge = errors.New("race: value too large")
	ErrTableFull     = errors.New("race: bucket full after split limit")
)

const kvHeader = 8 // key

type subtable struct {
	addr       uint64 // base of bucket array in remote memory
	localDepth uint8
	buckets    uint64 // number of buckets
}

// Hash is the shared state of one RACE hash index: the memory pool that
// hosts it and the client-cached directory. Clients attach with Attach and
// then operate independently; directory mutations (splits) are coordinated
// through the directory mutex, standing in for the directory stored on the
// memory node and updated with CAS.
type Hash struct {
	cfg  *sim.Config
	pool *memnode.Pool

	mu          sync.RWMutex
	globalDepth uint8
	dir         []*subtable // len = 1<<globalDepth

	bucketsPerSub uint64
}

// New creates a RACE hash hosted on the given pool with an initial
// directory of 1<<initialDepth subtables, each holding bucketsPerSub
// buckets of BucketSlots slots.
func New(cfg *sim.Config, pool *memnode.Pool, initialDepth uint8, bucketsPerSub uint64) (*Hash, error) {
	if bucketsPerSub == 0 {
		bucketsPerSub = 64
	}
	h := &Hash{cfg: cfg, pool: pool, globalDepth: initialDepth, bucketsPerSub: bucketsPerSub}
	n := 1 << initialDepth
	for i := 0; i < n; i++ {
		st, err := h.newSubtable(initialDepth)
		if err != nil {
			return nil, err
		}
		h.dir = append(h.dir, st)
	}
	return h, nil
}

func (h *Hash) newSubtable(depth uint8) (*subtable, error) {
	size := h.bucketsPerSub * BucketSlots * 8
	addr, err := h.pool.Alloc(size)
	if err != nil {
		return nil, err
	}
	return &subtable{addr: addr, localDepth: depth, buckets: h.bucketsPerSub}, nil
}

// GlobalDepth reports the current directory depth (test/metrics hook).
func (h *Hash) GlobalDepth() uint8 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.globalDepth
}

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

// Client is one compute-side user of the index, with its own queue pair.
type Client struct {
	h  *Hash
	qp *rdma.QP
	id uint64
	// Retries bounds CAS retry loops under contention.
	Retries int
}

// Attach creates a client. stats may be nil.
func (h *Hash) Attach(id uint64, stats *rdma.Stats) *Client {
	return &Client{h: h, qp: h.pool.Connect(stats), id: id, Retries: 64}
}

// lookupSub resolves the subtable and bucket address for a key from the
// cached directory (free: directory is client-cached in RACE).
func (c *Client) lookupSub(key uint64) (*subtable, uint64) {
	hv := hash64(key)
	c.h.mu.RLock()
	st := c.h.dir[hv&((1<<c.h.globalDepth)-1)]
	c.h.mu.RUnlock()
	b := (hv >> 16) % st.buckets
	return st, st.addr + b*BucketSlots*8
}

// readBucket fetches the bucket's slot words with one RDMA read.
func (c *Client) readBucket(clk *sim.Clock, addr uint64) ([BucketSlots]uint64, error) {
	var buf [BucketSlots * 8]byte
	var out [BucketSlots]uint64
	if err := c.qp.Read(clk, addr, buf[:]); err != nil {
		return out, err
	}
	for i := 0; i < BucketSlots; i++ {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return out, nil
}

// Get looks up the key: one bucket read plus one KV-block read per
// fingerprint match (false positives are re-checked by key comparison).
func (c *Client) Get(clk *sim.Clock, key uint64) ([]byte, bool, error) {
	hv := hash64(key)
	fp := uint16(hv >> 48)
	if fp == 0 {
		fp = 1
	}
	_, baddr := c.lookupSub(key)
	slots, err := c.readBucket(clk, baddr)
	if err != nil {
		return nil, false, err
	}
	for i := 0; i < BucketSlots; i++ {
		sfp, vlen, kaddr := unpackSlot(slots[i])
		if slots[i] == 0 || sfp != fp {
			continue
		}
		blk := make([]byte, kvHeader+int(vlen))
		if err := c.qp.Read(clk, uint64(kaddr), blk); err != nil {
			return nil, false, err
		}
		if binary.LittleEndian.Uint64(blk) != key {
			continue // fingerprint collision
		}
		return blk[kvHeader:], true, nil
	}
	return nil, false, nil
}

// Put inserts or updates the key. The new KV block is written first, then
// published with one CAS (insert into an empty slot, or swap of the
// existing slot for an update). Lock-free: a lost CAS is retried against
// the fresh bucket image.
func (c *Client) Put(clk *sim.Clock, key uint64, val []byte) error {
	if len(val) > 0xFFFF {
		return ErrValueTooLarge
	}
	hv := hash64(key)
	fp := uint16(hv >> 48)
	if fp == 0 {
		fp = 1
	}
	// Write the KV block out of place.
	blkAddr, err := c.h.pool.Alloc(uint64(kvHeader + len(val)))
	if err != nil {
		return err
	}
	blk := make([]byte, kvHeader+len(val))
	binary.LittleEndian.PutUint64(blk, key)
	copy(blk[kvHeader:], val)
	if err := c.qp.Write(clk, blkAddr, blk); err != nil {
		return err
	}
	newSlot := packSlot(fp, uint16(len(val)), uint32(blkAddr))

	for attempt := 0; attempt < c.Retries; attempt++ {
		st, baddr := c.lookupSub(key)
		slots, err := c.readBucket(clk, baddr)
		if err != nil {
			return err
		}
		// Update path: CAS the matching slot.
		updated, done, err := c.tryReplace(clk, baddr, slots, key, fp, newSlot)
		if err != nil {
			return err
		}
		if done {
			// The replaced KV block is reclaimed lazily (RACE defers
			// frees with epochs so concurrent readers never chase a
			// reused block; we model that by leaking the block).
			_ = updated
			return nil
		}
		// Insert path: CAS the first empty slot.
		inserted := false
		for i := 0; i < BucketSlots; i++ {
			if slots[i] != 0 {
				continue
			}
			ok, err := c.qp.CAS(clk, baddr+uint64(i*8), 0, newSlot)
			if err != nil {
				return err
			}
			if ok {
				inserted = true
			}
			break // on CAS failure re-read the bucket
		}
		if inserted {
			return nil
		}
		// Bucket had no empty slot: split the subtable and retry.
		full := true
		for i := 0; i < BucketSlots; i++ {
			if slots[i] == 0 {
				full = false
				break
			}
		}
		if full {
			if err := c.split(clk, st); err != nil {
				return err
			}
		}
		clk.Advance(c.h.cfg.RDMA.Base / 2) // backoff
		runtime.Gosched()
	}
	return ErrTableFull
}

// tryReplace CASes the slot holding key (matched by fingerprint + key
// verification) to newSlot. Returns the old slot word when replaced.
func (c *Client) tryReplace(clk *sim.Clock, baddr uint64, slots [BucketSlots]uint64, key uint64, fp uint16, newSlot uint64) (old uint64, done bool, err error) {
	for i := 0; i < BucketSlots; i++ {
		sfp, vlen, kaddr := unpackSlot(slots[i])
		if slots[i] == 0 || sfp != fp {
			continue
		}
		hdr := make([]byte, kvHeader)
		if err := c.qp.Read(clk, uint64(kaddr), hdr); err != nil {
			return 0, false, err
		}
		if binary.LittleEndian.Uint64(hdr) != key {
			continue
		}
		_ = vlen
		ok, err := c.qp.CAS(clk, baddr+uint64(i*8), slots[i], newSlot)
		if err != nil {
			return 0, false, err
		}
		if ok {
			return slots[i], true, nil
		}
		return 0, false, nil // lost the race; caller re-reads
	}
	return 0, false, nil
}

// Delete removes the key by CASing its slot to zero.
func (c *Client) Delete(clk *sim.Clock, key uint64) (bool, error) {
	hv := hash64(key)
	fp := uint16(hv >> 48)
	if fp == 0 {
		fp = 1
	}
	for attempt := 0; attempt < c.Retries; attempt++ {
		_, baddr := c.lookupSub(key)
		slots, err := c.readBucket(clk, baddr)
		if err != nil {
			return false, err
		}
		found := false
		for i := 0; i < BucketSlots; i++ {
			sfp, _, kaddr := unpackSlot(slots[i])
			if slots[i] == 0 || sfp != fp {
				continue
			}
			hdr := make([]byte, kvHeader)
			if err := c.qp.Read(clk, uint64(kaddr), hdr); err != nil {
				return false, err
			}
			if binary.LittleEndian.Uint64(hdr) != key {
				continue
			}
			ok, err := c.qp.CAS(clk, baddr+uint64(i*8), slots[i], 0)
			if err != nil {
				return false, err
			}
			if ok {
				// Block reclaimed lazily (epoch-deferred free).
				return true, nil
			}
			found = true // lost race; retry
			break
		}
		if !found {
			return false, nil
		}
	}
	return false, ErrTableFull
}

// split doubles the directory (if needed) and splits st into two
// subtables, rehashing its entries with one-sided reads/writes. The
// directory mutex stands in for the memory-node directory lock.
func (c *Client) split(clk *sim.Clock, st *subtable) error {
	h := c.h
	h.mu.Lock()
	defer h.mu.Unlock()
	// Someone else may have split already: check st is still referenced.
	still := false
	for _, d := range h.dir {
		if d == st {
			still = true
			break
		}
	}
	if !still {
		return nil
	}
	if st.localDepth == h.globalDepth {
		if h.globalDepth >= 24 {
			return ErrTableFull
		}
		// Double the directory (client-side metadata; one directory
		// write on the memory node).
		newDir := make([]*subtable, len(h.dir)*2)
		copy(newDir, h.dir)
		copy(newDir[len(h.dir):], h.dir)
		h.dir = newDir
		h.globalDepth++
		clk.Advance(h.cfg.RDMA.Cost(len(h.dir) * 8))
	}
	// Allocate the sibling subtable.
	sib, err := h.newSubtable(st.localDepth + 1)
	if err != nil {
		return err
	}
	oldDepth := st.localDepth
	st.localDepth++
	// Point the upper half of st's directory slots at the sibling.
	mask := uint64(1<<oldDepth) - 1
	var lowIdx uint64
	for i, d := range h.dir {
		if d == st {
			lowIdx = uint64(i) & mask
			break
		}
	}
	highBit := uint64(1) << oldDepth
	for i := range h.dir {
		if h.dir[i] == st && uint64(i)&highBit != 0 && uint64(i)&mask == lowIdx {
			h.dir[i] = sib
		}
	}
	// Rehash: read every slot of st; move entries whose hash selects the
	// sibling. Entry relocation = read slot block header + write slot to
	// sibling + clear source slot.
	for b := uint64(0); b < st.buckets; b++ {
		baddr := st.addr + b*BucketSlots*8
		slots, err := c.readBucketLocked(clk, baddr)
		if err != nil {
			return err
		}
		for i := 0; i < BucketSlots; i++ {
			if slots[i] == 0 {
				continue
			}
			_, _, kaddr := unpackSlot(slots[i])
			hdr := make([]byte, kvHeader)
			if err := c.qp.Read(clk, uint64(kaddr), hdr); err != nil {
				return err
			}
			key := binary.LittleEndian.Uint64(hdr)
			hv := hash64(key)
			if hv&highBit == 0 || hv&mask != lowIdx {
				continue // stays (or belongs to another alias chain)
			}
			// Move to sibling: same bucket index, first free slot.
			sb := (hv >> 16) % sib.buckets
			sbAddr := sib.addr + sb*BucketSlots*8
			sslots, err := c.readBucketLocked(clk, sbAddr)
			if err != nil {
				return err
			}
			for j := 0; j < BucketSlots; j++ {
				if sslots[j] != 0 {
					continue
				}
				if ok, err := c.qp.CAS(clk, sbAddr+uint64(j*8), 0, slots[i]); err != nil {
					return err
				} else if ok {
					break
				}
			}
			if _, err := c.qp.CAS(clk, baddr+uint64(i*8), slots[i], 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Client) readBucketLocked(clk *sim.Clock, addr uint64) ([BucketSlots]uint64, error) {
	return c.readBucket(clk, addr)
}

// Stats renders a debug summary.
func (h *Hash) Stats() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	uniq := make(map[*subtable]bool)
	for _, d := range h.dir {
		uniq[d] = true
	}
	return fmt.Sprintf("race: depth=%d dir=%d subtables=%d", h.globalDepth, len(h.dir), len(uniq))
}
