package race

import (
	"bytes"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

// FuzzRACE interprets the fuzz input as an op script (3 bytes per op:
// opcode, key, value-shape) against a small directory so extendible-hash
// splits trigger, cross-checking against a map model. Values are derived
// deterministically from (key, shape) so lost or swapped slots surface as
// byte mismatches.
func FuzzRACE(f *testing.F) {
	f.Add([]byte{0, 1, 4, 0, 2, 9, 1, 1, 0, 2, 2, 0})
	seed := make([]byte, 0, 3*100)
	for i := 0; i < 100; i++ {
		seed = append(seed, byte(i%3), byte(i*3), byte(i*17))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*2048 {
			data = data[:3*2048]
		}
		h := newHash(t, 1, 4)
		cl := h.Attach(1, nil)
		clk := sim.NewClock()
		model := make(map[uint64][]byte)
		mkVal := func(key uint64, shape byte) []byte {
			v := make([]byte, 4+int(shape%24))
			for j := range v {
				v[j] = byte(key) ^ shape ^ byte(j)
			}
			return v
		}
		for i := 0; i+2 < len(data); i += 3 {
			op, kb, vb := data[i], data[i+1], data[i+2]
			key := uint64(kb)
			switch op % 3 {
			case 0:
				v := mkVal(key, vb)
				if err := cl.Put(clk, key, v); err != nil {
					t.Fatalf("op %d put(%d): %v", i/3, key, err)
				}
				model[key] = v
			case 1:
				got, ok, err := cl.Get(clk, key)
				if err != nil {
					t.Fatalf("op %d get(%d): %v", i/3, key, err)
				}
				want, wantOK := model[key]
				if ok != wantOK || (ok && !bytes.Equal(got, want)) {
					t.Fatalf("op %d key %d: hash (%x,%v) model (%x,%v)",
						i/3, key, got, ok, want, wantOK)
				}
			case 2:
				ok, err := cl.Delete(clk, key)
				if err != nil {
					t.Fatalf("op %d delete(%d): %v", i/3, key, err)
				}
				if _, want := model[key]; ok != want {
					t.Fatalf("op %d delete(%d) = %v, model %v", i/3, key, ok, want)
				}
				delete(model, key)
			}
		}
		for k, want := range model {
			got, ok, err := cl.Get(clk, k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("final key %d: (%x,%v,%v) want %x", k, got, ok, err, want)
			}
		}
	})
}
