package race

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

func newHash(t *testing.T, depth uint8, buckets uint64) *Hash {
	t.Helper()
	cfg := sim.DefaultConfig()
	pool := memnode.New(cfg, "m0", 64<<20)
	h, err := New(cfg, pool, depth, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPutGetRoundTrip(t *testing.T) {
	h := newHash(t, 2, 16)
	cl := h.Attach(1, nil)
	clk := sim.NewClock()
	if err := cl.Put(clk, 42, []byte("value-42")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get(clk, 42)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if !bytes.Equal(v, []byte("value-42")) {
		t.Fatalf("value = %q", v)
	}
	if _, ok, _ := cl.Get(clk, 43); ok {
		t.Fatal("phantom key")
	}
}

func TestUpdateReplacesValue(t *testing.T) {
	h := newHash(t, 2, 16)
	cl := h.Attach(1, nil)
	clk := sim.NewClock()
	cl.Put(clk, 7, []byte("v1"))
	cl.Put(clk, 7, []byte("v2-longer"))
	v, ok, _ := cl.Get(clk, 7)
	if !ok || !bytes.Equal(v, []byte("v2-longer")) {
		t.Fatalf("after update: %q %v", v, ok)
	}
}

func TestDelete(t *testing.T) {
	h := newHash(t, 2, 16)
	cl := h.Attach(1, nil)
	clk := sim.NewClock()
	cl.Put(clk, 9, []byte("x"))
	ok, err := cl.Delete(clk, 9)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok, _ := cl.Get(clk, 9); ok {
		t.Fatal("deleted key still readable")
	}
	ok, _ = cl.Delete(clk, 9)
	if ok {
		t.Fatal("double delete reported success")
	}
}

func TestManyKeysForceSplits(t *testing.T) {
	h := newHash(t, 1, 4) // tiny: 2 subtables x 4 buckets x 8 slots
	cl := h.Attach(1, nil)
	clk := sim.NewClock()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := cl.Put(clk, i, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if h.GlobalDepth() <= 1 {
		t.Fatalf("no directory growth: depth %d", h.GlobalDepth())
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := cl.Get(clk, i)
		if err != nil || !ok {
			t.Fatalf("get %d after splits: %v %v", i, ok, err)
		}
		if !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("key %d: %q", i, v)
		}
	}
}

func TestGetCostIsOneBucketPlusOneBlock(t *testing.T) {
	h := newHash(t, 4, 64)
	cfg := sim.DefaultConfig()
	var st rdma.Stats
	cl := h.Attach(1, &st)
	setup := sim.NewClock()
	cl.Put(setup, 1, []byte("x"))
	st.Reset()
	clk := sim.NewClock()
	cl.Get(clk, 1)
	if ops := st.Ops.Load(); ops != 2 {
		t.Fatalf("get used %d one-sided ops, want 2 (bucket + block)", ops)
	}
	if clk.Now() > 3*cfg.RDMA.Cost(64) {
		t.Fatalf("get cost %v too high", clk.Now())
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	h := newHash(t, 4, 64)
	const perWorker = 300
	res := sim.RunGroup(8, func(id int, clk *sim.Clock) int {
		cl := h.Attach(uint64(id+1), nil)
		base := uint64(id) * 1_000_000
		for i := uint64(0); i < perWorker; i++ {
			if err := cl.Put(clk, base+i, []byte{byte(id)}); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		return perWorker
	})
	if res.TotalOps != 8*perWorker {
		t.Fatalf("ops = %d", res.TotalOps)
	}
	cl := h.Attach(99, nil)
	clk := sim.NewClock()
	for id := 0; id < 8; id++ {
		base := uint64(id) * 1_000_000
		for i := uint64(0); i < perWorker; i++ {
			v, ok, err := cl.Get(clk, base+i)
			if err != nil || !ok || v[0] != byte(id) {
				t.Fatalf("key %d: %v %v %v", base+i, v, ok, err)
			}
		}
	}
}

func TestConcurrentSameKeyLastWriterWins(t *testing.T) {
	h := newHash(t, 2, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := h.Attach(uint64(id+1), nil)
			clk := sim.NewClock()
			for i := 0; i < 100; i++ {
				if err := cl.Put(clk, 5, []byte{byte(id), byte(i)}); err != nil {
					t.Errorf("put: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	cl := h.Attach(99, nil)
	v, ok, err := cl.Get(sim.NewClock(), 5)
	if err != nil || !ok || len(v) != 2 {
		t.Fatalf("final state: %v %v %v", v, ok, err)
	}
}

func TestValueTooLarge(t *testing.T) {
	h := newHash(t, 2, 16)
	cl := h.Attach(1, nil)
	if err := cl.Put(sim.NewClock(), 1, make([]byte, 70_000)); err != ErrValueTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestSlotPacking(t *testing.T) {
	w := packSlot(0xABCD, 0x1234, 0xDEADBEEF)
	fp, vlen, addr := unpackSlot(w)
	if fp != 0xABCD || vlen != 0x1234 || addr != 0xDEADBEEF {
		t.Fatalf("unpack = %x %x %x", fp, vlen, addr)
	}
	if packSlot(0, 0, 0) != 0 {
		t.Fatal("zero slot must encode to zero word")
	}
}

func TestStatsString(t *testing.T) {
	h := newHash(t, 2, 8)
	if h.Stats() == "" {
		t.Fatal("empty stats")
	}
}
