package sim

import (
	"sync"
	"time"
)

// Worker is the body of one simulated client. It receives the worker id, the
// worker's private clock, and its private RNG seed-derived stream, and
// returns the number of completed operations.
type Worker func(id int, c *Clock) (ops int)

// GroupResult aggregates a parallel run: throughput is computed against the
// *slowest* worker's virtual time, matching how a real fixed-duration
// benchmark would observe the system.
type GroupResult struct {
	Workers   int
	TotalOps  int
	MakeSpan  time.Duration // max over workers' virtual clocks
	SumTime   time.Duration // sum over workers' virtual clocks
	PerWorker []time.Duration
}

// Throughput reports aggregate operations per virtual second.
func (g GroupResult) Throughput() float64 {
	if g.MakeSpan <= 0 {
		return 0
	}
	return float64(g.TotalOps) / g.MakeSpan.Seconds()
}

// MeanLatency reports the mean per-operation virtual latency across workers.
func (g GroupResult) MeanLatency() time.Duration {
	if g.TotalOps == 0 {
		return 0
	}
	return g.SumTime / time.Duration(g.TotalOps)
}

// RunGroup executes n workers concurrently, each with a fresh clock, and
// aggregates their virtual-time results. Real goroutines are used so that
// shared data structures see genuine interleavings.
func RunGroup(n int, w Worker) GroupResult {
	res := GroupResult{Workers: n, PerWorker: make([]time.Duration, n)}
	ops := make([]int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer wg.Done()
			c := NewClock()
			ops[id] = w(id, c)
			res.PerWorker[id] = c.Now()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		res.TotalOps += ops[i]
		res.SumTime += res.PerWorker[i]
		if res.PerWorker[i] > res.MakeSpan {
			res.MakeSpan = res.PerWorker[i]
		}
	}
	return res
}
