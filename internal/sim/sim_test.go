package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Microsecond)
	c.Advance(3 * time.Microsecond)
	if got := c.Now(); got != 8*time.Microsecond {
		t.Fatalf("Now() = %v, want 8µs", got)
	}
}

func TestClockIgnoresNegativeAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(time.Microsecond)
	c.Advance(-time.Millisecond)
	if got := c.Now(); got != time.Microsecond {
		t.Fatalf("Now() = %v, want 1µs", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Microsecond)
	c.AdvanceTo(5 * time.Microsecond) // earlier: no-op
	if got := c.Now(); got != 10*time.Microsecond {
		t.Fatalf("AdvanceTo moved clock backwards: %v", got)
	}
	c.AdvanceTo(20 * time.Microsecond)
	if got := c.Now(); got != 20*time.Microsecond {
		t.Fatalf("AdvanceTo = %v, want 20µs", got)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %v", c.Now())
	}
}

func TestLatencyModelBaseOnly(t *testing.T) {
	m := LatencyModel{Base: time.Microsecond}
	if got := m.Cost(1 << 20); got != time.Microsecond {
		t.Fatalf("infinite-bandwidth cost = %v, want 1µs", got)
	}
}

func TestLatencyModelBandwidth(t *testing.T) {
	m := LatencyModel{Base: time.Microsecond, BytesPerSec: 1 * GB}
	got := m.Cost(1000) // 1000B at 1GB/s = 1µs transfer
	want := 2 * time.Microsecond
	if got != want {
		t.Fatalf("Cost(1000) = %v, want %v", got, want)
	}
}

func TestLatencyModelZeroBytes(t *testing.T) {
	m := LatencyModel{Base: 5 * time.Microsecond, BytesPerSec: 1 * GB}
	if got := m.Cost(0); got != 5*time.Microsecond {
		t.Fatalf("Cost(0) = %v, want base", got)
	}
}

func TestLatencyCostMonotone(t *testing.T) {
	m := LatencyModel{Base: time.Microsecond, BytesPerSec: 10 * GB}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.Cost(x) <= m.Cost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterUncontendedChargesExact(t *testing.T) {
	m := NewMeter(4)
	c := NewClock()
	d := m.Charge(c, 10*time.Microsecond)
	if d != 10*time.Microsecond || c.Now() != 10*time.Microsecond {
		t.Fatalf("uncontended charge = %v clock %v", d, c.Now())
	}
	if m.QueuedFraction() != 0 {
		t.Fatalf("queued fraction = %v, want 0", m.QueuedFraction())
	}
}

func TestMeterPenaltyUnderContention(t *testing.T) {
	m := NewMeter(1)
	// Simulate prior demand: another worker consumed 40µs of this
	// resource while our worker's clock shows only ~10µs of elapsed time.
	m.busy.Add(int64(40 * time.Microsecond))
	c := NewClock()
	d := m.Charge(c, 10*time.Microsecond)
	if d <= 10*time.Microsecond {
		t.Fatalf("contended charge %v not inflated", d)
	}
	if m.QueuedFraction() == 0 {
		t.Fatal("queueing not recorded")
	}
}

func TestMeterPenaltyCapped(t *testing.T) {
	m := NewMeter(1)
	m.busy.Add(int64(time.Hour))
	c := NewClock()
	d := m.Charge(c, time.Microsecond)
	if d > 16*time.Microsecond {
		t.Fatalf("penalty exceeded cap: %v", d)
	}
}

func TestMeterZeroDurationFree(t *testing.T) {
	m := NewMeter(1)
	c := NewClock()
	if d := m.Charge(c, 0); d != 0 || c.Now() != 0 {
		t.Fatal("zero-duration charge should be free")
	}
}

func TestMeterCapacityFloor(t *testing.T) {
	if got := NewMeter(0).Capacity(); got != 1 {
		t.Fatalf("capacity floor = %d, want 1", got)
	}
}

func TestMeterResetStats(t *testing.T) {
	m := NewMeter(1)
	c := NewClock()
	m.Charge(c, time.Microsecond)
	m.ResetStats()
	if m.Busy() != 0 || m.QueuedFraction() != 0 {
		t.Fatal("ResetStats did not clear state")
	}
}

func TestMeterProcessorSharing(t *testing.T) {
	// 8 workers sharing a 2-slot resource must each run ~4x slower than
	// a lone worker.
	work := func(m *Meter) GroupResult {
		return GroupResult{}
	}
	_ = work
	solo := RunGroup(1, func(id int, c *Clock) int {
		m := NewMeter(2)
		for i := 0; i < 1000; i++ {
			m.Charge(c, time.Microsecond)
		}
		return 1000
	})
	shared := NewMeter(2)
	crowd := RunGroup(8, func(id int, c *Clock) int {
		for i := 0; i < 1000; i++ {
			shared.Charge(c, time.Microsecond)
		}
		return 1000
	})
	if crowd.TotalOps != 8000 {
		t.Fatalf("ops = %d, want 8000", crowd.TotalOps)
	}
	ratio := float64(crowd.MeanLatency()) / float64(solo.MeanLatency())
	if ratio < 2 || ratio > 8 {
		t.Fatalf("processor-sharing slowdown = %.2fx, want ~4x", ratio)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(42, 3)
	b := NewRand(42, 3)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,id) produced different streams")
		}
	}
	cStream := NewRand(42, 4)
	same := true
	a = NewRand(42, 3)
	for i := 0; i < 10; i++ {
		if a.Int63() != cStream.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different worker ids produced identical streams")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(1, 0)
	z := NewZipf(r, 1.2, 1000)
	counts := make(map[uint64]int)
	const draws = 50_000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("zipf draw %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] < draws/10 {
		t.Fatalf("hottest key drawn only %d/%d times; zipf not skewed", counts[0], draws)
	}
}

func TestZipfSnapsLowTheta(t *testing.T) {
	r := NewRand(1, 0)
	z := NewZipf(r, 0.5, 10) // must not panic despite theta <= 1
	for i := 0; i < 100; i++ {
		if z.Next() >= 10 {
			t.Fatal("out of range")
		}
	}
}

func TestKeyChooserUniformCoverage(t *testing.T) {
	kc := NewKeyChooser(NewRand(7, 0), 0, 16)
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		seen[kc.Next()] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform chooser covered %d/16 keys", len(seen))
	}
}

func TestRunGroupAggregation(t *testing.T) {
	res := RunGroup(4, func(id int, c *Clock) int {
		c.Advance(time.Duration(id+1) * time.Millisecond)
		return 10
	})
	if res.TotalOps != 40 {
		t.Fatalf("TotalOps = %d", res.TotalOps)
	}
	if res.MakeSpan != 4*time.Millisecond {
		t.Fatalf("MakeSpan = %v, want 4ms", res.MakeSpan)
	}
	wantSum := 10 * time.Millisecond
	if res.SumTime != wantSum {
		t.Fatalf("SumTime = %v, want %v", res.SumTime, wantSum)
	}
	if th := res.Throughput(); th < 9999 || th > 10001 {
		t.Fatalf("Throughput = %v, want ~10000 ops/s", th)
	}
}

func TestGroupResultEmptySafe(t *testing.T) {
	var g GroupResult
	if g.Throughput() != 0 || g.MeanLatency() != 0 {
		t.Fatal("empty result not zero-safe")
	}
}

func TestDefaultConfigOrdering(t *testing.T) {
	cfg := DefaultConfig()
	// The survey's central hardware hierarchy must hold in the defaults:
	// DRAM < CXL < RDMA < TCP < SSD-ish, PM read < PM write.
	if !(cfg.DRAM.Base < cfg.CXL.Base) {
		t.Fatal("DRAM should be faster than CXL")
	}
	if !(cfg.CXL.Base < cfg.RDMA.Base) {
		t.Fatal("CXL should be faster than RDMA")
	}
	if !(cfg.RDMA.Base < cfg.TCP.Base) {
		t.Fatal("RDMA should be faster than TCP")
	}
	if !(cfg.TCP.Base < cfg.SSDRead.Base) {
		t.Fatal("network RPC should be faster than SSD access")
	}
	if !(cfg.PMRead.Base < cfg.PMWrite.Base) {
		t.Fatal("PM reads should be faster than persisted writes")
	}
	// DirectCXL's ~6x latency claim should be representable.
	ratio := float64(cfg.RDMA.Base) / float64(cfg.CXL.Base)
	if ratio < 4 || ratio > 9 {
		t.Fatalf("RDMA/CXL latency ratio = %.1f, want around 6", ratio)
	}
}

func TestConfigClone(t *testing.T) {
	a := DefaultConfig()
	b := a.Clone()
	b.RDMA.Base = 0
	if a.RDMA.Base == 0 {
		t.Fatal("Clone aliases underlying config")
	}
}
