package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// FlushReason says why a batch was flushed.
type FlushReason int

const (
	// FlushSize: the batch reached BatchPolicy.MaxItems.
	FlushSize FlushReason = iota
	// FlushTimeout: the leader's join budget expired before the batch
	// filled; the group is charged the virtual window instead.
	FlushTimeout
)

func (r FlushReason) String() string {
	if r == FlushSize {
		return "size"
	}
	return "timeout"
}

// BatchPolicy configures a Batcher.
type BatchPolicy struct {
	// MaxItems is the size trigger. Values <= 1 disable grouping: every
	// Submit flushes a batch of one on the caller's clock (the disabled
	// path is allocation-free in steady state).
	MaxItems int
	// Window is the virtual-time trigger: when a batch flushes on timeout
	// the group is charged as if the leader had waited Window after its
	// own arrival, modeling a group-commit timer.
	Window time.Duration
	// JoinYields bounds the leader's real-time wait for joiners, counted
	// in scheduler yields. It only affects which virtual trigger fires,
	// never virtual time itself. 0 means a small default.
	JoinYields int
	// OnFlush, when non-nil, is called once per flush (after the flush
	// function returns) with the batch occupancy and trigger; engines use
	// it to feed their own counters. Called on the leader's goroutine.
	OnFlush func(n int, reason FlushReason)
}

const defaultJoinYields = 240

// FlushFunc performs one combined flush for a sealed batch. It runs on the
// leader's clock, which has already been advanced to the latest arrival in
// the group (plus the window, on timeout); items preserve submission order
// and out[i] must receive item i's result. An error fails every
// participant in the batch.
type FlushFunc[T, R any] func(c *Clock, items []T, out []R) error

// batch is one combining group. done is closed by the leader after the
// flush completes; followers then read end/err/out.
type batch[T, R any] struct {
	items  []T
	out    []R
	arrive []time.Duration
	sealed bool
	done   chan struct{}
	end    time.Duration
	err    error
}

// single is the pooled scratch for the batch-of-1 (disabled) path.
type single[T, R any] struct {
	items [1]T
	out   [1]R
}

// Batcher combines concurrent submissions into shared flushes — the one
// group-commit/doorbell-batching mechanism used by the log stores, raft,
// the RDMA layer and the memory-node RPC path.
//
// The first submitter of a group becomes its leader. The leader briefly
// yields the scheduler so concurrent submitters can join, then seals the
// batch when it fills (FlushSize) or the yield budget expires
// (FlushTimeout) and runs the flush once for everyone. In virtual time the
// whole group pays max(arrival times) (+ Window on timeout) before the
// flush cost, and every participant — leader and followers alike — wakes
// at the same virtual completion time with the same error, which is what
// makes "all commits in a group share one durable LSN" fall out naturally.
//
// Determinism: items flush in submission order (the order goroutines won
// the batcher's lock), and each flush is a single substrate operation, so
// a seeded fault injector sees one op per flush regardless of how the
// group interleaved. Flush *contents* depend on goroutine scheduling;
// flush *semantics* (ordering within a batch, single fault decision per
// flush, shared outcome) do not, which is the property the conformance
// suite's seed replay relies on.
type Batcher[T, R any] struct {
	pol   BatchPolicy
	flush FlushFunc[T, R]

	mu  sync.Mutex
	cur *batch[T, R]

	singles sync.Pool

	flushes        atomic.Int64
	items          atomic.Int64
	sizeFlushes    atomic.Int64
	timeoutFlushes atomic.Int64
	maxOccupancy   atomic.Int64
}

// BatcherStats is a snapshot of a batcher's counters.
type BatcherStats struct {
	Flushes        int64
	Items          int64
	SizeFlushes    int64
	TimeoutFlushes int64
	MaxOccupancy   int64
}

// MeanOccupancy reports items per flush.
func (s BatcherStats) MeanOccupancy() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Items) / float64(s.Flushes)
}

// NewBatcher builds a batcher over flush and registers its counters with
// cfg's stats registry (if any) under site. cfg may be nil.
func NewBatcher[T, R any](cfg *Config, site string, pol BatchPolicy, flush FlushFunc[T, R]) *Batcher[T, R] {
	b := &Batcher[T, R]{pol: pol, flush: flush}
	if cfg != nil {
		cfg.RegisterBatcher(site, b.Stats)
	}
	return b
}

// Stats snapshots the batcher's counters.
func (b *Batcher[T, R]) Stats() BatcherStats {
	return BatcherStats{
		Flushes:        b.flushes.Load(),
		Items:          b.items.Load(),
		SizeFlushes:    b.sizeFlushes.Load(),
		TimeoutFlushes: b.timeoutFlushes.Load(),
		MaxOccupancy:   b.maxOccupancy.Load(),
	}
}

func (b *Batcher[T, R]) note(n int, reason FlushReason) {
	b.flushes.Add(1)
	b.items.Add(int64(n))
	if reason == FlushSize {
		b.sizeFlushes.Add(1)
	} else {
		b.timeoutFlushes.Add(1)
	}
	for {
		cur := b.maxOccupancy.Load()
		if int64(n) <= cur || b.maxOccupancy.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	if b.pol.OnFlush != nil {
		b.pol.OnFlush(n, reason)
	}
}

// Submit adds item to the current batch and blocks (in real time, via
// scheduler yields or the leader's flush) until the batch containing it
// has flushed. It returns the item's result and the flush error shared by
// the whole group; the caller's clock lands at the group's virtual
// completion time.
func (b *Batcher[T, R]) Submit(c *Clock, item T) (R, error) {
	if b.pol.MaxItems <= 1 {
		// Disabled path: flush a batch of one on pooled scratch so the
		// choke point (fault injection, tracing, counters) is identical
		// but no grouping — and no allocation — happens.
		s, _ := b.singles.Get().(*single[T, R])
		if s == nil {
			s = new(single[T, R])
		}
		s.items[0] = item
		err := b.flush(c, s.items[:], s.out[:])
		r := s.out[0]
		var zt T
		var zr R
		s.items[0], s.out[0] = zt, zr
		b.singles.Put(s)
		b.note(1, FlushSize)
		return r, err
	}

	b.mu.Lock()
	my := b.cur
	if my == nil || my.sealed || len(my.items) >= b.pol.MaxItems {
		my = &batch[T, R]{
			items:  make([]T, 0, b.pol.MaxItems),
			arrive: make([]time.Duration, 0, b.pol.MaxItems),
			done:   make(chan struct{}),
		}
		b.cur = my
	}
	idx := len(my.items)
	my.items = append(my.items, item)
	my.arrive = append(my.arrive, c.Now())
	if idx > 0 {
		// Follower: the leader flushes for us; join at the group's
		// virtual completion time with the shared outcome.
		b.mu.Unlock()
		<-my.done
		c.AdvanceTo(my.end)
		return my.out[idx], my.err
	}

	// Leader: yield so concurrent submitters can pile on, bounded by the
	// join budget. Yielding costs no virtual time.
	budget := b.pol.JoinYields
	if budget <= 0 {
		budget = defaultJoinYields
	}
	reason := FlushTimeout
	for yields := 0; ; yields++ {
		if len(my.items) >= b.pol.MaxItems {
			reason = FlushSize
			break
		}
		if yields >= budget {
			break
		}
		b.mu.Unlock()
		runtime.Gosched()
		b.mu.Lock()
	}
	my.sealed = true
	if b.cur == my {
		b.cur = nil
	}
	n := len(my.items)
	b.mu.Unlock()

	// The group completes no earlier than its latest arrival; a timeout
	// flush additionally waits out the virtual window from the leader's
	// arrival, whichever is later.
	start := my.arrive[0]
	for _, a := range my.arrive[1:] {
		if a > start {
			start = a
		}
	}
	if reason == FlushTimeout && b.pol.Window > 0 {
		if w := my.arrive[0] + b.pol.Window; w > start {
			start = w
		}
	}
	c.AdvanceTo(start)
	my.out = make([]R, n)
	my.err = b.flush(c, my.items, my.out)
	my.end = c.Now()
	b.note(n, reason)
	close(my.done)
	return my.out[0], my.err
}
