package sim

import (
	"strings"
	"testing"
	"time"
)

// captureSink is a trivial EventSink retaining every event.
type captureSink struct{ evs []Event }

func (s *captureSink) Emit(e Event) { s.evs = append(s.evs, e) }

func TestOpEmitsEvOp(t *testing.T) {
	cfg := DefaultConfig()
	c := NewClock()
	sink := &captureSink{}
	c.SetEvents(sink)

	op := cfg.Begin(c, "rdma.read")
	c.Advance(7 * time.Microsecond)
	op.End(4096)

	if len(sink.evs) != 1 {
		t.Fatalf("sink saw %d events, want 1", len(sink.evs))
	}
	e := sink.evs[0]
	if e.Kind != EvOp || e.Site != "rdma.read" || e.Dur != 7*time.Microsecond || e.Bytes != 4096 {
		t.Fatalf("event = %+v", e)
	}
	if e.T != c.Now() {
		t.Fatalf("event stamped at %v, clock at %v", e.T, c.Now())
	}
}

func TestBeginWithOnlyEventsStillObserves(t *testing.T) {
	// Neither stats nor trace attached: the events sink alone must keep
	// Begin from returning the inert zero Op.
	cfg := &Config{}
	c := NewClock()
	sink := &captureSink{}
	c.SetEvents(sink)
	op := cfg.Begin(c, "ssd.write")
	c.Advance(time.Microsecond)
	op.End(64)
	if len(sink.evs) != 1 || sink.evs[0].Site != "ssd.write" {
		t.Fatalf("events-only Begin did not emit: %+v", sink.evs)
	}
}

func TestEmitNilSafe(t *testing.T) {
	var c *Clock
	c.Emit(Event{Site: "a.b"}) // nil clock: no-op
	c2 := NewClock()
	c2.Emit(Event{Site: "a.b"}) // no sink: no-op
	if c2.Events() != nil {
		t.Fatalf("clock grew a sink")
	}
}

func TestEventKindAndString(t *testing.T) {
	kinds := map[EventKind]string{
		EvOp:         "op",
		EvFault:      "fault",
		EvRetry:      "retry",
		EvShed:       "shed",
		EvCheckpoint: "ckpt",
		EventKind(99): "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	e := Event{T: 3 * time.Microsecond, Kind: EvOp, Site: "rdma.read", Dur: time.Microsecond, Bytes: 64}
	s := e.String()
	for _, want := range []string{"op", "rdma.read", "1µs", "64B"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
	f := Event{Kind: EvFault, Site: "ssd.write", Note: "torn"}
	if !strings.Contains(f.String(), "torn") {
		t.Errorf("fault event string %q missing note", f.String())
	}
}
