package sim

import "time"

// LatencyModel is a linear cost model: a fixed per-operation base latency
// plus a size-proportional transfer term.
type LatencyModel struct {
	// Base is charged once per operation regardless of size.
	Base time.Duration
	// BytesPerSec is the streaming bandwidth. Zero means infinite
	// bandwidth (only Base is charged).
	BytesPerSec float64
}

// Cost returns the modeled latency of moving n bytes under this model.
func (m LatencyModel) Cost(n int) time.Duration {
	d := m.Base
	if m.BytesPerSec > 0 && n > 0 {
		d += time.Duration(float64(n) / m.BytesPerSec * float64(time.Second))
	}
	return d
}

// Common bandwidth constants, in bytes per second.
const (
	GB = 1e9
	MB = 1e6
	KB = 1e3
)
