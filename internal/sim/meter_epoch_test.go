package sim

import (
	"testing"
	"time"
)

func TestObserveAccumulatesWithoutCharging(t *testing.T) {
	m := NewMeter(1)
	c := NewClock()
	c.Advance(10 * time.Microsecond)
	before := c.Now()
	m.Observe(c, 4*time.Microsecond)
	if c.Now() != before {
		t.Fatalf("Observe advanced the clock %v -> %v", before, c.Now())
	}
	if m.Busy() != 4*time.Microsecond || m.TotalOps() != 1 {
		t.Fatalf("busy %v ops %d, want 4µs/1", m.Busy(), m.TotalOps())
	}
	// Demand below capacity x elapsed: not queued.
	if m.QueuedOps() != 0 {
		t.Fatalf("under-utilized observe queued")
	}
	// Push demand past elapsed: the queued flag must trip.
	m.Observe(c, 20*time.Microsecond)
	if m.QueuedOps() != 1 {
		t.Fatalf("over-utilized observe not queued (busy %v, elapsed %v)", m.Busy(), c.Now())
	}
}

func TestObserveZeroAndNegativeAreNoOps(t *testing.T) {
	m := NewMeter(1)
	c := NewClock()
	c.Advance(time.Microsecond)
	m.Observe(c, 0)
	m.Observe(c, -time.Microsecond)
	if m.TotalOps() != 0 || m.Busy() != 0 {
		t.Fatalf("non-positive observe accounted: ops %d busy %v", m.TotalOps(), m.Busy())
	}
}

func TestObserveEpochRollsBusyForward(t *testing.T) {
	m := NewMeter(1)
	c := NewClock()
	c.Advance(time.Millisecond)
	m.Observe(c, 500*time.Microsecond)
	if m.Busy() != 500*time.Microsecond {
		t.Fatalf("busy %v", m.Busy())
	}

	// New experiment phase: the clock rewinds to zero in a new epoch. The
	// old epoch's demand must not read as an instantaneous utilization
	// spike against the tiny new elapsed time.
	c.Reset()
	c.Advance(10 * time.Microsecond)
	m.Observe(c, time.Microsecond)
	if m.Busy() != time.Microsecond {
		t.Fatalf("stale-epoch busy survived the reset: %v", m.Busy())
	}
	if m.QueuedOps() != 0 {
		t.Fatalf("fresh-epoch observe misread stale demand as congestion")
	}
}

func TestChargeAndObserveShareEpochGuard(t *testing.T) {
	m := NewMeter(1)
	c := NewClock()
	c.Advance(time.Millisecond)
	m.Charge(c, 800*time.Microsecond)

	c.Reset()
	c.Advance(time.Microsecond)
	before := c.Now()
	// The first post-reset Observe clears the stale busy, so a subsequent
	// Charge sees a fresh meter rather than a max-penalty spike.
	m.Observe(c, time.Nanosecond)
	d := m.Charge(c, time.Microsecond)
	if d > 2*time.Microsecond {
		t.Fatalf("post-reset charge stretched to %v by stale demand", d)
	}
	if c.Now() <= before {
		t.Fatalf("charge did not advance the clock")
	}
}
