package sim

import (
	"sync/atomic"
	"time"
)

// Meter models a shared resource with finite service capacity (a NIC, a
// network link, a device queue, a pool of remote CPU cores) under
// processor-sharing semantics in virtual time.
//
// Because operations execute in near-zero real time, occupancy cannot be
// observed from wall-clock overlap. Instead the meter accumulates the total
// virtual busy time demanded of the resource and compares it, at each
// charge, with the caller's elapsed virtual time: utilization
// ρ = busy / (capacity × elapsed). When demand exceeds capacity (ρ > 1)
// every operation is stretched by ρ — the processor-sharing slowdown —
// capped so a badly oversubscribed resource degrades gracefully.
//
// Workers in one experiment share a virtual epoch (all clocks start at
// zero), which makes the caller's clock a valid elapsed-time proxy.
// Meter is safe for concurrent use.
type Meter struct {
	capacity   int64
	busy       atomic.Int64 // total demanded busy time, ns
	maxPenalty float64
	totalOps   atomic.Int64
	queuedOps  atomic.Int64
	epoch      atomic.Int64 // latest clock epoch seen (see Charge)
}

// NewMeter returns a meter with the given number of service slots.
// Capacity values < 1 are treated as 1.
func NewMeter(capacity int) *Meter {
	if capacity < 1 {
		capacity = 1
	}
	return &Meter{capacity: int64(capacity), maxPenalty: 16}
}

// Capacity reports the number of service slots.
func (m *Meter) Capacity() int { return int(m.capacity) }

// Charge accounts one operation of modeled duration d against the meter on
// the worker's clock, inflating d by the current utilization penalty.
// It returns the charged (possibly inflated) duration.
func (m *Meter) Charge(c *Clock, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	// Epoch guard: a worker whose clock was Reset for a new experiment
	// phase arrives with a rewound elapsed time. Dividing the old epoch's
	// accumulated demand by the new epoch's tiny elapsed time would read
	// as a max-penalty utilization spike, so when a newer epoch first
	// touches the meter the accumulated demand rolls forward to zero.
	if e := c.epoch; e > m.epoch.Load() {
		if old := m.epoch.Load(); e > old && m.epoch.CompareAndSwap(old, e) {
			m.busy.Store(0)
		}
	}
	m.totalOps.Add(1)
	// Utilization is computed over *charged* (stretched) time on both
	// axes, which makes the steady-state penalty converge to the true
	// oversubscription ratio: with N workers each demanding at rate r on
	// capacity cap, busy grows as N·r·p while elapsed grows as r·p, so
	// ρ → N/cap and every op is stretched N/cap-fold.
	busy := m.busy.Load() + int64(d)
	elapsed := c.Now() + d
	p := float64(busy) / float64(m.capacity) / float64(elapsed)
	switch {
	case p <= 1:
		p = 1
	case p > m.maxPenalty:
		p = m.maxPenalty
	}
	if p > 1 {
		m.queuedOps.Add(1)
		d = time.Duration(float64(d) * p)
	}
	m.busy.Add(int64(d))
	c.Advance(d)
	return d
}

// Observe accounts one operation of modeled duration d against the meter
// WITHOUT advancing the caller's clock or applying a queueing penalty. It
// exists for observers that meter work whose time was already charged
// elsewhere (an engine's substrate meters advanced the clock during the
// transaction); Charge-ing it again would double-bill the worker. The
// queued flag is still derived from the instantaneous utilization so
// telemetry consumers (autoscale controllers) see congestion.
func (m *Meter) Observe(c *Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if e := c.epoch; e > m.epoch.Load() {
		if old := m.epoch.Load(); e > old && m.epoch.CompareAndSwap(old, e) {
			m.busy.Store(0)
		}
	}
	m.totalOps.Add(1)
	busy := m.busy.Add(int64(d))
	if elapsed := c.Now(); elapsed > 0 &&
		float64(busy)/float64(m.capacity)/float64(elapsed) > 1 {
		m.queuedOps.Add(1)
	}
}

// Busy reports the total virtual busy time demanded so far.
func (m *Meter) Busy() time.Duration { return time.Duration(m.busy.Load()) }

// QueuedOps reports the number of charged operations that observed
// queueing (the numerator of QueuedFraction).
func (m *Meter) QueuedOps() int64 { return m.queuedOps.Load() }

// TotalOps reports the number of operations charged.
func (m *Meter) TotalOps() int64 { return m.totalOps.Load() }

// Utilization reports ρ = busy / (capacity × elapsed) against an external
// elapsed-time reference (e.g. the experiment's virtual makespan). Values
// above 1 mean the resource was oversubscribed.
func (m *Meter) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.busy.Load()) / float64(m.capacity) / float64(elapsed)
}

// QueuedFraction reports the fraction of charged operations that observed
// queueing, a cheap congestion signal for adaptive policies (e.g. Redy's
// SLO-driven configuration).
func (m *Meter) QueuedFraction() float64 {
	t := m.totalOps.Load()
	if t == 0 {
		return 0
	}
	return float64(m.queuedOps.Load()) / float64(t)
}

// ResetStats clears the accumulated demand and counters, starting a fresh
// virtual epoch. Call between experiment phases that reset worker clocks.
func (m *Meter) ResetStats() {
	m.busy.Store(0)
	m.totalOps.Store(0)
	m.queuedOps.Store(0)
}
