// Package sim provides the virtual-time simulation core used by every
// substrate in this repository.
//
// The model is cost accounting rather than discrete-event scheduling: each
// logical worker (a client, a transaction thread, a query pipeline) owns a
// Clock that accumulates the modeled latency of every device and fabric
// operation it performs. Shared resources (NICs, links, device queues) are
// represented by Meters whose occupancy inflates the charged latency, so
// contention effects are visible without a global event queue. Real Go
// concurrency is still used for shared data structures, so conflicts and
// retries are real; only time is virtual.
package sim

import (
	"fmt"
	"time"
)

// Clock is a per-worker virtual clock. It is not safe for concurrent use;
// each worker owns exactly one Clock.
type Clock struct {
	now    time.Duration
	epoch  int64
	trace  *Trace
	events EventSink
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the worker's current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative advances are ignored so
// that cost models may return zero/negative residuals safely.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is later than the current
// virtual time. It is used to join on events completed by other workers
// (e.g. waiting for a quorum of acknowledgements).
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero and starts a new epoch. Meters notice
// the epoch change on the next Charge and roll their accumulated demand
// forward, so a phase reset cannot manufacture a spurious utilization
// spike (busy time from the old epoch divided by a rewound clock).
func (c *Clock) Reset() {
	c.now = 0
	c.epoch++
}

// Epoch reports the clock's reset generation (0 for a fresh clock).
func (c *Clock) Epoch() int64 { return c.epoch }

// SetTrace attaches a span tree to the clock: subsequent instrumented
// operations on this clock record nested spans into t. Pass nil to detach.
// A Trace must not be shared between clocks.
func (c *Clock) SetTrace(t *Trace) { c.trace = t }

// Trace returns the attached trace, if any.
func (c *Clock) Trace() *Trace { return c.trace }

// StartSpan opens a span at site in the clock's trace and returns it, or
// nil when no trace is attached. It lets layers without a Config (e.g.
// engine.Run's retry loop) bracket work the same way Config.Begin does;
// close with FinishSpan.
func (c *Clock) StartSpan(site string) *Span {
	if c == nil || c.trace == nil {
		return nil
	}
	return c.trace.push(site, c.now)
}

// FinishSpan closes a span opened by StartSpan, attributing everything the
// clock accumulated since then to it. A nil span is a no-op, so the
// StartSpan/FinishSpan pair is free when tracing is off.
func (c *Clock) FinishSpan(sp *Span, bytes int64) {
	if sp == nil || c == nil || c.trace == nil {
		return
	}
	c.trace.pop(sp, c.now, bytes)
}

func (c *Clock) String() string {
	return fmt.Sprintf("sim.Clock(%v)", c.now)
}
