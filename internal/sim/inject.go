package sim

import "errors"

// ErrInjected is the root of every error surfaced by fault injection.
// Substrates return it (usually wrapped) when the fault layer decides an
// operation is dropped or fails transiently; engines must treat it like
// any other transient fabric error (abort/retry), never as corruption.
var ErrInjected = errors.New("sim: injected fault")

// FaultOutcome is the fault layer's verdict on one substrate operation.
// The zero value means "proceed normally". Latency spikes are not
// represented here: the injector charges them directly on the caller's
// clock before returning.
type FaultOutcome struct {
	// Drop fails the operation before it takes effect (a lost message /
	// transient EIO). Err is the error to surface.
	Drop bool
	// Err is the error returned for dropped operations; substrates fall
	// back to ErrInjected when nil.
	Err error
	// Duplicate delivers the operation's payload a second time. Only
	// sites with idempotent application honor it (one-sided writes,
	// durable log appends with LSN dedup); others treat it as a no-op.
	Duplicate bool
	// Torn crashes the component mid-operation: a durable append
	// persists only a prefix of the batch and then fails. Sites that
	// cannot tear treat Torn as Drop.
	Torn bool
}

// FaultInjector decides, per substrate operation, whether to misbehave.
// Implementations must be safe for concurrent use and deterministic given
// their seed (see internal/sim/fault). The caller's clock is passed so
// the injector can charge latency spikes.
type FaultInjector interface {
	Inject(c *Clock, site string) FaultOutcome
}

// Inject consults the config's fault injector, if any. Substrates call
// this at the top of every fabric/device operation with a stable site
// name ("rdma.write", "logstore.append", ...).
func (c *Config) Inject(clk *Clock, site string) FaultOutcome {
	if c.Fault == nil {
		return FaultOutcome{}
	}
	out := c.Fault.Inject(clk, site)
	if clk != nil && clk.events != nil {
		if note := out.note(); note != "" {
			clk.events.Emit(Event{T: clk.now, Kind: EvFault, Site: site, Note: note})
		}
	}
	return out
}

// note summarizes a non-clean outcome for the flight recorder ("" when the
// operation proceeds normally; pure delay spikes are already on the clock).
func (o FaultOutcome) note() string {
	switch {
	case o.Torn:
		return "torn"
	case o.Drop:
		return "drop"
	case o.Duplicate:
		return "duplicate"
	}
	return ""
}

// FaultErr returns the outcome's error, defaulting to ErrInjected.
func (o FaultOutcome) FaultErr() error {
	if o.Err != nil {
		return o.Err
	}
	return ErrInjected
}
