package sim

import (
	"fmt"
	"strings"
	"time"
)

// Trace is a per-worker virtual-time span tree. Attach it to exactly one
// Clock (Clock.SetTrace); every instrumented substrate operation performed
// on that clock then records a Span, nested under whatever span was open
// when the operation began. Like the Clock itself, a Trace is not safe for
// concurrent use — one worker, one clock, one trace.
//
// Spans carry the same site labels the fault layer uses ("rdma.read",
// "logstore.append", ...), so a latency breakdown and a fault replay talk
// about the same places.
type Trace struct {
	Name  string
	roots []*Span
	cur   *Span
}

// NewTrace returns an empty trace.
func NewTrace(name string) *Trace { return &Trace{Name: name} }

// Span is one timed operation in virtual time: [Start, End) on the owning
// worker's clock, with the bytes the operation moved (0 when meaningless).
type Span struct {
	Site       string
	Start, End time.Duration
	Bytes      int64
	Children   []*Span
	parent     *Span
}

// Duration reports the span's virtual elapsed time.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.End - s.Start
}

// Root returns the first top-level span (nil if none finished yet).
func (t *Trace) Root() *Span {
	if t == nil || len(t.roots) == 0 {
		return nil
	}
	return t.roots[0]
}

// Roots returns all top-level spans.
func (t *Trace) Roots() []*Span {
	if t == nil {
		return nil
	}
	return t.roots
}

func (t *Trace) push(site string, now time.Duration) *Span {
	sp := &Span{Site: site, Start: now}
	if t.cur != nil {
		sp.parent = t.cur
		t.cur.Children = append(t.cur.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.cur = sp
	return sp
}

func (t *Trace) pop(sp *Span, now time.Duration, bytes int64) {
	sp.End = now
	sp.Bytes = bytes
	t.cur = sp.parent
}

// String renders the span tree, one span per line, children indented under
// their parent with the virtual duration and payload size of each span.
func (t *Trace) String() string {
	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "trace %s\n", t.Name)
	}
	for _, r := range t.roots {
		writeSpan(&b, r, 0)
	}
	return b.String()
}

func writeSpan(b *strings.Builder, sp *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s  %v", sp.Site, sp.Duration())
	if sp.Bytes > 0 {
		fmt.Fprintf(b, "  [%dB]", sp.Bytes)
	}
	b.WriteByte('\n')
	for _, ch := range sp.Children {
		writeSpan(b, ch, depth+1)
	}
}

// Op is one in-flight observed operation, returned by Config.Begin. The
// zero value is inert: when neither tracing nor a stats registry is
// attached, Begin/End cost a few branches and zero allocations.
type Op struct {
	c     *Clock
	reg   *Registry
	sp    *Span
	site  string
	start time.Duration
}

// Begin starts an observed operation at site on the worker's clock. It
// opens a trace span if the clock has a trace attached, and arranges for
// the elapsed virtual time and byte count to be recorded in the config's
// stats registry — and an EvOp event in the clock's sink — at End. Safe
// with nil clock/config pieces.
func (c *Config) Begin(clk *Clock, site string) Op {
	if clk == nil || c == nil || (c.Stats == nil && clk.trace == nil && clk.events == nil) {
		return Op{}
	}
	op := Op{c: clk, reg: c.Stats, site: site, start: clk.now}
	if clk.trace != nil {
		op.sp = clk.trace.push(site, clk.now)
	}
	return op
}

// End finishes the operation, attributing everything the clock accumulated
// since Begin (device charges, meter penalties, injected delays, nested
// work) to the site. bytes is the payload the operation moved, 0 if not
// meaningful. End on a zero Op is a no-op.
func (o Op) End(bytes int64) {
	if o.c == nil {
		return
	}
	now := o.c.now
	if o.sp != nil {
		o.c.trace.pop(o.sp, now, bytes)
	}
	if o.reg != nil {
		o.reg.Observe(o.site, now-o.start, bytes, now)
	}
	if o.c.events != nil {
		o.c.events.Emit(Event{T: now, Kind: EvOp, Site: o.site, Dur: now - o.start, Bytes: bytes})
	}
}
