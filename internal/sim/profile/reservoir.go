package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Exemplar is one retained slow transaction: its full span tree plus
// enough metadata to order and replay it. Seq is the profiler's admission
// counter, which makes ordering deterministic under the virtual clock even
// when several transactions share a duration and start time.
type Exemplar struct {
	Seq   int64
	Start time.Duration // virtual start on its worker's clock
	Dur   time.Duration
	Err   string // final outcome, "" for commit
	Root  *sim.Span
}

// Reservoir retains the top-k slowest exemplars with bounded memory. It is
// not concurrency-safe; Profiler serializes access under its mutex.
type Reservoir struct {
	k  int
	xs []Exemplar // sorted: slowest first
}

// NewReservoir returns a reservoir keeping the k slowest offers (k <= 0
// keeps none).
func NewReservoir(k int) *Reservoir { return &Reservoir{k: k} }

// Offer considers one transaction for retention. Ordering is by duration
// descending, then start ascending, then seq ascending, so the retained
// set is a deterministic function of the offered set.
func (r *Reservoir) Offer(x Exemplar) {
	if r.k <= 0 {
		return
	}
	if len(r.xs) == r.k && !less(x, r.xs[len(r.xs)-1]) {
		return // faster than (or tied with) the current k-th slowest
	}
	i := sort.Search(len(r.xs), func(i int) bool { return less(x, r.xs[i]) })
	r.xs = append(r.xs, Exemplar{})
	copy(r.xs[i+1:], r.xs[i:])
	r.xs[i] = x
	if len(r.xs) > r.k {
		r.xs = r.xs[:r.k]
	}
}

// less orders exemplars for retention: slower wins, earlier start breaks
// ties, lower seq breaks remaining ties.
func less(a, b Exemplar) bool {
	if a.Dur != b.Dur {
		return a.Dur > b.Dur
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Seq < b.Seq
}

// Len reports how many exemplars are retained.
func (r *Reservoir) Len() int { return len(r.xs) }

// Exemplars returns the retained set, slowest first.
func (r *Reservoir) Exemplars() []Exemplar {
	out := make([]Exemplar, len(r.xs))
	copy(out, r.xs)
	return out
}

// String renders one line per exemplar with its dominant component, plus
// the slowest exemplar's full span tree.
func (r *Reservoir) String() string {
	var b strings.Builder
	for i, x := range r.xs {
		a := Analyze(x.Root)
		outcome := x.Err
		if outcome == "" {
			outcome = "commit"
		}
		fmt.Fprintf(&b, "#%d  dur %v  start %v  %s  [%s]\n", i+1, x.Dur, x.Start, outcome, a.String())
	}
	if len(r.xs) > 0 {
		b.WriteString("slowest span tree:\n")
		b.WriteString(spanString(r.xs[0].Root))
	}
	return b.String()
}

func spanString(sp *sim.Span) string {
	var b strings.Builder
	var walk func(s *sim.Span, depth int)
	walk = func(s *sim.Span, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s  %v", s.Site, s.Duration())
		if s.Bytes > 0 {
			fmt.Fprintf(&b, "  [%dB]", s.Bytes)
		}
		b.WriteByte('\n')
		for _, ch := range s.Children {
			walk(ch, depth+1)
		}
	}
	if sp != nil {
		walk(sp, 0)
	}
	return b.String()
}
