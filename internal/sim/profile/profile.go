// Package profile turns the raw telemetry brackets of internal/sim (span
// trees, per-site histograms, flight events) into answers to the questions
// the paper keeps asking: which substrate actually dominates an engine's
// end-to-end latency, what did the slowest transactions spend their time
// on, and is the engine burning its latency SLO.
//
// The model makes critical-path analysis exact rather than heuristic: a
// worker is one Clock, so a transaction's span tree is strictly sequential
// — every nanosecond of the root span's duration lies in exactly one
// span's exclusive self-time. Attributing each span's self-time to its
// site's component therefore telescopes: the component shares sum to the
// end-to-end latency identically (conservation), with no sampling error.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/sim"
)

// Residual is the component holding virtual time not bracketed by any
// instrumented site: local compute between substrate calls, meter queueing
// charged outside a bracket, and retry-loop overhead.
const Residual = "residual"

// KnownComponents is the closed set of substrate components attribution
// can produce. The site-label lint fails any registry site whose component
// is not in this set, so label drift cannot silently mis-attribute.
func KnownComponents() []string {
	return []string{
		"backoff",    // engine.Run retry backoff waits
		"checkpoint", // ckpt.<engine>.{flush,truncate}
		"coherence",  // <engine>.coherence.{round,...} invalidation fan-out
		"device",     // dram/pm/ssd/obj/cxl media access
		"memnode",    // memory-node allocator RPCs
		"raft",       // log replication consensus
		"rdma",       // one-sided/two-sided fabric verbs
		Residual,
		"storage", // logstore/replica/volume storage-node services
		"tcp",     // TCP request/response legs and 2PC fan-out rounds
	}
}

// Component maps a site label to its substrate component. Unknown heads
// map to themselves so new subsystems show up (and fail the lint) rather
// than vanish into a catch-all.
func Component(site string) string {
	if strings.Contains(site, ".coherence") {
		return "coherence"
	}
	head := site
	if i := strings.IndexByte(site, '.'); i >= 0 {
		head = site[:i]
	}
	switch head {
	case "dram", "pm", "ssd", "obj", "cxl":
		return "device"
	case "logstore", "replica", "volume":
		return "storage"
	case "ckpt":
		return "checkpoint"
	}
	return head
}

// LintSite checks a site label against the `<component>.<op>` taxonomy:
// lowercase dotted segments, at least two, and a component from
// KnownComponents (the single-segment "backoff" span site is also
// accepted). It returns nil for conforming labels.
func LintSite(site string) error {
	if site == "backoff" {
		return nil
	}
	segs := strings.Split(site, ".")
	if len(segs) < 2 {
		return fmt.Errorf("site %q: want <component>.<op>", site)
	}
	for _, s := range segs {
		if s == "" {
			return fmt.Errorf("site %q: empty segment", site)
		}
		for _, r := range s {
			if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
				return fmt.Errorf("site %q: segment %q has non [a-z0-9_-] rune %q", site, s, r)
			}
		}
	}
	comp := Component(site)
	for _, k := range KnownComponents() {
		if comp == k {
			return nil
		}
	}
	return fmt.Errorf("site %q: component %q not in known set %v", site, comp, KnownComponents())
}

// Attribution is an end-to-end latency broken down by substrate component.
// By construction Sum() == Total exactly (see package comment); consumers
// that re-derive Total from merged sources should still tolerate rounding.
type Attribution struct {
	Total time.Duration
	Comp  map[string]time.Duration
}

// Sum adds up the per-component shares.
func (a Attribution) Sum() time.Duration {
	var s time.Duration
	for _, d := range a.Comp {
		s += d
	}
	return s
}

// Share reports component c's fraction of Total (0 when Total is 0).
func (a Attribution) Share(c string) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Comp[c]) / float64(a.Total)
}

// Dominant returns the component with the largest share (ties broken
// alphabetically, "" when empty).
func (a Attribution) Dominant() string {
	var best string
	var bestD time.Duration = -1
	for _, c := range sortedComps(a.Comp) {
		if d := a.Comp[c]; d > bestD {
			best, bestD = c, d
		}
	}
	return best
}

func sortedComps(m map[string]time.Duration) []string {
	cs := make([]string, 0, len(m))
	for c := range m {
		cs = append(cs, c)
	}
	sort.Strings(cs)
	return cs
}

// add folds o into a.
func (a *Attribution) add(o Attribution) {
	a.Total += o.Total
	if a.Comp == nil {
		a.Comp = map[string]time.Duration{}
	}
	for c, d := range o.Comp {
		a.Comp[c] += d
	}
}

// Analyze walks a span tree and attributes the root's end-to-end duration
// to components by exclusive self-time. The root span itself carries no
// site cost — its self-time is the Residual component.
func Analyze(root *sim.Span) Attribution {
	a := Attribution{Comp: map[string]time.Duration{}}
	if root == nil {
		return a
	}
	a.Total = root.Duration()
	var walk func(sp *sim.Span, comp string)
	walk = func(sp *sim.Span, comp string) {
		self := sp.Duration()
		for _, ch := range sp.Children {
			self -= ch.Duration()
			walk(ch, Component(ch.Site))
		}
		a.Comp[comp] += self
	}
	walk(root, Residual)
	return a
}

// Profiler aggregates per-transaction attributions for one engine: the
// running component breakdown, a latency histogram, the top-k slowest
// exemplar span trees, and (optionally) an SLO burn tracker. It is safe
// for concurrent use by the workers of a RunGroup; each transaction is
// profiled on its own worker's clock and folded in under a mutex at End.
type Profiler struct {
	Name string

	mu   sync.Mutex
	attr Attribution
	txns int64
	res  *Reservoir
	slo  *SLOTracker
	hist *metrics.Hist
}

// NewProfiler returns a profiler retaining the k slowest transaction
// traces as exemplars.
func NewProfiler(name string, k int) *Profiler {
	return &Profiler{Name: name, res: NewReservoir(k), hist: metrics.NewHist()}
}

// SetSLO attaches a latency objective; subsequent transactions feed its
// burn-rate windows.
func (p *Profiler) SetSLO(s SLO) {
	p.mu.Lock()
	p.slo = NewSLOTracker(s)
	p.mu.Unlock()
}

// SLO returns the attached tracker (nil if none).
func (p *Profiler) SLO() *SLOTracker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slo
}

// Txn is an in-flight profiled transaction. The zero value is inert, so
// callers can unconditionally End a Txn from a nil Profiler.
type Txn struct {
	p    *Profiler
	prev *sim.Trace
	root *sim.Span
	c    *sim.Clock
}

// Begin starts profiling one transaction on the worker's clock: it swaps
// in a fresh trace (saving any attached one) and opens the root "txn"
// span. Safe on a nil Profiler — returns an inert Txn.
func (p *Profiler) Begin(c *sim.Clock) Txn {
	if p == nil || c == nil {
		return Txn{}
	}
	t := Txn{p: p, prev: c.Trace(), c: c}
	tr := sim.NewTrace("txn")
	c.SetTrace(tr)
	t.root = c.StartSpan("txn")
	return t
}

// End closes the transaction's root span, restores the clock's previous
// trace, and folds the attribution, exemplar and SLO observation into the
// profiler. err reports the transaction's final outcome.
func (t Txn) End(err error) {
	if t.p == nil {
		return
	}
	c := t.c
	c.FinishSpan(t.root, 0)
	c.SetTrace(t.prev)
	a := Analyze(t.root)
	p := t.p
	p.mu.Lock()
	p.txns++
	seq := p.txns
	p.attr.add(a)
	p.res.Offer(Exemplar{Seq: seq, Start: t.root.Start, Dur: t.root.Duration(), Err: errString(err), Root: t.root})
	if p.slo != nil {
		p.slo.Observe(c.Now(), t.root.Duration(), err == nil)
	}
	p.mu.Unlock()
	p.hist.Record(t.root.Duration())
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Txns reports the number of transactions profiled.
func (p *Profiler) Txns() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txns
}

// Attribution returns a copy of the aggregate breakdown.
func (p *Profiler) Attribution() Attribution {
	p.mu.Lock()
	defer p.mu.Unlock()
	cp := Attribution{Total: p.attr.Total, Comp: make(map[string]time.Duration, len(p.attr.Comp))}
	for c, d := range p.attr.Comp {
		cp.Comp[c] = d
	}
	return cp
}

// Hist returns the transaction latency histogram.
func (p *Profiler) Hist() *metrics.Hist { return p.hist }

// Exemplars returns the retained slowest transactions, slowest first.
func (p *Profiler) Exemplars() []Exemplar {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.res.Exemplars()
}

// String renders the attribution as "comp share, comp share, ..." ordered
// by descending share.
func (a Attribution) String() string {
	type cs struct {
		c string
		d time.Duration
	}
	rows := make([]cs, 0, len(a.Comp))
	for _, c := range sortedComps(a.Comp) {
		rows = append(rows, cs{c, a.Comp[c]})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	var b strings.Builder
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.1f%%", r.c, 100*a.Share(r.c))
	}
	return b.String()
}
