package profile

import (
	"fmt"
	"strings"
	"sync"

	"github.com/disagglab/disagg/internal/sim"
)

// FlightRecorder is a fixed-size ring buffer of recent substrate events —
// the always-on black box a worker carries so that when an invariant
// trips, the last moments before the failure are an inspectable timeline
// rather than gone. It implements sim.EventSink. Like the Clock it is
// attached to, a FlightRecorder is single-worker: not concurrency-safe.
type FlightRecorder struct {
	buf   []sim.Event
	next  int
	full  bool
	total int64
}

// NewFlightRecorder returns a recorder retaining the last n events
// (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{buf: make([]sim.Event, n)}
}

// Emit records one event, evicting the oldest when full.
func (f *FlightRecorder) Emit(e sim.Event) {
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next, f.full = 0, true
	}
	f.total++
}

// Total reports how many events were ever emitted (retained or evicted).
func (f *FlightRecorder) Total() int64 { return f.total }

// Cap reports the ring capacity.
func (f *FlightRecorder) Cap() int { return len(f.buf) }

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []sim.Event {
	if !f.full {
		out := make([]sim.Event, f.next)
		copy(out, f.buf[:f.next])
		return out
	}
	out := make([]sim.Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// String renders the retained timeline, one event per line.
func (f *FlightRecorder) String() string {
	evs := f.Events()
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d retained of %d total\n", len(evs), f.total)
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Blackbox aggregates the flight recorders of a workload's workers so a
// test harness can dump every timeline on an invariant failure. Recorder
// registration is concurrency-safe (workers start under RunGroup); each
// returned recorder itself stays single-worker.
type Blackbox struct {
	mu   sync.Mutex
	labs []string
	recs []*FlightRecorder
}

// NewBlackbox returns an empty aggregator.
func NewBlackbox() *Blackbox { return &Blackbox{} }

// Recorder creates, registers and returns a labeled recorder retaining n
// events.
func (b *Blackbox) Recorder(label string, n int) *FlightRecorder {
	f := NewFlightRecorder(n)
	b.mu.Lock()
	b.labs = append(b.labs, label)
	b.recs = append(b.recs, f)
	b.mu.Unlock()
	return f
}

// Size reports the number of registered recorders.
func (b *Blackbox) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recs)
}

// Dump renders every recorder's timeline. Call only after the workers
// have stopped (recorders are not concurrency-safe).
func (b *Blackbox) Dump() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var sb strings.Builder
	for i, f := range b.recs {
		fmt.Fprintf(&sb, "--- %s ---\n", b.labs[i])
		sb.WriteString(f.String())
	}
	return sb.String()
}
