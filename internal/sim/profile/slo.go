package profile

import (
	"fmt"
	"sync"
	"time"
)

// SLO is a latency service-level objective: at least Objective of
// transactions complete successfully within Target, judged over sliding
// windows of Window virtual time.
type SLO struct {
	Target    time.Duration // per-transaction latency objective
	Objective float64       // e.g. 0.99 — fraction that must meet Target
	Window    time.Duration // burn-rate evaluation window
}

// sloBuckets is the number of sub-buckets a window is split into; finer
// granularity tightens the window edge at the cost of a larger (still
// bounded) map.
const sloBuckets = 8

type sloBucket struct{ good, bad int64 }

// SLOTracker counts SLO-violating transactions in virtual-time buckets
// and reports the burn rate: the window's violation fraction divided by
// the objective's error budget (1 - Objective). Burn 1 means the budget
// is being spent exactly at the sustainable rate; above 1 the SLO is
// burning down. It is safe for concurrent use: workers in a RunGroup
// observe on their own clocks, which may be skewed relative to each
// other, so buckets are keyed by absolute virtual-time index and pruned
// once they fall far behind the newest observation.
type SLOTracker struct {
	slo  SLO
	gran time.Duration

	mu      sync.Mutex
	buckets map[int64]*sloBucket
	maxIdx  int64
}

// NewSLOTracker returns a tracker for the given objective. Window and
// Target must be positive; Objective must be in (0,1).
func NewSLOTracker(s SLO) *SLOTracker {
	if s.Window <= 0 || s.Target <= 0 || s.Objective <= 0 || s.Objective >= 1 {
		panic(fmt.Sprintf("profile: invalid SLO %+v", s))
	}
	gran := s.Window / sloBuckets
	if gran <= 0 {
		gran = 1
	}
	return &SLOTracker{slo: s, gran: gran, buckets: map[int64]*sloBucket{}}
}

// SLO returns the tracked objective.
func (t *SLOTracker) SLO() SLO { return t.slo }

// Observe records one transaction finishing at virtual time now with the
// given latency; ok reports whether it committed. A transaction violates
// the SLO when it failed or exceeded the latency target.
func (t *SLOTracker) Observe(now, lat time.Duration, ok bool) {
	idx := int64(now / t.gran)
	t.mu.Lock()
	b := t.buckets[idx]
	if b == nil {
		b = &sloBucket{}
		t.buckets[idx] = b
	}
	if ok && lat <= t.slo.Target {
		b.good++
	} else {
		b.bad++
	}
	if idx > t.maxIdx {
		t.maxIdx = idx
		// Prune buckets that can no longer fall inside any window ending
		// at or after the newest observation, keeping memory bounded by
		// ~2 windows regardless of run length.
		floor := t.maxIdx - 2*sloBuckets
		for k := range t.buckets {
			if k < floor {
				delete(t.buckets, k)
			}
		}
	}
	t.mu.Unlock()
}

// Status is a point-in-time SLO evaluation over the window ending at the
// evaluation time.
type Status struct {
	Good, Bad int64
	ErrFrac   float64 // violating fraction of the window's transactions
	Burn      float64 // ErrFrac / (1 - Objective); >1 burns the budget
}

// Snapshot evaluates the window (now-Window, now]. With no observations
// in the window, burn is 0.
func (t *SLOTracker) Snapshot(now time.Duration) Status {
	hi := int64(now / t.gran)
	lo := hi - sloBuckets
	var st Status
	t.mu.Lock()
	for k, b := range t.buckets {
		if k > lo && k <= hi {
			st.Good += b.good
			st.Bad += b.bad
		}
	}
	t.mu.Unlock()
	if n := st.Good + st.Bad; n > 0 {
		st.ErrFrac = float64(st.Bad) / float64(n)
		st.Burn = st.ErrFrac / (1 - t.slo.Objective)
	}
	return st
}

// BurnRate is shorthand for Snapshot(now).Burn.
func (t *SLOTracker) BurnRate(now time.Duration) float64 { return t.Snapshot(now).Burn }

func (s Status) String() string {
	return fmt.Sprintf("good %d bad %d err %.3f%% burn %.2fx", s.Good, s.Bad, 100*s.ErrFrac, s.Burn)
}
