package profile

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// buildTree runs a synthetic sequential transaction on one clock/trace and
// returns the root span: txn{ rdma.read, ssd.write{ dram.copy }, gap }.
func buildTree(t *testing.T) *sim.Span {
	t.Helper()
	c := sim.NewClock()
	c.SetTrace(sim.NewTrace("txn"))
	root := c.StartSpan("txn")
	c.Advance(10 * time.Microsecond) // residual compute

	sp := c.StartSpan("rdma.read")
	c.Advance(30 * time.Microsecond)
	c.FinishSpan(sp, 4096)

	sp = c.StartSpan("ssd.write")
	c.Advance(20 * time.Microsecond)
	ch := c.StartSpan("dram.copy")
	c.Advance(5 * time.Microsecond)
	c.FinishSpan(ch, 512)
	c.FinishSpan(sp, 8192)

	c.Advance(15 * time.Microsecond) // trailing residual
	c.FinishSpan(root, 0)
	return root
}

func TestAnalyzeConservation(t *testing.T) {
	root := buildTree(t)
	a := Analyze(root)
	if a.Total != 80*time.Microsecond {
		t.Fatalf("total = %v, want 80µs", a.Total)
	}
	if a.Sum() != a.Total {
		t.Fatalf("sum %v != total %v: attribution must conserve exactly", a.Sum(), a.Total)
	}
	want := map[string]time.Duration{
		"rdma":   30 * time.Microsecond,
		"device": 25 * time.Microsecond, // ssd self 20µs + dram child 5µs
		Residual: 25 * time.Microsecond, // 10µs leading + 15µs trailing
	}
	for comp, d := range want {
		if a.Comp[comp] != d {
			t.Errorf("comp[%s] = %v, want %v", comp, a.Comp[comp], d)
		}
	}
	if dom := a.Dominant(); dom != "rdma" {
		t.Errorf("dominant = %q, want rdma (ties broken alphabetically)", dom)
	}
}

func TestAnalyzeNilAndEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Total != 0 || a.Sum() != 0 {
		t.Fatalf("nil root: total %v sum %v, want 0", a.Total, a.Sum())
	}
	if a.Dominant() != "" {
		t.Fatalf("nil root dominant = %q, want empty", a.Dominant())
	}
	if a.Share("rdma") != 0 {
		t.Fatalf("zero-total share must be 0")
	}
}

func TestComponent(t *testing.T) {
	cases := map[string]string{
		"rdma.read":                 "rdma",
		"ssd.write":                 "device",
		"dram.copy":                 "device",
		"pm.flush":                  "device",
		"obj.get":                   "device",
		"cxl.load":                  "device",
		"logstore.append":           "storage",
		"replica.read":              "storage",
		"volume.write":              "storage",
		"ckpt.aurora.flush":         "checkpoint",
		"polardb.coherence.round":   "coherence",
		"raft.replicate":            "raft",
		"memnode.alloc":             "memnode",
		"tcp.prepare":               "tcp",
		"backoff":                   "backoff",
		"mystery.op":                "mystery", // unknown heads surface, not vanish
		"snowflake.coherence.fence": "coherence",
	}
	for site, want := range cases {
		if got := Component(site); got != want {
			t.Errorf("Component(%q) = %q, want %q", site, got, want)
		}
	}
}

func TestLintSite(t *testing.T) {
	for _, good := range []string{
		"rdma.read", "ssd.write", "logstore.append", "ckpt.aurora.truncate",
		"tcp.rpc", "backoff", "polardb.coherence.round", "memnode.alloc",
	} {
		if err := LintSite(good); err != nil {
			t.Errorf("LintSite(%q) = %v, want nil", good, err)
		}
	}
	for _, bad := range []string{
		"",              // empty
		"rdma",          // single segment, not backoff
		"RDMA.read",     // uppercase
		"rdma..read",    // empty segment
		"rdma.re ad", // space
		"mystery.op", // unknown component
	} {
		if err := LintSite(bad); err == nil {
			t.Errorf("LintSite(%q) = nil, want error", bad)
		}
	}
}

func TestKnownComponentsSortedAndClosed(t *testing.T) {
	ks := KnownComponents()
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("KnownComponents not sorted/unique at %q >= %q", ks[i-1], ks[i])
		}
	}
	found := false
	for _, k := range ks {
		if k == Residual {
			found = true
		}
	}
	if !found {
		t.Fatalf("KnownComponents must include %q", Residual)
	}
}

func TestReservoirOrderingAndBounds(t *testing.T) {
	r := NewReservoir(3)
	durs := []time.Duration{5, 1, 9, 3, 7, 9, 2} // µs-scale, values only matter relatively
	for i, d := range durs {
		r.Offer(Exemplar{Seq: int64(i + 1), Start: time.Duration(i), Dur: d})
	}
	xs := r.Exemplars()
	if len(xs) != 3 {
		t.Fatalf("retained %d, want 3", len(xs))
	}
	// Slowest first: 9 (seq 3, start 2), 9 (seq 6, start 5), 7 (seq 5).
	if xs[0].Dur != 9 || xs[1].Dur != 9 || xs[2].Dur != 7 {
		t.Fatalf("durations %v %v %v, want 9 9 7", xs[0].Dur, xs[1].Dur, xs[2].Dur)
	}
	if xs[0].Seq != 3 || xs[1].Seq != 6 {
		t.Fatalf("tie broken by start/seq: got seqs %d %d, want 3 6", xs[0].Seq, xs[1].Seq)
	}
	// A fast offer must not displace anything.
	r.Offer(Exemplar{Seq: 99, Dur: 1})
	if got := r.Exemplars(); got[2].Dur != 7 {
		t.Fatalf("fast offer displaced the k-th slowest")
	}
	// k <= 0 keeps none.
	empty := NewReservoir(0)
	empty.Offer(Exemplar{Seq: 1, Dur: 100})
	if empty.Len() != 0 {
		t.Fatalf("k=0 reservoir retained %d", empty.Len())
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Emit(sim.Event{T: time.Duration(i), Kind: sim.EvOp, Site: "rdma.read"})
	}
	if f.Total() != 5 || f.Cap() != 3 {
		t.Fatalf("total %d cap %d, want 5 3", f.Total(), f.Cap())
	}
	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.T != time.Duration(i+2) {
			t.Fatalf("event %d at T=%v, want %v (oldest-first after wrap)", i, e.T, time.Duration(i+2))
		}
	}
	if !strings.Contains(f.String(), "3 retained of 5 total") {
		t.Fatalf("String() = %q", f.String())
	}
	// Below-minimum capacity clamps to 1.
	one := NewFlightRecorder(0)
	one.Emit(sim.Event{Site: "a.b"})
	one.Emit(sim.Event{Site: "c.d"})
	if got := one.Events(); len(got) != 1 || got[0].Site != "c.d" {
		t.Fatalf("cap-1 ring kept %v", got)
	}
}

func TestBlackboxDump(t *testing.T) {
	b := NewBlackbox()
	r1 := b.Recorder("worker 0", 4)
	r2 := b.Recorder("worker 1", 4)
	r1.Emit(sim.Event{Kind: sim.EvFault, Site: "ssd.write", Note: "torn"})
	r2.Emit(sim.Event{Kind: sim.EvRetry, Site: "txn", Note: "conflict"})
	if b.Size() != 2 {
		t.Fatalf("size %d, want 2", b.Size())
	}
	d := b.Dump()
	for _, want := range []string{"--- worker 0 ---", "--- worker 1 ---", "torn", "conflict"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestSLOTrackerBurnMath(t *testing.T) {
	s := SLO{Target: 100 * time.Microsecond, Objective: 0.9, Window: time.Millisecond}
	tr := NewSLOTracker(s)
	// 10 observations in the window: 8 good, 1 slow, 1 failed.
	now := 500 * time.Microsecond
	for i := 0; i < 8; i++ {
		tr.Observe(now, 50*time.Microsecond, true)
	}
	tr.Observe(now, 200*time.Microsecond, true) // slow
	tr.Observe(now, 50*time.Microsecond, false) // failed
	st := tr.Snapshot(time.Millisecond)
	if st.Good != 8 || st.Bad != 2 {
		t.Fatalf("good %d bad %d, want 8 2", st.Good, st.Bad)
	}
	if st.ErrFrac != 0.2 {
		t.Fatalf("errfrac %v, want 0.2", st.ErrFrac)
	}
	// Budget is 1-0.9 = 0.1; errfrac 0.2 burns at 2x.
	if st.Burn < 1.99 || st.Burn > 2.01 {
		t.Fatalf("burn %v, want 2.0", st.Burn)
	}
	// A window far past the observations sees nothing: burn 0.
	if later := tr.Snapshot(10 * time.Millisecond); later.Burn != 0 || later.Good != 0 {
		t.Fatalf("stale window: %+v, want empty", later)
	}
}

func TestSLOTrackerWindowSlidesAndPrunes(t *testing.T) {
	s := SLO{Target: time.Microsecond, Objective: 0.5, Window: 800 * time.Nanosecond}
	tr := NewSLOTracker(s) // gran 100ns
	for i := 0; i < 100; i++ {
		tr.Observe(time.Duration(i)*100*time.Nanosecond, time.Nanosecond, true)
	}
	tr.mu.Lock()
	n := len(tr.buckets)
	tr.mu.Unlock()
	if n > 2*sloBuckets+1 {
		t.Fatalf("bucket map grew to %d, want bounded by ~2 windows (%d)", n, 2*sloBuckets+1)
	}
	st := tr.Snapshot(100 * 100 * time.Nanosecond)
	if st.Good == 0 {
		t.Fatalf("window ending at the last observation saw nothing")
	}
}

func TestSLOTrackerRejectsInvalid(t *testing.T) {
	for _, s := range []SLO{
		{Target: 0, Objective: 0.9, Window: time.Millisecond},
		{Target: time.Microsecond, Objective: 0, Window: time.Millisecond},
		{Target: time.Microsecond, Objective: 1, Window: time.Millisecond},
		{Target: time.Microsecond, Objective: 0.9, Window: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSLOTracker(%+v) did not panic", s)
				}
			}()
			NewSLOTracker(s)
		}()
	}
}

func TestProfilerEndToEnd(t *testing.T) {
	p := NewProfiler("test", 2)
	c := sim.NewClock()
	prev := sim.NewTrace("outer")
	c.SetTrace(prev)

	run := func(work time.Duration, fail bool) {
		tx := p.Begin(c)
		sp := c.StartSpan("rdma.write")
		c.Advance(work)
		c.FinishSpan(sp, 128)
		c.Advance(work / 4) // residual
		var err error
		if fail {
			err = errors.New("boom")
		}
		tx.End(err)
	}
	run(40*time.Microsecond, false)
	run(80*time.Microsecond, true)
	run(20*time.Microsecond, false)

	if c.Trace() != prev {
		t.Fatalf("profiler did not restore the previous trace")
	}
	if p.Txns() != 3 {
		t.Fatalf("txns %d, want 3", p.Txns())
	}
	a := p.Attribution()
	if a.Sum() != a.Total {
		t.Fatalf("aggregate sum %v != total %v", a.Sum(), a.Total)
	}
	if a.Comp["rdma"] != 140*time.Microsecond {
		t.Fatalf("rdma %v, want 140µs", a.Comp["rdma"])
	}
	xs := p.Exemplars()
	if len(xs) != 2 || xs[0].Dur != 100*time.Microsecond || xs[0].Err != "boom" {
		t.Fatalf("exemplars %+v, want slowest (100µs, boom) first", xs)
	}
	if p.Hist().Max() != 100*time.Microsecond {
		t.Fatalf("hist max %v", p.Hist().Max())
	}
}

func TestProfilerSLOIntegration(t *testing.T) {
	p := NewProfiler("test", 1)
	p.SetSLO(SLO{Target: 10 * time.Microsecond, Objective: 0.9, Window: time.Millisecond})
	c := sim.NewClock()
	tx := p.Begin(c)
	c.Advance(50 * time.Microsecond) // exceeds target
	tx.End(nil)
	st := p.SLO().Snapshot(c.Now())
	if st.Bad != 1 || st.Good != 0 {
		t.Fatalf("slo saw good %d bad %d, want 0 1", st.Good, st.Bad)
	}
}

func TestNilProfilerInertAndAllocFree(t *testing.T) {
	var p *Profiler
	c := sim.NewClock()
	tx := p.Begin(c)
	tx.End(nil) // must not panic
	if p.Txns() != 0 {
		t.Fatalf("nil profiler counted a txn")
	}
	allocs := testing.AllocsPerRun(100, func() {
		t := p.Begin(c)
		t.End(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled profile path allocates %v per txn, want 0", allocs)
	}
}
