package fault

import (
	"errors"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Two injectors with the same seed and profile must produce identical
// verdicts for the same (site, op-index) sequence — the replayability
// guarantee the whole chaos suite rests on.
func TestDeterministicReplay(t *testing.T) {
	p := Profile{Name: "mix", Drop: 0.1, Duplicate: 0.1, Torn: 0.1, Delay: 0.1, MaxDelay: time.Millisecond}
	sites := []string{"rdma.read", "rdma.write", "logstore.append", "obj.put", "replica.ingest"}
	type verdict struct{ drop, dup, torn bool }
	run := func(seed int64) []verdict {
		inj := New(seed, p)
		var out []verdict
		for round := 0; round < 200; round++ {
			for _, s := range sites {
				f := inj.Inject(nil, s)
				out = append(out, verdict{f.Drop, f.Duplicate, f.Torn})
			}
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	if a1 := run(42); len(a1) != len(a) {
		t.Fatal("schedule length not stable")
	}
}

// Fault rates must track the profile probabilities, and injected errors
// must be recognizable via sim.ErrInjected.
func TestRatesAndErrors(t *testing.T) {
	inj := New(7, Profile{Name: "drops", Drop: 0.2})
	n := 10_000
	for i := 0; i < n; i++ {
		if f := inj.Inject(nil, "rdma.read"); f.Drop {
			if !errors.Is(f.Err, sim.ErrInjected) {
				t.Fatalf("injected error not tagged: %v", f.Err)
			}
		}
	}
	got := float64(inj.Drops.Load()) / float64(n)
	if got < 0.15 || got > 0.25 {
		t.Fatalf("drop rate %.3f far from 0.2", got)
	}
}

// Site prefixes must scope injection; Heal must silence it; Enable must
// re-arm it.
func TestSiteScopingAndHeal(t *testing.T) {
	inj := New(1, Profile{Name: "drops", Drop: 1.0, Sites: []string{"logstore."}})
	if f := inj.Inject(nil, "rdma.read"); f.Drop {
		t.Fatal("injected at unmatched site")
	}
	if f := inj.Inject(nil, "logstore.append"); !f.Drop {
		t.Fatal("no injection at matched site with Drop=1")
	}
	inj.Heal()
	if f := inj.Inject(nil, "logstore.append"); f.Drop {
		t.Fatal("injection after Heal")
	}
	inj.Enable()
	if f := inj.Inject(nil, "logstore.append"); !f.Drop {
		t.Fatal("no injection after Enable")
	}
}

// Partition windows drop everything inside [Start, End) and nothing
// outside.
func TestPartitionWindows(t *testing.T) {
	inj := New(1, Profile{
		Name:       "partition",
		Partitions: []Window{{Start: time.Millisecond, End: 2 * time.Millisecond}},
	})
	c := sim.NewClock()
	if f := inj.Inject(c, "rdma.read"); f.Drop {
		t.Fatal("dropped before the window")
	}
	c.Advance(time.Millisecond + 100*time.Microsecond)
	if f := inj.Inject(c, "rdma.read"); !f.Drop {
		t.Fatal("no drop inside the window")
	}
	c.Advance(time.Millisecond)
	if f := inj.Inject(c, "rdma.read"); f.Drop {
		t.Fatal("dropped after the window")
	}
}

// Delay faults advance the injected operation's clock inside
// [MaxDelay/4, MaxDelay); drops/dups/tears stay off.
func TestDelaySpikes(t *testing.T) {
	inj := New(3, Profile{Name: "delays", Delay: 1.0, MaxDelay: time.Millisecond})
	c := sim.NewClock()
	before := c.Now()
	if f := inj.Inject(c, "ssd.read"); f.Drop || f.Duplicate || f.Torn {
		t.Fatalf("delay profile injected non-delay fault: %+v", f)
	}
	d := c.Now() - before
	if d < time.Millisecond/4 || d >= time.Millisecond {
		t.Fatalf("spike %v outside [MaxDelay/4, MaxDelay)", d)
	}
	if inj.Delays.Load() != 1 {
		t.Fatalf("delay not counted: %d", inj.Delays.Load())
	}
}

// The standard profile set must cover the four fault classes the
// conformance suite promises: drops, delays, transient I/O errors, and
// crash-mid-append tears.
func TestStandardProfilesCoverFaultClasses(t *testing.T) {
	classes := map[string]bool{}
	for _, p := range Profiles() {
		if p.Drop > 0 || len(p.Partitions) > 0 {
			classes["drop"] = true
		}
		if p.Duplicate > 0 {
			classes["duplicate"] = true
		}
		if p.Torn > 0 {
			classes["torn"] = true
		}
		if p.Delay > 0 {
			classes["delay"] = true
		}
	}
	for _, want := range []string{"drop", "duplicate", "torn", "delay"} {
		if !classes[want] {
			t.Errorf("standard profiles miss fault class %q", want)
		}
	}
	if len(Profiles()) < 4 {
		t.Fatalf("want >= 4 standard profiles, got %d", len(Profiles()))
	}
}
