// Package fault implements seeded, deterministic fault injection for the
// simulated disaggregated fabric. An Injector is attached to a sim.Config
// (cfg.Fault) and is consulted by every wrapped substrate operation —
// RDMA verbs (internal/rdma), device I/O (internal/device), storage-node
// RPCs (internal/storagenode) and raft appends (internal/raft) — where it
// can inject message drops, duplicate deliveries, latency spikes,
// transient EIO-style errors, network partitions, and torn (crash-point)
// WAL appends.
//
// Decisions are a pure function of (seed, site, per-site op index), so a
// failing run is replayable from its seed: the n-th operation at a given
// site always receives the same verdict regardless of goroutine
// interleaving. (Which worker issues the n-th op can still vary across
// runs; single-worker runs are fully deterministic.)
package fault

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Window is a half-open virtual-time interval [Start, End) during which a
// partition profile drops every matched operation.
type Window struct {
	Start, End time.Duration
}

// Profile declares the fault mix injected at matched sites. Probabilities
// are per-operation and disjoint (evaluated in Drop, Duplicate, Torn,
// Delay order against one uniform draw).
type Profile struct {
	Name string
	// Drop is the probability an operation fails with a transient
	// injected error before taking effect.
	Drop float64
	// Duplicate is the probability a delivery is repeated.
	Duplicate float64
	// Torn is the probability a durable append persists only a prefix
	// of its batch before failing (crash-point mid-WAL-append). Sites
	// that cannot tear treat it as Drop.
	Torn float64
	// Delay is the probability of a latency spike of up to MaxDelay.
	Delay    float64
	MaxDelay time.Duration
	// Partitions lists virtual-time windows during which every matched
	// operation is dropped (a network partition of the matched
	// component).
	Partitions []Window
	// Sites restricts injection to sites with one of these prefixes
	// (empty: all sites).
	Sites []string
}

// Matches reports whether the profile injects at the given site.
func (p *Profile) Matches(site string) bool {
	if len(p.Sites) == 0 {
		return true
	}
	for _, s := range p.Sites {
		if strings.HasPrefix(site, s) {
			return true
		}
	}
	return false
}

// FabricSites matches the message-bearing fabric paths (everything except
// pure device timing charges), the default scope for drop/dup profiles.
var FabricSites = []string{"rdma.", "logstore.", "replica.", "volume.", "raft.", "obj."}

// AppendSites matches the durable-append crash-point sites.
var AppendSites = []string{"logstore.append", "volume.ingest", "raft.append", "obj.put"}

// Injector is a deterministic sim.FaultInjector. It is safe for
// concurrent use; Heal/Enable flip injection off/on (verification phases
// heal the fabric before reading final state).
type Injector struct {
	seed    int64
	profile Profile
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*atomic.Uint64

	// Injected counts faults injected by kind (stats/tests).
	Drops, Dups, Tears, Delays atomic.Int64
}

// New builds an injector for the profile under the given seed.
func New(seed int64, p Profile) *Injector {
	inj := &Injector{seed: seed, profile: p, counters: make(map[string]*atomic.Uint64)}
	inj.enabled.Store(true)
	return inj
}

// Seed reports the injector's seed (logged by failing tests).
func (i *Injector) Seed() int64 { return i.seed }

// Profile reports the active profile.
func (i *Injector) Profile() Profile { return i.profile }

// Heal disables injection: the fabric behaves perfectly afterwards.
func (i *Injector) Heal() { i.enabled.Store(false) }

// Enable re-arms injection after a Heal.
func (i *Injector) Enable() { i.enabled.Store(true) }

// Total reports how many faults of all kinds have been injected.
func (i *Injector) Total() int64 {
	return i.Drops.Load() + i.Dups.Load() + i.Tears.Load() + i.Delays.Load()
}

func (i *Injector) counter(site string) *atomic.Uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	c, ok := i.counters[site]
	if !ok {
		c = &atomic.Uint64{}
		i.counters[site] = c
	}
	return c
}

// mix64 is a splitmix64-style finalizer: a high-quality deterministic
// hash of the (seed, site, index) triple.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func siteHash(site string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// Inject implements sim.FaultInjector.
func (i *Injector) Inject(c *sim.Clock, site string) sim.FaultOutcome {
	if !i.enabled.Load() || !i.profile.Matches(site) {
		return sim.FaultOutcome{}
	}
	n := i.counter(site).Add(1)
	for _, w := range i.profile.Partitions {
		if c != nil && c.Now() >= w.Start && c.Now() < w.End {
			i.Drops.Add(1)
			return sim.FaultOutcome{Drop: true, Err: fmt.Errorf("%w: partition at %s (op %d, seed %d)", sim.ErrInjected, site, n, i.seed)}
		}
	}
	h := mix64(uint64(i.seed) ^ mix64(siteHash(site)^n*0x9E3779B97F4A7C15))
	u := float64(h>>11) / float64(1<<53) // uniform in [0,1)
	p := &i.profile
	switch {
	case u < p.Drop:
		i.Drops.Add(1)
		return sim.FaultOutcome{Drop: true, Err: fmt.Errorf("%w: drop at %s (op %d, seed %d)", sim.ErrInjected, site, n, i.seed)}
	case u < p.Drop+p.Duplicate:
		i.Dups.Add(1)
		return sim.FaultOutcome{Duplicate: true}
	case u < p.Drop+p.Duplicate+p.Torn:
		i.Tears.Add(1)
		return sim.FaultOutcome{Torn: true, Err: fmt.Errorf("%w: torn append at %s (op %d, seed %d)", sim.ErrInjected, site, n, i.seed)}
	case u < p.Drop+p.Duplicate+p.Torn+p.Delay:
		i.Delays.Add(1)
		if c != nil && p.MaxDelay > 0 {
			// Deterministic spike in [MaxDelay/4, MaxDelay).
			frac := float64(mix64(h)>>11) / float64(1<<53)
			c.Advance(p.MaxDelay/4 + time.Duration(frac*float64(p.MaxDelay-p.MaxDelay/4)))
		}
		return sim.FaultOutcome{}
	}
	return sim.FaultOutcome{}
}

// Profiles returns the standard chaos profiles the conformance suite runs
// every engine under. Rates are tuned so seeded workloads both observe
// real faults and still make progress within bounded retries.
func Profiles() []Profile {
	return []Profile{
		{Name: "drops", Drop: 0.05, Sites: FabricSites},
		{Name: "duplicates", Duplicate: 0.25, Sites: FabricSites},
		{Name: "delays", Delay: 0.5, MaxDelay: 2 * time.Millisecond},
		{Name: "transient-io", Drop: 0.08, Sites: []string{"logstore.", "replica.read", "obj.", "rdma.read", "rdma.call"}},
		{Name: "torn-append", Torn: 0.2, Sites: AppendSites},
		{Name: "partition", Partitions: []Window{{Start: 2 * time.Millisecond, End: 6 * time.Millisecond}}, Sites: FabricSites},
	}
}
