package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/metrics"
)

// SiteStats aggregates all observed operations at one site: a log-bucketed
// latency histogram plus a byte counter. Safe for concurrent use.
type SiteStats struct {
	Hist  *metrics.Hist
	bytes atomic.Int64
}

// Bytes reports the total payload observed at the site.
func (s *SiteStats) Bytes() int64 { return s.bytes.Load() }

// MeterEntry associates a contention meter with a site-style name so the
// registry can report utilization and queueing alongside latency sites.
type MeterEntry struct {
	Site string
	M    *Meter
}

// Registry is the process-wide telemetry sink: per-site latency histograms
// and byte counters fed by Config.Begin/Op.End, plus registered contention
// meters. One registry is shared by every worker in an experiment; it is
// safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	sites map[string]*SiteStats

	mmu        sync.Mutex
	meters     []MeterEntry
	batchers   []BatcherEntry
	gates      []GateEntry
	coherences []CoherenceEntry

	maxEnd atomic.Int64 // latest virtual end time observed (elapsed proxy)
}

// GateStats is the counter snapshot an admission gate exposes per site.
type GateStats struct {
	Admitted int64 // operations the gate let through
	Shed     int64 // operations rejected before any time was charged
}

// ShedFraction reports the share of arrivals the gate rejected.
func (g GateStats) ShedFraction() float64 {
	total := g.Admitted + g.Shed
	if total == 0 {
		return 0
	}
	return float64(g.Shed) / float64(total)
}

// GateEntry associates an admission gate's counter snapshot with a
// site-style name so the registry can report admit/shed decisions
// alongside latency sites.
type GateEntry struct {
	Site  string
	Stats func() GateStats
}

// BatcherEntry associates a batcher's counter snapshot with a site-style
// name so the registry can report flush occupancy alongside latency sites.
type BatcherEntry struct {
	Site  string
	Stats func() BatcherStats
}

// CoherenceStats is the counter snapshot a page-coherence directory
// exposes per site (the type lives here so the coherence layer can
// register with the registry without an import cycle).
type CoherenceStats struct {
	Publishes     int64 // commit-point publications (one per committed write set)
	Rounds        int64 // fan-out rounds (grouped publications; == Publishes unless batched)
	Invalidations int64 // invalidation messages delivered to holder tiers
	Bumps         int64 // directory version bumps
	StaleHits     int64 // cached copies rejected by commit-stamp validation
}

// CoherenceEntry associates a coherence directory's counter snapshot with
// a site-style name so the registry can report invalidation traffic
// alongside latency sites.
type CoherenceEntry struct {
	Site  string
	Stats func() CoherenceStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sites: make(map[string]*SiteStats)}
}

// Observe records one finished operation: d of virtual latency and bytes
// of payload at site, ending at virtual time end on the worker's clock.
func (r *Registry) Observe(site string, d time.Duration, bytes int64, end time.Duration) {
	if r == nil {
		return
	}
	r.mu.RLock()
	s := r.sites[site]
	r.mu.RUnlock()
	if s == nil {
		r.mu.Lock()
		s = r.sites[site]
		if s == nil {
			s = &SiteStats{Hist: metrics.NewHist()}
			r.sites[site] = s
		}
		r.mu.Unlock()
	}
	s.Hist.Record(d)
	s.bytes.Add(bytes)
	for {
		cur := r.maxEnd.Load()
		if int64(end) <= cur || r.maxEnd.CompareAndSwap(cur, int64(end)) {
			break
		}
	}
}

// RegisterMeter attaches a contention meter under a site-style name;
// utilization and queueing for it appear in Table. Constructors call this
// through Config.RegisterMeter when a registry is attached.
func (r *Registry) RegisterMeter(site string, m *Meter) {
	if r == nil || m == nil {
		return
	}
	r.mmu.Lock()
	r.meters = append(r.meters, MeterEntry{Site: site, M: m})
	r.mmu.Unlock()
}

// RegisterBatcher attaches a batcher's counter snapshot under a site-style
// name; flush counts, occupancy, and flush reasons for it appear in Table.
// NewBatcher calls this through Config.RegisterBatcher when a registry is
// attached.
func (r *Registry) RegisterBatcher(site string, stats func() BatcherStats) {
	if r == nil || stats == nil {
		return
	}
	r.mmu.Lock()
	r.batchers = append(r.batchers, BatcherEntry{Site: site, Stats: stats})
	r.mmu.Unlock()
}

// RegisterGate attaches an admission gate's counter snapshot under a
// site-style name; admit/shed counts for it appear in Table. The gate
// implementation calls this through Config.RegisterGate when a registry
// is attached.
func (r *Registry) RegisterGate(site string, stats func() GateStats) {
	if r == nil || stats == nil {
		return
	}
	r.mmu.Lock()
	r.gates = append(r.gates, GateEntry{Site: site, Stats: stats})
	r.mmu.Unlock()
}

// RegisterCoherence attaches a coherence directory's counter snapshot
// under a site-style name; publish/invalidation/stale-hit counts for it
// appear in Table. The directory calls this through
// Config.RegisterCoherence when a registry is attached.
func (r *Registry) RegisterCoherence(site string, stats func() CoherenceStats) {
	if r == nil || stats == nil {
		return
	}
	r.mmu.Lock()
	r.coherences = append(r.coherences, CoherenceEntry{Site: site, Stats: stats})
	r.mmu.Unlock()
}

// Coherence returns the counter snapshot registered under site, or a zero
// snapshot if none is.
func (r *Registry) Coherence(site string) CoherenceStats {
	if r == nil {
		return CoherenceStats{}
	}
	r.mmu.Lock()
	defer r.mmu.Unlock()
	for _, e := range r.coherences {
		if e.Site == site {
			return e.Stats()
		}
	}
	return CoherenceStats{}
}

// Gate returns the counter snapshot registered under site, or a zero
// snapshot if none is.
func (r *Registry) Gate(site string) GateStats {
	if r == nil {
		return GateStats{}
	}
	r.mmu.Lock()
	defer r.mmu.Unlock()
	for _, e := range r.gates {
		if e.Site == site {
			return e.Stats()
		}
	}
	return GateStats{}
}

// Batcher returns the counter snapshot registered under site, or a zero
// snapshot if none is.
func (r *Registry) Batcher(site string) BatcherStats {
	if r == nil {
		return BatcherStats{}
	}
	r.mmu.Lock()
	defer r.mmu.Unlock()
	for _, e := range r.batchers {
		if e.Site == site {
			return e.Stats()
		}
	}
	return BatcherStats{}
}

// Site returns the stats for one site, or nil if nothing was observed.
func (r *Registry) Site(site string) *SiteStats {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sites[site]
}

// Sites returns the observed site names, sorted.
func (r *Registry) Sites() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]string, 0, len(r.sites))
	for s := range r.sites {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Elapsed reports the latest virtual end time any observation carried —
// the registry's proxy for the experiment's virtual makespan, used as the
// denominator for meter utilization.
func (r *Registry) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.maxEnd.Load())
}

// Table renders the registry as one experiment-style table: a row per
// observed site (count, p50, p99, max, bytes) followed by a row per
// registered meter (ops, utilization ρ, queued fraction).
func (r *Registry) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "site", "count", "p50", "p99", "max", "bytes", "ρ", "queued%")
	if r == nil {
		return t
	}
	for _, site := range r.Sites() {
		s := r.Site(site)
		t.Row(site, s.Hist.Count(), s.Hist.Quantile(0.50), s.Hist.Quantile(0.99),
			s.Hist.Max(), metrics.FormatBytes(s.Bytes()), "-", "-")
	}
	elapsed := r.Elapsed()
	r.mmu.Lock()
	meters := append([]MeterEntry(nil), r.meters...)
	batchers := append([]BatcherEntry(nil), r.batchers...)
	gates := append([]GateEntry(nil), r.gates...)
	coherences := append([]CoherenceEntry(nil), r.coherences...)
	r.mmu.Unlock()
	for _, e := range meters {
		if e.M.TotalOps() == 0 {
			continue
		}
		t.Row(e.Site, e.M.TotalOps(), "-", "-", "-", "-",
			fmt.Sprintf("%.2f", e.M.Utilization(elapsed)),
			fmt.Sprintf("%.0f%%", 100*e.M.QueuedFraction()))
	}
	for _, e := range batchers {
		s := e.Stats()
		if s.Flushes == 0 {
			continue
		}
		// Batcher rows reuse the latency columns for flush-shape info:
		// count = flushes, p50 column = mean occupancy, p99 column = max
		// occupancy, max column = size/timeout split.
		t.Row(e.Site, s.Flushes,
			fmt.Sprintf("occ %.1f", s.MeanOccupancy()),
			fmt.Sprintf("max %d", s.MaxOccupancy),
			fmt.Sprintf("%ds/%dt", s.SizeFlushes, s.TimeoutFlushes),
			"-", "-", "-")
	}
	for _, e := range coherences {
		s := e.Stats()
		if s.Publishes == 0 && s.StaleHits == 0 {
			continue
		}
		// Coherence rows reuse the latency columns for protocol-shape
		// info: count = publishes, p50 column = fan-out rounds, p99
		// column = invalidations sent, max column = version bumps, bytes
		// column = stale hits caught by validation.
		t.Row(e.Site, s.Publishes,
			fmt.Sprintf("rnd %d", s.Rounds),
			fmt.Sprintf("inv %d", s.Invalidations),
			fmt.Sprintf("bump %d", s.Bumps),
			fmt.Sprintf("stale %d", s.StaleHits),
			"-", "-")
	}
	for _, e := range gates {
		s := e.Stats()
		if s.Admitted+s.Shed == 0 {
			continue
		}
		// Gate rows reuse the latency columns for admission-shape info:
		// count = arrivals, p50 column = admitted, p99 column = shed,
		// queued% column = shed fraction.
		t.Row(e.Site, s.Admitted+s.Shed,
			fmt.Sprintf("adm %d", s.Admitted),
			fmt.Sprintf("shed %d", s.Shed),
			"-", "-", "-",
			fmt.Sprintf("%.0f%%", 100*s.ShedFraction()))
	}
	return t
}

func (r *Registry) String() string { return r.Table("per-site telemetry").String() }
