package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpanNesting(t *testing.T) {
	cfg := DefaultConfig()
	tr := NewTrace("txn")
	c := NewClock()
	c.SetTrace(tr)

	outer := cfg.Begin(c, "volume.append")
	c.Advance(time.Microsecond)
	inner := cfg.Begin(c, "rdma.write")
	c.Advance(3 * time.Microsecond)
	inner.End(64)
	c.Advance(time.Microsecond)
	outer.End(128)

	root := tr.Root()
	if root == nil || root.Site != "volume.append" {
		t.Fatalf("root = %+v, want volume.append span", root)
	}
	if root.Duration() != 5*time.Microsecond || root.Bytes != 128 {
		t.Fatalf("root duration %v bytes %d, want 5µs/128", root.Duration(), root.Bytes)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(root.Children))
	}
	ch := root.Children[0]
	if ch.Site != "rdma.write" || ch.Duration() != 3*time.Microsecond || ch.Bytes != 64 {
		t.Fatalf("child = %+v", ch)
	}
	if ch.Start != time.Microsecond || ch.End != 4*time.Microsecond {
		t.Fatalf("child window [%v, %v), want [1µs, 4µs)", ch.Start, ch.End)
	}

	// After the outer span closes, the next operation is a sibling root,
	// not a child.
	next := cfg.Begin(c, "rdma.read")
	c.Advance(2 * time.Microsecond)
	next.End(0)
	if len(tr.Roots()) != 2 || tr.Roots()[1].Site != "rdma.read" {
		t.Fatalf("roots = %d, want a second top-level rdma.read span", len(tr.Roots()))
	}

	s := tr.String()
	for _, want := range []string{"trace txn", "volume.append  5µs  [128B]", "\n  rdma.write  3µs  [64B]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, s)
		}
	}
}

func TestOpAttributesToRegistry(t *testing.T) {
	cfg := DefaultConfig()
	reg := NewRegistry()
	cfg.Stats = reg
	c := NewClock()

	op := cfg.Begin(c, "ssd.read")
	c.Advance(100 * time.Microsecond)
	op.End(4096)

	s := reg.Site("ssd.read")
	if s == nil {
		t.Fatal("no stats recorded for ssd.read")
	}
	if s.Hist.Count() != 1 || s.Bytes() != 4096 || s.Hist.Max() != 100*time.Microsecond {
		t.Fatalf("count=%d bytes=%d max=%v", s.Hist.Count(), s.Bytes(), s.Hist.Max())
	}
	if reg.Elapsed() != 100*time.Microsecond {
		t.Fatalf("elapsed = %v, want 100µs", reg.Elapsed())
	}
	if got := reg.Sites(); len(got) != 1 || got[0] != "ssd.read" {
		t.Fatalf("sites = %v", got)
	}
}

func TestBeginEndNilSafe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Begin(nil, "x").End(0) // nil clock
	(Op{}).End(1)              // zero Op
	var nilCfg *Config
	nilCfg.Begin(NewClock(), "x").End(0)
	var nilReg *Registry
	nilReg.Observe("x", time.Second, 1, time.Second)
	nilReg.RegisterMeter("x", NewMeter(1))
	if nilReg.Site("x") != nil || nilReg.Sites() != nil || nilReg.Elapsed() != 0 {
		t.Fatal("nil registry reads should be zero-valued")
	}
	_ = nilReg.Table("t").String()
	var nilTr *Trace
	if nilTr.Root() != nil || nilTr.Roots() != nil {
		t.Fatal("nil trace reads should be zero-valued")
	}
	var nilSp *Span
	if nilSp.Duration() != 0 {
		t.Fatal("nil span duration should be 0")
	}
}

func TestBeginEndDisabledZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	c := NewClock()
	allocs := testing.AllocsPerRun(1000, func() {
		op := cfg.Begin(c, "rdma.read")
		c.Advance(time.Microsecond)
		op.End(64)
	})
	if allocs != 0 {
		t.Fatalf("disabled Begin/End allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkBeginEndDisabled(b *testing.B) {
	cfg := DefaultConfig()
	c := NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := cfg.Begin(c, "rdma.read")
		op.End(64)
	}
}

func BenchmarkBeginEndWithStats(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Stats = NewRegistry()
	c := NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := cfg.Begin(c, "rdma.read")
		c.Advance(time.Microsecond)
		op.End(64)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	reg := NewRegistry()
	cfg.Stats = reg
	m := NewMeter(2)
	cfg.RegisterMeter("nic", m)

	sites := []string{"rdma.read", "rdma.write", "ssd.read"}
	const workers, ops = 8, 500
	RunGroup(workers, func(id int, c *Clock) int {
		site := sites[id%len(sites)]
		for i := 0; i < ops; i++ {
			op := cfg.Begin(c, site)
			m.Charge(c, time.Microsecond)
			op.End(64)
		}
		return ops
	})

	var total, bytes int64
	for _, s := range reg.Sites() {
		total += reg.Site(s).Hist.Count()
		bytes += reg.Site(s).Bytes()
	}
	if total != workers*ops || bytes != workers*ops*64 {
		t.Fatalf("recorded %d ops / %d bytes, want %d / %d", total, bytes, workers*ops, workers*ops*64)
	}
	out := reg.Table("race").String()
	for _, want := range append(sites, "nic") {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestMeterEpochGuardAcrossPhaseReset(t *testing.T) {
	// Regression: Charge divides accumulated demand by the caller's elapsed
	// virtual time. A phase boundary that Resets worker clocks without
	// ResetStats used to divide a whole phase's demand by a near-zero
	// elapsed time, charging the first post-reset ops the full 16x penalty
	// cap. The clock epoch guard rolls the demand forward instead.
	const workers = 4
	m := NewMeter(1)
	clocks := make([]*Clock, workers)
	for i := range clocks {
		clocks[i] = NewClock()
	}
	phase := func() time.Duration {
		var worst time.Duration
		for i := 0; i < 400; i++ {
			for _, c := range clocks {
				if d := m.Charge(c, time.Microsecond); d > worst {
					worst = d
				}
			}
		}
		return worst
	}

	p1 := phase()
	// Steady state: each 1µs op is stretched ~N/cap = 4x.
	if p1 < 2*time.Microsecond || p1 > 8*time.Microsecond {
		t.Fatalf("phase-1 worst charge %v, want the ~4µs processor-sharing band", p1)
	}

	for _, c := range clocks {
		c.Reset() // phase boundary WITHOUT m.ResetStats()
	}
	p2 := phase()
	if p2 > 8*time.Microsecond {
		t.Fatalf("post-reset worst charge %v: spurious max-penalty spike (epoch guard broken)", p2)
	}

	// And the penalty still converges to ~N/cap within the new phase.
	var last time.Duration
	for _, c := range clocks {
		last = m.Charge(c, time.Microsecond)
	}
	if last < 2*time.Microsecond || last > 6*time.Microsecond {
		t.Fatalf("steady-state charge after reset = %v, want ~4µs", last)
	}
}
