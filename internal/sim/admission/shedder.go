package admission

import "sync/atomic"

// Shedder sheds load at a queue-depth watermark: at most Max requests may
// be in flight at once, and arrivals beyond that are rejected immediately
// instead of queueing. In the simulator "in flight" means concurrently
// executing worker goroutines — the same concurrency the contention
// meters see — so the watermark caps how many transactions can pile onto
// a hot resource before the rest are turned away at zero virtual cost.
//
// A nil *Shedder admits everything.
type Shedder struct {
	// Max is the in-flight watermark; values < 1 behave as 1.
	Max int64

	inflight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewShedder returns a shedder admitting at most max concurrent requests.
func NewShedder(max int) *Shedder {
	if max < 1 {
		max = 1
	}
	return &Shedder{Max: int64(max)}
}

// TryEnter claims an in-flight slot, reporting false when the watermark
// is reached. Every true must be paired with exactly one Exit.
func (s *Shedder) TryEnter() bool {
	if s == nil {
		return true
	}
	if s.inflight.Add(1) > s.Max {
		s.inflight.Add(-1)
		s.shed.Add(1)
		return false
	}
	s.admitted.Add(1)
	return true
}

// Exit releases a slot claimed by a successful TryEnter.
func (s *Shedder) Exit() {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
}

// InFlight reports the current in-flight count.
func (s *Shedder) InFlight() int64 {
	if s == nil {
		return 0
	}
	return s.inflight.Load()
}

// ShedderStats is a counter snapshot of the shedder's activity.
type ShedderStats struct {
	Admitted int64
	Shed     int64
}

// Stats snapshots the shedder's counters.
func (s *Shedder) Stats() ShedderStats {
	if s == nil {
		return ShedderStats{}
	}
	return ShedderStats{Admitted: s.admitted.Load(), Shed: s.shed.Load()}
}
