package admission

import "sync/atomic"

// budgetScale fixes the token fixed-point: tokens are stored ×1024 so a
// fractional earn ratio accumulates without floats in the hot path.
const budgetScale = 1024

// Budget is a client-side retry budget (the Finagle/"retry budget"
// design): every first attempt earns Ratio tokens, every retry spends
// one. When the budget is dry, retries stop and the last error surfaces —
// so a congested system sees at most (1 + Ratio)× its offered load
// instead of the (1 + Retries)× amplification of unconditional retrying.
//
// A Budget is shared by all workers of one logical client; all methods
// are safe for concurrent use. A nil *Budget never refuses a retry.
type Budget struct {
	ratio int64 // tokens earned per first attempt, ×budgetScale
	max   int64 // token cap, ×budgetScale
	tok   atomic.Int64

	earned  atomic.Int64 // first attempts observed
	spent   atomic.Int64 // retries paid for
	refused atomic.Int64 // retries refused dry
}

// NewBudget returns a budget earning ratio tokens per first attempt
// (e.g. 0.5 allows one retry per two requests in steady state), seeded
// and capped with burst whole tokens so cold starts and short error
// bursts can still retry.
func NewBudget(ratio float64, burst int) *Budget {
	if ratio < 0 {
		ratio = 0
	}
	if burst < 1 {
		burst = 1
	}
	b := &Budget{ratio: int64(ratio * budgetScale), max: int64(burst) * budgetScale}
	b.tok.Store(b.max)
	return b
}

// Earn credits the budget for one first attempt. engine.Run calls this
// once per Run, before any retrying.
func (b *Budget) Earn() {
	if b == nil {
		return
	}
	b.earned.Add(1)
	for {
		cur := b.tok.Load()
		next := cur + b.ratio
		if next > b.max {
			next = b.max
		}
		if next == cur || b.tok.CompareAndSwap(cur, next) {
			return
		}
	}
}

// TrySpend pays for one retry, reporting false (and leaving the budget
// untouched) when fewer than one whole token remains.
func (b *Budget) TrySpend() bool {
	if b == nil {
		return true
	}
	for {
		cur := b.tok.Load()
		if cur < budgetScale {
			b.refused.Add(1)
			return false
		}
		if b.tok.CompareAndSwap(cur, cur-budgetScale) {
			b.spent.Add(1)
			return true
		}
	}
}

// Tokens reports the whole tokens currently available.
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	return float64(b.tok.Load()) / budgetScale
}

// BudgetStats is a counter snapshot of a budget's activity.
type BudgetStats struct {
	Earned  int64 // first attempts credited
	Spent   int64 // retries paid
	Refused int64 // retries refused with a dry budget
}

// Stats snapshots the budget's counters.
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	return BudgetStats{Earned: b.earned.Load(), Spent: b.spent.Load(), Refused: b.refused.Load()}
}
