package admission

import (
	"errors"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := &Backoff{Base: 10 * time.Microsecond, Cap: 100 * time.Microsecond, Factor: 2}
	prev := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := b.Delay(time.Millisecond, attempt)
		nominal := float64(b.Base)
		for i := 0; i < attempt; i++ {
			nominal *= 2
		}
		if nominal > float64(b.Cap) {
			nominal = float64(b.Cap)
		}
		if d < time.Duration(nominal/2) || d >= time.Duration(nominal) {
			t.Fatalf("attempt %d: delay %v outside jitter range [%v, %v)",
				attempt, d, time.Duration(nominal/2), time.Duration(nominal))
		}
		if attempt >= 5 && d > b.Cap {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d, b.Cap)
		}
		_ = prev
		prev = d
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	b := Default()
	a := b.Delay(123*time.Microsecond, 3)
	if got := b.Delay(123*time.Microsecond, 3); got != a {
		t.Fatalf("same (now, attempt) gave different delays: %v vs %v", a, got)
	}
	if got := b.Delay(124*time.Microsecond, 3); got == a {
		t.Fatalf("different now gave identical delay %v (jitter not mixing)", a)
	}
}

func TestBackoffWaitChargesClock(t *testing.T) {
	c := sim.NewClock()
	b := Default()
	d := b.Wait(c, 0)
	if d <= 0 || c.Now() != d {
		t.Fatalf("Wait charged %v, clock at %v", d, c.Now())
	}
}

func TestNoBackoffChargesNothing(t *testing.T) {
	c := sim.NewClock()
	if d := NoBackoff.Wait(c, 5); d != 0 || c.Now() != 0 {
		t.Fatalf("NoBackoff charged %v (clock %v)", d, c.Now())
	}
	var nilPolicy *Backoff
	if d := nilPolicy.Wait(c, 0); d != 0 {
		t.Fatalf("nil policy charged %v", d)
	}
}

func TestBudgetEarnSpendRefuse(t *testing.T) {
	b := NewBudget(0.5, 2)
	// Burst: 2 tokens up front.
	if !b.TrySpend() || !b.TrySpend() {
		t.Fatal("burst tokens refused")
	}
	if b.TrySpend() {
		t.Fatal("spend succeeded on a dry budget")
	}
	// Two first attempts earn one whole token.
	b.Earn()
	b.Earn()
	if !b.TrySpend() {
		t.Fatal("earned token refused")
	}
	if b.TrySpend() {
		t.Fatal("budget over-earned")
	}
	st := b.Stats()
	if st.Earned != 2 || st.Spent != 3 || st.Refused != 2 {
		t.Fatalf("stats = %+v, want earned 2 spent 3 refused 2", st)
	}
}

func TestBudgetCapsAtBurst(t *testing.T) {
	b := NewBudget(1, 3)
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens = %v, want capped at 3", got)
	}
}

func TestNilBudgetAllowsAll(t *testing.T) {
	var b *Budget
	b.Earn()
	if !b.TrySpend() {
		t.Fatal("nil budget refused a retry")
	}
}

func TestBreakerTripFastFailProbe(t *testing.T) {
	c := sim.NewClock()
	br := NewBreaker(3, 100*time.Microsecond)
	for i := 0; i < 3; i++ {
		if !br.Allow(c) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		br.Record(c, true)
	}
	if br.State() != StateOpen {
		t.Fatalf("state = %d after %d failures, want open", br.State(), 3)
	}
	if br.Allow(c) {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
	c.Advance(100 * time.Microsecond)
	if !br.Allow(c) {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if br.State() != StateHalfOpen {
		t.Fatalf("state = %d, want half-open", br.State())
	}
	if br.Allow(c) {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	br.Record(c, false)
	if br.State() != StateClosed || !br.Allow(c) {
		t.Fatal("successful probe did not close the breaker")
	}
	st := br.Stats()
	if st.Trips != 1 || st.FastFails < 2 {
		t.Fatalf("stats = %+v, want 1 trip and >=2 fast-fails", st)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	c := sim.NewClock()
	br := NewBreaker(2, 50*time.Microsecond)
	br.Record(c, true)
	br.Record(c, true)
	c.Advance(50 * time.Microsecond)
	if !br.Allow(c) {
		t.Fatal("probe refused")
	}
	br.Record(c, true)
	if br.State() != StateOpen {
		t.Fatalf("state = %d after failed probe, want open", br.State())
	}
	// The cooldown restarts from the probe failure.
	if br.Allow(c) {
		t.Fatal("breaker allowed a request right after a failed probe")
	}
	if br.Stats().Trips != 2 {
		t.Fatalf("trips = %d, want 2", br.Stats().Trips)
	}
}

func TestShedderWatermark(t *testing.T) {
	s := NewShedder(2)
	if !s.TryEnter() || !s.TryEnter() {
		t.Fatal("shedder refused under the watermark")
	}
	if s.TryEnter() {
		t.Fatal("shedder admitted past the watermark")
	}
	s.Exit()
	if !s.TryEnter() {
		t.Fatal("shedder refused after an exit freed a slot")
	}
	st := s.Stats()
	if st.Admitted != 3 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want admitted 3 shed 1", st)
	}
}

func TestGateShedsOverWatermark(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Stats = sim.NewRegistry()
	g := NewGate(cfg, GateOpts{MaxUtil: 2, MinQueued: 0, Warmup: 10 * time.Microsecond})
	cfg.Admission = g

	m := sim.NewMeter(1)
	c := sim.NewClock()
	// Inside warmup: always admitted.
	if err := cfg.Admit(c, "hot", m); err != nil {
		t.Fatalf("warmup admit failed: %v", err)
	}
	// Drive the meter far past 2x oversubscription: lots of busy time
	// from another worker, little elapsed on ours.
	other := sim.NewClock()
	for i := 0; i < 64; i++ {
		m.Charge(other, 10*time.Microsecond)
	}
	c.Advance(20 * time.Microsecond)
	err := cfg.Admit(c, "hot", m)
	if !errors.Is(err, sim.ErrAdmission) {
		t.Fatalf("congested admit = %v, want ErrAdmission", err)
	}
	// Congestion cleared (much more elapsed): admitted again.
	c.Advance(100 * time.Millisecond)
	if err := cfg.Admit(c, "hot", m); err != nil {
		t.Fatalf("post-congestion admit failed: %v", err)
	}
	st := g.SiteStats("hot")
	if st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("site stats = %+v, want admitted 2 shed 1", st)
	}
	if reg := cfg.Stats.Gate("admit.hot"); reg.Shed != 1 {
		t.Fatalf("registry gate row = %+v, want shed 1", reg)
	}
}

func TestGateNilMeterAdmits(t *testing.T) {
	g := NewGate(nil, DefaultGateOpts())
	c := sim.NewClock()
	c.Advance(time.Second)
	if err := g.Admit(c, "x", nil); err != nil {
		t.Fatalf("nil-meter admit failed: %v", err)
	}
}
