package admission

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// GateOpts tunes a congestion-watermark admission gate.
type GateOpts struct {
	// MaxUtil is the meter-ρ watermark: operations are shed while the
	// resource's utilization (busy / capacity·elapsed) exceeds it. Values
	// above 1 mean "tolerate this much oversubscription before shedding";
	// the meter's processor-sharing penalty grows linearly with ρ up to
	// its cap, so MaxUtil picks the stretch factor the gate defends.
	MaxUtil float64
	// MinQueued additionally requires the meter's queued fraction (share
	// of charges that experienced contention) to reach this level, so a
	// short ρ spike from one large transfer does not shed.
	MinQueued float64
	// Warmup suppresses shedding before this much virtual time on the
	// caller's clock: early in a run elapsed is tiny and ρ estimates are
	// noise (this also exempts the substrate-internal probe clocks that
	// quorum appends use, which always sit near zero).
	Warmup time.Duration
}

// DefaultGateOpts defends the meters' linear-penalty region: shed while a
// resource is more than 4× oversubscribed and at least half its charges
// are queueing, after 200µs of warmup.
func DefaultGateOpts() GateOpts {
	return GateOpts{MaxUtil: 4, MinQueued: 0.5, Warmup: 200 * time.Microsecond}
}

// gateSite is one site's admit/shed counters.
type gateSite struct {
	admitted atomic.Int64
	shed     atomic.Int64
}

// Gate implements sim.Admitter: a congestion-watermark admission gate
// over the contention meter each substrate choke point passes in. It
// keeps per-site counters and registers them with the config's stats
// registry (rows named "admit.<site>") as sites first appear.
//
// Shedding at the substrate is deliberately blunt — the operation fails
// with sim.ErrAdmission before any virtual time is charged, and the
// engine surfaces the failure like any other substrate error. The point
// is that refused work costs (virtually) nothing, while admitted work
// sees a meter protected from the deep-penalty region.
type Gate struct {
	opts GateOpts
	cfg  *sim.Config

	mu    sync.Mutex
	sites map[string]*gateSite
}

// NewGate builds a gate with the given watermarks and attaches its
// per-site counters to cfg's stats registry. Install it with
// cfg.Admission = g.
func NewGate(cfg *sim.Config, o GateOpts) *Gate {
	return &Gate{opts: o, cfg: cfg, sites: make(map[string]*gateSite)}
}

// site returns (lazily creating and registering) the counters for site.
func (g *Gate) site(name string) *gateSite {
	g.mu.Lock()
	s := g.sites[name]
	if s == nil {
		s = &gateSite{}
		g.sites[name] = s
		if g.cfg != nil {
			g.cfg.RegisterGate("admit."+name, func() sim.GateStats {
				return sim.GateStats{Admitted: s.admitted.Load(), Shed: s.shed.Load()}
			})
		}
	}
	g.mu.Unlock()
	return s
}

// Admit implements sim.Admitter.
func (g *Gate) Admit(c *sim.Clock, site string, m *sim.Meter) error {
	s := g.site(site)
	if m == nil || c.Now() < g.opts.Warmup {
		s.admitted.Add(1)
		return nil
	}
	if rho := m.Utilization(c.Now()); rho > g.opts.MaxUtil && m.QueuedFraction() >= g.opts.MinQueued {
		s.shed.Add(1)
		return fmt.Errorf("%w: %s ρ=%.2f", sim.ErrAdmission, site, rho)
	}
	s.admitted.Add(1)
	return nil
}

// Stats aggregates admit/shed counts across every site the gate has seen.
func (g *Gate) Stats() sim.GateStats {
	var out sim.GateStats
	g.mu.Lock()
	for _, s := range g.sites {
		out.Admitted += s.admitted.Load()
		out.Shed += s.shed.Load()
	}
	g.mu.Unlock()
	return out
}

// SiteStats reports one site's admit/shed counts.
func (g *Gate) SiteStats(site string) sim.GateStats {
	g.mu.Lock()
	s := g.sites[site]
	g.mu.Unlock()
	if s == nil {
		return sim.GateStats{}
	}
	return sim.GateStats{Admitted: s.admitted.Load(), Shed: s.shed.Load()}
}
