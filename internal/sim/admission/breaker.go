package admission

import (
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Breaker states.
const (
	// StateClosed passes all requests through (normal operation).
	StateClosed int32 = iota
	// StateOpen fast-fails all requests until the cooldown elapses.
	StateOpen
	// StateHalfOpen lets exactly one probe through; its outcome decides
	// whether the breaker closes or re-opens.
	StateHalfOpen
)

// Breaker is a circuit breaker over sustained unavailability: after
// Threshold consecutive failures it opens and fast-fails every request
// for a virtual-time Cooldown, then lets a single half-open probe decide
// whether to close again. Fast-failing converts queueing on a dead
// dependency (each attempt burning timeouts and meter time) into an
// immediate local error.
//
// Virtual time comes from the caller clocks passed to Allow: workers in a
// sim.RunGroup start at zero together, so one worker's trip time is
// comparable against another worker's now. A nil *Breaker allows all.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	Threshold int
	// Cooldown is the virtual time the breaker stays open before probing.
	Cooldown time.Duration

	state    atomic.Int32
	fails    atomic.Int64
	openedAt atomic.Int64 // virtual ns of the trip

	trips     atomic.Int64
	fastFails atomic.Int64
}

// NewBreaker returns a closed breaker tripping after threshold
// consecutive failures and cooling down for cooldown of virtual time.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{Threshold: threshold, Cooldown: cooldown}
}

// Allow reports whether a request may proceed at the caller's virtual
// now. In the open state it returns false until the cooldown has
// elapsed, then admits exactly one caller as the half-open probe.
func (b *Breaker) Allow(c *sim.Clock) bool {
	if b == nil {
		return true
	}
	switch b.state.Load() {
	case StateClosed:
		return true
	case StateOpen:
		if c.Now() >= time.Duration(b.openedAt.Load())+b.Cooldown {
			// First caller past the cooldown becomes the probe.
			if b.state.CompareAndSwap(StateOpen, StateHalfOpen) {
				return true
			}
		}
		b.fastFails.Add(1)
		return false
	default: // StateHalfOpen: a probe is already in flight.
		b.fastFails.Add(1)
		return false
	}
}

// Record feeds one request outcome back at the caller's virtual now.
// Success closes the breaker and clears the failure streak; failure
// extends the streak and trips (or re-trips, from half-open) the breaker.
func (b *Breaker) Record(c *sim.Clock, failed bool) {
	if b == nil {
		return
	}
	if !failed {
		b.fails.Store(0)
		b.state.Store(StateClosed)
		return
	}
	n := b.fails.Add(1)
	st := b.state.Load()
	if st == StateHalfOpen || (st == StateClosed && n >= int64(b.Threshold)) {
		b.openedAt.Store(int64(c.Now()))
		if b.state.Swap(StateOpen) != StateOpen {
			b.trips.Add(1)
		}
	}
}

// State reports the current breaker state.
func (b *Breaker) State() int32 {
	if b == nil {
		return StateClosed
	}
	return b.state.Load()
}

// BreakerStats is a counter snapshot of the breaker's activity.
type BreakerStats struct {
	Trips     int64 // closed/half-open -> open transitions
	FastFails int64 // requests rejected without reaching the dependency
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	return BreakerStats{Trips: b.trips.Load(), FastFails: b.fastFails.Load()}
}
