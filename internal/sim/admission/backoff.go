// Package admission is the reusable overload-control layer for the
// simulated disaggregated stack: capped jittered exponential backoff
// charged to the virtual clock, per-client retry budgets, a circuit
// breaker that converts sustained unavailability into fast-fail with
// half-open probing, queue-depth load shedding, and congestion-watermark
// admission gates fed by sim.Meter's ρ and queued-fraction signals.
//
// The pieces compose but do not require each other: engine.Run wires
// backoff/budget/breaker/shedding around transaction attempts, while Gate
// plugs into sim.Config.Admission so substrate choke points (RDMA post,
// log-store appends, quorum/raft appends) shed before charging any time.
// Everything is deterministic given the virtual clock — jitter is derived
// by hashing (virtual now, attempt), not from a seeded RNG, so reruns of
// a seeded workload replay identical backoff schedules.
package admission

import (
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Backoff is a capped, jittered exponential backoff policy. The zero
// value waits zero time on every attempt — that is the pre-admission
// "retry immediately" behavior, available explicitly as NoBackoff for
// experiments that want to exhibit the retry storm.
//
// Backoff is stateless (Wait is a pure function of the clock and attempt
// number), so one policy value is safely shared by every worker.
type Backoff struct {
	// Base is the mean delay before the first retry (attempt 0).
	Base time.Duration
	// Cap bounds the exponential growth.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier; values <= 1 keep the
	// delay at Base.
	Factor float64
}

// NoBackoff is the explicit zero-delay policy: retries are immediate and
// charge no virtual time. Passing it to engine.RunOpts opts out of the
// default backoff — this is what a retry storm looks like.
var NoBackoff = &Backoff{}

// Default returns the policy engine.Run applies when Retries > 0 and no
// explicit Backoff is given: 5µs base (a few fabric round trips), doubling
// per attempt, capped at 2ms.
func Default() *Backoff {
	return &Backoff{Base: 5 * time.Microsecond, Cap: 2 * time.Millisecond, Factor: 2}
}

// Delay returns the jittered delay for the given retry attempt (0-based)
// at virtual time now, without charging it anywhere. The deterministic
// full-range jitter draws from [delay/2, delay) by hashing (now, attempt):
// concurrent workers whose clocks have drifted apart — which contention
// guarantees — decorrelate, while a replay of the same seeded workload
// reproduces the exact schedule.
func (b *Backoff) Delay(now time.Duration, attempt int) time.Duration {
	if b == nil || b.Base <= 0 {
		return 0
	}
	d := float64(b.Base)
	if b.Factor > 1 {
		for i := 0; i < attempt; i++ {
			d *= b.Factor
			if d >= float64(b.Cap) {
				break
			}
		}
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	// Map the hash to [0.5, 1.0) of the computed delay.
	u := float64(mix64(uint64(now)+0x9e3779b97f4a7c15*uint64(attempt+1))>>11) / float64(1<<53)
	return time.Duration(d * (0.5 + 0.5*u))
}

// Wait charges the jittered delay for attempt to the worker's virtual
// clock and returns what it charged. This is the whole point of the
// policy: failed work must consume virtual time, or the meters see
// infinite offered load at zero cost and the simulation livelocks.
func (b *Backoff) Wait(c *sim.Clock, attempt int) time.Duration {
	d := b.Delay(c.Now(), attempt)
	if d > 0 {
		c.Advance(d)
	}
	return d
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality avalanche of a
// 64-bit value, giving deterministic jitter with no RNG state to share.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
