package sim

import (
	"fmt"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

const (
	// EvOp is a completed instrumented operation (Config.Begin/Op.End).
	EvOp EventKind = iota
	// EvFault is a fault-layer decision that altered an operation
	// (drop, duplicate, torn append). Pure delays show up in the op's
	// duration instead of as a separate event.
	EvFault
	// EvRetry is a transaction attempt that failed and is being retried
	// by engine.Run (Note carries the error class).
	EvRetry
	// EvShed is an admission-control rejection (breaker open, shedder
	// full, or retry budget exhausted).
	EvShed
	// EvCheckpoint is a checkpoint-coordinator round boundary.
	EvCheckpoint
)

func (k EventKind) String() string {
	switch k {
	case EvOp:
		return "op"
	case EvFault:
		return "fault"
	case EvRetry:
		return "retry"
	case EvShed:
		return "shed"
	case EvCheckpoint:
		return "ckpt"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Event is one substrate occurrence on a worker's virtual timeline. Events
// are emitted through the worker's Clock, so like the Clock itself they are
// single-threaded: one worker, one clock, one sink.
type Event struct {
	T     time.Duration // virtual time of completion/decision
	Kind  EventKind
	Site  string        // site label, same taxonomy as fault/telemetry
	Dur   time.Duration // for EvOp: elapsed virtual time of the op
	Bytes int64         // for EvOp: payload moved
	Note  string        // kind-specific detail ("drop", "conflict", ...)
}

func (e Event) String() string {
	s := fmt.Sprintf("%12v %-5s %s", e.T, e.Kind, e.Site)
	if e.Kind == EvOp {
		s += fmt.Sprintf(" %v", e.Dur)
		if e.Bytes > 0 {
			s += fmt.Sprintf(" [%dB]", e.Bytes)
		}
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// EventSink receives the events of one worker. Implementations need not be
// concurrency-safe: a sink is attached to exactly one Clock.
type EventSink interface {
	Emit(Event)
}

// SetEvents attaches an event sink to the clock: subsequent instrumented
// operations, fault decisions, retry/shed outcomes and checkpoint rounds on
// this clock are emitted into s. Pass nil to detach. Like a Trace, a sink
// must not be shared between clocks.
func (c *Clock) SetEvents(s EventSink) { c.events = s }

// Events returns the attached event sink, if any.
func (c *Clock) Events() EventSink { return c.events }

// Emit forwards an event to the clock's sink, if one is attached. It is
// nil-safe and free when no sink is attached.
func (c *Clock) Emit(e Event) {
	if c != nil && c.events != nil {
		c.events.Emit(e)
	}
}
