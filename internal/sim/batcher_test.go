package sim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// countingFlush charges a fixed cost and returns each item doubled.
func countingFlush(cost time.Duration, calls *int, sizes *[]int) FlushFunc[int, int] {
	var mu sync.Mutex
	return func(c *Clock, items []int, out []int) error {
		mu.Lock()
		*calls++
		*sizes = append(*sizes, len(items))
		mu.Unlock()
		c.Advance(cost)
		for i, v := range items {
			out[i] = 2 * v
		}
		return nil
	}
}

func TestBatcherFlushOnSize(t *testing.T) {
	var calls int
	var sizes []int
	b := NewBatcher(nil, "test", BatchPolicy{MaxItems: 4, Window: time.Millisecond},
		countingFlush(10*time.Microsecond, &calls, &sizes))

	const workers = 8
	var wg sync.WaitGroup
	ends := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClock()
			r, err := b.Submit(c, w)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
			if r != 2*w {
				t.Errorf("worker %d: result %d, want %d", w, r, 2*w)
			}
			ends[w] = c.Now()
		}(w)
	}
	wg.Wait()

	s := b.Stats()
	if s.Items != workers {
		t.Fatalf("items = %d, want %d", s.Items, workers)
	}
	if calls != int(s.Flushes) {
		t.Fatalf("flush calls %d != recorded flushes %d", calls, s.Flushes)
	}
	if s.MaxOccupancy > 4 {
		t.Fatalf("occupancy %d exceeds MaxItems", s.MaxOccupancy)
	}
	for _, n := range sizes {
		if n < 1 || n > 4 {
			t.Fatalf("flush size %d out of range", n)
		}
	}
	// Everyone in a batch wakes at the same virtual time ≥ flush cost.
	for w, e := range ends {
		if e < 10*time.Microsecond {
			t.Fatalf("worker %d ended at %v, before flush cost", w, e)
		}
	}
}

func TestBatcherFlushOnTimeoutChargesWindow(t *testing.T) {
	var calls int
	var sizes []int
	const window = 50 * time.Microsecond
	b := NewBatcher(nil, "test", BatchPolicy{MaxItems: 8, Window: window, JoinYields: 4},
		countingFlush(10*time.Microsecond, &calls, &sizes))

	// A single submitter can never fill the batch: the leader must give
	// up on its own (no hang) and charge the virtual window.
	c := NewClock()
	r, err := b.Submit(c, 21)
	if err != nil || r != 42 {
		t.Fatalf("Submit = %d, %v", r, err)
	}
	if want := window + 10*time.Microsecond; c.Now() != want {
		t.Fatalf("clock = %v, want window+flush = %v", c.Now(), want)
	}
	s := b.Stats()
	if s.TimeoutFlushes != 1 || s.SizeFlushes != 0 {
		t.Fatalf("flush reasons = %ds/%dt, want 0s/1t", s.SizeFlushes, s.TimeoutFlushes)
	}
}

func TestBatcherSharedError(t *testing.T) {
	boom := errors.New("flush failed")
	b := NewBatcher(nil, "test", BatchPolicy{MaxItems: 4, JoinYields: 1 << 20},
		func(c *Clock, items []int, out []int) error { return boom })

	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = b.Submit(NewClock(), w)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("worker %d error = %v, want shared flush error", w, err)
		}
	}
}

func TestBatcherOnFlushCallback(t *testing.T) {
	var reasons []FlushReason
	var occs []int
	b := NewBatcher(nil, "test", BatchPolicy{
		MaxItems: 4, Window: time.Microsecond, JoinYields: 2,
		OnFlush: func(n int, r FlushReason) { occs = append(occs, n); reasons = append(reasons, r) },
	}, func(c *Clock, items []int, out []int) error { return nil })

	c := NewClock()
	if _, err := b.Submit(c, 1); err != nil {
		t.Fatal(err)
	}
	if len(reasons) != 1 || reasons[0] != FlushTimeout || occs[0] != 1 {
		t.Fatalf("OnFlush saw %v %v, want one timeout flush of 1", occs, reasons)
	}
}

func TestBatcherDisabledPathZeroAlloc(t *testing.T) {
	b := NewBatcher(nil, "test", BatchPolicy{MaxItems: 1},
		func(c *Clock, items []int, out []int) error {
			out[0] = items[0] + 1
			return nil
		})
	c := NewClock()
	// Warm the pool.
	if r, err := b.Submit(c, 1); err != nil || r != 2 {
		t.Fatalf("Submit = %d, %v", r, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := b.Submit(c, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkBatcherDisabled(b *testing.B) {
	bt := NewBatcher(nil, "bench", BatchPolicy{MaxItems: 1},
		func(c *Clock, items []int, out []int) error {
			out[0] = items[0]
			return nil
		})
	c := NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Submit(c, i); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatcherDeterministicCounters replays the same single-threaded
// submission sequence twice and requires identical counters and identical
// virtual completion times — the reproducibility property seeded fault
// replays depend on.
func TestBatcherDeterministicCounters(t *testing.T) {
	run := func() (BatcherStats, time.Duration) {
		var calls int
		var sizes []int
		b := NewBatcher(nil, "test", BatchPolicy{MaxItems: 4, Window: 20 * time.Microsecond, JoinYields: 2},
			countingFlush(5*time.Microsecond, &calls, &sizes))
		c := NewClock()
		for i := 0; i < 16; i++ {
			if _, err := b.Submit(c, i); err != nil {
				t.Fatal(err)
			}
			c.Advance(time.Microsecond)
		}
		return b.Stats(), c.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Fatalf("counters differ across replays: %+v vs %+v", s1, s2)
	}
	if t1 != t2 {
		t.Fatalf("virtual end differs across replays: %v vs %v", t1, t2)
	}
}
