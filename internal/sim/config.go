package sim

import "time"

// Config holds the calibrated latency/bandwidth models for every hardware
// path in the simulated disaggregated data center. Defaults follow the
// numbers cited by the surveyed papers (see DESIGN.md §2); every experiment
// accepts a Config so sweeps can explore alternative hardware points.
type Config struct {
	// Local DRAM access (cacheline granularity).
	DRAM LatencyModel
	// CXL.mem load/store (cacheline granularity, Type 3 expander).
	CXL LatencyModel
	// Persistent memory (Optane-like): fast reads, low write bandwidth.
	PMRead  LatencyModel
	PMWrite LatencyModel
	// LocalPMSyscall is the legacy I/O-stack software overhead charged
	// when PM is accessed through a filesystem/syscall path rather than
	// mapped directly (Exadata observation, §2.3).
	LocalPMSyscall time.Duration
	// NVMe SSD block access.
	SSDRead  LatencyModel
	SSDWrite LatencyModel
	// Cloud object storage (S3/XStore-like): very high base latency,
	// decent streaming bandwidth.
	ObjGet LatencyModel
	ObjPut LatencyModel
	// RDMA one-sided verbs (READ/WRITE/CAS/FAA). CAS/FAA move 8 bytes.
	RDMA LatencyModel
	// RDMAPerWQE is the marginal cost of each additional work-queue entry
	// in a doorbell-batched submission: a PostN of n verbs costs one RDMA
	// base + the summed transfer terms + (n-1)·RDMAPerWQE, which is what
	// makes batched posting cheaper than n individual doorbells.
	RDMAPerWQE time.Duration
	// RDMARPC is a two-sided SEND/RECV round trip including completion
	// handling on both sides but excluding the remote handler's compute.
	// It costs one network round trip (slightly above a one-sided verb
	// due to receive-side processing) — which is why, per Kalia et al.
	// (§2.3), an RPC persist can beat a one-sided write + flushing read,
	// which costs two dependent round trips.
	RDMARPC LatencyModel
	// RemoteCPU is the per-request dispatch/handler overhead charged on
	// the target node's CPU meter for two-sided operations.
	RemoteCPU time.Duration
	// TCP is a kernel TCP/IP RPC round trip.
	TCP LatencyModel
	// CPU approximates compute cost for in-memory operator work
	// (scan/filter/hash): a small per-call overhead plus a per-byte term
	// corresponding to a few GB/s of processing rate per core.
	CPU LatencyModel
	// NICSlots and CPUSlots size the default contention meters created
	// for nodes (service parallelism of a NIC / a node's cores).
	NICSlots int
	CPUSlots int
	// Fault, when non-nil, is consulted by every simulated substrate
	// operation (RDMA verbs, device I/O, storage-node RPCs) and may
	// inject drops, latency spikes, duplicate deliveries, and torn
	// appends. See internal/sim/fault for the seeded implementation.
	Fault FaultInjector
	// Admission, when non-nil, is consulted by substrate choke points
	// (RDMA post/call, log-store appends, raft/volume quorum appends)
	// before any virtual time is charged; it may shed the operation based
	// on the resource meter's congestion signals. See internal/sim/admission.
	Admission Admitter
	// Stats, when non-nil, receives a per-site latency/byte observation
	// from every instrumented substrate operation (via Begin/Op.End), and
	// substrate constructors register their contention meters with it.
	Stats *Registry
	// Trace asks experiments to record a virtual-time span tree for one
	// representative operation (disagg-bench -trace). Substrates don't
	// read it; they trace whenever the worker's clock has a Trace
	// attached.
	Trace bool
}

// RegisterMeter registers m with the attached stats registry, if any.
func (c *Config) RegisterMeter(site string, m *Meter) {
	if c.Stats != nil {
		c.Stats.RegisterMeter(site, m)
	}
}

// RegisterBatcher registers a batcher's counter snapshot with the attached
// stats registry, if any. NewBatcher calls this for you.
func (c *Config) RegisterBatcher(site string, stats func() BatcherStats) {
	if c.Stats != nil {
		c.Stats.RegisterBatcher(site, stats)
	}
}

// RegisterGate registers an admission gate's counter snapshot with the
// attached stats registry, if any.
func (c *Config) RegisterGate(site string, stats func() GateStats) {
	if c.Stats != nil {
		c.Stats.RegisterGate(site, stats)
	}
}

// RegisterCoherence registers a coherence directory's counter snapshot
// with the attached stats registry, if any. coherence.NewDirectory calls
// this for you.
func (c *Config) RegisterCoherence(site string, stats func() CoherenceStats) {
	if c.Stats != nil {
		c.Stats.RegisterCoherence(site, stats)
	}
}

// DefaultConfig returns the calibration described in DESIGN.md:
//
//	DRAM 100ns/25GBps · CXL 350ns/16GBps · PM read 300ns / write 500ns@2GBps
//	RDMA 1-sided 2µs/12.5GBps · RDMA RPC 3µs (+0.5µs remote CPU)
//	TCP 30µs/5GBps · SSD read 80µs / write 20µs @3GBps · S3 get 8ms/200MBps
func DefaultConfig() *Config {
	return &Config{
		DRAM:           LatencyModel{Base: 100 * time.Nanosecond, BytesPerSec: 25 * GB},
		CXL:            LatencyModel{Base: 350 * time.Nanosecond, BytesPerSec: 16 * GB},
		PMRead:         LatencyModel{Base: 300 * time.Nanosecond, BytesPerSec: 6 * GB},
		PMWrite:        LatencyModel{Base: 500 * time.Nanosecond, BytesPerSec: 2 * GB},
		LocalPMSyscall: 10 * time.Microsecond,
		SSDRead:        LatencyModel{Base: 80 * time.Microsecond, BytesPerSec: 3 * GB},
		SSDWrite:       LatencyModel{Base: 20 * time.Microsecond, BytesPerSec: 3 * GB},
		ObjGet:         LatencyModel{Base: 8 * time.Millisecond, BytesPerSec: 200 * MB},
		ObjPut:         LatencyModel{Base: 12 * time.Millisecond, BytesPerSec: 200 * MB},
		RDMA:           LatencyModel{Base: 2 * time.Microsecond, BytesPerSec: 12.5 * GB},
		RDMAPerWQE:     100 * time.Nanosecond,
		RDMARPC:        LatencyModel{Base: 3 * time.Microsecond, BytesPerSec: 12.5 * GB},
		RemoteCPU:      500 * time.Nanosecond,
		TCP:            LatencyModel{Base: 30 * time.Microsecond, BytesPerSec: 5 * GB},
		CPU:            LatencyModel{Base: 50 * time.Nanosecond, BytesPerSec: 4 * GB},
		NICSlots:       16,
		CPUSlots:       8,
	}
}

// Clone returns a deep copy so sweeps can mutate one field at a time.
func (c *Config) Clone() *Config {
	cp := *c
	return &cp
}
