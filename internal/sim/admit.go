package sim

import "errors"

// ErrAdmission is the sentinel wrapped by every admission-control
// rejection: a substrate choke point refused the operation before doing
// any work because its congestion signals (Meter ρ, queued fraction)
// crossed the configured watermark. Callers distinguish a shed from a
// fault or a conflict with errors.Is(err, sim.ErrAdmission).
var ErrAdmission = errors.New("sim: admission control shed")

// Admitter is consulted by substrate choke points (RDMA post, log-store
// appends, memnode RPCs) before charging any virtual time. The substrate
// passes its own contention meter so the gate can read the live ρ and
// queued-fraction signals for that resource; m may be nil for sites
// without a meter, in which case the gate can only use per-site state.
//
// An Admitter must be safe for concurrent use from many worker clocks.
// A non-nil error (wrapping ErrAdmission) rejects the operation with no
// virtual time charged — fast-fail is the point of shedding.
//
// The seeded gate implementation lives in internal/sim/admission; keeping
// only the interface here mirrors the FaultInjector split and avoids an
// import cycle.
type Admitter interface {
	Admit(c *Clock, site string, m *Meter) error
}

// Admit consults the configured admission controller, if any. Substrates
// call this at the same choke points where they Begin/Inject, passing the
// meter the operation is about to charge. Nil controller admits all.
func (c *Config) Admit(clk *Clock, site string, m *Meter) error {
	if c.Admission == nil {
		return nil
	}
	return c.Admission.Admit(clk, site, m)
}
