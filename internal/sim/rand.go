package sim

import "math/rand"

// NewRand returns a deterministic RNG for worker id under the given seed.
// Workers must never share an RNG (math/rand.Rand is not concurrency-safe),
// so every worker derives its own from (seed, id).
func NewRand(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(id)*7919 + 1))
}

// Zipf draws keys in [0, n) with a Zipfian skew parameter theta (s in
// math/rand terms). theta <= 1 is snapped just above 1 because math/rand
// requires s > 1; theta around 1.05–1.3 covers YCSB-style skew.
type Zipf struct {
	z *rand.Zipf
	n uint64
}

// NewZipf builds a Zipf generator over [0, n).
func NewZipf(r *rand.Rand, theta float64, n uint64) *Zipf {
	if theta <= 1 {
		theta = 1.0001
	}
	if n == 0 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(r, theta, 1, n-1), n: n}
}

// Next returns the next key.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// KeyChooser selects keys either uniformly or with Zipfian skew; theta == 0
// means uniform. It unifies workload key generation across experiments.
type KeyChooser struct {
	r    *rand.Rand
	zipf *Zipf
	n    uint64
}

// NewKeyChooser builds a chooser over [0, n) with the given skew.
func NewKeyChooser(r *rand.Rand, theta float64, n uint64) *KeyChooser {
	kc := &KeyChooser{r: r, n: n}
	if theta > 0 {
		kc.zipf = NewZipf(r, theta, n)
	}
	return kc
}

// Next returns the next key.
func (k *KeyChooser) Next() uint64 {
	if k.zipf != nil {
		return k.zipf.Next()
	}
	if k.n == 0 {
		return 0
	}
	return uint64(k.r.Int63n(int64(k.n)))
}
