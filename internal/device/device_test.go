package device

import (
	"bytes"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

func TestDRAMAccessCharges(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := NewDRAM(cfg, 4)
	c := sim.NewClock()
	d.Access(c, 64)
	if c.Now() != cfg.DRAM.Cost(64) {
		t.Fatalf("charged %v, want %v", c.Now(), cfg.DRAM.Cost(64))
	}
}

func TestPMReadWriteAsymmetry(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := NewPM(cfg, 4, false)
	rc, wc := sim.NewClock(), sim.NewClock()
	p.Read(rc, 4096)
	p.WritePersist(wc, 4096)
	if !(rc.Now() < wc.Now()) {
		t.Fatalf("PM read (%v) should be cheaper than persisted write (%v)", rc.Now(), wc.Now())
	}
}

func TestPMLegacyStackOverhead(t *testing.T) {
	cfg := sim.DefaultConfig()
	direct := NewPM(cfg, 4, false)
	legacy := NewPM(cfg, 4, true)
	dc, lc := sim.NewClock(), sim.NewClock()
	direct.Read(dc, 256)
	legacy.Read(lc, 256)
	if lc.Now()-dc.Now() != cfg.LocalPMSyscall {
		t.Fatalf("legacy overhead = %v, want %v", lc.Now()-dc.Now(), cfg.LocalPMSyscall)
	}
	// The Exadata observation (E7): remote PM over RDMA beats the local
	// legacy path.
	remote := cfg.RDMA.Cost(256) + cfg.PMRead.Cost(256)
	if !(remote < lc.Now()) {
		t.Fatalf("remote PM (%v) should beat legacy local PM (%v)", remote, lc.Now())
	}
}

func TestSSDSlowerThanPM(t *testing.T) {
	cfg := sim.DefaultConfig()
	s := NewSSD(cfg, 32)
	p := NewPM(cfg, 4, false)
	sc, pc := sim.NewClock(), sim.NewClock()
	s.Read(sc, 4096)
	p.Read(pc, 4096)
	if !(pc.Now() < sc.Now()/10) {
		t.Fatalf("PM (%v) should be ≫10x faster than SSD (%v)", pc.Now(), sc.Now())
	}
}

func TestObjectStorePutGet(t *testing.T) {
	cfg := sim.DefaultConfig()
	o := NewObjectStore(cfg)
	c := sim.NewClock()
	o.Put(c, "seg/1", []byte("hello object world"))
	got, err := o.Get(c, "seg/1")
	if err != nil || string(got) != "hello object world" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if _, err := o.Get(c, "missing"); err != ErrNoSuchObject {
		t.Fatalf("missing object error = %v", err)
	}
	if o.Len() != 1 || o.TotalBytes() != 18 {
		t.Fatalf("len=%d bytes=%d", o.Len(), o.TotalBytes())
	}
}

func TestObjectStoreImmutability(t *testing.T) {
	cfg := sim.DefaultConfig()
	o := NewObjectStore(cfg)
	c := sim.NewClock()
	src := []byte{1, 2, 3}
	o.Put(c, "k", src)
	src[0] = 99 // caller mutates its buffer after Put
	got, _ := o.Get(c, "k")
	if got[0] != 1 {
		t.Fatal("Put aliased caller buffer")
	}
	got[1] = 88 // caller mutates the returned buffer
	again, _ := o.Get(c, "k")
	if again[1] != 2 {
		t.Fatal("Get aliased stored buffer")
	}
}

func TestObjectStoreGetRange(t *testing.T) {
	cfg := sim.DefaultConfig()
	o := NewObjectStore(cfg)
	c := sim.NewClock()
	o.Put(c, "k", []byte("0123456789"))
	got, err := o.GetRange(c, "k", 2, 3)
	if err != nil || !bytes.Equal(got, []byte("234")) {
		t.Fatalf("range = %q, %v", got, err)
	}
	got, err = o.GetRange(c, "k", 8, 100) // clamped tail
	if err != nil || !bytes.Equal(got, []byte("89")) {
		t.Fatalf("tail range = %q, %v", got, err)
	}
	if _, err := o.GetRange(c, "k", -1, 2); err == nil {
		t.Fatal("negative offset should fail")
	}
	if _, err := o.GetRange(c, "nope", 0, 1); err == nil {
		t.Fatal("missing key should fail")
	}
}

func TestObjectStoreRangeCheaperThanFull(t *testing.T) {
	cfg := sim.DefaultConfig()
	o := NewObjectStore(cfg)
	setup := sim.NewClock()
	o.Put(setup, "big", make([]byte, 1<<24))
	full, partial := sim.NewClock(), sim.NewClock()
	o.Get(full, "big")
	o.GetRange(partial, "big", 0, 4096)
	if !(partial.Now() < full.Now()) {
		t.Fatalf("range read (%v) should be cheaper than full read (%v)", partial.Now(), full.Now())
	}
}

func TestObjectStoreDelete(t *testing.T) {
	cfg := sim.DefaultConfig()
	o := NewObjectStore(cfg)
	c := sim.NewClock()
	o.Put(c, "k", []byte("x"))
	o.Delete(c, "k")
	if _, err := o.Get(c, "k"); err != ErrNoSuchObject {
		t.Fatal("delete did not remove object")
	}
	if len(o.Keys()) != 0 {
		t.Fatal("keys not empty after delete")
	}
}

func TestTypicalLatencyOrdering(t *testing.T) {
	cfg := sim.DefaultConfig()
	var timers = []AccessTimer{NewDRAM(cfg, 1), NewPM(cfg, 1, false), NewSSD(cfg, 1)}
	prev := timers[0].TypicalLatency(4096)
	for _, at := range timers[1:] {
		cur := at.TypicalLatency(4096)
		if cur <= prev {
			t.Fatalf("tier ordering violated: %v then %v", prev, cur)
		}
		prev = cur
	}
}
