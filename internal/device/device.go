// Package device models the individual hardware components of a
// disaggregated data center: DRAM, persistent memory (PM), NVMe SSDs, and
// cloud object storage. Devices charge virtual latency on the caller's
// clock through a shared contention meter; some devices (the object store)
// also hold real data because higher layers store bytes in them.
package device

import (
	"errors"
	"sync"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// DRAM is a local memory device. Accesses are cacheline-ish: a per-access
// base latency plus streaming bandwidth for larger transfers.
type DRAM struct {
	cfg   *sim.Config
	meter *sim.Meter
}

// NewDRAM returns a DRAM device with the given number of channels.
func NewDRAM(cfg *sim.Config, channels int) *DRAM {
	d := &DRAM{cfg: cfg, meter: sim.NewMeter(channels)}
	cfg.RegisterMeter("dram", d.meter)
	return d
}

// Access charges one memory access of n bytes.
func (d *DRAM) Access(c *sim.Clock, n int) {
	op := d.cfg.Begin(c, "dram.access")
	d.meter.Charge(c, d.cfg.DRAM.Cost(n))
	op.End(int64(n))
}

// PM is a persistent-memory device (Optane-like). Reads are near-DRAM;
// persisted writes are limited by a much lower write bandwidth. The device
// tracks whether it is being accessed through a legacy I/O stack (per the
// Exadata observation, §2.3: syscall overheads can dwarf the medium).
type PM struct {
	cfg         *sim.Config
	meter       *sim.Meter
	LegacyStack bool
}

// NewPM returns a PM device; legacyStack selects the syscall-mediated
// access path used by experiment E7.
func NewPM(cfg *sim.Config, channels int, legacyStack bool) *PM {
	p := &PM{cfg: cfg, meter: sim.NewMeter(channels), LegacyStack: legacyStack}
	cfg.RegisterMeter("pm", p.meter)
	return p
}

// Read charges a read of n bytes.
func (p *PM) Read(c *sim.Clock, n int) {
	op := p.cfg.Begin(c, "pm.read")
	p.cfg.Inject(c, "pm.read")
	d := p.cfg.PMRead.Cost(n)
	if p.LegacyStack {
		d += p.cfg.LocalPMSyscall
	}
	p.meter.Charge(c, d)
	op.End(int64(n))
}

// WritePersist charges a write of n bytes that reaches the persistence
// domain before returning.
func (p *PM) WritePersist(c *sim.Clock, n int) {
	op := p.cfg.Begin(c, "pm.write")
	p.cfg.Inject(c, "pm.write")
	d := p.cfg.PMWrite.Cost(n)
	if p.LegacyStack {
		d += p.cfg.LocalPMSyscall
	}
	p.meter.Charge(c, d)
	op.End(int64(n))
}

// SSD is an NVMe block device.
type SSD struct {
	cfg   *sim.Config
	meter *sim.Meter
}

// NewSSD returns an SSD with the given queue depth.
func NewSSD(cfg *sim.Config, queueDepth int) *SSD {
	s := &SSD{cfg: cfg, meter: sim.NewMeter(queueDepth)}
	cfg.RegisterMeter("ssd", s.meter)
	return s
}

// Read charges a block read of n bytes. Fault injection can add latency
// spikes (the cost model has no error path; drops are a fabric property).
func (s *SSD) Read(c *sim.Clock, n int) {
	op := s.cfg.Begin(c, "ssd.read")
	s.cfg.Inject(c, "ssd.read")
	s.meter.Charge(c, s.cfg.SSDRead.Cost(n))
	op.End(int64(n))
}

// Write charges a durable block write of n bytes.
func (s *SSD) Write(c *sim.Clock, n int) {
	op := s.cfg.Begin(c, "ssd.write")
	s.cfg.Inject(c, "ssd.write")
	s.meter.Charge(c, s.cfg.SSDWrite.Cost(n))
	op.End(int64(n))
}

// ErrNoSuchObject is returned by ObjectStore.Get for missing keys.
var ErrNoSuchObject = errors.New("device: no such object")

// ObjectStore is an S3/XStore-like durable blob store: very high base
// latency, decent streaming bandwidth, immutable-object semantics. Unlike
// the pure cost devices above it actually holds the bytes, because
// Snowflake-style engines and the Socrates XStore tier store real data here.
type ObjectStore struct {
	cfg   *sim.Config
	meter *sim.Meter

	mu      sync.RWMutex
	objects map[string][]byte
}

// NewObjectStore returns an empty object store.
func NewObjectStore(cfg *sim.Config) *ObjectStore {
	o := &ObjectStore{cfg: cfg, meter: sim.NewMeter(64), objects: make(map[string][]byte)}
	cfg.RegisterMeter("obj", o.meter)
	return o
}

// Put stores an immutable object and charges the upload cost. Under
// fault injection an upload can fail before any bytes land (drop) or tear
// mid-transfer, leaving a truncated object behind — readers must treat
// short objects as torn tails (wal.DecodePrefix-style recovery).
func (o *ObjectStore) Put(c *sim.Clock, key string, data []byte) error {
	op := o.cfg.Begin(c, "obj.put")
	f := o.cfg.Inject(c, "obj.put")
	if f.Drop {
		op.End(0)
		return f.FaultErr()
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	if f.Torn {
		cp = cp[:len(cp)/2]
	}
	o.mu.Lock()
	o.objects[key] = cp
	o.mu.Unlock()
	o.meter.Charge(c, o.cfg.ObjPut.Cost(len(cp)))
	op.End(int64(len(cp)))
	if f.Torn {
		return f.FaultErr()
	}
	return nil
}

// Get fetches an object, charging the download cost.
func (o *ObjectStore) Get(c *sim.Clock, key string) ([]byte, error) {
	op := o.cfg.Begin(c, "obj.get")
	if f := o.cfg.Inject(c, "obj.get"); f.Drop || f.Torn {
		op.End(0)
		return nil, f.FaultErr()
	}
	o.mu.RLock()
	data, ok := o.objects[key]
	o.mu.RUnlock()
	if !ok {
		op.End(0)
		return nil, ErrNoSuchObject
	}
	o.meter.Charge(c, o.cfg.ObjGet.Cost(len(data)))
	op.End(int64(len(data)))
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// GetRange fetches length bytes at offset (cheap partial read, used for
// columnar pruning where only some column chunks are fetched).
func (o *ObjectStore) GetRange(c *sim.Clock, key string, off, length int) ([]byte, error) {
	op := o.cfg.Begin(c, "obj.get")
	if f := o.cfg.Inject(c, "obj.get"); f.Drop || f.Torn {
		op.End(0)
		return nil, f.FaultErr()
	}
	o.mu.RLock()
	data, ok := o.objects[key]
	o.mu.RUnlock()
	if !ok {
		op.End(0)
		return nil, ErrNoSuchObject
	}
	if off < 0 || off > len(data) {
		op.End(0)
		return nil, ErrNoSuchObject
	}
	end := off + length
	if end > len(data) {
		end = len(data)
	}
	o.meter.Charge(c, o.cfg.ObjGet.Cost(end-off))
	op.End(int64(end - off))
	cp := make([]byte, end-off)
	copy(cp, data[off:end])
	return cp, nil
}

// Delete removes an object (metadata op; charged a base put latency).
// Deletion is part of the log-truncation path (segment garbage
// collection), so it is fault-injectable like the other fabric ops: a
// dropped delete leaves the object in place and reports the fault —
// callers retry on the next round (deletion is idempotent).
func (o *ObjectStore) Delete(c *sim.Clock, key string) error {
	op := o.cfg.Begin(c, "obj.delete")
	if f := o.cfg.Inject(c, "obj.delete"); f.Drop || f.Torn {
		op.End(0)
		return f.FaultErr()
	}
	o.mu.Lock()
	delete(o.objects, key)
	o.mu.Unlock()
	o.meter.Charge(c, o.cfg.ObjPut.Base)
	op.End(0)
	return nil
}

// Len reports the number of stored objects.
func (o *ObjectStore) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.objects)
}

// Keys returns a snapshot of the stored keys (test/inspection helper).
func (o *ObjectStore) Keys() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ks := make([]string, 0, len(o.objects))
	for k := range o.objects {
		ks = append(ks, k)
	}
	return ks
}

// TotalBytes reports the total stored payload size.
func (o *ObjectStore) TotalBytes() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var n int64
	for _, v := range o.objects {
		n += int64(len(v))
	}
	return n
}

// AccessTimer exposes rough device timing for planners that reason about
// tiers (e.g. Pond's placement predictor compares DRAM vs CXL penalties).
type AccessTimer interface {
	// TypicalLatency reports the modeled latency of one n-byte access.
	TypicalLatency(n int) time.Duration
}

// TypicalLatency implements AccessTimer for DRAM.
func (d *DRAM) TypicalLatency(n int) time.Duration { return d.cfg.DRAM.Cost(n) }

// TypicalLatency implements AccessTimer for PM (read path).
func (p *PM) TypicalLatency(n int) time.Duration {
	d := p.cfg.PMRead.Cost(n)
	if p.LegacyStack {
		d += p.cfg.LocalPMSyscall
	}
	return d
}

// TypicalLatency implements AccessTimer for SSD (read path).
func (s *SSD) TypicalLatency(n int) time.Duration { return s.cfg.SSDRead.Cost(n) }
