// Package cxl models Compute Express Link Type 3 memory expansion
// (CXL.mem): cache-coherent, cacheline-granular load/store at a latency a
// few times that of local DRAM but ~6x lower than RDMA (DirectCXL, §3.3).
//
// Two access disciplines are modeled, matching the two integration options
// discussed by Ahn et al. (§3.3): random access pays the per-line base
// latency on every line, while sequential access with hardware prefetching
// is bandwidth-bound — the reason TPC-C-style scans see virtually no
// slowdown while random-heavy analytics lose 7-27%.
package cxl

import (
	"time"

	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
)

// LineSize is the coherence granule.
const LineSize = 64

// Device is a CXL.mem expander holding real data.
type Device struct {
	cfg   *sim.Config
	mem   *rdma.Memory
	meter *sim.Meter
}

// NewDevice allocates a CXL memory expander of the given size.
func NewDevice(cfg *sim.Config, size int) *Device {
	d := &Device{cfg: cfg, mem: rdma.NewMemory(size), meter: sim.NewMeter(cfg.NICSlots)}
	cfg.RegisterMeter("cxl", d.meter)
	return d
}

// Size reports usable bytes.
func (d *Device) Size() uint64 { return d.mem.Size() }

// Mem exposes the underlying word-atomic memory (coherent, so direct
// word ops are legal — unlike RDMA there is no NIC in the way).
func (d *Device) Mem() *rdma.Memory { return d.mem }

func lines(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + LineSize - 1) / LineSize
}

// Load performs a random (pointer-chase style) read: every touched line
// pays the CXL base latency.
func (d *Device) Load(c *sim.Clock, addr uint64, p []byte) error {
	op := d.cfg.Begin(c, "cxl.load")
	nl := lines(len(p))
	d.meter.Charge(c, time.Duration(nl)*d.cfg.CXL.Base)
	op.End(int64(len(p)))
	return d.mem.Read(addr, p)
}

// LoadSeq performs a sequential prefetched read: one base latency, then
// bandwidth-bound streaming.
func (d *Device) LoadSeq(c *sim.Clock, addr uint64, p []byte) error {
	op := d.cfg.Begin(c, "cxl.load")
	d.meter.Charge(c, d.cfg.CXL.Cost(len(p)))
	op.End(int64(len(p)))
	return d.mem.Read(addr, p)
}

// Store performs a random write (per-line base latency).
func (d *Device) Store(c *sim.Clock, addr uint64, p []byte) error {
	op := d.cfg.Begin(c, "cxl.store")
	nl := lines(len(p))
	d.meter.Charge(c, time.Duration(nl)*d.cfg.CXL.Base)
	op.End(int64(len(p)))
	return d.mem.Write(addr, p)
}

// StoreSeq performs a sequential streaming write.
func (d *Device) StoreSeq(c *sim.Clock, addr uint64, p []byte) error {
	op := d.cfg.Begin(c, "cxl.store")
	d.meter.Charge(c, d.cfg.CXL.Cost(len(p)))
	op.End(int64(len(p)))
	return d.mem.Write(addr, p)
}

// Tier identifies where a tiered allocation landed.
type Tier int

// Memory tiers for tiered allocation.
const (
	TierLocal Tier = iota // host DRAM
	TierCXL               // CXL expander
)

func (t Tier) String() string {
	if t == TierLocal {
		return "local"
	}
	return "cxl"
}

// TieredSpace is a two-tier memory space: host DRAM plus a CXL expander,
// with explicit placement (the "database-managed" option of Ahn et al.).
// Allocations are bump-pointer; this is an arena for experiments, not a
// general allocator.
type TieredSpace struct {
	cfg       *sim.Config
	local     *rdma.Memory
	localUsed uint64
	cxl       *Device
	cxlUsed   uint64
	dramMeter *sim.Meter
}

// NewTieredSpace builds a space with the given per-tier capacities.
func NewTieredSpace(cfg *sim.Config, localSize, cxlSize int) *TieredSpace {
	return &TieredSpace{
		cfg:       cfg,
		local:     rdma.NewMemory(localSize),
		cxl:       NewDevice(cfg, cxlSize),
		dramMeter: sim.NewMeter(cfg.NICSlots),
	}
}

// Region is a tiered allocation.
type Region struct {
	Tier Tier
	Addr uint64
	Size int
	sp   *TieredSpace
}

// Alloc reserves size bytes on the requested tier, spilling to the other
// tier if the preferred one is full. It reports the tier actually used.
func (s *TieredSpace) Alloc(preferred Tier, size int) (*Region, bool) {
	try := func(t Tier) (*Region, bool) {
		switch t {
		case TierLocal:
			if s.localUsed+uint64(size) <= s.local.Size() {
				r := &Region{Tier: t, Addr: s.localUsed, Size: size, sp: s}
				s.localUsed += uint64(size)
				return r, true
			}
		case TierCXL:
			if s.cxlUsed+uint64(size) <= s.cxl.Size() {
				r := &Region{Tier: t, Addr: s.cxlUsed, Size: size, sp: s}
				s.cxlUsed += uint64(size)
				return r, true
			}
		}
		return nil, false
	}
	if r, ok := try(preferred); ok {
		return r, true
	}
	other := TierCXL
	if preferred == TierCXL {
		other = TierLocal
	}
	return try(other)
}

// LocalFree reports remaining host-DRAM bytes.
func (s *TieredSpace) LocalFree() uint64 { return s.local.Size() - s.localUsed }

// CXLFree reports remaining expander bytes.
func (s *TieredSpace) CXLFree() uint64 { return s.cxl.Size() - s.cxlUsed }

// Read reads from the region with the given access pattern.
func (r *Region) Read(c *sim.Clock, off uint64, p []byte, sequential bool) error {
	switch r.Tier {
	case TierLocal:
		op := r.sp.cfg.Begin(c, "dram.access")
		r.sp.dramMeter.Charge(c, r.sp.cfg.DRAM.Cost(len(p)))
		op.End(int64(len(p)))
		return r.sp.local.Read(r.Addr+off, p)
	default:
		if sequential {
			return r.sp.cxl.LoadSeq(c, r.Addr+off, p)
		}
		return r.sp.cxl.Load(c, r.Addr+off, p)
	}
}

// Write writes to the region with the given access pattern.
func (r *Region) Write(c *sim.Clock, off uint64, p []byte, sequential bool) error {
	switch r.Tier {
	case TierLocal:
		op := r.sp.cfg.Begin(c, "dram.access")
		r.sp.dramMeter.Charge(c, r.sp.cfg.DRAM.Cost(len(p)))
		op.End(int64(len(p)))
		return r.sp.local.Write(r.Addr+off, p)
	default:
		if sequential {
			return r.sp.cxl.StoreSeq(c, r.Addr+off, p)
		}
		return r.sp.cxl.Store(c, r.Addr+off, p)
	}
}
