package cxl

import (
	"bytes"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

func TestDeviceLoadStoreRoundTrip(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := NewDevice(cfg, 4096)
	c := sim.NewClock()
	data := []byte("cxl.mem type 3 expander")
	if err := d.Store(c, 100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.Load(c, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestRandomVsSequentialAccess(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := NewDevice(cfg, 1<<20)
	buf := make([]byte, 64*1024)
	randC, seqC := sim.NewClock(), sim.NewClock()
	if err := d.Load(randC, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadSeq(seqC, 0, buf); err != nil {
		t.Fatal(err)
	}
	// 1024 lines: random pays 1024 bases; prefetch pays 1 base + bandwidth.
	if !(seqC.Now() < randC.Now()/10) {
		t.Fatalf("prefetched scan (%v) should be ≫10x faster than random (%v)", seqC.Now(), randC.Now())
	}
}

func TestCXLvsDRAMvsRDMALatency(t *testing.T) {
	// E18 (DirectCXL): CXL load ≈ 6x faster than RDMA read, a few x
	// slower than DRAM.
	cfg := sim.DefaultConfig()
	d := NewDevice(cfg, 4096)
	c := sim.NewClock()
	d.Load(c, 0, make([]byte, 64))
	cxlLat := c.Now()
	dram := cfg.DRAM.Cost(64)
	rdmaRead := cfg.RDMA.Cost(64)
	if !(dram < cxlLat && cxlLat < rdmaRead) {
		t.Fatalf("ordering violated: dram %v, cxl %v, rdma %v", dram, cxlLat, rdmaRead)
	}
	ratio := float64(rdmaRead) / float64(cxlLat)
	if ratio < 3 || ratio > 10 {
		t.Fatalf("rdma/cxl ratio = %.1f, want ~6", ratio)
	}
}

func TestTieredSpaceAllocSpill(t *testing.T) {
	cfg := sim.DefaultConfig()
	s := NewTieredSpace(cfg, 1024, 4096)
	a, ok := s.Alloc(TierLocal, 1000)
	if !ok || a.Tier != TierLocal {
		t.Fatalf("first alloc: %+v ok=%v", a, ok)
	}
	// Local full: spills to CXL.
	b, ok := s.Alloc(TierLocal, 1000)
	if !ok || b.Tier != TierCXL {
		t.Fatalf("spill alloc: %+v ok=%v", b, ok)
	}
	if s.LocalFree() != 24 {
		t.Fatalf("local free = %d", s.LocalFree())
	}
	// Exhaust both tiers.
	if _, ok := s.Alloc(TierCXL, 1<<20); ok {
		t.Fatal("oversize alloc should fail")
	}
}

func TestTieredRegionReadWrite(t *testing.T) {
	cfg := sim.DefaultConfig()
	s := NewTieredSpace(cfg, 1024, 4096)
	local, _ := s.Alloc(TierLocal, 512)
	remote, _ := s.Alloc(TierCXL, 512)

	data := []byte("tiered")
	for _, r := range []*Region{local, remote} {
		c := sim.NewClock()
		if err := r.Write(c, 8, data, false); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := r.Read(c, 8, got, true); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("tier %v round trip = %q", r.Tier, got)
		}
	}

	// CXL random reads must cost more than local reads.
	lc, cc := sim.NewClock(), sim.NewClock()
	buf := make([]byte, 256)
	local.Read(lc, 0, buf, false)
	remote.Read(cc, 0, buf, false)
	if !(lc.Now() < cc.Now()) {
		t.Fatalf("local (%v) should beat CXL (%v)", lc.Now(), cc.Now())
	}
}

func TestTierString(t *testing.T) {
	if TierLocal.String() != "local" || TierCXL.String() != "cxl" {
		t.Fatal("tier names wrong")
	}
}

func TestLinesRounding(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := lines(n); got != want {
			t.Errorf("lines(%d) = %d, want %d", n, got, want)
		}
	}
}
