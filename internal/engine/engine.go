// Package engine defines the common contract implemented by every OLTP
// engine in the repository (monolithic, shared-nothing, Aurora, PolarDB,
// Socrates, Taurus, PolarDB Serverless, LegoBase, PilotDB) so that
// workloads, failure drills, and experiments run unchanged across
// architectures.
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/engine/history"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/admission"
	"github.com/disagglab/disagg/internal/sim/profile"
	"github.com/disagglab/disagg/internal/wal"
)

// Tx is the per-transaction handle given to workload closures.
type Tx interface {
	// Read returns the current value of key.
	Read(key uint64) ([]byte, error)
	// Write stages an update of key to val (visible at commit).
	Write(key uint64, val []byte) error
}

// Engine is a transactional KV engine over a fixed keyspace of fixed-size
// values (the heap.Layout record model).
type Engine interface {
	// Name identifies the architecture in experiment tables.
	Name() string
	// Execute runs fn as one transaction on the worker's clock,
	// committing on nil return. Conflicts surface as ErrConflict (the
	// caller may retry with a fresh transaction).
	Execute(c *sim.Clock, fn func(tx Tx) error) error
	// Stats exposes the engine's traffic counters.
	Stats() *Stats
}

// Recoverer is implemented by engines that support crash-recovery drills.
type Recoverer interface {
	// Crash simulates losing all volatile compute-node state.
	Crash()
	// Recover rebuilds a usable compute node, charging recovery work to
	// the clock, and returns the recovery time.
	Recover(c *sim.Clock) (time.Duration, error)
}

// Reader is implemented by engines with read replicas.
type Reader interface {
	// ReadReplica executes a read-only transaction on replica idx.
	ReadReplica(c *sim.Clock, idx int, fn func(tx Tx) error) error
}

// Stamper is implemented by transaction handles that expose the engine's
// commit timestamp (commit-record LSN or commit sequence number).
// StagedTx implements it; engines stamp at their durability point. Run
// uses it to fill history records: a stamped-but-errored attempt is
// "durable but unacknowledged" — its effects may legally surface later.
type Stamper interface {
	CommitStamp() (stamp uint64, ok bool)
}

// Checkpointer is implemented by engines that bound crash recovery: a
// checkpoint makes durable page state cover every acked commit up to a
// recovery horizon, publishes the horizon, and truncates log state below
// it — so Recover replays only the post-horizon tail instead of the full
// history.
type Checkpointer interface {
	// Checkpoint runs one checkpoint round on the caller's clock: flush
	// durable page state, publish the new recovery horizon, truncate log
	// state below it. Safe to call concurrently with transactions; a
	// commit acked during the round lands above the captured horizon and
	// survives in the retained log tail.
	Checkpoint(c *sim.Clock) error
	// RecoveryHorizon reports the published horizon: every commit at or
	// below it is covered by checkpointed page state, and recovery replays
	// only records above it.
	RecoveryHorizon() wal.LSN
}

// GroupCommitter is implemented by engines whose commit path can ride a
// shared group flush (sim.Batcher): concurrent committers are combined
// into one replicated log append and wake with the same durable LSN.
type GroupCommitter interface {
	// EnableGroupCommit turns on commit batching: flushes trigger at
	// maxItems riders or after the virtual window, whichever first.
	// maxItems <= 1 keeps the direct per-commit path.
	EnableGroupCommit(maxItems int, window time.Duration)
}

// Capability reports which optional interfaces an engine implements, with
// the already-asserted views filled in. It consolidates the scattered
// `e.(engine.Recoverer)`-style type assertions the conformance suite,
// chaos drills, harness, and fleet router previously each did on their
// own: call Caps once, then branch on the fields.
type Capability struct {
	// Recoverer is non-nil when the engine supports crash-recovery drills.
	Recoverer Recoverer
	// Reader is non-nil when the engine has read replicas.
	Reader Reader
	// GroupCommitter is non-nil when the commit path can ride a shared
	// group flush.
	GroupCommitter GroupCommitter
	// Checkpointer is non-nil when the engine can bound recovery by
	// checkpointing and truncating its logs.
	Checkpointer Checkpointer
}

// Caps discovers e's optional capabilities.
func Caps(e Engine) Capability {
	var c Capability
	c.Recoverer, _ = e.(Recoverer)
	c.Reader, _ = e.(Reader)
	c.GroupCommitter, _ = e.(GroupCommitter)
	c.Checkpointer, _ = e.(Checkpointer)
	return c
}

// CommitStampOf reports tx's commit stamp when the transaction handle is a
// Stamper that was stamped at the engine's durability point. The
// capability lives on Tx handles, not engines, so it is discovered
// per-transaction rather than through Caps.
func CommitStampOf(tx Tx) (stamp uint64, ok bool) {
	s, isStamper := tx.(Stamper)
	if !isStamper {
		return 0, false
	}
	return s.CommitStamp()
}

// Common engine errors.
var (
	ErrConflict    = errors.New("engine: transaction conflict")
	ErrReadOnly    = errors.New("engine: read-only replica")
	ErrUnavailable = errors.New("engine: service unavailable")
	// ErrShed is returned by Run when admission control refuses the
	// transaction before it reaches the engine: the circuit breaker is
	// open or the load shedder's in-flight watermark is full. Shed work
	// charges no virtual time — fast-fail is the point.
	ErrShed = errors.New("engine: shed by admission control")
)

// Unavail maps a substrate failure surfaced during commit to the engine
// error contract: the caller sees ErrUnavailable either way, but an
// admission-control shed keeps its sim.ErrAdmission sentinel in the chain.
// Deliberate load shedding must stay distinguishable from an outage — a
// circuit breaker watching ErrUnavailable would otherwise count a gate's
// targeted sheds as node failures and convert them into blanket refusal.
func Unavail(err error) error {
	if errors.Is(err, sim.ErrAdmission) {
		return fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
	return ErrUnavailable
}

// Stats counts cross-component traffic attributable to the engine. All
// fields are atomic; Stats is shared freely.
type Stats struct {
	// Attempts counts transaction executions offered to the engine: every
	// Execute/ReadReplica entry plus every Run-level admission refusal.
	// Each attempt lands in exactly one of Commits, Aborts, or Shed —
	// Attempts == Commits + Aborts + Shed is the accounting invariant the
	// conformance suite enforces.
	Attempts    atomic.Int64
	Commits     atomic.Int64
	Aborts      atomic.Int64
	// Shed counts attempts refused without doing work: engine-side
	// unavailability (crashed node) and Run-level admission refusals
	// (open breaker, full shedder, replica routing to a non-Reader).
	Shed atomic.Int64
	NetBytes    atomic.Int64 // bytes crossing the network fabric
	NetMsgs     atomic.Int64
	LogBytes    atomic.Int64 // bytes of log shipped
	PageBytes   atomic.Int64 // bytes of full pages shipped
	StorageOps  atomic.Int64
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Group-commit counters (zero unless EnableGroupCommit was called).
	GroupCommits   atomic.Int64 // commits that rode a shared flush
	GroupFlushes   atomic.Int64 // combined flushes issued
	FlushOnSize    atomic.Int64 // flushes triggered by a full batch
	FlushOnTimeout atomic.Int64 // flushes triggered by the virtual window
	// Retry/backoff counters (filled by Run).
	Retries     atomic.Int64 // conflict re-executions Run performed
	Backoffs    atomic.Int64 // backoff waits charged before a retry
	BackoffWait atomic.Int64 // total virtual ns spent backing off
	// Indeterminates counts recorded attempts whose commit fate is
	// unknown: the transaction reached its engine's durability point
	// (commit stamp assigned) but the commit was never acknowledged, or
	// it failed in a way the engine cannot prove had no effect. Filled by
	// Run when history recording is on; a sub-count of Aborts, not a new
	// leg of the Attempts == Commits + Aborts + Shed invariant.
	Indeterminates atomic.Int64
	// Coherence counters (zero unless the engine wires a
	// coherence.Directory): invalidation notices delivered to holder
	// tiers at commit publishes, and cached copies rejected by
	// commit-stamp validation.
	Invalidations atomic.Int64
	StaleHits     atomic.Int64
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	s.Attempts.Store(0)
	s.Commits.Store(0)
	s.Aborts.Store(0)
	s.Shed.Store(0)
	s.NetBytes.Store(0)
	s.NetMsgs.Store(0)
	s.LogBytes.Store(0)
	s.PageBytes.Store(0)
	s.StorageOps.Store(0)
	s.CacheHits.Store(0)
	s.CacheMisses.Store(0)
	s.GroupCommits.Store(0)
	s.GroupFlushes.Store(0)
	s.FlushOnSize.Store(0)
	s.FlushOnTimeout.Store(0)
	s.Retries.Store(0)
	s.Backoffs.Store(0)
	s.BackoffWait.Store(0)
	s.Indeterminates.Store(0)
	s.Invalidations.Store(0)
	s.StaleHits.Store(0)
}

// BytesPerCommit reports average network bytes per committed transaction —
// the E1 headline metric.
func (s *Stats) BytesPerCommit() float64 {
	c := s.Commits.Load()
	if c == 0 {
		return 0
	}
	return float64(s.NetBytes.Load()) / float64(c)
}

// RunOpts controls how Run executes a transaction. The zero value means
// "one attempt on the primary", so Run(e, c, RunOpts{}, fn) is exactly
// e.Execute(c, fn).
type RunOpts struct {
	// Retries is the number of automatic re-executions after ErrConflict
	// (so the transaction runs at most Retries+1 times). Other errors
	// pass through immediately.
	Retries int
	// Replica, when > 0, runs the transaction read-only on read replica
	// Replica-1 (the engine must implement Reader). 0 targets the
	// primary. A replica read that conflicts retries on the *same*
	// replica with backoff (replica state only converges with time, so
	// backing off is also what makes the retry likely to succeed); after
	// Retries/Budget are exhausted the error surfaces to the caller,
	// which may re-route. Requesting a replica from an engine without
	// read replicas sheds immediately with ErrUnavailable.
	Replica int
	// Backoff is the clock-charged delay policy applied before every
	// conflict retry. nil selects admission.Default() whenever
	// Retries > 0 — backoff is deliberately opt-out, because zero-delay
	// retrying livelocks the virtual-time model (failed attempts add
	// meter demand without advancing the clock). Pass
	// admission.NoBackoff to opt out explicitly.
	Backoff *admission.Backoff
	// Budget, when non-nil, is the per-client retry budget: each Run
	// earns it, each retry spends from it, and a dry budget surfaces the
	// last error instead of retrying. Share one Budget across a client's
	// workers to bound global retry amplification.
	Budget *admission.Budget
	// Breaker, when non-nil, converts sustained ErrUnavailable into
	// fast-fail: while open, Run sheds immediately with ErrShed instead
	// of dispatching to a dead engine; a half-open probe closes it again.
	Breaker *admission.Breaker
	// Shed, when non-nil, bounds in-flight transactions: arrivals past
	// its watermark fail immediately with ErrShed, charging no virtual
	// time.
	Shed *admission.Shedder
	// Record, when non-nil, is the history sink: Run records one
	// history.Op per call with one attempt per execution (retry lineage
	// explicit), capturing every read and write with virtual timestamps,
	// the replica routing, and the per-attempt outcome and commit stamp.
	// The recorded history feeds history.Check after the workload
	// quiesces. Recording costs one map-free wrapper per attempt and an
	// event append per access.
	Record *history.Recorder
	// Session identifies the issuing client/worker in the recorded
	// history (program order within a session is meaningful to the
	// checker). Ignored unless Record is set.
	Session int
	// Profile, when non-nil, profiles every Run call end to end: the
	// transaction executes under a fresh span tree whose analysis
	// (critical-path component attribution, tail-exemplar retention, SLO
	// observation) is folded into the profiler at completion. A nil
	// Profile costs one branch — the disabled path stays zero-alloc.
	Profile *profile.Profiler
}

// defaultBackoff is the policy Run applies when Retries > 0 and
// opts.Backoff is nil (stateless, so one shared value suffices).
var defaultBackoff = admission.Default()

// Run executes fn as one transaction on e per opts. It is the single
// entry point workloads, experiments, and the conformance suite use
// (cluster.Fleet wraps it per routed member in fleet mode); Execute is the
// engine-side primitive, not a client API.
//
// Run maintains the engine accounting invariant: every call adds, per
// attempt, exactly one of Commits/Aborts (inside the engine) or Shed
// (here, for admission refusals) to the engine's Stats, and Attempts
// counts them all.
func Run(e Engine, c *sim.Clock, opts RunOpts, fn func(tx Tx) error) error {
	if opts.Profile == nil {
		return run(e, c, opts, fn)
	}
	ptx := opts.Profile.Begin(c)
	err := run(e, c, opts, fn)
	ptx.End(err)
	return err
}

// run is Run's body; the wrapper brackets it with the profiler so every
// return path lands in exactly one profiled transaction.
func run(e Engine, c *sim.Clock, opts RunOpts, fn func(tx Tx) error) error {
	st := e.Stats()
	var op *history.Op
	if opts.Record != nil {
		op = opts.Record.Begin(opts.Session, opts.Replica)
	}
	shed := func() {
		st.Attempts.Add(1)
		st.Shed.Add(1)
		c.Emit(sim.Event{T: c.Now(), Kind: sim.EvShed, Site: "txn"})
		if op != nil {
			op.NewAttempt(c.Now()).Finish(history.Shed, c.Now(), 0, ErrShed)
		}
	}
	if !opts.Breaker.Allow(c) {
		shed()
		return ErrShed
	}
	if opts.Shed != nil {
		if !opts.Shed.TryEnter() {
			shed()
			return ErrShed
		}
		defer opts.Shed.Exit()
	}
	exec := e.Execute
	if opts.Replica > 0 {
		r := Caps(e).Reader
		if r == nil {
			shed()
			return ErrUnavailable
		}
		idx := opts.Replica - 1
		exec = func(c *sim.Clock, fn func(tx Tx) error) error {
			return r.ReadReplica(c, idx, fn)
		}
	}
	bo := opts.Backoff
	if bo == nil && opts.Retries > 0 {
		bo = defaultBackoff
	}
	opts.Budget.Earn()
	var err error
	for attempt := 0; ; attempt++ {
		if op == nil {
			err = exec(c, fn)
		} else {
			err = recordAttempt(op, st, c, exec, fn)
		}
		// A shed that surfaces as unavailable (engine.Unavail preserving
		// sim.ErrAdmission) is the gate doing its job, not an outage — it
		// must not push the breaker toward open.
		opts.Breaker.Record(c, errors.Is(err, ErrUnavailable) && !errors.Is(err, sim.ErrAdmission))
		if !errors.Is(err, ErrConflict) || attempt >= opts.Retries {
			return err
		}
		if !opts.Budget.TrySpend() {
			return err
		}
		st.Retries.Add(1)
		c.Emit(sim.Event{T: c.Now(), Kind: sim.EvRetry, Site: "txn", Note: "conflict"})
		// Bracket the wait so the profiler attributes it to the
		// "backoff" component rather than residual time.
		sp := c.StartSpan("backoff")
		d := bo.Wait(c, attempt)
		c.FinishSpan(sp, 0)
		if d > 0 {
			st.Backoffs.Add(1)
			st.BackoffWait.Add(int64(d))
		}
	}
}

// recTx mirrors every successful access into the attempt record. Values
// are reduced to register fingerprints at capture time, so recording adds
// no retention of value buffers.
type recTx struct {
	inner Tx
	att   *history.Attempt
	c     *sim.Clock
}

func (t *recTx) Read(key uint64) ([]byte, error) {
	v, err := t.inner.Read(key)
	if err == nil {
		t.att.Read(key, history.HashVal(v), t.c.Now())
	}
	return v, err
}

func (t *recTx) Write(key uint64, val []byte) error {
	err := t.inner.Write(key, val)
	if err == nil {
		t.att.Write(key, history.HashVal(val), t.c.Now())
	}
	return err
}

// recordAttempt runs one execution of fn under a recording wrapper and
// classifies its outcome.
func recordAttempt(op *history.Op, st *Stats, c *sim.Clock,
	exec func(*sim.Clock, func(tx Tx) error) error, fn func(tx Tx) error) error {
	att := op.NewAttempt(c.Now())
	var inner Tx
	var fnErr error
	err := exec(c, func(tx Tx) error {
		inner = tx
		fnErr = fn(&recTx{inner: tx, att: att, c: c})
		return fnErr
	})
	var stamp uint64
	if v, set := CommitStampOf(inner); set {
		stamp = v
	}
	att.Finish(classifyOutcome(err, fnErr, stamp), c.Now(), stamp, err)
	if att.Outcome == history.Indeterminate {
		st.Indeterminates.Add(1)
	}
	return err
}

// classifyOutcome maps an attempt's error to its history outcome. The
// rule that makes the checker sound: an engine stamps the transaction at
// its durability point, so stamp==0 proves the attempt left no state a
// reader (or crash recovery) could ever surface, while a stamped error is
// "durable but unacknowledged" and its writes may legally appear later.
func classifyOutcome(err, fnErr error, stamp uint64) history.Outcome {
	switch {
	case err == nil:
		return history.Committed
	case stamp != 0:
		return history.Indeterminate
	case errors.Is(err, ErrConflict), errors.Is(err, ErrReadOnly):
		return history.Aborted
	case fnErr != nil && errors.Is(err, fnErr):
		// The transaction function itself failed (user abort or a
		// propagated read error): the engine discards the staging buffer
		// without entering its commit path.
		return history.Aborted
	default:
		// Unavailability or an unrecognized engine error without a
		// stamp: almost certainly effect-free, but "almost" is not a
		// soundness argument — stay conservative.
		return history.Indeterminate
	}
}
