// Package engine defines the common contract implemented by every OLTP
// engine in the repository (monolithic, shared-nothing, Aurora, PolarDB,
// Socrates, Taurus, PolarDB Serverless, LegoBase, PilotDB) so that
// workloads, failure drills, and experiments run unchanged across
// architectures.
package engine

import (
	"errors"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/sim"
)

// Tx is the per-transaction handle given to workload closures.
type Tx interface {
	// Read returns the current value of key.
	Read(key uint64) ([]byte, error)
	// Write stages an update of key to val (visible at commit).
	Write(key uint64, val []byte) error
}

// Engine is a transactional KV engine over a fixed keyspace of fixed-size
// values (the heap.Layout record model).
type Engine interface {
	// Name identifies the architecture in experiment tables.
	Name() string
	// Execute runs fn as one transaction on the worker's clock,
	// committing on nil return. Conflicts surface as ErrConflict (the
	// caller may retry with a fresh transaction).
	Execute(c *sim.Clock, fn func(tx Tx) error) error
	// Stats exposes the engine's traffic counters.
	Stats() *Stats
}

// Recoverer is implemented by engines that support crash-recovery drills.
type Recoverer interface {
	// Crash simulates losing all volatile compute-node state.
	Crash()
	// Recover rebuilds a usable compute node, charging recovery work to
	// the clock, and returns the recovery time.
	Recover(c *sim.Clock) (time.Duration, error)
}

// Reader is implemented by engines with read replicas.
type Reader interface {
	// ReadReplica executes a read-only transaction on replica idx.
	ReadReplica(c *sim.Clock, idx int, fn func(tx Tx) error) error
}

// GroupCommitter is implemented by engines whose commit path can ride a
// shared group flush (sim.Batcher): concurrent committers are combined
// into one replicated log append and wake with the same durable LSN.
type GroupCommitter interface {
	// EnableGroupCommit turns on commit batching: flushes trigger at
	// maxItems riders or after the virtual window, whichever first.
	// maxItems <= 1 keeps the direct per-commit path.
	EnableGroupCommit(maxItems int, window time.Duration)
}

// Common engine errors.
var (
	ErrConflict    = errors.New("engine: transaction conflict")
	ErrReadOnly    = errors.New("engine: read-only replica")
	ErrUnavailable = errors.New("engine: service unavailable")
)

// Stats counts cross-component traffic attributable to the engine. All
// fields are atomic; Stats is shared freely.
type Stats struct {
	Commits     atomic.Int64
	Aborts      atomic.Int64
	NetBytes    atomic.Int64 // bytes crossing the network fabric
	NetMsgs     atomic.Int64
	LogBytes    atomic.Int64 // bytes of log shipped
	PageBytes   atomic.Int64 // bytes of full pages shipped
	StorageOps  atomic.Int64
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Group-commit counters (zero unless EnableGroupCommit was called).
	GroupCommits   atomic.Int64 // commits that rode a shared flush
	GroupFlushes   atomic.Int64 // combined flushes issued
	FlushOnSize    atomic.Int64 // flushes triggered by a full batch
	FlushOnTimeout atomic.Int64 // flushes triggered by the virtual window
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	s.Commits.Store(0)
	s.Aborts.Store(0)
	s.NetBytes.Store(0)
	s.NetMsgs.Store(0)
	s.LogBytes.Store(0)
	s.PageBytes.Store(0)
	s.StorageOps.Store(0)
	s.CacheHits.Store(0)
	s.CacheMisses.Store(0)
	s.GroupCommits.Store(0)
	s.GroupFlushes.Store(0)
	s.FlushOnSize.Store(0)
	s.FlushOnTimeout.Store(0)
}

// BytesPerCommit reports average network bytes per committed transaction —
// the E1 headline metric.
func (s *Stats) BytesPerCommit() float64 {
	c := s.Commits.Load()
	if c == 0 {
		return 0
	}
	return float64(s.NetBytes.Load()) / float64(c)
}

// RunOpts controls how Run executes a transaction. The zero value means
// "one attempt on the primary", so Run(e, c, RunOpts{}, fn) is exactly
// e.Execute(c, fn).
type RunOpts struct {
	// Retries is the number of automatic re-executions after ErrConflict
	// (so the transaction runs at most Retries+1 times). Other errors
	// pass through immediately.
	Retries int
	// Replica, when > 0, runs the transaction read-only on read replica
	// Replica-1 (the engine must implement Reader). 0 targets the
	// primary.
	Replica int
}

// Run executes fn as one transaction on e per opts. It is the single
// entry point workloads, experiments, and the conformance suite use; the
// legacy Execute/RunClosed pair remains only as a shim.
func Run(e Engine, c *sim.Clock, opts RunOpts, fn func(tx Tx) error) error {
	exec := e.Execute
	if opts.Replica > 0 {
		r, ok := e.(Reader)
		if !ok {
			return ErrUnavailable
		}
		idx := opts.Replica - 1
		exec = func(c *sim.Clock, fn func(tx Tx) error) error {
			return r.ReadReplica(c, idx, fn)
		}
	}
	var err error
	for i := 0; i <= opts.Retries; i++ {
		err = exec(c, fn)
		if !errors.Is(err, ErrConflict) {
			return err
		}
	}
	return err
}

// RunClosed executes fn with automatic retry on conflicts, up to retries
// attempts; other errors pass through.
//
// Deprecated: use Run(e, c, RunOpts{Retries: retries}, fn). Kept for one
// PR so out-of-tree callers can migrate.
func RunClosed(e Engine, c *sim.Clock, retries int, fn func(tx Tx) error) error {
	return Run(e, c, RunOpts{Retries: retries}, fn)
}
