package history

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Level is the isolation level a history is checked against.
type Level uint8

// Checkable levels, by Adya's portable definitions.
const (
	// ReadCommitted (PL-2) forbids G0 (write cycles), G1a (aborted
	// reads), G1b (intermediate reads) and G1c (cyclic information
	// flow over ww/wr edges).
	ReadCommitted Level = iota
	// Serializable (PL-3) additionally forbids any cycle in the full
	// dependency graph (ww, wr, and rw anti-dependency edges) — G-single
	// and G2, which cover lost update, fractured reads, and write skew.
	Serializable
)

func (l Level) String() string {
	if l == Serializable {
		return "serializable"
	}
	return "read-committed"
}

// Opts configures a check.
type Opts struct {
	// Level selects the phenomena that count as violations.
	Level Level
	// SessionOrder adds program-order edges between each session's
	// committed ops, strengthening the check to strong-session
	// variants: a session that writes (or reads) a key and later
	// observes an older version forms a cycle. Spans replica routing,
	// so stale replica reads become witnessable.
	SessionOrder bool
	// SingleWriter derives each key's version order from the writing
	// session's program order instead of commit stamps. It requires
	// every key to be written by at most one session (the conformance
	// workload shape) and is exact even for indeterminate writes.
	SingleWriter bool
}

// Anomaly is one detected violation.
type Anomaly struct {
	// Class is the anomaly taxon: G0, G1a, G1b, G1c, G-single, G2,
	// lost-update, write-skew, stale-read, non-repeatable-read,
	// intra-txn-ryw, garbled-read, misdirected-read, unstamped-commit,
	// stamp-collision.
	Class string
	// Message is the one-line human-readable statement.
	Message string
	// Cycle is the minimal witness cycle (empty for direct, non-cyclic
	// anomalies), formatted one step per entry.
	Cycle []string
}

func (a Anomaly) String() string {
	if len(a.Cycle) == 0 {
		return fmt.Sprintf("%s: %s", a.Class, a.Message)
	}
	return fmt.Sprintf("%s: %s\n    witness: %s", a.Class, a.Message, strings.Join(a.Cycle, " "))
}

// Report is a finished check.
type Report struct {
	Level     Level
	Txns      int // dependency-graph nodes (committed + observed-indeterminate)
	Reads     int // external reads checked
	Writes    int // recorded writes indexed
	Keys      int // keys with at least one version
	Edges     int // dependency edges built
	Anomalies []Anomaly
	Elapsed   time.Duration // real (wall) time spent checking
}

// Ok reports whether the history passed.
func (r *Report) Ok() bool { return len(r.Anomalies) == 0 }

// Summary is a one-line digest for logs and experiment tables.
func (r *Report) Summary() string {
	return fmt.Sprintf("level=%s txns=%d reads=%d writes=%d keys=%d edges=%d anomalies=%d (%v)",
		r.Level, r.Txns, r.Reads, r.Writes, r.Keys, r.Edges, len(r.Anomalies), r.Elapsed.Round(time.Microsecond))
}

// edge kinds.
type ekind uint8

const (
	ww ekind = iota // version order: from writer of v_i to writer of v_i+1
	wr              // reads-from: from writer to reader
	rw              // anti-dependency: from reader of v_i to writer of v_i+1
	so              // session order: program order within one session
)

func (k ekind) String() string { return [...]string{"ww", "wr", "rw", "so"}[k] }

type edge struct {
	to   int
	kind ekind
	key  uint64
}

// node is one transaction in the dependency graph: a committed attempt,
// or an indeterminate attempt whose writes may be (and for edge purposes
// were) observed.
type node struct {
	op        *Op
	att       *Attempt
	committed bool
	out       []edge
}

func (n *node) name() string {
	tag := ""
	if !n.committed {
		tag = "?"
	}
	r := ""
	if n.op.Replica > 0 {
		r = fmt.Sprintf("@r%d", n.op.Replica-1)
	}
	return fmt.Sprintf("s%d.op%d%s%s", n.op.Session, n.op.ID, r, tag)
}

// writeRef locates one recorded write.
type writeRef struct {
	op    *Op
	att   *Attempt
	key   uint64
	final bool // last write of key within its attempt
	node  int  // graph node index, -1 for definitely-aborted attempts
}

// ErrInvalidHistory reports a history the checker cannot reason about —
// a workload bug, not an engine anomaly (e.g. two distinct transactions
// wrote the same value).
var ErrInvalidHistory = errors.New("history: invalid history")

// Check verifies the recorded ops against opts and returns the report.
// It returns a non-nil error only for invalid histories (duplicate write
// values, multi-writer keys in SingleWriter mode); engine misbehavior is
// reported through Report.Anomalies.
func Check(ops []*Op, opts Opts) (*Report, error) {
	start := time.Now()
	rep := &Report{Level: opts.Level}

	// ---- 1. Nodes and the write index. ------------------------------
	var nodes []*node
	// valIndex maps value fingerprints to their writes. Retry lineage:
	// the same (op, key, value) written by several attempts of one op is
	// ONE logical write — the committed attempt (or, failing that, the
	// most advanced one) is canonical, so a retried transaction cannot
	// appear as a phantom duplicate.
	valIndex := make(map[uint64]*writeRef)
	addWrite := func(ref *writeRef, val uint64) error {
		prev, ok := valIndex[val]
		if !ok {
			valIndex[val] = ref
			return nil
		}
		if prev.op != ref.op || prev.key != ref.key {
			return fmt.Errorf("%w: value %016x written by both %s (key %d) and %s (key %d) — workloads must write unique values",
				ErrInvalidHistory, val, opName(prev.op), prev.key, opName(ref.op), ref.key)
		}
		// Same op, same key: retry lineage. Prefer the canonical attempt.
		if rank(ref) > rank(prev) {
			valIndex[val] = ref
		}
		return nil
	}
	for _, op := range ops {
		for _, att := range op.Attempts {
			switch att.Outcome {
			case Shed:
				continue
			case Committed:
				nodes = append(nodes, &node{op: op, att: att, committed: true})
			case Aborted:
				// Definite abort: no node, but its writes feed G1a.
			default: // Indeterminate / Open
				if countWrites(att) > 0 {
					nodes = append(nodes, &node{op: op, att: att})
				}
			}
		}
	}
	nodeIdx := make(map[*Attempt]int, len(nodes))
	for i, n := range nodes {
		nodeIdx[n.att] = i
	}
	for _, op := range ops {
		for _, att := range op.Attempts {
			if att.Outcome == Shed {
				continue
			}
			idx, hasNode := nodeIdx[att]
			if !hasNode {
				idx = -1
			}
			last := lastWriteIdx(att)
			for i, e := range att.Events {
				if e.Kind != WriteEvent {
					continue
				}
				rep.Writes++
				if e.Val == 0 {
					return nil, fmt.Errorf("%w: %s wrote the all-zero value to key %d — zero is reserved for the initial state",
						ErrInvalidHistory, opName(op), e.Key)
				}
				ref := &writeRef{op: op, att: att, key: e.Key, final: last[e.Key] == i, node: idx}
				if err := addWrite(ref, e.Val); err != nil {
					return nil, err
				}
			}
		}
	}
	rep.Txns = len(nodes)

	// ---- 2. Per-key version order. -----------------------------------
	// versions[k] lists the final committed (and, in SingleWriter mode,
	// indeterminate) writes of k in version order; pos[k][node] is the
	// node's position in that chain.
	versions := make(map[uint64][]int)
	for i, n := range nodes {
		seen := map[uint64]bool{}
		for _, e := range n.att.Events {
			if e.Kind != WriteEvent || seen[e.Key] {
				continue
			}
			seen[e.Key] = true
			if !opts.SingleWriter && !n.committed {
				// Without a trustworthy order source, indeterminate
				// writes stay out of the chain (they still resolve
				// reads through valIndex).
				continue
			}
			versions[e.Key] = append(versions[e.Key], i)
		}
	}
	rep.Keys = len(versions)
	for key, chain := range versions {
		if opts.SingleWriter {
			sess := -1
			for _, i := range chain {
				if s := nodes[i].op.Session; sess == -1 {
					sess = s
				} else if s != sess {
					return nil, fmt.Errorf("%w: key %d written by sessions %d and %d but SingleWriter version order was requested",
						ErrInvalidHistory, key, sess, s)
				}
			}
			sort.Slice(chain, func(a, b int) bool { return nodes[chain[a]].op.ID < nodes[chain[b]].op.ID })
			continue
		}
		for _, i := range chain {
			if nodes[i].att.Stamp == 0 {
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Class:   "unstamped-commit",
					Message: fmt.Sprintf("%s committed a write to key %d without a commit stamp — engine does not expose commit timestamps", nodes[i].name(), key),
				})
			}
		}
		sort.Slice(chain, func(a, b int) bool {
			na, nb := nodes[chain[a]], nodes[chain[b]]
			if na.att.Stamp != nb.att.Stamp {
				return na.att.Stamp < nb.att.Stamp
			}
			return na.op.ID < nb.op.ID
		})
		for j := 1; j < len(chain); j++ {
			a, b := nodes[chain[j-1]], nodes[chain[j]]
			if a.att.Stamp != 0 && a.att.Stamp == b.att.Stamp {
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Class:   "stamp-collision",
					Message: fmt.Sprintf("%s and %s share commit stamp %d on key %d — version order is ambiguous", a.name(), b.name(), a.att.Stamp, key),
				})
			}
		}
	}
	pos := make(map[uint64]map[int]int, len(versions))
	for key, chain := range versions {
		m := make(map[int]int, len(chain))
		for j, i := range chain {
			m[i] = j
		}
		pos[key] = m
	}

	addEdge := func(from, to int, kind ekind, key uint64) {
		if from == to || from < 0 || to < 0 {
			return
		}
		nodes[from].out = append(nodes[from].out, edge{to: to, kind: kind, key: key})
		rep.Edges++
	}

	// ww edges: consecutive versions.
	for key, chain := range versions {
		for j := 1; j < len(chain); j++ {
			addEdge(chain[j-1], chain[j], ww, key)
		}
	}

	// nextCommitted returns the first committed node in key's chain at a
	// position > from (-1 = start of chain), or -1.
	nextCommitted := func(key uint64, from int) int {
		chain := versions[key]
		for j := from + 1; j < len(chain); j++ {
			if nodes[chain[j]].committed {
				return chain[j]
			}
		}
		return -1
	}

	// ---- 3. Reads: direct checks + wr/rw edges. ----------------------
	for i, n := range nodes {
		if !n.committed {
			continue // reads of unacknowledged attempts prove nothing
		}
		own := map[uint64]uint64{} // staged writes so far, program order
		ext := map[uint64]uint64{} // first external read per key
		for _, e := range n.att.Events {
			if e.Kind == WriteEvent {
				own[e.Key] = e.Val
				continue
			}
			if v, staged := own[e.Key]; staged {
				if e.Val != v {
					rep.Anomalies = append(rep.Anomalies, Anomaly{
						Class:   "intra-txn-ryw",
						Message: fmt.Sprintf("%s staged %016x on key %d but then read %016x — transaction does not see its own writes", n.name(), v, e.Key, e.Val),
					})
				}
				continue
			}
			rep.Reads++
			if prev, again := ext[e.Key]; again {
				if prev != e.Val && opts.Level >= Serializable {
					rep.Anomalies = append(rep.Anomalies, Anomaly{
						Class:   "non-repeatable-read",
						Message: fmt.Sprintf("%s read key %d twice and saw %016x then %016x", n.name(), e.Key, prev, e.Val),
					})
				}
				// Fall through: repeated reads still get full value
				// validation and edges (a dirty read on the second read
				// of a key is no less a dirty read).
			} else {
				ext[e.Key] = e.Val
			}
			if e.Val == 0 {
				// Initial version: anti-depend on the first writer.
				if succ := nextCommitted(e.Key, -1); succ >= 0 {
					addEdge(i, succ, rw, e.Key)
				}
				continue
			}
			ref, known := valIndex[e.Val]
			switch {
			case !known:
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Class:   "garbled-read",
					Message: fmt.Sprintf("%s read %016x on key %d — no recorded transaction wrote it (torn or fabricated value)", n.name(), e.Val, e.Key),
				})
				continue
			case ref.key != e.Key:
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Class:   "misdirected-read",
					Message: fmt.Sprintf("%s read key %d but observed the value %s wrote to key %d", n.name(), e.Key, opName(ref.op), ref.key),
				})
				continue
			case ref.node < 0:
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Class:   "G1a",
					Message: fmt.Sprintf("%s read key %d from %s, which definitely aborted (dirty read of aborted data)", n.name(), e.Key, opName(ref.op)),
				})
				continue
			}
			if !ref.final {
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Class:   "G1b",
					Message: fmt.Sprintf("%s read an intermediate version of key %d from %s (overwritten within that transaction)", n.name(), e.Key, opName(ref.op)),
				})
			}
			addEdge(ref.node, i, wr, e.Key)
			if p, in := pos[e.Key][ref.node]; in && ref.final {
				if succ := nextCommitted(e.Key, p); succ >= 0 {
					addEdge(i, succ, rw, e.Key)
				}
			}
		}
	}

	// ---- 4. Session order edges. -------------------------------------
	if opts.SessionOrder {
		bySession := map[int][]int{}
		for i, n := range nodes {
			if n.committed {
				bySession[n.op.Session] = append(bySession[n.op.Session], i)
			}
		}
		for _, chain := range bySession {
			sort.Slice(chain, func(a, b int) bool { return nodes[chain[a]].op.ID < nodes[chain[b]].op.ID })
			for j := 1; j < len(chain); j++ {
				addEdge(chain[j-1], chain[j], so, 0)
			}
		}
	}

	// ---- 5. Cycle search. --------------------------------------------
	// ReadCommitted inspects the ww/wr information-flow subgraph (G0,
	// G1c); Serializable inspects the full graph including rw and
	// session edges. Each non-trivial SCC contributes one anomaly with a
	// minimal witness cycle.
	allowed := map[ekind]bool{ww: true, wr: true}
	if opts.Level >= Serializable {
		allowed[rw] = true
		allowed[so] = true
	}
	for _, scc := range stronglyConnected(nodes, allowed) {
		cycle := minimalCycle(nodes, allowed, scc)
		if len(cycle) == 0 {
			continue
		}
		rep.Anomalies = append(rep.Anomalies, classifyCycle(nodes, cycle))
	}

	rep.Elapsed = time.Since(start)
	return rep, nil
}

func opName(op *Op) string {
	return fmt.Sprintf("s%d.op%d", op.Session, op.ID)
}

// rank orders duplicate same-op writes for canonicalization.
func rank(r *writeRef) int {
	switch r.att.Outcome {
	case Committed:
		return 3
	case Indeterminate, Open:
		return 2
	default:
		return 1
	}
}

func countWrites(att *Attempt) int {
	n := 0
	for _, e := range att.Events {
		if e.Kind == WriteEvent {
			n++
		}
	}
	return n
}

// lastWriteIdx maps key -> index of the attempt's final write event.
func lastWriteIdx(att *Attempt) map[uint64]int {
	m := map[uint64]int{}
	for i, e := range att.Events {
		if e.Kind == WriteEvent {
			m[e.Key] = i
		}
	}
	return m
}

// stronglyConnected returns Tarjan SCCs of size > 1 over the allowed
// subgraph. Iterative so adversarially long chains cannot overflow the
// stack.
func stronglyConnected(nodes []*node, allowed map[ekind]bool) [][]int {
	n := len(nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var sccStack []int
	var sccs [][]int
	next := 1
	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < len(nodes[v].out) {
				e := nodes[v].out[f.ei]
				f.ei++
				if !allowed[e.kind] {
					continue
				}
				w := e.to
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					sccs = append(sccs, scc)
				}
			}
		}
	}
	return sccs
}

// cycleStep is one hop of a witness cycle.
type cycleStep struct {
	from, to int
	kind     ekind
	key      uint64
}

// minimalCycle finds the shortest cycle inside one SCC: BFS from each
// member (capped), keeping the overall shortest loop. The result is the
// minimal witness the report prints.
func minimalCycle(nodes []*node, allowed map[ekind]bool, scc []int) []cycleStep {
	in := map[int]bool{}
	for _, v := range scc {
		in[v] = true
	}
	starts := scc
	if len(starts) > 32 {
		starts = starts[:32]
	}
	var best []cycleStep
	for _, src := range starts {
		// BFS over SCC-internal allowed edges back to src.
		type hop struct {
			node int
			prev int // index into visitOrder, -1 for root
			via  cycleStep
		}
		visited := map[int]bool{src: true}
		queue := []hop{{node: src, prev: -1}}
		var trail []hop
		found := -1
		for qi := 0; qi < len(queue) && found < 0; qi++ {
			h := queue[qi]
			trail = append(trail, h)
			ti := len(trail) - 1
			for _, e := range nodes[h.node].out {
				if !allowed[e.kind] || !in[e.to] {
					continue
				}
				step := cycleStep{from: h.node, to: e.to, kind: e.kind, key: e.key}
				if e.to == src {
					trail = append(trail, hop{node: e.to, prev: ti, via: step})
					found = len(trail) - 1
					break
				}
				if !visited[e.to] {
					visited[e.to] = true
					queue = append(queue, hop{node: e.to, prev: ti, via: step})
				}
			}
		}
		if found < 0 {
			continue
		}
		var cyc []cycleStep
		for at := found; trail[at].prev >= 0; at = trail[at].prev {
			cyc = append(cyc, trail[at].via)
		}
		for l, r := 0, len(cyc)-1; l < r; l, r = l+1, r-1 {
			cyc[l], cyc[r] = cyc[r], cyc[l]
		}
		if best == nil || len(cyc) < len(best) {
			best = cyc
		}
	}
	return best
}

// classifyCycle labels a witness cycle with its anomaly taxon.
func classifyCycle(nodes []*node, cyc []cycleStep) Anomaly {
	var nww, nwr, nrw, nso int
	keys := map[uint64]bool{}
	for _, s := range cyc {
		switch s.kind {
		case ww:
			nww++
		case wr:
			nwr++
		case rw:
			nrw++
		case so:
			nso++
		}
		if s.kind != so {
			keys[s.key] = true
		}
	}
	class := "G2"
	switch {
	case nrw == 0 && nwr == 0 && nso == 0:
		class = "G0"
	case nrw == 0:
		class = "G1c"
	case nrw == 1:
		class = "G-single"
		if len(cyc) == 2 && nww == 1 && len(keys) == 1 {
			class = "lost-update"
		}
		if len(cyc) == 2 && nso == 1 {
			class = "stale-read"
		}
	default:
		if len(cyc) == 2 && nrw == 2 && len(keys) == 2 {
			class = "write-skew"
		}
	}
	steps := make([]string, 0, len(cyc)+1)
	for _, s := range cyc {
		lbl := s.kind.String()
		if s.kind != so {
			lbl = fmt.Sprintf("%s(key %d)", s.kind, s.key)
		}
		steps = append(steps, fmt.Sprintf("%s --%s-->", nodes[s.from].name(), lbl))
	}
	steps = append(steps, nodes[cyc[0].from].name())
	return Anomaly{
		Class:   class,
		Message: fmt.Sprintf("dependency cycle of %d transaction(s) over %d key(s)", len(cyc), len(keys)),
		Cycle:   steps,
	}
}
