// Package history records what transactions actually did — every
// begin/read/write/commit/abort, with virtual timestamps, replica routing
// and retry lineage — and checks the recorded history for isolation
// anomalies (Adya's G0/G1a/G1b/G1c, lost update, write skew) by building
// the write-read / write-write / read-write dependency graph per key and
// searching it for cycles.
//
// The recorder is the event model; the checker lives in checker.go. The
// package deliberately depends on nothing but the standard library so the
// engine package (and anything else) can import it freely.
//
// Value model: registers. Every recorded value is reduced to a 64-bit
// fingerprint (HashVal); the all-zero value — the initial state of every
// key in the heap layout — maps to fingerprint 0. The checker requires
// workloads to write globally unique non-zero values so each read maps to
// exactly one recorded write (the Elle trick for recoverability on
// register histories).
package history

import (
	"sync"
	"time"
)

// Outcome is the fate of one transaction attempt.
type Outcome uint8

// Attempt outcomes. The distinction between Aborted and Indeterminate is
// load-bearing for the checker: only writes of *definitely* aborted
// attempts may never be observed (G1a); an indeterminate attempt — one
// that failed past its engine's durability point, like a timed-out commit
// in a real system — may surface later without that being an anomaly.
const (
	// Open marks an attempt that never finished (recorder torn down
	// mid-flight). The checker treats it like Indeterminate.
	Open Outcome = iota
	// Committed: the engine acknowledged the commit.
	Committed
	// Aborted: the attempt definitely had no effect (user abort, or a
	// conflict before the durability point).
	Aborted
	// Indeterminate: the attempt failed with unknown outcome (commit-path
	// unavailability, or any error after the durability point).
	Indeterminate
	// Shed: admission control refused the attempt before it reached the
	// engine; it performed no reads or writes.
	Shed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Indeterminate:
		return "indeterminate"
	case Shed:
		return "shed"
	default:
		return "open"
	}
}

// EventKind distinguishes reads from writes.
type EventKind uint8

// Event kinds.
const (
	ReadEvent EventKind = iota
	WriteEvent
)

// Event is one read or write inside an attempt. Val is the HashVal
// fingerprint of the value read or written (0 = the all-zero initial
// value).
type Event struct {
	Kind EventKind
	Key  uint64
	Val  uint64
	At   time.Duration // virtual time of the access
}

// Attempt is one execution of an op's transaction body. A retried
// transaction has several attempts under one Op — retry lineage is
// explicit, so an aborted-then-retried transaction can never masquerade
// as two logical operations.
type Attempt struct {
	// Index is the attempt's position in the op (0 = first execution).
	Index int
	// Begin/End bracket the attempt in the worker's virtual time.
	Begin, End time.Duration
	// Outcome is the attempt's fate.
	Outcome Outcome
	// Stamp is the engine-assigned commit timestamp (commit-record LSN or
	// commit sequence number), 0 if the attempt never reached the
	// engine's durability point. A non-zero stamp on a non-committed
	// attempt marks it "durable but unacknowledged".
	Stamp uint64
	// Err is the attempt's error string, empty on commit.
	Err string
	// Events are the attempt's reads and writes in program order.
	Events []Event
}

// Read records a read of key observing val.
func (a *Attempt) Read(key, val uint64, at time.Duration) {
	a.Events = append(a.Events, Event{Kind: ReadEvent, Key: key, Val: val, At: at})
}

// Write records a (staged) write of val to key.
func (a *Attempt) Write(key, val uint64, at time.Duration) {
	a.Events = append(a.Events, Event{Kind: WriteEvent, Key: key, Val: val, At: at})
}

// Finish seals the attempt.
func (a *Attempt) Finish(o Outcome, at time.Duration, stamp uint64, err error) {
	a.Outcome = o
	a.End = at
	a.Stamp = stamp
	if err != nil {
		a.Err = err.Error()
	}
}

// Op is one logical client operation: a single engine.Run call, with all
// its attempts.
type Op struct {
	// ID is the recorder-wide op identifier; IDs are assigned in Begin
	// order, so within one session (one sequential worker) ascending IDs
	// are program order.
	ID int
	// Session identifies the issuing client/worker.
	Session int
	// Replica is the routing target (0 = primary, n>0 = read replica n-1),
	// mirroring engine.RunOpts.Replica.
	Replica int
	// Attempts in execution order. The last attempt carries the op's
	// final outcome.
	Attempts []*Attempt
}

// NewAttempt opens the next attempt at virtual time `at`.
func (o *Op) NewAttempt(at time.Duration) *Attempt {
	a := &Attempt{Index: len(o.Attempts), Begin: at, End: at}
	o.Attempts = append(o.Attempts, a)
	return a
}

// Final returns the op's last attempt, or nil if none was opened.
func (o *Op) Final() *Attempt {
	if len(o.Attempts) == 0 {
		return nil
	}
	return o.Attempts[len(o.Attempts)-1]
}

// Recorder collects ops from concurrent workers. Begin is safe for
// concurrent use; each returned Op must then be populated by a single
// goroutine (the worker that owns the transaction), matching how
// engine.Run drives it. Checking happens after the workload quiesces.
type Recorder struct {
	mu  sync.Mutex
	ops []*Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin registers a new op for session routed at replica.
func (r *Recorder) Begin(session, replica int) *Op {
	r.mu.Lock()
	op := &Op{ID: len(r.ops), Session: session, Replica: replica}
	r.ops = append(r.ops, op)
	r.mu.Unlock()
	return op
}

// Ops returns the recorded ops in begin order. Callers must not mutate
// ops that may still be in flight.
func (r *Recorder) Ops() []*Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Op(nil), r.ops...)
}

// Counts reports recorder volume: logical ops, attempts, and events.
func (r *Recorder) Counts() (ops, attempts, events int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops = len(r.ops)
	for _, o := range r.ops {
		attempts += len(o.Attempts)
		for _, a := range o.Attempts {
			events += len(a.Events)
		}
	}
	return ops, attempts, events
}

// HashVal reduces a value to its 64-bit register fingerprint: 0 for the
// all-zero (never-written) value, an FNV-1a hash otherwise. A workload
// whose writes are distinct byte strings gets distinct fingerprints with
// overwhelming probability; the checker independently verifies uniqueness
// across recorded writes.
func HashVal(v []byte) uint64 {
	zero := true
	for _, b := range v {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range v {
		h ^= uint64(b)
		h *= prime64
	}
	if h == 0 { // reserve 0 for the initial value
		h = offset64
	}
	return h
}
