package history

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---- construction helpers ----------------------------------------------

// mkOp builds an op with a single attempt in the given outcome.
func mkOp(id, session int, outcome Outcome, stamp uint64) (*Op, *Attempt) {
	op := &Op{ID: id, Session: session}
	att := op.NewAttempt(0)
	att.Outcome = outcome
	att.Stamp = stamp
	return op, att
}

func classes(rep *Report) []string {
	var out []string
	for _, a := range rep.Anomalies {
		out = append(out, a.Class)
	}
	return out
}

func wantClass(t *testing.T, rep *Report, class string) {
	t.Helper()
	for _, a := range rep.Anomalies {
		if a.Class == class {
			return
		}
	}
	t.Fatalf("expected anomaly %q, got %v", class, classes(rep))
}

func wantClean(t *testing.T, rep *Report) {
	t.Helper()
	if !rep.Ok() {
		for _, a := range rep.Anomalies {
			t.Logf("anomaly: %s", a)
		}
		t.Fatalf("expected clean report, got %d anomalies: %v", len(rep.Anomalies), classes(rep))
	}
}

func check(t *testing.T, ops []*Op, o Opts) *Report {
	t.Helper()
	rep, err := Check(ops, o)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return rep
}

// ---- clean histories ----------------------------------------------------

func TestCleanSerialHistory(t *testing.T) {
	// One writer session advances k; a reader session observes a
	// monotone prefix. Clean at every level, in both version-order modes.
	w0, a0 := mkOp(0, 0, Committed, 10)
	a0.Write(1, 0xA1, 0)
	w1, a1 := mkOp(1, 0, Committed, 20)
	a1.Read(1, 0xA1, 0)
	a1.Write(1, 0xA2, 0)
	r0, ar := mkOp(2, 1, Committed, 0)
	ar.Read(1, 0xA1, 0)
	r1, ar1 := mkOp(3, 1, Committed, 0)
	ar1.Read(1, 0xA2, 0)
	ops := []*Op{w0, w1, r0, r1}

	for _, sw := range []bool{true, false} {
		rep := check(t, ops, Opts{Level: Serializable, SessionOrder: true, SingleWriter: sw})
		wantClean(t, rep)
		if rep.Txns != 4 || rep.Keys != 1 {
			t.Fatalf("single-writer=%v: txns=%d keys=%d", sw, rep.Txns, rep.Keys)
		}
	}
}

func TestInitialReadIsClean(t *testing.T) {
	// Reading the all-zero initial value before any write is not an
	// anomaly, and anti-depends on the first writer.
	r, ar := mkOp(0, 1, Committed, 0)
	ar.Read(7, 0, 0)
	w, aw := mkOp(1, 0, Committed, 5)
	aw.Write(7, 0xB1, 0)
	rep := check(t, []*Op{r, w}, Opts{Level: Serializable})
	wantClean(t, rep)
	if rep.Edges != 1 {
		t.Fatalf("expected 1 rw edge, got %d", rep.Edges)
	}
}

// ---- direct (non-cyclic) anomalies --------------------------------------

func TestG1aAbortedRead(t *testing.T) {
	ab, aa := mkOp(0, 0, Aborted, 0)
	aa.Write(1, 0xC1, 0)
	rd, ar := mkOp(1, 1, Committed, 0)
	ar.Read(1, 0xC1, 0)
	rep := check(t, []*Op{ab, rd}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "G1a")
}

func TestG1bIntermediateRead(t *testing.T) {
	w, aw := mkOp(0, 0, Committed, 5)
	aw.Write(1, 0xD1, 0) // intermediate
	aw.Write(1, 0xD2, 0) // final
	rd, ar := mkOp(1, 1, Committed, 0)
	ar.Read(1, 0xD1, 0)
	rep := check(t, []*Op{w, rd}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "G1b")
}

func TestGarbledRead(t *testing.T) {
	rd, ar := mkOp(0, 0, Committed, 0)
	ar.Read(1, 0xEEEE, 0)
	rep := check(t, []*Op{rd}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "garbled-read")
}

func TestMisdirectedRead(t *testing.T) {
	w, aw := mkOp(0, 0, Committed, 5)
	aw.Write(1, 0xF1, 0)
	rd, ar := mkOp(1, 1, Committed, 0)
	ar.Read(2, 0xF1, 0) // value of key 1 surfaced under key 2
	rep := check(t, []*Op{w, rd}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "misdirected-read")
}

func TestIntraTxnReadYourWrites(t *testing.T) {
	op, att := mkOp(0, 0, Committed, 5)
	att.Write(1, 0xA1, 0)
	att.Read(1, 0xA2, 0) // should have seen its own 0xA1
	rep := check(t, []*Op{op}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "intra-txn-ryw")
}

func TestNonRepeatableRead(t *testing.T) {
	w, aw := mkOp(0, 0, Committed, 5)
	aw.Write(1, 0xA1, 0)
	rd, ar := mkOp(1, 1, Committed, 0)
	ar.Read(1, 0, 0)
	ar.Read(1, 0xA1, 0)
	// Legal under read committed...
	wantClean(t, check(t, []*Op{w, rd}, Opts{Level: ReadCommitted}))
	// ...an anomaly under serializable.
	rep := check(t, []*Op{w, rd}, Opts{Level: Serializable})
	wantClass(t, rep, "non-repeatable-read")
}

func TestUnstampedCommitAndStampCollision(t *testing.T) {
	w1, a1 := mkOp(0, 0, Committed, 0) // committed write, no stamp
	a1.Write(1, 0xA1, 0)
	rep := check(t, []*Op{w1}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "unstamped-commit")

	w2, a2 := mkOp(1, 1, Committed, 9)
	a2.Write(2, 0xB1, 0)
	w3, a3 := mkOp(2, 2, Committed, 9) // same stamp, same key
	a3.Write(2, 0xB2, 0)
	rep = check(t, []*Op{w2, w3}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "stamp-collision")
}

// ---- cyclic anomalies ----------------------------------------------------

func TestG1cDirtyReadCross(t *testing.T) {
	// T1 and T2 each observe the other's write: wr cycle (cyclic
	// information flow), detectable already at read committed.
	t1, a1 := mkOp(0, 0, Committed, 5)
	a1.Write(1, 0xA1, 0)
	a1.Read(2, 0xB1, 0)
	t2, a2 := mkOp(1, 1, Committed, 6)
	a2.Write(2, 0xB1, 0)
	a2.Read(1, 0xA1, 0)
	rep := check(t, []*Op{t1, t2}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "G1c")
	for _, a := range rep.Anomalies {
		if a.Class == "G1c" && len(a.Cycle) != 3 { // 2 steps + closing node
			t.Fatalf("expected minimal 2-cycle witness, got %v", a.Cycle)
		}
	}
}

func TestLostUpdate(t *testing.T) {
	// Both transactions read the initial value and blind-increment:
	// classic lost update, an rw+ww 2-cycle on one key.
	t1, a1 := mkOp(0, 0, Committed, 5)
	a1.Read(1, 0, 0)
	a1.Write(1, 0xA1, 0)
	t2, a2 := mkOp(1, 1, Committed, 6)
	a2.Read(1, 0, 0)
	a2.Write(1, 0xA2, 0)
	// Invisible at read committed...
	wantClean(t, check(t, []*Op{t1, t2}, Opts{Level: ReadCommitted}))
	// ...caught at serializable, labeled specifically.
	rep := check(t, []*Op{t1, t2}, Opts{Level: Serializable})
	wantClass(t, rep, "lost-update")
}

func TestWriteSkew(t *testing.T) {
	// T1 reads k2 and writes k1; T2 reads k1 and writes k2: two rw
	// anti-dependencies over two keys.
	t1, a1 := mkOp(0, 0, Committed, 5)
	a1.Read(2, 0, 0)
	a1.Write(1, 0xA1, 0)
	t2, a2 := mkOp(1, 1, Committed, 6)
	a2.Read(1, 0, 0)
	a2.Write(2, 0xB1, 0)
	wantClean(t, check(t, []*Op{t1, t2}, Opts{Level: ReadCommitted}))
	rep := check(t, []*Op{t1, t2}, Opts{Level: Serializable})
	wantClass(t, rep, "write-skew")
}

func TestGSingleStaleSessionRead(t *testing.T) {
	// A session observes version 2 of a key and then version 1: with
	// session order on, that is a (so, rw, wr) cycle.
	w1, aw1 := mkOp(0, 0, Committed, 10)
	aw1.Write(1, 0xA1, 0)
	w2, aw2 := mkOp(1, 0, Committed, 20)
	aw2.Write(1, 0xA2, 0)
	r1, ar1 := mkOp(2, 1, Committed, 0)
	ar1.Read(1, 0xA2, 0)
	r2, ar2 := mkOp(3, 1, Committed, 0)
	ar2.Read(1, 0xA1, 0) // went backwards
	ops := []*Op{w1, w2, r1, r2}
	// Without session order the reads are individually consistent.
	wantClean(t, check(t, ops, Opts{Level: Serializable}))
	rep := check(t, ops, Opts{Level: Serializable, SessionOrder: true})
	if rep.Ok() {
		t.Fatal("stale session read not detected")
	}
	found := false
	for _, a := range rep.Anomalies {
		if a.Class == "G-single" || a.Class == "stale-read" {
			found = true
			if len(a.Cycle) == 0 {
				t.Fatalf("cycle anomaly without witness: %s", a)
			}
		}
	}
	if !found {
		t.Fatalf("expected G-single/stale-read, got %v", classes(rep))
	}
}

// ---- indeterminate outcomes ---------------------------------------------

func TestIndeterminateWriteMaySurface(t *testing.T) {
	// A write that failed past the durability point (stamp set, outcome
	// unknown) may legally be observed later — no G1a.
	ind, ai := mkOp(0, 0, Indeterminate, 7)
	ai.Write(1, 0xA1, 0)
	rd, ar := mkOp(1, 1, Committed, 0)
	ar.Read(1, 0xA1, 0)
	for _, sw := range []bool{true, false} {
		rep := check(t, []*Op{ind, rd}, Opts{Level: Serializable, SingleWriter: sw})
		wantClean(t, rep)
	}
}

func TestIndeterminateWriteMayVanish(t *testing.T) {
	// ...and it may equally never surface: a later committed write by the
	// owner session supersedes it without any anomaly, even when readers
	// only ever see the committed value.
	ind, ai := mkOp(0, 0, Indeterminate, 0) // not even stamped
	ai.Write(1, 0xA1, 0)
	w, aw := mkOp(1, 0, Committed, 9)
	aw.Write(1, 0xA2, 0)
	rd, ar := mkOp(2, 1, Committed, 0)
	ar.Read(1, 0xA2, 0)
	for _, sw := range []bool{true, false} {
		rep := check(t, []*Op{ind, w, rd}, Opts{Level: Serializable, SessionOrder: true, SingleWriter: sw})
		wantClean(t, rep)
	}
}

// ---- retry lineage -------------------------------------------------------

func TestRetryLineageIsOneLogicalOp(t *testing.T) {
	// An aborted attempt whose retry commits the same value is ONE
	// logical write: reads of the value must bind to the committed
	// attempt, not trip G1a, and the op contributes one graph node.
	op := &Op{ID: 0, Session: 0}
	first := op.NewAttempt(0)
	first.Write(1, 0xA1, 0)
	first.Finish(Aborted, 10, 0, errors.New("conflict"))
	second := op.NewAttempt(20)
	second.Write(1, 0xA1, 0)
	second.Finish(Committed, 30, 5, nil)

	rd, ar := mkOp(1, 1, Committed, 0)
	ar.Read(1, 0xA1, 0)

	rep := check(t, []*Op{op, rd}, Opts{Level: Serializable, SessionOrder: true})
	wantClean(t, rep)
	if rep.Txns != 2 {
		t.Fatalf("retried op counted as %d nodes, want 2 total txns", rep.Txns)
	}
}

func TestRetryLineageAbortedOnly(t *testing.T) {
	// If every attempt aborted, observing the value is still G1a.
	op := &Op{ID: 0, Session: 0}
	for i := 0; i < 2; i++ {
		a := op.NewAttempt(time.Duration(i) * 10)
		a.Write(1, 0xA1, 0)
		a.Finish(Aborted, time.Duration(i)*10+5, 0, errors.New("conflict"))
	}
	rd, ar := mkOp(1, 1, Committed, 0)
	ar.Read(1, 0xA1, 0)
	rep := check(t, []*Op{op, rd}, Opts{Level: ReadCommitted})
	wantClass(t, rep, "G1a")
}

// ---- invalid histories ---------------------------------------------------

func TestInvalidDuplicateValueAcrossOps(t *testing.T) {
	w1, a1 := mkOp(0, 0, Committed, 5)
	a1.Write(1, 0xA1, 0)
	w2, a2 := mkOp(1, 1, Committed, 6)
	a2.Write(2, 0xA1, 0)
	_, err := Check([]*Op{w1, w2}, Opts{})
	if !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("want ErrInvalidHistory, got %v", err)
	}
}

func TestInvalidMultiWriterInSingleWriterMode(t *testing.T) {
	w1, a1 := mkOp(0, 0, Committed, 5)
	a1.Write(1, 0xA1, 0)
	w2, a2 := mkOp(1, 1, Committed, 6)
	a2.Write(1, 0xA2, 0)
	_, err := Check([]*Op{w1, w2}, Opts{SingleWriter: true})
	if !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("want ErrInvalidHistory, got %v", err)
	}
}

func TestInvalidZeroValueWrite(t *testing.T) {
	w, a := mkOp(0, 0, Committed, 5)
	a.Write(1, 0, 0)
	_, err := Check([]*Op{w}, Opts{})
	if !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("want ErrInvalidHistory, got %v", err)
	}
}

// ---- shed ops ------------------------------------------------------------

func TestShedOpsAreIgnored(t *testing.T) {
	shed, _ := mkOp(0, 0, Shed, 0)
	w, aw := mkOp(1, 0, Committed, 5)
	aw.Write(1, 0xA1, 0)
	rep := check(t, []*Op{shed, w}, Opts{Level: Serializable, SessionOrder: true})
	wantClean(t, rep)
	if rep.Txns != 1 {
		t.Fatalf("shed op counted as node: txns=%d", rep.Txns)
	}
}

// ---- recorder ------------------------------------------------------------

func TestRecorderConcurrentBegin(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				op := r.Begin(w, 0)
				a := op.NewAttempt(0)
				a.Write(uint64(w*perWorker+i+1), uint64(op.ID+1), 0)
				a.Finish(Committed, 1, uint64(op.ID+1), nil)
			}
		}(w)
	}
	wg.Wait()
	ops := r.Ops()
	if len(ops) != workers*perWorker {
		t.Fatalf("ops=%d", len(ops))
	}
	seen := map[int]bool{}
	for _, op := range ops {
		if seen[op.ID] {
			t.Fatalf("duplicate op ID %d", op.ID)
		}
		seen[op.ID] = true
	}
	nops, atts, evs := r.Counts()
	if nops != workers*perWorker || atts != nops || evs != nops {
		t.Fatalf("counts: ops=%d attempts=%d events=%d", nops, atts, evs)
	}
}

func TestHashVal(t *testing.T) {
	if HashVal(nil) != 0 || HashVal(make([]byte, 32)) != 0 {
		t.Fatal("all-zero values must hash to 0")
	}
	a, b := HashVal([]byte("alpha")), HashVal([]byte("beta"))
	if a == 0 || b == 0 || a == b {
		t.Fatalf("hashes: %x %x", a, b)
	}
}

func TestReportSummaryAndStrings(t *testing.T) {
	w, aw := mkOp(0, 0, Committed, 5)
	aw.Write(1, 0xA1, 0)
	rep := check(t, []*Op{w}, Opts{Level: Serializable})
	if !strings.Contains(rep.Summary(), "level=serializable") {
		t.Fatalf("summary: %s", rep.Summary())
	}
	if Committed.String() != "committed" || Shed.String() != "shed" {
		t.Fatal("outcome strings")
	}
}
