package history

import (
	"fmt"
	"math/rand"
	"testing"
)

// The checker's own correctness is established against a reference
// single-threaded executor: it runs transactions one at a time against an
// in-memory register store, so every history it emits is serializable by
// construction. The fuzz suite asserts (a) zero false positives on those
// histories across many seeds, generator shapes and version-order modes,
// and (b) guaranteed detection after targeted mutations — a garbled read
// value, a read binding to an aborted write, a stale read-modify-write,
// and a commit-stamp reorder.

const (
	fuzzSessions = 4
	fuzzKeys     = 6
	fuzzOps      = 140
	fuzzValBase  = 0x10000
)

// genRef locates one recorded event for mutation targeting.
type genRef struct {
	op  *Op
	att *Attempt
	ev  int // index into att.Events
}

// version is one committed version of a key, in commit order.
type version struct {
	val    uint64
	op     *Op
	att    *Attempt
	rmwRef genRef // the writer's external read of the previous version (ev<0 if none)
}

// genHistory is a reference-executed history plus the indexes mutations need.
type genHistory struct {
	ops      []*Op
	versions map[uint64][]version
	aborted  []genRef // write events of definitely-aborted ops
	extReads []genRef // external reads of committed attempts
}

// generate runs the serial reference executor. When singleWriter is true
// each key is written only by its owner session (key % fuzzSessions).
func generate(seed int64, singleWriter bool) *genHistory {
	rng := rand.New(rand.NewSource(seed))
	g := &genHistory{versions: map[uint64][]version{}}
	cur := map[uint64]uint64{}   // key -> current fingerprint
	inChain := map[uint64]bool{} // fingerprint is a committed chain version
	nextVal := uint64(fuzzValBase)
	stamp := uint64(0)

	for i := 0; i < fuzzOps; i++ {
		session := rng.Intn(fuzzSessions)
		op := &Op{ID: i, Session: session}
		g.ops = append(g.ops, op)

		roll := rng.Intn(100)
		if roll < 5 { // shed before reaching the engine
			op.NewAttempt(0).Finish(Shed, 0, 0, nil)
			continue
		}

		// Script the attempt body once; retries replay it verbatim, the
		// way engine.Run re-executes the same transaction function.
		type action struct {
			write bool
			key   uint64
		}
		nact := 1 + rng.Intn(3)
		var script []action
		for a := 0; a < nact; a++ {
			var key uint64
			write := rng.Intn(100) < 55
			if write && singleWriter {
				owned := rng.Intn((fuzzKeys+fuzzSessions-1)/fuzzSessions) * fuzzSessions
				key = uint64(owned + session)
				if key >= fuzzKeys {
					key = uint64(session)
				}
			} else {
				key = uint64(rng.Intn(fuzzKeys))
			}
			script = append(script, action{write: write, key: key})
		}

		runAttempt := func(att *Attempt) (staged map[uint64]uint64, rmw map[uint64]genRef) {
			staged = map[uint64]uint64{}
			rmw = map[uint64]genRef{}
			for _, act := range script {
				// Read first (register RMW) so commit reorders are
				// always witnessed by a read.
				var observed uint64
				if v, ok := staged[act.key]; ok {
					observed = v
				} else {
					observed = cur[act.key]
					rmw[act.key] = genRef{op: op, att: att, ev: len(att.Events)}
				}
				att.Read(act.key, observed, 0)
				if act.write {
					nextVal++
					att.Write(act.key, nextVal, 0)
					staged[act.key] = nextVal
				}
			}
			return staged, rmw
		}

		// Optional doomed first attempt: conflict-aborted, then retried.
		if rng.Intn(100) < 15 {
			att := op.NewAttempt(0)
			runAttempt(att)
			att.Finish(Aborted, 0, 0, ErrInvalidHistory) // any error text
		}

		att := op.NewAttempt(0)
		staged, rmw := runAttempt(att)

		switch {
		case roll < 75: // commit
			stamp++
			att.Finish(Committed, 0, stamp, nil)
			for k, v := range staged {
				ref := genRef{ev: -1}
				if r, ok := rmw[k]; ok {
					ref = r
				}
				g.versions[k] = append(g.versions[k], version{val: v, op: op, att: att, rmwRef: ref})
				cur[k] = v
				inChain[v] = true
			}
			// External committed reads — those that observed pre-op state
			// rather than an own staged value — are mutation targets.
			for ei, e := range att.Events {
				if e.Kind == ReadEvent {
					if r, ok := rmw[e.Key]; ok && r.ev == ei {
						g.extReads = append(g.extReads, genRef{op: op, att: att, ev: ei})
					}
				}
			}
		case roll < 90: // definite abort: no effects
			att.Finish(Aborted, 0, 0, ErrInvalidHistory)
			for ei, e := range att.Events {
				if e.Kind == WriteEvent {
					g.aborted = append(g.aborted, genRef{op: op, att: att, ev: ei})
				}
			}
		default: // indeterminate: durable (stamped, applied) but unacked
			stamp++
			att.Finish(Indeterminate, 0, stamp, fmt.Errorf("commit ack lost"))
			for k, v := range staged {
				cur[k] = v // surfaces to later readers; NOT a chain version
			}
		}
	}
	return g
}

func fuzzOpts(singleWriter bool) []Opts {
	return []Opts{
		{Level: ReadCommitted, SingleWriter: singleWriter},
		{Level: Serializable, SingleWriter: singleWriter},
		{Level: Serializable, SessionOrder: true, SingleWriter: singleWriter},
	}
}

func TestFuzzNoFalsePositives(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, sw := range []bool{true, false} {
			g := generate(seed, sw)
			for _, o := range fuzzOpts(sw) {
				rep, err := Check(g.ops, o)
				if err != nil {
					t.Fatalf("seed=%d sw=%v opts=%+v: %v", seed, sw, o, err)
				}
				if !rep.Ok() {
					for _, a := range rep.Anomalies {
						t.Logf("false positive: %s", a)
					}
					t.Fatalf("seed=%d sw=%v opts=%+v: %d false positives on reference-serial history",
						seed, sw, o, len(rep.Anomalies))
				}
			}
		}
	}
}

// mutation is one targeted corruption; apply returns false when the
// generated history has no viable target for it.
type mutation struct {
	name  string
	level Level
	apply func(g *genHistory, rng *rand.Rand) bool
}

func mutations() []mutation {
	return []mutation{
		{
			// A read observes a value no transaction ever wrote.
			name: "garbled-read", level: ReadCommitted,
			apply: func(g *genHistory, rng *rand.Rand) bool {
				if len(g.extReads) == 0 {
					return false
				}
				r := g.extReads[rng.Intn(len(g.extReads))]
				r.att.Events[r.ev].Val = 0xFFFF_FFFF_FFFF_FFFF
				return true
			},
		},
		{
			// A read observes the write of a definitely-aborted txn.
			name: "aborted-read", level: ReadCommitted,
			apply: func(g *genHistory, rng *rand.Rand) bool {
				if len(g.aborted) == 0 || len(g.extReads) == 0 {
					return false
				}
				w := g.aborted[rng.Intn(len(g.aborted))]
				wev := w.att.Events[w.ev]
				// Bind a committed external read of the same key to it.
				for _, r := range g.extReads {
					if r.att.Events[r.ev].Key == wev.Key && r.op != w.op {
						r.att.Events[r.ev].Val = wev.Val
						return true
					}
				}
				return false
			},
		},
		{
			// An RMW reads the version BEFORE the one it overwrote:
			// a lost update.
			name: "stale-rmw", level: Serializable,
			apply: func(g *genHistory, rng *rand.Rand) bool {
				for _, chain := range g.versions {
					for j := 2; j < len(chain); j++ {
						v := chain[j]
						if v.rmwRef.ev < 0 {
							continue
						}
						// Its recorded read must have observed v_{j-1}.
						if v.att.Events[v.rmwRef.ev].Val != chain[j-1].val {
							continue
						}
						v.att.Events[v.rmwRef.ev].Val = chain[j-2].val
						return true
					}
				}
				return false
			},
		},
		{
			// Swap the commit stamps of two adjacent versions whose
			// order a read witnessed: cyclic information flow (G1c).
			name: "commit-reorder", level: ReadCommitted,
			apply: func(g *genHistory, rng *rand.Rand) bool {
				for _, chain := range g.versions {
					for j := 1; j < len(chain); j++ {
						a, b := chain[j-1], chain[j]
						if a.op == b.op || b.rmwRef.ev < 0 {
							continue
						}
						if b.att.Events[b.rmwRef.ev].Val != a.val {
							continue // b did not witness a
						}
						a.att.Stamp, b.att.Stamp = b.att.Stamp, a.att.Stamp
						return true
					}
				}
				return false
			},
		},
	}
}

func TestFuzzMutationsDetected(t *testing.T) {
	for _, m := range mutations() {
		t.Run(m.name, func(t *testing.T) {
			applied := 0
			for seed := int64(0); seed < 60 && applied < 15; seed++ {
				// Stamp mode exercises every mutation, including the
				// stamp swap, which single-writer order would mask.
				g := generate(seed, false)
				rng := rand.New(rand.NewSource(seed ^ 0x5eed))
				if !m.apply(g, rng) {
					continue
				}
				applied++
				rep, err := Check(g.ops, Opts{Level: m.level, SessionOrder: true})
				if err != nil {
					// A mutation may corrupt the history into something
					// structurally invalid — also a detection.
					continue
				}
				if rep.Ok() {
					t.Fatalf("seed=%d: mutation %s went undetected", seed, m.name)
				}
			}
			if applied < 5 {
				t.Fatalf("mutation %s applied only %d times across seeds — generator shape regressed", m.name, applied)
			}
		})
	}
}
