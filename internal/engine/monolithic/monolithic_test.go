package monolithic_test

import (
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return monolithic.New(cfg, enginetest.Layout(t), 64)
	})
}

func TestCheckpointTruncatesLog(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := monolithic.New(cfg, enginetest.Layout(t), 64)
	c := sim.NewClock()
	for i := uint64(0); i < 50; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, make([]byte, 64)) })
	}
	before := e.LogLen()
	if err := e.Checkpoint(c); err != nil {
		t.Fatal(err)
	}
	if e.LogLen() >= before {
		t.Fatalf("log not truncated: %d -> %d", before, e.LogLen())
	}
	// Data survives crash+recovery through the checkpoint.
	e.Crash()
	if _, err := e.Recover(sim.NewClock()); err != nil {
		t.Fatal(err)
	}
	engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(3)
		if err != nil {
			return err
		}
		if len(v) != 64 {
			t.Error("value lost through checkpoint")
		}
		return nil
	})
}

func TestRecoveryReplaysOnlyTail(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := monolithic.New(cfg, enginetest.Layout(t), 64)
	c := sim.NewClock()
	for i := uint64(0); i < 100; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i%10, make([]byte, 64)) })
	}
	e.Checkpoint(c)
	// A few more post-checkpoint commits.
	for i := uint64(0); i < 5; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, make([]byte, 64)) })
	}
	e.Crash()
	short, err := e.Recover(sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}

	// Without a checkpoint the same history replays everything.
	e2 := monolithic.New(cfg, enginetest.Layout(t), 64)
	c2 := sim.NewClock()
	for i := uint64(0); i < 105; i++ {
		engine.Run(e2, c2, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i%10, make([]byte, 64)) })
	}
	e2.Crash()
	long, err := e2.Recover(sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !(short < long) {
		t.Fatalf("checkpointed recovery (%v) should beat full replay (%v)", short, long)
	}
}

// TestCommitDuringCheckpointSurvivesRestart is the flush→truncate
// ordering regression: a commit acknowledged after the checkpoint's
// FlushAll but before its TruncateBefore used to have its log records
// truncated (the horizon was captured after the flush, so it covered the
// late commit) while its page updates lived only in the buffer pool —
// crash, and the acked commit was gone. The horizon must be captured
// before the flush so late commits stay in the retained tail.
func TestCommitDuringCheckpointSurvivesRestart(t *testing.T) {
	cfg := sim.DefaultConfig()
	layout := enginetest.Layout(t)
	e := monolithic.New(cfg, layout, 64)
	c := sim.NewClock()
	for i := uint64(0); i < 20; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, make([]byte, 64)) })
	}
	// The racing commit lands between the dirty-page flush and the log
	// truncation.
	late := make([]byte, 64)
	for i := range late {
		late[i] = 0xA5
	}
	lateErr := error(nil)
	e.SetBetweenFlushAndTruncate(func() {
		lateErr = engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(7, late)
		})
	})
	if err := e.Checkpoint(c); err != nil {
		t.Fatal(err)
	}
	if lateErr != nil {
		t.Fatalf("racing commit was not acknowledged: %v", lateErr)
	}
	e.Crash()
	if _, err := e.Recover(sim.NewClock()); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(7)
		if err != nil {
			return err
		}
		got = v
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 0xA5 {
			t.Fatalf("acked commit lost across checkpoint+restart: byte %d = %#x", i, got[i])
		}
	}
}

func TestNoNetworkTraffic(t *testing.T) {
	e := monolithic.New(sim.DefaultConfig(), enginetest.Layout(t), 64)
	c := sim.NewClock()
	for i := uint64(0); i < 20; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, make([]byte, 64)) })
	}
	if e.Stats().NetBytes.Load() != 0 {
		t.Fatalf("monolithic engine used the network: %d bytes", e.Stats().NetBytes.Load())
	}
}

func TestChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return monolithic.New(sim.DefaultConfig(), enginetest.Layout(t), 64)
	})
}
