package monolithic

// LogLen exposes the in-memory log length to the external test package.
func (e *Engine) LogLen() int { return e.log.Len() }

// SetBetweenFlushAndTruncate installs a hook that runs inside a
// checkpoint's flush→truncate window — the window whose in-flight
// commits the original Checkpoint ordering truncated away.
func (e *Engine) SetBetweenFlushAndTruncate(fn func()) { e.testBetweenFlushAndTruncate = fn }
