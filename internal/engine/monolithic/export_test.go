package monolithic

// LogLen exposes the in-memory log length to the external test package.
func (e *Engine) LogLen() int { return e.log.Len() }
